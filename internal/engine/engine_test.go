package engine_test

import (
	"reflect"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/index"
	"repro/internal/knngraph"
	"repro/internal/lsh"
	"repro/internal/seqscan"
	"repro/internal/space"
	"repro/internal/topk"
)

func TestPoolWorkers(t *testing.T) {
	if got := engine.NewPool(4).Workers(); got != 4 {
		t.Fatalf("NewPool(4).Workers() = %d", got)
	}
	if got := engine.NewPool(0).Workers(); got < 1 {
		t.Fatalf("NewPool(0).Workers() = %d", got)
	}
	if got := engine.NewPool(-3).Workers(); got < 1 {
		t.Fatalf("NewPool(-3).Workers() = %d", got)
	}
	var zero engine.Pool
	if got := zero.Workers(); got < 1 {
		t.Fatalf("zero Pool Workers() = %d", got)
	}
}

func TestPoolForCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7} {
		for _, n := range []int{0, 1, 5, 100, 1000} {
			hits := make([]int32, n)
			engine.NewPool(workers).For(n, func(i int) {
				atomic.AddInt32(&hits[i], 1)
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: index %d hit %d times", workers, n, i, h)
				}
			}
		}
	}
}

func TestPoolForDynamicCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 16} {
		n := 500
		hits := make([]int32, n)
		engine.NewPool(workers).ForDynamic(n, func(i int) {
			atomic.AddInt32(&hits[i], 1)
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d hit %d times", workers, i, h)
			}
		}
	}
}

func TestPoolForWithIDWorkerRange(t *testing.T) {
	p := engine.NewPool(3)
	var bad atomic.Int32
	p.ForWithID(200, func(worker, i int) {
		if worker < 0 || worker >= p.Workers() {
			bad.Add(1)
		}
	})
	if bad.Load() != 0 {
		t.Fatalf("%d invocations saw a worker id outside [0, %d)", bad.Load(), p.Workers())
	}
}

// mustPanic runs f, which is expected to panic with value want, and fails
// the test if it returns normally or panics with anything else. A hang here
// (the pre-fix failure mode: a dead worker deadlocking wg.Wait) is caught by
// the test binary's own timeout.
func mustPanic(t *testing.T, want any, f func()) {
	t.Helper()
	defer func() {
		if r := recover(); r != want {
			t.Fatalf("recovered %v, want panic %v", r, want)
		}
	}()
	f()
	t.Fatal("call returned normally, want panic")
}

func TestPoolForPropagatesPanic(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		p := engine.NewPool(workers)
		mustPanic(t, "boom-for", func() {
			p.For(100, func(i int) {
				if i == 37 {
					panic("boom-for")
				}
			})
		})
		mustPanic(t, "boom-dyn", func() {
			p.ForDynamic(100, func(i int) {
				if i == 37 {
					panic("boom-dyn")
				}
			})
		})
		mustPanic(t, "boom-id", func() {
			p.ForWithID(100, func(_, i int) {
				if i == 37 {
					panic("boom-id")
				}
			})
		})
	}
}

// TestPoolForPanicCancelsRemainingWork: once one iteration panics, workers
// stop pulling new iterations instead of grinding through the rest of the
// range. The panicking iteration is the very first one pulled, so at most
// one in-flight iteration per other worker may still run — far fewer than n.
func TestPoolForPanicCancelsRemainingWork(t *testing.T) {
	const n = 100000
	var ran atomic.Int32
	mustPanic(t, "early", func() {
		engine.NewPool(4).ForDynamic(n, func(i int) {
			if ran.Add(1) == 1 {
				panic("early")
			}
		})
	})
	if got := ran.Load(); got == n {
		t.Fatalf("all %d iterations ran despite the first panicking", n)
	}
}

// TestPoolForPanicPoolReusable: a pool that has trapped a panic is a plain
// value and must keep working for subsequent loops.
func TestPoolForPanicPoolReusable(t *testing.T) {
	p := engine.NewPool(3)
	mustPanic(t, "once", func() { p.For(10, func(i int) { panic("once") }) })
	var hits atomic.Int32
	p.For(50, func(i int) { hits.Add(1) })
	if hits.Load() != 50 {
		t.Fatalf("loop after panic ran %d/50 iterations", hits.Load())
	}
}

// panickyIndex explodes on its n-th Search call, standing in for a bug in
// any real index's Search.
type panickyIndex struct {
	inner index.Index[[]float32]
	calls atomic.Int32
	bad   int32 // which call (1-based) panics
}

func (p *panickyIndex) Search(q []float32, k int) []topk.Neighbor {
	if p.calls.Add(1) == p.bad {
		panic("search exploded")
	}
	return p.inner.Search(q, k)
}

func (p *panickyIndex) Name() string { return "panicky" }

func TestSearchBatchPropagatesSearchPanic(t *testing.T) {
	db, queries := batchData(t, 50, 20)
	idx := &panickyIndex{inner: seqscan.New[[]float32](space.L2{}, db), bad: 13}
	mustPanic(t, "search exploded", func() {
		engine.SearchBatchPool(engine.NewPool(4), index.Index[[]float32](idx), queries, 3)
	})
}

// serialLoop is the reference semantics SearchBatch must reproduce.
func serialLoop[T any](idx index.Index[T], queries []T, k int) [][]topk.Neighbor {
	out := make([][]topk.Neighbor, len(queries))
	for i, q := range queries {
		out[i] = idx.Search(q, k)
	}
	return out
}

// batchData is a small dense-vector workload shared by the equivalence
// tests.
func batchData(t testing.TB, n, q int) (db, queries [][]float32) {
	t.Helper()
	data := dataset.SIFT(11, n+q)
	return data[:n], data[n:]
}

// checkBatchMatchesSerial runs the serial reference on serialIdx and
// SearchBatch on batchIdx (the same index, or an identically built copy for
// stateful searchers) across worker counts and edge-case ks.
func checkBatchMatchesSerial[T any](t *testing.T, name string, db []T, queries []T, build func() index.Index[T]) {
	t.Helper()
	n := len(db)
	for _, k := range []int{1, 10, n + 17} { // includes k > n
		for _, workers := range []int{1, 2, 8} {
			want := serialLoop(build(), queries, k)
			got := engine.SearchBatchPool(engine.NewPool(workers), build(), queries, k)
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("%s: k=%d workers=%d: batch differs from serial loop", name, k, workers)
			}
		}
	}
	// Empty batch and k <= 0.
	idx := build()
	if got := engine.SearchBatch(idx, nil, 10); len(got) != 0 {
		t.Fatalf("%s: empty batch returned %d results", name, len(got))
	}
	got := engine.SearchBatch(idx, queries, 0)
	if len(got) != len(queries) {
		t.Fatalf("%s: k=0 batch has %d slots, want %d", name, len(got), len(queries))
	}
	for i, r := range got {
		if r != nil {
			t.Fatalf("%s: k=0 query %d returned %d neighbors", name, i, len(r))
		}
	}
}

func TestSearchBatchSeqScan(t *testing.T) {
	db, queries := batchData(t, 300, 25)
	checkBatchMatchesSerial(t, "seqscan", db, queries, func() index.Index[[]float32] {
		return seqscan.New[[]float32](space.L2{}, db)
	})
}

func TestSearchBatchNAPP(t *testing.T) {
	db, queries := batchData(t, 300, 25)
	checkBatchMatchesSerial(t, "napp", db, queries, func() index.Index[[]float32] {
		na, err := core.NewNAPP[[]float32](space.L2{}, db, core.NAPPOptions{
			NumPivots: 64, NumPivotIndex: 16, MinShared: 1, Seed: 5,
		})
		if err != nil {
			t.Fatal(err)
		}
		return na
	})
}

func TestSearchBatchLSH(t *testing.T) {
	db, queries := batchData(t, 300, 25)
	checkBatchMatchesSerial(t, "mplsh", db, queries, func() index.Index[[]float32] {
		x, err := lsh.New(db, lsh.Options{Tables: 8, Hashes: 8, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		return x
	})
}

func TestSearchBatchSWGraph(t *testing.T) {
	db, queries := batchData(t, 300, 25)
	// Graph search consumes a shared entry-point counter, so each
	// equivalence run needs a fresh, identically built graph (Workers: 1
	// keeps construction deterministic).
	checkBatchMatchesSerial(t, "sw-graph", db, queries, func() index.Index[[]float32] {
		g, err := knngraph.NewSW[[]float32](space.L2{}, db, knngraph.Options{
			NN: 8, Workers: 1, Seed: 5,
		})
		if err != nil {
			t.Fatal(err)
		}
		return g
	})
}

// TestSearchBatchSWGraphCounterState verifies the Batcher contract beyond
// the results themselves: after a batch, the graph must be in the exact
// state a serial loop would have left, so that subsequent single queries
// still match.
func TestSearchBatchSWGraphCounterState(t *testing.T) {
	db, queries := batchData(t, 300, 25)
	build := func() *knngraph.Graph[[]float32] {
		g, err := knngraph.NewSW[[]float32](space.L2{}, db, knngraph.Options{NN: 8, Workers: 1, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	serial, batched := build(), build()
	wantBatch := serialLoop[[]float32](serial, queries, 10)
	gotBatch := engine.SearchBatchPool(engine.NewPool(4), batched, queries, 10)
	if !reflect.DeepEqual(wantBatch, gotBatch) {
		t.Fatal("batch differs from serial loop")
	}
	for i := 0; i < 5; i++ {
		want := serial.Search(queries[i], 10)
		got := batched.Search(queries[i], 10)
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("post-batch query %d diverged: counter state not preserved", i)
		}
	}
}

// countingProvider wraps an index that mints searchers, counting how many
// the batch engine actually creates.
type countingProvider struct {
	index.Index[[]float32]
	mints atomic.Int32
}

func (p *countingProvider) NewSearcher() index.Searcher[[]float32] {
	p.mints.Add(1)
	return p.Index.(index.SearcherProvider[[]float32]).NewSearcher()
}

// TestSearchBatchUsesPerWorkerSearchers verifies the scratch-ownership
// contract of the batch engine: an index.SearcherProvider is queried through
// at most one Searcher per worker (buffer reuse across a worker's queries),
// never one per query, and the answers still match the serial loop exactly.
func TestSearchBatchUsesPerWorkerSearchers(t *testing.T) {
	db, queries := batchData(t, 300, 25)
	na, err := core.NewNAPP[[]float32](space.L2{}, db, core.NAPPOptions{
		NumPivots: 64, NumPivotIndex: 16, MinShared: 1, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	const workers = 4
	wrapped := &countingProvider{Index: na}
	want := serialLoop[[]float32](na, queries, 10)
	got := engine.SearchBatchPool(engine.NewPool(workers), wrapped, queries, 10)
	if !reflect.DeepEqual(want, got) {
		t.Fatal("searcher-path batch differs from serial loop")
	}
	if m := wrapped.mints.Load(); m < 1 || m > workers {
		t.Fatalf("batch minted %d searchers for %d workers, want 1..%d", m, workers, workers)
	}
}

func TestSearchBatchDispatchesToBatcher(t *testing.T) {
	db, queries := batchData(t, 100, 5)
	g, err := knngraph.NewSW[[]float32](space.L2{}, db, knngraph.Options{NN: 8, Workers: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := any(g).(index.Batcher[[]float32]); !ok {
		t.Fatal("Graph does not implement index.Batcher")
	}
	if got := engine.SearchBatch[[]float32](g, queries, 3); len(got) != len(queries) {
		t.Fatalf("batch returned %d slots", len(got))
	}
}
