package shard

import (
	"encoding/json"
	"fmt"
	"path/filepath"

	"repro/internal/persist"
	"repro/internal/vfs"
)

// SetSchema tags the shard-set manifest format; bump on incompatible
// change, mirroring the internal/codec versioning policy (readers reject
// unknown schemas, there is no migration — a set is simply re-split).
const SetSchema = "permsearch-shardset/v1"

// SetManifestExt is the conventional file name suffix of a shard-set
// manifest, written next to the per-shard directories.
const SetManifestExt = ".shardset.json"

// SetManifest is the top-level description of one sharded index set: which
// corpus was split, how, and the exact bytes each shard serves. It is the
// unit snapshot shipping moves between builder and serving hosts — the CRCs
// let a receiving host verify every shard file before pointing a reload at
// it, and Generation orders successive rebuilds of the same set.
type SetManifest struct {
	// Schema is always SetSchema.
	Schema string `json:"schema"`
	// Set names the shard set; per-shard index files share this name.
	Set string `json:"set"`
	// Kind is the index kind tag built on every shard (codec kind).
	Kind string `json:"kind"`
	// Dataset, Seed and N identify the *full* corpus exactly as in the
	// serving sidecar manifest (server.Manifest): the corpus is
	// gen(Seed, N) and each shard holds a Partitioner-selected subset.
	Dataset string `json:"dataset"`
	Seed    int64  `json:"seed"`
	N       int    `json:"n"`
	// Partitioner is the id→shard assignment of the whole set.
	Partitioner Partitioner `json:"partitioner"`
	// Generation orders rebuilds of the set; a router or shipping driver
	// treats a higher generation as the newer snapshot.
	Generation int64 `json:"generation"`
	// Shards lists the per-shard artifacts, indexed by shard position.
	Shards []SetShard `json:"shards"`
}

// SetShard describes one shard's on-disk artifacts, with paths relative to
// the manifest's directory.
type SetShard struct {
	// Index is the shard position s in [0, len(Shards)).
	Index int `json:"index"`
	// File is the relative path of the shard's .psix index file.
	File string `json:"file"`
	// Manifest is the relative path of its serving sidecar (.json).
	Manifest string `json:"manifest"`
	// N is the shard corpus size (the index file header's n).
	N int `json:"n"`
	// CRC32C is the Castagnoli checksum of the index file's contents
	// excluding its 4-byte trailer — i.e. the value the codec trailer
	// itself stores (see persist.FileChecksum for why a whole-file CRC
	// is the same constant for every valid file) — so a shipped shard
	// can be verified without loading it.
	CRC32C uint32 `json:"crc32c"`
}

// FileChecksum is persist.FileChecksum: the CRC-32C of an index file's
// contents excluding its trailer (the value the trailer itself stores —
// see that function for why a whole-file CRC cannot distinguish valid
// index files). Re-exported here so shard-set producers and verifiers
// need only this package.
func FileChecksum(path string) (uint32, error) {
	return persist.FileChecksum(path)
}

// Validate checks the manifest's internal consistency: schema, partitioner,
// contiguous shard indexes, and per-shard sizes summing to N.
func (m *SetManifest) Validate() error {
	if m.Schema != SetSchema {
		return fmt.Errorf("shard: manifest schema %q, want %q", m.Schema, SetSchema)
	}
	if _, err := ParsePartitioner(string(m.Partitioner)); err != nil {
		return err
	}
	if m.Set == "" {
		return fmt.Errorf("shard: manifest has empty set name")
	}
	if len(m.Shards) == 0 {
		return fmt.Errorf("shard: manifest lists no shards")
	}
	total := 0
	for i, s := range m.Shards {
		if s.Index != i {
			return fmt.Errorf("shard: manifest shard %d records index %d", i, s.Index)
		}
		if s.File == "" || s.Manifest == "" {
			return fmt.Errorf("shard: manifest shard %d missing file paths", i)
		}
		total += s.N
	}
	if total != m.N {
		return fmt.Errorf("shard: shard sizes sum to %d, corpus n is %d", total, m.N)
	}
	return nil
}

// WriteSetManifest validates m and writes it as <dir>/<set>.shardset.json,
// returning the path written.
func WriteSetManifest(dir string, m *SetManifest) (string, error) {
	return WriteSetManifestFS(vfs.OS{}, dir, m)
}

// WriteSetManifestFS is WriteSetManifest over an explicit filesystem. The
// write is atomic — temp file, fsync, rename, directory fsync — so a crash
// (or an injected fault) mid-write can never leave a torn manifest where a
// good one used to be: the set either advances to the new generation or
// keeps the old one.
func WriteSetManifestFS(fsys vfs.FS, dir string, m *SetManifest) (string, error) {
	m.Schema = SetSchema
	if err := m.Validate(); err != nil {
		return "", err
	}
	blob, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return "", err
	}
	path := filepath.Join(dir, m.Set+SetManifestExt)
	f, err := fsys.CreateTemp(dir, m.Set+SetManifestExt+".tmp*")
	if err != nil {
		return "", err
	}
	cleanup := func(err error) (string, error) {
		f.Close()
		fsys.Remove(f.Name())
		return "", err
	}
	if _, err := f.Write(append(blob, '\n')); err != nil {
		return cleanup(err)
	}
	if err := f.Sync(); err != nil {
		return cleanup(err)
	}
	if err := f.Close(); err != nil {
		return cleanup(err)
	}
	if err := fsys.Chmod(f.Name(), 0o644); err != nil {
		return cleanup(err)
	}
	if err := fsys.Rename(f.Name(), path); err != nil {
		return cleanup(err)
	}
	if err := fsys.SyncDir(dir); err != nil {
		return "", err
	}
	return path, nil
}

// ReadSetManifest parses and validates a shard-set manifest.
func ReadSetManifest(path string) (*SetManifest, error) {
	return ReadSetManifestFS(vfs.OS{}, path)
}

// ReadSetManifestFS is ReadSetManifest over an explicit filesystem.
func ReadSetManifestFS(fsys vfs.FS, path string) (*SetManifest, error) {
	blob, err := fsys.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m SetManifest
	if err := json.Unmarshal(blob, &m); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &m, nil
}

// VerifyFiles re-checksums every shard index file against the manifest and
// cross-checks each shard's serving sidecar, resolving relative paths
// against the manifest's directory dir. It returns the first mismatch —
// the pre-flight a serving host (or rollout driver) runs after a snapshot
// ships and before it reloads. Beyond torn bytes (CRC), it catches
// generation skew: a sidecar left over from an older build, or one whose
// corpus identity or shard stamp contradicts the set, would load cleanly
// and silently serve the wrong generation's answers.
func (m *SetManifest) VerifyFiles(dir string) error {
	return m.VerifyFilesFS(vfs.OS{}, dir)
}

// VerifyFilesFS is VerifyFiles over an explicit filesystem, so the read-side
// fault sweep can drive EIO through every verification read.
func (m *SetManifest) VerifyFilesFS(fsys vfs.FS, dir string) error {
	for _, s := range m.Shards {
		sum, err := persist.FileChecksumFS(fsys, filepath.Join(dir, s.File))
		if err != nil {
			return fmt.Errorf("shard %d: %w", s.Index, err)
		}
		if sum != s.CRC32C {
			return fmt.Errorf("shard %d: %s has crc32c %08x, manifest records %08x (torn or stale ship?)",
				s.Index, s.File, sum, s.CRC32C)
		}
		if err := m.verifySidecar(fsys, dir, s); err != nil {
			return err
		}
	}
	return nil
}

// verifySidecar checks one shard's serving sidecar against the set
// manifest. The sidecar is a server.Manifest, decoded structurally here
// (the server package sits above this one).
func (m *SetManifest) verifySidecar(fsys vfs.FS, dir string, s SetShard) error {
	blob, err := fsys.ReadFile(filepath.Join(dir, s.Manifest))
	if err != nil {
		return fmt.Errorf("shard %d: %w", s.Index, err)
	}
	var side struct {
		Dataset    string `json:"dataset"`
		Seed       int64  `json:"seed"`
		N          int    `json:"n"`
		Generation int64  `json:"generation"`
		Shard      *Info  `json:"shard"`
	}
	if err := json.Unmarshal(blob, &side); err != nil {
		return fmt.Errorf("shard %d: %s: %v", s.Index, s.Manifest, err)
	}
	if side.Generation != m.Generation {
		return fmt.Errorf("shard %d: generation skew: sidecar %s records generation %d, set manifest records %d (stale sidecar?)",
			s.Index, s.Manifest, side.Generation, m.Generation)
	}
	if side.Dataset != m.Dataset || side.Seed != m.Seed || side.N != m.N {
		return fmt.Errorf("shard %d: sidecar %s describes corpus %s/seed %d/n %d, set manifest %s/seed %d/n %d",
			s.Index, s.Manifest, side.Dataset, side.Seed, side.N, m.Dataset, m.Seed, m.N)
	}
	if side.Shard == nil {
		// A single-shard set is the unsharded baseline, written unstamped
		// by design; a multi-shard sidecar without a stamp would serve
		// global ids for a subset corpus.
		if len(m.Shards) == 1 {
			return nil
		}
		return fmt.Errorf("shard %d: sidecar %s carries no shard stamp", s.Index, s.Manifest)
	}
	if side.Shard.Set != m.Set || side.Shard.Partitioner != m.Partitioner ||
		side.Shard.Shards != len(m.Shards) || side.Shard.Index != s.Index {
		return fmt.Errorf("shard %d: sidecar %s stamp %+v contradicts the set manifest (set %s, %s over %d shards)",
			s.Index, s.Manifest, *side.Shard, m.Set, m.Partitioner, len(m.Shards))
	}
	return nil
}
