// Package engine is the shared concurrency substrate of the repository: a
// bounded worker pool (Pool) used by every parallel loop — index
// construction in internal/core, k-means assignment in internal/cluster,
// graph construction in internal/knngraph — and a batch query engine
// (SearchBatch) that fans a slab of queries out over the pool against any
// index.Index.
//
// Keeping the idiom in one place matters for two reasons. First, the paper's
// evaluation protocol is single-threaded, so every concurrent path must be
// an explicit opt-in that leaves the serial semantics intact: SearchBatch is
// defined to return exactly what a serial Search loop would return, in the
// same order. Second, the serving stack builds on the same fan-out/fan-in
// shape — the HTTP daemon's batch requests run through SearchBatchPool, and
// the sharded tier's scatter-gather (internal/router.Local) fans each query
// across shard indexes on a Pool — so one audited implementation beats N
// ad-hoc WaitGroups.
package engine

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/index"
	"repro/internal/obs"
	"repro/internal/topk"
)

// panicTrap collects the first panic raised by any worker goroutine of one
// parallel loop. A panic inside a bare goroutine would kill the whole
// process (and, were it swallowed, would leave wg.Wait deadlocked on a
// worker that never finishes its range); instead every worker recovers into
// the trap, the trap's stop flag cancels the remaining iterations of all
// workers, and the caller re-panics with the original value after wg.Wait —
// so a panicking f behaves exactly as it would in the serial loop: the
// caller sees the panic, the process does not die from a goroutine, and no
// goroutines are left behind. The serving layer relies on this to turn a
// panicking Search into an HTTP 500 instead of a crashed daemon.
type panicTrap struct {
	stop  atomic.Bool
	once  sync.Once
	value any
}

// guard is deferred by every worker; it records the panic (first wins) and
// stops the loop.
func (t *panicTrap) guard() {
	if r := recover(); r != nil {
		t.once.Do(func() { t.value = r })
		t.stop.Store(true)
	}
}

// rethrow re-raises the recorded panic on the calling goroutine, if any.
// Safe to read t.value without the Once: wg.Wait orders it before the read.
func (t *panicTrap) rethrow() {
	if t.value != nil {
		panic(t.value)
	}
}

// Pool bounds the number of goroutines a parallel loop may use. The zero
// value is a valid pool running at GOMAXPROCS. Pools are values, not
// resources: they hold no goroutines between calls and are safe to copy and
// to use from multiple goroutines.
type Pool struct {
	workers int
}

// NewPool returns a pool of at most workers goroutines; workers <= 0 means
// GOMAXPROCS (the paper indexes with four threads; we default to all CPUs).
func NewPool(workers int) Pool {
	if workers < 0 {
		workers = 0
	}
	return Pool{workers: workers}
}

// Workers returns the effective worker count.
func (p Pool) Workers() int {
	if p.workers > 0 {
		return p.workers
	}
	return runtime.GOMAXPROCS(0)
}

// clamp returns the goroutine count for a loop of n iterations.
func (p Pool) clamp(n int) int {
	w := p.Workers()
	if w > n {
		w = n
	}
	return w
}

// For runs f(i) for every i in [0, n) over contiguous per-worker chunks.
// Iterations must be independent. Static chunking has the lowest scheduling
// overhead and the best cache locality, which suits uniform-cost work such
// as computing one permutation per data point; use ForDynamic when per-item
// cost is skewed.
//
// If f panics, the remaining iterations are cancelled and the panic
// resurfaces on the caller, as it would in a serial loop.
func (p Pool) For(n int, f func(i int)) {
	w := p.clamp(n)
	if w <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var trap panicTrap
	var wg sync.WaitGroup
	chunk := (n + w - 1) / w
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			defer trap.guard()
			for i := lo; i < hi; i++ {
				if trap.stop.Load() {
					return
				}
				f(i)
			}
		}(lo, hi)
	}
	wg.Wait()
	trap.rethrow()
}

// ForDynamic runs f(i) for every i in [0, n), workers pulling one item at a
// time from a shared counter. The per-item atomic add buys load balance for
// skewed work — k-NN queries vary wildly in candidate-set size — and is
// noise next to even one distance computation.
func (p Pool) ForDynamic(n int, f func(i int)) {
	p.ForWithID(n, func(_, i int) { f(i) })
}

// ForWithID is ForDynamic passing each invocation the pulling worker's id in
// [0, Workers()), so callers can keep per-worker state (RNGs, scratch
// buffers) without locking.
//
// If f panics, the remaining iterations are cancelled and the panic
// resurfaces on the caller, as it would in a serial loop.
func (p Pool) ForWithID(n int, f func(worker, i int)) {
	p.ForWithIDCtx(context.Background(), n, f)
}

// ForWithIDCtx is ForWithID with cooperative cancellation: workers check
// ctx between items and stop pulling once it is done, so a batch whose
// client has gone away — a server timeout, a closed connection — releases
// its pool workers after at most one in-flight item each instead of
// grinding through the remaining iterations. It returns ctx.Err() when the
// loop was cut short, nil when every iteration ran. Completed iterations
// are never undone; the caller owns deciding whether partial output is
// usable (the batch query engine discards it).
func (p Pool) ForWithIDCtx(ctx context.Context, n int, f func(worker, i int)) error {
	w := p.clamp(n)
	if w <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			f(0, i)
		}
		return nil
	}
	var trap panicTrap
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for t := 0; t < w; t++ {
		go func(worker int) {
			defer wg.Done()
			defer trap.guard()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || trap.stop.Load() || ctx.Err() != nil {
					return
				}
				f(worker, i)
			}
		}(t)
	}
	wg.Wait()
	trap.rethrow()
	return ctx.Err()
}

// SearchBatch answers a batch of queries against idx on a default
// (GOMAXPROCS) pool. See SearchBatchPool for the contract.
func SearchBatch[T any](idx index.Index[T], queries []T, k int) [][]topk.Neighbor {
	return SearchBatchPool(Pool{}, idx, queries, k)
}

// SearchBatchPool answers a batch of queries concurrently. out[i] is
// exactly what the i-th call of the serial loop
//
//	for i, q := range queries { out[i] = idx.Search(q, k) }
//
// would have produced, regardless of worker count or scheduling: each
// worker writes only its own queries' slots, and indexes whose Search
// consumes shared mutable state (the proximity graph's entry-point counter)
// implement index.Batcher to pin each query to the seed its serial-loop
// position would have drawn.
//
// A Search that panics cancels the rest of the batch and re-panics on the
// caller (see Pool.For), exactly as a serial loop would fail.
//
// Indexes implementing index.SearcherProvider get per-worker scratch
// ownership: each worker mints one Searcher lazily and answers all its
// queries through it, so the batch reuses one counter arena and buffer set
// per worker instead of cycling the index's scratch pool once per query.
// Searchers are defined to answer exactly like Search, so the serial-loop
// contract above is unchanged.
func SearchBatchPool[T any](p Pool, idx index.Index[T], queries []T, k int) [][]topk.Neighbor {
	out, _ := SearchBatchPoolCtx(context.Background(), p, idx, queries, k)
	return out
}

// SearchBatchPoolCtx is SearchBatchPool with cooperative cancellation:
// workers stop pulling queries once ctx is done and the call returns
// ctx.Err() with a nil result — a partially-answered batch is never
// returned, matching the all-or-nothing contract of the serial loop.
// (Indexes implementing their own index.Batcher run to completion; the
// batcher interface predates cancellation and its implementations pin
// cross-query state that cannot stop midway.)
func SearchBatchPoolCtx[T any](ctx context.Context, p Pool, idx index.Index[T], queries []T, k int) ([][]topk.Neighbor, error) {
	return SearchBatchTracedPoolCtx(ctx, p, idx, queries, k, nil)
}

// SearchBatchTracedPoolCtx is SearchBatchPoolCtx with stage attribution:
// when tr is non-nil and the index's searchers implement obs.Traceable,
// each worker records its queries' stage counters and timings into a
// private per-worker trace (no cross-worker contention on the hot path),
// and the per-worker traces are summed into tr after the batch completes.
// A nil tr, or an index without traceable searchers, costs nothing.
// Because workers run concurrently, the summed stage times measure total
// work, not wall-clock elapsed time.
func SearchBatchTracedPoolCtx[T any](ctx context.Context, p Pool, idx index.Index[T], queries []T, k int, tr *obs.QueryTrace) ([][]topk.Neighbor, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if b, ok := idx.(index.Batcher[T]); ok {
		return b.SearchBatch(queries, k, p.Workers()), nil
	}
	out := make([][]topk.Neighbor, len(queries))
	var err error
	if sp, ok := idx.(index.SearcherProvider[T]); ok {
		// Slots are indexed by worker id; each is touched by exactly one
		// worker goroutine (ForWithIDCtx's contract), so no locking.
		searchers := make([]index.Searcher[T], p.clamp(len(queries)))
		var traces []obs.QueryTrace
		if tr != nil {
			traces = make([]obs.QueryTrace, len(searchers))
		}
		err = p.ForWithIDCtx(ctx, len(queries), func(worker, i int) {
			s := searchers[worker]
			if s == nil {
				s = sp.NewSearcher()
				searchers[worker] = s
				if tr != nil {
					if tt, ok := s.(obs.Traceable); ok {
						tt.SetTrace(&traces[worker])
					}
				}
			}
			out[i] = s.Search(queries[i], k)
		})
		if tr != nil {
			for w := range traces {
				tr.Merge(&traces[w])
			}
		}
	} else {
		err = p.ForWithIDCtx(ctx, len(queries), func(_, i int) {
			out[i] = idx.Search(queries[i], k)
		})
	}
	if err != nil {
		return nil, err
	}
	return out, nil
}
