package eval

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/index"
	"repro/internal/seqscan"
	"repro/internal/space"
	"repro/internal/topk"
)

func TestSplitsDisjointAndComplete(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	splits, err := Splits(r, 100, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(splits) != 5 {
		t.Fatalf("%d splits", len(splits))
	}
	for _, s := range splits {
		if len(s.Queries) != 10 || len(s.DB) != 90 {
			t.Fatalf("split sizes %d/%d", len(s.Queries), len(s.DB))
		}
		seen := map[int]bool{}
		for _, i := range append(append([]int(nil), s.DB...), s.Queries...) {
			if seen[i] {
				t.Fatal("index appears twice in one split")
			}
			if i < 0 || i >= 100 {
				t.Fatal("index out of range")
			}
			seen[i] = true
		}
		if len(seen) != 100 {
			t.Fatal("split does not cover data set")
		}
	}
}

func TestSplitsValidation(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	if _, err := Splits(r, 10, 10, 5); err == nil {
		t.Fatal("numQueries == n accepted")
	}
	if _, err := Splits(r, 10, 0, 5); err == nil {
		t.Fatal("numQueries == 0 accepted")
	}
	if _, err := Splits(r, 10, 5, 0); err == nil {
		t.Fatal("folds == 0 accepted")
	}
}

func TestApply(t *testing.T) {
	data := []string{"a", "b", "c", "d"}
	db, q := Apply(data, Split{DB: []int{0, 2}, Queries: []int{3}})
	if len(db) != 2 || db[0] != "a" || db[1] != "c" {
		t.Fatalf("db = %v", db)
	}
	if len(q) != 1 || q[0] != "d" {
		t.Fatalf("q = %v", q)
	}
}

func TestRecallKnownValues(t *testing.T) {
	truth := [][]topk.Neighbor{
		{{ID: 1}, {ID: 2}},
		{{ID: 3}, {ID: 4}},
	}
	got := [][]topk.Neighbor{
		{{ID: 1}, {ID: 2}}, // 100%
		{{ID: 3}, {ID: 9}}, // 50%
	}
	if r := Recall(truth, got); r != 0.75 {
		t.Fatalf("recall = %v, want 0.75", r)
	}
	if r := Recall(nil, nil); r != 0 {
		t.Fatalf("empty recall = %v", r)
	}
	// Empty truth for a query counts as satisfied.
	if r := Recall([][]topk.Neighbor{{}}, [][]topk.Neighbor{{}}); r != 1 {
		t.Fatalf("empty-truth recall = %v", r)
	}
}

func TestRecallPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Recall(make([][]topk.Neighbor, 1), nil)
}

func randData(r *rand.Rand, n, dim int) [][]float32 {
	out := make([][]float32, n)
	for i := range out {
		v := make([]float32, dim)
		for j := range v {
			v[j] = float32(r.NormFloat64())
		}
		out[i] = v
	}
	return out
}

func TestMeasureExactScanHasPerfectRecall(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	db := randData(r, 500, 8)
	queries := randData(r, 20, 8)
	truth := GroundTruth[[]float32](space.L2{}, db, queries, 5)
	bt, got := BruteTime[[]float32](space.L2{}, db, queries, 5)
	if Recall(truth, got) != 1 {
		t.Fatal("brute force does not match ground truth")
	}
	counter := space.NewCounter[[]float32](space.L2{})
	scan := seqscan.New[[]float32](counter, db)
	res := Measure[[]float32](scan, queries, truth, 5, bt, counter)
	if res.Recall != 1 {
		t.Fatalf("recall = %v", res.Recall)
	}
	if res.Method != "seqscan" {
		t.Fatalf("method = %q", res.Method)
	}
	if res.DistPerQuery != float64(len(db)) {
		t.Fatalf("DistPerQuery = %v, want %d", res.DistPerQuery, len(db))
	}
	if res.QueryTime <= 0 || res.Improvement <= 0 {
		t.Fatalf("timing not populated: %+v", res)
	}
}

func TestMeasureBuild(t *testing.T) {
	idx, dur, err := MeasureBuild[[]float32](func() (index.Index[[]float32], error) {
		time.Sleep(time.Millisecond)
		return seqscan.New[[]float32](space.L2{}, [][]float32{{1}}), nil
	})
	if err != nil || idx == nil {
		t.Fatal(err)
	}
	if dur < time.Millisecond {
		t.Fatalf("build time %v", dur)
	}
}

func TestMeanResult(t *testing.T) {
	rs := []Result{
		{Method: "x", Recall: 0.8, Improvement: 10, QueryTime: 10 * time.Microsecond},
		{Method: "x", Recall: 1.0, Improvement: 20, QueryTime: 30 * time.Microsecond},
	}
	m := MeanResult(rs)
	if m.Recall != 0.9 || m.Improvement != 15 || m.QueryTime != 20*time.Microsecond {
		t.Fatalf("mean = %+v", m)
	}
	if MeanResult(nil).Method != "" {
		t.Fatal("empty mean should be zero")
	}
}
