package projection

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/space"
	"repro/internal/vecmath"
)

func TestDenseValidation(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	if _, err := NewDense(r, 0, 4); err == nil {
		t.Fatal("in=0 accepted")
	}
	if _, err := NewDense(r, 4, 0); err == nil {
		t.Fatal("out=0 accepted")
	}
	p, err := NewDense(r, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	if p.Out() != 4 {
		t.Fatalf("Out = %d", p.Out())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("wrong input dim should panic")
		}
	}()
	p.Project([]float32{1})
}

func TestDensePreservesDistances(t *testing.T) {
	// JL property: with out=64, projected distances correlate strongly
	// with originals over random 32-d vectors.
	r := rand.New(rand.NewSource(2))
	p, err := NewDense(r, 32, 64)
	if err != nil {
		t.Fatal(err)
	}
	var ratioSum, ratioSq float64
	const trials = 300
	for i := 0; i < trials; i++ {
		a := make([]float32, 32)
		b := make([]float32, 32)
		for j := range a {
			a[j] = float32(r.NormFloat64())
			b[j] = float32(r.NormFloat64())
		}
		orig := vecmath.L2(a, b)
		proj := vecmath.L2(p.Project(a), p.Project(b))
		ratio := proj / orig
		ratioSum += ratio
		ratioSq += ratio * ratio
	}
	mean := ratioSum / trials
	sd := math.Sqrt(ratioSq/trials - mean*mean)
	if math.Abs(mean-1) > 0.1 {
		t.Fatalf("mean distance ratio %v, want ~1", mean)
	}
	if sd > 0.2 {
		t.Fatalf("ratio sd %v too large for out=64", sd)
	}
}

func TestDenseLinearity(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	p, err := NewDense(r, 8, 16)
	if err != nil {
		t.Fatal(err)
	}
	a := make([]float32, 8)
	for j := range a {
		a[j] = float32(r.NormFloat64())
	}
	pa := p.Project(a)
	a2 := vecmath.Clone(a)
	vecmath.Scale(a2, 2)
	pa2 := p.Project(a2)
	for i := range pa {
		if math.Abs(float64(pa2[i]-2*pa[i])) > 1e-4 {
			t.Fatalf("projection not linear at %d: %v vs %v", i, pa2[i], 2*pa[i])
		}
	}
}

func TestSparseDeterministic(t *testing.T) {
	sv, err := space.NewSparseVector([]int32{3, 100, 5000}, []float32{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	p1, _ := NewSparse(7, 32)
	p2, _ := NewSparse(7, 32)
	a, b := p1.Project(sv), p2.Project(sv)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different projections")
		}
	}
	p3, _ := NewSparse(8, 32)
	c := p3.Project(sv)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical projections")
	}
}

func TestSparsePreservesCosine(t *testing.T) {
	// Cosine similarity between sparse vectors must correlate with the
	// cosine of their projections (panel 2b of the paper).
	r := rand.New(rand.NewSource(4))
	p, err := NewSparse(9, 128)
	if err != nil {
		t.Fatal(err)
	}
	cos := func(a, b []float32) float64 {
		na, nb := vecmath.Norm(a), vecmath.Norm(b)
		if na == 0 || nb == 0 {
			return 0
		}
		return vecmath.Dot(a, b) / (na * nb)
	}
	gen := func() space.SparseVector {
		nnz := 20 + r.Intn(30)
		seen := map[int32]bool{}
		var idx []int32
		var val []float32
		for len(idx) < nnz {
			i := int32(r.Intn(10000))
			if seen[i] {
				continue
			}
			seen[i] = true
			idx = append(idx, i)
			val = append(val, float32(r.Float64()))
		}
		sv, err := space.NewSparseVector(idx, val)
		if err != nil {
			t.Fatal(err)
		}
		return sv
	}
	cd := space.CosineDistance{}
	var worst float64
	for i := 0; i < 50; i++ {
		a, b := gen(), gen()
		origCos := 1 - cd.Distance(a, b)
		projCos := cos(p.Project(a), p.Project(b))
		if d := math.Abs(origCos - projCos); d > worst {
			worst = d
		}
	}
	if worst > 0.35 {
		t.Fatalf("worst cosine deviation %v too large at out=128", worst)
	}
}

func TestSparseValidation(t *testing.T) {
	if _, err := NewSparse(1, 0); err == nil {
		t.Fatal("out=0 accepted")
	}
}

func TestGaussAtMoments(t *testing.T) {
	var sum, sq float64
	const n = 20000
	for i := 0; i < n; i++ {
		g := gaussAt(42, uint64(i), uint64(i%64))
		sum += g
		sq += g * g
	}
	mean := sum / n
	variance := sq/n - mean*mean
	if math.Abs(mean) > 0.03 {
		t.Fatalf("hashed gaussian mean %v", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("hashed gaussian variance %v", variance)
	}
}
