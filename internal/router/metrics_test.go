package router_test

// End-to-end test of the router's observability surface: GET /metrics
// exposes well-formed Prometheus text whose per-index, per-shard and
// per-replica families are consistent with the traffic actually routed —
// including the ejection/re-admission lifecycle of a failing replica.

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/router"
)

// scrapeRouterMetrics fetches and strictly parses the router's /metrics.
func scrapeRouterMetrics(t *testing.T, url string) *obs.TextMetrics {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("GET /metrics: content-type %q, want text/plain", ct)
	}
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	tm, err := obs.ParseText(bytes.NewReader(blob))
	if err != nil {
		t.Fatalf("parsing /metrics page: %v\npage:\n%s", err, blob)
	}
	return tm
}

func routerMetric(t *testing.T, tm *obs.TextMetrics, name string, match map[string]string) float64 {
	t.Helper()
sampling:
	for _, s := range tm.Samples {
		if s.Name != name {
			continue
		}
		for k, want := range match {
			if s.Labels[k] != want {
				continue sampling
			}
		}
		return s.Value
	}
	t.Fatalf("no sample %s%v in /metrics", name, match)
	return 0
}

// TestRouterMetricsEndToEnd drives a replica group with one failing member
// through failover, ejection and re-admission, and checks that every
// transition and attempt lands in the scraped families.
func TestRouterMetricsEndToEnd(t *testing.T) {
	bad := newSyntheticReplica(t, 0)
	good := newSyntheticReplica(t, 1)
	bad.failing.Store(true)

	mreg := obs.NewRegistry()
	rt, err := router.New(router.Options{
		Replicas:      [][]string{{bad.ts.URL, good.ts.URL}},
		ShardTimeout:  2 * time.Second,
		EjectAfter:    2,
		ProbeInterval: 30 * time.Millisecond,
		Metrics:       mreg,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	ts := httptest.NewServer(rt.Handler())
	t.Cleanup(ts.Close)

	// 6 good requests (the group fails over off the bad replica) and one
	// front-tier rejection.
	for i := 0; i < 6; i++ {
		status, raw := post(t, ts.URL+"/v1/indexes/dna/search", map[string]any{"query": "A", "k": 1})
		if status != http.StatusOK {
			t.Fatalf("query %d: status %d: %s", i, status, raw)
		}
	}
	if status, _ := post(t, ts.URL+"/v1/indexes/dna/search", map[string]any{"query": "A", "k": -1}); status != http.StatusBadRequest {
		t.Fatalf("bad-k request: status %d, want 400", status)
	}

	tm := scrapeRouterMetrics(t, ts.URL)
	idx := map[string]string{"index": "dna"}
	if got := routerMetric(t, tm, "permrouter_requests_total", idx); got != 7 {
		t.Errorf("requests_total = %v, want 7", got)
	}
	if got := routerMetric(t, tm, "permrouter_request_failures_total", idx); got != 1 {
		t.Errorf("request_failures_total = %v, want 1", got)
	}
	p50, count, ok := tm.Quantile("permrouter_request_latency_seconds", idx, 0.5)
	if !ok || count != 7 {
		t.Fatalf("request latency histogram: count = %d (ok=%v), want 7", count, ok)
	}
	if p50 <= 0 {
		t.Errorf("request latency p50 = %v, want > 0", p50)
	}
	// Shard-level: every successful leg recorded latency; the failover off
	// the bad replica was counted.
	shard0 := map[string]string{"shard": "0"}
	if _, legs, ok := tm.Quantile("permrouter_shard_latency_seconds", shard0, 0.5); !ok || legs < 6 {
		t.Errorf("shard latency observations = %d (ok=%v), want >= 6", legs, ok)
	}
	if got := routerMetric(t, tm, "permrouter_shard_failovers_total", shard0); got < 1 {
		t.Errorf("shard_failovers_total = %v, want >= 1", got)
	}
	// Replica-level: the bad replica saw attempts and failures before
	// crossing the ejection threshold exactly once; the good one served.
	badRep := map[string]string{"shard": "0", "replica": "0"}
	goodRep := map[string]string{"shard": "0", "replica": "1"}
	if got := routerMetric(t, tm, "permrouter_replica_requests_total", badRep); got < 2 {
		t.Errorf("bad replica requests_total = %v, want >= 2", got)
	}
	if got := routerMetric(t, tm, "permrouter_replica_failures_total", badRep); got < 2 {
		t.Errorf("bad replica failures_total = %v, want >= 2 (ejection threshold)", got)
	}
	if got := routerMetric(t, tm, "permrouter_replica_ejections_total", badRep); got != 1 {
		t.Errorf("bad replica ejections_total = %v, want exactly 1 (transition-counted)", got)
	}
	if got := routerMetric(t, tm, "permrouter_replica_requests_total", goodRep); got < 6 {
		t.Errorf("good replica requests_total = %v, want >= 6", got)
	}
	if got := routerMetric(t, tm, "permrouter_replica_failures_total", goodRep); got != 0 {
		t.Errorf("good replica failures_total = %v, want 0", got)
	}
	if got := routerMetric(t, tm, "permrouter_uptime_seconds", nil); got <= 0 {
		t.Errorf("permrouter_uptime_seconds = %v, want > 0", got)
	}

	// Recovery: the prober re-admits the replica, counted as a transition.
	bad.failing.Store(false)
	deadline := time.Now().Add(3 * time.Second)
	for {
		tm = scrapeRouterMetrics(t, ts.URL)
		if routerMetric(t, tm, "permrouter_replica_readmissions_total", badRep) >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("readmissions_total never incremented after the replica recovered")
		}
		time.Sleep(20 * time.Millisecond)
	}
}
