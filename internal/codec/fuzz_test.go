package codec_test

// The fuzz target lives in the codec package's external test package so it
// can drive the full load path — codec header/checksum decoding plus every
// kind payload decoder behind the internal/persist registry — without an
// import cycle.

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/knngraph"
	"repro/internal/lsh"
	"repro/internal/persist"
	"repro/internal/seqscan"
	"repro/internal/space"
	"repro/internal/vptree"
)

// fuzzCorpus is the small deterministic data set every fuzz load runs
// against: 40 4-d vectors on a fixed lattice. It must never change, or the
// checked-in seed blobs (built over it) stop matching its recorded size.
func fuzzCorpus() [][]float32 {
	data := make([][]float32, 40)
	for i := range data {
		data[i] = []float32{
			float32(i % 5), float32((i * 7) % 11),
			float32((i * 3) % 13), float32(i) / 4,
		}
	}
	return data
}

// fuzzSeeds builds one valid blob per representative kind over the fuzz
// corpus. Every structural family is covered: flat arrays (brute-force),
// posting lists (napp), recursive trees (vptree), adjacency lists
// (sw-graph), hash tables (mplsh), and the empty payload (seqscan).
func fuzzSeeds(tb testing.TB) [][]byte {
	data := fuzzCorpus()
	sp := space.L2{}
	builders := []func() (index.Index[[]float32], error){
		func() (index.Index[[]float32], error) {
			return core.NewBruteForceFilter[[]float32](sp, data, core.BruteForceOptions{NumPivots: 8, Seed: 3})
		},
		func() (index.Index[[]float32], error) {
			return core.NewNAPP[[]float32](sp, data, core.NAPPOptions{NumPivots: 8, NumPivotIndex: 4, MinShared: 1, Seed: 3})
		},
		func() (index.Index[[]float32], error) {
			return core.NewPPIndex[[]float32](sp, data, core.PPIndexOptions{NumPivots: 8, PrefixLen: 3, Copies: 2, Seed: 3})
		},
		func() (index.Index[[]float32], error) {
			return vptree.New[[]float32](sp, data, vptree.Options{BucketSize: 4, Seed: 3})
		},
		func() (index.Index[[]float32], error) {
			return knngraph.NewSW[[]float32](sp, data, knngraph.Options{NN: 4, Workers: 1, Seed: 3})
		},
		func() (index.Index[[]float32], error) {
			return lsh.New(data, lsh.Options{Tables: 2, Hashes: 4, Seed: 3})
		},
		func() (index.Index[[]float32], error) {
			return seqscan.New[[]float32](sp, data), nil
		},
	}
	var out [][]byte
	for _, build := range builders {
		idx, err := build()
		if err != nil {
			tb.Fatal(err)
		}
		var blob bytes.Buffer
		if err := persist.Save(&blob, idx); err != nil {
			tb.Fatal(err)
		}
		out = append(out, blob.Bytes())
	}
	return out
}

// FuzzLoad feeds arbitrary bytes to the full index-load path. The contract
// under fuzz: Load either succeeds or returns an error — it never panics,
// never allocates absurdly off a corrupt length prefix, and any index it
// does accept must survive being searched.
func FuzzLoad(f *testing.F) {
	for _, seed := range fuzzSeeds(f) {
		f.Add(seed)
		// Mutants that keep structure but break the trailer or header,
		// steering coverage toward the validation paths.
		if len(seed) > 8 {
			f.Add(seed[:len(seed)/2])
			flip := bytes.Clone(seed)
			flip[len(flip)/3] ^= 0x10
			f.Add(flip)
		}
	}
	data := fuzzCorpus()
	queries := [][]float32{data[0], {9, 9, 9, 9}}
	f.Fuzz(func(t *testing.T, blob []byte) {
		idx, err := persist.Load[[]float32](bytes.NewReader(blob), space.L2{}, data)
		if err != nil {
			return
		}
		// A blob that passes every validation layer must yield a
		// fully functional index.
		for _, q := range queries {
			for _, k := range []int{1, 3, len(data) + 2} {
				idx.Search(q, k)
			}
		}
	})
}

// TestWriteSeedCorpus regenerates the checked-in seed corpus under
// testdata/fuzz/FuzzLoad when WRITE_FUZZ_CORPUS is set (it is a maintenance
// tool, not a test: run it after any format change and commit the output).
// The corpus duplicates the f.Add seeds on disk so `go test -fuzz` starts
// from real blobs even in checkouts where the builders have drifted, and so
// minimized crash inputs have a stable home.
func TestWriteSeedCorpus(t *testing.T) {
	if os.Getenv("WRITE_FUZZ_CORPUS") == "" {
		t.Skip("set WRITE_FUZZ_CORPUS=1 to regenerate testdata/fuzz/FuzzLoad")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzLoad")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	write := func(name string, blob []byte) {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%s)\n", strconv.Quote(string(blob)))
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	for i, seed := range fuzzSeeds(t) {
		write(fmt.Sprintf("seed-valid-%d", i), seed)
		if len(seed) > 8 {
			write(fmt.Sprintf("seed-truncated-%d", i), seed[:len(seed)/2])
			flip := bytes.Clone(seed)
			flip[len(flip)/3] ^= 0x10
			write(fmt.Sprintf("seed-bitflip-%d", i), flip)
		}
	}
	write("seed-empty", nil)
	write("seed-bad-magic", []byte("NOPE....definitely not an index"))
}

// TestFuzzSeedsRoundtrip keeps the seed builders honest on every ordinary
// `go test` run: each seed blob must load cleanly and search.
func TestFuzzSeedsRoundtrip(t *testing.T) {
	data := fuzzCorpus()
	for i, seed := range fuzzSeeds(t) {
		idx, err := persist.Load[[]float32](bytes.NewReader(seed), space.L2{}, data)
		if err != nil {
			t.Fatalf("seed %d does not load: %v", i, err)
		}
		if got := idx.Search(data[1], 3); len(got) == 0 {
			t.Errorf("seed %d (%s) returned no results", i, idx.Name())
		}
	}
}
