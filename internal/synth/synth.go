// Package synth provides the random-distribution substrates behind the
// synthetic data sets: Gaussian mixtures (CoPhIR/SIFT stand-ins), Dirichlet
// sampling (LDA topic histograms), Zipf-distributed vocabularies (TF-IDF
// text), and Markov-chain genomes (DNA). Every generator is deterministic
// given a *rand.Rand, so experiments are reproducible from a single seed.
package synth

import (
	"math"
	"math/rand"
)

// GaussianMixture generates dense vectors from a mixture of k anisotropic
// Gaussian clusters in dim dimensions. Cluster centers are drawn uniformly
// from [0, spread]^dim and each cluster gets its own per-axis standard
// deviations, giving the moderate intrinsic dimensionality that real visual
// descriptors (SIFT, MPEG7) exhibit.
type GaussianMixture struct {
	Dim      int
	centers  [][]float32
	sigmas   [][]float32
	weights  []float64 // cumulative
	clampLo  float32
	clampHi  float32
	hasClamp bool
}

// NewGaussianMixture builds a mixture with k clusters in dim dimensions.
// spread controls how far apart cluster centers lie relative to the
// within-cluster deviation sigma (larger spread = more clustered data).
func NewGaussianMixture(r *rand.Rand, dim, k int, spread, sigma float64) *GaussianMixture {
	if dim <= 0 || k <= 0 {
		panic("synth: dim and k must be positive")
	}
	g := &GaussianMixture{Dim: dim}
	g.centers = make([][]float32, k)
	g.sigmas = make([][]float32, k)
	raw := make([]float64, k)
	var sum float64
	for c := 0; c < k; c++ {
		center := make([]float32, dim)
		sg := make([]float32, dim)
		for d := 0; d < dim; d++ {
			center[d] = float32(r.Float64() * spread)
			// Anisotropy: each axis gets sigma scaled by U(0.3, 1.7).
			sg[d] = float32(sigma * (0.3 + 1.4*r.Float64()))
		}
		g.centers[c] = center
		g.sigmas[c] = sg
		raw[c] = 0.2 + r.Float64() // uneven cluster sizes
		sum += raw[c]
	}
	g.weights = make([]float64, k)
	acc := 0.0
	for c := 0; c < k; c++ {
		acc += raw[c] / sum
		g.weights[c] = acc
	}
	return g
}

// Clamp restricts generated coordinates to [lo, hi], e.g. [0, 255] for
// SIFT-like byte-valued descriptors.
func (g *GaussianMixture) Clamp(lo, hi float32) *GaussianMixture {
	g.clampLo, g.clampHi, g.hasClamp = lo, hi, true
	return g
}

// Sample draws one vector.
func (g *GaussianMixture) Sample(r *rand.Rand) []float32 {
	c := g.pickCluster(r)
	v := make([]float32, g.Dim)
	center, sg := g.centers[c], g.sigmas[c]
	for d := 0; d < g.Dim; d++ {
		x := float64(center[d]) + r.NormFloat64()*float64(sg[d])
		if g.hasClamp {
			if x < float64(g.clampLo) {
				x = float64(g.clampLo)
			} else if x > float64(g.clampHi) {
				x = float64(g.clampHi)
			}
		}
		v[d] = float32(x)
	}
	return v
}

func (g *GaussianMixture) pickCluster(r *rand.Rand) int {
	u := r.Float64()
	for c, w := range g.weights {
		if u <= w {
			return c
		}
	}
	return len(g.weights) - 1
}

// SampleN draws n vectors.
func (g *GaussianMixture) SampleN(r *rand.Rand, n int) [][]float32 {
	out := make([][]float32, n)
	for i := range out {
		out[i] = g.Sample(r)
	}
	return out
}

// Dirichlet samples a probability vector from a Dirichlet distribution with
// the given concentration parameters, via normalized Gamma draws.
func Dirichlet(r *rand.Rand, alpha []float64) []float32 {
	out := make([]float32, len(alpha))
	var sum float64
	g := make([]float64, len(alpha))
	for i, a := range alpha {
		g[i] = gammaSample(r, a)
		sum += g[i]
	}
	if sum == 0 {
		// Degenerate draw (can happen for tiny alphas): fall back to uniform.
		for i := range out {
			out[i] = 1 / float32(len(alpha))
		}
		return out
	}
	for i := range out {
		out[i] = float32(g[i] / sum)
	}
	return out
}

// SymmetricDirichlet samples a dim-dimensional Dirichlet with all
// concentrations equal to alpha. Small alpha (e.g. 0.1-0.5) yields the
// sparse, spiky topic histograms LDA produces.
func SymmetricDirichlet(r *rand.Rand, dim int, alpha float64) []float32 {
	a := make([]float64, dim)
	for i := range a {
		a[i] = alpha
	}
	return Dirichlet(r, a)
}

// gammaSample draws from Gamma(shape, 1) using the Marsaglia-Tsang method,
// with Johnk-style boosting for shape < 1.
func gammaSample(r *rand.Rand, shape float64) float64 {
	if shape <= 0 {
		return 0
	}
	if shape < 1 {
		// Gamma(a) = Gamma(a+1) * U^(1/a)
		u := r.Float64()
		for u == 0 {
			u = r.Float64()
		}
		return gammaSample(r, shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := r.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := r.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// Zipf draws integers in [0, n) with probability proportional to
// 1/(rank+q)^s — the classic model of natural-language word frequencies
// behind the Wiki-sparse TF-IDF generator.
type Zipf struct {
	z *rand.Zipf
}

// NewZipf creates a Zipf sampler over [0, n) with exponent s > 1.
func NewZipf(r *rand.Rand, s float64, n uint64) *Zipf {
	return &Zipf{z: rand.NewZipf(r, s, 1, n-1)}
}

// Sample draws one rank.
func (z *Zipf) Sample() uint64 { return z.z.Uint64() }

// MarkovText generates byte strings from an order-2 Markov chain over a
// finite alphabet. The DNA data set uses it as a stand-in for the human
// genome: substring sampling from one long synthetic chromosome preserves
// the local-repetitiveness that makes edit-distance search non-trivial.
type MarkovText struct {
	Alphabet []byte
	// trans[a][b] is the cumulative distribution over the next symbol
	// given the previous two symbols a, b.
	trans [][][]float64
}

// NewMarkovText builds a random order-2 chain over the alphabet. The
// concentration parameter skew controls how deterministic transitions are
// (larger = more repetitive output).
func NewMarkovText(r *rand.Rand, alphabet []byte, skew float64) *MarkovText {
	k := len(alphabet)
	if k < 2 {
		panic("synth: alphabet must have at least two symbols")
	}
	m := &MarkovText{Alphabet: append([]byte(nil), alphabet...)}
	m.trans = make([][][]float64, k)
	for a := 0; a < k; a++ {
		m.trans[a] = make([][]float64, k)
		for b := 0; b < k; b++ {
			alphas := make([]float64, k)
			for c := range alphas {
				alphas[c] = 1 / skew
			}
			probs := Dirichlet(r, alphas)
			cum := make([]float64, k)
			acc := 0.0
			for c := 0; c < k; c++ {
				acc += float64(probs[c])
				cum[c] = acc
			}
			cum[k-1] = 1
			m.trans[a][b] = cum
		}
	}
	return m
}

// Generate produces a string of length n.
func (m *MarkovText) Generate(r *rand.Rand, n int) []byte {
	k := len(m.Alphabet)
	out := make([]byte, n)
	a, b := r.Intn(k), r.Intn(k)
	for i := 0; i < n; i++ {
		cum := m.trans[a][b]
		u := r.Float64()
		c := 0
		for c < k-1 && u > cum[c] {
			c++
		}
		out[i] = m.Alphabet[c]
		a, b = b, c
	}
	return out
}

// NormalInt samples round(N(mean, sd)) clamped to at least minVal; the DNA
// experiment samples sequence lengths from N(32, 4).
func NormalInt(r *rand.Rand, mean, sd float64, minVal int) int {
	v := int(math.Round(r.NormFloat64()*sd + mean))
	if v < minVal {
		v = minVal
	}
	return v
}
