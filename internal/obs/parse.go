package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// This file is the read side of the exposition format: a strict parser for
// the Prometheus text format 0.0.4 subset WriteText emits, used by permctl
// (quantiles from a live /metrics scrape) and scripts/metricscheck
// (grammar + required-family validation in the smoke scripts). Strictness
// is the point — metricscheck exists to catch a malformed exposition
// before a real scraper does — so unknown line shapes are errors, not
// skips.

// Sample is one parsed sample line.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// Label returns the value of the named label ("" when absent).
func (s *Sample) Label(name string) string { return s.Labels[name] }

// TextMetrics is a parsed exposition page.
type TextMetrics struct {
	// Types maps family name -> declared TYPE (counter, gauge, histogram,
	// summary, untyped).
	Types map[string]string
	// Help maps family name -> HELP text.
	Help map[string]string
	// Samples in page order.
	Samples []Sample
}

var validTypes = map[string]bool{
	"counter": true, "gauge": true, "histogram": true, "summary": true, "untyped": true,
}

// ParseText parses a Prometheus text-format page. It validates line
// grammar (metric/label name charset, quoting, value syntax) and TYPE
// declarations, returning the first error with its line number.
func ParseText(r io.Reader) (*TextMetrics, error) {
	tm := &TextMetrics{Types: map[string]string{}, Help: map[string]string{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := tm.parseComment(line); err != nil {
				return nil, fmt.Errorf("line %d: %w", lineno, err)
			}
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineno, err)
		}
		tm.Samples = append(tm.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return tm, nil
}

// parseComment handles "# HELP name text" and "# TYPE name kind"; other
// comments are legal and ignored.
func (tm *TextMetrics) parseComment(line string) error {
	rest := strings.TrimPrefix(line, "#")
	rest = strings.TrimLeft(rest, " ")
	switch {
	case strings.HasPrefix(rest, "HELP "):
		parts := strings.SplitN(rest[len("HELP "):], " ", 2)
		if !validMetricName(parts[0]) {
			return fmt.Errorf("HELP for invalid metric name %q", parts[0])
		}
		if len(parts) == 2 {
			tm.Help[parts[0]] = parts[1]
		} else {
			tm.Help[parts[0]] = ""
		}
	case strings.HasPrefix(rest, "TYPE "):
		parts := strings.Fields(rest[len("TYPE "):])
		if len(parts) != 2 {
			return fmt.Errorf("malformed TYPE line %q", line)
		}
		if !validMetricName(parts[0]) {
			return fmt.Errorf("TYPE for invalid metric name %q", parts[0])
		}
		if !validTypes[parts[1]] {
			return fmt.Errorf("unknown metric type %q for %s", parts[1], parts[0])
		}
		if prev, ok := tm.Types[parts[0]]; ok && prev != parts[1] {
			return fmt.Errorf("conflicting TYPE for %s: %s then %s", parts[0], prev, parts[1])
		}
		tm.Types[parts[0]] = parts[1]
	}
	return nil
}

// parseSample parses `name{label="v",...} value` (labels optional).
func parseSample(line string) (Sample, error) {
	s := Sample{Labels: map[string]string{}}
	i := 0
	for i < len(line) && isNameChar(line[i], i == 0) {
		i++
	}
	if i == 0 {
		return s, fmt.Errorf("malformed sample line %q", line)
	}
	s.Name = line[:i]
	rest := line[i:]
	if strings.HasPrefix(rest, "{") {
		end, err := parseLabels(rest, s.Labels)
		if err != nil {
			return s, fmt.Errorf("sample %s: %w", s.Name, err)
		}
		rest = rest[end:]
	}
	val := strings.TrimSpace(rest)
	if val == "" {
		return s, fmt.Errorf("sample %s: missing value", s.Name)
	}
	// A timestamp field after the value is format-legal; WriteText never
	// emits one, and rejecting it keeps metricscheck aligned with what the
	// fleet actually serves.
	if strings.ContainsAny(val, " \t") {
		return s, fmt.Errorf("sample %s: unexpected trailing fields in %q", s.Name, val)
	}
	v, err := parseValue(val)
	if err != nil {
		return s, fmt.Errorf("sample %s: bad value %q", s.Name, val)
	}
	s.Value = v
	return s, nil
}

// parseLabels parses a {k="v",...} block starting at s[0]=='{', filling
// dst and returning the index just past the closing '}'.
func parseLabels(s string, dst map[string]string) (int, error) {
	i := 1
	for {
		for i < len(s) && (s[i] == ' ' || s[i] == ',') {
			i++
		}
		if i < len(s) && s[i] == '}' {
			return i + 1, nil
		}
		start := i
		for i < len(s) && isLabelChar(s[i], i == start) {
			i++
		}
		if i == start {
			return 0, fmt.Errorf("malformed label block %q", s)
		}
		name := s[start:i]
		if i+1 >= len(s) || s[i] != '=' || s[i+1] != '"' {
			return 0, fmt.Errorf("label %s: expected =\"...\"", name)
		}
		i += 2
		var b strings.Builder
		for {
			if i >= len(s) {
				return 0, fmt.Errorf("label %s: unterminated value", name)
			}
			c := s[i]
			if c == '"' {
				i++
				break
			}
			if c == '\\' {
				if i+1 >= len(s) {
					return 0, fmt.Errorf("label %s: dangling escape", name)
				}
				switch s[i+1] {
				case '\\':
					b.WriteByte('\\')
				case '"':
					b.WriteByte('"')
				case 'n':
					b.WriteByte('\n')
				default:
					return 0, fmt.Errorf("label %s: bad escape \\%c", name, s[i+1])
				}
				i += 2
				continue
			}
			b.WriteByte(c)
			i++
		}
		if _, dup := dst[name]; dup {
			return 0, fmt.Errorf("duplicate label %s", name)
		}
		dst[name] = b.String()
	}
}

// parseValue accepts the exposition value syntax: Go float syntax plus
// +Inf/-Inf/NaN.
func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

func isNameChar(c byte, first bool) bool {
	switch {
	case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		return true
	case c >= '0' && c <= '9':
		return !first
	}
	return false
}

func isLabelChar(c byte, first bool) bool {
	switch {
	case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		return true
	case c >= '0' && c <= '9':
		return !first
	}
	return false
}

// Quantile computes an upper-bound q-quantile from the parsed _bucket
// samples of histogram family fam, summing across every child whose
// labels include all pairs in match (pass nil to aggregate the whole
// family). Returns (value-in-exposition-units, observation count, ok);
// ok is false when no matching buckets exist or the +Inf bucket is
// missing. Used by permctl status for p50/p95/p99 over scraped
// /metrics pages.
func (tm *TextMetrics) Quantile(fam string, match map[string]string, q float64) (float64, int64, bool) {
	byLE := map[float64]float64{}
	for i := range tm.Samples {
		s := &tm.Samples[i]
		if s.Name != fam+"_bucket" {
			continue
		}
		ok := true
		for k, v := range match {
			if s.Labels[k] != v {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		le, err := parseValue(s.Labels["le"])
		if err != nil {
			continue
		}
		byLE[le] += s.Value
	}
	infCount, haveInf := byLE[math.Inf(1)]
	if !haveInf || infCount <= 0 {
		return 0, 0, haveInf
	}
	les := make([]float64, 0, len(byLE))
	for le := range byLE {
		les = append(les, le)
	}
	sort.Float64s(les)
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := math.Ceil(q * infCount)
	if rank < 1 {
		rank = 1
	}
	for _, le := range les {
		if byLE[le] >= rank {
			return le, int64(infCount), true
		}
	}
	return les[len(les)-1], int64(infCount), true
}
