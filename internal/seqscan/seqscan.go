// Package seqscan implements exact k-NN search by sequential scan. It plays
// two roles in the reproduction: it computes ground-truth neighbors for
// recall measurements, and its single-thread query time is the baseline that
// "improvement in efficiency" (Figure 4, y-axis) is measured against, exactly
// as in §3.3 of the paper.
package seqscan

import (
	"time"

	"repro/internal/engine"
	"repro/internal/index"
	"repro/internal/obs"
	"repro/internal/scratch"
	"repro/internal/space"
	"repro/internal/topk"
)

// Scanner performs exact k-NN search over a slice of objects. The slice may
// grow via Add and entries may be tombstoned via Delete (see dynamic.go);
// searches skip tombstoned points.
type Scanner[T any] struct {
	sp      space.Space[T]
	data    []T
	deleted map[uint32]struct{} // nil until the first Delete
	scratch scratch.Pool[scanScratch]
}

// scanScratch is the per-query state of one scan: just the result queue,
// reused so a warm query allocates nothing.
type scanScratch struct {
	queue topk.Queue
}

// New creates a scanner over data. The slice is retained, not copied; the
// caller must not mutate it afterwards.
func New[T any](sp space.Space[T], data []T) *Scanner[T] {
	return &Scanner[T]{sp: sp, data: data}
}

// Name implements index.Index.
func (s *Scanner[T]) Name() string { return "seqscan" }

// Len returns the number of indexed objects.
func (s *Scanner[T]) Len() int { return len(s.data) }

// Search returns the exact k nearest neighbors of query, ordered by
// increasing distance. Data points are passed as the left argument of the
// distance (the paper's left-query convention).
func (s *Scanner[T]) Search(query T, k int) []topk.Neighbor {
	return s.SearchAppend(nil, query, k)
}

// SearchAppend answers like Search but appends the results to dst; with a
// dst of sufficient capacity a warm call performs zero allocations.
func (s *Scanner[T]) SearchAppend(dst []topk.Neighbor, query T, k int) []topk.Neighbor {
	st := s.scratch.Get()
	defer s.scratch.Put(st)
	return s.search(st, nil, dst, query, k)
}

// NewSearcher implements index.SearcherProvider. The searcher reads the
// scanner's live data and tombstones on every call, so it stays correct
// across Add/Delete — no mutation-sequence re-snapshot is needed. It is a
// pointer so it can carry an attached QueryTrace (obs.Traceable).
func (s *Scanner[T]) NewSearcher() index.Searcher[T] { return &scanSearcher[T]{s: s} }

var (
	_ index.SearcherProvider[[]float32] = (*Scanner[[]float32])(nil)
	_ obs.Traceable                     = (*scanSearcher[[]float32])(nil)
)

type scanSearcher[T any] struct {
	s  *Scanner[T]
	tr *obs.QueryTrace
}

// SetTrace implements obs.Traceable.
func (w *scanSearcher[T]) SetTrace(tr *obs.QueryTrace) { w.tr = tr }

func (w *scanSearcher[T]) Search(query T, k int) []topk.Neighbor {
	return w.SearchAppend(nil, query, k)
}

func (w *scanSearcher[T]) SearchAppend(dst []topk.Neighbor, query T, k int) []topk.Neighbor {
	st := w.s.scratch.Get()
	defer w.s.scratch.Put(st)
	return w.s.search(st, w.tr, dst, query, k)
}

// search is the scratch-threaded hot path shared by Search, SearchAppend
// and Searchers. A sequential scan has no filter stage: every live point
// is an exact distance evaluation, attributed to the refine stage.
func (s *Scanner[T]) search(st *scanScratch, tr *obs.QueryTrace, dst []topk.Neighbor, query T, k int) []topk.Neighbor {
	if k <= 0 {
		return dst
	}
	var t0 time.Time
	if tr != nil {
		t0 = time.Now()
	}
	st.queue.Reset(k)
	evals := 0
	for i, x := range s.data {
		if s.deleted != nil {
			if _, dead := s.deleted[uint32(i)]; dead {
				continue
			}
		}
		st.queue.Push(uint32(i), s.sp.Distance(x, query))
		evals++
	}
	if tr != nil {
		tr.RefineDistances += int64(evals)
		obs.AddSince(&tr.RefineNs, t0)
		t0 = time.Now()
	}
	dst = st.queue.AppendResults(dst)
	if tr != nil {
		obs.AddSince(&tr.MergeNs, t0)
	}
	return dst
}

// SearchAll computes exact k-NN answers for a batch of queries using all
// CPUs. It exists for ground-truth generation, where the sequential
// single-query path would dominate experiment setup time.
func (s *Scanner[T]) SearchAll(queries []T, k int) [][]topk.Neighbor {
	return engine.SearchBatch[T](s, queries, k)
}

// RangeSearch returns all points within distance radius of query, ordered by
// increasing distance. Used by tests to validate index pruning rules.
func (s *Scanner[T]) RangeSearch(query T, radius float64) []topk.Neighbor {
	var out []topk.Neighbor
	for i, x := range s.data {
		if s.deleted != nil {
			if _, dead := s.deleted[uint32(i)]; dead {
				continue
			}
		}
		if d := s.sp.Distance(x, query); d <= radius {
			out = append(out, topk.Neighbor{ID: uint32(i), Dist: d})
		}
	}
	topk.ByDist(out)
	return out
}
