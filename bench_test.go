// Top-level benchmark harness: one benchmark per table and figure of the
// paper (each regenerates the corresponding rows/series into io.Discard; run
// the cmd/ binaries to see the data), plus ablation benchmarks for the
// design choices called out in DESIGN.md §4.
//
// Scale note: benchmark configs are deliberately small so the full suite
// runs on a laptop; the cmd/ tools accept -n to scale up.
package permsearch_test

import (
	"io"
	"testing"

	permsearch "repro"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/topk"
)

// benchCfg is the shared small-scale configuration.
var benchCfg = experiments.Config{N: 1200, Queries: 30, Folds: 1, K: 10, Seed: 7}

// imagenetCfg is smaller: signature generation runs k-means per image.
var imagenetCfg = experiments.Config{N: 400, Queries: 20, Folds: 1, K: 10, Seed: 7}

func cfgFor(name string) experiments.Config {
	if name == "imagenet" {
		return imagenetCfg
	}
	return benchCfg
}

// BenchmarkTable1 regenerates the Table 1 row of every data set.
func BenchmarkTable1(b *testing.B) {
	for _, name := range experiments.Names() {
		r, _ := experiments.Get(name)
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := r.Table1(cfgFor(name), io.Discard); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable2 regenerates index size and creation time per method.
func BenchmarkTable2(b *testing.B) {
	for _, name := range experiments.Names() {
		r, _ := experiments.Get(name)
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := r.Table2(cfgFor(name), io.Discard); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFigure2 regenerates the projection scatter panels.
func BenchmarkFigure2(b *testing.B) {
	for _, name := range []string{"sift", "wiki-sparse", "wiki-8-kl", "dna", "wiki-128-kl", "wiki-128-js"} {
		r, _ := experiments.Get(name)
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := r.Figure2(cfgFor(name), 64, 100, io.Discard); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFigure3 regenerates the recall-vs-candidate-fraction curves.
func BenchmarkFigure3(b *testing.B) {
	dims := []int{16, 64, 256}
	for _, name := range []string{"sift", "wiki-sparse", "wiki-8-kl", "wiki-128-kl", "dna", "imagenet", "wiki-128-js"} {
		r, _ := experiments.Get(name)
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := r.Figure3(cfgFor(name), dims, io.Discard); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFigure4 regenerates the main efficiency-vs-recall sweep.
func BenchmarkFigure4(b *testing.B) {
	for _, name := range experiments.Names() {
		r, _ := experiments.Get(name)
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := r.Figure4(cfgFor(name), io.Discard); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Ablation benchmarks (DESIGN.md §4) ---

// sinkN prevents dead-code elimination of Search results.
var sinkN []topk.Neighbor

// benchData builds a shared SIFT-like workload for the ablations.
func benchData(n int) (db [][]float32, queries [][]float32) {
	data := dataset.SIFT(3, n+64)
	return data[:n], data[n : n+64]
}

// BenchmarkAblation_IncSortVsHeap re-verifies §2.2: incremental sorting vs
// a priority queue for selecting the gamma nearest permutations.
func BenchmarkAblation_IncSortVsHeap(b *testing.B) {
	db, queries := benchData(8000)
	for _, useHeap := range []bool{false, true} {
		name := "incsort"
		if useHeap {
			name = "heap"
		}
		bf, err := permsearch.NewBruteForceFilter[[]float32](permsearch.L2{}, db, permsearch.BruteForceOptions{
			NumPivots: 128, Gamma: 0.02, UseHeap: useHeap, Seed: 3,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sinkN = bf.Search(queries[i%len(queries)], 10)
			}
		})
	}
}

// BenchmarkAblation_RhoVsFootrule compares the two permutation distances.
func BenchmarkAblation_RhoVsFootrule(b *testing.B) {
	db, queries := benchData(8000)
	for _, d := range []permsearch.BruteForceOptions{
		{NumPivots: 128, Gamma: 0.02, Seed: 3},
		{NumPivots: 128, Gamma: 0.02, Seed: 3, Dist: 1 /* FootruleDist */},
	} {
		name := "rho"
		if d.Dist != 0 {
			name = "footrule"
		}
		bf, err := permsearch.NewBruteForceFilter[[]float32](permsearch.L2{}, db, d)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sinkN = bf.Search(queries[i%len(queries)], 10)
			}
		})
	}
}

// BenchmarkAblation_Binarized compares full permutations (128 ranks) with
// binarized sketches (256 bits), the paper's space/speed trade (§3.2).
func BenchmarkAblation_Binarized(b *testing.B) {
	db, queries := benchData(8000)
	bf, err := permsearch.NewBruteForceFilter[[]float32](permsearch.L2{}, db, permsearch.BruteForceOptions{
		NumPivots: 128, Gamma: 0.02, Seed: 3,
	})
	if err != nil {
		b.Fatal(err)
	}
	bin, err := permsearch.NewBinFilter[[]float32](permsearch.L2{}, db, permsearch.BinFilterOptions{
		NumPivots: 256, Gamma: 0.02, Seed: 3,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("full-128", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sinkN = bf.Search(queries[i%len(queries)], 10)
		}
	})
	b.Run("bin-256", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sinkN = bin.Search(queries[i%len(queries)], 10)
		}
	})
}

// BenchmarkAblation_MIFileD measures the MaxPosDiff posting-window
// optimization of the MI-file (§2.3).
func BenchmarkAblation_MIFileD(b *testing.B) {
	db, queries := benchData(8000)
	for _, d := range []int{0, 8} {
		name := "D=unbounded"
		if d > 0 {
			name = "D=8"
		}
		mf, err := permsearch.NewMIFile[[]float32](permsearch.L2{}, db, permsearch.MIFileOptions{
			NumPivots: 128, NumPivotIndex: 32, NumPivotSearch: 16, MaxPosDiff: d, Gamma: 0.02, Seed: 3,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sinkN = mf.Search(queries[i%len(queries)], 10)
			}
		})
	}
}

// BenchmarkAblation_NAPPParams sweeps NAPP's minimum-shared-pivots t.
func BenchmarkAblation_NAPPParams(b *testing.B) {
	db, queries := benchData(8000)
	napp, err := permsearch.NewNAPP[[]float32](permsearch.L2{}, db, permsearch.NAPPOptions{
		NumPivots: 256, NumPivotIndex: 16, MinShared: 1, Seed: 3,
	})
	if err != nil {
		b.Fatal(err)
	}
	for _, t := range []int{1, 2, 4} {
		napp.SetMinShared(t)
		b.Run("t="+string(rune('0'+t)), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sinkN = napp.Search(queries[i%len(queries)], 10)
			}
		})
	}
}

// BenchmarkAblation_PermVPTree compares indexing permutations in a VP-tree
// (Figueroa & Fredriksson) against the linear permutation scan and NAPP —
// the paper found it dominated by one of the two (§3.2).
func BenchmarkAblation_PermVPTree(b *testing.B) {
	db, queries := benchData(8000)
	pvt, err := permsearch.NewPermVPTree[[]float32](permsearch.L2{}, db, permsearch.PermVPTreeOptions{
		NumPivots: 128, Gamma: 0.02, Seed: 3,
	})
	if err != nil {
		b.Fatal(err)
	}
	bf, err := permsearch.NewBruteForceFilter[[]float32](permsearch.L2{}, db, permsearch.BruteForceOptions{
		NumPivots: 128, Gamma: 0.02, Seed: 3,
	})
	if err != nil {
		b.Fatal(err)
	}
	napp, err := permsearch.NewNAPP[[]float32](permsearch.L2{}, db, permsearch.NAPPOptions{
		NumPivots: 256, NumPivotIndex: 16, MinShared: 2, Seed: 3,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("perm-vptree", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sinkN = pvt.Search(queries[i%len(queries)], 10)
		}
	})
	b.Run("brute-force-filt", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sinkN = bf.Search(queries[i%len(queries)], 10)
		}
	})
	b.Run("napp", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sinkN = napp.Search(queries[i%len(queries)], 10)
		}
	})
}

// BenchmarkAblation_PermVsDistVec compares rank vectors (permutations)
// against raw pivot-distance vectors in the filtering stage (§2.1).
func BenchmarkAblation_PermVsDistVec(b *testing.B) {
	db, queries := benchData(8000)
	bf, err := permsearch.NewBruteForceFilter[[]float32](permsearch.L2{}, db, permsearch.BruteForceOptions{
		NumPivots: 128, Gamma: 0.02, Seed: 3,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("perm", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sinkN = bf.Search(queries[i%len(queries)], 10)
		}
	})
	dv, err := core.NewDistVecFilter[[]float32](permsearch.L2{}, db, core.BruteForceOptions{
		NumPivots: 128, Gamma: 0.02, Seed: 3,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("distvec", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sinkN = dv.Search(queries[i%len(queries)], 10)
		}
	})
}

// BenchmarkGraphConstruction contrasts SW and NN-descent build costs
// (Table 2's "k-NN graph indexing is slow" column).
func BenchmarkGraphConstruction(b *testing.B) {
	data := dataset.SIFT(5, 2000)
	b.Run("sw", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			g, err := permsearch.NewSWGraph[[]float32](permsearch.L2{}, data, permsearch.GraphOptions{NN: 10, Seed: int64(i)})
			if err != nil {
				b.Fatal(err)
			}
			_ = g
		}
	})
	b.Run("nndescent", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			g, err := permsearch.NewNNDescentGraph[[]float32](permsearch.L2{}, data, permsearch.GraphOptions{NN: 10, Seed: int64(i)})
			if err != nil {
				b.Fatal(err)
			}
			_ = g
		}
	})
	b.Run("napp", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			idx, err := permsearch.NewNAPP[[]float32](permsearch.L2{}, data, permsearch.NAPPOptions{NumPivots: 256, Seed: int64(i)})
			if err != nil {
				b.Fatal(err)
			}
			_ = idx
		}
	})
	b.Run("vptree", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			idx, err := permsearch.NewVPTree[[]float32](permsearch.L2{}, data, permsearch.VPTreeOptions{Seed: int64(i)})
			if err != nil {
				b.Fatal(err)
			}
			_ = idx
		}
	})
}
