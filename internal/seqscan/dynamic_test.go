package seqscan

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/codec"
	"repro/internal/space"
)

func TestAddFindsNewPoint(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	data := randData(r, 50, 4)
	s := New[[]float32](space.L2{}, data)
	x := []float32{100, 100, 100, 100}
	id := s.Add(x)
	if id != 50 {
		t.Fatalf("Add returned id %d, want 50", id)
	}
	if s.Len() != 51 || s.Live() != 51 {
		t.Fatalf("Len=%d Live=%d after Add", s.Len(), s.Live())
	}
	res := s.Search(x, 1)
	if len(res) != 1 || res[0].ID != id || res[0].Dist != 0 {
		t.Fatalf("added point not nearest to itself: %+v", res)
	}
}

func TestAddMatchesFreshScanner(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	data := randData(r, 80, 6)
	extra := randData(r, 20, 6)
	grown := New[[]float32](space.L2{}, append([][]float32(nil), data...))
	for _, x := range extra {
		grown.Add(x)
	}
	flat := New[[]float32](space.L2{}, append(append([][]float32(nil), data...), extra...))
	for trial := 0; trial < 10; trial++ {
		q := randData(r, 1, 6)[0]
		a, b := grown.Search(q, 10), flat.Search(q, 10)
		if len(a) != len(b) {
			t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("trial %d pos %d: %+v vs %+v", trial, i, a[i], b[i])
			}
		}
	}
}

func TestDeleteHidesPoint(t *testing.T) {
	data := [][]float32{{0}, {1}, {2}, {5}}
	s := New[[]float32](space.L2{}, data)
	if err := s.Delete(0); err != nil {
		t.Fatal(err)
	}
	if !s.Deleted(0) || s.Deleted(1) {
		t.Fatal("Deleted() wrong")
	}
	if s.Live() != 3 {
		t.Fatalf("Live = %d, want 3", s.Live())
	}
	res := s.Search([]float32{0}, 4)
	if len(res) != 3 {
		t.Fatalf("got %d results, want 3", len(res))
	}
	for _, n := range res {
		if n.ID == 0 {
			t.Fatal("deleted id returned by Search")
		}
	}
	rng := s.RangeSearch([]float32{0}, 1.5)
	if len(rng) != 1 || rng[0].ID != 1 {
		t.Fatalf("RangeSearch returned deleted point: %+v", rng)
	}
}

func TestDeleteUnknownID(t *testing.T) {
	s := New[[]float32](space.L2{}, [][]float32{{0}})
	if err := s.Delete(7); err == nil {
		t.Fatal("Delete of out-of-range id succeeded")
	}
}

func TestAddThenDeleteThenCompact(t *testing.T) {
	s := New[[]float32](space.L2{}, [][]float32{{0}, {1}})
	id := s.Add([]float32{2})
	if err := s.Delete(id); err != nil {
		t.Fatal(err)
	}
	s.Compact()
	if !s.Deleted(id) {
		t.Fatal("Compact must not forget tombstones (ids stay stable)")
	}
	if s.Live() != 2 {
		t.Fatalf("Live = %d, want 2", s.Live())
	}
	res := s.Search([]float32{2}, 3)
	if len(res) != 2 {
		t.Fatalf("got %d results, want 2", len(res))
	}
}

func TestTombstonesRoundtrip(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	data := randData(r, 30, 3)
	s := New[[]float32](space.L2{}, data)
	for _, id := range []uint32{2, 17, 29} {
		if err := s.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	cr, err := codec.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := Load[[]float32](cr, space.L2{}, data)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Live() != s.Live() {
		t.Fatalf("Live = %d after load, want %d", loaded.Live(), s.Live())
	}
	q := []float32{0, 0, 0}
	a, b := s.Search(q, 30), loaded.Search(q, 30)
	if len(a) != len(b) {
		t.Fatalf("result lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("pos %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestTombstoneOutOfRangeRejected(t *testing.T) {
	data := [][]float32{{0}, {1}}
	s := New[[]float32](space.L2{}, data)
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// Corrupt the blob: a valid save has an empty tombstone section; hand-
	// write one whose tombstone id is out of range instead.
	var forged bytes.Buffer
	cw := codec.NewWriter(&forged, codec.KindSeqScan, space.L2{}.Name(), len(data))
	cw.U32s([]uint32{9})
	if err := cw.Close(); err != nil {
		t.Fatal(err)
	}
	cr, err := codec.NewReader(bytes.NewReader(forged.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Load[[]float32](cr, space.L2{}, data); err == nil {
		t.Fatal("out-of-range tombstone id loaded without error")
	}
}
