// Package router is the scatter-gather front tier of the sharded serving
// stack: it fans a k-NN query out to S shards — in-memory shard indexes
// (Local) or remote permserve processes (Router, router.go) — and merges
// the per-shard top-k lists into one answer.
//
// # Merge semantics
//
// Shards are disjoint partitions of one corpus (internal/shard), and every
// shard reports corpus-global ids with true distances. The merged answer is
// the canonical k smallest of the concatenated lists by (dist, id) — the
// same lexicographic order topk.Queue keeps and topk.ByDist/SelectK
// produce. Whenever each shard returns its shard-local true top-k (exact
// methods, or filter methods run with a full candidate budget), the merge
// therefore reproduces the unsharded index's answer bit for bit, ties
// included; internal/router's property tests assert exactly this for every
// registered index kind. For approximate settings the merge is still
// deterministic, and the union of S per-shard top-k candidate lists tends
// to *improve* recall over one unsharded index (k·S refined candidates
// instead of k).
package router

import "repro/internal/topk"

// mergeTopK gathers per-shard result lists into buf and returns the
// canonical top-k prefix (ordered by (dist, id)). The prefix aliases buf's
// backing array, which is reused across calls by the zero-allocation
// searcher path; callers that retain results must copy them out. parts may
// be ragged (a shard can return fewer than k results); the merged list is
// at most k long.
func mergeTopK(buf []topk.Neighbor, k int, parts [][]topk.Neighbor) (merged, grown []topk.Neighbor) {
	buf = buf[:0]
	for _, p := range parts {
		buf = append(buf, p...)
	}
	return topk.SelectK(buf, k), buf
}
