package core

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/index"
	"repro/internal/obs"
	"repro/internal/permutation"
	"repro/internal/scratch"
	"repro/internal/space"
	"repro/internal/topk"
)

// MIFileOptions configures NewMIFile.
type MIFileOptions struct {
	// NumPivots is the total pivot count m. Default 128.
	NumPivots int
	// NumPivotIndex (mi) is how many closest pivots each point posts
	// to. Default 32.
	NumPivotIndex int
	// NumPivotSearch (ms <= mi) is how many of the query's closest
	// pivots are used at search time. Default 16.
	NumPivotSearch int
	// MaxPosDiff (D) skips postings whose pivot position differs from
	// the query's by more than D. Posting lists are sorted by position,
	// so the valid range is located by binary search (§2.3). 0 disables
	// the optimization.
	MaxPosDiff int
	// Gamma is the candidate fraction selected by estimated Footrule.
	// Default 0.02.
	Gamma float64
	// Seed drives pivot sampling.
	Seed int64
}

func (o *MIFileOptions) defaults() {
	if o.NumPivots <= 0 {
		o.NumPivots = 128
	}
	if o.NumPivotIndex <= 0 {
		o.NumPivotIndex = 32
	}
	if o.NumPivotIndex > o.NumPivots {
		o.NumPivotIndex = o.NumPivots
	}
	if o.NumPivotSearch <= 0 {
		o.NumPivotSearch = 16
	}
	if o.NumPivotSearch > o.NumPivotIndex {
		o.NumPivotSearch = o.NumPivotIndex
	}
	if o.Gamma <= 0 {
		o.Gamma = 0.02
	}
}

// miPosting is one entry of a positional posting list: the position of the
// pivot in the permutation induced by the data point, and the point id.
type miPosting struct {
	pos int32
	id  uint32
}

// MIFile is the Metric Inverted File of Amato & Savino (§2.3): each data
// point posts its mi closest pivots together with their permutation
// positions; postings of one pivot are sorted by position. A query reads the
// posting lists of its ms closest pivots and accumulates a lower-bound
// estimate of the Footrule distance on truncated permutations; the gamma
// best candidates are refined with the true distance.
//
// Scoring follows the paper exactly: accumulators start at ms*m and each
// posting (pos(pi, x), x) subtracts m - |pos(pi, x) - pos(pi, q)|, so points
// never encountered keep the pessimistic maximum.
type MIFile[T any] struct {
	sp       space.Space[T]
	data     []T
	pivots   *permutation.Pivots[T]
	postings [][]miPosting
	opts     MIFileOptions
	// scratch pools per-query search state; the epoch-stamped gain arena
	// replaces the former per-query make([]int32, n).
	scratch scratch.Pool[miScratch]
}

// miScratch is the per-query state of one MI-file search.
type miScratch struct {
	perm    permutation.Scratch
	gains   scratch.Gains
	touched []uint32
	cands   []topk.Neighbor
	queue   topk.Queue
}

// NewMIFile samples pivots and builds the positional inverted file.
func NewMIFile[T any](sp space.Space[T], data []T, opts MIFileOptions) (*MIFile[T], error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("core: empty data set")
	}
	if opts.NumPivots <= 0 {
		opts.NumPivots = 128
	}
	if opts.NumPivots > len(data) {
		opts.NumPivots = len(data)
	}
	r := rand.New(rand.NewSource(opts.Seed))
	pv, err := permutation.Sample(r, sp, data, opts.NumPivots)
	if err != nil {
		return nil, fmt.Errorf("core: sampling pivots: %w", err)
	}
	return NewMIFileWithPivots(sp, data, pv, opts)
}

// NewMIFileWithPivots builds the index over an explicit pivot set, bypassing
// random sampling. Tests use it to reproduce the paper's worked example.
func NewMIFileWithPivots[T any](sp space.Space[T], data []T, pv *permutation.Pivots[T], opts MIFileOptions) (*MIFile[T], error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("core: empty data set")
	}
	opts.NumPivots = pv.M()
	opts.defaults()
	mi := opts.NumPivotIndex
	orders := computeOrders(pv, data, mi)
	postings := make([][]miPosting, opts.NumPivots)
	for i := 0; i < len(data); i++ {
		for pos, p := range orders[i*mi : (i+1)*mi] {
			postings[p] = append(postings[p], miPosting{pos: int32(pos), id: uint32(i)})
		}
	}
	for _, list := range postings {
		sort.Slice(list, func(a, b int) bool {
			if list[a].pos != list[b].pos {
				return list[a].pos < list[b].pos
			}
			return list[a].id < list[b].id
		})
	}
	return &MIFile[T]{sp: sp, data: data, pivots: pv, postings: postings, opts: opts}, nil
}

// Name implements index.Index.
func (mf *MIFile[T]) Name() string { return "mi-file" }

// Stats implements index.Sized.
func (mf *MIFile[T]) Stats() index.Stats {
	var cells int64
	for _, p := range mf.postings {
		cells += int64(len(p))
	}
	return index.Stats{
		Bytes:          cells*8 + int64(len(mf.postings))*24,
		BuildDistances: int64(len(mf.data)) * int64(mf.pivots.M()),
	}
}

// Options returns the effective (defaulted) parameters.
func (mf *MIFile[T]) Options() MIFileOptions { return mf.opts }

// Search implements index.Index.
func (mf *MIFile[T]) Search(query T, k int) []topk.Neighbor {
	return mf.SearchAppend(nil, query, k)
}

// SearchAppend answers like Search but appends the results to dst; with a
// dst of sufficient capacity a warm call performs zero allocations.
func (mf *MIFile[T]) SearchAppend(dst []topk.Neighbor, query T, k int) []topk.Neighbor {
	s := mf.scratch.Get()
	defer mf.scratch.Put(s)
	return mf.search(s, nil, dst, query, k)
}

// NewSearcher implements index.SearcherProvider.
func (mf *MIFile[T]) NewSearcher() index.Searcher[T] {
	return &searcher[T, miScratch]{fn: mf.search}
}

// search is the scratch-threaded hot path shared by Search, SearchAppend
// and Searchers.
func (mf *MIFile[T]) search(s *miScratch, tr *obs.QueryTrace, dst []topk.Neighbor, query T, k int) []topk.Neighbor {
	if k <= 0 {
		return dst
	}
	var t0 time.Time
	if tr != nil {
		t0 = time.Now()
	}
	qorder := mf.pivots.OrderWith(&s.perm, query)
	m := int32(mf.opts.NumPivots)
	ms := mf.opts.NumPivotSearch

	// gains accumulates m - |pos_x - pos_q| per shared pivot; the
	// estimated Footrule on truncated permutations is ms*m - gain, so
	// ranking by descending gain equals ranking by ascending estimate.
	// The arena's epoch bump replaces the former per-query O(N) zeroing.
	s.gains.Begin(len(mf.data))
	touched := s.touched[:0]
	for qpos := 0; qpos < ms; qpos++ {
		p := qorder[qpos]
		list := mf.postings[p]
		lo, hi := 0, len(list)
		if d := mf.opts.MaxPosDiff; d > 0 {
			// Binary search the sorted-by-position list for the
			// window |pos - qpos| <= D.
			lo = sort.Search(len(list), func(i int) bool { return list[i].pos >= int32(qpos-d) })
			hi = sort.Search(len(list), func(i int) bool { return list[i].pos > int32(qpos+d) })
		}
		for _, pe := range list[lo:hi] {
			diff := pe.pos - int32(qpos)
			if diff < 0 {
				diff = -diff
			}
			if _, first := s.gains.Add(pe.id, m-diff); first {
				touched = append(touched, pe.id)
			}
		}
	}
	s.touched = touched

	g := gammaCount(mf.opts.Gamma, len(mf.data), k)
	cands := s.cands[:0]
	for _, id := range touched {
		// Estimated footrule: smaller is better.
		cands = append(cands, topk.Neighbor{ID: id, Dist: float64(int32(ms)*m - s.gains.Get(id))})
	}
	s.cands = cands
	if tr != nil {
		tr.FilterCandidates += int64(len(touched))
		obs.AddSince(&tr.FilterNs, t0)
		t0 = time.Now()
	}
	best := topk.SelectK(cands, g)
	if tr != nil {
		obs.AddSince(&tr.MergeNs, t0)
	}
	return refineTopInto(mf.sp, mf.data, query, best, k, &s.queue, dst, tr)
}
