// Package space defines the distance-space abstraction shared by every index
// in this repository and implements all distance functions used in the
// paper's evaluation (Table 1): L2 and L1 over dense vectors, cosine distance
// over sparse vectors, KL- and JS-divergence over topic histograms,
// normalized Levenshtein over byte strings, and the Signature Quadratic Form
// Distance (SQFD) over image signatures.
//
// Argument-order convention: for non-symmetric distances (KL-divergence) the
// paper evaluates "left queries", where the data point is the first (left)
// argument of d(x, y). Every index in this repository therefore calls
// Distance(dataPoint, query).
package space

import "sync/atomic"

// Properties describes which axioms a distance promises to satisfy. Indexes
// use it to pick pruning rules: the VP-tree applies the triangle inequality
// only when Metric is set, and falls back to the polynomial pruner otherwise.
type Properties struct {
	// Metric is set when the distance is non-negative, symmetric, zero
	// only on identical points, and satisfies the triangle inequality.
	Metric bool
	// Symmetric is set when d(x,y) == d(y,x) for all x, y. Every metric
	// is symmetric; the converse does not hold (e.g. JS-divergence).
	Symmetric bool
}

// Space is a (possibly non-metric) dissimilarity over objects of type T.
// Implementations must be safe for concurrent use: all index builders in this
// repository compute distances from multiple goroutines.
type Space[T any] interface {
	// Distance returns the dissimilarity between a data point (first
	// argument) and a query (second argument). It is small for similar
	// objects, zero for identical ones, and never negative.
	Distance(data, query T) float64
	// Name identifies the space in reports, e.g. "l2" or "kldiv".
	Name() string
	// Properties reports which distance axioms hold.
	Properties() Properties
}

// Counter wraps a Space and counts distance evaluations. Experiments use it
// to report the number of distance computations alongside wall-clock time,
// and tests use it to verify pruning actually prunes.
type Counter[T any] struct {
	inner Space[T]
	n     atomic.Int64
}

// NewCounter returns a counting wrapper around sp.
func NewCounter[T any](sp Space[T]) *Counter[T] {
	return &Counter[T]{inner: sp}
}

// Distance delegates to the wrapped space and increments the counter.
func (c *Counter[T]) Distance(data, query T) float64 {
	c.n.Add(1)
	return c.inner.Distance(data, query)
}

// Name returns the wrapped space's name.
func (c *Counter[T]) Name() string { return c.inner.Name() }

// Properties returns the wrapped space's properties.
func (c *Counter[T]) Properties() Properties { return c.inner.Properties() }

// Count returns the number of Distance calls since the last Reset.
func (c *Counter[T]) Count() int64 { return c.n.Load() }

// Reset zeroes the call counter.
func (c *Counter[T]) Reset() { c.n.Store(0) }
