package lsm

import (
	"context"
	"testing"

	"repro/internal/obs"
	"repro/internal/seqscan"
	"repro/internal/space"
	"repro/internal/topk"
)

// TestTreeSearchAppendZeroAllocs pins the PR 8 headline fix: a warm tiered
// search over base + sealed tiers + live memtable, with tombstones in play,
// runs entirely on the tree's pooled search state — cached component
// searchers, reused merge buffer — so SearchAppend into a caller-supplied
// buffer is zero allocations per query.
func TestTreeSearchAppendZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; guard runs in the plain test job")
	}
	const baseN, k = 60, 10
	base := randVecs(1, baseN)
	baseIdx := seqscan.New[[]float32](space.L2{}, base)
	tree := mustOpen(t, testOptions(t, baseN))

	// Shape the tree: one sealed tier, a live memtable, and tombstones
	// spanning base, tier and memtable — the full merge surface.
	added := randVecs(2, 24)
	for _, v := range added[:12] {
		if _, err := tree.Add(encVec(v)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tree.Flush(); err != nil {
		t.Fatal(err)
	}
	for _, v := range added[12:] {
		if _, err := tree.Add(encVec(v)); err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range []uint32{3, baseN + 2, baseN + 15} {
		if err := tree.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	checkIdentity(t, tree, base, "pre-measure")

	queries := randVecs(7, 8)
	dst := make([]topk.Neighbor, 0, k)
	for _, q := range queries {
		dst = tree.SearchAppend(dst[:0], baseIdx, q, k)
	}
	qi := 0
	if avg := testing.AllocsPerRun(50, func() {
		dst = tree.SearchAppend(dst[:0], baseIdx, queries[qi%len(queries)], k)
		qi++
	}); avg != 0 {
		t.Errorf("warm tiered SearchAppend allocates %v times per run, want 0", avg)
	}

	// The allocating wrapper pays exactly the result slice and nothing
	// else.
	if avg := testing.AllocsPerRun(50, func() {
		_ = tree.Search(baseIdx, queries[qi%len(queries)], k)
		qi++
	}); avg > 1 {
		t.Errorf("warm tiered Search allocates %v times per run, want <= 1", avg)
	}

	// The instrumented path is held to the same bar: component attribution
	// into an attached QueryTrace adds zero allocations, and the trace must
	// actually account for the full merge surface (base + tier + memtable).
	var trace obs.QueryTrace
	ctx := context.Background()
	if avg := testing.AllocsPerRun(50, func() {
		trace.Reset()
		dst, _ = tree.SearchAppendTraced(ctx, dst[:0], baseIdx, queries[qi%len(queries)], k, &trace)
		qi++
	}); avg != 0 {
		t.Errorf("warm traced tiered SearchAppend allocates %v times per run, want 0", avg)
	}
	if trace.Components != 3 {
		t.Errorf("trace.Components = %d, want 3 (base + sealed tier + memtable)", trace.Components)
	}
	if trace.BaseNs <= 0 || trace.TierNs <= 0 || trace.MemtableNs <= 0 {
		t.Errorf("component times not attributed: base=%d tier=%d memtable=%d", trace.BaseNs, trace.TierNs, trace.MemtableNs)
	}
	if trace.MaskNs <= 0 {
		t.Errorf("tombstone mask time not attributed with tombstones in play")
	}
	if trace.RefineDistances == 0 {
		t.Errorf("component searchers did not record refine distances through the shared trace")
	}
}

// TestTreeSearchAppendSurvivesSeal pins the cache-invalidation half of the
// fix: a pooled search state warmed before a seal must re-mint its
// component searchers afterwards, not search a stale tier list.
func TestTreeSearchAppendSurvivesSeal(t *testing.T) {
	const baseN, k = 40, 8
	base := randVecs(3, baseN)
	baseIdx := seqscan.New[[]float32](space.L2{}, base)
	tree := mustOpen(t, testOptions(t, baseN))

	queries := randVecs(8, 6)
	var dst []topk.Neighbor
	for _, q := range queries {
		dst = tree.SearchAppend(dst[:0], baseIdx, q, k)
	}

	added := randVecs(4, 20)
	for i, v := range added {
		if _, err := tree.Add(encVec(v)); err != nil {
			t.Fatal(err)
		}
		if i == 9 {
			if _, err := tree.Flush(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := tree.Delete(baseN + 1); err != nil {
		t.Fatal(err)
	}
	checkIdentity(t, tree, base, "post-seal")
}
