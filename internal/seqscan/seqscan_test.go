package seqscan

import (
	"math/rand"
	"testing"

	"repro/internal/index"
	"repro/internal/space"
	"repro/internal/topk"
)

var _ index.Index[[]float32] = (*Scanner[[]float32])(nil)

func randData(r *rand.Rand, n, dim int) [][]float32 {
	out := make([][]float32, n)
	for i := range out {
		v := make([]float32, dim)
		for j := range v {
			v[j] = float32(r.NormFloat64())
		}
		out[i] = v
	}
	return out
}

func TestSearchExactTinyCase(t *testing.T) {
	data := [][]float32{{0}, {10}, {3}, {-1}}
	s := New[[]float32](space.L2{}, data)
	got := s.Search([]float32{0.5}, 2)
	if len(got) != 2 || got[0].ID != 0 || got[1].ID != 3 {
		t.Fatalf("got %+v", got)
	}
	if s.Len() != 4 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestSearchKLargerThanN(t *testing.T) {
	data := [][]float32{{0}, {1}}
	s := New[[]float32](space.L2{}, data)
	got := s.Search([]float32{0}, 10)
	if len(got) != 2 {
		t.Fatalf("len = %d, want 2", len(got))
	}
}

func TestSearchZeroK(t *testing.T) {
	s := New[[]float32](space.L2{}, [][]float32{{0}})
	if got := s.Search([]float32{0}, 0); got != nil {
		t.Fatalf("k=0 returned %v", got)
	}
}

func TestSearchOrderedAndUnique(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	data := randData(r, 500, 8)
	s := New[[]float32](space.L2{}, data)
	for trial := 0; trial < 20; trial++ {
		q := data[r.Intn(len(data))]
		res := s.Search(q, 10)
		seen := map[uint32]bool{}
		for i, n := range res {
			if seen[n.ID] {
				t.Fatal("duplicate id in result")
			}
			seen[n.ID] = true
			if i > 0 && res[i-1].Dist > n.Dist {
				t.Fatal("results out of order")
			}
		}
		// Self must be the first answer at distance 0.
		if res[0].Dist != 0 {
			t.Fatalf("self not found first: %+v", res[0])
		}
	}
}

func TestSearchAllMatchesSearch(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	data := randData(r, 300, 4)
	queries := randData(r, 37, 4)
	s := New[[]float32](space.L2{}, data)
	batch := s.SearchAll(queries, 5)
	if len(batch) != len(queries) {
		t.Fatalf("batch size %d", len(batch))
	}
	for i, q := range queries {
		single := s.Search(q, 5)
		if len(single) != len(batch[i]) {
			t.Fatalf("query %d: len %d vs %d", i, len(single), len(batch[i]))
		}
		for j := range single {
			if single[j] != batch[i][j] {
				t.Fatalf("query %d, pos %d: %+v vs %+v", i, j, single[j], batch[i][j])
			}
		}
	}
}

func TestSearchAllEmptyQueries(t *testing.T) {
	s := New[[]float32](space.L2{}, [][]float32{{0}})
	if got := s.SearchAll(nil, 3); len(got) != 0 {
		t.Fatalf("got %v", got)
	}
}

func TestRangeSearch(t *testing.T) {
	data := [][]float32{{0}, {1}, {2}, {5}}
	s := New[[]float32](space.L2{}, data)
	got := s.RangeSearch([]float32{0.4}, 1.0)
	if len(got) != 2 || got[0].ID != 0 || got[1].ID != 1 {
		t.Fatalf("got %+v", got)
	}
}

func TestAsymmetricLeftQueryConvention(t *testing.T) {
	// With KL divergence, the data point must be the left argument.
	h := func(p ...float32) space.Histogram { return space.NewHistogram(p) }
	data := []space.Histogram{h(0.9, 0.1), h(0.5, 0.5)}
	q := h(0.3, 0.7)
	s := New[space.Histogram](space.KLDivergence{}, data)
	res := s.Search(q, 2)
	kl := space.KLDivergence{}
	want0 := kl.Distance(data[res[0].ID], q)
	if res[0].Dist != want0 {
		t.Fatalf("distance not computed as KL(data||query)")
	}
	if res[0].Dist > res[1].Dist {
		t.Fatal("results out of order")
	}
}

func BenchmarkSeqScan10k(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	data := randData(r, 10000, 128)
	s := New[[]float32](space.L2{}, data)
	q := randData(r, 1, 128)[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Search(q, 10)
	}
}

var sink []topk.Neighbor
