package core

import (
	"math/rand"
	"testing"

	"repro/internal/space"
)

// queriesFrom splits off the last q points of data as queries.
func queriesFrom(data [][]float32, q int) (db, queries [][]float32) {
	return data[:len(data)-q], data[len(data)-q:]
}

func TestBruteForceRecall(t *testing.T) {
	db, queries := queriesFrom(clustered(11, 2050, 16), 50)
	bf, err := NewBruteForceFilter[[]float32](space.L2{}, db, BruteForceOptions{
		NumPivots: 128, Gamma: 0.05, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rec := recallOf[[]float32](t, space.L2{}, db, bf, queries, 10); rec < 0.85 {
		t.Fatalf("brute-force filter recall %.3f < 0.85", rec)
	}
}

func TestBruteForceGammaMonotonic(t *testing.T) {
	db, queries := queriesFrom(clustered(12, 1550, 16), 50)
	rec := func(gamma float64) float64 {
		bf, err := NewBruteForceFilter[[]float32](space.L2{}, db, BruteForceOptions{
			NumPivots: 64, Gamma: gamma, Seed: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		return recallOf[[]float32](t, space.L2{}, db, bf, queries, 10)
	}
	small, large := rec(0.005), rec(0.2)
	if small > large+0.02 {
		t.Fatalf("recall not monotone in gamma: %.3f (0.005) vs %.3f (0.2)", small, large)
	}
	if large < 0.9 {
		t.Fatalf("gamma=0.2 recall %.3f unexpectedly low", large)
	}
}

func TestBruteForceHeapMatchesIncSort(t *testing.T) {
	// The heap-based and incremental-sort candidate selection must give
	// identical final answers (both pick the same gamma-nearest set).
	db, queries := queriesFrom(clustered(13, 1020, 8), 20)
	a, err := NewBruteForceFilter[[]float32](space.L2{}, db, BruteForceOptions{NumPivots: 32, Gamma: 0.05, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewBruteForceFilter[[]float32](space.L2{}, db, BruteForceOptions{NumPivots: 32, Gamma: 0.05, Seed: 9, UseHeap: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range queries {
		ra, rb := a.Search(q, 10), b.Search(q, 10)
		if len(ra) != len(rb) {
			t.Fatal("result length mismatch")
		}
		for i := range ra {
			if ra[i] != rb[i] {
				t.Fatalf("heap/incsort mismatch: %+v vs %+v", ra[i], rb[i])
			}
		}
	}
}

func TestBruteForceFootruleWorks(t *testing.T) {
	db, queries := queriesFrom(clustered(14, 1030, 16), 30)
	bf, err := NewBruteForceFilter[[]float32](space.L2{}, db, BruteForceOptions{
		NumPivots: 64, Gamma: 0.1, Dist: FootruleDist, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rec := recallOf[[]float32](t, space.L2{}, db, bf, queries, 10); rec < 0.8 {
		t.Fatalf("footrule filter recall %.3f < 0.8", rec)
	}
}

func TestRankAllSortedComplete(t *testing.T) {
	db, queries := queriesFrom(clustered(15, 520, 8), 20)
	bf, err := NewBruteForceFilter[[]float32](space.L2{}, db, BruteForceOptions{NumPivots: 32, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	rank := bf.RankAll(queries[0])
	if len(rank) != len(db) {
		t.Fatalf("RankAll returned %d of %d", len(rank), len(db))
	}
	for i := 1; i < len(rank); i++ {
		if rank[i-1].Dist > rank[i].Dist {
			t.Fatal("RankAll not sorted")
		}
	}
}

func TestBinFilterRecall(t *testing.T) {
	db, queries := queriesFrom(clustered(16, 2050, 16), 50)
	bin, err := NewBinFilter[[]float32](space.L2{}, db, BinFilterOptions{
		NumPivots: 256, Gamma: 0.1, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rec := recallOf[[]float32](t, space.L2{}, db, bin, queries, 10); rec < 0.8 {
		t.Fatalf("binarized filter recall %.3f < 0.8", rec)
	}
}

func TestPPIndexRecall(t *testing.T) {
	db, queries := queriesFrom(clustered(17, 2050, 16), 50)
	pp, err := NewPPIndex[[]float32](space.L2{}, db, PPIndexOptions{
		NumPivots: 64, PrefixLen: 6, Copies: 4, Gamma: 0.03, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rec := recallOf[[]float32](t, space.L2{}, db, pp, queries, 10); rec < 0.7 {
		t.Fatalf("pp-index recall %.3f < 0.7", rec)
	}
}

func TestPPIndexMoreCopiesHigherRecall(t *testing.T) {
	db, queries := queriesFrom(clustered(18, 1550, 16), 50)
	rec := func(copies int) float64 {
		pp, err := NewPPIndex[[]float32](space.L2{}, db, PPIndexOptions{
			NumPivots: 64, PrefixLen: 8, Copies: copies, Gamma: 0.01, Seed: 6,
		})
		if err != nil {
			t.Fatal(err)
		}
		return recallOf[[]float32](t, space.L2{}, db, pp, queries, 10)
	}
	one, four := rec(1), rec(4)
	if one > four+0.05 {
		t.Fatalf("more copies did not help: 1 copy %.3f vs 4 copies %.3f", one, four)
	}
}

func TestMIFileRecall(t *testing.T) {
	db, queries := queriesFrom(clustered(19, 2050, 16), 50)
	mf, err := NewMIFile[[]float32](space.L2{}, db, MIFileOptions{
		NumPivots: 128, NumPivotIndex: 32, NumPivotSearch: 16, Gamma: 0.05, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rec := recallOf[[]float32](t, space.L2{}, db, mf, queries, 10); rec < 0.8 {
		t.Fatalf("mi-file recall %.3f < 0.8", rec)
	}
}

func TestMIFileMaxPosDiffPrunesPostings(t *testing.T) {
	// With D set, fewer postings are scanned; recall may drop slightly
	// but results must stay valid and the D window must cut candidates.
	db, queries := queriesFrom(clustered(20, 1030, 16), 30)
	unbounded, err := NewMIFile[[]float32](space.L2{}, db, MIFileOptions{
		NumPivots: 64, NumPivotIndex: 32, NumPivotSearch: 16, Gamma: 0.5, Seed: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	windowed, err := NewMIFile[[]float32](space.L2{}, db, MIFileOptions{
		NumPivots: 64, NumPivotIndex: 32, NumPivotSearch: 16, Gamma: 0.5, MaxPosDiff: 4, Seed: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	recU := recallOf[[]float32](t, space.L2{}, db, unbounded, queries, 10)
	recW := recallOf[[]float32](t, space.L2{}, db, windowed, queries, 10)
	if recW > recU+0.05 {
		t.Fatalf("windowed recall %.3f exceeds unbounded %.3f", recW, recU)
	}
	for _, q := range queries[:5] {
		checkValidResults(t, windowed.Search(q, 10), len(db), 10)
	}
}

func TestNAPPRecall(t *testing.T) {
	db, queries := queriesFrom(clustered(21, 2050, 16), 50)
	na, err := NewNAPP[[]float32](space.L2{}, db, NAPPOptions{
		NumPivots: 256, NumPivotIndex: 16, MinShared: 2, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rec := recallOf[[]float32](t, space.L2{}, db, na, queries, 10); rec < 0.85 {
		t.Fatalf("napp recall %.3f < 0.85", rec)
	}
}

func TestNAPPMinSharedTradeoff(t *testing.T) {
	// Larger t must not increase the candidate count; recall typically
	// drops while refinement gets cheaper.
	db, queries := queriesFrom(clustered(22, 1550, 16), 50)
	counter := space.NewCounter[[]float32](space.L2{})
	na, err := NewNAPP[[]float32](counter, db, NAPPOptions{
		NumPivots: 128, NumPivotIndex: 16, MinShared: 1, Seed: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	run := func(tShared int) (float64, int64) {
		na.SetMinShared(tShared)
		counter.Reset()
		rec := recallOf[[]float32](t, counter, db, na, queries, 10)
		return rec, counter.Count()
	}
	rec1, cost1 := run(1)
	rec4, cost4 := run(4)
	if cost4 >= cost1 {
		t.Fatalf("t=4 cost %d not below t=1 cost %d", cost4, cost1)
	}
	if rec4 > rec1+0.02 {
		t.Fatalf("t=4 recall %.3f above t=1 recall %.3f", rec4, rec1)
	}
	if rec1 < 0.85 {
		t.Fatalf("t=1 recall %.3f unexpectedly low", rec1)
	}
}

func TestNAPPMaxCandidates(t *testing.T) {
	db, queries := queriesFrom(clustered(23, 1030, 16), 30)
	counter := space.NewCounter[[]float32](space.L2{})
	capped, err := NewNAPP[[]float32](counter, db, NAPPOptions{
		NumPivots: 128, NumPivotIndex: 16, MinShared: 1, MaxCandidates: 20, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	counter.Reset()
	res := capped.Search(queries[0], 10)
	checkValidResults(t, res, len(db), 10)
	// Refinement cost: ms pivot distances (for the query order) plus at
	// most MaxCandidates true distances.
	maxExpected := int64(capped.Options().NumPivots + 20)
	if counter.Count() > maxExpected {
		t.Fatalf("search computed %d distances, cap allows %d", counter.Count(), maxExpected)
	}
}

func TestOMEDRANKRecall(t *testing.T) {
	db, queries := queriesFrom(clustered(24, 2050, 16), 50)
	om, err := NewOMEDRANK[[]float32](space.L2{}, db, OMEDRANKOptions{
		NumVoters: 12, Gamma: 0.05, Seed: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rec := recallOf[[]float32](t, space.L2{}, db, om, queries, 10); rec < 0.6 {
		t.Fatalf("omedrank recall %.3f < 0.6", rec)
	}
}

func TestPermVPTreeRecall(t *testing.T) {
	db, queries := queriesFrom(clustered(25, 2050, 16), 50)
	pvt, err := NewPermVPTree[[]float32](space.L2{}, db, PermVPTreeOptions{
		NumPivots: 128, Gamma: 0.05, Seed: 13,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rec := recallOf[[]float32](t, space.L2{}, db, pvt, queries, 10); rec < 0.85 {
		t.Fatalf("perm-vptree recall %.3f < 0.85", rec)
	}
}

// TestPermVPTreeMatchesBruteForceFilter: exact gamma-NN retrieval in the
// permutation space must select the same candidate set as the brute-force
// scan when both use the same pivots, so final answers agree.
func TestPermVPTreeMatchesBruteForceFilter(t *testing.T) {
	db, queries := queriesFrom(clustered(26, 520, 8), 20)
	// Same seed => same pivot sample (both draw NumPivots via
	// permutation.Sample from an identical rand stream).
	bf, err := NewBruteForceFilter[[]float32](space.L2{}, db, BruteForceOptions{NumPivots: 32, Gamma: 0.1, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	pvt, err := NewPermVPTree[[]float32](space.L2{}, db, PermVPTreeOptions{NumPivots: 32, Gamma: 0.1, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	agree := 0
	for _, q := range queries {
		ra, rb := bf.Search(q, 5), pvt.Search(q, 5)
		if len(ra) == len(rb) {
			same := true
			for i := range ra {
				if ra[i].ID != rb[i].ID {
					same = false
				}
			}
			if same {
				agree++
			}
		}
	}
	// Rho vs sqrt-rho tie-breaking inside SelectK vs tree traversal can
	// differ on boundary candidates; demand a strong majority.
	if agree < len(queries)*3/4 {
		t.Fatalf("only %d/%d queries agree between perm-vptree and brute-force filter", agree, len(queries))
	}
}

func TestMethodsOnNonMetricKL(t *testing.T) {
	// Permutation methods must remain usable on a non-metric,
	// non-symmetric space (Wiki-like KL histograms).
	r := rand.New(rand.NewSource(30))
	data := make([]space.Histogram, 1000)
	for i := range data {
		alpha := make([]float32, 8)
		for j := range alpha {
			alpha[j] = float32(r.Float64() * 0.2)
		}
		alpha[r.Intn(8)] += 1
		data[i] = space.NewHistogram(alpha)
	}
	db, queries := data[:950], data[950:]
	kl := space.KLDivergence{}
	bf, err := NewBruteForceFilter[space.Histogram](kl, db, BruteForceOptions{NumPivots: 64, Gamma: 0.1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if rec := recallOf[space.Histogram](t, kl, db, bf, queries, 10); rec < 0.6 {
		t.Fatalf("KL brute-force recall %.3f < 0.6", rec)
	}
	na, err := NewNAPP[space.Histogram](kl, db, NAPPOptions{NumPivots: 128, NumPivotIndex: 16, MinShared: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if rec := recallOf[space.Histogram](t, kl, db, na, queries, 10); rec < 0.6 {
		t.Fatalf("KL NAPP recall %.3f < 0.6", rec)
	}
}

func TestMethodsOnStrings(t *testing.T) {
	// Binarized filtering over DNA-like strings (the Figure 4f winner).
	r := rand.New(rand.NewSource(31))
	letters := []byte("ACGT")
	mk := func() []byte {
		s := make([]byte, 24+r.Intn(16))
		for i := range s {
			s[i] = letters[r.Intn(4)]
		}
		return s
	}
	base := make([][]byte, 40)
	for i := range base {
		base[i] = mk()
	}
	// Data: mutated copies of base strings, so neighbors exist.
	var data [][]byte
	for i := 0; i < 800; i++ {
		src := base[r.Intn(len(base))]
		cp := append([]byte(nil), src...)
		for j := 0; j < 3; j++ {
			cp[r.Intn(len(cp))] = letters[r.Intn(4)]
		}
		data = append(data, cp)
	}
	db, queries := data[:760], data[760:]
	nl := space.NormalizedLevenshtein{}
	bin, err := NewBinFilter[[]byte](nl, db, BinFilterOptions{NumPivots: 128, Gamma: 0.1, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rec := recallOf[[]byte](t, nl, db, bin, queries, 10); rec < 0.5 {
		t.Fatalf("DNA binarized recall %.3f < 0.5", rec)
	}
}

func TestDistVecFilterRecall(t *testing.T) {
	db, queries := queriesFrom(clustered(27, 2050, 16), 50)
	dv, err := NewDistVecFilter[[]float32](space.L2{}, db, BruteForceOptions{
		NumPivots: 128, Gamma: 0.05, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rec := recallOf[[]float32](t, space.L2{}, db, dv, queries, 10); rec < 0.85 {
		t.Fatalf("distvec filter recall %.3f < 0.85", rec)
	}
}

func TestDistVecVsPermutation(t *testing.T) {
	// The §2.1 ablation: at equal pivot count and gamma, permutations
	// should be at least comparable to raw distance vectors (the paper
	// found them slightly better). Accept either being ahead by a
	// small margin, but fail if distance vectors dominate.
	db, queries := queriesFrom(clustered(28, 2050, 16), 50)
	bf, err := NewBruteForceFilter[[]float32](space.L2{}, db, BruteForceOptions{
		NumPivots: 64, Gamma: 0.02, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	dv, err := NewDistVecFilter[[]float32](space.L2{}, db, BruteForceOptions{
		NumPivots: 64, Gamma: 0.02, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	recPerm := recallOf[[]float32](t, space.L2{}, db, bf, queries, 10)
	recDist := recallOf[[]float32](t, space.L2{}, db, dv, queries, 10)
	t.Logf("perm recall %.3f, distvec recall %.3f", recPerm, recDist)
	if recPerm < recDist-0.10 {
		t.Fatalf("permutations much worse than distance vectors: %.3f vs %.3f", recPerm, recDist)
	}
}
