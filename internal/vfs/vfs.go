// Package vfs is the filesystem boundary of the storage subsystem. Every
// file operation the persistence stack performs — WAL appends and fsyncs in
// internal/lsm, atomic save/rename in internal/persist, manifest commits —
// goes through the FS interface instead of calling os.* directly, so a test
// (or a smoke run) can substitute internal/faultfs and observe how the
// whole pipeline behaves when an fsync fails, a write runs out of disk, or
// a read returns EIO.
//
// The production implementation is OS, a thin passthrough to the os
// package. It is deliberately minimal: just the operations the storage
// pipeline actually performs, each one an injectable fault site. The
// boundary is also where directory-fsync semantics live (SyncDir), so the
// "ignore only the errors that mean 'this filesystem cannot fsync a
// directory'" policy is written once and audited once.
package vfs

import (
	"errors"
	"io"
	"io/fs"
	"os"
	"syscall"
)

// File is an open file handle: the subset of *os.File the storage pipeline
// uses. Sync is the durability barrier — a File implementation must not
// report success unless the bytes are on stable storage (or it is
// deliberately lying for test speed, like lsm's NoFsync mode).
type File interface {
	io.Reader
	io.Writer
	io.Closer
	// Name returns the path the file was opened with.
	Name() string
	// Seek repositions the read/write offset.
	Seek(offset int64, whence int) (int64, error)
	// Sync flushes the file's data to stable storage.
	Sync() error
	// Truncate cuts the file to size bytes (the WAL's torn-tail repair).
	Truncate(size int64) error
}

// FS is the filesystem the storage pipeline runs on. Implementations must
// be safe for concurrent use (background compaction performs I/O while the
// write path does).
type FS interface {
	// Open opens a file read-only.
	Open(name string) (File, error)
	// OpenFile is the generalized open (the WAL re-opens segments O_RDWR).
	OpenFile(name string, flag int, perm fs.FileMode) (File, error)
	// CreateTemp creates a fresh temp file in dir, as os.CreateTemp.
	CreateTemp(dir, pattern string) (File, error)
	// ReadFile reads a whole file, as os.ReadFile.
	ReadFile(name string) ([]byte, error)
	// Rename atomically replaces newpath with oldpath, as os.Rename.
	Rename(oldpath, newpath string) error
	// Remove deletes a file.
	Remove(name string) error
	// Chmod sets a file's permission bits.
	Chmod(name string, mode fs.FileMode) error
	// MkdirAll creates a directory tree, as os.MkdirAll.
	MkdirAll(path string, perm fs.FileMode) error
	// ReadDir lists a directory, as os.ReadDir.
	ReadDir(name string) ([]fs.DirEntry, error)
	// SyncDir fsyncs a directory so renames within it are durable. Only
	// the errors that mean "this filesystem rejects directory fsync"
	// (EINVAL, ENOTSUP) are swallowed; a real I/O failure is returned.
	SyncDir(dir string) error
}

// OS is the production FS: a passthrough to the os package. The zero value
// is ready to use.
type OS struct{}

func (OS) Open(name string) (File, error) { return os.Open(name) }

func (OS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

func (OS) CreateTemp(dir, pattern string) (File, error) { return os.CreateTemp(dir, pattern) }

func (OS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

func (OS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (OS) Remove(name string) error { return os.Remove(name) }

func (OS) Chmod(name string, mode fs.FileMode) error { return os.Chmod(name, mode) }

func (OS) MkdirAll(path string, perm fs.FileMode) error { return os.MkdirAll(path, perm) }

func (OS) ReadDir(name string) ([]fs.DirEntry, error) { return os.ReadDir(name) }

// SyncDir fsyncs dir. Filesystems that reject directory fsync outright
// (EINVAL, ENOTSUP — tmpfs variants, some network filesystems) degrade
// silently: the rename itself is still atomic there, and there is nothing
// further the caller could do. Every other error — EIO, a failing disk —
// propagates, because swallowing it would turn "the rename may not be
// durable" into silent data loss on the next crash.
func (OS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !IgnorableSyncDirError(err) {
		return err
	}
	return nil
}

// IgnorableSyncDirError reports whether a directory-fsync failure means
// "unsupported here" rather than "your data is in danger".
func IgnorableSyncDirError(err error) bool {
	return errors.Is(err, syscall.EINVAL) || errors.Is(err, syscall.ENOTSUP)
}

var _ FS = OS{}
