package rollout

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/url"
	"time"

	"repro/internal/dataset"
)

// goldenSeedOffset derives the golden query seed from the corpus seed: the
// probes are drawn from the same distribution as the corpus but are not
// corpus members, mirroring how the experiment harness splits query sets.
const goldenSeedOffset = 1_000_003

// GoldenQueries generates q deterministic probe queries for a dataset, in
// the serving wire encoding, for the golden rollout gate. Supported
// datasets are the dense-vector and string families (sift, cophir, dna) —
// the ones the sharding pipeline serves; others error rather than probe
// with a wrong-shaped query.
func GoldenQueries(ds string, seed int64, q int) ([]json.RawMessage, error) {
	if q <= 0 {
		return nil, fmt.Errorf("rollout: golden query count must be positive, got %d", q)
	}
	qseed := seed + goldenSeedOffset
	out := make([]json.RawMessage, 0, q)
	marshal := func(v any) error {
		blob, err := json.Marshal(v)
		if err != nil {
			return err
		}
		out = append(out, blob)
		return nil
	}
	switch ds {
	case "sift":
		for _, v := range dataset.SIFT(qseed, q) {
			if err := marshal(v); err != nil {
				return nil, err
			}
		}
	case "cophir":
		for _, v := range dataset.CoPhIR(qseed, q) {
			if err := marshal(v); err != nil {
				return nil, err
			}
		}
	case "dna":
		for _, s := range dataset.DNA(qseed, q, dataset.DNAOptions{}) {
			if err := marshal(string(s)); err != nil {
				return nil, err
			}
		}
	default:
		return nil, fmt.Errorf("rollout: no golden query generator for dataset %q", ds)
	}
	return out, nil
}

// goldenRun is one pass of the golden suite: the answer id sets per query
// and the total wall time.
type goldenRun struct {
	answers [][]uint32
	elapsed time.Duration
}

// captureGolden runs every golden query through the router against the
// named set. A partial answer is an error: the golden gate compares
// complete fleets, and gating on a degraded answer would blame the new
// generation for an unrelated host loss.
func (d *Driver) captureGolden(set string) (*goldenRun, error) {
	run := &goldenRun{answers: make([][]uint32, 0, len(d.opts.GoldenQueries))}
	start := time.Now()
	for i, q := range d.opts.GoldenQueries {
		body, err := json.Marshal(map[string]any{"query": q, "k": d.opts.GoldenK})
		if err != nil {
			return nil, err
		}
		resp, err := d.client.Post(
			d.opts.RouterURL+"/v1/indexes/"+url.PathEscape(set)+"/search",
			"application/json", bytes.NewReader(body))
		if err != nil {
			return nil, fmt.Errorf("query %d: %w", i, err)
		}
		var out struct {
			Results []struct {
				ID uint32 `json:"id"`
			} `json:"results"`
			Partial bool   `json:"partial"`
			Error   string `json:"error"`
		}
		err = json.NewDecoder(resp.Body).Decode(&out)
		resp.Body.Close()
		if err != nil {
			return nil, fmt.Errorf("query %d: decoding answer: %w", i, err)
		}
		if resp.StatusCode != 200 {
			return nil, fmt.Errorf("query %d: status %d: %s", i, resp.StatusCode, out.Error)
		}
		if out.Partial {
			return nil, fmt.Errorf("query %d: partial answer (fleet degraded during golden run)", i)
		}
		ids := make([]uint32, len(out.Results))
		for j, r := range out.Results {
			ids[j] = r.ID
		}
		run.answers = append(run.answers, ids)
	}
	run.elapsed = time.Since(start)
	return run, nil
}

// recall is the mean per-query overlap of the new run's answer ids with the
// baseline's — the answer-diff canary: the ids the old generation served
// are ground truth, and a new generation serving materially different
// neighbors (rebuilt over the wrong corpus, truncated, mis-sharded) scores
// low even though both runs "succeeded".
func recall(base, next *goldenRun) float64 {
	if len(base.answers) == 0 {
		return 0
	}
	var sum float64
	for i, want := range base.answers {
		if len(want) == 0 {
			sum += 1 // an empty baseline answer cannot be missed
			continue
		}
		set := make(map[uint32]struct{}, len(want))
		for _, id := range want {
			set[id] = struct{}{}
		}
		hit := 0
		if i < len(next.answers) {
			for _, id := range next.answers[i] {
				if _, ok := set[id]; ok {
					hit++
				}
			}
		}
		sum += float64(hit) / float64(len(want))
	}
	return sum / float64(len(base.answers))
}

// latencyFactor is the new run's wall time as a multiple of the baseline's.
func latencyFactor(base, next *goldenRun) float64 {
	if base.elapsed <= 0 {
		return 1
	}
	return float64(next.elapsed) / float64(base.elapsed)
}
