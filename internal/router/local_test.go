package router_test

// The sharded-identity property suite: over every registered index kind, a
// Local scatter-gather across S hash-partitioned shards must answer
// *identically* (ids and distances, ties broken canonically) to one
// unsharded index over the full corpus.
//
// Identity holds exactly when each shard returns its shard-local true
// top-k, so every kind here is parameterized for full recall: filter
// methods run with Gamma=1 (refine every candidate), NAPP/MI-file index
// and search all pivots, the VP-trees run with a vanishing pruning stretch,
// the graphs search with an exhaustive frontier (EfSearch = n), and MPLSH
// hashes everything into one bucket. With the candidate budget open, the
// only thing separating sharded from unsharded answers is the partition,
// id translation and merge — exactly the machinery under test. (Production
// settings keep their approximate budgets; the merge stays deterministic
// and the union of per-shard top-k typically improves recall, see the
// package doc.)

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/index"
	"repro/internal/indextest"
	"repro/internal/knngraph"
	"repro/internal/lsh"
	"repro/internal/router"
	"repro/internal/seqscan"
	"repro/internal/shard"
	"repro/internal/space"
	"repro/internal/topk"
	"repro/internal/vptree"
)

const seed = indextest.CorpusSeed

// shardCounts are the S values of the property (1 covers the degenerate
// identity partition).
var shardCounts = []int{1, 2, 3, 5}

// kindBuilder builds one full-recall-parameterized index kind over an
// arbitrary corpus subset — the same builder constructs the unsharded
// reference and every shard index.
type kindBuilder[T any] struct {
	kind  string
	build func(data []T) (index.Index[T], error)
}

// fullRecallKinds is the generic kind matrix (every kind constructible over
// any space); the dense driver appends the L2-only mplsh.
func fullRecallKinds[T any](sp space.Space[T]) []kindBuilder[T] {
	return []kindBuilder[T]{
		{"seqscan", func(data []T) (index.Index[T], error) {
			return seqscan.New(sp, data), nil
		}},
		{"vptree", func(data []T) (index.Index[T], error) {
			// A vanishing stretch disables pruning entirely, which keeps
			// the tree exact under non-metric spaces (KL) too.
			return vptree.New(sp, data, vptree.Options{BucketSize: 8, AlphaLeft: 1e-12, AlphaRight: 1e-12, Seed: seed})
		}},
		{"brute-force-filt", func(data []T) (index.Index[T], error) {
			return core.NewBruteForceFilter(sp, data, core.BruteForceOptions{NumPivots: 16, Gamma: 1, Seed: seed})
		}},
		{"brute-force-filt-bin", func(data []T) (index.Index[T], error) {
			return core.NewBinFilter(sp, data, core.BinFilterOptions{NumPivots: 32, Gamma: 1, Seed: seed})
		}},
		{"brute-force-filt-quant", func(data []T) (index.Index[T], error) {
			// Gamma=1 refines every point: the quantized prefix reorders
			// candidate evaluation but cannot change the returned answers.
			return core.NewQuantFilter(sp, data, core.QuantFilterOptions{NumPivots: 32, PrefixLen: 16, Gamma: 1, Seed: seed})
		}},
		{"distvec-filt", func(data []T) (index.Index[T], error) {
			return core.NewDistVecFilter(sp, data, core.BruteForceOptions{NumPivots: 16, Gamma: 1, Seed: seed})
		}},
		{"pp-index", func(data []T) (index.Index[T], error) {
			return core.NewPPIndex(sp, data, core.PPIndexOptions{NumPivots: 16, PrefixLen: 4, Copies: 2, Gamma: 1, Seed: seed})
		}},
		{"mi-file", func(data []T) (index.Index[T], error) {
			// Index and search every pivot with no position filter: the
			// candidate set is the whole corpus.
			return core.NewMIFile(sp, data, core.MIFileOptions{
				NumPivots: 16, NumPivotIndex: 16, NumPivotSearch: 16, Gamma: 1, Seed: seed,
			})
		}},
		{"napp", func(data []T) (index.Index[T], error) {
			// Every point posts every pivot; MinShared 1 admits the whole
			// corpus as candidates.
			return core.NewNAPP(sp, data, core.NAPPOptions{
				NumPivots: 32, NumPivotIndex: 32, MinShared: 1, Seed: seed,
			})
		}},
		{"omedrank", func(data []T) (index.Index[T], error) {
			// Gamma 1 keeps aggregating until every point crosses the
			// quorum (each voter ranks the whole corpus, so all do).
			return core.NewOMEDRANK(sp, data, core.OMEDRANKOptions{NumVoters: 6, Gamma: 1, Seed: seed})
		}},
		{"perm-vptree", func(data []T) (index.Index[T], error) {
			return core.NewPermVPTree(sp, data, core.PermVPTreeOptions{NumPivots: 16, Gamma: 1, Seed: seed})
		}},
		{"sw-graph", func(data []T) (index.Index[T], error) {
			// EfSearch = n makes the best-first search exhaust the
			// connected component, i.e. exact on a connected graph.
			return knngraph.NewSW(sp, data, knngraph.Options{
				NN: 10, EfSearch: len(data), InitAttempts: 4, Workers: 1, Seed: seed,
			})
		}},
		{"nndescent-graph", func(data []T) (index.Index[T], error) {
			return knngraph.NewNNDescent(sp, data, knngraph.Options{
				NN: 10, EfSearch: len(data), InitAttempts: 4, Workers: 1, Seed: seed,
			})
		}},
	}
}

// denseFullRecallKinds appends mplsh: one table, one hash, a quantization
// width far above any projection value — every point lands in one bucket.
func denseFullRecallKinds(sp space.Space[[]float32]) []kindBuilder[[]float32] {
	kinds := fullRecallKinds[[]float32](sp)
	return append(kinds, kindBuilder[[]float32]{"mplsh", func(data [][]float32) (index.Index[[]float32], error) {
		m, err := lsh.New(data, lsh.Options{Tables: 1, Hashes: 1, Width: 1e12, Seed: seed})
		if err != nil {
			return nil, err
		}
		return index.Index[[]float32](m), nil
	}})
}

// buildLocal hash-partitions db into S shards, builds one index per shard
// with kb, and wraps them in a Local.
func buildLocal[T any](t *testing.T, kb kindBuilder[T], db []T, S int, p shard.Partitioner) *router.Local[T] {
	t.Helper()
	ids, err := shard.IDs(p, len(db), S)
	if err != nil {
		t.Fatal(err)
	}
	shards := make([]router.LocalShard[T], S)
	for s := range ids {
		idx, err := kb.build(shard.Subset(db, ids[s]))
		if err != nil {
			t.Fatalf("building shard %d/%d: %v", s, S, err)
		}
		shards[s] = router.LocalShard[T]{Index: idx, IDs: ids[s]}
	}
	loc, err := router.NewLocal(shards, engine.NewPool(4))
	if err != nil {
		t.Fatal(err)
	}
	return loc
}

// diffResults mirrors the indextest conformance helper: two result lists
// must match exactly, ids and distances.
func diffResults(t *testing.T, want, got []topk.Neighbor, ctx string) {
	t.Helper()
	if len(want) != len(got) {
		t.Errorf("%s: got %d results, want %d", ctx, len(got), len(want))
		return
	}
	for i := range want {
		if want[i] != got[i] {
			t.Errorf("%s: result %d = {id %d, dist %g}, want {id %d, dist %g}",
				ctx, i, got[i].ID, got[i].Dist, want[i].ID, want[i].Dist)
		}
	}
}

// testShardedIdentity runs the property for one corpus over the given kind
// matrix.
func testShardedIdentity[T any](t *testing.T, db, queries []T, kinds []kindBuilder[T]) {
	t.Helper()
	// Probe with held-out queries plus corpus points (exact self-hits
	// stress tie-breaking: distance-zero duplicates must merge
	// canonically).
	probes := append(append([]T{}, queries...), db[:4]...)
	ks := []int{1, 10, 50, len(db) + 7}

	for _, kb := range kinds {
		t.Run(kb.kind, func(t *testing.T) {
			unsharded, err := kb.build(db)
			if err != nil {
				t.Fatal(err)
			}
			for _, S := range shardCounts {
				t.Run(fmt.Sprintf("S=%d", S), func(t *testing.T) {
					loc := buildLocal(t, kb, db, S, shard.Hash)
					searcher := loc.NewSearcher()
					var dst []topk.Neighbor
					for qi, q := range probes {
						for _, k := range ks {
							want := unsharded.Search(q, k)
							got := loc.Search(q, k)
							diffResults(t, want, got, fmt.Sprintf("query %d k=%d (Search)", qi, k))
							dst = searcher.SearchAppend(dst[:0], q, k)
							diffResults(t, want, dst, fmt.Sprintf("query %d k=%d (SearchAppend)", qi, k))
						}
					}
					// The batch engine over a Local must equal the serial
					// loop (Local provides per-worker searchers).
					const k = 10
					want := make([][]topk.Neighbor, len(probes))
					for i, q := range probes {
						want[i] = unsharded.Search(q, k)
					}
					batch := engine.SearchBatchPool(engine.NewPool(4), index.Index[T](loc), probes, k)
					for i := range probes {
						diffResults(t, want[i], batch[i], fmt.Sprintf("batch query %d", i))
					}
				})
			}
		})
	}
}

// TestLocalShardedIdentityDense runs the full 13-kind matrix over the
// shared dense L2 corpus.
func TestLocalShardedIdentityDense(t *testing.T) {
	db, queries := indextest.DenseCorpus()
	testShardedIdentity(t, db, queries, denseFullRecallKinds(space.L2{}))
}

// TestLocalShardedIdentityDNA runs the generic kinds over the byte-string
// corpus: normalized Levenshtein's heavily tied, discrete distances are the
// hard case for canonical merge ordering.
func TestLocalShardedIdentityDNA(t *testing.T) {
	if testing.Short() {
		t.Skip("dense corpus covers the kind matrix; skipping the tie-stress corpus in -short")
	}
	db, queries := indextest.DNACorpus()
	testShardedIdentity(t, db, queries, fullRecallKinds[[]byte](space.NormalizedLevenshtein{}))
}

// TestLocalShardedIdentityKL covers the asymmetric KL divergence with a
// representative kind subset (the dense run already covers every kind; this
// corpus exists to exercise left-query asymmetry through the shard path).
func TestLocalShardedIdentityKL(t *testing.T) {
	if testing.Short() {
		t.Skip("dense corpus covers the kind matrix; skipping the asymmetric corpus in -short")
	}
	db, queries := indextest.HistoCorpus()
	all := fullRecallKinds[space.Histogram](space.KLDivergence{})
	keep := map[string]bool{"seqscan": true, "vptree": true, "napp": true, "sw-graph": true, "mi-file": true}
	var kinds []kindBuilder[space.Histogram]
	for _, kb := range all {
		if keep[kb.kind] {
			kinds = append(kinds, kb)
		}
	}
	testShardedIdentity(t, db, queries, kinds)
}

// TestLocalRoundRobinIdentity covers the second partitioner: identity must
// hold for round-robin striping too (monotone id maps are
// partitioner-independent).
func TestLocalRoundRobinIdentity(t *testing.T) {
	db, queries := indextest.DenseCorpus()
	kb := kindBuilder[[]float32]{"seqscan", func(data [][]float32) (index.Index[[]float32], error) {
		return seqscan.New[[]float32](space.L2{}, data), nil
	}}
	unsharded, err := kb.build(db)
	if err != nil {
		t.Fatal(err)
	}
	for _, S := range shardCounts {
		loc := buildLocal(t, kb, db, S, shard.RoundRobin)
		for qi, q := range queries {
			diffResults(t, unsharded.Search(q, 10), loc.Search(q, 10),
				fmt.Sprintf("round-robin S=%d query %d", S, qi))
		}
	}
}

// TestNewLocalValidation covers constructor error paths and naming.
func TestNewLocalValidation(t *testing.T) {
	if _, err := router.NewLocal[[]float32](nil, engine.Pool{}); err == nil {
		t.Fatal("NewLocal with no shards must error")
	}
	if _, err := router.NewLocal([]router.LocalShard[[]float32]{{}}, engine.Pool{}); err == nil {
		t.Fatal("NewLocal with a nil shard index must error")
	}
	db, _ := indextest.DenseCorpus()
	loc := buildLocal(t, kindBuilder[[]float32]{"seqscan", func(data [][]float32) (index.Index[[]float32], error) {
		return seqscan.New[[]float32](space.L2{}, data), nil
	}}, db, 3, shard.Hash)
	if loc.Name() != "seqscan-sharded3" {
		t.Fatalf("Name = %q", loc.Name())
	}
	if loc.Shards() != 3 {
		t.Fatalf("Shards = %d", loc.Shards())
	}
	if got := loc.Search(db[0], 0); got != nil {
		t.Fatalf("Search k=0 returned %v", got)
	}
}
