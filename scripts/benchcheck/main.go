// Command benchcheck validates a bench.sh output file against the
// permsearch-bench/v1 schema: required identity fields, a non-empty result
// set, and per-method numbers that are present and positive. bench.sh runs
// it on every emit, so a drift between the awk emitter and the documented
// schema (or a benchmark rename that silently empties the results) fails
// the bench run instead of committing an unreadable trajectory point.
//
// With -prev it additionally runs in trajectory mode, comparing the new
// point against the previous committed one: a method present in the
// previous file but absent from the new one is always fatal (a silently
// dropped benchmark row is how perf coverage rots), and a ns/op regression
// beyond -max-regress (default 25%) is fatal when the two files were
// measured on the same machine identity (cpu/go/goos/goarch) and a warning
// otherwise — cross-machine latency deltas are noise, missing methods are
// not.
//
// Memory is gated too: bytes_per_op and allocs_per_op may not grow by more
// than -max-alloc-regress (default 0 — any growth fails), and a method
// whose previous point was zero must stay exactly zero regardless of the
// knob: the steady-state zero-allocation contract of the query hot path is
// binary, and 0 -> 1 allocs/op is precisely the regression the AllocsPerRun
// guards exist to catch. Like the latency gate, memory findings downgrade
// to warnings across differing machine identities (a Go version bump can
// legitimately change allocation counts).
//
// Usage: go run ./scripts/benchcheck [-prev PREV.json] BENCH_X.json [...]
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

// Schema is the bench document format benchcheck accepts.
const Schema = "permsearch-bench/v1"

type doc struct {
	Schema    string `json:"schema"`
	Bench     string `json:"bench"`
	Timestamp string `json:"timestamp"`
	Go        string `json:"go"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	CPU       string `json:"cpu"`
	Results   []row  `json:"results"`
}

type row struct {
	Method      string   `json:"method"`
	NsPerOp     *float64 `json:"ns_per_op"`
	BytesPerOp  *float64 `json:"bytes_per_op"`
	AllocsPerOp *float64 `json:"allocs_per_op"`
	QPS         *float64 `json:"qps"`
}

func load(path string) (*doc, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	dec := json.NewDecoder(bytes.NewReader(blob))
	dec.DisallowUnknownFields()
	var d doc
	if err := dec.Decode(&d); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	if d.Schema != Schema {
		return nil, fmt.Errorf("%s: schema %q, want %q", path, d.Schema, Schema)
	}
	for field, v := range map[string]string{
		"bench": d.Bench, "timestamp": d.Timestamp, "go": d.Go, "goos": d.GOOS, "goarch": d.GOARCH,
	} {
		if v == "" {
			return nil, fmt.Errorf("%s: missing %q", path, field)
		}
	}
	if len(d.Results) == 0 {
		return nil, fmt.Errorf("%s: no results (did the benchmark filter stop matching?)", path)
	}
	for i, r := range d.Results {
		if r.Method == "" {
			return nil, fmt.Errorf("%s: results[%d]: missing method", path, i)
		}
		for name, v := range map[string]*float64{
			"ns_per_op": r.NsPerOp, "bytes_per_op": r.BytesPerOp, "allocs_per_op": r.AllocsPerOp, "qps": r.QPS,
		} {
			if v == nil {
				return nil, fmt.Errorf("%s: results[%d] (%s): missing %s", path, i, r.Method, name)
			}
			if *v < 0 {
				return nil, fmt.Errorf("%s: results[%d] (%s): %s = %v is negative", path, i, r.Method, name, *v)
			}
		}
		// A zero latency means the row did not really run.
		if *r.NsPerOp == 0 || *r.QPS == 0 {
			return nil, fmt.Errorf("%s: results[%d] (%s): zero ns_per_op/qps", path, i, r.Method)
		}
	}
	return &d, nil
}

// sameIdentity reports whether two points were measured in the same
// environment, making their latencies comparable.
func sameIdentity(a, b *doc) bool {
	return a.CPU == b.CPU && a.Go == b.Go && a.GOOS == b.GOOS && a.GOARCH == b.GOARCH
}

// compare runs trajectory mode: cur against prev. Missing methods are
// fatal; latency regressions beyond maxRegress and memory regressions
// beyond maxAllocRegress (with previously-zero rows pinned at zero) are
// fatal on matching identity, warnings otherwise. Returns the number of
// fatal findings.
func compare(prevPath string, prev, cur *doc, maxRegress, maxAllocRegress float64) int {
	curBy := make(map[string]row, len(cur.Results))
	for _, r := range cur.Results {
		curBy[r.Method] = r
	}
	comparable := sameIdentity(prev, cur)
	fatal := 0
	finding := func(msg string) {
		if comparable {
			fmt.Fprintf(os.Stderr, "benchcheck: %s\n", msg)
			fatal++
		} else {
			fmt.Fprintf(os.Stderr, "benchcheck: warning: %s (measured on different machines — not gating)\n", msg)
		}
	}
	for _, p := range prev.Results {
		c, ok := curBy[p.Method]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchcheck: method %q present in %s is missing from the new point\n", p.Method, prevPath)
			fatal++
			continue
		}
		if ratio := (*c.NsPerOp - *p.NsPerOp) / *p.NsPerOp; ratio > maxRegress {
			finding(fmt.Sprintf("method %q regressed: %.0f -> %.0f ns/op (%+.0f%%, limit %+.0f%%)",
				p.Method, *p.NsPerOp, *c.NsPerOp, 100*ratio, 100*maxRegress))
		}
		for unit, vals := range map[string][2]float64{
			"B/op":      {*p.BytesPerOp, *c.BytesPerOp},
			"allocs/op": {*p.AllocsPerOp, *c.AllocsPerOp},
		} {
			pv, cv := vals[0], vals[1]
			if pv == 0 {
				if cv > 0 {
					finding(fmt.Sprintf("method %q broke its zero-allocation contract: 0 -> %v %s",
						p.Method, cv, unit))
				}
				continue
			}
			if ratio := (cv - pv) / pv; ratio > maxAllocRegress {
				finding(fmt.Sprintf("method %q regressed: %v -> %v %s (%+.0f%%, limit %+.0f%%)",
					p.Method, pv, cv, unit, 100*ratio, 100*maxAllocRegress))
			}
		}
	}
	return fatal
}

func main() {
	prevPath := flag.String("prev", "", "previous trajectory point to compare against (missing methods fatal; ns/op and memory regressions gate on matching machine identity)")
	maxRegress := flag.Float64("max-regress", 0.25, "fractional ns/op increase tolerated in -prev mode before failing")
	maxAllocRegress := flag.Float64("max-alloc-regress", 0, "fractional bytes_per_op/allocs_per_op increase tolerated in -prev mode; previously-zero rows must stay zero regardless")
	flag.Parse()
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: benchcheck [-prev PREV.json] BENCH_X.json [...]")
		os.Exit(2)
	}
	var prev *doc
	if *prevPath != "" {
		d, err := load(*prevPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
			os.Exit(1)
		}
		prev = d
	}
	for _, path := range flag.Args() {
		d, err := load(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
			os.Exit(1)
		}
		if prev != nil {
			if fatal := compare(*prevPath, prev, d, *maxRegress, *maxAllocRegress); fatal > 0 {
				fmt.Fprintf(os.Stderr, "benchcheck: %s: %d trajectory failure(s) against %s\n", path, fatal, *prevPath)
				os.Exit(1)
			}
			fmt.Printf("benchcheck: %s ok against %s\n", path, *prevPath)
			continue
		}
		fmt.Printf("benchcheck: %s ok\n", path)
	}
}
