package scratch

import (
	"testing"
)

func TestCounters_BasicLifecycle(t *testing.T) {
	var c Counters
	c.Begin(8)
	if got := c.Count(3); got != 0 {
		t.Fatalf("fresh counter = %d, want 0", got)
	}
	for i := 0; i < 5; i++ {
		if got, want := c.Inc(3), uint8(i+1); got != want {
			t.Fatalf("Inc %d returned %d, want %d", i, got, want)
		}
	}
	c.Inc(7)
	if got := c.Count(3); got != 5 {
		t.Fatalf("Count(3) = %d, want 5", got)
	}

	// A new query logically zeroes everything without touching cells.
	c.Begin(8)
	for id := uint32(0); id < 8; id++ {
		if got := c.Count(id); got != 0 {
			t.Fatalf("after Begin, Count(%d) = %d, want 0", id, got)
		}
	}
	if got := c.Inc(7); got != 1 {
		t.Fatalf("Inc(7) on new epoch = %d, want 1", got)
	}
}

func TestCounters_GrowPreservesEpoch(t *testing.T) {
	var c Counters
	c.Begin(4)
	c.Inc(1)
	// Growing the arena mid-stream (Add grew the corpus) must not let the
	// zero-valued new cells read as live counts.
	c.Begin(16)
	for id := uint32(0); id < 16; id++ {
		if got := c.Count(id); got != 0 {
			t.Fatalf("after grow, Count(%d) = %d, want 0", id, got)
		}
	}
}

func TestCounters_SaturatesAt255(t *testing.T) {
	var c Counters
	c.Begin(1)
	for i := 0; i < 300; i++ {
		c.Inc(0)
	}
	if got := c.Count(0); got != 255 {
		t.Fatalf("Count after 300 Incs = %d, want saturated 255", got)
	}
	// Saturation must not carry into the epoch bits: the next query still
	// reads zero.
	c.Begin(1)
	if got := c.Count(0); got != 0 {
		t.Fatalf("after Begin, Count(0) = %d, want 0", got)
	}
}

// TestCounters_EpochWrap simulates the >16M-queries-on-one-arena case (8-bit
// counts leave 24 bits of epoch) by forcing the epoch near its maximum: the
// wrap must eagerly clear the stale cells exactly once, after which old
// stamps — now numerically *ahead* of the restarted epoch — cannot read as
// live.
func TestCounters_EpochWrap(t *testing.T) {
	var c Counters
	c.SetEpoch(counterEpochMax - 2)
	for q := 0; q < 6; q++ {
		c.Begin(16)
		for id := uint32(0); id < 16; id++ {
			if got := c.Count(id); got != 0 {
				t.Fatalf("query %d (epoch %d): Count(%d) = %d, want 0", q, c.Epoch(), id, got)
			}
		}
		// Stamp every cell so the next epoch has maximal stale state.
		for id := uint32(0); id < 16; id++ {
			want := uint8(q + 1)
			var got uint8
			for i := 0; i <= q; i++ {
				got = c.Inc(id)
			}
			if got != want {
				t.Fatalf("query %d: Inc(%d) = %d, want %d", q, id, got, want)
			}
		}
		if c.Epoch() > counterEpochMax {
			t.Fatalf("epoch %d escaped its %d-bit field", c.Epoch(), counterEpochBits)
		}
	}
	if c.Epoch() >= counterEpochMax-2 {
		t.Fatalf("epoch %d did not wrap", c.Epoch())
	}
}

// TestCounters_EpochWrapClearsFullCapacity pins the wrap clear to the whole
// backing array: if the arena wraps while serving a smaller n, cells beyond
// that window must not keep pre-wrap stamps that a later, larger Begin
// would re-expose as live counts.
func TestCounters_EpochWrapClearsFullCapacity(t *testing.T) {
	var c Counters
	c.SetEpoch(counterEpochMax - 1)
	c.Begin(16) // epoch = max: stamp cells far beyond the next window
	for id := uint32(0); id < 16; id++ {
		c.Inc(id)
	}
	c.Begin(4) // wraps; only ids [0, 4) are in the window
	// Walk the restarted epoch up to the stale stamp value and re-expose
	// the full arena: the high cells must still read as zero.
	c.SetEpoch(counterEpochMax - 1)
	c.Begin(16)
	for id := uint32(0); id < 16; id++ {
		if got := c.Count(id); got != 0 {
			t.Fatalf("Count(%d) = %d after wrap at smaller n, want 0", id, got)
		}
	}
}

func TestGains_BasicLifecycle(t *testing.T) {
	var g Gains
	g.Begin(4)
	if got := g.Get(2); got != 0 {
		t.Fatalf("fresh gain = %d, want 0", got)
	}
	if total, first := g.Add(2, 100); total != 100 || !first {
		t.Fatalf("first Add = (%d, %v), want (100, true)", total, first)
	}
	if total, first := g.Add(2, 28); total != 128 || first {
		t.Fatalf("second Add = (%d, %v), want (128, false)", total, first)
	}
	g.Begin(4)
	if got := g.Get(2); got != 0 {
		t.Fatalf("after Begin, Get(2) = %d, want 0", got)
	}
	if total, first := g.Add(2, 7); total != 7 || !first {
		t.Fatalf("Add on new epoch = (%d, %v), want (7, true)", total, first)
	}
}

// TestGains_EpochWrap forces the 32-bit epoch to wrap and checks stale
// values cannot resurface.
func TestGains_EpochWrap(t *testing.T) {
	var g Gains
	g.SetEpoch(^uint32(0) - 1)
	for q := 0; q < 4; q++ {
		g.Begin(8)
		for id := uint32(0); id < 8; id++ {
			if got := g.Get(id); got != 0 {
				t.Fatalf("query %d (epoch %d): Get(%d) = %d, want 0", q, g.Epoch(), id, got)
			}
			g.Add(id, int32(q+1)*10)
		}
	}
	if g.Epoch() >= ^uint32(0)-1 {
		t.Fatalf("epoch %d did not wrap", g.Epoch())
	}
}

func TestPool_RoundTripPreservesCapacity(t *testing.T) {
	type state struct{ buf []int32 }
	var p Pool[state]
	s := p.Get()
	s.buf = Grow(s.buf, 1000)
	p.Put(s)
	s2 := p.Get()
	// sync.Pool gives no hard guarantee, but single-goroutine Put-then-Get
	// returns the per-P private slot — and the invariant under test is that
	// whatever state comes back, it carries its full capacity.
	if cap(s2.buf) != 0 && cap(s2.buf) < 1000 {
		t.Fatalf("recycled state lost capacity: cap = %d", cap(s2.buf))
	}
}

func TestGrow(t *testing.T) {
	b := Grow[int32](nil, 10)
	if len(b) != 10 {
		t.Fatalf("len = %d, want 10", len(b))
	}
	b2 := Grow(b, 5)
	if len(b2) != 5 || cap(b2) != cap(b) {
		t.Fatalf("shrink did not reuse capacity: len=%d cap=%d (orig cap %d)", len(b2), cap(b2), cap(b))
	}
	b3 := Grow(b2, 20)
	if len(b3) != 20 {
		t.Fatalf("len = %d, want 20", len(b3))
	}
}

func TestMarks_BasicLifecycle(t *testing.T) {
	var m Marks
	m.Begin(4)
	if m.Has(2) {
		t.Fatal("fresh arena reports id marked")
	}
	if !m.TrySet(2) {
		t.Fatal("first TrySet(2) = false, want true")
	}
	if m.TrySet(2) {
		t.Fatal("second TrySet(2) = true, want false")
	}
	if !m.Has(2) || m.Has(3) {
		t.Fatalf("Has after TrySet: Has(2)=%v Has(3)=%v", m.Has(2), m.Has(3))
	}
	m.Begin(4)
	if m.Has(2) {
		t.Fatal("mark survived Begin")
	}
	if !m.TrySet(2) {
		t.Fatal("TrySet on new epoch = false, want true")
	}
}

// TestMarks_EpochWrap forces the 32-bit epoch to wrap and checks stale
// marks cannot resurface.
func TestMarks_EpochWrap(t *testing.T) {
	var m Marks
	m.SetEpoch(^uint32(0) - 1)
	for q := 0; q < 4; q++ {
		m.Begin(8)
		for id := uint32(0); id < 8; id++ {
			if m.Has(id) {
				t.Fatalf("query %d (epoch %d): id %d marked at query start", q, m.Epoch(), id)
			}
			if !m.TrySet(id) {
				t.Fatalf("query %d: TrySet(%d) = false on fresh epoch", q, id)
			}
		}
	}
	if m.Epoch() >= ^uint32(0)-1 {
		t.Fatalf("epoch %d did not wrap", m.Epoch())
	}
}

// TestMarks_EpochWrapClearsFullCapacity mirrors the Counters test: a wrap
// while serving a smaller n must clear stamps beyond that window too.
func TestMarks_EpochWrapClearsFullCapacity(t *testing.T) {
	var m Marks
	m.SetEpoch(^uint32(0) - 1)
	m.Begin(16) // epoch = max: stamp cells beyond the next window
	for id := uint32(0); id < 16; id++ {
		m.TrySet(id)
	}
	m.Begin(4) // wraps; only ids [0, 4) are in the window
	m.SetEpoch(^uint32(0) - 1)
	m.Begin(16)
	for id := uint32(0); id < 16; id++ {
		if m.Has(id) {
			t.Fatalf("Has(%d) = true after wrap at smaller n, want false", id)
		}
	}
}
