package router

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/shard"
)

// maxShardResponseBytes caps what the router will read back from one
// replica; matches the serving daemon's own request cap.
const maxShardResponseBytes = 64 << 20

// replica is one serving process inside a shard's replica group: its HTTP
// client, lifetime counters, and health state. The embedded http.Client
// pools connections (keep-alives on by default), so steady-state queries
// reuse sockets instead of re-dialing per request.
//
// Health state is two words updated lock-free from the query path: an
// infrastructure failure bumps consecFails, and crossing the group's
// ejection threshold flips ejected — after which the group stops routing
// regular traffic here (the replica only sees last-resort attempts) until
// the router's background prober sees /healthz answer 200 again.
type replica struct {
	shard, id int    // shard index, replica position within the group
	base      string // e.g. "http://10.0.0.1:8080", no trailing slash
	// client serves queries under the per-shard timeout; health probes use
	// a tighter budget so a wedged replica cannot stall readiness checks.
	client *http.Client
	health *http.Client

	requests    atomic.Int64 // search attempts routed here (hedges included)
	failures    atomic.Int64 // search calls that returned no usable answer
	hedges      atomic.Int64 // speculative attempts launched against this replica
	latencyNs   atomic.Int64 // cumulative per-call wall time
	consecFails atomic.Int32 // consecutive infrastructure failures
	ejected     atomic.Bool  // out of the regular rotation until re-admitted

	// m are the replica's /metrics handles, resolved once by the router
	// after topology validation; nil when the replica is used outside a
	// Router (unit tests), so every recording site nil-guards.
	m *replicaMetrics
}

// replicaMetrics are one replica's exposition handles
// (permrouter_replica_* families, labeled shard,replica).
type replicaMetrics struct {
	requests     *obs.Counter
	failures     *obs.Counter
	hedges       *obs.Counter
	latency      *obs.Histogram
	ejections    *obs.Counter
	readmissions *obs.Counter
}

// noteEjected flips the replica out of rotation, returning true on the
// false->true transition (which is also counted as an ejection metric).
func (r *replica) noteEjected() bool {
	if r.ejected.Swap(true) {
		return false
	}
	if r.m != nil {
		r.m.ejections.Inc()
	}
	return true
}

// noteReadmitted flips the replica back into rotation, returning true on
// the true->false transition (counted as a re-admission metric).
func (r *replica) noteReadmitted() bool {
	if !r.ejected.Swap(false) {
		return false
	}
	if r.m != nil {
		r.m.readmissions.Inc()
	}
	return true
}

func newReplica(shardIdx, id int, base string, timeout time.Duration) *replica {
	return &replica{
		shard:  shardIdx,
		id:     id,
		base:   strings.TrimRight(base, "/"),
		client: &http.Client{Timeout: timeout},
		health: &http.Client{Timeout: min(timeout, 2*time.Second)},
	}
}

// shardFailure is an infrastructure failure of one replica (transport
// error, timeout, or 5xx): the group fails over to the next replica, and
// the degraded-mode policy (fail-open vs fail-closed) applies only when a
// whole group is exhausted. Client-caused rejections are clientError.
type shardFailure struct {
	shard   int
	replica int
	status  int // HTTP status, 0 for transport errors
	msg     string
}

func (e *shardFailure) Error() string {
	if e.status != 0 {
		return fmt.Sprintf("shard %d replica %d: status %d: %s", e.shard, e.replica, e.status, e.msg)
	}
	return fmt.Sprintf("shard %d replica %d: %s", e.shard, e.replica, e.msg)
}

// clientError is a replica's 4xx verdict on the request itself (malformed
// query, bad params). A request malformed for one replica is malformed for
// all — the router forwards the verdict as its own 400 and never counts it
// against the replica.
type clientError struct{ msg string }

func (e *clientError) Error() string { return e.msg }

// shardPayload is what one replica answered: exactly one of Results (single
// query) or Batch is populated, already in wire shape with corpus-global
// ids.
type shardPayload struct {
	Results []neighborJSON   `json:"results"`
	Batch   [][]neighborJSON `json:"batch"`
}

// errorBody extracts the "error" field of a JSON error response, falling
// back to the raw body.
func errorBody(raw []byte) string {
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(raw, &e) == nil && e.Error != "" {
		return e.Error
	}
	return strings.TrimSpace(string(raw))
}

// search posts a query (or batch) body to this replica and decodes the
// answer, updating the counters. Hedging and failover live one level up, in
// the group (group.search): a replica only ever makes single attempts.
func (r *replica) search(ctx context.Context, name string, body []byte) (*shardPayload, error) {
	r.requests.Add(1)
	if r.m != nil {
		r.m.requests.Inc()
	}
	start := time.Now()
	defer func() {
		r.latencyNs.Add(time.Since(start).Nanoseconds())
		if r.m != nil {
			r.m.latency.Since(start)
		}
	}()

	p, err := r.doSearch(ctx, name, body)
	if err != nil {
		if _, client := err.(*clientError); !client {
			r.failures.Add(1)
			if r.m != nil {
				r.m.failures.Inc()
			}
		}
		return nil, err
	}
	return p, nil
}

// doSearch is one attempt: POST, classify the status, decode the payload.
func (r *replica) doSearch(ctx context.Context, name string, body []byte) (*shardPayload, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		r.base+"/v1/indexes/"+url.PathEscape(name)+"/search", bytes.NewReader(body))
	if err != nil {
		return nil, &shardFailure{shard: r.shard, replica: r.id, msg: err.Error()}
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := r.client.Do(req)
	if err != nil {
		return nil, &shardFailure{shard: r.shard, replica: r.id, msg: err.Error()}
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, maxShardResponseBytes))
	if err != nil {
		return nil, &shardFailure{shard: r.shard, replica: r.id, msg: err.Error()}
	}
	switch {
	case resp.StatusCode == http.StatusOK:
		var p shardPayload
		if err := json.Unmarshal(raw, &p); err != nil {
			return nil, &shardFailure{shard: r.shard, replica: r.id, msg: fmt.Sprintf("undecodable answer: %v", err)}
		}
		return &p, nil
	case resp.StatusCode >= 400 && resp.StatusCode < 500:
		return nil, &clientError{msg: errorBody(raw)}
	default:
		return nil, &shardFailure{shard: r.shard, replica: r.id, status: resp.StatusCode, msg: errorBody(raw)}
	}
}

// healthy probes the replica's /healthz readiness endpoint.
func (r *replica) healthy(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.base+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := r.health.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("shard %d replica %d: healthz status %d", r.shard, r.id, resp.StatusCode)
	}
	return nil
}

// backendIndex mirrors the serving daemon's /v1/indexes row, as much of it
// as discovery validates.
type backendIndex struct {
	Name       string      `json:"name"`
	Kind       string      `json:"kind"`
	Space      string      `json:"space"`
	N          uint64      `json:"n"`
	Generation int64       `json:"generation"`
	CorpusN    int         `json:"corpus_n"`
	Shard      *shard.Info `json:"shard"`
}

// listIndexes fetches the replica's served index set.
func (r *replica) listIndexes(ctx context.Context) ([]backendIndex, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.base+"/v1/indexes", nil)
	if err != nil {
		return nil, err
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, maxShardResponseBytes))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("listing indexes: status %d: %s", resp.StatusCode, errorBody(raw))
	}
	var out struct {
		Indexes []backendIndex `json:"indexes"`
	}
	if err := json.Unmarshal(raw, &out); err != nil {
		return nil, fmt.Errorf("listing indexes: %v", err)
	}
	return out.Indexes, nil
}
