package server

// Sharded-serving tests: a server whose manifest carries a shard.Info stamp
// must carve the stamped subset out of the regenerated corpus, answer with
// corpus-global ids, and surface the stamp plus generation in /v1/indexes
// and /statusz — the contract the permrouter front tier builds on.

import (
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/shard"
	"repro/internal/space"
	"repro/internal/topk"
	"repro/internal/vptree"
)

// buildShardFixtures splits the DNA corpus into two hash shards, builds a
// VP-tree per shard (exact under normalized Levenshtein), and writes both
// into one directory — standing in for two shard processes, which share no
// state anyway. Returns the unsharded reference tree and the probe queries.
func buildShardFixtures(t *testing.T) (dir string, ref *vptree.Tree[[]byte], queries [][]byte) {
	t.Helper()
	dir = t.TempDir()
	db := dataset.DNA(e2eSeed, e2eDNAN, dataset.DNAOptions{})
	ids, err := shard.IDs(shard.Hash, len(db), 2)
	if err != nil {
		t.Fatal(err)
	}
	for s := range ids {
		tree, err := vptree.New[[]byte](space.NormalizedLevenshtein{}, shard.Subset(db, ids[s]), vptree.Options{Seed: e2eSeed})
		if err != nil {
			t.Fatal(err)
		}
		writeFixture(t, dir, []string{"dna-s0", "dna-s1"}[s], tree, Manifest{
			Dataset: "dna", Seed: e2eSeed, N: e2eDNAN, Generation: 5,
			Shard: &shard.Info{Set: "dna", Partitioner: shard.Hash, Shards: 2, Index: s},
		})
	}
	ref, err = vptree.New[[]byte](space.NormalizedLevenshtein{}, db, vptree.Options{Seed: e2eSeed})
	if err != nil {
		t.Fatal(err)
	}
	queries = append(dataset.DNA(e2eSeed+1, 6, dataset.DNAOptions{}), db[:3]...)
	return dir, ref, queries
}

// TestServedShardsMergeToUnsharded: querying both shard indexes over HTTP
// and merging the answers canonically reproduces the unsharded tree's
// Search exactly — ids are global, distances true, ties canonical.
func TestServedShardsMergeToUnsharded(t *testing.T) {
	dir, ref, queries := buildShardFixtures(t)
	ts := bootServer(t, dir, Options{Workers: 2, Timeout: 30 * time.Second})
	const k = 10
	for qi, q := range queries {
		var union []topk.Neighbor
		for _, name := range []string{"dna-s0", "dna-s1"} {
			status, raw := postJSON(t, ts.URL+"/v1/indexes/"+name+"/search",
				map[string]any{"query": string(q), "k": k})
			if status != http.StatusOK {
				t.Fatalf("%s query %d: status %d: %s", name, qi, status, raw)
			}
			var resp singleResponse
			if err := json.Unmarshal(raw, &resp); err != nil {
				t.Fatal(err)
			}
			for _, nb := range resp.Results {
				union = append(union, topk.Neighbor{ID: nb.ID, Dist: nb.Dist})
			}
		}
		got := topk.SelectK(union, k)
		want := ref.Search(q, k)
		if len(got) != len(want) {
			t.Fatalf("query %d: merged %d results, unsharded %d", qi, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("query %d result %d: merged {id %d, dist %g}, unsharded {id %d, dist %g}",
					qi, i, got[i].ID, got[i].Dist, want[i].ID, want[i].Dist)
			}
		}
	}
}

// TestServedShardMetadata: the stamp and generation surface in /v1/indexes
// (with the subset and corpus sizes) and in /statusz.
func TestServedShardMetadata(t *testing.T) {
	dir, _, _ := buildShardFixtures(t)
	ts := bootServer(t, dir, Options{})

	resp, err := http.Get(ts.URL + "/v1/indexes")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list struct {
		Indexes []indexInfo `json:"indexes"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list.Indexes) != 2 {
		t.Fatalf("listed %d indexes", len(list.Indexes))
	}
	var subsetTotal uint64
	for i, info := range list.Indexes {
		if info.Shard == nil {
			t.Fatalf("index %q has no shard stamp", info.Name)
		}
		if info.Shard.Shards != 2 || info.Shard.Index != i || info.Shard.Partitioner != shard.Hash {
			t.Errorf("index %q stamp = %+v", info.Name, info.Shard)
		}
		if info.Generation != 5 {
			t.Errorf("index %q generation = %d, want 5", info.Name, info.Generation)
		}
		if info.CorpusN != e2eDNAN {
			t.Errorf("index %q corpus_n = %d, want %d", info.Name, info.CorpusN, e2eDNAN)
		}
		subsetTotal += info.N
	}
	if subsetTotal != e2eDNAN {
		t.Errorf("shard sizes sum to %d, corpus holds %d", subsetTotal, e2eDNAN)
	}

	sresp, err := http.Get(ts.URL + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var status struct {
		Indexes []indexStatus `json:"indexes"`
	}
	if err := json.NewDecoder(sresp.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	for _, row := range status.Indexes {
		if row.Generation != 5 || row.Shard == nil || row.N == 0 || row.Version == 0 {
			t.Errorf("statusz row %q missing snapshot metadata: %+v", row.Name, row)
		}
	}
}

// TestShardManifestValidation: a corrupt stamp refuses to serve instead of
// serving wrong ids.
func TestShardManifestValidation(t *testing.T) {
	dir := t.TempDir()
	db := dataset.DNA(e2eSeed, 50, dataset.DNAOptions{})
	ids, err := shard.IDs(shard.Hash, len(db), 2)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := vptree.New[[]byte](space.NormalizedLevenshtein{}, shard.Subset(db, ids[0]), vptree.Options{Seed: e2eSeed})
	if err != nil {
		t.Fatal(err)
	}
	// Stamp claims shard 1, but the file was built over shard 0's subset:
	// the loader's size check must reject the mismatch (the subsets have
	// different sizes under the hash partitioner for this corpus).
	writeFixture(t, dir, "bad", tree, Manifest{
		Dataset: "dna", Seed: e2eSeed, N: 50,
		Shard: &shard.Info{Set: "x", Partitioner: shard.Hash, Shards: 2, Index: 1},
	})
	if len(ids[0]) == len(ids[1]) {
		t.Fatal("test premise broken: shards are the same size; pick another corpus size")
	}
	if _, err := OpenDir(dir); err == nil {
		t.Fatal("OpenDir served an index whose shard stamp mismatches its file")
	}

	// An invalid stamp (index out of range) must also refuse.
	writeFixture(t, dir, "bad", tree, Manifest{
		Dataset: "dna", Seed: e2eSeed, N: 50,
		Shard: &shard.Info{Set: "x", Partitioner: shard.Hash, Shards: 2, Index: 7},
	})
	if _, err := OpenDir(dir); err == nil {
		t.Fatal("OpenDir accepted an out-of-range shard stamp")
	}
}
