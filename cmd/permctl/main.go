// Command permctl is the rollout control plane of the replicated serving
// tier: it ships a shard-set generation (a shardsplit output directory)
// onto a fleet of permserve replicas and watches it converge, rolling back
// automatically when the new generation regresses.
//
// Usage:
//
//	permctl status  -topology fleet.json [-set dna]
//	permctl rollout -topology fleet.json -manifest idx2/dna.shardset.json \
//	                [-router http://127.0.0.1:8080] [-golden 32] [-min-recall 0.95]
//
// The topology file (permsearch-topology/v1) lists the fleet as shards ×
// replicas, each with a URL and — when the driver shares a filesystem with
// the serving processes — the directory it serves from, so permctl can
// install the new index bytes before asking for the reload. permrouter
// -topology consumes the same file.
//
// A rollout is gated three times: the shard files are re-checksummed
// against the set manifest before anything ships (a corrupt byte never
// reaches a replica); each replica must pass its readiness gate before and
// after its reload, replica by replica, so at most one member of a group
// is ever out of rotation; and, when -router is given, a golden query
// suite captured against the old generation re-runs against the new one —
// a recall (or, with -max-latency-factor, latency) regression rolls every
// replica back to its previous files and the fleet re-converges on the old
// generation. Exit status 0 means the fleet converged on the manifest's
// generation; anything else means it did not (the report says why, and
// whether the rollback restored the previous state).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"text/tabwriter"
	"time"

	"repro/internal/obs"
	"repro/internal/rollout"
	"repro/internal/shard"
)

func main() {
	log.SetFlags(log.LstdFlags | log.Lmicroseconds)
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "status":
		cmdStatus(os.Args[2:])
	case "rollout":
		cmdRollout(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: permctl <status|rollout> [flags]  (permctl <cmd> -h for flags)")
	os.Exit(2)
}

// cmdStatus prints the fleet's health, per-set generations and search
// latency quantiles, one row per replica — the human-readable view of the
// generation matrix the router serves on /v1/indexes, joined with each
// replica's GET /metrics latency histogram.
func cmdStatus(args []string) {
	fs := flag.NewFlagSet("permctl status", flag.ExitOnError)
	topoPath := fs.String("topology", "", "permsearch-topology/v1 fleet file (required)")
	set := fs.String("set", "", "only show this index set")
	timeout := fs.Duration("timeout", 5*time.Second, "per-replica request budget")
	fs.Parse(args)
	if *topoPath == "" {
		fmt.Fprintln(os.Stderr, "permctl status: -topology is required")
		os.Exit(2)
	}
	topo, err := rollout.ReadTopology(*topoPath)
	if err != nil {
		log.Fatalf("permctl: %v", err)
	}

	client := &http.Client{Timeout: *timeout}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "SHARD\tREPLICA\tURL\tHEALTH\tSET\tGENERATION\tN\tREQS\tP50\tP95\tP99")
	unhealthy := 0
	for s, group := range topo.Shards {
		for r, rep := range group {
			health := "ok"
			if err := probe(client, rep.URL+"/healthz"); err != nil {
				health = err.Error()
				unhealthy++
			}
			rows, err := listIndexes(client, rep.URL)
			if err != nil {
				fmt.Fprintf(w, "%d\t%d\t%s\t%s\t-\t-\t-\t-\t-\t-\t-\n", s, r, rep.URL, health)
				continue
			}
			tm := scrapeMetrics(client, rep.URL)
			for _, row := range rows {
				if *set != "" && row.Name != *set {
					continue
				}
				reqs, p50, p95, p99 := latencyCells(tm, row.Name)
				fmt.Fprintf(w, "%d\t%d\t%s\t%s\t%s\t%d\t%d\t%s\t%s\t%s\t%s\n",
					s, r, rep.URL, health, row.Name, row.Generation, row.N,
					reqs, p50, p95, p99)
			}
		}
	}
	w.Flush()
	if unhealthy > 0 {
		os.Exit(1)
	}
}

// cmdRollout drives a shard-set generation onto the fleet.
func cmdRollout(args []string) {
	fs := flag.NewFlagSet("permctl rollout", flag.ExitOnError)
	topoPath := fs.String("topology", "", "permsearch-topology/v1 fleet file (required)")
	manifest := fs.String("manifest", "", "shard-set manifest (<set>.shardset.json) of the generation to ship (required)")
	routerURL := fs.String("router", "", "router base URL for the golden query gate (empty: gate disabled)")
	golden := fs.Int("golden", 32, "golden query count")
	goldenK := fs.Int("golden-k", 10, "neighbors per golden query")
	minRecall := fs.Float64("min-recall", 0.95, "roll back when golden overlap@k against the old generation drops below this")
	maxLatency := fs.Float64("max-latency-factor", 0, "roll back when the golden suite slows down by more than this factor (0: disabled)")
	allowOlder := fs.Bool("allow-older", false, "allow shipping a generation that is not newer than the fleet's")
	timeout := fs.Duration("timeout", 5*time.Second, "per-request budget")
	converge := fs.Duration("converge-timeout", 30*time.Second, "per-replica convergence budget after a reload")
	fs.Parse(args)
	if *topoPath == "" || *manifest == "" {
		fmt.Fprintln(os.Stderr, "permctl rollout: -topology and -manifest are required")
		os.Exit(2)
	}
	topo, err := rollout.ReadTopology(*topoPath)
	if err != nil {
		log.Fatalf("permctl: %v", err)
	}

	opts := rollout.Options{
		Topology:         topo,
		RouterURL:        *routerURL,
		GoldenK:          *goldenK,
		MinRecall:        *minRecall,
		MaxLatencyFactor: *maxLatency,
		AllowOlder:       *allowOlder,
		Timeout:          *timeout,
		ConvergeTimeout:  *converge,
	}
	if *routerURL != "" {
		// The golden probes regenerate deterministically from the set
		// manifest's dataset and seed, so driver and fleet agree on them
		// without any shared query file.
		m, err := shard.ReadSetManifest(*manifest)
		if err != nil {
			log.Fatalf("permctl: %v", err)
		}
		opts.GoldenQueries, err = rollout.GoldenQueries(m.Dataset, m.Seed, *golden)
		if err != nil {
			log.Fatalf("permctl: %v", err)
		}
	}
	d, err := rollout.New(opts)
	if err != nil {
		log.Fatalf("permctl: %v", err)
	}

	report, err := d.Rollout(*manifest)
	if report != nil {
		blob, _ := json.MarshalIndent(report, "", "  ")
		fmt.Println(string(blob))
	}
	if err != nil {
		log.Fatalf("permctl: %v", err)
	}
}

// scrapeMetrics fetches and parses one replica's GET /metrics; nil when the
// replica is unreachable or predates the endpoint (the status table then
// shows "-" latency cells instead of failing the whole listing).
func scrapeMetrics(client *http.Client, base string) *obs.TextMetrics {
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return nil
	}
	tm, err := obs.ParseText(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return nil
	}
	return tm
}

// latencyCells renders one index's request count and p50/p95/p99 search
// latency from the scraped histogram.
func latencyCells(tm *obs.TextMetrics, name string) (reqs, p50, p95, p99 string) {
	reqs, p50, p95, p99 = "-", "-", "-", "-"
	if tm == nil {
		return
	}
	match := map[string]string{"index": name}
	quantile := func(q float64) (string, int64, bool) {
		v, count, ok := tm.Quantile("permserve_search_latency_seconds", match, q)
		if !ok || count == 0 {
			return "-", count, ok
		}
		return time.Duration(v * float64(time.Second)).Round(10 * time.Microsecond).String(), count, true
	}
	s50, count, ok := quantile(0.50)
	if !ok {
		return
	}
	reqs = fmt.Sprintf("%d", count)
	if count == 0 {
		return
	}
	s95, _, _ := quantile(0.95)
	s99, _, _ := quantile(0.99)
	return reqs, s50, s95, s99
}

func probe(client *http.Client, url string) error {
	resp, err := client.Get(url)
	if err != nil {
		return fmt.Errorf("unreachable")
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d", resp.StatusCode)
	}
	return nil
}

type indexRow struct {
	Name       string `json:"name"`
	Generation int64  `json:"generation"`
	N          uint64 `json:"n"`
}

func listIndexes(client *http.Client, base string) ([]indexRow, error) {
	resp, err := client.Get(base + "/v1/indexes")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d", resp.StatusCode)
	}
	var out struct {
		Indexes []indexRow `json:"indexes"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return out.Indexes, nil
}
