// Command permrouter is the scatter-gather front tier of the sharded
// serving stack: it fans every k-NN query out to a fleet of permserve
// shard processes and merges the per-shard top-k answers, speaking exactly
// the serving daemon's HTTP dialect — to a client, a router over S shards
// looks like one big permserve (see internal/router for the identity
// guarantees).
//
// Usage:
//
//	shardsplit -out idx/ -set dna -dataset dna -n 2000 -shards 2
//	permserve -dir idx/shard0 -addr 127.0.0.1:8081 &
//	permserve -dir idx/shard1 -addr 127.0.0.1:8082 &
//	permrouter -shards http://127.0.0.1:8081,http://127.0.0.1:8082 -addr :8080
//
//	curl localhost:8080/healthz            # ready only when every shard is
//	curl localhost:8080/statusz            # per-shard QPS/latency/error/hedge counters
//	curl localhost:8080/v1/indexes         # merged view (total n, per-shard generations)
//	curl -d '{"query": "ACGTACGTAC", "k": 3}' localhost:8080/v1/indexes/dna/search
//
// Shard order matters: -shards lists backend i as shard i, and startup
// refuses a topology whose shard stamps contradict the wiring. When a
// shard is down, -fail-open answers from the survivors with "partial":
// true; the default fails closed with 502. -hedge-delay duplicates a
// laggard's request after the given delay (tail-latency insurance).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/router"
)

func main() {
	shards := flag.String("shards", "", "comma-separated shard base URLs, in shard order (required)")
	addr := flag.String("addr", "127.0.0.1:8080", "listen address (port 0 picks a free port; the bound address is logged)")
	failOpen := flag.Bool("fail-open", false, "answer from surviving shards (with \"partial\": true) when a shard is down, instead of 502")
	shardTimeout := flag.Duration("shard-timeout", 10*time.Second, "per-shard request budget")
	hedgeDelay := flag.Duration("hedge-delay", 0, "duplicate a shard request that has not answered within this delay (0: disabled)")
	flag.Parse()

	log.SetFlags(log.LstdFlags | log.Lmicroseconds)
	if *shards == "" {
		fmt.Fprintln(os.Stderr, "permrouter: -shards is required (e.g. -shards http://h1:8081,http://h2:8082)")
		os.Exit(2)
	}
	var urls []string
	for _, u := range strings.Split(*shards, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}

	rt, err := router.New(router.Options{
		Shards:       urls,
		FailOpen:     *failOpen,
		ShardTimeout: *shardTimeout,
		HedgeDelay:   *hedgeDelay,
	})
	if err != nil {
		log.Fatalf("permrouter: %v", err)
	}
	mode := "fail-closed"
	if *failOpen {
		mode = "fail-open"
	}
	log.Printf("permrouter: routing %d indexes over %d shards (%s)", len(rt.Names()), len(urls), mode)
	for _, name := range rt.Names() {
		log.Printf("permrouter: routing index %q", name)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("permrouter: %v", err)
	}
	log.Printf("permrouter: listening on http://%s (%d shards)", ln.Addr(), len(urls))

	hs := &http.Server{Handler: rt.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
		log.Printf("permrouter: shutting down (in-flight requests get 10s to finish)")
		shctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := hs.Shutdown(shctx); err != nil {
			log.Fatalf("permrouter: shutdown: %v", err)
		}
		log.Printf("permrouter: bye")
	case err := <-errCh:
		log.Fatalf("permrouter: %v", err)
	}
}
