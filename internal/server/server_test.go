package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/index"
	"repro/internal/obs"
	"repro/internal/persist"
	"repro/internal/space"
	"repro/internal/topk"
	"repro/internal/vptree"
)

// The end-to-end suite: build small indexes over an L2 corpus and a
// Levenshtein corpus, save them, boot the server from the files, and assert
// that what comes back over HTTP is identical to calling Search on the
// original in-memory index.

const (
	e2eSeed   = 7
	e2eDenseN = 300
	e2eDNAN   = 200
)

// e2eFixture is one served index plus the original it was saved from.
type e2eFixture[T any] struct {
	idx     index.Index[T]
	queries []T
	encode  func(T) any // query -> JSON-encodable request form
}

// buildFixtures writes an index-set directory holding a NAPP over SIFT/L2
// and a VP-tree over DNA/normalized-Levenshtein, returning the originals
// for comparison. Queries are drawn from a different generator seed, so
// they are near the corpus but not of it; corpus points are appended too.
func buildFixtures(t *testing.T) (dir string, dense e2eFixture[[]float32], dna e2eFixture[[]byte]) {
	t.Helper()
	dir = t.TempDir()

	sift := dataset.SIFT(e2eSeed, e2eDenseN)
	na, err := core.NewNAPP[[]float32](space.L2{}, sift, core.NAPPOptions{
		NumPivots: 64, NumPivotIndex: 16, MinShared: 1, Seed: e2eSeed,
	})
	if err != nil {
		t.Fatal(err)
	}
	writeFixture(t, dir, "sift-napp", na, Manifest{Dataset: "sift", Seed: e2eSeed, N: e2eDenseN})
	dense = e2eFixture[[]float32]{
		idx:     na,
		queries: append(dataset.SIFT(e2eSeed+1, 8), sift[:4]...),
		encode:  func(q []float32) any { return q },
	}

	dnaDB := dataset.DNA(e2eSeed, e2eDNAN, dataset.DNAOptions{})
	vt, err := vptree.New[[]byte](space.NormalizedLevenshtein{}, dnaDB, vptree.Options{Seed: e2eSeed})
	if err != nil {
		t.Fatal(err)
	}
	writeFixture(t, dir, "dna-vptree", vt, Manifest{Dataset: "dna", Seed: e2eSeed, N: e2eDNAN})
	dna = e2eFixture[[]byte]{
		idx:     vt,
		queries: append(dataset.DNA(e2eSeed+1, 8, dataset.DNAOptions{}), dnaDB[:4]...),
		encode:  func(q []byte) any { return string(q) },
	}
	return dir, dense, dna
}

// writeFixture saves one index file and its sidecar manifest.
func writeFixture[T any](t *testing.T, dir, name string, idx index.Index[T], man Manifest) {
	t.Helper()
	if err := persist.SaveFile(filepath.Join(dir, name+persist.Ext), idx); err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(man)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, name+".json"), blob, 0o644); err != nil {
		t.Fatal(err)
	}
}

// bootServer opens dir and mounts the handler on an httptest server.
func bootServer(t *testing.T, dir string, opts Options) *httptest.Server {
	t.Helper()
	reg, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(reg, opts).Handler())
	t.Cleanup(ts.Close)
	return ts
}

// postJSON posts body (marshaled) and returns status + raw response.
func postJSON(t *testing.T, url string, body any) (int, []byte) {
	t.Helper()
	blob, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, raw
}

// wireNeighbors converts direct Search output to the wire shape for
// comparison. JSON's shortest-round-trip float encoding is exact for
// float64, so equality after decoding is equality of the original values.
func wireNeighbors(nbs []topk.Neighbor) []neighborJSON {
	out := make([]neighborJSON, len(nbs))
	for i, nb := range nbs {
		out[i] = neighborJSON{ID: nb.ID, Dist: nb.Dist}
	}
	return out
}

// checkServedMatchesDirect asserts single-query HTTP responses equal direct
// Search answers for every query and a spread of ks.
func checkServedMatchesDirect[T any](t *testing.T, ts *httptest.Server, name string, f e2eFixture[T]) {
	t.Helper()
	url := ts.URL + "/v1/indexes/" + name + "/search"
	for _, k := range []int{1, 10} {
		for qi, q := range f.queries {
			status, raw := postJSON(t, url, map[string]any{"query": f.encode(q), "k": k})
			if status != http.StatusOK {
				t.Fatalf("%s query %d k=%d: status %d: %s", name, qi, k, status, raw)
			}
			var got singleResponse
			if err := json.Unmarshal(raw, &got); err != nil {
				t.Fatalf("%s query %d: %v", name, qi, err)
			}
			want := wireNeighbors(f.idx.Search(q, k))
			if !reflect.DeepEqual(got.Results, want) {
				t.Fatalf("%s query %d k=%d: served %v, direct Search %v", name, qi, k, got.Results, want)
			}
		}
	}
}

func TestServedSearchMatchesDirect(t *testing.T) {
	dir, dense, dna := buildFixtures(t)
	ts := bootServer(t, dir, Options{Workers: 4, Timeout: 30 * time.Second})
	checkServedMatchesDirect(t, ts, "sift-napp", dense)
	checkServedMatchesDirect(t, ts, "dna-vptree", dna)
}

func TestServedBatchMatchesSerial(t *testing.T) {
	dir, dense, _ := buildFixtures(t)
	ts := bootServer(t, dir, Options{Workers: 4})
	const k = 5
	enc := make([]any, len(dense.queries))
	want := make([][]neighborJSON, len(dense.queries))
	for i, q := range dense.queries {
		enc[i] = dense.encode(q)
		want[i] = wireNeighbors(dense.idx.Search(q, k))
	}
	status, raw := postJSON(t, ts.URL+"/v1/indexes/sift-napp/search", map[string]any{"queries": enc, "k": k})
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, raw)
	}
	var got batchResponse
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Batch, want) {
		t.Fatalf("batch differs from serial Search loop\ngot  %v\nwant %v", got.Batch, want)
	}
}

func TestServedListAndHealth(t *testing.T) {
	dir, _, _ := buildFixtures(t)
	ts := bootServer(t, dir, Options{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/v1/indexes")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list struct {
		Indexes []indexInfo `json:"indexes"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list.Indexes) != 2 {
		t.Fatalf("listed %d indexes, want 2", len(list.Indexes))
	}
	want := []indexInfo{
		{Name: "dna-vptree", Kind: "vptree", Space: "normleven", N: e2eDNAN, Version: codec.Version, Dataset: "dna", Seed: e2eSeed},
		{Name: "sift-napp", Kind: "napp", Space: "l2", N: e2eDenseN, Version: codec.Version, Dataset: "sift", Seed: e2eSeed},
	}
	if !reflect.DeepEqual(list.Indexes, want) {
		t.Fatalf("listing = %+v, want %+v", list.Indexes, want)
	}
}

func TestServedErrorStatuses(t *testing.T) {
	dir, dense, _ := buildFixtures(t)
	ts := bootServer(t, dir, Options{})
	searchURL := ts.URL + "/v1/indexes/sift-napp/search"
	q := dense.encode(dense.queries[0])

	// Unknown index: 404 for search and reload.
	if status, _ := postJSON(t, ts.URL+"/v1/indexes/nope/search", map[string]any{"query": q}); status != http.StatusNotFound {
		t.Fatalf("unknown index search: status %d", status)
	}
	if status, _ := postJSON(t, ts.URL+"/v1/indexes/nope/reload", nil); status != http.StatusNotFound {
		t.Fatalf("unknown index reload: status %d", status)
	}

	// Malformed bodies: 400.
	for name, body := range map[string]any{
		"neither query nor queries": map[string]any{"k": 3},
		"both query and queries":    map[string]any{"query": q, "queries": []any{q}},
		"negative k":                map[string]any{"query": q, "k": -2},
		"wrong query shape":         map[string]any{"query": "not a vector"},
		"wrong dimensionality":      map[string]any{"query": []float32{1, 2, 3}},
		"unknown method param":      map[string]any{"query": q, "params": map[string]float64{"ef": 3}},
		"out-of-range method param": map[string]any{"query": q, "params": map[string]float64{"gamma": -1}},
	} {
		if status, raw := postJSON(t, searchURL, body); status != http.StatusBadRequest {
			t.Errorf("%s: status %d: %s", name, status, raw)
		}
	}
	resp, err := http.Post(searchURL, "application/json", bytes.NewReader([]byte("{broken")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unparsable body: status %d", resp.StatusCode)
	}

	// A huge k is capped at the corpus size instead of pre-allocating a
	// huge top-k queue: the request must succeed, quickly, with at most n
	// results — identical to what Search(q, n) returns.
	status, raw := postJSON(t, searchURL, map[string]any{"query": q, "k": 2_000_000_000})
	if status != http.StatusOK {
		t.Fatalf("huge k: status %d: %s", status, raw)
	}
	var got singleResponse
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	if want := wireNeighbors(dense.idx.Search(dense.queries[0], e2eDenseN)); !reflect.DeepEqual(got.Results, want) {
		t.Fatalf("huge k returned %d results, want the k=n answer (%d)", len(got.Results), len(want))
	}
}

// TestServedPerRequestParams: a request's method params hold for exactly
// that request — they change its results and are restored afterwards.
func TestServedPerRequestParams(t *testing.T) {
	dir := t.TempDir()
	sift := dataset.SIFT(e2eSeed, e2eDenseN)
	bf, err := core.NewBruteForceFilter[[]float32](space.L2{}, sift, core.BruteForceOptions{
		NumPivots: 32, Seed: e2eSeed, // default gamma 0.02
	})
	if err != nil {
		t.Fatal(err)
	}
	writeFixture(t, dir, "sift-bf", bf, Manifest{Dataset: "sift", Seed: e2eSeed, N: e2eDenseN})
	ts := bootServer(t, dir, Options{})
	url := ts.URL + "/v1/indexes/sift-bf/search"
	q := dataset.SIFT(e2eSeed+1, 1)[0]

	// Direct reference answers under default and overridden gamma.
	wantDefault := wireNeighbors(bf.Search(q, 10))
	if _, err := experiments.ApplyParams[[]float32](bf, experiments.Params{"gamma": 1}); err != nil {
		t.Fatal(err)
	}
	wantFull := wireNeighbors(bf.Search(q, 10))
	if reflect.DeepEqual(wantDefault, wantFull) {
		t.Fatal("test needs gamma to change this query's answer; pick another query")
	}

	var got singleResponse
	status, raw := postJSON(t, url, map[string]any{"query": q, "params": map[string]float64{"gamma": 1}})
	if status != http.StatusOK {
		t.Fatalf("params request: status %d: %s", status, raw)
	}
	if json.Unmarshal(raw, &got); !reflect.DeepEqual(got.Results, wantFull) {
		t.Fatalf("gamma=1 request: served %v, want %v", got.Results, wantFull)
	}
	// Next plain request sees the manifest defaults again.
	status, raw = postJSON(t, url, map[string]any{"query": q})
	if status != http.StatusOK {
		t.Fatalf("follow-up request: status %d: %s", status, raw)
	}
	if json.Unmarshal(raw, &got); !reflect.DeepEqual(got.Results, wantDefault) {
		t.Fatalf("params leaked: served %v, want default %v", got.Results, wantDefault)
	}
}

// panicServed stands in for an index whose Search has a bug.
type panicServed struct{}

func (panicServed) search(context.Context, json.RawMessage, int, *obs.QueryTrace) ([]topk.Neighbor, error) {
	panic("search exploded")
}

func (panicServed) searchBatch(_ context.Context, raws []json.RawMessage, k int, pool engine.Pool, _ *obs.QueryTrace) ([][]topk.Neighbor, error) {
	// Through the real worker pool, so the test also covers engine panic
	// propagation surfacing as an HTTP status.
	out := make([][]topk.Neighbor, len(raws))
	pool.ForDynamic(len(raws), func(i int) {
		panic("search exploded")
	})
	return out, nil
}

func (panicServed) applyParams(experiments.Params) (func(), error) { return func() {}, nil }

// TestServedSearchPanicIs500: a panicking Search answers 500 — not a
// killed connection, not a dead daemon — and the server keeps serving.
func TestServedSearchPanicIs500(t *testing.T) {
	e := &entry{name: "boom"}
	e.snap.Store(&snapshot{served: panicServed{}})
	reg := &Registry{entries: map[string]*entry{"boom": e}, names: []string{"boom"}}
	ts := httptest.NewServer(New(reg, Options{Workers: 4}).Handler())
	defer ts.Close()

	for name, body := range map[string]any{
		"single": map[string]any{"query": []float32{1}},
		"batch":  map[string]any{"queries": []any{[]float32{1}, []float32{2}}},
	} {
		status, raw := postJSON(t, ts.URL+"/v1/indexes/boom/search", body)
		if status != http.StatusInternalServerError {
			t.Fatalf("%s: status %d: %s", name, status, raw)
		}
		var e struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(raw, &e); err != nil || e.Error == "" {
			t.Fatalf("%s: 500 body %q not a JSON error (%v)", name, raw, err)
		}
	}
	// The daemon survived both panics.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz after panics: status %d", resp.StatusCode)
	}
}

// TestServedConcurrentClients hammers single and batch searches from many
// goroutines; every response must be correct. The CI race job runs this.
func TestServedConcurrentClients(t *testing.T) {
	dir, dense, dna := buildFixtures(t)
	ts := bootServer(t, dir, Options{Workers: 4})
	iters := 30
	if testing.Short() {
		iters = 8
	}

	denseURL := ts.URL + "/v1/indexes/sift-napp/search"
	dnaURL := ts.URL + "/v1/indexes/dna-vptree/search"
	wantDense := make([][]neighborJSON, len(dense.queries))
	for i, q := range dense.queries {
		wantDense[i] = wireNeighbors(dense.idx.Search(q, 10))
	}
	wantDNA := make([][]neighborJSON, len(dna.queries))
	for i, q := range dna.queries {
		wantDNA[i] = wireNeighbors(dna.idx.Search(q, 10))
	}

	var wg sync.WaitGroup
	var failures atomic.Int32
	fail := func(format string, args ...any) {
		failures.Add(1)
		t.Errorf(format, args...)
	}
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < iters && failures.Load() == 0; it++ {
				qi := (g + it) % len(dense.queries)
				switch it % 3 {
				case 0: // dense single
					status, raw := postJSON(t, denseURL, map[string]any{"query": dense.queries[qi]})
					var got singleResponse
					if status != http.StatusOK {
						fail("dense single: status %d: %s", status, raw)
					} else if json.Unmarshal(raw, &got); !reflect.DeepEqual(got.Results, wantDense[qi]) {
						fail("dense single query %d: wrong results", qi)
					}
				case 1: // dense batch (whole query set)
					enc := make([]any, len(dense.queries))
					for i, q := range dense.queries {
						enc[i] = dense.encode(q)
					}
					status, raw := postJSON(t, denseURL, map[string]any{"queries": enc})
					var got batchResponse
					if status != http.StatusOK {
						fail("dense batch: status %d: %s", status, raw)
					} else if json.Unmarshal(raw, &got); !reflect.DeepEqual(got.Batch, wantDense) {
						fail("dense batch: wrong results")
					}
				case 2: // dna single
					status, raw := postJSON(t, dnaURL, map[string]any{"query": dna.encode(dna.queries[qi])})
					var got singleResponse
					if status != http.StatusOK {
						fail("dna single: status %d: %s", status, raw)
					} else if json.Unmarshal(raw, &got); !reflect.DeepEqual(got.Results, wantDNA[qi]) {
						fail("dna single query %d: wrong results", qi)
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestHotReloadUnderLoad is the hot-swap race test: one goroutine flips the
// served file between two different index generations and reloads in a
// loop, while client goroutines hammer searches. Every response must be a
// 200 carrying exactly generation A's or generation B's answer — a torn
// read (a mix) or a dropped request fails, and the CI race job watches the
// swap itself.
func TestHotReloadUnderLoad(t *testing.T) {
	dir := t.TempDir()
	db := dataset.DNA(e2eSeed, 120, dataset.DNAOptions{})
	sp := space.NormalizedLevenshtein{}
	vtA, err := vptree.New[[]byte](sp, db, vptree.Options{Seed: e2eSeed})
	if err != nil {
		t.Fatal(err)
	}
	// Generation B: a different index kind over the same corpus, so the
	// two generations give recognizably different answers.
	bfB, err := core.NewBruteForceFilter[[]byte](sp, db, core.BruteForceOptions{NumPivots: 16, Seed: e2eSeed})
	if err != nil {
		t.Fatal(err)
	}

	writeFixture[[]byte](t, dir, "dna", vtA, Manifest{Dataset: "dna", Seed: e2eSeed, N: 120})
	ts := bootServer(t, dir, Options{Workers: 2})
	searchURL := ts.URL + "/v1/indexes/dna/search"
	reloadURL := ts.URL + "/v1/indexes/dna/reload"
	path := filepath.Join(dir, "dna"+persist.Ext)

	query := dataset.DNA(e2eSeed+1, 1, dataset.DNAOptions{})[0]
	wantA := wireNeighbors(vtA.Search(query, 5))
	wantB := wireNeighbors(bfB.Search(query, 5))

	reloads := 40
	if testing.Short() {
		reloads = 10
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // the swapper
		defer wg.Done()
		defer close(done)
		for i := 0; i < reloads; i++ {
			idx := index.Index[[]byte](vtA)
			if i%2 == 0 {
				idx = bfB
			}
			if err := persist.SaveFile(path, idx); err != nil {
				t.Errorf("swap %d: %v", i, err)
				return
			}
			if status, raw := postJSON(t, reloadURL, nil); status != http.StatusOK {
				t.Errorf("reload %d: status %d: %s", i, status, raw)
				return
			}
		}
	}()
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() { // the clients
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				status, raw := postJSON(t, searchURL, map[string]any{"query": string(query), "k": 5})
				if status != http.StatusOK {
					t.Errorf("search during reload: status %d: %s", status, raw)
					return
				}
				var got singleResponse
				if err := json.Unmarshal(raw, &got); err != nil {
					t.Errorf("search during reload: %v", err)
					return
				}
				if !reflect.DeepEqual(got.Results, wantA) && !reflect.DeepEqual(got.Results, wantB) {
					t.Errorf("torn read: results %v match neither generation\nA %v\nB %v", got.Results, wantA, wantB)
					return
				}
			}
		}()
	}
	wg.Wait()

	// After the dust settles the server serves exactly the last generation.
	status, raw := postJSON(t, searchURL, map[string]any{"query": string(query), "k": 5})
	if status != http.StatusOK {
		t.Fatalf("post-reload search: status %d", status)
	}
	var got singleResponse
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	wantLast := wantA
	if (reloads-1)%2 == 0 {
		wantLast = wantB
	}
	if !reflect.DeepEqual(got.Results, wantLast) {
		t.Fatalf("final generation: served %v, want %v", got.Results, wantLast)
	}
}

// TestReloadFailureKeepsServing: a reload pointed at a corrupt file answers
// 500 and the previous generation keeps answering correctly.
func TestReloadFailureKeepsServing(t *testing.T) {
	dir, dense, _ := buildFixtures(t)
	ts := bootServer(t, dir, Options{})
	path := filepath.Join(dir, "sift-napp"+persist.Ext)
	if err := os.WriteFile(path, []byte("definitely not an index"), 0o644); err != nil {
		t.Fatal(err)
	}
	if status, raw := postJSON(t, ts.URL+"/v1/indexes/sift-napp/reload", nil); status != http.StatusInternalServerError {
		t.Fatalf("reload of corrupt file: status %d: %s", status, raw)
	}
	q := dense.queries[0]
	status, raw := postJSON(t, ts.URL+"/v1/indexes/sift-napp/search", map[string]any{"query": q})
	if status != http.StatusOK {
		t.Fatalf("search after failed reload: status %d", status)
	}
	var got singleResponse
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	if want := wireNeighbors(dense.idx.Search(q, 10)); !reflect.DeepEqual(got.Results, want) {
		t.Fatal("old generation no longer answers correctly after failed reload")
	}
}

// TestStatusz: counters move and the shape is stable.
func TestStatusz(t *testing.T) {
	dir, dense, _ := buildFixtures(t)
	ts := bootServer(t, dir, Options{})
	url := ts.URL + "/v1/indexes/sift-napp/search"
	postJSON(t, url, map[string]any{"query": dense.encode(dense.queries[0])})
	enc := []any{dense.encode(dense.queries[0]), dense.encode(dense.queries[1])}
	postJSON(t, url, map[string]any{"queries": enc})
	postJSON(t, url, map[string]any{"k": 1}) // 400: counted as request + failure

	resp, err := http.Get(ts.URL + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var status struct {
		UptimeS float64       `json:"uptime_s"`
		Runtime runtimeStatus `json:"runtime"`
		Indexes []indexStatus `json:"indexes"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	// The runtime section must carry live Go memory/GC observables — the
	// serving-side view of the allocation-free hot path.
	if status.Runtime.Goroutines <= 0 {
		t.Fatalf("runtime.goroutines = %d", status.Runtime.Goroutines)
	}
	if status.Runtime.HeapAllocBytes == 0 || status.Runtime.Mallocs == 0 {
		t.Fatalf("runtime memory counters empty: %+v", status.Runtime)
	}
	var row *indexStatus
	for i := range status.Indexes {
		if status.Indexes[i].Name == "sift-napp" {
			row = &status.Indexes[i]
		}
	}
	if row == nil {
		t.Fatalf("no sift-napp row in %+v", status.Indexes)
	}
	if row.Requests != 3 || row.Queries != 3 || row.Failures != 1 {
		t.Fatalf("counters = %+v, want requests=3 queries=3 failures=1", *row)
	}
	if status.UptimeS <= 0 {
		t.Fatalf("uptime_s = %g", status.UptimeS)
	}
}

// TestOpenDirRejectsBrokenSets: missing sidecars, corrupt files and empty
// directories refuse to serve rather than half-serving.
func TestOpenDirRejectsBrokenSets(t *testing.T) {
	if _, err := OpenDir(t.TempDir()); err == nil {
		t.Error("empty dir accepted")
	}

	dir := t.TempDir()
	db := dataset.SIFT(e2eSeed, 50)
	bf, err := core.NewBruteForceFilter[[]float32](space.L2{}, db, core.BruteForceOptions{NumPivots: 8, Seed: e2eSeed})
	if err != nil {
		t.Fatal(err)
	}
	if err := persist.SaveFile(filepath.Join(dir, "orphan"+persist.Ext), bf); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDir(dir); err == nil {
		t.Error("index without sidecar manifest accepted")
	}

	// Wrong manifest n: the loader must reject rather than serve an index
	// whose ids point into a different corpus.
	man, _ := json.Marshal(Manifest{Dataset: "sift", Seed: e2eSeed, N: 49})
	if err := os.WriteFile(filepath.Join(dir, "orphan.json"), man, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDir(dir); err == nil {
		t.Error("manifest with mismatched n accepted")
	}
	if err := os.WriteFile(filepath.Join(dir, "orphan.json"), []byte(fmt.Sprintf(`{"dataset":"sift","seed":%d,"n":50}`, e2eSeed)), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDir(dir); err != nil {
		t.Errorf("valid set rejected: %v", err)
	}
}
