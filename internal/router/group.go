package router

import (
	"context"
	"log"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// group is one shard's replica set: every member serves the identical shard
// content (same partitioner subset, byte-identical answers), so the group
// is free to spread load round-robin, hedge a laggard's request against a
// *different* replica, and fail over on error — a single host loss inside a
// group is invisible to the client, not a "partial": true answer.
type group struct {
	shard    int
	replicas []*replica
	rr       atomic.Uint64 // round-robin cursor for load spreading
	// ejectAfter is the consecutive-infrastructure-failure threshold past
	// which a replica leaves the regular rotation; the router's background
	// prober re-admits it once /healthz answers again.
	ejectAfter int32
	log        *log.Logger
	// mLatency / mFailovers are the shard-level /metrics handles
	// (permrouter_shard_*), nil outside a Router.
	mLatency   *obs.Histogram
	mFailovers *obs.Counter
}

// candidates returns the group's replicas in attempt order: the healthy
// ones first, rotated by the round-robin cursor so steady-state load
// spreads evenly, then the ejected ones as a last resort — a group whose
// every replica is ejected still tries rather than failing outright (the
// probe loop may simply not have re-admitted a recovered host yet).
func (g *group) candidates() []*replica {
	n := len(g.replicas)
	start := int(g.rr.Add(1)-1) % n
	ordered := make([]*replica, 0, n)
	var ejected []*replica
	for i := 0; i < n; i++ {
		r := g.replicas[(start+i)%n]
		if r.ejected.Load() {
			ejected = append(ejected, r)
		} else {
			ordered = append(ordered, r)
		}
	}
	return append(ordered, ejected...)
}

// search answers one scatter leg for this shard: try replicas in candidate
// order, failing over immediately on an infrastructure error and hedging a
// speculative attempt against the *next* replica when the current one has
// not answered within hedgeDelay (with one replica, the hedge degenerates
// to the duplicate-to-self insurance of the unreplicated router). The first
// success wins; a 4xx verdict returns immediately (a malformed request is
// malformed on every replica); the shard as a whole fails only when every
// attempt is exhausted.
func (g *group) search(ctx context.Context, name string, body []byte, hedgeDelay time.Duration) (*shardPayload, error) {
	legStart := time.Now()
	cands := g.candidates()
	// At most one attempt per distinct replica, plus one speculative
	// duplicate when hedging is on (so a single-replica group retries once
	// and a multi-replica group can wrap to a second attempt on the
	// round-robin start).
	maxAttempts := len(cands)
	if hedgeDelay > 0 {
		maxAttempts++
	}
	type outcome struct {
		r   *replica
		p   *shardPayload
		err error
	}
	ch := make(chan outcome, maxAttempts)
	attempts := 0
	launch := func(speculative bool) {
		r := cands[attempts%len(cands)]
		attempts++
		if speculative {
			r.hedges.Add(1)
			if r.m != nil {
				r.m.hedges.Inc()
			}
		}
		go func() {
			p, err := r.search(ctx, name, body)
			ch <- outcome{r, p, err}
		}()
	}
	launch(false)

	var hedgeC <-chan time.Time
	if hedgeDelay > 0 {
		t := time.NewTimer(hedgeDelay)
		defer t.Stop()
		hedgeC = t.C
	}
	pending := 1
	var firstErr error
	for {
		select {
		case o := <-ch:
			pending--
			if o.err == nil {
				g.noteSuccess(o.r)
				// Shard latency is the whole leg — candidate ordering,
				// failovers and hedges included — because that is what the
				// gather barrier actually waits on.
				if g.mLatency != nil {
					g.mLatency.Since(legStart)
				}
				return o.p, nil
			}
			if _, client := o.err.(*clientError); client {
				// The replica judged the request malformed; a failover
				// cannot change that verdict.
				return nil, o.err
			}
			g.noteFailure(o.r)
			if firstErr == nil {
				firstErr = o.err
			}
			// An infrastructure failure fails over immediately (no point
			// waiting out the hedge timer against a dead socket).
			if attempts < maxAttempts {
				hedgeC = nil
				if g.mFailovers != nil {
					g.mFailovers.Inc()
				}
				launch(false)
				pending++
				continue
			}
			if pending == 0 {
				return nil, firstErr
			}
		case <-hedgeC:
			hedgeC = nil
			if attempts < maxAttempts {
				launch(true)
				pending++
			}
		case <-ctx.Done():
			return nil, &shardFailure{shard: g.shard, msg: ctx.Err().Error()}
		}
	}
}

// noteSuccess resets the replica's failure streak; a success from an
// ejected replica (a last-resort attempt that worked) re-admits it without
// waiting for the prober.
func (g *group) noteSuccess(r *replica) {
	r.consecFails.Store(0)
	if r.noteReadmitted() {
		g.log.Printf("router: shard %d replica %d (%s) re-admitted (answered a last-resort attempt)", r.shard, r.id, r.base)
	}
}

// noteFailure bumps the replica's failure streak and ejects it at the
// threshold.
func (g *group) noteFailure(r *replica) {
	if r.consecFails.Add(1) >= g.ejectAfter && r.noteEjected() {
		g.log.Printf("router: shard %d replica %d (%s) ejected after %d consecutive failures; probing for re-admission", r.shard, r.id, r.base, g.ejectAfter)
	}
}

// live reports whether at least one replica is in the regular rotation.
func (g *group) live() bool {
	for _, r := range g.replicas {
		if !r.ejected.Load() {
			return true
		}
	}
	return false
}
