package indextest

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/permutation"
	"repro/internal/persist"
	"repro/internal/space"
)

// TestRoundtrip_Dense asserts, for every index kind, that Save→Load yields
// an index whose searches (and re-serialized bytes, and Stats) are
// identical to the original's, over dense vectors under L2.
func TestRoundtrip_Dense(t *testing.T) {
	db, queries := denseCorpus()
	sp := space.L2{}
	queries = append(queries, db[0])
	for _, kc := range denseKinds(sp, db) {
		t.Run(kc.kind, func(t *testing.T) {
			Roundtrip(t, space.Space[[]float32](sp), db, queries, kc.build)
		})
	}
}

// TestRoundtrip_DNA repeats the persistence property over byte strings.
func TestRoundtrip_DNA(t *testing.T) {
	if testing.Short() {
		t.Skip("levenshtein roundtrip is the slow half of the suite")
	}
	db, queries := dnaCorpus()
	sp := space.NormalizedLevenshtein{}
	for _, kc := range genericKinds[[]byte](sp, db) {
		t.Run(kc.kind, func(t *testing.T) {
			Roundtrip(t, space.Space[[]byte](sp), db, queries, kc.build)
		})
	}
}

// TestRoundtrip_Histogram repeats the persistence property under the
// asymmetric KL-divergence.
func TestRoundtrip_Histogram(t *testing.T) {
	db, queries := histoCorpus()
	sp := space.KLDivergence{}
	for _, kc := range genericKinds[space.Histogram](sp, db) {
		t.Run(kc.kind, func(t *testing.T) {
			Roundtrip(t, space.Space[space.Histogram](sp), db, queries, kc.build)
		})
	}
}

// TestRoundtrip_RejectsCorrupt asserts truncated and bit-flipped blobs are
// rejected with errors (never panics) for a representative structured kind.
func TestRoundtrip_RejectsCorrupt(t *testing.T) {
	db, _ := denseCorpus()
	sp := space.L2{}
	for _, kc := range denseKinds(sp, db) {
		t.Run(kc.kind, func(t *testing.T) {
			RoundtripRejectsCorrupt(t, space.Space[[]float32](sp), db, kc.build)
		})
	}
}

// TestLoad_WrongContext asserts the header checks catch the three ways a
// valid file can be paired with the wrong runtime state: different space,
// different data-set size, and a kind/type mismatch for the dense-only LSH.
func TestLoad_WrongContext(t *testing.T) {
	db, _ := denseCorpus()
	kinds := denseKinds(space.L2{}, db)
	var blob bytes.Buffer
	idx, err := kinds[0].build() // brute-force-filt
	if err != nil {
		t.Fatal(err)
	}
	if err := persist.Save(&blob, idx); err != nil {
		t.Fatal(err)
	}
	if _, err := persist.Load(bytes.NewReader(blob.Bytes()), space.L1{}, db); err == nil {
		t.Error("Load accepted an L2-built index under L1")
	}
	if _, err := persist.Load(bytes.NewReader(blob.Bytes()), space.L2{}, db[:len(db)-1]); err == nil {
		t.Error("Load accepted a data set one point shorter than recorded")
	}

	// An MPLSH file loaded under a non-dense object type must fail with a
	// type error, not a panic.
	var lshBlob bytes.Buffer
	lshIdx, err := kinds[len(kinds)-1].build() // mplsh
	if err != nil {
		t.Fatal(err)
	}
	if err := persist.Save(&lshBlob, lshIdx); err != nil {
		t.Fatal(err)
	}
	strings := make([][]byte, len(db))
	for i := range strings {
		strings[i] = []byte{byte(i)}
	}
	if _, err := persist.Load(bytes.NewReader(lshBlob.Bytes()), space.NormalizedLevenshtein{}, strings); err == nil {
		t.Error("Load reconstructed an mplsh index over byte strings")
	}
	// Same object type, wrong metric: must also be rejected (mplsh would
	// otherwise report L2 distances under an L1 caller).
	if _, err := persist.Load(bytes.NewReader(lshBlob.Bytes()), space.L1{}, db); err == nil {
		t.Error("Load reconstructed an L2-only mplsh index under L1")
	}
}

// TestSave_ExplicitPivotsNotPersistable pins down the documented
// limitation: indexes over caller-supplied pivot objects have no data ids
// to reference and must refuse to serialize (rather than write a file that
// could never be loaded).
func TestSave_ExplicitPivotsNotPersistable(t *testing.T) {
	db, _ := denseCorpus()
	sp := space.L2{}
	pivots := [][]float32{db[0], db[1], db[2], db[3]}
	pv, err := permutation.NewPivots[[]float32](sp, pivots)
	if err != nil {
		t.Fatal(err)
	}
	na, err := core.NewNAPPWithPivots[[]float32](sp, db, pv, core.NAPPOptions{MinShared: 1})
	if err != nil {
		t.Fatal(err)
	}
	var blob bytes.Buffer
	if err := persist.Save[[]float32](&blob, na); !errors.Is(err, codec.ErrNotPersistable) {
		t.Errorf("Save of an explicit-pivot index: got %v, want ErrNotPersistable", err)
	}
}

// TestKindMatrixCoversRegistry fails when a new kind enters the registry
// without joining this suite's build matrix, keeping "every registered
// index kind passes conformance and roundtrip" true by construction.
func TestKindMatrixCoversRegistry(t *testing.T) {
	db, _ := denseCorpus()
	covered := map[string]bool{"napp-dynamic": true} // suite-only alias of "napp"
	for _, kc := range denseKinds(space.L2{}, db) {
		covered[kc.kind] = true
	}
	for _, kind := range codec.Kinds() {
		if !covered[kind] {
			t.Errorf("registry kind %q has no conformance/roundtrip coverage in this package", kind)
		}
	}
	// distvec-filt is the one suite member outside the paper's method
	// name space; every other matrix entry must be a registry kind.
	for kind := range covered {
		if kind == "napp-dynamic" {
			continue
		}
		found := false
		for _, k := range codec.Kinds() {
			if k == kind {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("suite kind %q is not in the codec registry", kind)
		}
	}
}
