package obs

import (
	"math"
	"strings"
	"testing"
)

// TestExpositionRoundTrip: whatever WriteText emits, ParseText must accept,
// with values, types, labels, and histogram invariants intact.
func TestExpositionRoundTrip(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("rt_requests_total", "requests served", "index")
	c.With("sift-napp").Add(41)
	c.With(`we"ird\label` + "\n").Inc()
	reg.Gauge("rt_up", "uptime gauge").With().Set(3)
	reg.GaugeFunc("rt_goroutines", "live goroutines", func() float64 { return 12.5 })
	h := reg.Histogram("rt_latency_seconds", "query latency", 1e-9, "index")
	hist := h.With("sift-napp")
	for _, v := range []int64{100, 1000, 1000, 1 << 30} {
		hist.Record(v)
	}

	var sb strings.Builder
	if err := reg.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	page := sb.String()
	tm, err := ParseText(strings.NewReader(page))
	if err != nil {
		t.Fatalf("ParseText rejected our own exposition: %v\n%s", err, page)
	}

	if tm.Types["rt_requests_total"] != "counter" || tm.Types["rt_latency_seconds"] != "histogram" || tm.Types["rt_up"] != "gauge" {
		t.Fatalf("types = %v", tm.Types)
	}
	var found, weird, inf, count, sum bool
	for i := range tm.Samples {
		s := &tm.Samples[i]
		switch {
		case s.Name == "rt_requests_total" && s.Label("index") == "sift-napp":
			found = true
			if s.Value != 41 {
				t.Fatalf("counter value = %v", s.Value)
			}
		case s.Name == "rt_requests_total" && s.Label("index") == `we"ird\label`+"\n":
			weird = true
			if s.Value != 1 {
				t.Fatalf("escaped-label counter value = %v", s.Value)
			}
		case s.Name == "rt_latency_seconds_bucket" && s.Label("le") == "+Inf":
			inf = true
			if s.Value != 4 {
				t.Fatalf("+Inf bucket = %v", s.Value)
			}
		case s.Name == "rt_latency_seconds_count":
			count = true
			if s.Value != 4 {
				t.Fatalf("_count = %v", s.Value)
			}
		case s.Name == "rt_latency_seconds_sum":
			sum = true
			want := float64(100+1000+1000+1<<30) * 1e-9
			if math.Abs(s.Value-want) > 1e-12 {
				t.Fatalf("_sum = %v, want %v", s.Value, want)
			}
		}
	}
	if !found || !weird || !inf || !count || !sum {
		t.Fatalf("missing samples (found=%v weird=%v inf=%v count=%v sum=%v):\n%s", found, weird, inf, count, sum, page)
	}

	// Quantile over the parsed page: the p50 of {100ns,1us,1us,1s+} must
	// land within bucket resolution of 1us (in seconds).
	q50, n, ok := tm.Quantile("rt_latency_seconds", map[string]string{"index": "sift-napp"}, 0.5)
	if !ok || n != 4 {
		t.Fatalf("Quantile ok=%v n=%d", ok, n)
	}
	if q50 < 1000e-9 || q50 > 1100e-9 {
		t.Fatalf("parsed p50 = %v, want ~1e-6", q50)
	}
}

// TestParseTextErrors: the parser is strict — malformed lines are errors,
// not skips.
func TestParseTextErrors(t *testing.T) {
	bad := []string{
		"metric{label=\"v\" 1",             // unterminated label block
		"metric{label=v} 1",                // unquoted value
		"metric 1 2 3",                     // trailing fields
		"metric",                           // no value
		"{label=\"v\"} 1",                  // no name
		"metric{l=\"a\",l=\"b\"} 1",        // duplicate label
		"metric{l=\"\\x\"} 1",              // bad escape
		"# TYPE metric wat",                // unknown type
		"# TYPE metric",                    // malformed TYPE
		"metric notanumber",                // bad value
		"# TYPE m counter\n# TYPE m gauge", // conflicting TYPE
	}
	for _, page := range bad {
		if _, err := ParseText(strings.NewReader(page)); err == nil {
			t.Errorf("ParseText accepted %q", page)
		}
	}
	good := []string{
		"# just a comment\nm_total 1",
		"m{a=\"1\",b=\"2\"} 0.5",
		"m +Inf\nm2 NaN\nm3 -Inf",
		"m{} 1",
		"",
	}
	for _, page := range good {
		if _, err := ParseText(strings.NewReader(page)); err != nil {
			t.Errorf("ParseText rejected %q: %v", page, err)
		}
	}
}
