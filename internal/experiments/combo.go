package experiments

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/eval"
	"repro/internal/index"
	"repro/internal/permutation"
	"repro/internal/persist"
	"repro/internal/router"
	"repro/internal/seqscan"
	"repro/internal/shard"
	"repro/internal/space"
	"repro/internal/topk"
	"repro/internal/vecmath"
)

// indexFileName is the file layout of the -save-index / -load-index
// directories. Everything that determines the fold's db split — seed, N,
// query count, fold count — is part of the key: the codec header only
// records the data-set *size*, so without these a warm start from a run
// with, say, a different seed would silently resolve pivot ids against the
// wrong objects.
func indexFileName(cfg Config, dataset, method string, fold int) string {
	return fmt.Sprintf("%s-%s-n%d-q%d-f%d-seed%d-fold%d.psix",
		dataset, method, cfg.N, cfg.Queries, cfg.Folds, cfg.Seed, fold)
}

// variant is one query-time parameter setting of a built index.
type variant[T any] struct {
	label string
	apply func(idx index.Index[T]) error
}

// paramVariant is a variant whose label is a ParseParams-syntax string
// ("gamma=0.05", "att=2,ef=20") applied through the shared ApplyParams
// path — the same code the serving daemon runs for per-request params, so
// the sweeps keep it covered.
func paramVariant[T any](label string) variant[T] {
	return variant[T]{label: label, apply: func(idx index.Index[T]) error {
		p, err := ParseParams(label)
		if err != nil {
			return err
		}
		_, err = ApplyParams(idx, p)
		return err
	}}
}

// sweep is one method of a Figure 4 panel: a single build plus a list of
// query-time variants tracing out its recall/efficiency curve.
type sweep[T any] struct {
	method   string
	build    func(sp space.Space[T], db []T) (index.Index[T], error)
	variants []variant[T]
	// table2 marks the method for inclusion in Table 2.
	table2 bool
}

// combo is the generic Runner implementation for one data set / distance.
type combo[T any] struct {
	name     string
	distName string
	dims     string
	sp       space.Space[T]
	gen      func(seed int64, n int) []T
	bytesOf  func(T) int64
	sweeps   func(cfg Config, n int) []sweep[T]
	// randProj returns a random-projection function into dim dimensions
	// and whether the projected space uses cosine distance (Wiki-sparse)
	// instead of L2; nil when the paper has no rand-proj panel for this
	// data set.
	randProj func(seed int64, dim int) func(T) []float32
	randCos  bool
}

// Name implements Runner.
func (c *combo[T]) Name() string { return c.name }

// Distance implements Runner.
func (c *combo[T]) Distance() string { return c.distName }

// Dims implements Runner.
func (c *combo[T]) Dims() string { return c.dims }

// Table1 implements Runner: name, distance, #rec, brute-force 10-NN time,
// in-memory size, dims.
func (c *combo[T]) Table1(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	data := c.gen(cfg.Seed, cfg.N)
	db, queries := data[:len(data)-cfg.Queries], data[len(data)-cfg.Queries:]
	bruteTime, _ := eval.BruteTime(c.sp, db, queries, cfg.K)
	var bytes int64
	for _, x := range data {
		bytes += c.bytesOf(x)
	}
	return tsv(w, c.name, c.distName, cfg.N, bruteTime,
		fmt.Sprintf("%.1fMB", float64(bytes)/(1<<20)), c.dims)
}

// Table2 implements Runner: per-method index size and creation time.
func (c *combo[T]) Table2(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	data := c.gen(cfg.Seed, cfg.N)
	for _, s := range c.sweeps(cfg, len(data)) {
		if !s.table2 {
			continue
		}
		idx, buildTime, err := eval.MeasureBuild(func() (index.Index[T], error) {
			return s.build(c.sp, data)
		})
		if err != nil {
			return fmt.Errorf("%s/%s: %w", c.name, s.method, err)
		}
		var bytes int64
		if sized, ok := idx.(index.Sized); ok {
			bytes = sized.Stats().Bytes
		}
		if err := tsv(w, c.name, s.method,
			fmt.Sprintf("%.1fMB", float64(bytes)/(1<<20)),
			fmt.Sprintf("%.1fs", buildTime.Seconds())); err != nil {
			return err
		}
	}
	return nil
}

// Figure2 implements Runner: sample pairs from two strata (random pairs and
// 100-NN pairs) and write original vs projected distances, for the
// permutation projection and, where the paper has a panel, the classic
// random projection.
func (c *combo[T]) Figure2(cfg Config, projDim, pairs int, w io.Writer) error {
	cfg = cfg.withDefaults()
	if projDim <= 0 {
		projDim = 64
	}
	if pairs <= 0 {
		pairs = 250
	}
	data := c.gen(cfg.Seed, cfg.N)
	r := rand.New(rand.NewSource(cfg.Seed + 1))

	type pair struct {
		stratum string
		i, j    int
	}
	var ps []pair
	for len(ps) < pairs {
		i, j := r.Intn(len(data)), r.Intn(len(data))
		if i != j {
			ps = append(ps, pair{"random", i, j})
		}
	}
	// Near-neighbor stratum: a point paired with one of its 100 NNs.
	scan := seqscan.New(c.sp, data)
	kNN := 100
	if kNN >= len(data) {
		kNN = len(data) - 1
	}
	for n := 0; n < pairs; n++ {
		i := r.Intn(len(data))
		nn := scan.Search(data[i], kNN+1) // includes self
		var choices []uint32
		for _, x := range nn {
			if int(x.ID) != i {
				choices = append(choices, x.ID)
			}
		}
		if len(choices) == 0 {
			continue
		}
		ps = append(ps, pair{"nn", i, int(choices[r.Intn(len(choices))])})
	}

	// Permutation projection: sqrt(Spearman rho) = L2 over rank vectors.
	m := projDim
	if m > len(data) {
		m = len(data)
	}
	pv, err := permutation.Sample(r, c.sp, data, m)
	if err != nil {
		return err
	}
	permCache := map[int][]int32{}
	permOf := func(i int) []int32 {
		if p, ok := permCache[i]; ok {
			return p
		}
		p := pv.Permutation(data[i], nil)
		permCache[i] = p
		return p
	}
	rho := permutation.RhoMetric{}
	for _, p := range ps {
		orig := c.sp.Distance(data[p.i], data[p.j])
		proj := rho.Distance(permOf(p.i), permOf(p.j))
		if err := tsv(w, c.name, "perm", p.stratum, orig, proj); err != nil {
			return err
		}
	}

	if c.randProj == nil {
		return nil
	}
	project := c.randProj(cfg.Seed+2, projDim)
	projCache := map[int][]float32{}
	vecOf := func(i int) []float32 {
		if v, ok := projCache[i]; ok {
			return v
		}
		v := project(data[i])
		projCache[i] = v
		return v
	}
	for _, p := range ps {
		orig := c.sp.Distance(data[p.i], data[p.j])
		var proj float64
		if c.randCos {
			proj = cosineDistDense(vecOf(p.i), vecOf(p.j))
		} else {
			proj = vecmath.L2(vecOf(p.i), vecOf(p.j))
		}
		if err := tsv(w, c.name, "rand", p.stratum, orig, proj); err != nil {
			return err
		}
	}
	return nil
}

// Figure3 implements Runner: for each projection dimensionality, the
// average fraction of the data set that must be scanned (in projected-space
// order) to reach each recall level for k-NN.
func (c *combo[T]) Figure3(cfg Config, dims []int, w io.Writer) error {
	cfg = cfg.withDefaults()
	if len(dims) == 0 {
		dims = []int{16, 64, 256, 1024}
	}
	data := c.gen(cfg.Seed, cfg.N)
	db, queries := data[:len(data)-cfg.Queries], data[len(data)-cfg.Queries:]
	truth := eval.GroundTruth(c.sp, db, queries, cfg.K)

	emit := func(kind string, dim int, fractions [][]float64) error {
		// fractions[q][j] = fraction needed for recall (j+1)/K on
		// query q; average per recall level.
		for j := 0; j < cfg.K; j++ {
			var sum float64
			var n int
			for q := range fractions {
				if j < len(fractions[q]) {
					sum += fractions[q][j]
					n++
				}
			}
			if n == 0 {
				continue
			}
			recall := float64(j+1) / float64(cfg.K)
			if err := tsv(w, c.name, kind, dim, recall, sum/float64(n)); err != nil {
				return err
			}
		}
		return nil
	}

	for _, dim := range dims {
		m := dim
		if m > len(db) {
			m = len(db)
		}
		bf, err := core.NewBruteForceFilter(c.sp, db, core.BruteForceOptions{
			NumPivots: m, Gamma: 1, Seed: cfg.Seed + int64(dim),
		})
		if err != nil {
			return err
		}
		fractions := make([][]float64, len(queries))
		for qi, q := range queries {
			fractions[qi] = fractionCurve(bf.RankAll(q), truth[qi], len(db))
		}
		if err := emit("perm", dim, fractions); err != nil {
			return err
		}
	}

	if c.randProj == nil {
		return nil
	}
	for _, dim := range dims {
		project := c.randProj(cfg.Seed+3, dim)
		pdb := make([][]float32, len(db))
		for i, x := range db {
			pdb[i] = project(x)
		}
		fractions := make([][]float64, len(queries))
		for qi, q := range queries {
			pq := project(q)
			rank := make([]topk.Neighbor, len(pdb))
			for i, v := range pdb {
				var d float64
				if c.randCos {
					d = cosineDistDense(v, pq)
				} else {
					d = vecmath.L2Sqr(v, pq)
				}
				rank[i] = topk.Neighbor{ID: uint32(i), Dist: d}
			}
			topk.ByDist(rank)
			fractions[qi] = fractionCurve(rank, truth[qi], len(db))
		}
		if err := emit("rand", dim, fractions); err != nil {
			return err
		}
	}
	return nil
}

// fractionCurve returns, for j = 1..k, the fraction of the data set that
// must be scanned in `rank` order to encounter j of the true neighbors.
func fractionCurve(rank []topk.Neighbor, truth []topk.Neighbor, n int) []float64 {
	want := make(map[uint32]struct{}, len(truth))
	for _, t := range truth {
		want[t.ID] = struct{}{}
	}
	var positions []int
	for pos, cand := range rank {
		if _, ok := want[cand.ID]; ok {
			positions = append(positions, pos)
			if len(positions) == len(want) {
				break
			}
		}
	}
	sort.Ints(positions)
	out := make([]float64, len(positions))
	for j, pos := range positions {
		out[j] = float64(pos+1) / float64(n)
	}
	return out
}

// Figure4 implements Runner: the efficiency/recall sweep across methods,
// averaged over cfg.Folds random splits.
func (c *combo[T]) Figure4(cfg Config, w io.Writer) error {
	return c.RunMethods(cfg, nil, w)
}

// Methods implements Runner.
func (c *combo[T]) Methods(cfg Config) []string {
	cfg = cfg.withDefaults()
	var out []string
	for _, s := range c.sweeps(cfg, cfg.N) {
		out = append(out, s.method)
	}
	return out
}

// shardedBuild partitions db, builds one index per shard with build, and
// wraps them in a router.Local — the in-process mirror of the
// permserve/permrouter serving topology. The Local's scatter pool follows
// cfg.Workers like every other parallel path.
func shardedBuild[T any](cfg Config, sp space.Space[T], db []T,
	build func(space.Space[T], []T) (index.Index[T], error)) (*router.Local[T], []index.Index[T], error) {
	p := shard.Hash
	if cfg.ShardBy != "" {
		var err error
		if p, err = shard.ParsePartitioner(cfg.ShardBy); err != nil {
			return nil, nil, err
		}
	}
	ids, err := shard.IDs(p, len(db), cfg.Shards)
	if err != nil {
		return nil, nil, err
	}
	shards := make([]router.LocalShard[T], cfg.Shards)
	idxs := make([]index.Index[T], cfg.Shards)
	for s := range ids {
		idx, err := build(sp, shard.Subset(db, ids[s]))
		if err != nil {
			return nil, nil, fmt.Errorf("shard %d/%d: %w", s, cfg.Shards, err)
		}
		shards[s] = router.LocalShard[T]{Index: idx, IDs: ids[s]}
		idxs[s] = idx
	}
	loc, err := router.NewLocal(shards, engine.NewPool(cfg.Workers))
	return loc, idxs, err
}

// RunMethods implements Runner: like Figure4 but restricted to the named
// methods (nil means all).
func (c *combo[T]) RunMethods(cfg Config, methods []string, w io.Writer) error {
	cfg = cfg.withDefaults()
	if cfg.Shards > 1 && (cfg.SaveIndexDir != "" || cfg.LoadIndexDir != "") {
		return fmt.Errorf("sharded evaluation (-shards %d) does not support -save-index/-load-index; shard indexes are built per run", cfg.Shards)
	}
	wanted := func(m string) bool {
		if len(methods) == 0 {
			return true
		}
		for _, x := range methods {
			if x == m {
				return true
			}
		}
		return false
	}
	data := c.gen(cfg.Seed, cfg.N)
	r := rand.New(rand.NewSource(cfg.Seed + 4))
	splits, err := eval.Splits(r, len(data), cfg.Queries, cfg.Folds)
	if err != nil {
		return err
	}

	type key struct{ method, label string }
	acc := map[key][]eval.Result{}
	var order []key

	for fold, split := range splits {
		db, queries := eval.Apply(data, split)
		truth := eval.GroundTruth(c.sp, db, queries, cfg.K)
		bruteTime, _ := eval.BruteTime(c.sp, db, queries, cfg.K)
		for _, s := range c.sweeps(cfg, len(db)) {
			if !wanted(s.method) {
				continue
			}
			// Warm start: load the persisted index when a matching file
			// exists, otherwise build (and optionally persist for the
			// next run). The timing column reports whichever happened.
			// Sharded runs build one index per shard behind a
			// scatter-gather Local; build time covers the whole set.
			loaded := false
			var shardIdxs []index.Index[T]
			idx, buildTime, err := eval.MeasureBuild(func() (index.Index[T], error) {
				if cfg.Shards > 1 {
					loc, idxs, err := shardedBuild(cfg, c.sp, db, s.build)
					if err != nil {
						return nil, err
					}
					shardIdxs = idxs
					return index.Index[T](loc), nil
				}
				if cfg.LoadIndexDir != "" {
					path := filepath.Join(cfg.LoadIndexDir, indexFileName(cfg, c.name, s.method, fold))
					switch idx, err := persist.LoadFile(path, c.sp, db); {
					case err == nil:
						loaded = true
						return idx, nil
					case errors.Is(err, os.ErrNotExist),
						errors.Is(err, codec.ErrUnsupportedVersion):
						// Missing file, or one from an older format
						// build: rebuild (and re-save) transparently,
						// per the rebuild-not-migrate policy.
					default:
						return nil, fmt.Errorf("loading %s: %w", path, err)
					}
				}
				return s.build(c.sp, db)
			})
			if err != nil {
				return fmt.Errorf("%s/%s: %w", c.name, s.method, err)
			}
			if cfg.SaveIndexDir != "" && !loaded {
				if err := os.MkdirAll(cfg.SaveIndexDir, 0o755); err != nil {
					return err
				}
				path := filepath.Join(cfg.SaveIndexDir, indexFileName(cfg, c.name, s.method, fold))
				if err := persist.SaveFile(path, idx); err != nil {
					return fmt.Errorf("saving %s: %w", path, err)
				}
			}
			for _, v := range s.variants {
				// Query-time params address concrete index types, which a
				// sharded run applies uniformly to every shard index.
				applyTo := []index.Index[T]{idx}
				if len(shardIdxs) > 0 {
					applyTo = shardIdxs
				}
				for _, target := range applyTo {
					if err := v.apply(target); err != nil {
						return fmt.Errorf("%s/%s %s: %w", c.name, s.method, v.label, err)
					}
				}
				var res eval.Result
				if cfg.Workers == 0 || cfg.Workers == 1 {
					res = eval.Measure(idx, queries, truth, cfg.K, bruteTime, nil)
				} else {
					res = eval.MeasureBatch(idx, queries, truth, cfg.K, bruteTime, nil, cfg.Workers)
				}
				res.Method = s.method
				res.BuildTime = buildTime
				k := key{s.method, v.label}
				if _, seen := acc[k]; !seen {
					order = append(order, k)
				}
				acc[k] = append(acc[k], res)
			}
		}
	}

	for _, k := range order {
		m := eval.MeanResult(acc[k])
		if err := tsv(w, c.name, k.method, k.label, m.Recall, m.Improvement,
			m.QueryTime, m.QPS,
			fmt.Sprintf("%.1fs", m.BuildTime.Seconds()),
			fmt.Sprintf("%.1fMB", float64(m.IndexBytes)/(1<<20))); err != nil {
			return err
		}
	}
	return nil
}

// cosineDistDense is 1 - cos(a, b) over dense vectors.
func cosineDistDense(a, b []float32) float64 {
	na, nb := vecmath.Norm(a), vecmath.Norm(b)
	if na == 0 || nb == 0 {
		return 1
	}
	cos := vecmath.Dot(a, b) / (na * nb)
	if cos > 1 {
		cos = 1
	} else if cos < -1 {
		cos = -1
	}
	return 1 - cos
}

var _ Runner = (*combo[[]float32])(nil)
