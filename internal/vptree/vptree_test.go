package vptree

import (
	"math/rand"
	"testing"

	"repro/internal/index"
	"repro/internal/seqscan"
	"repro/internal/space"
)

var _ index.Index[[]float32] = (*Tree[[]float32])(nil)
var _ index.Sized = (*Tree[[]float32])(nil)

func randData(r *rand.Rand, n, dim int) [][]float32 {
	out := make([][]float32, n)
	for i := range out {
		v := make([]float32, dim)
		for j := range v {
			v[j] = float32(r.NormFloat64())
		}
		out[i] = v
	}
	return out
}

func TestExactOnMetricSpace(t *testing.T) {
	// With alpha=1 and a metric space, the VP-tree must return exactly
	// the same answers as a sequential scan.
	r := rand.New(rand.NewSource(1))
	data := randData(r, 2000, 8)
	tree, err := New[[]float32](space.L2{}, data, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	scan := seqscan.New[[]float32](space.L2{}, data)
	queries := randData(r, 50, 8)
	for qi, q := range queries {
		got := tree.Search(q, 10)
		want := scan.Search(q, 10)
		if len(got) != len(want) {
			t.Fatalf("query %d: %d results, want %d", qi, len(got), len(want))
		}
		for i := range got {
			if got[i].ID != want[i].ID || got[i].Dist != want[i].Dist {
				t.Fatalf("query %d pos %d: got %+v want %+v", qi, i, got[i], want[i])
			}
		}
	}
}

func TestExactOnL1(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	data := randData(r, 800, 4)
	tree, err := New[[]float32](space.L1{}, data, Options{Seed: 3, BucketSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	scan := seqscan.New[[]float32](space.L1{}, data)
	for i := 0; i < 25; i++ {
		q := randData(r, 1, 4)[0]
		got, want := tree.Search(q, 5), scan.Search(q, 5)
		for j := range want {
			if got[j].ID != want[j].ID {
				t.Fatalf("mismatch at %d: %+v vs %+v", j, got[j], want[j])
			}
		}
	}
}

func TestAllPointsReachable(t *testing.T) {
	// k = n must return every point exactly once, regardless of space.
	r := rand.New(rand.NewSource(3))
	data := randData(r, 500, 4)
	tree, err := New[[]float32](space.L2{}, data, Options{Seed: 1, BucketSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	res := tree.Search(data[0], len(data))
	if len(res) != len(data) {
		t.Fatalf("got %d results, want %d", len(res), len(data))
	}
	seen := map[uint32]bool{}
	for _, n := range res {
		if seen[n.ID] {
			t.Fatalf("duplicate id %d", n.ID)
		}
		seen[n.ID] = true
	}
}

func TestDuplicatePointsNoInfiniteRecursion(t *testing.T) {
	// 1000 identical points: median radius is 0 and every point falls in
	// the left partition; the degenerate-split path must terminate.
	data := make([][]float32, 1000)
	for i := range data {
		data[i] = []float32{1, 2, 3}
	}
	tree, err := New[[]float32](space.L2{}, data, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	res := tree.Search([]float32{1, 2, 3}, 5)
	if len(res) != 5 {
		t.Fatalf("got %d results", len(res))
	}
	for _, n := range res {
		if n.Dist != 0 {
			t.Fatalf("distance %v to duplicate point", n.Dist)
		}
	}
}

func TestEmptyDataRejected(t *testing.T) {
	if _, err := New[[]float32](space.L2{}, nil, Options{}); err == nil {
		t.Fatal("empty data accepted")
	}
}

func TestZeroK(t *testing.T) {
	tree, err := New[[]float32](space.L2{}, [][]float32{{1}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res := tree.Search([]float32{1}, 0); res != nil {
		t.Fatalf("k=0 returned %v", res)
	}
}

func TestAlphaPrunesMore(t *testing.T) {
	// Larger alpha must compute fewer distances.
	r := rand.New(rand.NewSource(4))
	data := randData(r, 3000, 12)
	counter := space.NewCounter[[]float32](space.L2{})
	tree, err := New[[]float32](counter, data, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	queries := randData(r, 30, 12)

	run := func(alpha float64) int64 {
		tree.SetAlpha(alpha, alpha)
		counter.Reset()
		for _, q := range queries {
			tree.Search(q, 10)
		}
		return counter.Count()
	}
	exact := run(1)
	loose := run(8)
	if loose >= exact {
		t.Fatalf("alpha=8 computed %d distances, alpha=1 computed %d; pruning is not working", loose, exact)
	}
}

func TestVPTreeBeatsSeqScanOnDistances(t *testing.T) {
	// On clustered low-dimensional data, even exact search must evaluate
	// far fewer distances than a full scan.
	r := rand.New(rand.NewSource(6))
	n := 5000
	data := make([][]float32, n)
	for i := range data {
		cx := float64(r.Intn(10) * 100)
		data[i] = []float32{float32(cx + r.NormFloat64()), float32(r.NormFloat64())}
	}
	counter := space.NewCounter[[]float32](space.L2{})
	tree, err := New[[]float32](counter, data, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	counter.Reset()
	const queries = 20
	for i := 0; i < queries; i++ {
		tree.Search(data[r.Intn(n)], 5)
	}
	avg := float64(counter.Count()) / queries
	if avg > float64(n)/2 {
		t.Fatalf("avg %.0f distance computations per query on %d points; pruning ineffective", avg, n)
	}
}

func TestStatsPopulated(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	data := randData(r, 300, 4)
	tree, err := New[[]float32](space.L2{}, data, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	st := tree.Stats()
	if st.Bytes <= 0 || st.BuildDistances <= 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDeterministicBuild(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	data := randData(r, 500, 4)
	q := randData(r, 1, 4)[0]
	t1, _ := New[[]float32](space.L2{}, data, Options{Seed: 42, AlphaLeft: 4, AlphaRight: 4})
	t2, _ := New[[]float32](space.L2{}, data, Options{Seed: 42, AlphaLeft: 4, AlphaRight: 4})
	r1, r2 := t1.Search(q, 10), t2.Search(q, 10)
	if len(r1) != len(r2) {
		t.Fatal("nondeterministic result size")
	}
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatal("nondeterministic results for equal seeds")
		}
	}
}

func TestSearchOnNonMetricKL(t *testing.T) {
	// Smoke test on a non-metric space: results must be valid and
	// reasonably accurate with alpha < 1 (less pruning).
	r := rand.New(rand.NewSource(9))
	data := make([]space.Histogram, 500)
	for i := range data {
		p := make([]float32, 8)
		for j := range p {
			p[j] = float32(r.Float64())
		}
		data[i] = space.NewHistogram(p)
	}
	tree, err := New[space.Histogram](space.KLDivergence{}, data, Options{Seed: 1, Beta: 2})
	if err != nil {
		t.Fatal(err)
	}
	scan := seqscan.New[space.Histogram](space.KLDivergence{}, data)
	var hit, total int
	for i := 0; i < 30; i++ {
		q := data[r.Intn(len(data))]
		want := map[uint32]bool{}
		for _, n := range scan.Search(q, 5) {
			want[n.ID] = true
		}
		for _, n := range tree.Search(q, 5) {
			if want[n.ID] {
				hit++
			}
		}
		total += 5
	}
	recall := float64(hit) / float64(total)
	if recall < 0.8 {
		t.Fatalf("KL recall %.2f too low even with beta=2, alpha=1", recall)
	}
}

func TestTuneFindsUsableAlpha(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	data := randData(r, 1500, 6)
	queries := randData(r, 40, 6)
	alpha, rec, err := Tune[[]float32](space.L2{}, data, queries, 5, 0.9, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if alpha < 1 {
		t.Fatalf("tuned alpha %v below exact setting on a metric space", alpha)
	}
	if rec < 0.9 {
		t.Fatalf("tuned recall %v below target", rec)
	}
}

func TestTuneValidation(t *testing.T) {
	if _, _, err := Tune[[]float32](space.L2{}, nil, nil, 5, 0.9, Options{}); err == nil {
		t.Fatal("empty inputs accepted")
	}
	if _, _, err := Tune[[]float32](space.L2{}, [][]float32{{1}}, [][]float32{{1}}, 0, 0.9, Options{}); err == nil {
		t.Fatal("k=0 accepted")
	}
}
