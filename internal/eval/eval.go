// Package eval implements the evaluation protocol of §3.3 of the paper:
// repeated random data/query splits (a five-fold-like cross validation),
// exact ground truth, recall, and "improvement in efficiency" — the ratio of
// single-thread brute-force query time to the method's query time.
package eval

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/engine"
	"repro/internal/index"
	"repro/internal/seqscan"
	"repro/internal/space"
	"repro/internal/topk"
)

// Split is one data/query partition of a data set: indices into the
// original slice.
type Split struct {
	DB      []int
	Queries []int
}

// Splits generates `folds` independent random splits, each holding out
// numQueries points as queries (the paper uses five iterations with 1000 or
// 200 queries). It fails if numQueries >= n.
func Splits(r *rand.Rand, n, numQueries, folds int) ([]Split, error) {
	if numQueries <= 0 || numQueries >= n {
		return nil, fmt.Errorf("eval: numQueries %d out of range for n=%d", numQueries, n)
	}
	if folds <= 0 {
		return nil, fmt.Errorf("eval: folds must be positive")
	}
	out := make([]Split, folds)
	for f := range out {
		perm := r.Perm(n)
		s := Split{
			Queries: append([]int(nil), perm[:numQueries]...),
			DB:      append([]int(nil), perm[numQueries:]...),
		}
		out[f] = s
	}
	return out, nil
}

// Apply materializes a split over a typed data slice.
func Apply[T any](data []T, s Split) (db, queries []T) {
	db = make([]T, len(s.DB))
	for i, j := range s.DB {
		db[i] = data[j]
	}
	queries = make([]T, len(s.Queries))
	for i, j := range s.Queries {
		queries[i] = data[j]
	}
	return db, queries
}

// Recall returns the average fraction of true neighbors found: for each
// query, |got ∩ truth| / |truth|, averaged over queries.
func Recall(truth, got [][]topk.Neighbor) float64 {
	if len(truth) != len(got) {
		panic("eval: truth/got length mismatch")
	}
	if len(truth) == 0 {
		return 0
	}
	var sum float64
	for i := range truth {
		if len(truth[i]) == 0 {
			sum += 1
			continue
		}
		want := make(map[uint32]struct{}, len(truth[i]))
		for _, n := range truth[i] {
			want[n.ID] = struct{}{}
		}
		var hit int
		for _, n := range got[i] {
			if _, ok := want[n.ID]; ok {
				hit++
			}
		}
		sum += float64(hit) / float64(len(truth[i]))
	}
	return sum / float64(len(truth))
}

// Result aggregates one method measurement on one split.
type Result struct {
	Method string
	// Recall is the average k-NN recall across queries.
	Recall float64
	// QueryTime is the average wall-clock time per query.
	QueryTime time.Duration
	// BruteTime is the average sequential-scan time per query on the
	// same split, the baseline of the efficiency ratio.
	BruteTime time.Duration
	// Improvement is BruteTime / QueryTime (Figure 4's y-axis).
	Improvement float64
	// DistPerQuery is the average number of distance computations per
	// query when the space was wrapped in a Counter, else 0.
	DistPerQuery float64
	// BuildTime is how long index construction took (when measured by
	// MeasureBuild, else 0).
	BuildTime time.Duration
	// IndexBytes is the reported index footprint (when available).
	IndexBytes int64
	// Workers is the query-path parallelism the measurement ran with
	// (1 for the paper's single-thread protocol).
	Workers int
	// WallTime is the elapsed wall-clock time for the whole query batch.
	WallTime time.Duration
	// QPS is queries per second of wall-clock time: for serial runs the
	// inverse of QueryTime, for batch runs the aggregate throughput the
	// worker pool achieved.
	QPS float64
}

// Measure runs all queries through idx, compares against the exact truth,
// and reports recall plus timing. The brute-force baseline time must be
// measured separately (see BruteTime) because it is shared by all methods
// on a split.
func Measure[T any](idx index.Index[T], queries []T, truth [][]topk.Neighbor, k int, bruteTime time.Duration, counter *space.Counter[T]) Result {
	var before int64
	if counter != nil {
		before = counter.Count()
	}
	got := make([][]topk.Neighbor, len(queries))
	start := time.Now()
	for i, q := range queries {
		got[i] = idx.Search(q, k)
	}
	elapsed := time.Since(start)

	res := Result{
		Method:    idx.Name(),
		Recall:    Recall(truth, got),
		BruteTime: bruteTime,
		Workers:   1,
		WallTime:  elapsed,
	}
	if len(queries) > 0 {
		res.QueryTime = elapsed / time.Duration(len(queries))
	}
	finishResult(&res, idx, counter, before, len(queries))
	return res
}

// MeasureBatch is Measure with the queries fanned out over a worker pool
// (engine.SearchBatch semantics: results are identical to the serial loop).
// For plain indexes QueryTime is the mean per-query latency, timed inside
// the workers, so Improvement remains comparable to the paper's
// single-thread ratio. Indexes with a native batch path (index.Batcher,
// i.e. the proximity graph) are timed as one opaque call: there QueryTime
// is wall-clock/n — the effective per-query cost of the pool — and
// Improvement is consequently a *throughput* ratio vs single-thread brute
// force, larger than the single-thread protocol's by up to the worker
// count. The throughput the pool achieved is always reported as
// WallTime/QPS. workers <= 0 means GOMAXPROCS.
func MeasureBatch[T any](idx index.Index[T], queries []T, truth [][]topk.Neighbor, k int, bruteTime time.Duration, counter *space.Counter[T], workers int) Result {
	var before int64
	if counter != nil {
		before = counter.Count()
	}
	pool := engine.NewPool(workers)
	got := make([][]topk.Neighbor, len(queries))
	durs := make([]time.Duration, len(queries))
	start := time.Now()
	if b, ok := idx.(index.Batcher[T]); ok {
		// Indexes with a native batch path (the proximity graph) are
		// timed as one call; per-query latencies are not observable.
		got = b.SearchBatch(queries, k, pool.Workers())
	} else {
		pool.ForDynamic(len(queries), func(i int) {
			t0 := time.Now()
			got[i] = idx.Search(queries[i], k)
			durs[i] = time.Since(t0)
		})
	}
	elapsed := time.Since(start)

	res := Result{
		Method:    idx.Name(),
		Recall:    Recall(truth, got),
		BruteTime: bruteTime,
		Workers:   pool.Workers(),
		WallTime:  elapsed,
	}
	var inWorker time.Duration
	for _, d := range durs {
		inWorker += d
	}
	if len(queries) > 0 {
		if inWorker > 0 {
			res.QueryTime = inWorker / time.Duration(len(queries))
		} else {
			res.QueryTime = elapsed / time.Duration(len(queries))
		}
	}
	finishResult(&res, idx, counter, before, len(queries))
	return res
}

// finishResult fills the fields derived identically for serial and batch
// measurements.
func finishResult[T any](res *Result, idx index.Index[T], counter *space.Counter[T], before int64, numQueries int) {
	if res.QueryTime > 0 && res.BruteTime > 0 {
		res.Improvement = float64(res.BruteTime) / float64(res.QueryTime)
	}
	if res.WallTime > 0 && numQueries > 0 {
		res.QPS = float64(numQueries) / res.WallTime.Seconds()
	}
	if counter != nil && numQueries > 0 {
		res.DistPerQuery = float64(counter.Count()-before) / float64(numQueries)
	}
	if sized, ok := idx.(index.Sized); ok {
		res.IndexBytes = sized.Stats().Bytes
	}
}

// BruteTime measures the average single-thread sequential-scan time per
// query — the paper's efficiency baseline.
func BruteTime[T any](sp space.Space[T], db []T, queries []T, k int) (time.Duration, [][]topk.Neighbor) {
	scan := seqscan.New(sp, db)
	got := make([][]topk.Neighbor, len(queries))
	start := time.Now()
	for i, q := range queries {
		got[i] = scan.Search(q, k)
	}
	elapsed := time.Since(start)
	if len(queries) == 0 {
		return 0, got
	}
	return elapsed / time.Duration(len(queries)), got
}

// GroundTruth computes exact k-NN answers using all CPUs (setup only; never
// timed).
func GroundTruth[T any](sp space.Space[T], db []T, queries []T, k int) [][]topk.Neighbor {
	return seqscan.New(sp, db).SearchAll(queries, k)
}

// MeasureBuild times an index constructor.
func MeasureBuild[T any](build func() (index.Index[T], error)) (index.Index[T], time.Duration, error) {
	start := time.Now()
	idx, err := build()
	return idx, time.Since(start), err
}

// MeanResult averages results of the same method across splits (recall and
// times are averaged; footprint taken from the first).
func MeanResult(rs []Result) Result {
	if len(rs) == 0 {
		return Result{}
	}
	out := rs[0]
	var rec, imp, dpq, qps float64
	var qt, bt, bld, wall time.Duration
	for _, r := range rs {
		rec += r.Recall
		imp += r.Improvement
		dpq += r.DistPerQuery
		qps += r.QPS
		qt += r.QueryTime
		bt += r.BruteTime
		bld += r.BuildTime
		wall += r.WallTime
	}
	n := time.Duration(len(rs))
	out.Recall = rec / float64(len(rs))
	out.Improvement = imp / float64(len(rs))
	out.DistPerQuery = dpq / float64(len(rs))
	out.QPS = qps / float64(len(rs))
	out.QueryTime = qt / n
	out.BruteTime = bt / n
	out.BuildTime = bld / n
	out.WallTime = wall / n
	return out
}
