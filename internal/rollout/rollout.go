package rollout

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"repro/internal/shard"
)

// Options configure a rollout Driver.
type Options struct {
	// Topology is the fleet the driver operates on (required).
	Topology *Topology
	// RouterURL, when set, is a scatter-gather front end over the same
	// fleet; the golden query suite runs through it (capturing a baseline
	// from the old generation before the roll, verifying the new one
	// after). Empty disables the golden gate.
	RouterURL string
	// GoldenQueries are the probe queries of the golden suite, in the
	// serving wire encoding (see GoldenQueries to generate them from the
	// manifest's dataset). Ignored without a RouterURL.
	GoldenQueries []json.RawMessage
	// GoldenK is the neighbor count per golden query (default 10).
	GoldenK int
	// MinRecall is the golden gate: mean overlap@k of the new generation's
	// answers against the pre-roll baseline below this triggers automatic
	// rollback (default 0.95).
	MinRecall float64
	// MaxLatencyFactor rolls back when the golden suite's total wall time
	// against the new generation exceeds this multiple of the baseline's
	// (default 0 = disabled; shared CI runners are too noisy to gate by
	// default).
	MaxLatencyFactor float64
	// AllowOlder accepts a manifest whose generation is not newer than the
	// fleet's — the escape hatch `permctl rollout -allow-older` uses to
	// drive a manual roll-forward-to-the-past; the automatic regression
	// rollback bypasses the check internally.
	AllowOlder bool
	// Timeout bounds each HTTP call (default 5s); ConvergeTimeout bounds
	// how long one replica may take to report the target generation after
	// its reload (default 30s); PollInterval is the watch cadence
	// (default 100ms).
	Timeout         time.Duration
	ConvergeTimeout time.Duration
	PollInterval    time.Duration
	// Log receives progress events; nil means the process default logger.
	Log *log.Logger
	// OnEvent, when set, receives every structured per-step Event the
	// driver emits (in addition to the JSON line written to Log) — the hook
	// a control plane or test harness uses to follow a roll step by step.
	OnEvent func(Event)
}

// Event is one structured step of a rollout attempt. Every event is also
// logged as a single JSON line ("rollout: event {...}"), so an operator can
// reconstruct the exact sequence — which replica was mid-swap, what the
// golden gate measured, why a rollback started — from the driver's log
// alone.
type Event struct {
	// Step is one of: preflight, survey, baseline, update, converged,
	// verify, rollback, restore, done.
	Step       string  `json:"step"`
	Set        string  `json:"set"`
	Generation int64   `json:"generation,omitempty"`
	Shard      int     `json:"shard"`   // -1 for fleet-level events
	Replica    int     `json:"replica"` // -1 for fleet-level events
	URL        string  `json:"url,omitempty"`
	Detail     string  `json:"detail,omitempty"`
	Err        string  `json:"error,omitempty"`
	Recall     float64 `json:"recall,omitempty"`
	LatencyX   float64 `json:"latency_x,omitempty"`
}

// Driver ships shard-set generations onto a fleet. Create with New.
type Driver struct {
	opts   Options
	client *http.Client
	log    *log.Logger
}

// New validates opts and builds a driver.
func New(opts Options) (*Driver, error) {
	if opts.Topology == nil {
		return nil, fmt.Errorf("rollout: no topology")
	}
	if err := opts.Topology.Validate(); err != nil {
		return nil, err
	}
	if opts.Timeout <= 0 {
		opts.Timeout = 5 * time.Second
	}
	if opts.ConvergeTimeout <= 0 {
		opts.ConvergeTimeout = 30 * time.Second
	}
	if opts.PollInterval <= 0 {
		opts.PollInterval = 100 * time.Millisecond
	}
	if opts.GoldenK <= 0 {
		opts.GoldenK = 10
	}
	if opts.MinRecall == 0 {
		opts.MinRecall = 0.95
	}
	if opts.Log == nil {
		opts.Log = log.Default()
	}
	return &Driver{
		opts:   opts,
		client: &http.Client{Timeout: opts.Timeout},
		log:    opts.Log,
	}, nil
}

// Report is what one Rollout attempt did, whether it succeeded or was
// rolled back.
type Report struct {
	Set        string   `json:"set"`
	Generation int64    `json:"generation"`          // target generation
	Previous   int64    `json:"previous"`            // highest live generation before the roll
	Updated    []string `json:"updated,omitempty"`   // replica URLs now serving the target
	Skipped    []string `json:"skipped,omitempty"`   // unreachable replicas left on their old generation
	RolledBack bool     `json:"rolled_back"`         // the fleet was restored to Previous
	Reason     string   `json:"reason,omitempty"`    // why the roll failed or rolled back
	Recall     float64  `json:"recall,omitempty"`    // golden overlap@k of the new generation (gate runs only)
	LatencyX   float64  `json:"latency_x,omitempty"` // golden wall-time factor vs baseline (gate runs only)
}

// emit logs e as one structured JSON line and forwards it to the OnEvent
// hook. Fleet-level callers pass Shard/Replica as -1.
func (d *Driver) emit(e Event) {
	blob, err := json.Marshal(e)
	if err != nil {
		blob = []byte(fmt.Sprintf(`{"step":%q,"error":"unencodable event"}`, e.Step))
	}
	d.log.Printf("rollout: event %s", blob)
	if d.opts.OnEvent != nil {
		d.opts.OnEvent(e)
	}
}

// fleetEvent is an Event not attributable to one replica.
func fleetEvent(step, set string, gen int64) Event {
	return Event{Step: step, Set: set, Generation: gen, Shard: -1, Replica: -1}
}

// repState tracks one replica through a roll.
type repState struct {
	shard, id int
	rep       Replica
	prevGen   int64
	reachable bool
	updated   bool
}

func (r *repState) String() string {
	return fmt.Sprintf("shard %d replica %d (%s)", r.shard, r.id, r.rep.URL)
}

// Rollout drives the shard set described by manifestPath onto the fleet:
//
//  1. pre-flight: parse + validate the set manifest, re-checksum every
//     shard file against it (shard.SetManifest.VerifyFiles), and check the
//     target generation against the live fleet's (no accidental
//     downgrades);
//  2. survey: read every replica's current generation; unreachable
//     replicas are skipped with a warning (a dead host catches up when it
//     restarts), but a shard whose every replica is unreachable aborts;
//  3. golden baseline: capture the old generation's answers through the
//     router (when configured);
//  4. roll: replica by replica — readiness gate, back up the live files,
//     install the new ones, POST reload, and watch the replica's
//     /v1/indexes report the target generation before touching the next
//     replica, so at most one member of each group is out of rotation;
//  5. converge: re-survey the whole fleet and require every reachable
//     replica on the target generation;
//  6. golden verify: re-run the suite; a recall or latency regression
//     rolls every updated replica back to its backed-up files and waits
//     for re-convergence on the old generation.
//
// The returned Report describes the outcome; err is non-nil whenever the
// fleet was not left fully converged on the target generation.
func (d *Driver) Rollout(manifestPath string) (*Report, error) {
	m, err := shard.ReadSetManifest(manifestPath)
	if err != nil {
		return nil, err
	}
	setDir := filepath.Dir(manifestPath)
	d.log.Printf("rollout: pre-flight: verifying %d shard files of set %q generation %d", len(m.Shards), m.Set, m.Generation)
	if err := m.VerifyFiles(setDir); err != nil {
		return nil, fmt.Errorf("rollout: pre-flight: %w", err)
	}
	pre := fleetEvent("preflight", m.Set, m.Generation)
	pre.Detail = fmt.Sprintf("%d shard files checksum-verified", len(m.Shards))
	d.emit(pre)
	topo := d.opts.Topology
	if len(m.Shards) != len(topo.Shards) {
		return nil, fmt.Errorf("rollout: manifest has %d shards, topology has %d", len(m.Shards), len(topo.Shards))
	}

	rep := &Report{Set: m.Set, Generation: m.Generation}
	states, err := d.survey(m.Set, rep)
	if err != nil {
		return rep, err
	}
	if !d.opts.AllowOlder && m.Generation <= rep.Previous {
		return rep, fmt.Errorf("rollout: generation skew: manifest generation %d is not newer than the fleet's %d (use -allow-older to force)",
			m.Generation, rep.Previous)
	}
	sv := fleetEvent("survey", m.Set, m.Generation)
	sv.Detail = fmt.Sprintf("fleet on generation %d, %d replicas skipped", rep.Previous, len(rep.Skipped))
	d.emit(sv)

	var baseline *goldenRun
	if d.goldenEnabled() {
		baseline, err = d.captureGolden(m.Set)
		if err != nil {
			return rep, fmt.Errorf("rollout: golden baseline: %w", err)
		}
		d.log.Printf("rollout: golden baseline captured: %d queries via %s", len(d.opts.GoldenQueries), d.opts.RouterURL)
		bl := fleetEvent("baseline", m.Set, m.Generation)
		bl.Detail = fmt.Sprintf("%d golden queries captured", len(d.opts.GoldenQueries))
		d.emit(bl)
	}

	// Roll replica-by-replica. Any failure from here on restores the
	// already-updated replicas before returning.
	for _, st := range states {
		if !st.reachable {
			continue
		}
		if err := d.updateReplica(st, m, setDir); err != nil {
			return rep, d.rollback(rep, states, fmt.Sprintf("updating %s: %v", st, err))
		}
		st.updated = true
		rep.Updated = append(rep.Updated, st.rep.URL)
		d.emit(Event{Step: "update", Set: m.Set, Generation: m.Generation,
			Shard: st.shard, Replica: st.id, URL: st.rep.URL,
			Detail: fmt.Sprintf("generation %d -> %d", st.prevGen, m.Generation)})
	}

	// Convergence double-check across the whole fleet.
	if err := d.awaitFleetConvergence(m.Set, m.Generation, states); err != nil {
		return rep, d.rollback(rep, states, err.Error())
	}
	d.log.Printf("rollout: fleet converged on generation %d (%d replicas updated, %d skipped)",
		m.Generation, len(rep.Updated), len(rep.Skipped))
	cv := fleetEvent("converged", m.Set, m.Generation)
	cv.Detail = fmt.Sprintf("%d replicas updated, %d skipped", len(rep.Updated), len(rep.Skipped))
	d.emit(cv)

	if d.goldenEnabled() {
		verdict, err := d.captureGolden(m.Set)
		if err != nil {
			return rep, d.rollback(rep, states, fmt.Sprintf("golden verify: %v", err))
		}
		rep.Recall = recall(baseline, verdict)
		rep.LatencyX = latencyFactor(baseline, verdict)
		d.log.Printf("rollout: golden verify: recall %.4f (gate %.4f), latency %.2fx", rep.Recall, d.opts.MinRecall, rep.LatencyX)
		vf := fleetEvent("verify", m.Set, m.Generation)
		vf.Recall, vf.LatencyX = rep.Recall, rep.LatencyX
		d.emit(vf)
		if rep.Recall < d.opts.MinRecall {
			return rep, d.rollback(rep, states,
				fmt.Sprintf("golden recall %.4f below gate %.4f", rep.Recall, d.opts.MinRecall))
		}
		if d.opts.MaxLatencyFactor > 0 && rep.LatencyX > d.opts.MaxLatencyFactor {
			return rep, d.rollback(rep, states,
				fmt.Sprintf("golden latency %.2fx above gate %.2fx", rep.LatencyX, d.opts.MaxLatencyFactor))
		}
	}
	d.emit(fleetEvent("done", m.Set, m.Generation))
	return rep, nil
}

// goldenEnabled reports whether the golden gate is configured.
func (d *Driver) goldenEnabled() bool {
	return d.opts.RouterURL != "" && len(d.opts.GoldenQueries) > 0
}

// survey reads every replica's current generation of the set. Unreachable
// replicas are recorded as skipped; an entirely unreachable shard group is
// fatal (rolling it would leave the shard unservable).
func (d *Driver) survey(set string, rep *Report) ([]*repState, error) {
	var states []*repState
	for s, group := range d.opts.Topology.Shards {
		reachable := 0
		for r, member := range group {
			st := &repState{shard: s, id: r, rep: member}
			gen, err := d.generation(member.URL, set)
			if err != nil {
				d.log.Printf("rollout: %s unreachable, skipping: %v", st, err)
				rep.Skipped = append(rep.Skipped, member.URL)
			} else {
				st.reachable = true
				st.prevGen = gen
				reachable++
				if gen > rep.Previous {
					rep.Previous = gen
				}
			}
			states = append(states, st)
		}
		if reachable == 0 {
			return nil, fmt.Errorf("rollout: every replica of shard %d is unreachable", s)
		}
	}
	return states, nil
}

// updateReplica rolls one replica: readiness gate, file backup + install
// (when its serving dir is known), reload, and convergence watch.
func (d *Driver) updateReplica(st *repState, m *shard.SetManifest, setDir string) error {
	if err := d.healthz(st.rep.URL); err != nil {
		return fmt.Errorf("readiness gate: %w", err)
	}
	if st.rep.Dir != "" {
		src := m.Shards[st.shard]
		if err := backupAndInstall(st.rep.Dir, m.Set,
			filepath.Join(setDir, src.File), filepath.Join(setDir, src.Manifest)); err != nil {
			return err
		}
	}
	d.log.Printf("rollout: reloading %s -> generation %d", st, m.Generation)
	if err := d.reload(st.rep.URL, m.Set); err != nil {
		return err
	}
	if err := d.awaitGeneration(st.rep.URL, m.Set, m.Generation); err != nil {
		return err
	}
	// The replica reports the new generation; require readiness before
	// moving on so at most one group member is ever mid-swap.
	return d.healthz(st.rep.URL)
}

// rollback restores every updated replica to its backed-up files and old
// generation, in reverse update order. It always marks the report rolled
// back and returns an error carrying reason (rollback failures compound
// into it — a half-rolled-back fleet must be loud).
func (d *Driver) rollback(rep *Report, states []*repState, reason string) error {
	d.log.Printf("rollout: ROLLING BACK: %s", reason)
	rep.RolledBack = true
	rep.Reason = reason
	rb := fleetEvent("rollback", rep.Set, rep.Generation)
	rb.Err = reason
	d.emit(rb)
	var failures []string
	for i := len(states) - 1; i >= 0; i-- {
		st := states[i]
		if !st.updated {
			continue
		}
		if st.rep.Dir != "" {
			if err := restoreBackup(st.rep.Dir, rep.Set); err != nil {
				failures = append(failures, fmt.Sprintf("%s: restoring files: %v", st, err))
				continue
			}
		}
		if err := d.reload(st.rep.URL, rep.Set); err != nil {
			failures = append(failures, fmt.Sprintf("%s: reload: %v", st, err))
			continue
		}
		if err := d.awaitGeneration(st.rep.URL, rep.Set, st.prevGen); err != nil {
			failures = append(failures, fmt.Sprintf("%s: %v", st, err))
			continue
		}
		d.log.Printf("rollout: %s restored to generation %d", st, st.prevGen)
		d.emit(Event{Step: "restore", Set: rep.Set, Generation: st.prevGen,
			Shard: st.shard, Replica: st.id, URL: st.rep.URL})
	}
	if len(failures) > 0 {
		return fmt.Errorf("rollout: rolled back (%s) but %d replicas failed to restore: %s",
			reason, len(failures), failures[0])
	}
	return fmt.Errorf("rollout: rolled back: %s", reason)
}

// awaitGeneration polls one replica until it serves the wanted generation.
func (d *Driver) awaitGeneration(url, set string, want int64) error {
	deadline := time.Now().Add(d.opts.ConvergeTimeout)
	var lastErr error
	for time.Now().Before(deadline) {
		gen, err := d.generation(url, set)
		if err == nil && gen == want {
			return nil
		}
		if err != nil {
			lastErr = err
		} else {
			lastErr = fmt.Errorf("serving generation %d, want %d", gen, want)
		}
		time.Sleep(d.opts.PollInterval)
	}
	return fmt.Errorf("%s did not converge on generation %d within %s: %v", url, want, d.opts.ConvergeTimeout, lastErr)
}

// awaitFleetConvergence requires every reachable replica on the target
// generation — the generation-vector watch, against the replicas directly
// (the router's /v1/indexes shows the same matrix to everyone else).
func (d *Driver) awaitFleetConvergence(set string, want int64, states []*repState) error {
	for _, st := range states {
		if !st.reachable {
			continue
		}
		if err := d.awaitGeneration(st.rep.URL, set, want); err != nil {
			return fmt.Errorf("fleet convergence: %s: %v", st, err)
		}
	}
	return nil
}

// --- fleet HTTP primitives ---

// generation reads one replica's served generation of the set from its
// /v1/indexes listing.
func (d *Driver) generation(base, set string) (int64, error) {
	resp, err := d.client.Get(base + "/v1/indexes")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return 0, err
	}
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("listing indexes: status %d", resp.StatusCode)
	}
	var out struct {
		Indexes []struct {
			Name       string `json:"name"`
			Generation int64  `json:"generation"`
		} `json:"indexes"`
	}
	if err := json.Unmarshal(raw, &out); err != nil {
		return 0, err
	}
	for _, row := range out.Indexes {
		if row.Name == set {
			return row.Generation, nil
		}
	}
	return 0, fmt.Errorf("replica does not serve index %q", set)
}

// healthz is the readiness gate: 200 or error.
func (d *Driver) healthz(base string) error {
	resp, err := d.client.Get(base + "/healthz")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("healthz status %d", resp.StatusCode)
	}
	return nil
}

// reload asks one replica to hot-swap the set from its files.
func (d *Driver) reload(base, set string) error {
	resp, err := d.client.Post(base+"/v1/indexes/"+set+"/reload", "application/json", nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("reload status %d: %s", resp.StatusCode, bytes.TrimSpace(raw))
	}
	return nil
}

// --- file shipping ---

// backupSuffix marks the previous generation's files inside a replica's
// serving dir; restoreBackup swaps them back.
const backupSuffix = ".prev"

// backupAndInstall saves the replica's live <set>.psix/.json under the
// backup suffix and installs the new pair. Installs go through a temp file
// + rename so a crash mid-ship can tear neither target (the registry only
// rereads on reload anyway, but the files themselves stay whole).
func backupAndInstall(dir, set, srcIndex, srcSidecar string) error {
	for _, f := range []struct{ live, src string }{
		{filepath.Join(dir, set+".psix"), srcIndex},
		{filepath.Join(dir, set+".json"), srcSidecar},
	} {
		if err := copyFile(f.live, f.live+backupSuffix); err != nil {
			return fmt.Errorf("backing up %s: %w", f.live, err)
		}
		if err := copyFile(f.src, f.live); err != nil {
			return fmt.Errorf("installing %s: %w", f.live, err)
		}
	}
	return nil
}

// restoreBackup swaps the backed-up pair back into place.
func restoreBackup(dir, set string) error {
	for _, live := range []string{
		filepath.Join(dir, set+".psix"),
		filepath.Join(dir, set+".json"),
	} {
		if err := copyFile(live+backupSuffix, live); err != nil {
			return err
		}
	}
	return nil
}

// copyFile copies src over dst atomically (temp file + rename in dst's
// directory).
func copyFile(src, dst string) error {
	in, err := os.Open(src)
	if err != nil {
		return err
	}
	defer in.Close()
	tmp, err := os.CreateTemp(filepath.Dir(dst), filepath.Base(dst)+".tmp*")
	if err != nil {
		return err
	}
	if _, err := io.Copy(tmp, in); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), dst)
}
