// Package index defines the common interface satisfied by every k-NN search
// structure in this repository — the permutation methods under internal/core
// as well as the VP-tree, multi-probe LSH, k-NN graph and sequential-scan
// baselines. The evaluation harness (internal/eval, internal/experiments)
// works against this interface only.
package index

import "repro/internal/topk"

// Index answers k-nearest-neighbor queries over a fixed data set. The
// result is ordered by increasing distance and contains at most k entries
// (fewer if the index holds fewer points or, for approximate filter-based
// methods, if the candidate set is exhausted). IDs are positions in the
// data slice the index was built from.
//
// Search must be safe for concurrent use by multiple goroutines.
type Index[T any] interface {
	Search(query T, k int) []topk.Neighbor
	// Name identifies the method in experiment reports, e.g. "napp".
	Name() string
}

// Searcher is a single-goroutine query handle over an index: it answers the
// same queries as the index's Search but owns its per-query scratch state
// (counter arenas, candidate buffers, top-k queues) exclusively, so a
// worker issuing many queries through one Searcher reuses one set of
// buffers instead of cycling a pool entry per query. The batch engine keeps
// one Searcher per worker; serving loops may hold one per goroutine.
//
// A Searcher must return results identical to the parent index's Search. It
// must NOT be shared between goroutines. SearchAppend appends the results
// to dst and returns the extended slice — with a dst of sufficient capacity
// a warm SearchAppend performs zero allocations (the returned neighbors are
// the only memory Search hands to the caller); Search is SearchAppend(nil,
// ...) and costs exactly the one result-slice allocation.
type Searcher[T any] interface {
	Search(query T, k int) []topk.Neighbor
	SearchAppend(dst []topk.Neighbor, query T, k int) []topk.Neighbor
}

// SearcherProvider is implemented by indexes that can mint Searchers.
// NewSearcher is safe to call concurrently; each returned Searcher is
// independent.
type SearcherProvider[T any] interface {
	NewSearcher() Searcher[T]
}

// Batcher is implemented by indexes that need to cooperate with the batch
// query engine (internal/engine) to keep a concurrent batch identical to a
// serial query loop — typically because Search consumes shared mutable
// state, like the proximity graph's entry-point seed counter. SearchBatch
// must return, for every i, exactly what the i-th call of a serial Search
// loop started from the index's current state would return, and must leave
// the index in the same state that loop would. workers bounds parallelism
// (<= 0 means GOMAXPROCS).
//
// Indexes whose Search is a pure function of (query, k) do not need this;
// engine.SearchBatch fans them out directly.
type Batcher[T any] interface {
	SearchBatch(queries []T, k, workers int) [][]topk.Neighbor
}

// Stats describes index footprint for Table 2 style reports.
type Stats struct {
	// Bytes is the approximate heap footprint of the index structure,
	// excluding the raw data objects themselves.
	Bytes int64
	// BuildDistances is the number of distance computations performed
	// during construction, when the index tracks it (0 otherwise).
	BuildDistances int64
}

// Sized is implemented by indexes that can report their memory footprint.
type Sized interface {
	Stats() Stats
}
