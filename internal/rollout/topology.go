// Package rollout is the control plane of the replicated serving tier: it
// describes a fleet (a shards × replicas topology of permserve processes)
// and drives a new shard-set generation onto it — pre-verifying bytes
// against the set manifest, reloading replica-by-replica behind the
// readiness gate, watching the /v1/indexes generation vectors converge,
// and rolling back automatically when the golden query suite says the new
// generation regressed. cmd/permctl is the thin CLI wrapper; cmd/permrouter
// reads the same topology file to wire its replica groups.
package rollout

import (
	"encoding/json"
	"fmt"
	"os"
)

// TopologySchema tags the topology file format; readers reject unknown
// schemas, mirroring the shard-set manifest policy.
const TopologySchema = "permsearch-topology/v1"

// Replica is one serving process in the fleet: where to reach it and —
// for fleets whose hosts share a filesystem with the driver, like the CI
// smoke fleet — which directory it serves from, so the driver can ship
// index bytes before asking for a reload. An empty Dir means the bytes
// travel out of band (rsync, object store, ...) and the driver only
// reloads and verifies.
type Replica struct {
	URL string `json:"url"`
	Dir string `json:"dir,omitempty"`
}

// Topology is the fleet layout: Shards[i] lists shard i's replica group, in
// the same order permrouter wires its groups. One file describes the fleet
// to both the router (URLs) and the rollout driver (URLs + dirs).
type Topology struct {
	Schema string      `json:"schema"`
	Shards [][]Replica `json:"shards"`
}

// Validate checks the topology's internal consistency.
func (t *Topology) Validate() error {
	if t.Schema != TopologySchema {
		return fmt.Errorf("rollout: topology schema %q, want %q", t.Schema, TopologySchema)
	}
	if len(t.Shards) == 0 {
		return fmt.Errorf("rollout: topology lists no shards")
	}
	seen := map[string]string{}
	for s, group := range t.Shards {
		if len(group) == 0 {
			return fmt.Errorf("rollout: shard %d has no replicas", s)
		}
		for r, rep := range group {
			if rep.URL == "" {
				return fmt.Errorf("rollout: shard %d replica %d has no url", s, r)
			}
			if prev, dup := seen[rep.URL]; dup {
				return fmt.Errorf("rollout: replica url %s appears twice (%s and shard %d replica %d)", rep.URL, prev, s, r)
			}
			seen[rep.URL] = fmt.Sprintf("shard %d replica %d", s, r)
		}
	}
	return nil
}

// URLs flattens the topology into the shards × replicas URL matrix the
// router consumes.
func (t *Topology) URLs() [][]string {
	out := make([][]string, len(t.Shards))
	for s, group := range t.Shards {
		for _, rep := range group {
			out[s] = append(out[s], rep.URL)
		}
	}
	return out
}

// ReadTopology parses and validates a topology file.
func ReadTopology(path string) (*Topology, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var t Topology
	if err := json.Unmarshal(blob, &t); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &t, nil
}

// WriteTopology validates t and writes it to path.
func WriteTopology(path string, t *Topology) error {
	t.Schema = TopologySchema
	if err := t.Validate(); err != nil {
		return err
	}
	blob, err := json.MarshalIndent(t, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(blob, '\n'), 0o644)
}
