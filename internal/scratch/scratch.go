// Package scratch is the query-scratch subsystem behind the allocation-free
// search hot path: epoch-stamped counter arenas that replace the per-query
// O(N) memset of the paper's ScanCount filtering (§2.3), and a typed pool of
// per-query scratch states.
//
// # Epoch stamping
//
// The paper's inverted-file methods keep one counter per data point and
// reset all N of them before every query ("their memset"). At serving rates
// that reset — or worse, a fresh make([]...) — dominates cheap filtering
// work and feeds the garbage collector. An epoch-stamped arena makes the
// reset O(1): every cell carries the epoch of the query that last wrote it,
// a cell whose stamp differs from the arena's current epoch reads as zero,
// and starting a new query is a single epoch increment. The full clear only
// happens when the epoch counter itself wraps — once every 2^24 queries for
// the packed Counters, 2^32 for Gains — so its amortized cost is nil.
//
// # Ownership rules
//
// Arenas and scratch states are single-goroutine: exactly one query may use
// an arena at a time, and a Begin invalidates all reads of the previous
// query. Indexes obtain a scratch state per query from a Pool (concurrent
// Searches each get their own) or hold one exclusively inside a per-worker
// index.Searcher; either way the state never crosses goroutines while in
// use. See the README's Performance section for the full ownership story.
package scratch

import "sync"

// counterEpochBits is how many bits of a Counters cell hold the epoch; the
// remaining low 8 bits hold the count.
const counterEpochBits = 24

// counterEpochMax is the largest epoch representable in a Counters cell.
const counterEpochMax = 1<<counterEpochBits - 1

// Counters is an epoch-stamped arena of 8-bit counters, the ScanCount state
// of the inverted-file methods: cell i packs (epoch << 8) | count into a
// uint32. A query calls Begin once, then Inc as it merges posting lists;
// cells last written by an earlier query read as zero without ever being
// cleared. Counts saturate at 255, so callers whose thresholds must fire on
// exact equality (NAPP's t, OMEDRANK's quorum) cap their increments per id
// at 255 (NAPP caps ms, OMEDRANK caps the voter count).
//
// The zero value is ready to use. Not safe for concurrent use.
type Counters struct {
	cells []uint32
	epoch uint32
}

// Begin readies the arena for a new query over ids in [0, n): it grows the
// arena if needed and advances the epoch, logically zeroing every counter in
// O(1). On epoch wrap-around (once per 2^24 queries) the arena is cleared
// eagerly — the one memset the stamping scheme cannot elide.
func (c *Counters) Begin(n int) {
	if cap(c.cells) < n {
		// Fresh cells are zero: epoch 0, which the post-increment epoch
		// below never equals, so they correctly read as stale.
		c.cells = make([]uint32, n)
	}
	c.cells = c.cells[:n]
	c.epoch++
	if c.epoch > counterEpochMax {
		// Clear the full capacity, not just the current window: a
		// smaller n here must not let cells beyond it keep pre-wrap
		// stamps that a later, larger Begin would re-expose.
		clear(c.cells[:cap(c.cells)])
		c.epoch = 1
	}
}

// Inc increments the counter of id and returns the new count. The count
// saturates at 255 instead of carrying into the epoch bits.
func (c *Counters) Inc(id uint32) uint8 {
	cell := c.cells[id]
	if cell>>8 != c.epoch {
		cell = c.epoch << 8
	}
	if uint8(cell) == 255 {
		return 255
	}
	cell++
	c.cells[id] = cell
	return uint8(cell)
}

// Count returns the current count of id (zero if this query never
// incremented it).
func (c *Counters) Count(id uint32) uint8 {
	cell := c.cells[id]
	if cell>>8 != c.epoch {
		return 0
	}
	return uint8(cell)
}

// Epoch exposes the current epoch so tests can force a wrap; production
// callers have no use for it.
func (c *Counters) Epoch() uint32 { return c.epoch }

// SetEpoch forces the epoch counter, for wrap-around tests only.
func (c *Counters) SetEpoch(e uint32) { c.epoch = e }

// Gains is the epoch-stamped arena for accumulators wider than a byte — the
// MI-file's per-point Footrule gain, which grows up to ms*m and cannot share
// a cell with its stamp. Stamps and values live in parallel slices: a value
// whose stamp differs from the current epoch reads as zero.
//
// The zero value is ready to use. Not safe for concurrent use.
type Gains struct {
	stamp []uint32
	val   []int32
	epoch uint32
}

// Begin readies the arena for a new query over ids in [0, n), logically
// zeroing every value in O(1). The stamp array is cleared eagerly only when
// the 32-bit epoch wraps.
func (g *Gains) Begin(n int) {
	if cap(g.stamp) < n {
		g.stamp = make([]uint32, n)
		g.val = make([]int32, n)
	}
	g.stamp = g.stamp[:n]
	g.val = g.val[:n]
	g.epoch++
	if g.epoch == 0 {
		// Full capacity for the same reason as Counters.Begin: stale
		// stamps beyond a temporarily smaller n must not survive the
		// wrap.
		clear(g.stamp[:cap(g.stamp)])
		g.epoch = 1
	}
}

// Add accumulates delta into the value of id and returns the new total,
// plus whether this was the first touch of id in the current query.
func (g *Gains) Add(id uint32, delta int32) (total int32, first bool) {
	if g.stamp[id] != g.epoch {
		g.stamp[id] = g.epoch
		g.val[id] = delta
		return delta, true
	}
	g.val[id] += delta
	return g.val[id], false
}

// Get returns the accumulated value of id (zero if untouched this query).
func (g *Gains) Get(id uint32) int32 {
	if g.stamp[id] != g.epoch {
		return 0
	}
	return g.val[id]
}

// Epoch exposes the current epoch for wrap-around tests.
func (g *Gains) Epoch() uint32 { return g.epoch }

// SetEpoch forces the epoch counter, for wrap-around tests only.
func (g *Gains) SetEpoch(e uint32) { g.epoch = e }

// Marks is the epoch-stamped arena for plain visited sets — the graph
// methods' per-query visited []bool, reset in O(1) instead of a per-query
// make or memset. A cell is "marked" when its stamp equals the current
// epoch.
//
// The zero value is ready to use. Not safe for concurrent use.
type Marks struct {
	stamp []uint32
	epoch uint32
}

// Begin readies the arena for a new query over ids in [0, n), logically
// unmarking every id in O(1). The stamp array is cleared eagerly only when
// the 32-bit epoch wraps.
func (m *Marks) Begin(n int) {
	if cap(m.stamp) < n {
		m.stamp = make([]uint32, n)
	}
	m.stamp = m.stamp[:n]
	m.epoch++
	if m.epoch == 0 {
		// Full capacity for the same reason as Counters.Begin: stale
		// stamps beyond a temporarily smaller n must not survive the
		// wrap.
		clear(m.stamp[:cap(m.stamp)])
		m.epoch = 1
	}
}

// TrySet marks id and reports whether it was unmarked before — the
// test-and-set a graph traversal runs per neighbor.
func (m *Marks) TrySet(id uint32) bool {
	if m.stamp[id] == m.epoch {
		return false
	}
	m.stamp[id] = m.epoch
	return true
}

// Has reports whether id is marked in the current query.
func (m *Marks) Has(id uint32) bool { return m.stamp[id] == m.epoch }

// Epoch exposes the current epoch for wrap-around tests.
func (m *Marks) Epoch() uint32 { return m.epoch }

// SetEpoch forces the epoch counter, for wrap-around tests only.
func (m *Marks) SetEpoch(e uint32) { m.epoch = e }

// Pool is a typed free list of per-query scratch states, one Pool per index
// instance. Get returns a state exclusively to the caller; Put recycles it.
// States are stored by pointer and returned whole, so buffer capacity grown
// by one query is preserved for the next — putting back a re-sliced prefix
// (the capacity leak the old NAPP counter pool had) is impossible by
// construction.
//
// The zero value is ready to use.
type Pool[S any] struct {
	p sync.Pool
}

// Get hands out an idle scratch state, allocating a zero one when the pool
// is empty. The state is owned by the caller until Put.
func (p *Pool[S]) Get() *S {
	if v := p.p.Get(); v != nil {
		return v.(*S)
	}
	return new(S)
}

// Put recycles a state obtained from Get. The caller must not retain it.
func (p *Pool[S]) Put(s *S) { p.p.Put(s) }

// Grow returns buf with length n, reusing its capacity when possible. The
// contents of the returned slice are unspecified — callers overwrite every
// element. It is the capacity-preserving resize used by scratch states for
// their plain (non-stamped) per-query buffers.
func Grow[T any](buf []T, n int) []T {
	if cap(buf) < n {
		return make([]T, n)
	}
	return buf[:n]
}
