package space

import (
	"math"

	"repro/internal/vecmath"
)

// L2 is the Euclidean metric over dense float32 vectors. It is the distance
// used for the CoPhIR and SIFT experiments in the paper.
type L2 struct{}

// Distance returns the Euclidean distance between data and query.
func (L2) Distance(data, query []float32) float64 { return vecmath.L2(data, query) }

// Name implements Space.
func (L2) Name() string { return "l2" }

// Properties implements Space: L2 is a metric.
func (L2) Properties() Properties { return Properties{Metric: true, Symmetric: true} }

// L2F32 is the Euclidean metric computed with float32 element differences
// (vecmath.L2SqrF32): one rounding per element instead of two float64
// conversions, worth ~20% on SIFT-width vectors. Distances agree with L2 to
// within ~n*2^-23 relative error but are not bit-identical, so this is an
// opt-in space with its own name — indexes persisted under "l2" keep their
// byte-stable distances, and switching a build to L2F32 is an explicit
// decision recorded in the codec header.
type L2F32 struct{}

// Distance returns the Euclidean distance between data and query.
func (L2F32) Distance(data, query []float32) float64 {
	return math.Sqrt(vecmath.L2SqrF32(data, query))
}

// Name implements Space.
func (L2F32) Name() string { return "l2-f32" }

// Properties implements Space: L2 is a metric.
func (L2F32) Properties() Properties { return Properties{Metric: true, Symmetric: true} }

// L1 is the Manhattan metric over dense float32 vectors. The paper uses it to
// cross-check the NAPP implementation against Chávez et al.'s published
// speed-ups on normalized CoPhIR descriptors.
type L1 struct{}

// Distance returns the Manhattan distance between data and query.
func (L1) Distance(data, query []float32) float64 { return vecmath.L1(data, query) }

// Name implements Space.
func (L1) Name() string { return "l1" }

// Properties implements Space: L1 is a metric.
func (L1) Properties() Properties { return Properties{Metric: true, Symmetric: true} }
