package permutation

import "repro/internal/space"

// KendallTau returns the Kendall tau distance between two permutations: the
// number of pivot pairs ranked in opposite order. It is the bubble-sort
// distance between the rankings and a metric on permutations. Diaconis'
// inequality ties it to the Footrule: Footrule/2 <= KendallTau <= Footrule.
//
// The paper's evaluation uses rho and the Footrule (§2.1); Kendall tau is
// provided for completeness (it appears throughout the permutation-indexing
// literature) and is computed in O(m log m) by counting inversions of the
// composition b ∘ a⁻¹ with a merge sort.
func KendallTau(a, b []int32) float64 {
	if len(a) != len(b) {
		panic("permutation: length mismatch")
	}
	if len(a) < 2 {
		return 0
	}
	// seq[r] = rank under b of the pivot that a ranks r-th. If a == b
	// this is the identity; every inversion is a disagreeing pair.
	orderA := Invert(a)
	seq := make([]int32, len(a))
	for r, pivot := range orderA {
		seq[r] = b[pivot]
	}
	buf := make([]int32, len(seq))
	return float64(countInversions(seq, buf))
}

// countInversions merge-sorts s in place, returning the inversion count.
func countInversions(s, buf []int32) int64 {
	n := len(s)
	if n < 2 {
		return 0
	}
	mid := n / 2
	inv := countInversions(s[:mid], buf[:mid]) + countInversions(s[mid:], buf[mid:])
	// Merge while counting cross inversions.
	i, j, k := 0, mid, 0
	for i < mid && j < n {
		if s[i] <= s[j] {
			buf[k] = s[i]
			i++
		} else {
			buf[k] = s[j]
			j++
			inv += int64(mid - i)
		}
		k++
	}
	for i < mid {
		buf[k] = s[i]
		i++
		k++
	}
	for j < n {
		buf[k] = s[j]
		j++
		k++
	}
	copy(s, buf[:n])
	return inv
}

// KendallSpace exposes the Kendall tau distance as a space.Space over
// permutation vectors.
type KendallSpace struct{}

// Distance implements space.Space.
func (KendallSpace) Distance(a, b []int32) float64 { return KendallTau(a, b) }

// Name implements space.Space.
func (KendallSpace) Name() string { return "kendall-tau" }

// Properties implements space.Space: Kendall tau is a metric.
func (KendallSpace) Properties() space.Properties {
	return space.Properties{Metric: true, Symmetric: true}
}
