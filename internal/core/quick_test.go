package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/index"
	"repro/internal/space"
)

// buildAll constructs one instance of every permutation method over db with
// small parameters, for invariant checks.
func buildAll(t *testing.T, db [][]float32, seed int64) map[string]index.Index[[]float32] {
	t.Helper()
	sp := space.L2{}
	out := map[string]index.Index[[]float32]{}
	add := func(name string, idx index.Index[[]float32], err error) {
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out[name] = idx
	}
	bf, err := NewBruteForceFilter[[]float32](sp, db, BruteForceOptions{NumPivots: 16, Gamma: 0.05, Seed: seed})
	add("bf", bf, err)
	bin, err := NewBinFilter[[]float32](sp, db, BinFilterOptions{NumPivots: 32, Gamma: 0.05, Seed: seed})
	add("bin", bin, err)
	pp, err := NewPPIndex[[]float32](sp, db, PPIndexOptions{NumPivots: 16, PrefixLen: 3, Copies: 2, Seed: seed})
	add("pp", pp, err)
	mi, err := NewMIFile[[]float32](sp, db, MIFileOptions{NumPivots: 16, NumPivotIndex: 8, NumPivotSearch: 4, Seed: seed})
	add("mi", mi, err)
	na, err := NewNAPP[[]float32](sp, db, NAPPOptions{NumPivots: 16, NumPivotIndex: 4, MinShared: 1, Seed: seed})
	add("napp", na, err)
	om, err := NewOMEDRANK[[]float32](sp, db, OMEDRANKOptions{NumVoters: 4, Seed: seed})
	add("omed", om, err)
	pv, err := NewPermVPTree[[]float32](sp, db, PermVPTreeOptions{NumPivots: 16, Seed: seed})
	add("pvt", pv, err)
	dv, err := NewDistVecFilter[[]float32](sp, db, BruteForceOptions{NumPivots: 16, Gamma: 0.05, Seed: seed})
	add("dv", dv, err)
	return out
}

// TestSearchInvariantsQuick drives every method with random queries and k
// values, asserting: no duplicates, ids in range, ordered by distance,
// at most k results, and distances consistent with the true space.
func TestSearchInvariantsQuick(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	db := clustered(77, 300, 6)
	idxs := buildAll(t, db, 7)
	sp := space.L2{}

	f := func(seedRaw int64, kRaw uint8) bool {
		qr := rand.New(rand.NewSource(seedRaw))
		q := make([]float32, 6)
		for i := range q {
			q[i] = float32(qr.NormFloat64() * 50)
		}
		k := int(kRaw)%20 + 1
		for name, idx := range idxs {
			res := idx.Search(q, k)
			if len(res) > k {
				t.Logf("%s returned %d > k=%d", name, len(res), k)
				return false
			}
			seen := map[uint32]bool{}
			for i, nb := range res {
				if int(nb.ID) >= len(db) || seen[nb.ID] {
					t.Logf("%s: bad id %d", name, nb.ID)
					return false
				}
				seen[nb.ID] = true
				if i > 0 && res[i-1].Dist > nb.Dist {
					t.Logf("%s: unordered results", name)
					return false
				}
				// Reported distance must be the true distance.
				if want := sp.Distance(db[nb.ID], q); nb.Dist != want {
					t.Logf("%s: distance %v != true %v", name, nb.Dist, want)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: r}); err != nil {
		t.Fatal(err)
	}
}

// TestSelfQueryFoundQuick: querying with a database point must return that
// point first at distance zero for every filter-and-refine method with a
// generous candidate budget.
func TestSelfQueryFoundQuick(t *testing.T) {
	db := clustered(78, 300, 6)
	sp := space.L2{}
	bf, err := NewBruteForceFilter[[]float32](sp, db, BruteForceOptions{NumPivots: 16, Gamma: 0.3, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	na, err := NewNAPP[[]float32](sp, db, NAPPOptions{NumPivots: 32, NumPivotIndex: 8, MinShared: 1, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	f := func(idRaw uint16) bool {
		id := int(idRaw) % len(db)
		for _, idx := range []index.Index[[]float32]{bf, na} {
			res := idx.Search(db[id], 1)
			if len(res) != 1 || res[0].Dist != 0 {
				return false
			}
			// Duplicate points can legitimately outrank on equal
			// distance; distance zero is the invariant, not the id.
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestDeterministicSearches: equal seeds and inputs give identical results
// across two independently built instances, for every method.
func TestDeterministicSearches(t *testing.T) {
	db := clustered(79, 250, 6)
	a := buildAll(t, db, 13)
	b := buildAll(t, db, 13)
	q := db[42]
	for name := range a {
		if name == "omed" {
			// OMEDRANK's round-robin is deterministic too, but its
			// quorum order depends on map-free logic only; include it.
			_ = name
		}
		ra, rb := a[name].Search(q, 7), b[name].Search(q, 7)
		if len(ra) != len(rb) {
			t.Fatalf("%s: result sizes differ", name)
		}
		for i := range ra {
			if ra[i] != rb[i] {
				t.Fatalf("%s: nondeterministic results", name)
			}
		}
	}
}
