# Local entry points that stay in lockstep with .github/workflows/ci.yml:
# each CI step invokes one of these targets, so a green `make ci` means a
# green pipeline.

GO ?= go

.PHONY: build test race bench vet fmt ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Fails when any file is not gofmt-formatted (prints the offenders).
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

test:
	$(GO) test ./...

# Race-check the concurrency-heavy packages: the batch query engine and the
# SW/NN-descent graph construction goroutines.
race:
	$(GO) test -race -short ./internal/engine/... ./internal/knngraph/...

# Batch-engine throughput: the serial reference loop vs SearchBatch at
# 1/2/4/8 workers over the sequential scan.
bench:
	$(GO) test -run '^$$' -bench BenchmarkSearchBatch -benchmem ./internal/engine/

ci: fmt build vet test race
