package synth

import (
	"math"
	"math/rand"
	"testing"
)

func TestGaussianMixtureBasics(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	g := NewGaussianMixture(r, 16, 4, 100, 5)
	vs := g.SampleN(r, 200)
	if len(vs) != 200 {
		t.Fatalf("got %d samples", len(vs))
	}
	for _, v := range vs {
		if len(v) != 16 {
			t.Fatalf("dim = %d", len(v))
		}
		for _, x := range v {
			if math.IsNaN(float64(x)) || math.IsInf(float64(x), 0) {
				t.Fatal("non-finite sample")
			}
		}
	}
}

func TestGaussianMixtureClamp(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	g := NewGaussianMixture(r, 8, 3, 255, 60).Clamp(0, 255)
	for i := 0; i < 500; i++ {
		for _, x := range g.Sample(r) {
			if x < 0 || x > 255 {
				t.Fatalf("clamped sample out of range: %v", x)
			}
		}
	}
}

func TestGaussianMixtureClustered(t *testing.T) {
	// With huge spread and tiny sigma, points from the same cluster are
	// far closer to each other than to other clusters; verify bimodality
	// by checking the mixture generates at least 2 distinct "locations".
	r := rand.New(rand.NewSource(3))
	g := NewGaussianMixture(r, 2, 2, 1000, 0.01)
	vs := g.SampleN(r, 100)
	distinct := map[[2]int]bool{}
	for _, v := range vs {
		distinct[[2]int{int(v[0] / 100), int(v[1] / 100)}] = true
	}
	if len(distinct) < 2 {
		t.Fatalf("expected clustered structure, got %d cells", len(distinct))
	}
	if len(distinct) > 6 {
		t.Fatalf("expected tight clusters, got %d cells", len(distinct))
	}
}

func TestGaussianMixturePanics(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for dim=0")
		}
	}()
	NewGaussianMixture(r, 0, 1, 1, 1)
}

func TestDirichletSumsToOne(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for i := 0; i < 100; i++ {
		p := SymmetricDirichlet(r, 8, 0.2)
		var sum float64
		for _, v := range p {
			if v < 0 {
				t.Fatalf("negative probability %v", v)
			}
			sum += float64(v)
		}
		if math.Abs(sum-1) > 1e-5 {
			t.Fatalf("sum = %v", sum)
		}
	}
}

func TestDirichletConcentration(t *testing.T) {
	// Small alpha should give much spikier draws than large alpha:
	// compare average max element.
	r := rand.New(rand.NewSource(5))
	avgMax := func(alpha float64) float64 {
		var s float64
		for i := 0; i < 200; i++ {
			p := SymmetricDirichlet(r, 16, alpha)
			mx := p[0]
			for _, v := range p {
				if v > mx {
					mx = v
				}
			}
			s += float64(mx)
		}
		return s / 200
	}
	spiky := avgMax(0.05)
	flat := avgMax(50)
	if spiky < flat+0.2 {
		t.Fatalf("alpha=0.05 avg max %v not spikier than alpha=50 avg max %v", spiky, flat)
	}
}

func TestDirichletDegenerate(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	p := Dirichlet(r, []float64{0, 0})
	if p[0] != 0.5 || p[1] != 0.5 {
		t.Fatalf("degenerate Dirichlet = %v, want uniform", p)
	}
}

func TestGammaSampleMoments(t *testing.T) {
	// Gamma(shape, 1) has mean == shape. Check within loose tolerance.
	r := rand.New(rand.NewSource(7))
	for _, shape := range []float64{0.5, 1, 3, 10} {
		var s float64
		const n = 20000
		for i := 0; i < n; i++ {
			s += gammaSample(r, shape)
		}
		mean := s / n
		if math.Abs(mean-shape) > 0.1*shape+0.05 {
			t.Fatalf("Gamma(%v) sample mean %v", shape, mean)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	z := NewZipf(r, 1.5, 10000)
	counts := map[uint64]int{}
	for i := 0; i < 20000; i++ {
		counts[z.Sample()]++
	}
	// Rank 0 must dominate, and the tail must exist.
	if counts[0] < counts[5] {
		t.Fatalf("Zipf not skewed: counts[0]=%d counts[5]=%d", counts[0], counts[5])
	}
	if len(counts) < 50 {
		t.Fatalf("Zipf support too narrow: %d distinct values", len(counts))
	}
}

func TestMarkovText(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	m := NewMarkovText(r, []byte("ACGT"), 2)
	s := m.Generate(r, 10000)
	if len(s) != 10000 {
		t.Fatalf("len = %d", len(s))
	}
	seen := map[byte]int{}
	for _, b := range s {
		seen[b]++
	}
	for _, b := range []byte("ACGT") {
		if seen[b] == 0 {
			t.Fatalf("symbol %c never generated", b)
		}
	}
	for b := range seen {
		switch b {
		case 'A', 'C', 'G', 'T':
		default:
			t.Fatalf("alien symbol %c", b)
		}
	}
}

func TestMarkovTextPanics(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for 1-symbol alphabet")
		}
	}()
	NewMarkovText(r, []byte("A"), 1)
}

func TestNormalInt(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	var sum, n float64
	for i := 0; i < 5000; i++ {
		v := NormalInt(r, 32, 4, 4)
		if v < 4 {
			t.Fatalf("below floor: %d", v)
		}
		sum += float64(v)
		n++
	}
	mean := sum / n
	if math.Abs(mean-32) > 1 {
		t.Fatalf("mean length %v, want ~32", mean)
	}
}

func TestDeterminism(t *testing.T) {
	gen := func() []float32 {
		r := rand.New(rand.NewSource(99))
		g := NewGaussianMixture(r, 8, 3, 10, 1)
		return g.Sample(r)
	}
	a, b := gen(), gen()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different samples")
		}
	}
}
