package knngraph

import (
	"io"

	"repro/internal/codec"
	"repro/internal/space"
)

// Persistence. A proximity graph is its adjacency lists plus the options
// that drive the query-time restart search. The entry-point seed counter is
// saved too, so a loaded graph continues the exact deterministic sequence of
// Search answers the saved one would have produced — roundtrip tests rely on
// this, and it is what "resume serving where the snapshot stopped" means for
// an index whose answers depend on query order.

// kindOf maps the graph's report name to its codec kind tag.
func (g *Graph[T]) kindOf() string {
	if g.name == "nndescent-graph" {
		return codec.KindNNDescent
	}
	return codec.KindSWGraph
}

// Save serializes the graph under its construction kind ("sw-graph" or
// "nndescent-graph"). It must not run concurrently with Search (the seed
// counter snapshot would race).
func (g *Graph[T]) Save(w io.Writer) error {
	cw := codec.NewWriter(w, g.kindOf(), g.sp.Name(), len(g.data))
	cw.Int(g.opts.NN)
	cw.Int(g.opts.InitAttempts)
	cw.Int(g.opts.EfSearch)
	cw.F64(g.opts.Rho)
	cw.F64(g.opts.Delta)
	cw.Int(g.opts.MaxIters)
	cw.Int(g.opts.RandomLinks)
	cw.Int(g.opts.Workers)
	cw.I64(g.opts.Seed)
	cw.I64(g.seedCtr.Load())
	cw.I64(g.buildDist.Load())
	cw.Int(len(g.adj))
	for _, nbrs := range g.adj {
		cw.U32s(nbrs)
	}
	return cw.Close()
}

// Load reads a graph saved by Save over the same data. kind selects which of
// the two construction flavors the file must hold (codec.KindSWGraph or
// codec.KindNNDescent).
func Load[T any](cr *codec.Reader, kind string, sp space.Space[T], data []T) (*Graph[T], error) {
	if err := cr.Expect(kind, sp.Name(), len(data)); err != nil {
		return nil, err
	}
	name := "sw-graph"
	if kind == codec.KindNNDescent {
		name = "nndescent-graph"
	}
	g := &Graph[T]{sp: sp, data: data, name: name}
	g.opts.NN = cr.Int()
	g.opts.InitAttempts = cr.Int()
	g.opts.EfSearch = cr.Int()
	g.opts.Rho = cr.F64()
	g.opts.Delta = cr.F64()
	g.opts.MaxIters = cr.Int()
	g.opts.RandomLinks = cr.Int()
	g.opts.Workers = cr.Int()
	g.opts.Seed = cr.I64()
	g.seedCtr.Store(cr.I64())
	g.buildDist.Store(cr.I64())
	nodes := cr.Int()
	if cr.Err() == nil && (nodes != len(data) || g.opts.InitAttempts <= 0) {
		cr.Corruptf("graph has %d nodes, data set has %d (attempts=%d)",
			nodes, len(data), g.opts.InitAttempts)
	}
	if cr.Err() == nil {
		g.adj = make([][]uint32, nodes)
		for i := range g.adj {
			nbrs := cr.U32s()
			for _, nb := range nbrs {
				if int(nb) >= len(data) {
					cr.Corruptf("node %d links to unknown id %d", i, nb)
					break
				}
			}
			if cr.Err() != nil {
				break
			}
			g.adj[i] = nbrs
		}
	}
	if err := cr.Finish(); err != nil {
		return nil, err
	}
	return g, nil
}
