package lsm

import (
	"context"
	"errors"
	"testing"
)

// TestSearchAppendCtxCanceled: a canceled context stops the scatter before
// any component is searched and surfaces ctx.Err(); the same call on a live
// context still answers. The non-ctx entry points are unaffected.
func TestSearchAppendCtxCanceled(t *testing.T) {
	tree := mustOpen(t, testOptions(t, 0))
	defer tree.Close()
	vecs := randVecs(3, 9)
	for _, v := range vecs[:6] {
		if _, err := tree.Add(encVec(v)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tree.Flush(); err != nil {
		t.Fatal(err)
	}
	for _, v := range vecs[6:] {
		if _, err := tree.Add(encVec(v)); err != nil {
			t.Fatal(err)
		}
	}

	q := randVecs(4, 1)[0]
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out, err := tree.SearchAppendCtx(ctx, nil, nil, q, 3)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled search err = %v, want context.Canceled", err)
	}
	if len(out) != 0 {
		t.Fatalf("canceled search returned %d results", len(out))
	}

	out, err = tree.SearchAppendCtx(context.Background(), nil, nil, q, 3)
	if err != nil || len(out) != 3 {
		t.Fatalf("live search = (%d results, %v), want 3 results", len(out), err)
	}
	if got := tree.Search(nil, q, 3); len(got) != 3 {
		t.Fatalf("non-ctx Search returned %d results", len(got))
	}
}
