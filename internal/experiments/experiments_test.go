package experiments

import (
	"bufio"
	"bytes"
	"io"
	"os"
	"path/filepath"
	"slices"
	"strconv"
	"strings"
	"testing"
)

// small is a fast configuration for harness tests.
var small = Config{N: 600, Queries: 20, Folds: 1, K: 5, Seed: 42}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"sift", "cophir", "imagenet", "wiki-sparse",
		"wiki-8-kl", "wiki-8-js", "wiki-128-kl", "wiki-128-js", "dna",
	}
	names := Names()
	if len(names) != len(want) {
		t.Fatalf("registry has %d combos: %v", len(names), names)
	}
	for _, n := range want {
		if _, ok := Get(n); !ok {
			t.Fatalf("combo %q missing", n)
		}
	}
	if _, ok := Get("nope"); ok {
		t.Fatal("unknown name resolved")
	}
}

func TestTable1RowShape(t *testing.T) {
	r, _ := Get("wiki-8-kl")
	var buf bytes.Buffer
	if err := r.Table1(small, &buf); err != nil {
		t.Fatal(err)
	}
	fields := strings.Split(strings.TrimSpace(buf.String()), "\t")
	if len(fields) != 6 {
		t.Fatalf("table 1 row has %d fields: %q", len(fields), buf.String())
	}
	if fields[0] != "wiki-8-kl" || fields[1] != "kldiv" || fields[2] != "600" || fields[5] != "8" {
		t.Fatalf("row = %q", buf.String())
	}
}

func TestTable2Rows(t *testing.T) {
	r, _ := Get("wiki-8-kl")
	var buf bytes.Buffer
	if err := r.Table2(small, &buf); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	methods := map[string]bool{}
	for sc.Scan() {
		fields := strings.Split(sc.Text(), "\t")
		if len(fields) != 4 {
			t.Fatalf("table 2 row has %d fields: %q", len(fields), sc.Text())
		}
		methods[fields[1]] = true
	}
	for _, m := range []string{"vptree", "sw-graph", "napp", "brute-force-filt"} {
		if !methods[m] {
			t.Fatalf("method %s missing from table 2 (got %v)", m, methods)
		}
	}
}

func TestFigure2Output(t *testing.T) {
	r, _ := Get("sift")
	var buf bytes.Buffer
	cfg := small
	cfg.N = 300
	if err := r.Figure2(cfg, 32, 40, &buf); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	kinds := map[string]int{}
	strata := map[string]int{}
	for sc.Scan() {
		fields := strings.Split(sc.Text(), "\t")
		if len(fields) != 5 {
			t.Fatalf("figure 2 row has %d fields: %q", len(fields), sc.Text())
		}
		kinds[fields[1]]++
		strata[fields[2]]++
		orig, err := strconv.ParseFloat(fields[3], 64)
		if err != nil || orig < 0 {
			t.Fatalf("bad original distance %q", fields[3])
		}
		proj, err := strconv.ParseFloat(fields[4], 64)
		if err != nil || proj < 0 {
			t.Fatalf("bad projected distance %q", fields[4])
		}
	}
	if kinds["perm"] == 0 || kinds["rand"] == 0 {
		t.Fatalf("sift must emit both perm and rand pairs: %v", kinds)
	}
	if strata["random"] == 0 || strata["nn"] == 0 {
		t.Fatalf("both strata required: %v", strata)
	}
}

func TestFigure2NoRandForGenericSpace(t *testing.T) {
	r, _ := Get("dna")
	var buf bytes.Buffer
	cfg := small
	cfg.N = 300
	if err := r.Figure2(cfg, 32, 30, &buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "\trand\t") {
		t.Fatal("dna has no random-projection panel in the paper")
	}
	if !strings.Contains(buf.String(), "\tperm\t") {
		t.Fatal("perm pairs missing")
	}
}

func TestFigure3CurvesMonotone(t *testing.T) {
	r, _ := Get("wiki-8-kl")
	var buf bytes.Buffer
	if err := r.Figure3(small, []int{8, 64}, &buf); err != nil {
		t.Fatal(err)
	}
	// Parse rows: name kind dim recall fraction. Within one (kind, dim)
	// the fraction must not decrease as recall grows.
	type key struct {
		kind string
		dim  string
	}
	last := map[key]float64{}
	lastRecall := map[key]float64{}
	rows := 0
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		rows++
		fields := strings.Split(sc.Text(), "\t")
		if len(fields) != 5 {
			t.Fatalf("figure 3 row has %d fields: %q", len(fields), sc.Text())
		}
		k := key{fields[1], fields[2]}
		recall, _ := strconv.ParseFloat(fields[3], 64)
		frac, _ := strconv.ParseFloat(fields[4], 64)
		if frac <= 0 || frac > 1 {
			t.Fatalf("fraction %v out of (0,1]", frac)
		}
		if prev, ok := last[k]; ok {
			if recall <= lastRecall[k] {
				t.Fatalf("recall not increasing within %v", k)
			}
			if frac+1e-12 < prev {
				t.Fatalf("fraction decreased within %v: %v -> %v", k, prev, frac)
			}
		}
		last[k] = frac
		lastRecall[k] = recall
	}
	if rows != 2*small.K {
		t.Fatalf("expected %d rows, got %d", 2*small.K, rows)
	}
}

func TestFigure3HigherDimSteeper(t *testing.T) {
	// With more pivots the projection is better: the fraction needed for
	// full recall must not be (much) larger.
	r, _ := Get("sift")
	var buf bytes.Buffer
	cfg := small
	cfg.N = 500
	if err := r.Figure3(cfg, []int{4, 128}, &buf); err != nil {
		t.Fatal(err)
	}
	frac := map[string]float64{} // kind/dim -> fraction at full recall
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		fields := strings.Split(sc.Text(), "\t")
		recall, _ := strconv.ParseFloat(fields[3], 64)
		if recall == 1 {
			f, _ := strconv.ParseFloat(fields[4], 64)
			frac[fields[1]+"/"+fields[2]] = f
		}
	}
	if frac["perm/128"] > frac["perm/4"] {
		t.Fatalf("perm dim 128 needs larger fraction (%v) than dim 4 (%v)",
			frac["perm/128"], frac["perm/4"])
	}
}

func TestFigure4Rows(t *testing.T) {
	r, _ := Get("wiki-8-kl")
	var buf bytes.Buffer
	if err := r.Figure4(small, &buf); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	methods := map[string]int{}
	for sc.Scan() {
		fields := strings.Split(sc.Text(), "\t")
		if len(fields) != 9 {
			t.Fatalf("figure 4 row has %d fields: %q", len(fields), sc.Text())
		}
		recall, err := strconv.ParseFloat(fields[3], 64)
		if err != nil || recall < 0 || recall > 1 {
			t.Fatalf("bad recall %q", fields[3])
		}
		imp, err := strconv.ParseFloat(fields[4], 64)
		if err != nil || imp < 0 {
			t.Fatalf("bad improvement %q", fields[4])
		}
		methods[fields[1]]++
	}
	for _, m := range []string{"vptree", "sw-graph", "napp", "brute-force-filt"} {
		if methods[m] == 0 {
			t.Fatalf("method %s missing from figure 4 output: %v", m, methods)
		}
		if methods[m] < 2 {
			t.Fatalf("method %s has fewer than 2 sweep points", m)
		}
	}
}

func TestFigure4IncludesMPLSHOnlyForL2(t *testing.T) {
	var buf bytes.Buffer
	cfg := small
	cfg.N = 400
	r, _ := Get("sift")
	if err := r.Figure4(cfg, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "mplsh") {
		t.Fatal("sift figure 4 must include mplsh")
	}
	buf.Reset()
	r2, _ := Get("dna")
	if err := r2.Figure4(cfg, &buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "mplsh") {
		t.Fatal("dna figure 4 must not include mplsh")
	}
	if !strings.Contains(buf.String(), "brute-force-filt-bin") {
		t.Fatal("dna figure 4 must include the binarized filter")
	}
}

func TestTuneVPTree(t *testing.T) {
	res, err := Tune("wiki-8-kl", "vptree", Config{N: 800, Queries: 40, K: 5, Seed: 2}, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if res.Recall < 0.9 {
		t.Fatalf("tuned recall %.3f below target", res.Recall)
	}
	if !strings.HasPrefix(res.Setting, "alpha=") {
		t.Fatalf("setting = %q", res.Setting)
	}
}

func TestTuneNAPP(t *testing.T) {
	res, err := Tune("sift", "napp", Config{N: 800, Queries: 40, K: 5, Seed: 2}, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(res.Setting, "t=") {
		t.Fatalf("setting = %q", res.Setting)
	}
	if res.Recall <= 0 {
		t.Fatalf("recall = %v", res.Recall)
	}
}

func TestTuneValidation(t *testing.T) {
	if _, err := Tune("nope", "vptree", small, 0.9); err == nil {
		t.Fatal("unknown dataset accepted")
	}
	if _, err := Tune("sift", "nope", small, 0.9); err == nil {
		t.Fatal("unknown tuner accepted")
	}
	if _, err := Tune("sift", "vptree", small, 2); err == nil {
		t.Fatal("bad target accepted")
	}
}

// TestRunMethodsWorkersParity verifies the -workers query path changes only
// timing columns: the deterministic columns (dataset, method, params,
// recall) must be identical to the single-thread protocol.
func TestRunMethodsWorkersParity(t *testing.T) {
	r, _ := Get("wiki-8-kl")
	var serial, batch bytes.Buffer
	cfg := small
	cfg.Workers = 1
	if err := r.RunMethods(cfg, []string{"napp"}, &serial); err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 3
	if err := r.RunMethods(cfg, []string{"napp"}, &batch); err != nil {
		t.Fatal(err)
	}
	sLines := strings.Split(strings.TrimSpace(serial.String()), "\n")
	bLines := strings.Split(strings.TrimSpace(batch.String()), "\n")
	if len(sLines) != len(bLines) || len(sLines) == 0 {
		t.Fatalf("row count mismatch: %d vs %d", len(sLines), len(bLines))
	}
	for i := range sLines {
		sf := strings.Split(sLines[i], "\t")
		bf := strings.Split(bLines[i], "\t")
		for _, col := range []int{0, 1, 2, 3} {
			if sf[col] != bf[col] {
				t.Fatalf("row %d column %d differs across worker counts: %q vs %q",
					i, col, sLines[i], bLines[i])
			}
		}
	}
}

// TestRunMethodsSaveLoadParity runs one method three times: building,
// building + persisting, and warm-starting from the persisted files. All
// three must report identical recall rows, and the warm-start run must
// actually find a file for every fold.
func TestRunMethodsSaveLoadParity(t *testing.T) {
	dir := t.TempDir()
	r, _ := Get("sift")
	cfg := small
	cfg.N = 400
	cfg.Folds = 2
	methods := []string{"napp"}

	recallCols := func(out string) []string {
		var cols []string
		for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
			f := strings.Split(line, "\t")
			cols = append(cols, strings.Join([]string{f[0], f[1], f[2], f[3]}, "\t"))
		}
		return cols
	}

	var plain, saved, warm bytes.Buffer
	if err := r.RunMethods(cfg, methods, &plain); err != nil {
		t.Fatal(err)
	}
	cfgSave := cfg
	cfgSave.SaveIndexDir = dir
	if err := r.RunMethods(cfgSave, methods, &saved); err != nil {
		t.Fatal(err)
	}
	for fold := 0; fold < cfg.Folds; fold++ {
		if _, err := os.Stat(filepath.Join(dir, indexFileName(cfg, "sift", "napp", fold))); err != nil {
			t.Fatalf("fold %d index file missing after -save-index run: %v", fold, err)
		}
	}
	cfgLoad := cfg
	cfgLoad.LoadIndexDir = dir
	if err := r.RunMethods(cfgLoad, methods, &warm); err != nil {
		t.Fatal(err)
	}
	want := recallCols(plain.String())
	for name, out := range map[string]string{"save": saved.String(), "load": warm.String()} {
		got := recallCols(out)
		if !slices.Equal(want, got) {
			t.Fatalf("%s run recall rows differ:\n got %q\nwant %q", name, got, want)
		}
	}

	// A run with a different seed draws different splits; its file key
	// differs, so the warm start must miss the stale files and rebuild
	// (never silently load an index built over another split).
	cfgOther := cfgLoad
	cfgOther.Seed = cfg.Seed + 1
	var rebuilt bytes.Buffer
	if err := r.RunMethods(cfgOther, methods, &rebuilt); err != nil {
		t.Fatalf("warm start with stale-only files should rebuild, got: %v", err)
	}

	// A present-but-corrupt file, however, must fail loudly.
	victim := filepath.Join(dir, indexFileName(cfg, "sift", "napp", 0))
	blob, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(victim, blob[:len(blob)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if err := r.RunMethods(cfgLoad, methods, io.Discard); err == nil {
		t.Fatal("warm start accepted a truncated index file")
	}
}
