// Package lsh implements multi-probe locality-sensitive hashing for the
// Euclidean distance (Lv et al. 2007, with the LSHKit-style setup used as
// the MPLSH baseline in §3.2 of the paper). It applies only to dense
// vectors under L2 — exactly the restriction the paper notes.
//
// Each of L hash tables concatenates M random-projection quantizers
//
//	h(v) = floor((a.v + b) / W)
//
// into a bucket key. At query time, in addition to the query's own bucket,
// the T statistically most promising perturbed buckets are probed per table
// (query-directed probing): perturbation sets are generated in increasing
// order of their expected score with the heap algorithm of Lv et al.
package lsh

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/index"
	"repro/internal/topk"
	"repro/internal/vecmath"
)

// Options configures New.
type Options struct {
	// Tables is L, the number of hash tables. Default 16.
	Tables int
	// Hashes is M, the number of concatenated hash functions per table.
	// Default 12.
	Hashes int
	// Probes is T, the number of additional buckets probed per table.
	// The paper found T = 10 near-optimal. Default 10.
	Probes int
	// Width is the quantization width W. 0 lets New estimate it from a
	// sample of pairwise distances (W = mean distance / 2), following
	// the self-tuning spirit of Dong et al.'s model.
	Width float64
	// Seed drives hash function sampling.
	Seed int64
}

func (o *Options) defaults() {
	if o.Tables <= 0 {
		o.Tables = 16
	}
	if o.Hashes <= 0 {
		o.Hashes = 12
	}
	if o.Probes < 0 {
		o.Probes = 0
	} else if o.Probes == 0 {
		o.Probes = 10
	}
}

// table is one hash table: M projection directions and offsets plus the
// bucket map.
type table struct {
	a       [][]float32 // M x dim projection vectors
	b       []float64   // M offsets in [0, W)
	buckets map[uint64][]uint32
}

// MPLSH is a multi-probe LSH index over dense vectors with L2.
type MPLSH struct {
	data   [][]float32
	dim    int
	w      float64
	tables []table
	opts   Options
}

// New builds the index. All vectors must share the same dimensionality.
func New(data [][]float32, opts Options) (*MPLSH, error) {
	opts.defaults()
	if len(data) == 0 {
		return nil, fmt.Errorf("lsh: empty data set")
	}
	dim := len(data[0])
	if dim == 0 {
		return nil, fmt.Errorf("lsh: zero-dimensional vectors")
	}
	for i, v := range data {
		if len(v) != dim {
			return nil, fmt.Errorf("lsh: vector %d has dim %d, want %d", i, len(v), dim)
		}
	}
	r := rand.New(rand.NewSource(opts.Seed))
	w := opts.Width
	if w <= 0 {
		w = estimateWidth(r, data)
	}
	idx := &MPLSH{data: data, dim: dim, w: w, opts: opts}
	idx.tables = make([]table, opts.Tables)
	for t := range idx.tables {
		tb := table{
			a:       make([][]float32, opts.Hashes),
			b:       make([]float64, opts.Hashes),
			buckets: make(map[uint64][]uint32),
		}
		for h := 0; h < opts.Hashes; h++ {
			v := make([]float32, dim)
			for d := range v {
				v[d] = float32(r.NormFloat64())
			}
			tb.a[h] = v
			tb.b[h] = r.Float64() * w
		}
		idx.tables[t] = tb
	}
	// Insert all points.
	keys := make([]int32, opts.Hashes)
	for id, v := range data {
		for t := range idx.tables {
			idx.hashInto(&idx.tables[t], v, keys, nil)
			k := bucketKey(keys)
			idx.tables[t].buckets[k] = append(idx.tables[t].buckets[k], uint32(id))
		}
	}
	return idx, nil
}

// estimateWidth samples pairwise distances and returns mean/2.
func estimateWidth(r *rand.Rand, data [][]float32) float64 {
	const pairs = 200
	var sum float64
	var n int
	for i := 0; i < pairs; i++ {
		a := data[r.Intn(len(data))]
		b := data[r.Intn(len(data))]
		if d := vecmath.L2(a, b); d > 0 {
			sum += d
			n++
		}
	}
	if n == 0 {
		return 1
	}
	return sum / float64(n) / 2
}

// hashInto computes the M bucket coordinates of v for table tb. When fracs
// is non-nil it also records, per hash, the distance from the projection to
// the lower quantization boundary, needed for query-directed probing.
func (x *MPLSH) hashInto(tb *table, v []float32, keys []int32, fracs []float64) {
	for h := range tb.a {
		f := (vecmath.Dot(tb.a[h], v) + tb.b[h]) / x.w
		fl := math.Floor(f)
		keys[h] = int32(fl)
		if fracs != nil {
			fracs[h] = f - fl // in [0, 1): distance to lower boundary / W
		}
	}
}

// bucketKey mixes the M coordinates into a 64-bit map key (FNV-1a).
func bucketKey(keys []int32) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, k := range keys {
		u := uint32(k)
		for s := 0; s < 32; s += 8 {
			h ^= uint64((u >> s) & 0xff)
			h *= prime64
		}
	}
	return h
}

// Name implements index.Index.
func (x *MPLSH) Name() string { return "mplsh" }

// SetProbes adjusts T, the number of extra buckets probed per table (a
// query-time knob). Not safe to call concurrently with Search.
func (x *MPLSH) SetProbes(t int) {
	if t >= 0 {
		x.opts.Probes = t
	}
}

// Probes returns the current probe count T.
func (x *MPLSH) Probes() int { return x.opts.Probes }

// Stats implements index.Sized.
func (x *MPLSH) Stats() index.Stats {
	var bytes int64
	for _, tb := range x.tables {
		bytes += int64(x.opts.Hashes) * int64(x.dim) * 4
		for _, b := range tb.buckets {
			bytes += 8 + int64(len(b))*4
		}
	}
	return index.Stats{Bytes: bytes}
}

// perturbation is one element of a perturbation set: hash position i and
// direction delta (+1 or -1), with its score (squared boundary distance).
type perturbation struct {
	i     int
	delta int32
	score float64
}

// probeSet is a candidate perturbation set: indices into the sorted
// perturbation array.
type probeSet struct {
	members []int
	score   float64
}

// Search implements index.Index: probe own + T perturbed buckets per table,
// dedupe candidates, refine with true L2.
func (x *MPLSH) Search(query []float32, k int) []topk.Neighbor {
	if k <= 0 {
		return nil
	}
	seen := make(map[uint32]struct{})
	res := topk.NewQueue(k)
	keys := make([]int32, x.opts.Hashes)
	fracs := make([]float64, x.opts.Hashes)
	probe := func(tb *table, key uint64) {
		for _, id := range tb.buckets[key] {
			if _, dup := seen[id]; dup {
				continue
			}
			seen[id] = struct{}{}
			res.Push(id, vecmath.L2(x.data[id], query))
		}
	}
	pkeys := make([]int32, x.opts.Hashes)
	for t := range x.tables {
		tb := &x.tables[t]
		x.hashInto(tb, query, keys, fracs)
		probe(tb, bucketKey(keys))
		for _, set := range x.probeSets(fracs) {
			copy(pkeys, keys)
			for _, p := range set {
				pkeys[p.i] += p.delta
			}
			probe(tb, bucketKey(pkeys))
		}
	}
	return res.Results()
}

// probeSets generates the T lowest-score perturbation sets for the current
// query, using the shift/expand heap enumeration of Lv et al. A set may
// contain at most one perturbation per hash position.
func (x *MPLSH) probeSets(fracs []float64) [][]perturbation {
	m := x.opts.Hashes
	t := x.opts.Probes
	if t == 0 {
		return nil
	}
	// 2M candidate perturbations sorted by score. For hash i, moving to
	// the lower bucket (-1) costs frac^2, to the upper (+1) costs
	// (1-frac)^2 (distances normalized by W).
	perts := make([]perturbation, 0, 2*m)
	for i := 0; i < m; i++ {
		perts = append(perts,
			perturbation{i: i, delta: -1, score: fracs[i] * fracs[i]},
			perturbation{i: i, delta: +1, score: (1 - fracs[i]) * (1 - fracs[i])},
		)
	}
	sort.Slice(perts, func(a, b int) bool { return perts[a].score < perts[b].score })

	valid := func(members []int) bool {
		used := make(map[int]bool, len(members))
		for _, j := range members {
			if j >= len(perts) {
				return false
			}
			if used[perts[j].i] {
				return false
			}
			used[perts[j].i] = true
		}
		return true
	}
	scoreOf := func(members []int) float64 {
		var s float64
		for _, j := range members {
			s += perts[j].score
		}
		return s
	}

	var heap []probeSet
	push := func(ps probeSet) {
		heap = append(heap, ps)
		i := len(heap) - 1
		for i > 0 {
			p := (i - 1) / 2
			if heap[p].score <= heap[i].score {
				break
			}
			heap[p], heap[i] = heap[i], heap[p]
			i = p
		}
	}
	pop := func() probeSet {
		top := heap[0]
		n := len(heap) - 1
		heap[0] = heap[n]
		heap = heap[:n]
		i := 0
		for {
			l, r := 2*i+1, 2*i+2
			small := i
			if l < n && heap[l].score < heap[small].score {
				small = l
			}
			if r < n && heap[r].score < heap[small].score {
				small = r
			}
			if small == i {
				break
			}
			heap[i], heap[small] = heap[small], heap[i]
			i = small
		}
		return top
	}

	push(probeSet{members: []int{0}, score: perts[0].score})
	out := make([][]perturbation, 0, t)
	for len(out) < t && len(heap) > 0 {
		cur := pop()
		if valid(cur.members) {
			set := make([]perturbation, len(cur.members))
			for i, j := range cur.members {
				set[i] = perts[j]
			}
			out = append(out, set)
		}
		// Shift: advance the largest member by one. Expand: add the
		// next perturbation after the largest member.
		last := cur.members[len(cur.members)-1]
		if last+1 < len(perts) {
			shift := append(append([]int(nil), cur.members[:len(cur.members)-1]...), last+1)
			push(probeSet{members: shift, score: scoreOf(shift)})
			expand := append(append([]int(nil), cur.members...), last+1)
			push(probeSet{members: expand, score: scoreOf(expand)})
		}
	}
	return out
}
