// Command shardsplit is the offline partitioner of the sharded serving
// tier: it splits a synthetic corpus into S deterministic shard corpora,
// builds one index per shard, and writes everything a shard fleet needs to
// boot —
//
//	out/shard0/<set>.psix + <set>.json    (servable by: permserve -dir out/shard0)
//	out/shard1/...
//	out/<set>.shardset.json               (set manifest: partitioner, CRCs, generation)
//
// Each shard directory is a complete permserve index-set directory whose
// sidecar manifest carries the shard stamp, so the serving daemon carves
// the right corpus subset and answers with corpus-global ids; permrouter
// then merges per-shard answers into exactly what one unsharded index
// would return (see internal/router). With -shards 1 the output is an
// unsharded baseline over the full corpus — handy as the reference side of
// an A/B check (scripts/shard_smoke.sh does exactly that).
//
// Usage:
//
//	shardsplit -out idx/ -set dna -dataset dna -n 2000 -shards 2 -method vptree
//	shardsplit -out idx/ -set sift -dataset sift -n 5000 -shards 3 -method napp -partitioner round-robin
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	permsearch "repro"
	"repro/internal/dataset"
	"repro/internal/server"
	"repro/internal/shard"
	"repro/internal/space"
)

func main() {
	out := flag.String("out", "", "output directory (required)")
	set := flag.String("set", "", "shard-set name; also the served index name (required)")
	ds := flag.String("dataset", "", "corpus generator: sift, cophir, dna, wiki-sparse, imagenet, wiki-<topics> (required)")
	n := flag.Int("n", 5000, "full corpus size")
	seed := flag.Int64("seed", 42, "corpus + index construction seed")
	shards := flag.Int("shards", 2, "shard count S (1 writes an unsharded baseline)")
	partitioner := flag.String("partitioner", string(shard.Hash), "id->shard assignment: hash or round-robin")
	method := flag.String("method", "vptree", "index kind per shard: "+strings.Join(methodNames, ", "))
	generation := flag.Int64("generation", 1, "snapshot generation recorded in the manifests")
	flag.Parse()

	log.SetFlags(0)
	log.SetPrefix("shardsplit: ")
	if *out == "" || *set == "" || *ds == "" {
		fmt.Fprintln(os.Stderr, "shardsplit: -out, -set and -dataset are required")
		flag.Usage()
		os.Exit(2)
	}
	p, err := shard.ParsePartitioner(*partitioner)
	if err != nil {
		log.Fatal(err)
	}
	if *shards <= 0 || *n <= 0 {
		log.Fatalf("-shards and -n must be positive")
	}
	spec := spec{
		out: *out, set: *set, dataset: *ds, n: *n, seed: *seed,
		shards: *shards, partitioner: p, method: *method, generation: *generation,
	}
	if err := split(spec); err != nil {
		log.Fatal(err)
	}
}

// spec carries the validated flags.
type spec struct {
	out, set, dataset string
	n                 int
	seed              int64
	shards            int
	partitioner       shard.Partitioner
	method            string
	generation        int64
}

// split dispatches on the dataset's object type, mirroring the serving
// catalog's generator registry (internal/server).
func split(sp spec) error {
	switch {
	case sp.dataset == "sift":
		return splitTyped(sp, dataset.SIFT(sp.seed, sp.n), permsearch.L2{})
	case sp.dataset == "cophir":
		return splitTyped(sp, dataset.CoPhIR(sp.seed, sp.n), permsearch.L2{})
	case sp.dataset == "dna":
		return splitTyped(sp, dataset.DNA(sp.seed, sp.n, dataset.DNAOptions{}), permsearch.NormalizedLevenshtein{})
	case sp.dataset == "wiki-sparse":
		return splitTyped(sp, dataset.WikiSparse(sp.seed, sp.n, dataset.WikiSparseOptions{}), permsearch.CosineDistance{})
	case sp.dataset == "imagenet":
		return splitTyped(sp, dataset.ImageNet(sp.seed, sp.n, dataset.SignatureOptions{}), permsearch.SQFD{})
	case strings.HasPrefix(sp.dataset, "wiki-"):
		topics, err := strconv.Atoi(strings.TrimPrefix(sp.dataset, "wiki-"))
		if err != nil || topics <= 1 {
			return fmt.Errorf("dataset %q is not wiki-<topics>", sp.dataset)
		}
		return splitTyped(sp, dataset.WikiLDA(sp.seed, sp.n, topics), permsearch.KLDivergence{})
	default:
		return fmt.Errorf("unknown dataset %q", sp.dataset)
	}
}

// methodNames lists the per-shard index kinds shardsplit can build.
var methodNames = []string{"seqscan", "vptree", "napp", "sw-graph", "brute-force-filt", "brute-force-filt-bin", "mi-file"}

// buildMethod constructs one index kind over a shard corpus with the
// library defaults (tune offline with annbench; pass query-time params at
// serving time via the sidecar manifest's "params").
func buildMethod[T any](method string, sp permsearch.Space[T], data []T, seed int64) (permsearch.Index[T], error) {
	switch method {
	case "seqscan":
		return permsearch.NewSeqScan(sp, data), nil
	case "vptree":
		return permsearch.NewVPTree(sp, data, permsearch.VPTreeOptions{Seed: seed})
	case "napp":
		return permsearch.NewNAPP(sp, data, permsearch.NAPPOptions{Seed: seed})
	case "sw-graph":
		return permsearch.NewSWGraph(sp, data, permsearch.GraphOptions{Workers: 1, Seed: seed})
	case "brute-force-filt":
		return permsearch.NewBruteForceFilter(sp, data, permsearch.BruteForceOptions{Seed: seed})
	case "brute-force-filt-bin":
		return permsearch.NewBinFilter(sp, data, permsearch.BinFilterOptions{Seed: seed})
	case "mi-file":
		return permsearch.NewMIFile(sp, data, permsearch.MIFileOptions{Seed: seed})
	default:
		return nil, fmt.Errorf("unknown method %q (known: %s)", method, strings.Join(methodNames, ", "))
	}
}

// splitTyped does the work for one object type: partition, build a shard
// index per subset, write servable shard directories, then the set
// manifest.
func splitTyped[T any](sp spec, data []T, dist space.Space[T]) error {
	ids, err := shard.IDs(sp.partitioner, len(data), sp.shards)
	if err != nil {
		return err
	}
	man := &shard.SetManifest{
		Set: sp.set, Dataset: sp.dataset, Seed: sp.seed, N: len(data),
		Partitioner: sp.partitioner, Generation: sp.generation,
	}
	for s := range ids {
		subset := shard.Subset(data, ids[s])
		idx, err := buildMethod(sp.method, dist, subset, sp.seed)
		if err != nil {
			return fmt.Errorf("shard %d: %w", s, err)
		}
		if man.Kind == "" {
			man.Kind = idx.Name()
		}

		dir := filepath.Join(sp.out, fmt.Sprintf("shard%d", s))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
		file := filepath.Join(dir, sp.set+".psix")
		if err := permsearch.SaveIndexFile(file, idx); err != nil {
			return fmt.Errorf("shard %d: %w", s, err)
		}

		side := server.Manifest{Dataset: sp.dataset, Seed: sp.seed, N: len(data), Generation: sp.generation}
		if sp.shards > 1 {
			// S=1 stays unstamped: a true unsharded baseline.
			side.Shard = &shard.Info{Set: sp.set, Partitioner: sp.partitioner, Shards: sp.shards, Index: s}
		}
		blob, err := json.MarshalIndent(side, "", "  ")
		if err != nil {
			return err
		}
		sidePath := filepath.Join(dir, sp.set+".json")
		if err := os.WriteFile(sidePath, append(blob, '\n'), 0o644); err != nil {
			return err
		}

		crc, err := shard.FileChecksum(file)
		if err != nil {
			return err
		}
		rel := func(p string) string { r, _ := filepath.Rel(sp.out, p); return r }
		man.Shards = append(man.Shards, shard.SetShard{
			Index: s, File: rel(file), Manifest: rel(sidePath), N: len(subset), CRC32C: crc,
		})
		log.Printf("wrote %s (%s, %d of %d points, crc32c %08x)", file, sp.method, len(subset), len(data), crc)
	}
	path, err := shard.WriteSetManifest(sp.out, man)
	if err != nil {
		return err
	}
	log.Printf("wrote %s (set %q: %d shards, partitioner %s, generation %d)",
		path, sp.set, sp.shards, sp.partitioner, sp.generation)
	return nil
}
