// Command annbench is the free-form evaluation harness: run any method (or
// all of them) on any of the nine data set / distance combinations and
// report recall, improvement in efficiency, query time, build time and
// index size.
//
// Usage:
//
//	annbench -dataset sift [-method napp] [-n 5000] [-queries 100] [-folds 1] [-k 10] [-workers 1]
//	annbench -dataset sift -save-index idx/   # first run: build + persist
//	annbench -dataset sift -load-index idx/   # later runs: skip construction
//	annbench -list
//
// -workers fans evaluation queries out over the batch engine
// (internal/engine); results are identical to the single-thread protocol,
// and the qps column reports the wall-clock throughput achieved.
//
// -save-index / -load-index persist built indexes in the versioned binary
// format of internal/codec, so repeated benchmark runs over the same
// seed/n/folds pay the load cost instead of full construction.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	dataset := flag.String("dataset", "", "data set name (required unless -list)")
	method := flag.String("method", "", "comma-separated methods (default: all for the data set)")
	n := flag.Int("n", 5000, "points")
	queries := flag.Int("queries", 100, "query count per split")
	folds := flag.Int("folds", 1, "random splits")
	k := flag.Int("k", 10, "neighbors per query")
	seed := flag.Int64("seed", 1, "random seed")
	workers := flag.Int("workers", 1, "goroutines running evaluation queries (1 = the paper's single-thread protocol, -1 = GOMAXPROCS); results are identical, only throughput changes")
	saveIndex := flag.String("save-index", "", "directory to persist every built index into (internal/codec format)")
	loadIndex := flag.String("load-index", "", "directory to warm-start indexes from, skipping construction when a matching file exists (same seed/n/folds required)")
	shards := flag.Int("shards", 1, "evaluate through an in-process scatter-gather router over this many shard indexes (the sharded serving topology, without the sockets); 1 = unsharded")
	shardBy := flag.String("shard-by", "hash", "shard partitioner: hash or round-robin")
	list := flag.Bool("list", false, "list data sets and their methods, then exit")
	flag.Parse()

	cfg := experiments.Config{N: *n, Queries: *queries, Folds: *folds, K: *k, Seed: *seed, Workers: *workers,
		SaveIndexDir: *saveIndex, LoadIndexDir: *loadIndex, Shards: *shards, ShardBy: *shardBy}
	if *list {
		for _, name := range experiments.Names() {
			r, _ := experiments.Get(name)
			fmt.Printf("%s (%s): %s\n", name, r.Distance(), strings.Join(r.Methods(cfg), ", "))
		}
		return
	}
	r, ok := experiments.Get(*dataset)
	if !ok {
		fmt.Fprintf(os.Stderr, "annbench: unknown dataset %q (known: %s)\n",
			*dataset, strings.Join(experiments.Names(), ", "))
		os.Exit(2)
	}
	var methods []string
	if *method != "" {
		methods = strings.Split(*method, ",")
	}
	fmt.Println("# dataset\tmethod\tparams\trecall\timprovement\tquery-time\tqps\tbuild-time\tindex-size")
	if err := r.RunMethods(cfg, methods, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "annbench: %v\n", err)
		os.Exit(1)
	}
}
