// Package dataset generates the synthetic stand-ins for the paper's nine
// data set / distance combinations (Table 1). The original corpora (CoPhIR,
// TEXMEX SIFT, ImageNet LSVRC-2014, Wikipedia dumps processed with GENSIM,
// the human genome) are proprietary or impractically large; each generator
// here preserves the property its experiments exercise — dimensionality,
// sparsity, cluster structure, and the relative cost of the distance
// function. See DESIGN.md §2.4 for the substitution rationale.
//
// All generators are deterministic functions of (seed, n).
package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/cluster"
	"repro/internal/space"
	"repro/internal/synth"
)

// Info summarizes a generated data set the way Table 1 of the paper does.
type Info struct {
	Name     string // e.g. "sift"
	Distance string // e.g. "l2"
	N        int
	Dims     string // "282", "128", or "N/A" for variable-size objects
}

// CoPhIR generates n MPEG7-descriptor-like vectors: 282 dimensions, values
// in [0, 255], drawn from an anisotropic Gaussian mixture. Compared with L2
// (and, normalized, with L1 for the Chávez et al. cross-check).
func CoPhIR(seed int64, n int) [][]float32 {
	r := rand.New(rand.NewSource(seed))
	g := synth.NewGaussianMixture(r, 282, 32, 255, 28).Clamp(0, 255)
	return g.SampleN(r, n)
}

// SIFT generates n SIFT-like local descriptors: 128 dimensions, values in
// [0, 255], Gaussian mixture with more, tighter clusters than CoPhIR
// (gradient histograms concentrate strongly).
func SIFT(seed int64, n int) [][]float32 {
	r := rand.New(rand.NewSource(seed))
	g := synth.NewGaussianMixture(r, 128, 64, 255, 20).Clamp(0, 255)
	return g.SampleN(r, n)
}

// SignatureOptions tunes the ImageNet signature pipeline. Zero values pick
// paper-faithful defaults scaled to this reproduction's hardware budget.
type SignatureOptions struct {
	// Classes is the number of latent image classes (prototype blob sets).
	Classes int
	// Blobs is the number of latent feature blobs per image.
	Blobs int
	// Pixels is the number of pixel features sampled per image. The
	// paper samples 10^4; the default here is 300, which preserves the
	// k-means pipeline while fitting the time budget.
	Pixels int
	// Clusters is the k of the per-image k-means; the paper uses 20.
	Clusters int
	// KMeansIters caps Lloyd iterations per image.
	KMeansIters int
}

func (o *SignatureOptions) defaults() {
	if o.Classes <= 0 {
		o.Classes = 50
	}
	if o.Blobs <= 0 {
		o.Blobs = 5
	}
	if o.Pixels <= 0 {
		o.Pixels = 300
	}
	if o.Clusters <= 0 {
		o.Clusters = 20
	}
	if o.KMeansIters <= 0 {
		o.KMeansIters = 8
	}
}

// signatureDim is the pixel-feature dimensionality: three color, two
// position, and two texture dimensions, as in Beecks' extraction.
const signatureDim = 7

// ImageNet generates n SQFD image signatures by reproducing the paper's
// construction pipeline: each synthetic image is a mixture of latent
// 7-dimensional feature blobs; Pixels features are sampled and clustered
// with k-means into Clusters clusters; each cluster becomes a signature
// entry (centroid, weight = cluster fraction). Images of the same latent
// class share perturbed blob prototypes, giving the class structure k-NN
// search needs.
func ImageNet(seed int64, n int, opts SignatureOptions) []space.Signature {
	opts.defaults()
	r := rand.New(rand.NewSource(seed))

	// Class prototypes: Blobs blob centers in [0,1]^7 per class.
	protos := make([][][]float32, opts.Classes)
	for c := range protos {
		blobs := make([][]float32, opts.Blobs)
		for b := range blobs {
			v := make([]float32, signatureDim)
			for d := range v {
				v[d] = float32(r.Float64())
			}
			blobs[b] = v
		}
		protos[c] = blobs
	}

	sigs := make([]space.Signature, n)
	pixels := make([]float32, opts.Pixels*signatureDim)
	for i := 0; i < n; i++ {
		class := r.Intn(opts.Classes)
		// Perturb the class blobs for this particular image.
		blobs := make([][]float32, opts.Blobs)
		for b, proto := range protos[class] {
			v := make([]float32, signatureDim)
			for d := range v {
				v[d] = proto[d] + float32(r.NormFloat64()*0.05)
			}
			blobs[b] = v
		}
		// Sample pixel features around the blobs.
		for p := 0; p < opts.Pixels; p++ {
			blob := blobs[r.Intn(opts.Blobs)]
			for d := 0; d < signatureDim; d++ {
				pixels[p*signatureDim+d] = blob[d] + float32(r.NormFloat64()*0.08)
			}
		}
		res, err := cluster.KMeans(r, pixels, signatureDim, opts.Clusters, opts.KMeansIters)
		if err != nil {
			panic(fmt.Sprintf("dataset: k-means on synthetic image: %v", err))
		}
		weights := make([]float32, res.K())
		for c, sz := range res.Sizes {
			weights[c] = float32(sz) / float32(opts.Pixels)
		}
		sig, err := space.NewSignature(weights, res.Centroids, signatureDim)
		if err != nil {
			panic(fmt.Sprintf("dataset: signature: %v", err))
		}
		sigs[i] = sig
	}
	return sigs
}

// WikiSparseOptions tunes the sparse TF-IDF generator.
type WikiSparseOptions struct {
	Vocab  int // vocabulary size; paper: 10^5
	Topics int // latent topics
	Tokens int // word tokens per document (-> ~150 distinct terms)
}

func (o *WikiSparseOptions) defaults() {
	if o.Vocab <= 0 {
		o.Vocab = 100000
	}
	if o.Topics <= 0 {
		o.Topics = 40
	}
	if o.Tokens <= 0 {
		o.Tokens = 220
	}
}

// WikiSparse generates n sparse TF-IDF document vectors over a Zipfian
// vocabulary: each document mixes 1-3 latent topics, draws Tokens word
// tokens from per-topic Zipf distributions, and is weighted by a smooth IDF
// over the global word rank. The result averages ~150 non-zero entries over
// a 10^5-term vocabulary, matching Table 1.
func WikiSparse(seed int64, n int, opts WikiSparseOptions) []space.SparseVector {
	opts.defaults()
	r := rand.New(rand.NewSource(seed))
	zipf := synth.NewZipf(r, 1.25, uint64(opts.Vocab))

	// Per-topic vocabulary permutation: the same Zipf rank maps to
	// different words in different topics, so topics occupy different
	// subspaces. Storing full permutations costs Topics*Vocab int32.
	topicPerm := make([][]int32, opts.Topics)
	for t := range topicPerm {
		p := r.Perm(opts.Vocab)
		tp := make([]int32, opts.Vocab)
		for i, v := range p {
			tp[i] = int32(v)
		}
		topicPerm[t] = tp
	}

	docs := make([]space.SparseVector, n)
	counts := map[int32]int{}
	for i := 0; i < n; i++ {
		clear(counts)
		// 1-3 topics with random mixture proportions.
		nt := 1 + r.Intn(3)
		tops := make([]int, nt)
		for j := range tops {
			tops[j] = r.Intn(opts.Topics)
		}
		for tok := 0; tok < opts.Tokens; tok++ {
			t := tops[r.Intn(nt)]
			word := topicPerm[t][zipf.Sample()]
			counts[word]++
		}
		idx := make([]int32, 0, len(counts))
		val := make([]float32, 0, len(counts))
		for w, c := range counts {
			idx = append(idx, w)
			// log-scaled TF x smooth IDF by global word "rank"
			// (rank unknown post-permutation; we use the word id
			// as a proxy since ids are assigned uniformly).
			tf := 1 + math.Log(float64(c))
			idf := math.Log(2 + float64(opts.Vocab)/(2+float64(w)))
			val = append(val, float32(tf*idf))
		}
		sv, err := space.NewSparseVector(idx, val)
		if err != nil {
			panic(fmt.Sprintf("dataset: sparse vector: %v", err))
		}
		docs[i] = sv
	}
	return docs
}

// WikiLDA generates n LDA-like topic histograms over the given number of
// topics (8 or 128 in the paper). Documents cluster around 1-2 dominant
// topics (boosted Dirichlet concentration); zeros are floored at 1e-5 by
// space.NewHistogram exactly as the paper's preprocessing does.
func WikiLDA(seed int64, n, topics int) []space.Histogram {
	if topics <= 1 {
		panic("dataset: topics must be > 1")
	}
	r := rand.New(rand.NewSource(seed))
	alpha := make([]float64, topics)
	docs := make([]space.Histogram, n)
	for i := 0; i < n; i++ {
		for t := range alpha {
			alpha[t] = 0.08
		}
		// One or two dominant topics.
		alpha[r.Intn(topics)] += 4
		if r.Float64() < 0.5 {
			alpha[r.Intn(topics)] += 2
		}
		docs[i] = space.NewHistogram(synth.Dirichlet(r, alpha))
	}
	return docs
}

// DNAOptions tunes the DNA substring sampler.
type DNAOptions struct {
	GenomeLen int     // synthetic chromosome length; default max(1e6, 64*n)
	MeanLen   float64 // substring mean length; paper: 32
	SDLen     float64 // substring length std dev; paper: 4
}

func (o *DNAOptions) defaults(n int) {
	if o.GenomeLen <= 0 {
		o.GenomeLen = 1 << 20
		if want := 64 * n; want > o.GenomeLen {
			o.GenomeLen = want
		}
	}
	if o.MeanLen <= 0 {
		o.MeanLen = 32
	}
	if o.SDLen <= 0 {
		o.SDLen = 4
	}
}

// DNA generates n short reads by sampling substrings (length ~ N(32, 4),
// floored at 8) from a single order-2 Markov synthetic genome, mirroring the
// paper's sampling of the human genome. Compared with the normalized
// Levenshtein distance.
func DNA(seed int64, n int, opts DNAOptions) [][]byte {
	opts.defaults(n)
	r := rand.New(rand.NewSource(seed))
	chain := synth.NewMarkovText(r, []byte("ACGT"), 3)
	genome := chain.Generate(r, opts.GenomeLen)

	seqs := make([][]byte, n)
	for i := 0; i < n; i++ {
		l := synth.NormalInt(r, opts.MeanLen, opts.SDLen, 8)
		if l > len(genome) {
			l = len(genome)
		}
		start := r.Intn(len(genome) - l + 1)
		seq := make([]byte, l)
		copy(seq, genome[start:start+l])
		seqs[i] = seq
	}
	return seqs
}
