// Command permserve is the serving daemon: it warm-starts a named set of
// saved indexes from a directory (one .psix file + one .json sidecar
// manifest per index, see internal/server.Manifest) and answers k-NN
// queries over HTTP.
//
// Usage:
//
//	permserve -write-demo -dir demo/        # build a small demo index set
//	permserve -dir demo/ -addr :8080        # serve it
//
//	curl localhost:8080/healthz
//	curl localhost:8080/v1/indexes
//	curl localhost:8080/statusz
//	curl -d '{"query": "ACGTACGTAC", "k": 3}' localhost:8080/v1/indexes/dna-vptree/search
//	curl -d '{"queries": ["ACGT", "TTTT"], "k": 3}' localhost:8080/v1/indexes/dna-vptree/search
//	curl -XPOST localhost:8080/v1/indexes/dna-vptree/reload
//
// The demo set includes a mutable index ("sift-mutable"): adds and deletes
// are WAL-durable the moment they are acknowledged, and flush seals the
// memtable into an immutable tier (see internal/lsm):
//
//	curl -d '{"object": [0.1, 0.2, ...]}' localhost:8080/v1/indexes/sift-mutable/add
//	curl -d '{"ids": [1500]}' localhost:8080/v1/indexes/sift-mutable/delete
//	curl -XPOST localhost:8080/v1/indexes/sift-mutable/flush
//
// -addr supports port 0; the actually bound address is logged, which the
// smoke test uses to serve on a free port. SIGINT/SIGTERM shut down
// gracefully: in-flight requests finish, new connections are refused.
//
// -pprof-addr (empty by default) exposes net/http/pprof on a separate
// listener, and /statusz reports Go runtime memory/GC counters, so the
// serving-side allocation behavior of the query hot path is observable in
// production: profile with
//
//	go tool pprof http://127.0.0.1:6060/debug/pprof/heap
//
// -mutex-profile-fraction and -block-profile-rate turn on the runtime's
// contention profilers (mutex and blocking profiles under /debug/pprof/),
// both off by default because sampling costs the hot path. GET /metrics
// serves counters, per-stage timing attribution and latency histograms in
// Prometheus text format (see README "Observability");
// -slow-query-threshold logs a rate-limited JSON line, with the per-stage
// breakdown, for every request slower than the threshold.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/faultfs"
	"repro/internal/index"
	"repro/internal/obs"
	"repro/internal/persist"
	"repro/internal/seqscan"
	"repro/internal/server"
	"repro/internal/space"
	"repro/internal/vfs"
	"repro/internal/vptree"
)

func main() {
	dir := flag.String("dir", "", "index set directory: <name>.psix + <name>.json per index (required)")
	addr := flag.String("addr", "127.0.0.1:8080", "listen address (port 0 picks a free port; the bound address is logged)")
	workers := flag.Int("workers", 0, "goroutines per batch request (<= 0: GOMAXPROCS)")
	timeout := flag.Duration("timeout", 10*time.Second, "per-request execution budget (0: none)")
	pprofAddr := flag.String("pprof-addr", "", "listen address for net/http/pprof profiling endpoints (empty: disabled); keep it on a loopback or otherwise private port")
	mutexFraction := flag.Int("mutex-profile-fraction", 0, "sample 1/n of mutex contention events for /debug/pprof/mutex (0: disabled)")
	blockRate := flag.Int("block-profile-rate", 0, "sample blocking events lasting >= n ns for /debug/pprof/block (0: disabled)")
	slowThreshold := flag.Duration("slow-query-threshold", 0, "log a JSON slow_query line, with per-stage timing, for requests slower than this (0: disabled)")
	slowEvery := flag.Duration("slow-query-every", time.Second, "rate limit between slow_query lines")
	writeDemo := flag.Bool("write-demo", false, "write a small demo index set into -dir and exit")
	flag.Parse()

	log.SetFlags(log.LstdFlags | log.Lmicroseconds)
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "permserve: -dir is required (try: permserve -write-demo -dir demo/)")
		os.Exit(2)
	}
	if *writeDemo {
		if err := writeDemoSet(*dir); err != nil {
			log.Fatalf("permserve: writing demo set: %v", err)
		}
		return
	}

	if *mutexFraction > 0 {
		runtime.SetMutexProfileFraction(*mutexFraction)
		log.Printf("permserve: mutex profiling on (fraction 1/%d)", *mutexFraction)
	}
	if *blockRate > 0 {
		runtime.SetBlockProfileRate(*blockRate)
		log.Printf("permserve: block profiling on (rate %dns)", *blockRate)
	}
	if *pprofAddr != "" {
		// A dedicated mux on a separate listener: profiling never shares a
		// port with the serving API, so exposing one cannot expose the
		// other. CPU/heap/goroutine profiles are how serving-side
		// allocation wins (see README "Performance") are verified live.
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			log.Fatalf("permserve: pprof listener: %v", err)
		}
		pmux := http.NewServeMux()
		pmux.HandleFunc("/debug/pprof/", pprof.Index)
		pmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		log.Printf("permserve: pprof on http://%s/debug/pprof/", pln.Addr())
		go func() {
			if err := (&http.Server{Handler: pmux}).Serve(pln); err != nil {
				log.Printf("permserve: pprof server: %v", err)
			}
		}()
	}

	// PERMSERVE_FAULT_FS routes the mutable tier's storage I/O through a
	// fault-injecting filesystem (see internal/faultfs.Parse for the rule
	// spec). A fault drill knob for scripts/fault_smoke.sh — never set it in
	// production.
	var storage vfs.FS
	if spec := os.Getenv("PERMSERVE_FAULT_FS"); spec != "" {
		ffs, err := faultfs.Parse(spec)
		if err != nil {
			log.Fatalf("permserve: PERMSERVE_FAULT_FS: %v", err)
		}
		log.Printf("permserve: FAULT INJECTION ARMED (PERMSERVE_FAULT_FS=%s)", spec)
		storage = ffs
	}

	reg, err := server.OpenDirFS(*dir, storage)
	if err != nil {
		log.Fatalf("permserve: %v", err)
	}
	for _, name := range reg.Names() {
		log.Printf("permserve: serving index %q", name)
	}
	srv := server.New(reg, server.Options{
		Workers:            *workers,
		Timeout:            *timeout,
		Metrics:            obs.Default(),
		SlowQueryThreshold: *slowThreshold,
		SlowQueryEvery:     *slowEvery,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("permserve: %v", err)
	}
	log.Printf("permserve: listening on http://%s (%d indexes)", ln.Addr(), len(reg.Names()))

	hs := &http.Server{Handler: srv.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
		log.Printf("permserve: shutting down (in-flight requests get 10s to finish)")
		shctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := hs.Shutdown(shctx); err != nil {
			log.Fatalf("permserve: shutdown: %v", err)
		}
		// Close mutable trees last: every acknowledged write is already
		// WAL-durable, this just releases file handles and lets background
		// compaction finish.
		if err := reg.Close(); err != nil {
			log.Fatalf("permserve: closing registry: %v", err)
		}
		log.Printf("permserve: bye")
	case err := <-errCh:
		log.Fatalf("permserve: %v", err)
	}
}

// writeDemoSet builds a small, quick-to-construct index set so the serving
// path can be tried (and smoke-tested) without running any benchmark first:
// two permutation indexes and an exact baseline over a SIFT-like corpus,
// plus a VP-tree over DNA strings under normalized edit distance.
func writeDemoSet(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	const (
		seed   = 42
		nDense = 1500
		nDNA   = 800
	)
	sift := dataset.SIFT(seed, nDense)
	dna := dataset.DNA(seed, nDNA, dataset.DNAOptions{})

	if err := writeDemoIndex(dir, "sift-napp", server.Manifest{Dataset: "sift", Seed: seed, N: nDense},
		func() (index.Index[[]float32], error) {
			return core.NewNAPP[[]float32](space.L2{}, sift, core.NAPPOptions{
				NumPivots: 128, NumPivotIndex: 16, MinShared: 1, Seed: seed,
			})
		}); err != nil {
		return err
	}
	if err := writeDemoIndex(dir, "sift-seqscan", server.Manifest{Dataset: "sift", Seed: seed, N: nDense},
		func() (index.Index[[]float32], error) {
			return seqscan.New[[]float32](space.L2{}, sift), nil
		}); err != nil {
		return err
	}
	// The mutable demo: an exact base index plus a WAL-backed LSM tree, so
	// add/delete/flush (and the ingest smoke test's kill -9 recovery) can
	// be exercised out of the box.
	if err := writeDemoIndex(dir, "sift-mutable", server.Manifest{Dataset: "sift", Seed: seed, N: nDense, Mutable: true},
		func() (index.Index[[]float32], error) {
			return seqscan.New[[]float32](space.L2{}, sift), nil
		}); err != nil {
		return err
	}
	return writeDemoIndex(dir, "dna-vptree", server.Manifest{Dataset: "dna", Seed: seed, N: nDNA},
		func() (index.Index[[]byte], error) {
			return vptree.New[[]byte](space.NormalizedLevenshtein{}, dna, vptree.Options{Seed: seed})
		})
}

// writeDemoIndex builds one index and writes its file + sidecar manifest.
func writeDemoIndex[T any](dir, name string, man server.Manifest, build func() (index.Index[T], error)) error {
	idx, err := build()
	if err != nil {
		return fmt.Errorf("%s: %w", name, err)
	}
	path := filepath.Join(dir, name+persist.Ext)
	if err := persist.SaveFile(path, idx); err != nil {
		return fmt.Errorf("%s: %w", name, err)
	}
	blob, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, name+".json"), append(blob, '\n'), 0o644); err != nil {
		return err
	}
	log.Printf("permserve: wrote %s (%s over %s, n=%d)", path, idx.Name(), man.Dataset, man.N)
	return nil
}
