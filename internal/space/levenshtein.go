package space

// NormalizedLevenshtein is the edit distance (insertions, deletions,
// substitutions, unit cost) divided by the length of the longer string. The
// DNA experiments use it over sequences of average length 32.
//
// The normalized variant is non-metric, but as §3.5 of the paper observes,
// triangle violations are rare on realistic data, so it behaves as an
// approximately µ-defective distance with µ = 1.
type NormalizedLevenshtein struct{}

// Distance returns the normalized edit distance between data and query.
// Two empty strings are at distance 0.
func (NormalizedLevenshtein) Distance(data, query []byte) float64 {
	maxLen := len(data)
	if len(query) > maxLen {
		maxLen = len(query)
	}
	if maxLen == 0 {
		return 0
	}
	return float64(EditDistance(data, query)) / float64(maxLen)
}

// Name implements Space.
func (NormalizedLevenshtein) Name() string { return "normleven" }

// Properties implements Space: symmetric, approximately metric but not
// guaranteed, so Metric is left unset and indexes use generic pruning.
func (NormalizedLevenshtein) Properties() Properties { return Properties{Symmetric: true} }

// Levenshtein is the classic (unnormalized) edit distance; it is a true
// metric and is provided for tests and for users who want metric pruning.
type Levenshtein struct{}

// Distance returns the edit distance between data and query.
func (Levenshtein) Distance(data, query []byte) float64 {
	return float64(EditDistance(data, query))
}

// Name implements Space.
func (Levenshtein) Name() string { return "leven" }

// Properties implements Space: the unnormalized edit distance is a metric.
func (Levenshtein) Properties() Properties { return Properties{Metric: true, Symmetric: true} }

// EditDistance computes the Levenshtein distance between a and b with the
// standard two-row dynamic program: O(len(a)*len(b)) time, O(min) space.
func EditDistance(a, b []byte) int {
	// Ensure b is the shorter string so the row buffer is minimal.
	if len(a) < len(b) {
		a, b = b, a
	}
	if len(b) == 0 {
		return len(a)
	}
	// Trim common prefix and suffix; they never contribute edits.
	for len(b) > 0 && a[0] == b[0] {
		a, b = a[1:], b[1:]
	}
	for len(b) > 0 && a[len(a)-1] == b[len(b)-1] {
		a, b = a[:len(a)-1], b[:len(b)-1]
	}
	if len(b) == 0 {
		return len(a)
	}

	row := make([]int, len(b)+1)
	for j := range row {
		row[j] = j
	}
	for i := 1; i <= len(a); i++ {
		prev := row[0] // row[i-1][j-1]
		row[0] = i
		for j := 1; j <= len(b); j++ {
			cur := row[j]
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			best := prev + cost            // substitution
			if d := row[j] + 1; d < best { // deletion
				best = d
			}
			if d := row[j-1] + 1; d < best { // insertion
				best = d
			}
			row[j] = best
			prev = cur
		}
	}
	return row[len(b)]
}
