package indextest

import (
	"repro/internal/eval"
	"repro/internal/space"
)

// RecallAtK builds a fresh index with build and returns its mean recall@k
// over queries, against exact ground truth computed by sequential scan.
// With a deterministic builder (fixed seeds, single-threaded construction —
// the same discipline Conformance requires) the value is exactly
// reproducible, which is what the golden recall-regression tests rely on:
// a perf refactor that silently degrades result quality moves this number,
// even when every structural contract still holds.
func RecallAtK[T any](sp space.Space[T], db, queries []T, k int, build Builder[T]) (float64, error) {
	idx, err := build()
	if err != nil {
		return 0, err
	}
	truth := eval.GroundTruth(sp, db, queries, k)
	answers := truth[:0:0]
	for _, q := range queries {
		answers = append(answers, idx.Search(q, k))
	}
	return eval.Recall(truth, answers), nil
}
