package dataset

import (
	"math"
	"testing"

	"repro/internal/space"
)

func TestCoPhIRShape(t *testing.T) {
	vs := CoPhIR(1, 100)
	if len(vs) != 100 {
		t.Fatalf("n = %d", len(vs))
	}
	for _, v := range vs {
		if len(v) != 282 {
			t.Fatalf("dim = %d, want 282", len(v))
		}
		for _, x := range v {
			if x < 0 || x > 255 {
				t.Fatalf("value %v out of [0,255]", x)
			}
		}
	}
}

func TestSIFTShape(t *testing.T) {
	vs := SIFT(1, 100)
	if len(vs) != 100 {
		t.Fatalf("n = %d", len(vs))
	}
	for _, v := range vs {
		if len(v) != 128 {
			t.Fatalf("dim = %d, want 128", len(v))
		}
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	a := SIFT(7, 10)
	b := SIFT(7, 10)
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatal("SIFT not deterministic")
			}
		}
	}
	c := SIFT(8, 10)
	same := true
	for i := range a {
		for j := range a[i] {
			if a[i][j] != c[i][j] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different seeds gave identical data")
	}
}

func TestImageNetSignatures(t *testing.T) {
	sigs := ImageNet(1, 30, SignatureOptions{Pixels: 120, Clusters: 8, KMeansIters: 4})
	if len(sigs) != 30 {
		t.Fatalf("n = %d", len(sigs))
	}
	for _, s := range sigs {
		if s.Dim != 7 {
			t.Fatalf("dim = %d", s.Dim)
		}
		if s.Clusters() < 1 || s.Clusters() > 8 {
			t.Fatalf("clusters = %d", s.Clusters())
		}
		var sum float64
		for _, w := range s.Weights {
			if w < 0 {
				t.Fatal("negative weight")
			}
			sum += float64(w)
		}
		if math.Abs(sum-1) > 1e-4 {
			t.Fatalf("weights sum to %v", sum)
		}
	}
	// Distances must be well-defined and frequently non-zero.
	var nonzero int
	sq := space.SQFD{}
	for i := 1; i < len(sigs); i++ {
		if sq.Distance(sigs[0], sigs[i]) > 1e-9 {
			nonzero++
		}
	}
	if nonzero < len(sigs)/2 {
		t.Fatalf("too many zero SQFD distances: %d/%d nonzero", nonzero, len(sigs)-1)
	}
}

func TestWikiSparseShape(t *testing.T) {
	docs := WikiSparse(1, 200, WikiSparseOptions{})
	if len(docs) != 200 {
		t.Fatalf("n = %d", len(docs))
	}
	var totalNNZ int
	for _, d := range docs {
		totalNNZ += d.NNZ()
		if d.Norm <= 0 {
			t.Fatal("document with zero norm")
		}
		for _, w := range d.Idx {
			if w < 0 || int(w) >= 100000 {
				t.Fatalf("word id %d out of vocabulary", w)
			}
		}
	}
	avg := float64(totalNNZ) / float64(len(docs))
	// Paper reports ~150 nnz on average; accept a generous band.
	if avg < 60 || avg > 250 {
		t.Fatalf("average nnz = %v, want ~150", avg)
	}
}

func TestWikiSparseTopicStructure(t *testing.T) {
	// Documents must NOT be mutually orthogonal: topic reuse must create
	// overlapping supports for at least some pairs.
	docs := WikiSparse(2, 100, WikiSparseOptions{Topics: 5})
	cos := space.CosineDistance{}
	var close int
	for i := 0; i < 50; i++ {
		for j := 50; j < 100; j++ {
			if cos.Distance(docs[i], docs[j]) < 0.7 {
				close++
			}
		}
	}
	if close == 0 {
		t.Fatal("no similar document pairs; topic structure missing")
	}
}

func TestWikiLDAShape(t *testing.T) {
	for _, topics := range []int{8, 128} {
		docs := WikiLDA(1, 100, topics)
		if len(docs) != 100 {
			t.Fatalf("n = %d", len(docs))
		}
		for _, d := range docs {
			if len(d.P) != topics {
				t.Fatalf("topics = %d, want %d", len(d.P), topics)
			}
			var sum float64
			for _, p := range d.P {
				if p <= 0 {
					t.Fatal("non-positive probability after flooring")
				}
				sum += float64(p)
			}
			if math.Abs(sum-1) > 1e-4 {
				t.Fatalf("histogram sums to %v", sum)
			}
		}
	}
}

func TestWikiLDADominantTopics(t *testing.T) {
	docs := WikiLDA(3, 200, 8)
	var spiky int
	for _, d := range docs {
		mx := float32(0)
		for _, p := range d.P {
			if p > mx {
				mx = p
			}
		}
		if mx > 0.4 {
			spiky++
		}
	}
	if spiky < 100 {
		t.Fatalf("only %d/200 docs have a dominant topic", spiky)
	}
}

func TestWikiLDAPanicsOnBadTopics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for topics=1")
		}
	}()
	WikiLDA(1, 10, 1)
}

func TestDNAShape(t *testing.T) {
	seqs := DNA(1, 500, DNAOptions{})
	if len(seqs) != 500 {
		t.Fatalf("n = %d", len(seqs))
	}
	var sumLen float64
	for _, s := range seqs {
		if len(s) < 8 {
			t.Fatalf("sequence shorter than floor: %d", len(s))
		}
		sumLen += float64(len(s))
		for _, b := range s {
			switch b {
			case 'A', 'C', 'G', 'T':
			default:
				t.Fatalf("alien base %c", b)
			}
		}
	}
	mean := sumLen / float64(len(seqs))
	if mean < 28 || mean > 36 {
		t.Fatalf("mean length %v, want ~32", mean)
	}
}

func TestDNASubstringOverlap(t *testing.T) {
	// Sequences come from one genome, so some pairs should be much more
	// similar than random 4-letter strings (expected normalized distance
	// for unrelated sequences is ~0.5+).
	seqs := DNA(2, 300, DNAOptions{GenomeLen: 4096}) // small genome -> overlaps
	nl := space.NormalizedLevenshtein{}
	var minD = 1.0
	for i := 1; i < len(seqs); i++ {
		if d := nl.Distance(seqs[0], seqs[i]); d < minD {
			minD = d
		}
	}
	if minD > 0.45 {
		t.Fatalf("no near-duplicate reads found (min distance %v); genome sampling suspect", minD)
	}
}
