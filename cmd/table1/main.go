// Command table1 regenerates Table 1 of the paper (data set summary: name,
// distance, record count, single-thread brute-force 10-NN query time,
// in-memory size, dimensionality) over the synthetic data sets.
//
// Usage:
//
//	table1 [-n 5000] [-queries 100] [-k 10] [-seed 1] [-datasets sift,dna,...]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	n := flag.Int("n", 5000, "points per data set")
	queries := flag.Int("queries", 100, "query count")
	k := flag.Int("k", 10, "neighbors per query")
	seed := flag.Int64("seed", 1, "random seed")
	datasets := flag.String("datasets", "", "comma-separated subset (default: all)")
	flag.Parse()

	cfg := experiments.Config{N: *n, Queries: *queries, K: *k, Seed: *seed}
	names := experiments.Names()
	if *datasets != "" {
		names = strings.Split(*datasets, ",")
	}
	fmt.Println("# Table 1: dataset\tdistance\trecords\tbrute-force-10NN\tin-memory\tdims")
	for _, name := range names {
		r, ok := experiments.Get(name)
		if !ok {
			fmt.Fprintf(os.Stderr, "table1: unknown dataset %q (known: %s)\n",
				name, strings.Join(experiments.Names(), ", "))
			os.Exit(2)
		}
		if err := r.Table1(cfg, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "table1: %s: %v\n", name, err)
			os.Exit(1)
		}
	}
}
