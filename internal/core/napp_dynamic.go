package core

import "fmt"

// Dynamic maintenance. §3.5 of the paper argues that inverted-file
// permutation indexes are database-friendly partly because "deletion and
// addition of records can be easily implemented"; this file implements that
// claim for NAPP.
//
// Add computes the new point's pivot order and appends its id to the
// affected posting lists (ids stay sorted because new ids are the largest).
// Delete tombstones an id; Search skips tombstoned candidates, and Compact
// rebuilds posting lists to reclaim space once enough deletions accumulate.
//
// Every mutation advances the index's mutation sequence number, which warm
// index.Searchers check on each use: a searcher minted before a mutation
// re-mints its scratch state instead of searching with arenas built for the
// previous index generation (see searcher.refresh in core.go).
//
// These methods must not be called concurrently with Search or each other.

// Add inserts a new data point and returns its id. The pivot set is fixed
// at construction time, so additions cost exactly m distance computations,
// like any other point at build time.
func (na *NAPP[T]) Add(x T) uint32 {
	id := uint32(len(na.data))
	na.data = append(na.data, x)
	order := na.pivots.Order(x, nil)
	for _, p := range order[:na.opts.NumPivotIndex] {
		na.postings[p] = append(na.postings[p], id)
	}
	na.mutSeq++
	return id
}

// Delete tombstones the given id. The point stops appearing in results
// immediately; its posting entries are reclaimed by Compact.
func (na *NAPP[T]) Delete(id uint32) error {
	if int(id) >= len(na.data) {
		return fmt.Errorf("core: delete of unknown id %d (have %d points)", id, len(na.data))
	}
	if na.deleted == nil {
		na.deleted = make(map[uint32]struct{})
	}
	na.deleted[id] = struct{}{}
	na.mutSeq++
	return nil
}

// Deleted reports whether id is tombstoned.
func (na *NAPP[T]) Deleted(id uint32) bool {
	_, ok := na.deleted[id]
	return ok
}

// Live returns the number of non-deleted points.
func (na *NAPP[T]) Live() int { return len(na.data) - len(na.deleted) }

// Compact removes tombstoned ids from all posting lists. Ids are not
// renumbered — result ids remain stable positions into the grown data slice.
func (na *NAPP[T]) Compact() {
	if len(na.deleted) == 0 {
		return
	}
	na.mutSeq++
	for p, list := range na.postings {
		kept := list[:0]
		for _, id := range list {
			if _, dead := na.deleted[id]; !dead {
				kept = append(kept, id)
			}
		}
		na.postings[p] = kept
	}
	// The tombstone set stays: data slots of deleted points still exist,
	// so Deleted() and Live() must keep answering correctly. Posting
	// lists no longer yield tombstoned ids, so searches pay nothing.
}
