//go:build !race

package knngraph_test

const raceEnabled = false
