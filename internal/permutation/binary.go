package permutation

import (
	"math/bits"

	"repro/internal/space"
)

// Binary is a bit-packed binarized permutation (Tellez et al., §2.1-2.2 of
// the paper): bit i is set when the rank of pivot i is at least the
// binarization threshold. Binarized permutations trade rank resolution for a
// 32x smaller footprint and a Hamming distance computed with word-wide XOR +
// popcount — the strategy that wins the DNA experiment (Figure 4f).
type Binary []uint64

// BinaryWords returns the number of 64-bit words needed for m pivots.
func BinaryWords(m int) int { return (m + 63) / 64 }

// Binarize packs perm into dst: bit i is set iff perm[i] >= threshold. A
// common threshold is m/2, which balances ones and zeros. dst may be nil; it
// is grown as needed and returned.
func Binarize(perm []int32, threshold int32, dst Binary) Binary {
	words := BinaryWords(len(perm))
	if cap(dst) < words {
		dst = make(Binary, words)
	}
	dst = dst[:words]
	for i := range dst {
		dst[i] = 0
	}
	for i, r := range perm {
		if r >= threshold {
			dst[i/64] |= 1 << (uint(i) % 64)
		}
	}
	return dst
}

// Hamming returns the number of differing bits between two binary
// permutations of equal length. Each 64-bit word is XOR-ed and counted with
// the CPU popcount instruction via math/bits, the Go equivalent of the
// paper's __builtin_popcount.
func Hamming(a, b Binary) int {
	if len(a) != len(b) {
		panic("permutation: binary length mismatch")
	}
	var s int
	for i := range a {
		s += bits.OnesCount64(a[i] ^ b[i])
	}
	return s
}

// OnesCount returns the number of set bits in b.
func (b Binary) OnesCount() int {
	var s int
	for _, w := range b {
		s += bits.OnesCount64(w)
	}
	return s
}

// Bit reports whether bit i is set.
func (b Binary) Bit(i int) bool { return b[i/64]&(1<<(uint(i)%64)) != 0 }

// Clone returns a copy of b.
func (b Binary) Clone() Binary {
	out := make(Binary, len(b))
	copy(out, b)
	return out
}

// HammingSpace exposes the Hamming distance over binary permutations as a
// space.Space, enabling generic indexes over binarized sketches.
type HammingSpace struct{}

// Distance implements space.Space.
func (HammingSpace) Distance(a, b Binary) float64 { return float64(Hamming(a, b)) }

// Name implements space.Space.
func (HammingSpace) Name() string { return "hamming" }

// Properties implements space.Space: Hamming distance is a metric.
func (HammingSpace) Properties() space.Properties {
	return space.Properties{Metric: true, Symmetric: true}
}
