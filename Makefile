# Local entry points that stay in lockstep with .github/workflows/ci.yml:
# each CI step invokes one of these targets, so a green `make ci` means a
# green pipeline.

GO ?= go

# Pinned linter/scanner versions; CI installs exactly these (cached), local
# runs skip with a notice when the tool is absent (the container has no
# network to install from).
STATICCHECK_VERSION ?= 2025.1
GOVULNCHECK_VERSION ?= v1.1.4

.PHONY: build test race bench bench-engine bench-smoke vet fmt staticcheck govulncheck check fuzz serve-smoke shard-smoke rollout-smoke ingest-smoke fault-smoke ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Fails when any file is not gofmt-formatted (prints the offenders).
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

# staticcheck/govulncheck run when installed (CI pins them via
# STATICCHECK_VERSION/GOVULNCHECK_VERSION; `go install
# honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION)` locally), and
# skip with a notice otherwise so `make ci` works on a network-less box.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; \
	else echo "staticcheck: not installed, skipping (CI pins $(STATICCHECK_VERSION))"; fi

govulncheck:
	@if command -v govulncheck >/dev/null 2>&1; then govulncheck ./...; \
	else echo "govulncheck: not installed, skipping (CI pins $(GOVULNCHECK_VERSION))"; fi

# Static gate: formatting + vet + linters, exactly as CI runs them.
check: fmt vet staticcheck govulncheck

# -shuffle randomizes test order within each package on every run, so
# accidental inter-test state dependence fails fast instead of festering.
test:
	$(GO) test -shuffle=on ./...

# Race-check the concurrency-heavy packages: the batch query engine, the
# SW/NN-descent graph construction goroutines, the cross-index conformance
# suite (whose concurrent-Search property puts every index kind under
# simultaneous queries), the serving layer (concurrent clients + hot-reload
# hammering), the scatter-gather router (per-query replica-group fan-out,
# failover, ejection + background re-admission probing, hedged HTTP
# attempts), the rollout driver (reloads racing live router traffic), the
# mutable LSM tier (writers/flushes/compaction racing searches), and the
# metrics core (lock-free counters/histograms under concurrent
# Record/Snapshot).
race:
	$(GO) test -race -short -shuffle=on ./internal/engine/... ./internal/knngraph/... ./internal/indextest/... ./internal/lsm/... ./internal/server/... ./internal/router/... ./internal/rollout/... ./internal/obs/...

# Short coverage-guided fuzz of the index-file decoder: corrupt blobs must
# error, never panic or over-allocate. The checked-in seed corpus lives in
# internal/codec/testdata/fuzz (regenerate with WRITE_FUZZ_CORPUS=1 after
# format changes).
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzLoad -fuzztime 30s ./internal/codec/

# Query hot-path microbenchmarks (-benchmem) + the machine-readable
# BENCH_PR10.json trajectory point (per method: ns/op, B/op, allocs/op,
# QPS; napp-sharded3 tracks the scatter-gather router against unsharded
# napp). bench.sh also diffs the point against the latest previous
# committed BENCH_PR*.json (scripts/benchcheck -prev): dropped methods
# always fail; on the same machine identity, >25% ns/op regressions,
# B/op / allocs/op growth beyond -max-alloc-regress (default: none), and
# any previously-zero allocation row moving off zero also fail.
# Override the output with BENCH_OUT=path.
bench:
	./scripts/bench.sh

# Fast CI pass over the same harness: proves the benchmarks still
# compile/run, the JSON emitter still parses their output, and — via the
# trajectory diff bench.sh runs against the latest committed
# BENCH_PR*.json — that no benchmarked method silently disappeared and
# (same machine identity only) that ns/op hasn't regressed >25%. 50
# iterations keeps the smoke fast while damping single-run timer noise.
bench-smoke:
	./scripts/bench.sh /tmp/bench_smoke.json 50x
	@grep -q '"method"' /tmp/bench_smoke.json

# Batch-engine throughput: the serial reference loop vs SearchBatch at
# 1/2/4/8 workers over the sequential scan.
bench-engine:
	$(GO) test -run '^$$' -bench BenchmarkSearchBatch -benchmem ./internal/engine/

# End-to-end smoke of the serving daemon: build permserve, write a demo
# index set, boot it on a free port, curl /healthz + a search + a hot
# reload, and require a graceful SIGTERM shutdown.
serve-smoke:
	$(GO) build -o bin/permserve ./cmd/permserve
	$(GO) build -o bin/metricscheck ./scripts/metricscheck
	./scripts/serve_smoke.sh bin/permserve bin/metricscheck

# End-to-end smoke of the sharded tier: shardsplit a corpus, boot one
# permserve per shard plus an unsharded baseline, front them with
# permrouter, and require byte-identical answers, fail-open/fail-closed
# degradation when a shard dies, and a graceful shutdown.
shard-smoke:
	$(GO) build -o bin/permserve ./cmd/permserve
	$(GO) build -o bin/permrouter ./cmd/permrouter
	$(GO) build -o bin/shardsplit ./cmd/shardsplit
	$(GO) build -o bin/metricscheck ./scripts/metricscheck
	./scripts/shard_smoke.sh bin

# End-to-end smoke of the replicated tier + rollout control plane: a
# 2-shard x 2-replica fleet behind permrouter -topology, one replica killed
# mid-traffic (answers stay byte-identical and non-partial), then permctl
# ships a new generation through (dead replica skipped, generation vector
# converges) and a regressed generation is automatically rolled back by the
# golden recall gate.
rollout-smoke:
	$(GO) build -o bin/permserve ./cmd/permserve
	$(GO) build -o bin/permrouter ./cmd/permrouter
	$(GO) build -o bin/shardsplit ./cmd/shardsplit
	$(GO) build -o bin/permctl ./cmd/permctl
	./scripts/rollout_smoke.sh bin

# End-to-end smoke of the mutable tier's durability: stream adds/deletes
# into the demo mutable index under live query traffic, seal a tier, then
# kill -9 mid-ingest and restart — every acknowledged write must survive
# and pre-kill answers must come back byte-identical.
ingest-smoke:
	$(GO) build -o bin/permserve ./cmd/permserve
	./scripts/ingest_smoke.sh bin/permserve

# End-to-end smoke of the fail-stop storage story: boot permserve with
# disk-fault injection armed (PERMSERVE_FAULT_FS), drive writes into a WAL
# fsync failure (503 poisoned) and an ENOSPC seal (507 read-only), assert
# /healthz surfaces the degraded index while searches keep serving, then
# restart clean and require zero acknowledged-write loss.
fault-smoke:
	$(GO) build -o bin/permserve ./cmd/permserve
	./scripts/fault_smoke.sh bin/permserve

ci: check build test race fuzz serve-smoke shard-smoke rollout-smoke ingest-smoke fault-smoke bench-smoke
