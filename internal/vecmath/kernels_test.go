package vecmath

// Differential property tests for the saturated kernels: every kernel must
// be byte-identical to its reference scalar implementation at every width
// from 0 to 129, which sweeps every tail-lane case of the 4-way unrolled
// loops (width mod 4 = 0..3 on both sides of the dispatch thresholds) and,
// for the nibble kernel, every partial-word tail (width mod 16 = 0..15).

import (
	"math/rand"
	"testing"
)

// rankVectors returns a pair of pseudo-random rank-like vectors of the
// given width: values in [0, width), as real permutations have, plus a few
// adversarial extremes.
func rankVectors(r *rand.Rand, width int) (a, b []int32) {
	a = make([]int32, width)
	b = make([]int32, width)
	for i := range a {
		a[i] = int32(r.Intn(width))
		b[i] = int32(r.Intn(width))
	}
	if width > 1 {
		a[0], b[0] = 0, int32(width-1) // max positive diff
		a[1], b[1] = int32(width-1), 0 // max negative diff
	}
	return a, b
}

func TestSpearmanRhoMatchesRef(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for width := 0; width <= 129; width++ {
		for rep := 0; rep < 8; rep++ {
			a, b := rankVectors(r, width)
			if got, want := SpearmanRho(a, b), SpearmanRhoRef(a, b); got != want {
				t.Fatalf("width %d: SpearmanRho = %d, ref = %d", width, got, want)
			}
		}
	}
}

func TestFootruleMatchesRef(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for width := 0; width <= 129; width++ {
		for rep := 0; rep < 8; rep++ {
			a, b := rankVectors(r, width)
			if got, want := Footrule(a, b), FootruleRef(a, b); got != want {
				t.Fatalf("width %d: Footrule = %d, ref = %d", width, got, want)
			}
		}
	}
}

func TestRankKernelsPanicOnLengthMismatch(t *testing.T) {
	for name, fn := range map[string]func(){
		"SpearmanRho": func() { SpearmanRho(make([]int32, 3), make([]int32, 4)) },
		"Footrule":    func() { Footrule(make([]int32, 3), make([]int32, 4)) },
		"NibbleL1":    func() { NibbleL1(make([]uint64, 1), make([]uint64, 2)) },
		"L2SqrF32":    func() { L2SqrF32(make([]float32, 3), make([]float32, 4)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic on length mismatch", name)
				}
			}()
			fn()
		}()
	}
}

// packNibbles packs vals (each 0..15) into words, low lanes first; tail
// lanes stay zero, exactly like permutation.Quantize.
func packNibbles(vals []uint8) []uint64 {
	words := make([]uint64, (len(vals)+15)/16)
	for i, v := range vals {
		words[i/16] |= uint64(v&0xF) << (4 * (i % 16))
	}
	return words
}

func TestNibbleL1MatchesRef(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	// width counts nibble lanes here; 0..129 covers 0..9 words with every
	// partial tail.
	for width := 0; width <= 129; width++ {
		for rep := 0; rep < 8; rep++ {
			av := make([]uint8, width)
			bv := make([]uint8, width)
			var want int
			for i := range av {
				av[i] = uint8(r.Intn(16))
				bv[i] = uint8(r.Intn(16))
				d := int(av[i]) - int(bv[i])
				if d < 0 {
					d = -d
				}
				want += d
			}
			a, b := packNibbles(av), packNibbles(bv)
			if got := NibbleL1(a, b); got != want {
				t.Fatalf("width %d: NibbleL1 = %d, unpacked sum = %d", width, got, want)
			}
			if got, ref := NibbleL1(a, b), NibbleL1Ref(a, b); got != ref {
				t.Fatalf("width %d: NibbleL1 = %d, ref = %d", width, got, ref)
			}
		}
	}
}

// TestNibbleL1WordExhaustiveLanes drives a single lane pair through all
// 16x16 value combinations in every lane position — the full truth table of
// the SWAR absolute-difference step.
func TestNibbleL1WordExhaustiveLanes(t *testing.T) {
	for lane := 0; lane < 16; lane++ {
		sh := 4 * lane
		for x := 0; x < 16; x++ {
			for y := 0; y < 16; y++ {
				got := NibbleL1Word(uint64(x)<<sh, uint64(y)<<sh)
				want := x - y
				if want < 0 {
					want = -want
				}
				if got != want {
					t.Fatalf("lane %d: |%d-%d| = %d, want %d", lane, x, y, got, want)
				}
			}
		}
	}
}

func TestNibbleL1WordSaturatesNowhere(t *testing.T) {
	// All lanes at maximum distance: 16 lanes * 15 = 240, the largest value
	// a word can produce; the byte-ladder horizontal sum must carry it
	// without overflow into the next byte.
	var a, b uint64 = 0, ^uint64(0) // 0x0 vs 0xF in every lane
	if got := NibbleL1Word(a, b); got != 240 {
		t.Fatalf("max-distance word: got %d, want 240", got)
	}
}

func TestL2SqrF32MatchesRef(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for width := 0; width <= 129; width++ {
		for rep := 0; rep < 8; rep++ {
			a := make([]float32, width)
			b := make([]float32, width)
			for i := range a {
				a[i] = float32(r.NormFloat64() * 100)
				b[i] = float32(r.NormFloat64() * 100)
			}
			got, want := L2SqrF32(a, b), L2SqrF32Ref(a, b)
			if got != want {
				t.Fatalf("width %d: L2SqrF32 = %v, ref = %v (must be byte-identical)", width, got, want)
			}
		}
	}
}

// TestL2SqrF32ErrorBound checks the documented precision contract against
// the default float64 kernel: the float32 difference path stays within
// ~n*2^-23 relative error of L2Sqr.
func TestL2SqrF32ErrorBound(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for _, width := range []int{4, 16, 128, 1024} {
		a := make([]float32, width)
		b := make([]float32, width)
		for i := range a {
			a[i] = float32(r.NormFloat64() * 255)
			b[i] = float32(r.NormFloat64() * 255)
		}
		exact := L2Sqr(a, b)
		fast := L2SqrF32(a, b)
		bound := float64(width) * exact / (1 << 22)
		if diff := fast - exact; diff < -bound || diff > bound {
			t.Fatalf("width %d: |%v - %v| exceeds bound %v", width, fast, exact, bound)
		}
	}
}
