package server

import (
	"context"
	"encoding/json"
	"fmt"
	"slices"

	"repro/internal/index"
	"repro/internal/lsm"
	"repro/internal/obs"
	"repro/internal/topk"
)

// The mutable serving tier. A manifest with "mutable": true gives the entry
// an lsm.Tree living in <name>.tiers/ next to the index file: the .psix
// stays the immutable base corpus index, while adds and deletes flow
// through the tree's WAL-backed memtable and sealed tiers. The tree is
// entry state, not snapshot state — a hot reload swaps the base index
// generation under the SAME tree, so acknowledged writes survive reloads
// exactly like they survive restarts.
//
// Write/reload exclusion is two-sided and lock-shaped rather than
// flag-shaped: every write holds the entry's ingest lock shared for its
// whole WAL append + ack, and Reload holds it exclusively across the
// unsealed-writes check and the snapshot swap. A write that arrives during
// a reload fails fast with 409 (TryRLock), and a reload that arrives while
// the tree holds unsealed writes is refused with 409 until a flush seals
// them — so neither side can ever observe the other half-done.

// servedTree is the type-erased face of an entry's mutable tree; the HTTP
// layer never sees the object type.
type servedTree interface {
	add(raws []json.RawMessage) ([]uint32, error)
	remove(ids []uint32) error
	flush() (*lsm.TierStatus, error)
	treeStatus() lsm.Status
	unsealed() int
	close() error
}

// typedTree adapts one concrete lsm.Tree[T] to servedTree.
type typedTree[T any] struct {
	tree *lsm.Tree[T]
}

func (t *typedTree[T]) add(raws []json.RawMessage) ([]uint32, error) {
	bufs := make([][]byte, len(raws))
	for i, raw := range raws {
		bufs[i] = []byte(raw)
	}
	return t.tree.AddBatch(bufs)
}

func (t *typedTree[T]) remove(ids []uint32) error       { return t.tree.DeleteBatch(ids) }
func (t *typedTree[T]) flush() (*lsm.TierStatus, error) { return t.tree.Flush() }
func (t *typedTree[T]) treeStatus() lsm.Status          { return t.tree.Status() }
func (t *typedTree[T]) unsealed() int                   { return t.tree.Unsealed() }
func (t *typedTree[T]) close() error                    { return t.tree.Close() }

// treeIndex adapts (base index, tree) to index.Index so the search paths —
// including the batch engine fan-out — treat a mutable entry like any
// other index.
type treeIndex[T any] struct {
	base index.Index[T]
	tree *lsm.Tree[T]
}

func (ti treeIndex[T]) Search(q T, k int) []topk.Neighbor {
	return ti.tree.Search(ti.base, q, k)
}

// SearchAppend routes through the tree's pooled zero-alloc tiered path, so
// the serving hot loop inherits the same warm 0 allocs/op the tree pins.
func (ti treeIndex[T]) SearchAppend(dst []topk.Neighbor, q T, k int) []topk.Neighbor {
	return ti.tree.SearchAppend(dst, ti.base, q, k)
}

// NewSearcher implements index.SearcherProvider. Per-searcher scratch lives
// in the tree's own epoch-keyed pool, so the wrapper carries only the
// attached trace (obs.Traceable) and answers identically to Search by
// construction.
func (ti treeIndex[T]) NewSearcher() index.Searcher[T] { return &treeSearcher[T]{ti: ti} }

// treeSearcher threads a per-worker QueryTrace into the tree's traced
// tiered path. The batch engine owns each instance on one worker goroutine,
// so the tr field needs no synchronization.
type treeSearcher[T any] struct {
	ti treeIndex[T]
	tr *obs.QueryTrace
}

// SetTrace implements obs.Traceable.
func (s *treeSearcher[T]) SetTrace(tr *obs.QueryTrace) { s.tr = tr }

func (s *treeSearcher[T]) Search(q T, k int) []topk.Neighbor {
	return s.SearchAppend(nil, q, k)
}

func (s *treeSearcher[T]) SearchAppend(dst []topk.Neighbor, q T, k int) []topk.Neighbor {
	// Background ctx: the Searcher interface carries no ctx, matching the
	// pre-trace behavior where batch workers ran the uncancellable pooled
	// path (the fan-out itself checks ctx between queries).
	dst, _ = s.ti.tree.SearchAppendTraced(context.Background(), dst, s.ti.base, q, k, s.tr)
	return dst
}

var (
	_ index.SearcherProvider[[]float32] = treeIndex[[]float32]{}
	_ obs.Traceable                     = (*treeSearcher[[]float32])(nil)
)

func (ti treeIndex[T]) Name() string { return ti.base.Name() + "+lsm" }

// openTree opens (or reuses, across reloads) the entry's tree for a mutable
// manifest. Called with the entry exclusively owned: OpenDir is
// single-threaded and Reload holds both reloadMu and the ingest lock.
func openTree[T any](e *entry, man Manifest, data []T, opts lsm.Options[T]) (*lsm.Tree[T], error) {
	if e.tree != nil {
		tt, ok := e.tree.(*typedTree[T])
		if !ok {
			return nil, fmt.Errorf("mutable index changed object type across reloads")
		}
		if tt.tree.BaseN() != len(data) {
			return nil, fmt.Errorf("mutable index changed base corpus size across reloads: tree holds %d, new generation has %d", tt.tree.BaseN(), len(data))
		}
		if got, want := tt.tree.Space().Name(), opts.Space.Name(); got != want {
			return nil, fmt.Errorf("mutable index changed space across reloads: tree holds %q, new generation uses %q", got, want)
		}
		return tt.tree, nil
	}
	opts.BaseN = len(data)
	tree, err := lsm.Open(opts)
	if err != nil {
		return nil, err
	}
	e.tree = &typedTree[T]{tree: tree}
	return tree, nil
}

// addRequest is the body of POST /v1/indexes/{name}/add: exactly one of
// "object" (one object in the index's JSON query encoding) or "objects" (a
// batch).
type addRequest struct {
	Object  json.RawMessage   `json:"object,omitempty"`
	Objects []json.RawMessage `json:"objects,omitempty"`
}

// deleteRequest is the body of POST /v1/indexes/{name}/delete: exactly one
// of "id" or "ids".
type deleteRequest struct {
	ID  *uint32  `json:"id,omitempty"`
	IDs []uint32 `json:"ids,omitempty"`
}

func (r *deleteRequest) all() []uint32 {
	if r.ID != nil {
		return []uint32{*r.ID}
	}
	return slices.Clone(r.IDs)
}
