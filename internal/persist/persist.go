// Package persist is the kind registry of the index persistence subsystem:
// it maps every concrete index type to its codec kind tag for saving, and
// every kind tag read from a file header back to the loader that
// reconstructs a ready index.Index. The byte format itself lives in
// internal/codec; the per-kind payloads live in each index package.
//
// Loading always requires the space and data set the index was originally
// built over — the format stores derived structure only, never the data
// objects (see the codec package documentation for why). Save(Load(x)) and
// Load(Save(x)) are both identity on search behavior; internal/indextest
// asserts this for every kind.
package persist

import (
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/knngraph"
	"repro/internal/lsh"
	"repro/internal/seqscan"
	"repro/internal/space"
	"repro/internal/vfs"
	"repro/internal/vptree"
)

// Kinds lists every index-kind tag the registry can save and load.
func Kinds() []string { return codec.Kinds() }

// Save serializes any index built by this repository to w in the codec
// format. It returns codec.ErrNotPersistable for index types outside the
// registry and for indexes built over explicit (non-sampled) pivot sets.
func Save[T any](w io.Writer, idx index.Index[T]) error {
	switch v := any(idx).(type) {
	case *core.BruteForceFilter[T]:
		return v.Save(w)
	case *core.BinFilter[T]:
		return v.Save(w)
	case *core.QuantFilter[T]:
		return v.Save(w)
	case *core.DistVecFilter[T]:
		return v.Save(w)
	case *core.PPIndex[T]:
		return v.Save(w)
	case *core.MIFile[T]:
		return v.Save(w)
	case *core.NAPP[T]:
		return v.Save(w)
	case *core.OMEDRANK[T]:
		return v.Save(w)
	case *core.PermVPTree[T]:
		return v.Save(w)
	case *vptree.Tree[T]:
		return v.Save(w)
	case *knngraph.Graph[T]:
		return v.Save(w)
	case *seqscan.Scanner[T]:
		return v.Save(w)
	case *lsh.MPLSH:
		return v.Save(w)
	default:
		return fmt.Errorf("%w: no kind registered for %T (%s)", codec.ErrNotPersistable, idx, idx.Name())
	}
}

// Load reads one index from r and reconstructs it over sp and data, which
// must be the space and data set the index was saved with (the header's
// space name and data-set size are verified). The concrete type is selected
// by the file's kind tag; the returned index is ready to Search.
//
// The "mplsh" kind applies only to dense vectors under L2, mirroring its
// constructor: loading it under any other object type T fails.
func Load[T any](r io.Reader, sp space.Space[T], data []T) (index.Index[T], error) {
	cr, err := codec.NewReader(r)
	if err != nil {
		return nil, err
	}
	switch kind := cr.Header().Kind; kind {
	case codec.KindBruteForce:
		return core.LoadBruteForceFilter(cr, sp, data)
	case codec.KindBinFilter:
		return core.LoadBinFilter(cr, sp, data)
	case codec.KindQuantFilter:
		return core.LoadQuantFilter(cr, sp, data)
	case codec.KindDistVec:
		return core.LoadDistVecFilter(cr, sp, data)
	case codec.KindPPIndex:
		return core.LoadPPIndex(cr, sp, data)
	case codec.KindMIFile:
		return core.LoadMIFile(cr, sp, data)
	case codec.KindNAPP:
		return core.LoadNAPP(cr, sp, data)
	case codec.KindOMEDRANK:
		return core.LoadOMEDRANK(cr, sp, data)
	case codec.KindPermVPTree:
		return core.LoadPermVPTree(cr, sp, data)
	case codec.KindVPTree:
		return vptree.Load(cr, sp, data)
	case codec.KindSWGraph, codec.KindNNDescent:
		return knngraph.Load(cr, kind, sp, data)
	case codec.KindSeqScan:
		return seqscan.Load(cr, sp, data)
	case codec.KindMPLSH:
		vecs, ok := any(data).([][]float32)
		if !ok {
			return nil, fmt.Errorf("codec: %q index requires dense []float32 vectors, data is %T", kind, data)
		}
		// lsh.Load validates the header against its hardcoded "l2" tag;
		// the caller's space must agree too, or Search would silently
		// report L2 distances under a different metric.
		if sp.Name() != cr.Header().Space {
			return nil, fmt.Errorf("codec: index was built under space %q, loader supplies %q", cr.Header().Space, sp.Name())
		}
		m, err := lsh.Load(cr, vecs)
		if err != nil {
			return nil, err
		}
		return any(m).(index.Index[T]), nil
	default:
		return nil, fmt.Errorf("codec: unknown index kind %q", kind)
	}
}

// SaveFile writes idx to path atomically: the blob is serialized and
// fsynced to a temporary file in the same directory, then renamed over the
// destination, so neither a crash nor a failed Save can leave a truncated
// or torn file where a good one used to be.
func SaveFile[T any](path string, idx index.Index[T]) error {
	return SaveFileFS(vfs.OS{}, path, idx)
}

// SaveFileFS is SaveFile over an explicit filesystem — the injectable form
// the LSM tree routes its tier index saves through so fault tests can fail
// any step of the atomic-write sequence.
func SaveFileFS[T any](fsys vfs.FS, path string, idx index.Index[T]) error {
	f, err := fsys.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	cleanup := func(err error) error {
		f.Close()
		fsys.Remove(f.Name())
		return err
	}
	if err := Save(f, idx); err != nil {
		return cleanup(err)
	}
	if err := f.Sync(); err != nil {
		return cleanup(err)
	}
	if err := f.Close(); err != nil {
		return cleanup(err)
	}
	if err := fsys.Chmod(f.Name(), 0o644); err != nil {
		return cleanup(err)
	}
	if err := fsys.Rename(f.Name(), path); err != nil {
		return cleanup(err)
	}
	return nil
}

// LoadFile reads one index from the file at path.
func LoadFile[T any](path string, sp space.Space[T], data []T) (index.Index[T], error) {
	return LoadFileFS(vfs.OS{}, path, sp, data)
}

// LoadFileFS is LoadFile over an explicit filesystem (see SaveFileFS).
func LoadFileFS[T any](fsys vfs.FS, path string, sp space.Space[T], data []T) (index.Index[T], error) {
	f, err := fsys.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f, sp, data)
}

// Ext is the conventional file extension of a persisted index.
const Ext = ".psix"

// castagnoli is the CRC-32C table, matching the codec trailer's polynomial.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// FileChecksum returns the CRC-32C of the index file's contents excluding
// its final four bytes — i.e. exactly the value the codec trailer stores.
// A whole-file checksum would be useless here: every index file ends in
// the little-endian CRC-32C of the bytes before it, and the CRC of a
// message with its own CRC appended is a *constant* (0x48674bc7 for
// Castagnoli) for every intact file. Excluding the trailer yields a value
// that distinguishes files and doubles as an integrity check against the
// trailer itself. The shard-set manifests (internal/shard) record it per
// shard so shipped snapshots can be verified without loading them.
func FileChecksum(path string) (uint32, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return 0, err
	}
	if st.Size() < 5 {
		return 0, fmt.Errorf("%s: %d bytes is too short for a checksummed index file", path, st.Size())
	}
	h := crc32.New(castagnoli)
	if _, err := io.Copy(h, io.LimitReader(f, st.Size()-4)); err != nil {
		return 0, err
	}
	return h.Sum32(), nil
}

// FileChecksumFS is FileChecksum over an explicit filesystem, so the
// shard-set verifier can run under fault injection. It reads the whole blob
// (vfs deliberately has no Stat; index files are small next to their data
// sets), which also exercises the read path the fault sweep targets.
func FileChecksumFS(fsys vfs.FS, path string) (uint32, error) {
	blob, err := fsys.ReadFile(path)
	if err != nil {
		return 0, err
	}
	if len(blob) < 5 {
		return 0, fmt.Errorf("%s: %d bytes is too short for a checksummed index file", path, len(blob))
	}
	return crc32.Checksum(blob[:len(blob)-4], castagnoli), nil
}

// PeekHeader reads and validates the file at path just far enough to return
// its header — kind, space name, format version and data-set size — without
// reconstructing the index. Callers that serve a directory of heterogeneous
// indexes use it to decide which space and data set to load each file over
// before paying for the load itself. (The whole blob is still read once to
// verify the checksum; an index file is small next to its data set.)
func PeekHeader(path string) (codec.Header, error) {
	f, err := os.Open(path)
	if err != nil {
		return codec.Header{}, err
	}
	defer f.Close()
	cr, err := codec.NewReader(f)
	if err != nil {
		return codec.Header{}, fmt.Errorf("%s: %w", path, err)
	}
	return cr.Header(), nil
}

// LoadIndexSet opens every index file (*.psix) in dir over one shared
// (space, data) pair and returns the ready indexes keyed by file name
// without the extension. This is the warm-start path for a process serving
// several index structures — say, a NAPP and an SW-graph with different
// speed/recall trade-offs — over the same corpus: build and SaveFile each
// once, then any number of processes can LoadIndexSet the directory.
//
// Every file must load cleanly and match sp and data (the per-kind loaders
// verify the header's space name and data-set size); the first failure
// aborts the whole set, so a directory can never be half-served. A dir with
// no index files yields an empty, non-nil map.
func LoadIndexSet[T any](dir string, sp space.Space[T], data []T) (map[string]index.Index[T], error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), Ext) {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	out := make(map[string]index.Index[T], len(names))
	for _, name := range names {
		idx, err := LoadFile(filepath.Join(dir, name), sp, data)
		if err != nil {
			return nil, fmt.Errorf("loading %s: %w", filepath.Join(dir, name), err)
		}
		out[strings.TrimSuffix(name, Ext)] = idx
	}
	return out, nil
}
