package core_test

// Allocation guards for the query hot path: on a warm index, the
// steady-state cost of answering a query is
//
//   - zero allocations through a Searcher's SearchAppend with a reusable
//     result buffer (the scratch subsystem owns every intermediate), and
//   - exactly one allocation through plain Search: the returned result
//     slice, the only memory the index hands to the caller.
//
// The guards run over L2 so only index machinery is measured — a space
// whose Distance allocates (e.g. Levenshtein's DP rows) would drown the
// signal. A regression here means a per-query allocation crept back into
// the filter or refine stage; fix the code, don't relax the guard.

import (
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/index"
	"repro/internal/obs"
	"repro/internal/space"
	"repro/internal/topk"
)

// allocKinds builds the guarded index matrix over a small L2 corpus.
func allocKinds(t *testing.T) (queries [][]float32, kinds []struct {
	kind  string
	index index.Index[[]float32]
}) {
	t.Helper()
	const n, nq, seed = 600, 8, 7
	all := dataset.SIFT(seed, n+nq)
	db, qs := all[:n], all[n:]
	mk := func(kind string, idx index.Index[[]float32], err error) {
		if err != nil {
			t.Fatalf("building %s: %v", kind, err)
		}
		kinds = append(kinds, struct {
			kind  string
			index index.Index[[]float32]
		}{kind, idx})
	}
	napp, err := core.NewNAPP(sp32(), db, core.NAPPOptions{
		NumPivots: 64, NumPivotIndex: 16, NumPivotSearch: 16, MinShared: 1, Seed: seed,
	})
	mk("napp", napp, err)
	nappCap, err := core.NewNAPP(sp32(), db, core.NAPPOptions{
		NumPivots: 64, NumPivotIndex: 16, MinShared: 1, MaxCandidates: 40, Seed: seed,
	})
	mk("napp-capped", nappCap, err)
	mi, err := core.NewMIFile(sp32(), db, core.MIFileOptions{
		NumPivots: 32, NumPivotIndex: 16, NumPivotSearch: 8, MaxPosDiff: 10, Seed: seed,
	})
	mk("mi-file", mi, err)
	pp, err := core.NewPPIndex(sp32(), db, core.PPIndexOptions{
		NumPivots: 16, PrefixLen: 4, Copies: 2, Seed: seed,
	})
	mk("pp-index", pp, err)
	bf, err := core.NewBruteForceFilter(sp32(), db, core.BruteForceOptions{NumPivots: 32, Seed: seed})
	mk("brute-force-filt", bf, err)
	bin, err := core.NewBinFilter(sp32(), db, core.BinFilterOptions{NumPivots: 64, Seed: seed})
	mk("brute-force-filt-bin", bin, err)
	quant, err := core.NewQuantFilter(sp32(), db, core.QuantFilterOptions{NumPivots: 64, Seed: seed})
	mk("brute-force-filt-quant", quant, err)
	dv, err := core.NewDistVecFilter(sp32(), db, core.BruteForceOptions{NumPivots: 32, Seed: seed})
	mk("distvec-filt", dv, err)
	om, err := core.NewOMEDRANK(sp32(), db, core.OMEDRANKOptions{NumVoters: 6, Seed: seed})
	mk("omedrank", om, err)
	return qs, kinds
}

func sp32() space.Space[[]float32] { return space.L2{} }

// TestSearchAppendZeroAllocs asserts the headline property of the scratch
// subsystem: a warm per-worker Searcher answers queries with zero
// steady-state allocations when the caller supplies the result buffer.
func TestSearchAppendZeroAllocs(t *testing.T) {
	const k = 10
	queries, kinds := allocKinds(t)
	for _, kc := range kinds {
		t.Run(kc.kind, func(t *testing.T) {
			s := kc.index.(index.SearcherProvider[[]float32]).NewSearcher()
			dst := make([]topk.Neighbor, 0, k)
			// Warm every query first: candidate counts differ per query,
			// so each may grow the scratch buffers a little further.
			for _, q := range queries {
				dst = s.SearchAppend(dst[:0], q, k)
			}
			qi := 0
			if avg := testing.AllocsPerRun(50, func() {
				dst = s.SearchAppend(dst[:0], queries[qi%len(queries)], k)
				qi++
			}); avg != 0 {
				t.Errorf("warm SearchAppend allocates %v times per run, want 0", avg)
			}
		})
	}
}

// TestSearchAppendZeroAllocsTraced asserts the observability hard
// constraint: attaching a QueryTrace to a warm Searcher (stage counters +
// stage timing on every query) must not add a single allocation — and the
// trace must actually be populated, so the guard cannot pass by tracing
// nothing.
func TestSearchAppendZeroAllocsTraced(t *testing.T) {
	const k = 10
	queries, kinds := allocKinds(t)
	for _, kc := range kinds {
		t.Run(kc.kind, func(t *testing.T) {
			s := kc.index.(index.SearcherProvider[[]float32]).NewSearcher()
			tr, ok := s.(obs.Traceable)
			if !ok {
				t.Fatalf("%s searcher does not implement obs.Traceable", kc.kind)
			}
			var trace obs.QueryTrace
			tr.SetTrace(&trace)
			dst := make([]topk.Neighbor, 0, k)
			for _, q := range queries {
				dst = s.SearchAppend(dst[:0], q, k)
			}
			qi := 0
			if avg := testing.AllocsPerRun(50, func() {
				trace.Reset()
				dst = s.SearchAppend(dst[:0], queries[qi%len(queries)], k)
				qi++
			}); avg != 0 {
				t.Errorf("warm traced SearchAppend allocates %v times per run, want 0", avg)
			}
			if trace.FilterCandidates == 0 {
				t.Errorf("trace.FilterCandidates = 0 after a traced query")
			}
			if trace.RefineDistances == 0 {
				t.Errorf("trace.RefineDistances = 0 after a traced query")
			}
			if trace.RefineNs <= 0 {
				t.Errorf("trace.RefineNs = %d after a traced query", trace.RefineNs)
			}
			// Detaching must stop writes: a stale-trace bug here would be a
			// data race under pooled reuse.
			tr.SetTrace(nil)
			before := trace
			dst = s.SearchAppend(dst[:0], queries[0], k)
			if trace != before {
				t.Errorf("trace mutated after SetTrace(nil): %+v -> %+v", before, trace)
			}
		})
	}
}

// TestSearcherReMintKeepsZeroAllocs asserts the stale-searcher fix does not
// tax the unmutated hot path: a warm searcher stays at zero allocations, a
// mutation makes exactly the next use re-warm (allowed to allocate), and the
// steady state returns to zero allocations afterwards.
func TestSearcherReMintKeepsZeroAllocs(t *testing.T) {
	const k = 10
	const n, nq, seed = 600, 8, 7
	all := dataset.SIFT(seed, n+nq)
	db, queries := all[:n], all[n:]
	na, err := core.NewNAPP(sp32(), db, core.NAPPOptions{
		NumPivots: 64, NumPivotIndex: 16, NumPivotSearch: 16, MinShared: 1, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := na.NewSearcher()
	dst := make([]topk.Neighbor, 0, k)
	warm := func() {
		for _, q := range queries {
			dst = s.SearchAppend(dst[:0], q, k)
		}
	}
	measure := func(label string) {
		qi := 0
		if avg := testing.AllocsPerRun(50, func() {
			dst = s.SearchAppend(dst[:0], queries[qi%len(queries)], k)
			qi++
		}); avg != 0 {
			t.Errorf("%s: warm SearchAppend allocates %v times per run, want 0", label, avg)
		}
	}
	warm()
	measure("before mutation")
	na.Add(append([]float32(nil), db[0]...))
	warm() // first post-mutation use re-mints; re-warm the fresh scratch
	measure("after Add + re-warm")
	if err := na.Delete(uint32(len(db))); err != nil {
		t.Fatal(err)
	}
	warm()
	measure("after Delete + re-warm")
}

// TestSearchSingleAlloc asserts the plain Search entry point costs exactly
// the documented constant on a warm index: one allocation, the returned
// result slice (scratch is pooled per query inside the index).
func TestSearchSingleAlloc(t *testing.T) {
	const k = 10
	queries, kinds := allocKinds(t)
	for _, kc := range kinds {
		t.Run(kc.kind, func(t *testing.T) {
			for _, q := range queries {
				kc.index.Search(q, k)
			}
			qi := 0
			if avg := testing.AllocsPerRun(50, func() {
				kc.index.Search(queries[qi%len(queries)], k)
				qi++
			}); avg > 1 {
				t.Errorf("warm Search allocates %v times per run, want <= 1 (the result slice)", avg)
			}
		})
	}
}
