package core

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/index"
	"repro/internal/obs"
	"repro/internal/permutation"
	"repro/internal/scratch"
	"repro/internal/space"
	"repro/internal/topk"
)

// NAPPOptions configures NewNAPP.
type NAPPOptions struct {
	// NumPivots is the total pivot count m. The paper finds values
	// between 500 and 2000 a good trade-off (gains flatten beyond 500)
	// at the cost of m distance computations per permutation. Default
	// 512.
	NumPivots int
	// NumPivotIndex (mi) is how many of the closest pivots each data
	// point posts to. The paper found mi = 32 to work well. Default 32.
	NumPivotIndex int
	// NumPivotSearch (ms) is how many of the query's closest pivots
	// have their posting lists scanned. Defaults to NumPivotIndex.
	NumPivotSearch int
	// MinShared (t) discards candidates sharing fewer than t indexed
	// pivots with the query. Smaller t = higher recall, more
	// candidates. Default 2.
	MinShared int
	// MaxCandidates caps the number of candidates passed to the refine
	// stage; candidates are first sorted by the number of shared pivots
	// (descending), the "additional filtering step" the paper applies
	// for expensive distances. 0 means no cap.
	MaxCandidates int
	// Seed drives pivot sampling.
	Seed int64
}

func (o *NAPPOptions) defaults() {
	if o.NumPivots <= 0 {
		o.NumPivots = 512
	}
	if o.NumPivotIndex <= 0 {
		o.NumPivotIndex = 32
	}
	if o.NumPivotIndex > o.NumPivots {
		o.NumPivotIndex = o.NumPivots
	}
	if o.NumPivotSearch <= 0 {
		o.NumPivotSearch = o.NumPivotIndex
	}
	if o.NumPivotSearch > o.NumPivots {
		o.NumPivotSearch = o.NumPivots
	}
	if o.NumPivotSearch > 255 {
		// ScanCount counters are bytes; cap ms so they cannot wrap.
		o.NumPivotSearch = 255
	}
	if o.MinShared <= 0 {
		o.MinShared = 2
	}
	if o.MinShared > o.NumPivotSearch {
		o.MinShared = o.NumPivotSearch
	}
}

// NAPP is the Neighborhood APProximation index of Tellez et al. (§2.3): an
// inverted file mapping each pivot to the ids of the data points that have
// it among their mi closest pivots. Queries merge the posting lists of the
// query's ms closest pivots with the ScanCount algorithm (Li et al.), keep
// candidates sharing at least t pivots, and refine with the true distance.
//
// Per the paper's §3.2 our implementation does not compress the index and
// uses plain ScanCount counters that are reset for every query (their
// memset); posting lists store ascending ids for cache-friendly merging.
type NAPP[T any] struct {
	sp       space.Space[T]
	data     []T
	pivots   *permutation.Pivots[T]
	postings [][]uint32 // pivot -> ascending data ids
	opts     NAPPOptions
	// deleted holds tombstoned ids (see napp_dynamic.go); nil until the
	// first Delete.
	deleted map[uint32]struct{}
	// mutSeq counts mutations (Add/Delete/Compact). Searchers minted
	// before a mutation compare it against the value they were built under
	// and re-mint their scratch state, so a warm searcher can never search
	// with arenas sized or stamped for a previous index generation.
	mutSeq uint64
	// scratch pools per-query search state. Where the paper resets
	// ScanCount counters with a per-query O(N) memset, the pooled
	// epoch-stamped arena makes the reset O(1); the remaining buffers are
	// grow-only, so a warm steady state performs no allocations.
	scratch scratch.Pool[nappScratch]
}

// nappScratch is the per-query state of one NAPP search. It lives either in
// the index's pool (plain Search) or inside a per-worker index.Searcher.
type nappScratch struct {
	perm     permutation.Scratch
	counters scratch.Counters
	cands    []uint32
	// sel holds (candidate, shared-pivot score) pairs for the
	// MaxCandidates partial selection.
	sel   []topk.Neighbor
	queue topk.Queue
}

// NewNAPP samples pivots and builds the inverted file (in parallel).
func NewNAPP[T any](sp space.Space[T], data []T, opts NAPPOptions) (*NAPP[T], error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("core: empty data set")
	}
	if opts.NumPivots <= 0 {
		opts.NumPivots = 512
	}
	if opts.NumPivots > len(data) {
		opts.NumPivots = len(data)
	}
	r := rand.New(rand.NewSource(opts.Seed))
	pv, err := permutation.Sample(r, sp, data, opts.NumPivots)
	if err != nil {
		return nil, fmt.Errorf("core: sampling pivots: %w", err)
	}
	return NewNAPPWithPivots(sp, data, pv, opts)
}

// NewNAPPWithPivots builds the index over an explicit pivot set, bypassing
// random sampling. Tests use it to reproduce the paper's worked example.
func NewNAPPWithPivots[T any](sp space.Space[T], data []T, pv *permutation.Pivots[T], opts NAPPOptions) (*NAPP[T], error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("core: empty data set")
	}
	opts.NumPivots = pv.M()
	opts.defaults()
	mi := opts.NumPivotIndex
	orders := computeOrders(pv, data, mi)
	postings := make([][]uint32, opts.NumPivots)
	for i := 0; i < len(data); i++ {
		for _, p := range orders[i*mi : (i+1)*mi] {
			postings[p] = append(postings[p], uint32(i))
		}
	}
	return &NAPP[T]{sp: sp, data: data, pivots: pv, postings: postings, opts: opts}, nil
}

// Name implements index.Index.
func (na *NAPP[T]) Name() string { return "napp" }

// Stats implements index.Sized.
func (na *NAPP[T]) Stats() index.Stats {
	var cells int64
	for _, p := range na.postings {
		cells += int64(len(p))
	}
	return index.Stats{
		Bytes:          cells*4 + int64(len(na.postings))*24,
		BuildDistances: int64(len(na.data)) * int64(na.pivots.M()),
	}
}

// Options returns the effective (defaulted) parameters.
func (na *NAPP[T]) Options() NAPPOptions { return na.opts }

// SetMinShared adjusts t without rebuilding (t only affects search). Not
// safe to call concurrently with Search.
func (na *NAPP[T]) SetMinShared(t int) {
	if t > 0 {
		na.opts.MinShared = t
	}
}

// Search implements index.Index.
func (na *NAPP[T]) Search(query T, k int) []topk.Neighbor {
	return na.SearchAppend(nil, query, k)
}

// SearchAppend answers like Search but appends the results to dst; with a
// dst of sufficient capacity a warm call performs zero allocations.
func (na *NAPP[T]) SearchAppend(dst []topk.Neighbor, query T, k int) []topk.Neighbor {
	s := na.scratch.Get()
	defer na.scratch.Put(s)
	return na.search(s, nil, dst, query, k)
}

// NewSearcher implements index.SearcherProvider. NAPP is mutable
// (napp_dynamic.go), so its searchers track the mutation sequence and
// re-mint their scratch after an Add/Delete/Compact rather than searching
// with state built for the previous index generation.
func (na *NAPP[T]) NewSearcher() index.Searcher[T] {
	return &searcher[T, nappScratch]{
		fn:     na.search,
		mutSeq: func() uint64 { return na.mutSeq },
		minted: na.mutSeq,
	}
}

// MutationSeq returns the number of mutations (Add/Delete/Compact) applied
// to the index so far. A searcher is stale when the index's sequence has
// advanced past the one the searcher was minted under; stale searchers heal
// themselves on next use.
func (na *NAPP[T]) MutationSeq() uint64 { return na.mutSeq }

// search is the scratch-threaded hot path shared by Search, SearchAppend
// and Searchers.
func (na *NAPP[T]) search(s *nappScratch, tr *obs.QueryTrace, dst []topk.Neighbor, query T, k int) []topk.Neighbor {
	if k <= 0 {
		return dst
	}
	var t0 time.Time
	if tr != nil {
		t0 = time.Now()
	}
	qorder := na.pivots.OrderWith(&s.perm, query)
	ms := na.opts.NumPivotSearch
	t := na.opts.MinShared

	// ScanCount merge: one counter per data point, logically zeroed per
	// query by the arena's epoch bump (the paper's memset, made O(1)).
	// Counts fit a byte because ms is capped at 255.
	s.counters.Begin(len(na.data))
	cands := s.cands[:0]
	for _, p := range qorder[:ms] {
		for _, id := range na.postings[p] {
			if int(s.counters.Inc(id)) == t {
				cands = append(cands, id)
			}
		}
	}
	if na.deleted != nil {
		kept := cands[:0]
		for _, id := range cands {
			if _, dead := na.deleted[id]; !dead {
				kept = append(kept, id)
			}
		}
		cands = kept
	}
	if tr != nil {
		tr.FilterCandidates += int64(len(cands))
		obs.AddSince(&tr.FilterNs, t0)
		t0 = time.Now()
	}
	if max := na.opts.MaxCandidates; max > 0 && len(cands) > max {
		// Additional filtering for expensive distances: prefer
		// candidates sharing more pivots with the query, then smaller
		// ids for determinism. Scoring by negated count turns that into
		// the (Dist, ID) order of topk.SelectK, whose partial selection
		// replaces the former full sort of all candidates.
		sel := s.sel[:0]
		for _, id := range cands {
			sel = append(sel, topk.Neighbor{ID: id, Dist: -float64(s.counters.Count(id))})
		}
		s.sel = sel
		best := topk.SelectK(sel, max)
		cands = cands[:0]
		for _, c := range best {
			cands = append(cands, c.ID)
		}
	}
	s.cands = cands
	if tr != nil {
		obs.AddSince(&tr.MergeNs, t0)
	}
	return refineInto(na.sp, na.data, query, cands, k, &s.queue, dst, tr)
}
