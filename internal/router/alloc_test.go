package router_test

// Steady-state allocation guards for the sharded query path: a warm
// localSearcher.SearchAppend performs zero allocations per query, with and
// without a stage trace attached — observability must not cost the hot
// path its zero-alloc property (the same contract internal/core/alloc_test.go
// enforces for every unsharded index kind).

import (
	"testing"

	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/indextest"
	"repro/internal/obs"
	"repro/internal/shard"
	"repro/internal/space"
	"repro/internal/topk"
)

// buildAllocLocal shards the dense corpus across 3 NAPP indexes — a filter
// kind, so the trace sees filter candidates and refine evaluations from
// every shard probe.
func buildAllocLocal(t *testing.T) (loc index.SearcherProvider[[]float32], queries [][]float32) {
	t.Helper()
	db, qs := indextest.DenseCorpus()
	kb := kindBuilder[[]float32]{"napp", func(data [][]float32) (index.Index[[]float32], error) {
		return core.NewNAPP(space.L2{}, data, core.NAPPOptions{
			NumPivots: 32, NumPivotIndex: 8, MinShared: 1, Seed: seed,
		})
	}}
	return buildLocal(t, kb, db, 3, shard.Hash), qs
}

func TestLocalSearcherZeroAllocs(t *testing.T) {
	loc, queries := buildAllocLocal(t)
	const k = 10
	s := loc.NewSearcher()
	dst := make([]topk.Neighbor, 0, k)

	// Warm: grow the merge buffer and every sub-searcher's scratch.
	for _, q := range queries {
		dst = s.SearchAppend(dst[:0], q, k)
	}
	q := queries[0]
	if got := testing.AllocsPerRun(50, func() {
		dst = s.SearchAppend(dst[:0], q, k)
	}); got != 0 {
		t.Errorf("warm sharded SearchAppend allocates %v/op, want 0", got)
	}
	if len(dst) == 0 {
		t.Fatal("warm search returned no results")
	}
}

func TestLocalSearcherZeroAllocsTraced(t *testing.T) {
	loc, queries := buildAllocLocal(t)
	const k = 10
	s := loc.NewSearcher()
	tt, ok := s.(obs.Traceable)
	if !ok {
		t.Fatal("local searcher does not implement obs.Traceable")
	}
	var trace obs.QueryTrace
	tt.SetTrace(&trace)
	dst := make([]topk.Neighbor, 0, k)
	for _, q := range queries {
		dst = s.SearchAppend(dst[:0], q, k)
	}
	q := queries[0]
	if got := testing.AllocsPerRun(50, func() {
		trace.Reset()
		dst = s.SearchAppend(dst[:0], q, k)
	}); got != 0 {
		t.Errorf("warm traced sharded SearchAppend allocates %v/op, want 0", got)
	}
	if trace.FilterCandidates <= 0 || trace.RefineDistances <= 0 {
		t.Errorf("trace saw candidates=%d refines=%d, want > 0 (shard probes share the trace)",
			trace.FilterCandidates, trace.RefineDistances)
	}
	if trace.MergeNs <= 0 {
		t.Errorf("trace.MergeNs = %d, want > 0 (merge time attributed by the local searcher)", trace.MergeNs)
	}

	// Detaching must stop all writes: a stale trace pointer on a pooled
	// searcher would corrupt a later query's attribution.
	tt.SetTrace(nil)
	before := trace
	dst = s.SearchAppend(dst[:0], q, k)
	if trace != before {
		t.Error("detached searcher still writes to the old trace")
	}
}
