package router_test

// End-to-end tests of the replica-group tier: each shard served by a
// *group* of identical httptest daemons, and the replication guarantees
// checked — a replica loss is invisible (byte-identical, never "partial"),
// failing replicas are ejected and re-admitted by the background prober,
// and a hedge fires against a different replica than the laggard.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/router"
	"repro/internal/server"
	"repro/internal/shard"
	"repro/internal/space"
	"repro/internal/vptree"
)

// bootReplicatedSet builds the S-shard DNA set with R identical serving
// processes per shard (fleet[s][r]), plus the unsharded reference daemon.
func bootReplicatedSet(t *testing.T, S, R int) (fleet [][]*httptest.Server, unsharded *httptest.Server, queries [][]byte) {
	t.Helper()
	db := dataset.DNA(rtSeed, rtN, dataset.DNAOptions{})
	ids, err := shard.IDs(shard.Hash, len(db), S)
	if err != nil {
		t.Fatal(err)
	}
	for s := range ids {
		tree, err := vptree.New[[]byte](space.NormalizedLevenshtein{}, shard.Subset(db, ids[s]), vptree.Options{Seed: rtSeed})
		if err != nil {
			t.Fatal(err)
		}
		group := make([]*httptest.Server, R)
		for r := range group {
			group[r] = writeServed[[]byte](t, tree, server.Manifest{
				Dataset: "dna", Seed: rtSeed, N: rtN, Generation: int64(10 + s),
				Shard: &shard.Info{Set: rtName, Partitioner: shard.Hash, Shards: S, Index: s},
			})
		}
		fleet = append(fleet, group)
	}
	ref, err := vptree.New[[]byte](space.NormalizedLevenshtein{}, db, vptree.Options{Seed: rtSeed})
	if err != nil {
		t.Fatal(err)
	}
	unsharded = writeServed[[]byte](t, ref, server.Manifest{Dataset: "dna", Seed: rtSeed, N: rtN})
	queries = append(dataset.DNA(rtSeed+1, 6, dataset.DNAOptions{}), db[:3]...)
	return fleet, unsharded, queries
}

func topologyOf(fleet [][]*httptest.Server) [][]string {
	topo := make([][]string, len(fleet))
	for s, group := range fleet {
		for _, rep := range group {
			topo[s] = append(topo[s], rep.URL)
		}
	}
	return topo
}

// bootReplicaRouter mounts a Router over the replicated fleet.
func bootReplicaRouter(t *testing.T, fleet [][]*httptest.Server, opts router.Options) *httptest.Server {
	t.Helper()
	opts.Replicas = topologyOf(fleet)
	rt, err := router.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	ts := httptest.NewServer(rt.Handler())
	t.Cleanup(ts.Close)
	return ts
}

// TestRouterReplicaDownInvisible is the acceptance bar of the replicated
// tier: killing one replica of a 2×2 fleet mid-traffic yields answers that
// stay byte-identical to the unsharded daemon's and never "partial" —
// under the *fail-closed* default, because the shard still has a live
// member. Only killing the whole group degrades, exactly as without
// replication.
func TestRouterReplicaDownInvisible(t *testing.T) {
	fleet, unsharded, queries := bootReplicatedSet(t, 2, 2)
	rt := bootReplicaRouter(t, fleet, router.Options{ShardTimeout: 5 * time.Second})

	check := func(phase string) {
		t.Helper()
		for qi, q := range queries {
			body := map[string]any{"query": string(q), "k": 5}
			wantStatus, want := post(t, searchURL(unsharded.URL), body)
			gotStatus, got := post(t, searchURL(rt.URL), body)
			if wantStatus != http.StatusOK || gotStatus != http.StatusOK {
				t.Fatalf("%s: query %d: statuses %d/%d: %s", phase, qi, wantStatus, gotStatus, got)
			}
			if !bytes.Equal(want, got) {
				t.Fatalf("%s: query %d: routed answer differs from unsharded\nrouted    %s\nunsharded %s", phase, qi, got, want)
			}
			if bytes.Contains(got, []byte("partial")) {
				t.Fatalf("%s: query %d: answer marked partial with a live replica: %s", phase, qi, got)
			}
		}
	}

	check("healthy fleet")
	fleet[0][0].Close() // kill shard 0, replica 0: the group fails over
	check("one replica down")

	// Readiness: degraded but every shard still answerable -> 200.
	hresp, err := http.Get(rt.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hraw, _ := io.ReadAll(hresp.Body)
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("healthz with one replica down: status %d, want 200: %s", hresp.StatusCode, hraw)
	}
	if !bytes.Contains(hraw, []byte(`"down"`)) {
		t.Errorf("healthz does not report the down replica: %s", hraw)
	}

	// Kill the group's last member: now the shard is gone and the
	// fail-closed router must refuse, like the unreplicated tier.
	fleet[0][1].Close()
	status, raw := post(t, searchURL(rt.URL), map[string]any{"query": string(queries[0]), "k": 5})
	if status != http.StatusBadGateway {
		t.Fatalf("whole group down: status %d, want 502: %s", status, raw)
	}
	hresp, err = http.Get(rt.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz with a whole group down: status %d, want 503", hresp.StatusCode)
	}
}

// syntheticReplica is a minimal protocol speaker whose failure mode can be
// toggled at runtime: while failing, searches and health probes answer 500.
type syntheticReplica struct {
	ts      *httptest.Server
	failing atomic.Bool
	serves  atomic.Int64 // successful search answers
}

func newSyntheticReplica(t *testing.T, id int) *syntheticReplica {
	t.Helper()
	sr := &syntheticReplica{}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/indexes", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, `{"indexes":[{"name":"dna","kind":"seqscan","space":"l2","n":1}]}`)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		if sr.failing.Load() {
			http.Error(w, "wedged", http.StatusInternalServerError)
			return
		}
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("POST /v1/indexes/dna/search", func(w http.ResponseWriter, r *http.Request) {
		if sr.failing.Load() {
			http.Error(w, "wedged", http.StatusInternalServerError)
			return
		}
		sr.serves.Add(1)
		fmt.Fprintf(w, `{"index":"dna","k":1,"results":[{"id":%d,"dist":0.5}]}`, id)
	})
	sr.ts = httptest.NewServer(mux)
	t.Cleanup(sr.ts.Close)
	return sr
}

// replicaRows decodes the router's /statusz per-replica counters.
func replicaRows(t *testing.T, routerURL string) []struct {
	Shard   int    `json:"shard"`
	Replica int    `json:"replica"`
	URL     string `json:"url"`
	Ejected bool   `json:"ejected"`
	Hedges  int64  `json:"hedges"`
} {
	t.Helper()
	resp, err := http.Get(routerURL + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st struct {
		Shards []struct {
			Shard   int    `json:"shard"`
			Replica int    `json:"replica"`
			URL     string `json:"url"`
			Ejected bool   `json:"ejected"`
			Hedges  int64  `json:"hedges"`
		} `json:"shards"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st.Shards
}

// TestRouterEjectAndReadmit: a replica failing repeatedly leaves the
// rotation (queries keep succeeding via its group-mate), and the
// background prober re-admits it once /healthz recovers.
func TestRouterEjectAndReadmit(t *testing.T) {
	bad := newSyntheticReplica(t, 0)
	good := newSyntheticReplica(t, 1)
	bad.failing.Store(true)

	rt, err := router.New(router.Options{
		Replicas:      [][]string{{bad.ts.URL, good.ts.URL}},
		ShardTimeout:  2 * time.Second,
		EjectAfter:    2,
		ProbeInterval: 30 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	ts := httptest.NewServer(rt.Handler())
	t.Cleanup(ts.Close)

	// Every query succeeds (failover inside the group), and the failing
	// replica's streak crosses the ejection threshold.
	for i := 0; i < 6; i++ {
		status, raw := post(t, ts.URL+"/v1/indexes/dna/search", map[string]any{"query": "A", "k": 1})
		if status != http.StatusOK {
			t.Fatalf("query %d with a failing replica: status %d: %s", i, status, raw)
		}
	}
	ejected := false
	for _, row := range replicaRows(t, ts.URL) {
		if row.URL == bad.ts.URL {
			ejected = row.Ejected
		}
	}
	if !ejected {
		t.Fatal("failing replica was not ejected after repeated failures")
	}

	// Recovery: the prober sees /healthz answer and re-admits it.
	bad.failing.Store(false)
	deadline := time.Now().Add(3 * time.Second)
	for {
		readmitted := true
		for _, row := range replicaRows(t, ts.URL) {
			if row.URL == bad.ts.URL && row.Ejected {
				readmitted = false
			}
		}
		if readmitted {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("recovered replica was not re-admitted by the prober")
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Re-admitted means serving regular traffic again: the round-robin
	// must land on it within a few queries.
	before := bad.serves.Load()
	for i := 0; i < 4; i++ {
		post(t, ts.URL+"/v1/indexes/dna/search", map[string]any{"query": "A", "k": 1})
	}
	if bad.serves.Load() == before {
		t.Error("re-admitted replica got no traffic from the rotation")
	}
}

// TestRouterHedgeAcrossReplicas: with a slow and a fast replica in one
// group, the hedge fires against the *other* member and its answer wins.
func TestRouterHedgeAcrossReplicas(t *testing.T) {
	slow := newSyntheticReplica(t, 0)
	fast := newSyntheticReplica(t, 1)
	// Slow down replica 0 only.
	slowMux := http.NewServeMux()
	slowMux.HandleFunc("GET /v1/indexes", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, `{"indexes":[{"name":"dna","kind":"seqscan","space":"l2","n":1}]}`)
	})
	slowMux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok\n")
	})
	slowMux.HandleFunc("POST /v1/indexes/dna/search", func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(300 * time.Millisecond)
		io.WriteString(w, `{"index":"dna","k":1,"results":[{"id":0,"dist":0.5}]}`)
	})
	slow.ts.Config.Handler = slowMux

	rt, err := router.New(router.Options{
		Replicas:     [][]string{{slow.ts.URL, fast.ts.URL}},
		ShardTimeout: 5 * time.Second,
		HedgeDelay:   20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	ts := httptest.NewServer(rt.Handler())
	t.Cleanup(ts.Close)

	// The round-robin cursor starts the first query on replica 0 (slow);
	// after 20ms the hedge launches replica 1 (fast), whose answer wins.
	start := time.Now()
	status, raw := post(t, ts.URL+"/v1/indexes/dna/search", map[string]any{"query": "A", "k": 1})
	elapsed := time.Since(start)
	if status != http.StatusOK {
		t.Fatalf("hedged search: status %d: %s", status, raw)
	}
	if !bytes.Contains(raw, []byte(`"id":1`)) {
		t.Fatalf("hedge answer should come from the fast replica: %s", raw)
	}
	if elapsed >= 300*time.Millisecond {
		t.Errorf("hedged query took %v, the slow replica's full latency", elapsed)
	}
	hedged := false
	for _, row := range replicaRows(t, ts.URL) {
		if row.URL == fast.ts.URL && row.Hedges >= 1 {
			hedged = true
		}
	}
	if !hedged {
		t.Error("hedge was not counted against the fast replica")
	}
}

// TestRouterMidRolloutGenerations: replicas of one group serving different
// generations (a rollout in flight) are accepted at discovery, and the
// /v1/indexes generation matrix exposes both — the signal a rollout driver
// watches for convergence.
func TestRouterMidRolloutGenerations(t *testing.T) {
	db := dataset.DNA(rtSeed, rtN, dataset.DNAOptions{})
	tree, err := vptree.New[[]byte](space.NormalizedLevenshtein{}, db, vptree.Options{Seed: rtSeed})
	if err != nil {
		t.Fatal(err)
	}
	old := writeServed[[]byte](t, tree, server.Manifest{Dataset: "dna", Seed: rtSeed, N: rtN, Generation: 7})
	niu := writeServed[[]byte](t, tree, server.Manifest{Dataset: "dna", Seed: rtSeed, N: rtN, Generation: 8})

	rt, err := router.New(router.Options{Replicas: [][]string{{old.URL, niu.URL}}})
	if err != nil {
		t.Fatalf("mid-rollout generation skew within a group must be accepted: %v", err)
	}
	t.Cleanup(rt.Close)
	ts := httptest.NewServer(rt.Handler())
	t.Cleanup(ts.Close)

	resp, err := http.Get(ts.URL + "/v1/indexes")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list struct {
		Indexes []struct {
			Name        string    `json:"name"`
			Generations [][]int64 `json:"generations"`
		} `json:"indexes"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list.Indexes) != 1 {
		t.Fatalf("listed %d indexes", len(list.Indexes))
	}
	gens := list.Indexes[0].Generations
	if len(gens) != 1 || len(gens[0]) != 2 || gens[0][0] != 7 || gens[0][1] != 8 {
		t.Fatalf("generation matrix = %v, want [[7 8]]", gens)
	}
}

// TestRouterReplicasRejectDivergentContent: a group whose members serve
// different corpora (different N) is a mis-wired fleet, refused at startup.
func TestRouterReplicasRejectDivergentContent(t *testing.T) {
	db := dataset.DNA(rtSeed, rtN, dataset.DNAOptions{})
	big, err := vptree.New[[]byte](space.NormalizedLevenshtein{}, db, vptree.Options{Seed: rtSeed})
	if err != nil {
		t.Fatal(err)
	}
	small, err := vptree.New[[]byte](space.NormalizedLevenshtein{}, db[:rtN/2], vptree.Options{Seed: rtSeed})
	if err != nil {
		t.Fatal(err)
	}
	a := writeServed[[]byte](t, big, server.Manifest{Dataset: "dna", Seed: rtSeed, N: rtN})
	b := writeServed[[]byte](t, small, server.Manifest{Dataset: "dna", Seed: rtSeed, N: rtN / 2})
	if _, err := router.New(router.Options{Replicas: [][]string{{a.URL, b.URL}}}); err == nil {
		t.Fatal("router accepted a replica group whose members serve different corpora")
	}
}
