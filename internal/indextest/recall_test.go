package indextest

import (
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/space"
)

var updateRecall = flag.Bool("update-recall", false,
	"rewrite testdata/recall_golden.json with the measured recall values")

// recallGoldenPath holds the checked-in recall@10 per index kind over the
// deterministic synthetic L2 corpus.
const recallGoldenPath = "testdata/recall_golden.json"

// recallTolerance is the band around each golden value. The measurement is
// exactly deterministic today; the band exists so a legitimate change to
// floating-point summation order or tie handling does not demand a golden
// update, while a real quality regression (recall drops by points, not
// ulps) still fails.
const recallTolerance = 0.05

// TestRecallRegressionGolden measures recall@10 for every index kind over
// the synthetic L2 corpus and compares against the checked-in goldens, so
// future perf refactors cannot silently degrade result quality. Run
//
//	go test ./internal/indextest -run RecallRegression -update-recall
//
// after an intentional quality change to refresh the file (and eyeball the
// diff: every moved value is a behavior change you are signing off on).
func TestRecallRegressionGolden(t *testing.T) {
	db, queries := denseCorpus()
	sp := space.L2{}
	got := map[string]float64{}
	for _, kc := range denseKinds(sp, db) {
		r, err := RecallAtK[[]float32](sp, db, queries, 10, kc.build)
		if err != nil {
			t.Fatalf("%s: %v", kc.kind, err)
		}
		got[kc.kind] = r
	}

	if *updateRecall {
		blob, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(recallGoldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(recallGoldenPath, append(blob, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s: %v", recallGoldenPath, got)
		return
	}

	blob, err := os.ReadFile(recallGoldenPath)
	if err != nil {
		t.Fatalf("reading goldens (regenerate with -update-recall): %v", err)
	}
	golden := map[string]float64{}
	if err := json.Unmarshal(blob, &golden); err != nil {
		t.Fatal(err)
	}
	for kind, want := range golden {
		if _, ok := got[kind]; !ok {
			t.Errorf("golden kind %q no longer measured (stale %s?)", kind, recallGoldenPath)
		}
		_ = want
	}
	for kind, r := range got {
		want, ok := golden[kind]
		if !ok {
			t.Errorf("kind %q has no golden recall; add it with -update-recall", kind)
			continue
		}
		if math.Abs(r-want) > recallTolerance {
			verb := "degraded"
			if r > want {
				verb = "improved"
			}
			t.Errorf("%s: recall@10 %s: measured %.4f, golden %.4f (±%.2f); if intentional, refresh with -update-recall",
				kind, verb, r, want, recallTolerance)
		}
	}
}

// TestRecallHarnessExactOnExactIndexes sanity-checks the harness itself:
// exact methods must score recall 1 on their own corpus.
func TestRecallHarnessExactOnExactIndexes(t *testing.T) {
	db, queries := denseCorpus()
	sp := space.L2{}
	for _, kc := range denseKinds(sp, db) {
		if kc.kind != "seqscan" && kc.kind != "vptree" {
			continue
		}
		r, err := RecallAtK[[]float32](sp, db, queries, 10, kc.build)
		if err != nil {
			t.Fatal(err)
		}
		if r != 1 {
			t.Errorf("%s: exact method scored recall %.4f", kc.kind, r)
		}
	}
}
