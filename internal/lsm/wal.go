package lsm

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"os"

	"repro/internal/vfs"
)

// Write-ahead log. Every mutation (add, delete) is appended to the current
// WAL segment before it is acknowledged, so a kill -9 at any moment loses no
// acknowledged write: Open replays the log into a fresh memtable. Sealing
// the memtable into an immutable tier rotates the log — the sealed tier is
// durable first, then a new empty segment replaces the old one.
//
// # Format
//
//	offset 0  magic   "PSWL" (4 bytes)
//	          version uint16, little-endian (currently 1)
//	records   each:
//	            frameLen uint32   length of the frame that follows
//	            frame             op uint8 | id uint32 | payload bytes
//	            crc32c   uint32   Castagnoli checksum of the frame
//
// All integers are little-endian. An add frame's payload is the raw wire
// bytes of the object (the tree re-decodes them on replay — the index file
// format deliberately never stores objects, so the WAL and tier segments
// are where added objects live). A delete frame has an empty payload.
//
// Replay stops at the first incomplete or checksum-failing record and
// truncates the file there: a torn tail is exactly what a crash mid-append
// leaves behind, and everything before it was individually checksummed at
// write time. A record was only acknowledged after fsync, so truncation can
// only discard writes that were never acknowledged.

const (
	walMagic   = "PSWL"
	walVersion = 1

	walOpAdd    = 1
	walOpDelete = 2

	// walHeaderLen is the byte length of the segment header.
	walHeaderLen = 6
	// walMaxFrame bounds a single record frame; a larger declared length is
	// treated as corruption (torn tail), not an allocation request.
	walMaxFrame = 64 << 20
)

var walCastagnoli = crc32.MakeTable(crc32.Castagnoli)

// walRecord is one replayed mutation.
type walRecord struct {
	op      uint8
	id      uint32
	payload []byte
}

// wal is an open, append-only WAL segment.
type wal struct {
	f       vfs.File
	path    string
	size    int64
	nosync  bool
	records int
}

// createWAL creates a fresh segment at path (truncating any stale file) and
// durably writes its header.
func createWAL(fsys vfs.FS, path string, nosync bool) (*wal, error) {
	f, err := fsys.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	hdr := make([]byte, 0, walHeaderLen)
	hdr = append(hdr, walMagic...)
	hdr = binary.LittleEndian.AppendUint16(hdr, walVersion)
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return nil, err
	}
	w := &wal{f: f, path: path, size: walHeaderLen, nosync: nosync}
	if err := w.sync(); err != nil {
		f.Close()
		return nil, err
	}
	return w, nil
}

// openWAL opens an existing segment, replays its records and truncates any
// torn tail so subsequent appends extend a clean log. A missing file is
// created fresh (the crash window between manifest write and segment
// creation); a header shorter than walHeaderLen is itself a torn tail of
// createWAL and is rewritten.
func openWAL(fsys vfs.FS, path string, nosync bool) (*wal, []walRecord, error) {
	data, err := fsys.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		w, cerr := createWAL(fsys, path, nosync)
		return w, nil, cerr
	}
	if err != nil {
		return nil, nil, err
	}
	if len(data) < walHeaderLen {
		w, cerr := createWAL(fsys, path, nosync)
		return w, nil, cerr
	}
	if string(data[:4]) != walMagic {
		return nil, nil, fmt.Errorf("lsm: %s: bad WAL magic %q", path, data[:4])
	}
	if v := binary.LittleEndian.Uint16(data[4:6]); v != walVersion {
		return nil, nil, fmt.Errorf("lsm: %s: unsupported WAL version %d (this build writes %d)", path, v, walVersion)
	}

	var recs []walRecord
	off := int64(walHeaderLen)
	for {
		rest := data[off:]
		if len(rest) < 4 {
			break
		}
		frameLen := binary.LittleEndian.Uint32(rest[:4])
		if frameLen < 5 || frameLen > walMaxFrame || int64(len(rest)) < int64(4+frameLen+4) {
			break
		}
		frame := rest[4 : 4+frameLen]
		want := binary.LittleEndian.Uint32(rest[4+frameLen : 4+frameLen+4])
		if crc32.Checksum(frame, walCastagnoli) != want {
			break
		}
		rec := walRecord{op: frame[0], id: binary.LittleEndian.Uint32(frame[1:5])}
		if len(frame) > 5 {
			rec.payload = append([]byte(nil), frame[5:]...)
		}
		recs = append(recs, rec)
		off += int64(4 + frameLen + 4)
	}

	f, err := fsys.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, err
	}
	if off != int64(len(data)) {
		// Torn tail: cut it before appending, so a replay after a later
		// crash cannot resurrect half a record's bytes as garbage.
		if err := f.Truncate(off); err != nil {
			f.Close()
			return nil, nil, err
		}
	}
	if _, err := f.Seek(off, 0); err != nil {
		f.Close()
		return nil, nil, err
	}
	w := &wal{f: f, path: path, size: off, nosync: nosync, records: len(recs)}
	if off != int64(len(data)) {
		if err := w.sync(); err != nil {
			f.Close()
			return nil, nil, err
		}
	}
	return w, recs, nil
}

// append writes one record. It does not sync; callers batch appends and call
// sync once before acknowledging (the durability point).
func (w *wal) append(op uint8, id uint32, payload []byte) error {
	frameLen := 5 + len(payload)
	if frameLen > walMaxFrame {
		return fmt.Errorf("lsm: WAL record of %d bytes exceeds the %d-byte frame cap", frameLen, walMaxFrame)
	}
	buf := make([]byte, 0, 4+frameLen+4)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(frameLen))
	buf = append(buf, op)
	buf = binary.LittleEndian.AppendUint32(buf, id)
	buf = append(buf, payload...)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf[4:], walCastagnoli))
	if _, err := w.f.Write(buf); err != nil {
		return err
	}
	w.size += int64(len(buf))
	w.records++
	return nil
}

// sync flushes appended records to stable storage — the write-durability
// point. With nosync set (tests, ephemeral trees) it is a no-op.
func (w *wal) sync() error {
	if w.nosync {
		return nil
	}
	return w.f.Sync()
}

// close syncs and closes the segment file.
func (w *wal) close() error {
	if err := w.sync(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}
