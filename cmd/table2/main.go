// Command table2 regenerates Table 2 of the paper: index size and creation
// time for every method on every data set.
//
// Usage:
//
//	table2 [-n 5000] [-seed 1] [-datasets sift,dna,...]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	n := flag.Int("n", 5000, "points per data set")
	k := flag.Int("k", 10, "neighbors per query (affects method defaults)")
	seed := flag.Int64("seed", 1, "random seed")
	datasets := flag.String("datasets", "", "comma-separated subset (default: all)")
	flag.Parse()

	cfg := experiments.Config{N: *n, K: *k, Seed: *seed}
	names := experiments.Names()
	if *datasets != "" {
		names = strings.Split(*datasets, ",")
	}
	fmt.Println("# Table 2: dataset\tmethod\tindex-size\tcreation-time")
	for _, name := range names {
		r, ok := experiments.Get(name)
		if !ok {
			fmt.Fprintf(os.Stderr, "table2: unknown dataset %q (known: %s)\n",
				name, strings.Join(experiments.Names(), ", "))
			os.Exit(2)
		}
		if err := r.Table2(cfg, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "table2: %s: %v\n", name, err)
			os.Exit(1)
		}
	}
}
