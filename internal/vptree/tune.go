package vptree

import (
	"fmt"

	"repro/internal/seqscan"
	"repro/internal/space"
)

// SetAlpha changes the pruning stretch factors without rebuilding the tree
// (alpha only affects search). It must not be called concurrently with
// Search.
func (t *Tree[T]) SetAlpha(left, right float64) {
	if left > 0 {
		t.opts.AlphaLeft = left
	}
	if right > 0 {
		t.opts.AlphaRight = right
	}
}

// Alpha returns the current stretch factors.
func (t *Tree[T]) Alpha() (left, right float64) {
	return t.opts.AlphaLeft, t.opts.AlphaRight
}

// Tune searches for the largest pruning stretch alpha (applied to both
// sides) that keeps k-NN recall at or above targetRecall on the given sample
// queries, mirroring the paper's grid-search-with-shrinking-step procedure
// (§3.2). The tree is built once on sample; only alpha varies. It returns
// the tuned alpha and the recall achieved at that alpha.
//
// The procedure doubles alpha while recall holds, then bisects between the
// last passing and first failing value. Larger alpha = more pruning =
// faster, so the returned alpha is the speed-optimal setting for the target.
func Tune[T any](sp space.Space[T], sample, queries []T, k int, targetRecall float64, opts Options) (alpha, recall float64, err error) {
	if len(sample) == 0 || len(queries) == 0 {
		return 0, 0, fmt.Errorf("vptree: Tune needs non-empty sample and queries")
	}
	if k <= 0 {
		return 0, 0, fmt.Errorf("vptree: Tune needs k > 0")
	}
	tree, err := New(sp, sample, opts)
	if err != nil {
		return 0, 0, err
	}
	truth := seqscan.New(sp, sample).SearchAll(queries, k)

	measure := func(a float64) float64 {
		tree.SetAlpha(a, a)
		var hit, total int
		for i, q := range queries {
			want := map[uint32]bool{}
			for _, n := range truth[i] {
				want[n.ID] = true
			}
			for _, n := range tree.Search(q, k) {
				if want[n.ID] {
					hit++
				}
			}
			total += len(truth[i])
		}
		if total == 0 {
			return 0
		}
		return float64(hit) / float64(total)
	}

	lo := 1.0
	rec := measure(lo)
	if rec < targetRecall {
		// Even exact-style pruning misses the target (non-metric
		// space); shrink alpha below 1 to prune less.
		for lo > 1.0/1024 {
			next := lo / 2
			if rec = measure(next); rec >= targetRecall {
				lo = next
				break
			}
			lo = next
		}
		return lo, rec, nil
	}
	// Double until recall drops.
	hi := lo
	for i := 0; i < 20; i++ {
		cand := hi * 2
		if r := measure(cand); r >= targetRecall {
			hi = cand
			lo = cand
			rec = r
			continue
		}
		hi = cand
		break
	}
	if hi == lo {
		return lo, rec, nil
	}
	// Bisect (lo passes, hi fails).
	for i := 0; i < 12; i++ {
		mid := (lo + hi) / 2
		if r := measure(mid); r >= targetRecall {
			lo, rec = mid, r
		} else {
			hi = mid
		}
	}
	return lo, rec, nil
}
