package vptree

import (
	"io"

	"repro/internal/codec"
	"repro/internal/space"
)

// Persistence. The payload stores the construction options, the build-time
// distance counter and the node structure in preorder; data objects are not
// stored — Load receives the same data slice the tree was built over (the
// header records its length for validation). Node encoding:
//
//	leaf:     u8(1)  bucket []u32
//	internal: u8(2)  pivot u32  radius f64  left  right
//
// Every data id must appear exactly once across pivots and buckets; Decode
// verifies this, so a structurally valid file always yields a searchable
// tree.

const (
	nodeLeaf     = 1
	nodeInternal = 2
)

// Save serializes the tree to w in the codec format under kind "vptree".
func (t *Tree[T]) Save(w io.Writer) error {
	cw := codec.NewWriter(w, codec.KindVPTree, t.sp.Name(), len(t.data))
	t.Encode(cw)
	return cw.Close()
}

// Encode writes the tree payload into an open codec writer. It exists
// separately from Save so indexes embedding a tree (core.PermVPTree) can
// nest it inside their own payload.
func (t *Tree[T]) Encode(cw *codec.Writer) {
	cw.Int(t.opts.BucketSize)
	cw.F64(t.opts.AlphaLeft)
	cw.F64(t.opts.AlphaRight)
	cw.F64(t.opts.Beta)
	cw.I64(t.opts.Seed)
	cw.I64(t.buildDist)
	cw.Int(t.nodes)
	encodeNode(cw, t.root)
}

func encodeNode(cw *codec.Writer, n *node) {
	if n.bucket != nil {
		cw.U8(nodeLeaf)
		cw.U32s(n.bucket)
		return
	}
	cw.U8(nodeInternal)
	cw.U32(n.pivot)
	cw.F64(n.radius)
	encodeNode(cw, n.left)
	encodeNode(cw, n.right)
}

// Load reads a tree saved by Save. sp and data must match the originals:
// the recorded space name and data-set size are validated against them.
func Load[T any](cr *codec.Reader, sp space.Space[T], data []T) (*Tree[T], error) {
	if err := cr.Expect(codec.KindVPTree, sp.Name(), len(data)); err != nil {
		return nil, err
	}
	t, err := Decode(cr, sp, data)
	if err != nil {
		return nil, err
	}
	if err := cr.Finish(); err != nil {
		return nil, err
	}
	return t, nil
}

// Decode reads the tree payload written by Encode, leaving cr positioned
// after it.
func Decode[T any](cr *codec.Reader, sp space.Space[T], data []T) (*Tree[T], error) {
	t := &Tree[T]{sp: sp, data: data, symmetric: sp.Properties().Symmetric}
	t.opts.BucketSize = cr.Int()
	t.opts.AlphaLeft = cr.F64()
	t.opts.AlphaRight = cr.F64()
	t.opts.Beta = cr.F64()
	t.opts.Seed = cr.I64()
	t.buildDist = cr.I64()
	t.nodes = cr.Int()
	// A valid tree never nests deeper than one internal node per data
	// point; the cap turns corrupt self-referential payloads into errors
	// instead of unbounded recursion.
	seen := make([]bool, len(data))
	var total int
	t.root = decodeNode(cr, len(data)+1, seen, &total)
	if err := cr.Err(); err != nil {
		return nil, err
	}
	if total != len(data) {
		cr.Corruptf("tree holds %d ids, data set has %d", total, len(data))
		return nil, cr.Err()
	}
	return t, nil
}

func decodeNode(cr *codec.Reader, depth int, seen []bool, total *int) *node {
	if depth <= 0 {
		cr.Corruptf("tree nesting exceeds data size")
		return nil
	}
	claim := func(id uint32) bool {
		if int(id) >= len(seen) {
			cr.Corruptf("node id %d out of range [0, %d)", id, len(seen))
			return false
		}
		if seen[id] {
			cr.Corruptf("node id %d appears twice", id)
			return false
		}
		seen[id] = true
		*total++
		return true
	}
	switch tag := cr.U8(); tag {
	case nodeLeaf:
		bucket := cr.U32s()
		if cr.Err() != nil {
			return nil
		}
		for _, id := range bucket {
			if !claim(id) {
				return nil
			}
		}
		if bucket == nil {
			// An empty bucket decodes to nil, but search treats a nil
			// bucket as an internal node; normalize.
			bucket = []uint32{}
		}
		return &node{bucket: bucket}
	case nodeInternal:
		n := &node{pivot: cr.U32(), radius: cr.F64()}
		if cr.Err() != nil || !claim(n.pivot) {
			return nil
		}
		n.left = decodeNode(cr, depth-1, seen, total)
		n.right = decodeNode(cr, depth-1, seen, total)
		if cr.Err() != nil {
			return nil
		}
		return n
	default:
		cr.Corruptf("unknown node tag %d", tag)
		return nil
	}
}
