// Command benchcheck validates a bench.sh output file against the
// permsearch-bench/v1 schema: required identity fields, a non-empty result
// set, and per-method numbers that are present and positive. bench.sh runs
// it on every emit, so a drift between the awk emitter and the documented
// schema (or a benchmark rename that silently empties the results) fails
// the bench run instead of committing an unreadable trajectory point.
//
// Usage: go run ./scripts/benchcheck BENCH_X.json [...]
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
)

// Schema is the bench document format benchcheck accepts.
const Schema = "permsearch-bench/v1"

type doc struct {
	Schema    string `json:"schema"`
	Bench     string `json:"bench"`
	Timestamp string `json:"timestamp"`
	Go        string `json:"go"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	CPU       string `json:"cpu"`
	Results   []row  `json:"results"`
}

type row struct {
	Method      string   `json:"method"`
	NsPerOp     *float64 `json:"ns_per_op"`
	BytesPerOp  *float64 `json:"bytes_per_op"`
	AllocsPerOp *float64 `json:"allocs_per_op"`
	QPS         *float64 `json:"qps"`
}

func check(path string) error {
	blob, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	dec := json.NewDecoder(bytes.NewReader(blob))
	dec.DisallowUnknownFields()
	var d doc
	if err := dec.Decode(&d); err != nil {
		return fmt.Errorf("%s: %v", path, err)
	}
	if d.Schema != Schema {
		return fmt.Errorf("%s: schema %q, want %q", path, d.Schema, Schema)
	}
	for field, v := range map[string]string{
		"bench": d.Bench, "timestamp": d.Timestamp, "go": d.Go, "goos": d.GOOS, "goarch": d.GOARCH,
	} {
		if v == "" {
			return fmt.Errorf("%s: missing %q", path, field)
		}
	}
	if len(d.Results) == 0 {
		return fmt.Errorf("%s: no results (did the benchmark filter stop matching?)", path)
	}
	for i, r := range d.Results {
		if r.Method == "" {
			return fmt.Errorf("%s: results[%d]: missing method", path, i)
		}
		for name, v := range map[string]*float64{
			"ns_per_op": r.NsPerOp, "bytes_per_op": r.BytesPerOp, "allocs_per_op": r.AllocsPerOp, "qps": r.QPS,
		} {
			if v == nil {
				return fmt.Errorf("%s: results[%d] (%s): missing %s", path, i, r.Method, name)
			}
			if *v < 0 {
				return fmt.Errorf("%s: results[%d] (%s): %s = %v is negative", path, i, r.Method, name, *v)
			}
		}
		// A zero latency means the row did not really run.
		if *r.NsPerOp == 0 || *r.QPS == 0 {
			return fmt.Errorf("%s: results[%d] (%s): zero ns_per_op/qps", path, i, r.Method)
		}
	}
	return nil
}

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: benchcheck BENCH_X.json [...]")
		os.Exit(2)
	}
	for _, path := range os.Args[1:] {
		if err := check(path); err != nil {
			fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("benchcheck: %s ok\n", path)
	}
}
