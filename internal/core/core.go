// Package core implements the permutation-based k-NN search methods that are
// the subject of the paper (§2): brute-force filtering of permutations (full
// and binarized), the Permutation Prefix Index (PP-index), the Metric
// Inverted File (MI-file), the Neighborhood APProximation index (NAPP),
// indexing permutations in a VP-tree (Figueroa & Fredriksson), and Fagin et
// al.'s OMEDRANK rank-aggregation baseline.
//
// All methods are filter-and-refine: the filtering stage selects candidate
// identifiers using only precomputed permutation information, and the refine
// stage re-ranks the candidates with the true distance. The number of
// candidates is controlled by a gamma parameter expressed as a fraction of
// the data set size, exactly as in §2.2 of the paper.
package core

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/permutation"
	"repro/internal/space"
	"repro/internal/topk"
)

// PermDist selects the distance used to compare permutations in the
// filtering stage.
type PermDist int

const (
	// Rho is Spearman's rho (sum of squared rank differences), the most
	// effective choice per §2.1 and the default everywhere.
	Rho PermDist = iota
	// FootruleDist is the Footrule (sum of absolute rank differences).
	FootruleDist
)

// String returns the report name of the permutation distance.
func (d PermDist) String() string {
	switch d {
	case Rho:
		return "spearman-rho"
	case FootruleDist:
		return "footrule"
	default:
		return fmt.Sprintf("PermDist(%d)", int(d))
	}
}

// distance returns the comparison between flattened permutation rows.
func (d PermDist) distance(a, b []int32) float64 {
	switch d {
	case FootruleDist:
		return permutation.Footrule(a, b)
	default:
		return permutation.SpearmanRho(a, b)
	}
}

// gammaCount converts a candidate fraction into an absolute candidate count,
// clamped to [k, n] so a query can always be answered.
func gammaCount(frac float64, n, k int) int {
	g := int(frac * float64(n))
	if g < k {
		g = k
	}
	if g > n {
		g = n
	}
	return g
}

// refine computes true distances from the candidates to the query and
// returns the k nearest, ordered by increasing distance. Candidate ids must
// be unique. Data points are the left distance argument (left queries).
func refine[T any](sp space.Space[T], data []T, query T, cands []uint32, k int) []topk.Neighbor {
	q := topk.NewQueue(k)
	for _, id := range cands {
		q.Push(id, sp.Distance(data[id], query))
	}
	return q.Results()
}

// parallelFor runs f(i) for every i in [0, n) on up to GOMAXPROCS
// goroutines (uniform-cost build loops; see engine.Pool.For). Iterations
// must be independent.
func parallelFor(n int, f func(i int)) {
	engine.Pool{}.For(n, f)
}

// computePermutations returns the flattened n x m matrix of permutations of
// every data point, computed in parallel (the paper builds permutation
// indexes with four threads; we use GOMAXPROCS).
func computePermutations[T any](pv *permutation.Pivots[T], data []T) []int32 {
	m := pv.M()
	out := make([]int32, len(data)*m)
	parallelFor(len(data), func(i int) {
		pv.Permutation(data[i], out[i*m:i*m+m])
	})
	return out
}

// computeOrders returns the flattened n x mi matrix holding, for each data
// point, the indices of its mi closest pivots (closest first).
func computeOrders[T any](pv *permutation.Pivots[T], data []T, mi int) []int32 {
	m := pv.M()
	if mi > m {
		mi = m
	}
	out := make([]int32, len(data)*mi)
	parallelFor(len(data), func(i int) {
		order := pv.Order(data[i], nil)
		copy(out[i*mi:(i+1)*mi], order[:mi])
	})
	return out
}
