#!/bin/sh
# Smoke test of the replicated serving tier and its rollout control plane,
# end to end over real processes:
#
#   shardsplit --> 2 shards x 2 replicas of permserve --> permrouter
#                  1x permserve (unsharded baseline)
#                  permctl (rollout driver)
#
# Asserts that killing one replica mid-traffic leaves the router's answers
# byte-identical to the unsharded baseline and never "partial"; that
# `permctl rollout` ships a new generation through the surviving fleet
# (skipping the dead replica) and the generation vector converges; and
# that rolling out a *regressed* index set (built over the wrong corpus)
# fails the golden recall gate, rolls back automatically, and leaves the
# fleet converged on the old generation. Run via `make rollout-smoke`.
set -eu

BIN=${1:?usage: rollout_smoke.sh path/to/bin-dir}
TMP=$(mktemp -d)
PIDS=""
trap 'for p in $PIDS; do kill "$p" 2>/dev/null || true; done; rm -rf "$TMP"' EXIT INT TERM

fail() {
    echo "rollout-smoke: FAIL: $1" >&2
    for f in "$TMP"/*.log; do
        echo "--- $f ---" >&2
        cat "$f" >&2
    done
    exit 1
}

# wait_addr LOGFILE NAME -> echoes the bound address once logged.
wait_addr() {
    i=0
    while [ $i -lt 50 ]; do
        ADDR=$(sed -n 's#.*listening on http://\([0-9.:]*\).*#\1#p' "$1" | head -n1)
        [ -n "$ADDR" ] && { echo "$ADDR"; return 0; }
        sleep 0.2
        i=$((i + 1))
    done
    fail "$2 never started listening"
}

# gen_of ADDR -> the generation the replica serves.
gen_of() {
    curl -sf "http://$1/v1/indexes" | sed -n 's/.*"generation":\([0-9]*\).*/\1/p' | head -n1
}

# 1. Build three generations of the same 2-shard DNA set plus an unsharded
#    baseline: gen 1 (the fleet's starting state), gen 2 (a clean rebuild of
#    the same corpus), and gen 3 built over the WRONG corpus (-seed 99) — a
#    byte-valid set whose answers are garbage, catchable only by the golden
#    recall gate.
for SPEC in "gen1 1 42" "gen2 2 42" "gen3 3 99"; do
    set -- $SPEC
    "$BIN/shardsplit" -out "$TMP/$1" -set dna -dataset dna -n 1200 -shards 2 -method vptree \
        -generation "$2" -seed "$3" >>"$TMP/split.log" 2>&1 || fail "shardsplit $1 failed"
done
"$BIN/shardsplit" -out "$TMP/base" -set dna -dataset dna -n 1200 -shards 1 -method vptree \
    -generation 1 -seed 42 >>"$TMP/split.log" 2>&1 || fail "shardsplit baseline failed"

# 2. Boot the fleet: each replica serves gen 1 from its own directory (the
#    rollout driver ships bytes per replica dir), 2 shards x 2 replicas.
for S in 0 1; do
    for R in 0 1; do
        DIR="$TMP/rep$S$R"
        mkdir -p "$DIR"
        cp "$TMP/gen1/shard$S/dna.psix" "$TMP/gen1/shard$S/dna.json" "$DIR/"
        "$BIN/permserve" -dir "$DIR" -addr 127.0.0.1:0 >"$TMP/rep$S$R.log" 2>&1 &
        eval "P$S$R=\$!"
        PIDS="$PIDS $!"
    done
done
"$BIN/permserve" -dir "$TMP/base/shard0" -addr 127.0.0.1:0 >"$TMP/base.log" 2>&1 &
PIDS="$PIDS $!"
A00=$(wait_addr "$TMP/rep00.log" "shard 0 replica 0")
A01=$(wait_addr "$TMP/rep01.log" "shard 0 replica 1")
A10=$(wait_addr "$TMP/rep10.log" "shard 1 replica 0")
A11=$(wait_addr "$TMP/rep11.log" "shard 1 replica 1")
AB=$(wait_addr "$TMP/base.log" "baseline")

# 3. One topology file describes the fleet to both router and driver.
cat >"$TMP/fleet.json" <<EOF
{
  "schema": "permsearch-topology/v1",
  "shards": [
    [{"url": "http://$A00", "dir": "$TMP/rep00"},
     {"url": "http://$A01", "dir": "$TMP/rep01"}],
    [{"url": "http://$A10", "dir": "$TMP/rep10"},
     {"url": "http://$A11", "dir": "$TMP/rep11"}]
  ]
}
EOF
"$BIN/permrouter" -topology "$TMP/fleet.json" -addr 127.0.0.1:0 -eject-after 2 -probe-interval 500ms \
    >"$TMP/rt.log" 2>&1 &
RT_PID=$!
PIDS="$PIDS $RT_PID"
RT=$(wait_addr "$TMP/rt.log" "router")

HEALTH=$(curl -sf "http://$RT/healthz") || fail "router healthz failed"
[ "$HEALTH" = "ok" ] || fail "router healthz said '$HEALTH'"

# 4. Replica-loss invisibility: kill shard 0's second replica mid-traffic.
#    Answers must stay byte-identical to the unsharded baseline and never
#    partial — the group fails over, unlike the single-replica tier where
#    this was a degraded answer.
kill "$P01" && wait "$P01" 2>/dev/null || true
for BODY in \
    '{"query": "ACGTACGTACGTACGT", "k": 5}' \
    '{"query": "TTTTGGGGCCCCAAAA", "k": 3}' \
    '{"queries": ["ACGTACGTAC", "GGGGGGGGGG"], "k": 4}'; do
    ROUTED=$(curl -sf -d "$BODY" "http://$RT/v1/indexes/dna/search") || fail "router search failed with a dead replica: $BODY"
    DIRECT=$(curl -sf -d "$BODY" "http://$AB/v1/indexes/dna/search") || fail "baseline search failed: $BODY"
    [ "$ROUTED" = "$DIRECT" ] || fail "answer with a dead replica differs from the baseline
  body:   $BODY
  router: $ROUTED
  direct: $DIRECT"
    case "$ROUTED" in *partial*) fail "answer marked partial despite a live replica: $ROUTED" ;; esac
done
CODE=$(curl -s -o /dev/null -w '%{http_code}' "http://$RT/healthz")
[ "$CODE" = "200" ] || fail "healthz answered $CODE with one dead replica of two, want 200 (degraded-but-ready)"

# 5. Rollout: permctl ships generation 2 through the fleet. The dead
#    replica is skipped with a warning; everyone else must converge.
"$BIN/permctl" rollout -topology "$TMP/fleet.json" -manifest "$TMP/gen2/dna.shardset.json" \
    -router "http://$RT" -golden 16 >"$TMP/roll2.log" 2>&1 || fail "rollout of generation 2 failed"
grep -q '"rolled_back": false' "$TMP/roll2.log" || fail "generation 2 report claims a rollback"
grep -q "http://$A01" "$TMP/roll2.log" || fail "dead replica not reported as skipped"
for A in "$A00" "$A10" "$A11"; do
    GEN=$(gen_of "$A")
    [ "$GEN" = "2" ] || fail "replica $A serves generation '$GEN' after rollout, want 2"
done

# 6. Regression: generation 3 was built over the wrong corpus — its bytes
#    verify clean, so only the golden recall gate can refuse it. permctl
#    must fail, roll back automatically, and re-converge the fleet on 2.
if "$BIN/permctl" rollout -topology "$TMP/fleet.json" -manifest "$TMP/gen3/dna.shardset.json" \
    -router "http://$RT" -golden 16 >"$TMP/roll3.log" 2>&1; then
    fail "rollout of the regressed generation 3 succeeded"
fi
grep -q '"rolled_back": true' "$TMP/roll3.log" || fail "regressed rollout did not report a rollback"
grep -q 'recall' "$TMP/roll3.log" || fail "rollback report does not name the recall gate"
for A in "$A00" "$A10" "$A11"; do
    GEN=$(gen_of "$A")
    [ "$GEN" = "2" ] || fail "replica $A serves generation '$GEN' after rollback, want 2"
done

# 7. The fleet still answers exactly like the baseline after the round trip
#    (generation 2 is a clean rebuild of the same corpus).
Q='{"query": "ACGTACGTACGTACGT", "k": 5}'
ROUTED=$(curl -sf -d "$Q" "http://$RT/v1/indexes/dna/search") || fail "post-rollback search failed"
DIRECT=$(curl -sf -d "$Q" "http://$AB/v1/indexes/dna/search") || fail "post-rollback baseline search failed"
[ "$ROUTED" = "$DIRECT" ] || fail "post-rollback answer differs from the baseline"

# 8. Graceful shutdown.
kill "$RT_PID"
STATUS=0
wait "$RT_PID" || STATUS=$?
[ "$STATUS" -eq 0 ] || fail "router exited with status $STATUS on SIGTERM"
grep -q "permrouter: bye" "$TMP/rt.log" || fail "no graceful router shutdown on SIGTERM"

echo "rollout-smoke: OK (2x2 fleet behind $RT: replica loss invisible, gen 1->2 converged, regressed gen 3 rolled back)"
