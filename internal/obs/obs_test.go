package obs

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
)

// TestBucketBoundaries walks every bucket edge over the full int64 range:
// bucketOf must be monotone, BucketLow/BucketHigh must invert it exactly,
// and adjacent buckets must tile without gaps or overlaps.
func TestBucketBoundaries(t *testing.T) {
	if got := bucketOf(0); got != 0 {
		t.Fatalf("bucketOf(0) = %d", got)
	}
	prevHigh := int64(-1)
	for i := 0; i < NumBuckets; i++ {
		lo, hi := BucketLow(i), BucketHigh(i)
		if lo != prevHigh+1 {
			t.Fatalf("bucket %d: low %d, previous high %d (gap or overlap)", i, lo, prevHigh)
		}
		if hi < lo {
			t.Fatalf("bucket %d: high %d < low %d", i, hi, lo)
		}
		if got := bucketOf(lo); got != i {
			t.Fatalf("bucketOf(low=%d) = %d, want %d", lo, got, i)
		}
		if got := bucketOf(hi); got != i {
			t.Fatalf("bucketOf(high=%d) = %d, want %d", hi, got, i)
		}
		prevHigh = hi
	}
	if prevHigh != math.MaxInt64 {
		t.Fatalf("last bucket high = %d, want MaxInt64", prevHigh)
	}
}

// TestBucketRelativeError: for values >= 2^subBits the bucket width is at
// most value/2^subBits, i.e. 6.25% relative resolution; below that, exact.
func TestBucketRelativeError(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 100000; trial++ {
		v := rng.Int63n(1 << uint(4+rng.Intn(59)))
		b := bucketOf(v)
		lo, hi := BucketLow(b), BucketHigh(b)
		if v < lo || v > hi {
			t.Fatalf("v=%d outside its bucket [%d,%d]", v, lo, hi)
		}
		if v < 1<<subBits {
			if lo != v || hi != v {
				t.Fatalf("small v=%d not exact: [%d,%d]", v, lo, hi)
			}
			continue
		}
		if b < NumBuckets-1 {
			width := hi - lo + 1
			if width > v>>subBits+1 {
				t.Fatalf("v=%d bucket width %d exceeds v/16+1", v, width)
			}
		}
	}
}

// TestRecordOverflowAndClamp: negative values clamp to zero, MaxInt64
// lands in the top bucket, and count/sum stay consistent.
func TestRecordOverflowAndClamp(t *testing.T) {
	var h Histogram
	h.Record(-5)
	h.Record(0)
	h.Record(math.MaxInt64)
	var s HistSnapshot
	h.Snapshot(&s)
	if s.Count != 3 {
		t.Fatalf("count = %d, want 3", s.Count)
	}
	if s.Buckets[0] != 2 {
		t.Fatalf("zero bucket = %d, want 2 (negative clamped)", s.Buckets[0])
	}
	if s.Buckets[NumBuckets-1] != 1 {
		t.Fatalf("top bucket = %d, want 1", s.Buckets[NumBuckets-1])
	}
	if s.Quantile(1) != math.MaxInt64 {
		t.Fatalf("q1 = %d, want MaxInt64", s.Quantile(1))
	}
}

// TestQuantileOracle draws values from several distributions and checks
// every estimated quantile against an exact sorted oracle: the estimate
// must never undershoot and may overshoot by at most the bucket
// resolution (1/16 relative, +1 for integer edges).
func TestQuantileOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	dists := map[string]func() int64{
		"uniform-small": func() int64 { return rng.Int63n(100) },
		"uniform-wide":  func() int64 { return rng.Int63n(1 << 40) },
		"exponentialish": func() int64 {
			return int64(math.Exp(rng.Float64() * 20)) // spans ~9 decades
		},
		"latency-like": func() int64 { // microseconds-to-seconds in ns
			base := int64(50_000)
			if rng.Intn(100) == 0 {
				return base * int64(1+rng.Intn(1000)) // tail
			}
			return base + rng.Int63n(200_000)
		},
	}
	for name, draw := range dists {
		var h Histogram
		vals := make([]int64, 20000)
		for i := range vals {
			vals[i] = draw()
			h.Record(vals[i])
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		var s HistSnapshot
		h.Snapshot(&s)
		if s.Count != int64(len(vals)) {
			t.Fatalf("%s: count %d != %d", name, s.Count, len(vals))
		}
		for _, q := range []float64{0, 0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 0.999, 1} {
			rank := int(math.Ceil(q * float64(len(vals))))
			if rank < 1 {
				rank = 1
			}
			exact := vals[rank-1]
			est := s.Quantile(q)
			if est < exact {
				t.Errorf("%s q=%g: estimate %d below exact %d", name, q, est, exact)
			}
			bound := exact + exact>>subBits + 1
			if est > bound {
				t.Errorf("%s q=%g: estimate %d above bound %d (exact %d)", name, q, est, bound, exact)
			}
		}
	}
}

// TestConcurrentRecordSnapshot hammers Record from many goroutines while
// snapshots and exposition writes run concurrently; meaningful under
// -race. The final snapshot must account for every record.
func TestConcurrentRecordSnapshot(t *testing.T) {
	reg := NewRegistry()
	hv := reg.Histogram("obs_test_latency_seconds", "test", 1e-9, "worker")
	const workers = 8
	const perWorker = 5000
	hists := make([]*Histogram, workers)
	for i := range hists {
		hists[i] = hv.With(string(rune('a' + i)))
	}
	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() { // concurrent reader: snapshots + full exposition
		defer readers.Done()
		var s HistSnapshot
		for {
			select {
			case <-stop:
				return
			default:
			}
			hists[0].Snapshot(&s)
			if s.Count < 0 {
				t.Error("negative snapshot count")
				return
			}
			var sb strings.Builder
			if err := reg.WriteText(&sb); err != nil {
				t.Errorf("WriteText: %v", err)
				return
			}
		}
	}()
	var writers sync.WaitGroup
	for w := 0; w < workers; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < perWorker; i++ {
				hists[w].Record(rng.Int63n(1 << 30))
			}
		}(w)
	}
	writers.Wait()
	close(stop)
	readers.Wait()
	var total int64
	var s HistSnapshot
	for _, h := range hists {
		h.Snapshot(&s)
		total += s.Count
	}
	if total != workers*perWorker {
		t.Fatalf("total recorded %d, want %d", total, workers*perWorker)
	}
}

// TestCounterGauge covers the scalar types' contracts.
func TestCounterGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	c.Add(-10) // ignored: counters are monotone
	if c.Load() != 5 {
		t.Fatalf("counter = %d, want 5", c.Load())
	}
	var g Gauge
	g.Set(7)
	g.Add(-3)
	if g.Load() != 4 {
		t.Fatalf("gauge = %d, want 4", g.Load())
	}
}

// TestRegistryIdempotentAndConflicts: same-shape re-registration resolves
// to the same child; shape conflicts panic.
func TestRegistryIdempotentAndConflicts(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("obs_test_total", "h", "index").With("x")
	b := reg.Counter("obs_test_total", "h", "index").With("x")
	if a != b {
		t.Fatal("re-registration returned a different child")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("kind conflict did not panic")
			}
		}()
		reg.Gauge("obs_test_total", "h", "index")
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("label conflict did not panic")
			}
		}()
		reg.Counter("obs_test_total", "h", "shard")
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("invalid name did not panic")
			}
		}()
		reg.Counter("0bad", "h")
	}()
}

// TestQueryTraceMerge checks the batch-path fold.
func TestQueryTraceMerge(t *testing.T) {
	a := QueryTrace{FilterCandidates: 1, RefineDistances: 2, FilterNs: 3, RefineNs: 4, MergeNs: 5, BaseNs: 6, TierNs: 7, MemtableNs: 8, MaskNs: 9, Components: 10}
	b := a
	b.Merge(&a)
	want := QueryTrace{FilterCandidates: 2, RefineDistances: 4, FilterNs: 6, RefineNs: 8, MergeNs: 10, BaseNs: 12, TierNs: 14, MemtableNs: 16, MaskNs: 18, Components: 20}
	if b != want {
		t.Fatalf("merge = %+v, want %+v", b, want)
	}
	b.Reset()
	if b != (QueryTrace{}) {
		t.Fatalf("reset = %+v", b)
	}
}

// TestRecordAllocFree: Record and Snapshot into a caller-owned snapshot
// must not allocate (they sit on the warm search path).
func TestRecordAllocFree(t *testing.T) {
	var h Histogram
	var s HistSnapshot
	if n := testing.AllocsPerRun(100, func() {
		h.Record(12345)
		h.Record(1 << 40)
	}); n != 0 {
		t.Fatalf("Record allocates %v/op", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		h.Snapshot(&s)
	}); n != 0 {
		t.Fatalf("Snapshot allocates %v/op", n)
	}
	var c Counter
	var g Gauge
	if n := testing.AllocsPerRun(100, func() {
		c.Inc()
		c.Add(3)
		g.Set(int64(c.Load()))
	}); n != 0 {
		t.Fatalf("Counter/Gauge allocate %v/op", n)
	}
}
