package knngraph_test

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/knngraph"
	"repro/internal/space"
	"repro/internal/topk"
)

// TestGraphSearchAppendZeroAllocs pins the PR 8 fix: a warm graph query
// runs entirely on pooled scratch — epoch-stamped visited arena, reused
// frontier/result queues, reseeded RNG — so SearchAppend into a
// caller-supplied buffer is zero allocations per query.
func TestGraphSearchAppendZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; guard runs in the plain test job")
	}
	const n, nq, k, seed = 600, 8, 10, 7
	all := dataset.SIFT(seed, n+nq)
	db, queries := all[:n], all[n:]
	sp := space.L2{}

	builds := map[string]func() (*knngraph.Graph[[]float32], error){
		"sw-graph": func() (*knngraph.Graph[[]float32], error) {
			return knngraph.NewSW(sp, db, knngraph.Options{NN: 10, Workers: 1, Seed: seed})
		},
		"nndescent-graph": func() (*knngraph.Graph[[]float32], error) {
			return knngraph.NewNNDescent(sp, db, knngraph.Options{NN: 10, Workers: 1, Seed: seed})
		},
	}
	for kind, build := range builds {
		t.Run(kind, func(t *testing.T) {
			g, err := build()
			if err != nil {
				t.Fatal(err)
			}
			dst := make([]topk.Neighbor, 0, k)
			for _, q := range queries {
				dst = g.SearchAppend(dst[:0], q, k)
			}
			qi := 0
			if avg := testing.AllocsPerRun(50, func() {
				dst = g.SearchAppend(dst[:0], queries[qi%len(queries)], k)
				qi++
			}); avg != 0 {
				t.Errorf("warm SearchAppend allocates %v times per run, want 0", avg)
			}
		})
	}
}

// TestGraphSearchAppendMatchesSearch pins that the pooled path answers
// exactly like Search: two graphs built identically must return the same
// (dist, id) lists when one is driven through Search and the other through
// SearchAppend, consuming the same entry-point seed sequence.
func TestGraphSearchAppendMatchesSearch(t *testing.T) {
	const n, nq, k, seed = 400, 12, 10, 3
	all := dataset.SIFT(seed, n+nq)
	db, queries := all[:n], all[n:]
	sp := space.L2{}

	ga, err := knngraph.NewSW(sp, db, knngraph.Options{NN: 8, Workers: 1, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	gb, err := knngraph.NewSW(sp, db, knngraph.Options{NN: 8, Workers: 1, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	var dst []topk.Neighbor
	for qi, q := range queries {
		want := ga.Search(q, k)
		dst = gb.SearchAppend(dst[:0], q, k)
		if len(want) != len(dst) {
			t.Fatalf("query %d: Search returned %d results, SearchAppend %d", qi, len(want), len(dst))
		}
		for i := range want {
			if want[i] != dst[i] {
				t.Fatalf("query %d result %d: Search %+v, SearchAppend %+v", qi, i, want[i], dst[i])
			}
		}
	}
}
