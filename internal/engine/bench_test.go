package engine_test

import (
	"fmt"
	"testing"

	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/seqscan"
	"repro/internal/space"
	"repro/internal/topk"
)

var benchSink [][]topk.Neighbor

// BenchmarkSearchBatch measures batch-query throughput over the exact
// sequential scan on the synthetic SIFT workload: the serial reference loop
// against SearchBatch at growing pool sizes. Per-op work is constant (one
// whole batch), so ns/op directly compares wall-clock; on a multi-core
// machine the 4-worker case is expected to run >= 2x faster than serial.
func BenchmarkSearchBatch(b *testing.B) {
	data := dataset.SIFT(17, 4064)
	db, queries := data[:4000], data[4000:]
	scan := seqscan.New[[]float32](space.L2{}, db)
	const k = 10

	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			out := make([][]topk.Neighbor, len(queries))
			for j, q := range queries {
				out[j] = scan.Search(q, k)
			}
			benchSink = out
		}
	})
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			p := engine.NewPool(workers)
			for i := 0; i < b.N; i++ {
				benchSink = engine.SearchBatchPool[[]float32](p, scan, queries, k)
			}
		})
	}
}

// BenchmarkPoolFor measures the fan-out overhead of the two scheduling
// strategies on trivially cheap loop bodies — the cost floor every
// parallelized build path pays.
func BenchmarkPoolFor(b *testing.B) {
	sink := make([]int64, 4096)
	for _, bench := range []struct {
		name string
		run  func(p engine.Pool, n int)
	}{
		{"static", func(p engine.Pool, n int) { p.For(n, func(i int) { sink[i] = int64(i) }) }},
		{"dynamic", func(p engine.Pool, n int) { p.ForDynamic(n, func(i int) { sink[i] = int64(i) }) }},
	} {
		b.Run(bench.name, func(b *testing.B) {
			p := engine.Pool{}
			for i := 0; i < b.N; i++ {
				bench.run(p, 4096)
			}
		})
	}
}
