// Package topk provides the small-ordering primitives shared by every index
// in this repository: the Neighbor result type, a bounded max-heap that keeps
// the k nearest candidates seen so far, and quickselect-based partial sorting.
//
// The paper (§2.2) notes that, for the filtering stage of brute-force
// permutation search, incremental sorting is about twice as fast as a
// standard priority queue; both strategies are implemented here so the claim
// can be re-verified (see BenchmarkAblation_IncSortVsHeap).
package topk

import "slices"

// Neighbor is a candidate answer: a data-point identifier and its distance
// from the query. Smaller distances are better.
type Neighbor struct {
	ID   uint32
	Dist float64
}

// ByDist sorts a slice of neighbors by increasing distance, breaking ties by
// increasing ID so results are deterministic. It does not allocate (the
// generic slices sort avoids the interface boxing of sort.Slice), keeping it
// usable on the zero-allocation search hot path.
func ByDist(ns []Neighbor) {
	slices.SortFunc(ns, func(a, b Neighbor) int {
		switch {
		case a.Dist < b.Dist:
			return -1
		case a.Dist > b.Dist:
			return 1
		case a.ID < b.ID:
			return -1
		case a.ID > b.ID:
			return 1
		default:
			return 0
		}
	})
}

// Queue is a bounded max-heap holding the k nearest neighbors observed so
// far. The element at the top of the heap is the *worst* (largest by
// (distance, id)) of the kept set, so a new candidate only enters if it
// beats the top.
//
// The heap orders lexicographically by (Dist, ID), exactly like ByDist and
// SelectK, so the kept set is always the canonical k smallest of everything
// pushed so far — independent of push order, including when distances tie
// at the k boundary. Canonical tie-breaking is what lets a scatter-gather
// merge of per-shard top-k lists (internal/router) reproduce an unsharded
// index bit for bit: both sides resolve a tie in favor of the smaller id.
//
// The zero value is not usable; create one with NewQueue.
type Queue struct {
	k    int
	heap []Neighbor // max-heap by Dist
}

// NewQueue returns a queue that retains the k nearest neighbors pushed into
// it. It panics if k <= 0.
func NewQueue(k int) *Queue {
	if k <= 0 {
		panic("topk: k must be positive")
	}
	return &Queue{k: k, heap: make([]Neighbor, 0, k)}
}

// Reset readies the queue for a new query retaining k nearest neighbors,
// reusing the backing array. It is the reuse entry point of the search hot
// path: a scratch-held queue cycles Reset / Push / AppendResults without
// allocating once its array has grown to the largest k seen. It panics if
// k <= 0.
func (q *Queue) Reset(k int) {
	if k <= 0 {
		panic("topk: k must be positive")
	}
	q.k = k
	q.heap = q.heap[:0]
}

// Len reports how many neighbors are currently held.
func (q *Queue) Len() int { return len(q.heap) }

// K returns the queue capacity.
func (q *Queue) K() int { return q.k }

// Full reports whether the queue holds k elements.
func (q *Queue) Full() bool { return len(q.heap) == q.k }

// Bound returns the current pruning radius: the distance of the worst kept
// neighbor when the queue is full, or +Inf semantics via ok=false otherwise.
func (q *Queue) Bound() (d float64, ok bool) {
	if len(q.heap) < q.k {
		return 0, false
	}
	return q.heap[0].Dist, true
}

// WouldAccept reports whether a candidate at distance d could enter the
// queue if pushed now. A candidate tying the current bound may still enter
// (its id decides), so ties report true; callers use WouldAccept only to
// skip work, and skipping a tie would make the kept set depend on push
// order.
func (q *Queue) WouldAccept(d float64) bool {
	return len(q.heap) < q.k || d <= q.heap[0].Dist
}

// Push offers a candidate to the queue, keeping only the k nearest by
// (distance, id). It reports whether the candidate was retained.
func (q *Queue) Push(id uint32, d float64) bool {
	if len(q.heap) < q.k {
		q.heap = append(q.heap, Neighbor{ID: id, Dist: d})
		q.siftUp(len(q.heap) - 1)
		return true
	}
	if !less(Neighbor{ID: id, Dist: d}, q.heap[0]) {
		return false
	}
	q.heap[0] = Neighbor{ID: id, Dist: d}
	q.siftDown(0)
	return true
}

// PopWorst removes and returns the element with the largest distance.
// It panics if the queue is empty.
func (q *Queue) PopWorst() Neighbor {
	n := len(q.heap)
	if n == 0 {
		panic("topk: PopWorst on empty queue")
	}
	top := q.heap[0]
	q.heap[0] = q.heap[n-1]
	q.heap = q.heap[:n-1]
	if len(q.heap) > 0 {
		q.siftDown(0)
	}
	return top
}

// Results drains the queue and returns its contents ordered by increasing
// distance. The queue is empty afterwards.
func (q *Queue) Results() []Neighbor {
	return q.AppendResults(nil)
}

// AppendResults drains the queue, appending its contents to dst ordered by
// increasing distance (ties by increasing ID), and returns the extended
// slice. With a dst of sufficient capacity it does not allocate; the queue
// is empty afterwards and ready for Reset.
func (q *Queue) AppendResults(dst []Neighbor) []Neighbor {
	start := len(dst)
	dst = append(dst, q.heap...)
	q.heap = q.heap[:0]
	ByDist(dst[start:])
	return dst
}

func (q *Queue) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !less(q.heap[parent], q.heap[i]) {
			return
		}
		q.heap[parent], q.heap[i] = q.heap[i], q.heap[parent]
		i = parent
	}
}

func (q *Queue) siftDown(i int) {
	n := len(q.heap)
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < n && less(q.heap[largest], q.heap[l]) {
			largest = l
		}
		if r < n && less(q.heap[largest], q.heap[r]) {
			largest = r
		}
		if largest == i {
			return
		}
		q.heap[i], q.heap[largest] = q.heap[largest], q.heap[i]
		i = largest
	}
}

// MinQueue is an unbounded min-heap of neighbors; the top is the *nearest*
// element. It drives best-first traversals (small-world graph search,
// multi-probe scoring).
type MinQueue struct {
	heap []Neighbor
}

// Len reports the number of queued neighbors.
func (q *MinQueue) Len() int { return len(q.heap) }

// Push adds a neighbor.
func (q *MinQueue) Push(id uint32, d float64) {
	q.heap = append(q.heap, Neighbor{ID: id, Dist: d})
	i := len(q.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if q.heap[parent].Dist <= q.heap[i].Dist {
			break
		}
		q.heap[parent], q.heap[i] = q.heap[i], q.heap[parent]
		i = parent
	}
}

// Pop removes and returns the nearest neighbor. It panics if empty.
func (q *MinQueue) Pop() Neighbor {
	n := len(q.heap)
	if n == 0 {
		panic("topk: Pop on empty MinQueue")
	}
	top := q.heap[0]
	q.heap[0] = q.heap[n-1]
	q.heap = q.heap[:n-1]
	i := 0
	n--
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && q.heap[l].Dist < q.heap[smallest].Dist {
			smallest = l
		}
		if r < n && q.heap[r].Dist < q.heap[smallest].Dist {
			smallest = r
		}
		if smallest == i {
			break
		}
		q.heap[i], q.heap[smallest] = q.heap[smallest], q.heap[i]
		i = smallest
	}
	return top
}

// Peek returns the nearest neighbor without removing it.
// It panics if empty.
func (q *MinQueue) Peek() Neighbor {
	if len(q.heap) == 0 {
		panic("topk: Peek on empty MinQueue")
	}
	return q.heap[0]
}

// Reset empties the queue, retaining capacity.
func (q *MinQueue) Reset() { q.heap = q.heap[:0] }

// SelectK partially sorts ns so that its k smallest elements (by Dist, ties
// by ID) occupy ns[:k] in increasing order. It runs in expected O(n + k log
// k) time using quickselect followed by a sort of the prefix — this is the
// "incremental sorting" strategy from §2.2 of the paper, which replaces a
// priority queue in the permutation filtering stage.
//
// If k >= len(ns) the whole slice is sorted. The (possibly trimmed) prefix is
// returned.
//
// SelectK works in place and does not allocate, so callers on the hot path
// reuse one scratch candidate slice across queries: truncate, refill, call
// SelectK again.
func SelectK(ns []Neighbor, k int) []Neighbor {
	if k >= len(ns) {
		ByDist(ns)
		return ns
	}
	if k <= 0 {
		return ns[:0]
	}
	quickselect(ns, k)
	prefix := ns[:k]
	ByDist(prefix)
	return prefix
}

// less orders neighbors by (Dist, ID).
func less(a, b Neighbor) bool {
	if a.Dist != b.Dist {
		return a.Dist < b.Dist
	}
	return a.ID < b.ID
}

// quickselect rearranges ns so that the k smallest elements are in ns[:k]
// (in arbitrary order). Hoare-style partitioning with median-of-three pivot
// selection; falls back to insertion handling for tiny ranges.
func quickselect(ns []Neighbor, k int) {
	lo, hi := 0, len(ns)-1
	for lo < hi {
		if hi-lo < 12 {
			insertionSort(ns[lo : hi+1])
			return
		}
		p := medianOfThree(ns, lo, hi)
		mid := partition(ns, lo, hi, p)
		switch {
		case mid == k:
			return
		case mid < k:
			lo = mid + 1
		default:
			hi = mid - 1
		}
	}
}

func insertionSort(ns []Neighbor) {
	for i := 1; i < len(ns); i++ {
		for j := i; j > 0 && less(ns[j], ns[j-1]); j-- {
			ns[j], ns[j-1] = ns[j-1], ns[j]
		}
	}
}

func medianOfThree(ns []Neighbor, lo, hi int) int {
	mid := lo + (hi-lo)/2
	if less(ns[mid], ns[lo]) {
		ns[mid], ns[lo] = ns[lo], ns[mid]
	}
	if less(ns[hi], ns[lo]) {
		ns[hi], ns[lo] = ns[lo], ns[hi]
	}
	if less(ns[hi], ns[mid]) {
		ns[hi], ns[mid] = ns[mid], ns[hi]
	}
	return mid
}

// partition places the pivot (initially at index p) into its final sorted
// position and returns that position.
func partition(ns []Neighbor, lo, hi, p int) int {
	pivot := ns[p]
	ns[p], ns[hi] = ns[hi], ns[p]
	store := lo
	for i := lo; i < hi; i++ {
		if less(ns[i], pivot) {
			ns[i], ns[store] = ns[store], ns[i]
			store++
		}
	}
	ns[store], ns[hi] = ns[hi], ns[store]
	return store
}

// SelectKHeap is the priority-queue alternative to SelectK: it scans ns once
// pushing into a bounded max-heap. It exists so the paper's "incremental
// sorting is ~2x faster than a priority queue" claim can be benchmarked; use
// SelectK in production paths.
func SelectKHeap(ns []Neighbor, k int) []Neighbor {
	if k <= 0 {
		return nil
	}
	q := NewQueue(k)
	for _, n := range ns {
		q.Push(n.ID, n.Dist)
	}
	return q.Results()
}
