package persist_test

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/persist"
	"repro/internal/seqscan"
	"repro/internal/space"
)

// TestLoadIndexSet saves two different index kinds over one corpus and
// warm-starts both from the directory, checking names and identical answers.
func TestLoadIndexSet(t *testing.T) {
	db := dataset.SIFT(9, 200)
	sp := space.L2{}
	na, err := core.NewNAPP[[]float32](sp, db, core.NAPPOptions{
		NumPivots: 32, NumPivotIndex: 8, MinShared: 1, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	scan := seqscan.New[[]float32](sp, db)

	dir := t.TempDir()
	if err := persist.SaveFile(filepath.Join(dir, "fast.psix"), na); err != nil {
		t.Fatal(err)
	}
	if err := persist.SaveFile(filepath.Join(dir, "exact.psix"), scan); err != nil {
		t.Fatal(err)
	}
	// Non-index files in the directory are ignored.
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}

	set, err := persist.LoadIndexSet(dir, sp, db)
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 2 || set["fast"] == nil || set["exact"] == nil {
		t.Fatalf("loaded set keys: %v", keys(set))
	}
	for i := 0; i < 5; i++ {
		if got, want := set["fast"].Search(db[i], 10), na.Search(db[i], 10); !reflect.DeepEqual(got, want) {
			t.Fatalf("query %d: loaded napp differs from original", i)
		}
		if got, want := set["exact"].Search(db[i], 10), scan.Search(db[i], 10); !reflect.DeepEqual(got, want) {
			t.Fatalf("query %d: loaded seqscan differs from original", i)
		}
	}

	// A corrupt file in the directory fails the whole set.
	if err := os.WriteFile(filepath.Join(dir, "bad.psix"), []byte("not an index"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := persist.LoadIndexSet(dir, sp, db); err == nil {
		t.Fatal("corrupt member accepted")
	}
}

func TestPeekHeader(t *testing.T) {
	db := dataset.SIFT(9, 120)
	scan := seqscan.New[[]float32](space.L2{}, db)
	path := filepath.Join(t.TempDir(), "scan.psix")
	if err := persist.SaveFile(path, scan); err != nil {
		t.Fatal(err)
	}
	hdr, err := persist.PeekHeader(path)
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Kind != "seqscan" || hdr.Space != "l2" || hdr.N != 120 {
		t.Fatalf("header = %+v", hdr)
	}
	if _, err := persist.PeekHeader(filepath.Join(t.TempDir(), "missing.psix")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func keys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestFileChecksum pins the trailer-aware checksum semantics: the value
// equals the file's own codec trailer (read back as little-endian from the
// final four bytes), differs across different indexes, and a whole-file
// CRC-32C would not — it is the same constant residue for every valid file,
// which is exactly why FileChecksum excludes the trailer.
func TestFileChecksum(t *testing.T) {
	dir := t.TempDir()
	db := dataset.SIFT(9, 120)
	paths := make([]string, 2)
	for i, n := range []int{100, 120} {
		p := filepath.Join(dir, fmt.Sprintf("s%d.psix", i))
		if err := persist.SaveFile(p, seqscan.New[[]float32](space.L2{}, db[:n])); err != nil {
			t.Fatal(err)
		}
		paths[i] = p
	}
	sums := make([]uint32, 2)
	for i, p := range paths {
		sum, err := persist.FileChecksum(p)
		if err != nil {
			t.Fatal(err)
		}
		blob, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		trailer := binary.LittleEndian.Uint32(blob[len(blob)-4:])
		if sum != trailer {
			t.Errorf("%s: FileChecksum %08x != stored trailer %08x", p, sum, trailer)
		}
		// The whole-file CRC-32C is the fixed residue for any intact file.
		whole := crc32.Checksum(blob, crc32.MakeTable(crc32.Castagnoli))
		if whole != 0x48674bc7 {
			t.Errorf("%s: whole-file crc32c %08x, expected the constant residue 48674bc7", p, whole)
		}
		sums[i] = sum
	}
	if sums[0] == sums[1] {
		t.Errorf("different indexes share checksum %08x", sums[0])
	}
	if _, err := persist.FileChecksum(filepath.Join(dir, "missing.psix")); err == nil {
		t.Error("FileChecksum of a missing file must error")
	}
}
