package core

import (
	"math/rand"
	"testing"

	"repro/internal/space"
)

func TestNAPPAddFindsNewPoint(t *testing.T) {
	db, _ := queriesFrom(clustered(40, 1050, 8), 50)
	na, err := NewNAPP[[]float32](space.L2{}, db, NAPPOptions{
		NumPivots: 128, NumPivotIndex: 16, MinShared: 1, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Insert a point far away from everything; querying near it must
	// return the new id first.
	far := make([]float32, 8)
	for i := range far {
		far[i] = 1e4
	}
	id := na.Add(far)
	if int(id) != len(db) {
		t.Fatalf("new id = %d, want %d", id, len(db))
	}
	res := na.Search(far, 3)
	if len(res) == 0 || res[0].ID != id || res[0].Dist != 0 {
		t.Fatalf("added point not found: %+v", res)
	}
	if na.Live() != len(db)+1 {
		t.Fatalf("Live = %d", na.Live())
	}
}

func TestNAPPAddManyMatchesFreshBuild(t *testing.T) {
	// Recall after incremental insertion must be comparable to recall of
	// an index built over the full set with the same pivots.
	all, queries := queriesFrom(clustered(41, 1550, 8), 50)
	half := all[:1000]
	na, err := NewNAPP[[]float32](space.L2{}, half, NAPPOptions{
		NumPivots: 128, NumPivotIndex: 16, MinShared: 1, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range all[1000:] {
		na.Add(x)
	}
	rec := recallOf[[]float32](t, space.L2{}, all, na, queries, 10)
	if rec < 0.8 {
		t.Fatalf("recall after incremental adds %.3f < 0.8", rec)
	}
}

func TestNAPPDeleteHidesPoint(t *testing.T) {
	db, _ := queriesFrom(clustered(42, 520, 8), 20)
	na, err := NewNAPP[[]float32](space.L2{}, db, NAPPOptions{
		NumPivots: 64, NumPivotIndex: 16, MinShared: 1, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	q := db[7]
	before := na.Search(q, 1)
	if len(before) != 1 || before[0].ID != 7 {
		t.Fatalf("self not found before delete: %+v", before)
	}
	if err := na.Delete(7); err != nil {
		t.Fatal(err)
	}
	if !na.Deleted(7) {
		t.Fatal("Deleted(7) = false")
	}
	after := na.Search(q, 5)
	for _, nb := range after {
		if nb.ID == 7 {
			t.Fatal("deleted id still returned")
		}
	}
	if na.Live() != len(db)-1 {
		t.Fatalf("Live = %d", na.Live())
	}
	if err := na.Delete(uint32(len(db) + 5)); err == nil {
		t.Fatal("deleting unknown id succeeded")
	}
}

func TestNAPPCompact(t *testing.T) {
	db, _ := queriesFrom(clustered(43, 520, 8), 20)
	na, err := NewNAPP[[]float32](space.L2{}, db, NAPPOptions{
		NumPivots: 64, NumPivotIndex: 16, MinShared: 1, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(1))
	removed := map[uint32]bool{}
	for i := 0; i < 100; i++ {
		id := uint32(r.Intn(len(db)))
		if !removed[id] {
			removed[id] = true
			if err := na.Delete(id); err != nil {
				t.Fatal(err)
			}
		}
	}
	cellsBefore := postingCells(na)
	na.Compact()
	cellsAfter := postingCells(na)
	if cellsAfter >= cellsBefore {
		t.Fatalf("compaction did not shrink postings: %d -> %d", cellsBefore, cellsAfter)
	}
	// Tombstone bookkeeping survives compaction.
	for id := range removed {
		if !na.Deleted(id) {
			t.Fatalf("Deleted(%d) lost after Compact", id)
		}
	}
	// Deleted points never come back.
	for i := 0; i < 10; i++ {
		q := db[r.Intn(len(db))]
		for _, nb := range na.Search(q, 10) {
			if removed[nb.ID] {
				t.Fatal("compacted index returned deleted id")
			}
		}
	}
	// Compact on a clean index is a no-op.
	na2, _ := NewNAPP[[]float32](space.L2{}, db, NAPPOptions{NumPivots: 64, Seed: 4})
	before := postingCells(na2)
	na2.Compact()
	if postingCells(na2) != before {
		t.Fatal("Compact on clean index changed postings")
	}
}

func postingCells[T any](na *NAPP[T]) int {
	var cells int
	for _, p := range na.postings {
		cells += len(p)
	}
	return cells
}

func TestNAPPStaleSearcherHealsAfterMutation(t *testing.T) {
	// A warm Searcher minted before Add/Delete holds scratch built for the
	// old index generation. It must notice the mutation sequence advanced
	// and re-mint, so searches through the stale handle still see every
	// mutation (and can never index scratch out of range).
	db, queries := queriesFrom(clustered(45, 820, 8), 20)
	na, err := NewNAPP[[]float32](space.L2{}, db, NAPPOptions{
		NumPivots: 64, NumPivotIndex: 16, MinShared: 1, Seed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := na.NewSearcher()
	for _, q := range queries {
		s.Search(q, 5) // warm the scratch under the original generation
	}
	seq0 := na.MutationSeq()

	far := []float32{2e4, 2e4, 2e4, 2e4, 2e4, 2e4, 2e4, 2e4}
	id := na.Add(far)
	if na.MutationSeq() == seq0 {
		t.Fatal("Add did not advance the mutation sequence")
	}
	res := s.Search(far, 3)
	if len(res) == 0 || res[0].ID != id || res[0].Dist != 0 {
		t.Fatalf("stale searcher missed the added point: %+v", res)
	}

	if err := na.Delete(id); err != nil {
		t.Fatal(err)
	}
	for _, nb := range s.Search(far, 5) {
		if nb.ID == id {
			t.Fatal("stale searcher returned a deleted id")
		}
	}

	// The healed searcher keeps matching the index's own answers.
	for _, q := range queries {
		a, b := s.Search(q, 10), na.Search(q, 10)
		if len(a) != len(b) {
			t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("searcher diverges from index at %d: %+v vs %+v", i, a[i], b[i])
			}
		}
	}
}

func TestNAPPAddThenDeleteRoundTrip(t *testing.T) {
	db, _ := queriesFrom(clustered(44, 320, 8), 20)
	na, err := NewNAPP[[]float32](space.L2{}, db, NAPPOptions{
		NumPivots: 64, NumPivotIndex: 8, MinShared: 1, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	x := []float32{500, 500, 500, 500, 500, 500, 500, 500}
	id := na.Add(x)
	if err := na.Delete(id); err != nil {
		t.Fatal(err)
	}
	res := na.Search(x, 3)
	for _, nb := range res {
		if nb.ID == id {
			t.Fatal("add-then-delete point still visible")
		}
	}
	na.Compact()
	if na.Live() != len(db) {
		t.Fatalf("Live = %d, want %d", na.Live(), len(db))
	}
}
