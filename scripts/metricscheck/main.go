// Command metricscheck validates a Prometheus text exposition page — the
// output of permserve's and permrouter's GET /metrics — beyond what a lax
// scraper would tolerate: strict line grammar (via the internal/obs
// parser), every sample covered by a TYPE declaration, no duplicate
// samples, non-negative counters, and the histogram invariants (+Inf
// bucket present, cumulative bucket counts non-decreasing in le, _count
// equal to the +Inf bucket, _sum present). The smoke scripts pipe a live
// scrape through it, so a malformed or internally inconsistent exposition
// fails CI before a real monitoring stack meets it.
//
// -require names comma-separated metric families that must be present with
// at least one sample — how the smoke scripts assert that, say, the
// router's replica ejection counters actually exist after a kill-one-replica
// drill.
//
// Usage:
//
//	curl -s localhost:8080/metrics | go run ./scripts/metricscheck \
//	    -require permserve_search_requests_total,permserve_search_latency_seconds
//	go run ./scripts/metricscheck page.txt
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strings"

	"repro/internal/obs"
)

func main() {
	require := flag.String("require", "", "comma-separated metric families that must be present with at least one sample")
	flag.Parse()

	var in io.Reader = os.Stdin
	src := "<stdin>"
	if flag.NArg() > 1 {
		fmt.Fprintln(os.Stderr, "usage: metricscheck [-require fam1,fam2] [page.txt]")
		os.Exit(2)
	}
	if flag.NArg() == 1 && flag.Arg(0) != "-" {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintf(os.Stderr, "metricscheck: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		in, src = f, flag.Arg(0)
	}

	tm, err := obs.ParseText(in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "metricscheck: %s: %v\n", src, err)
		os.Exit(1)
	}
	problems := check(tm, strings.Split(*require, ","))
	for _, p := range problems {
		fmt.Fprintf(os.Stderr, "metricscheck: %s: %s\n", src, p)
	}
	if len(problems) > 0 {
		os.Exit(1)
	}
	fmt.Printf("metricscheck: %s ok (%d samples, %d families)\n", src, len(tm.Samples), len(tm.Types))
}

// family strips a histogram sample suffix back to its declared family name.
func family(tm *obs.TextMetrics, name string) string {
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suffix)
		if base != name && tm.Types[base] == "histogram" {
			return base
		}
	}
	return name
}

// childKey identifies one labeled child of a family (the "le" label
// excluded, so a histogram's buckets collapse onto one child).
func childKey(labels map[string]string) string {
	pairs := make([]string, 0, len(labels))
	for k, v := range labels {
		if k == "le" {
			continue
		}
		pairs = append(pairs, k+"="+v)
	}
	sort.Strings(pairs)
	return strings.Join(pairs, ",")
}

// check runs every validation over a parsed page and returns the findings.
func check(tm *obs.TextMetrics, required []string) []string {
	var problems []string

	// Every sample must belong to a TYPE-declared family, and no sample
	// (same name, same full label set) may appear twice.
	seen := map[string]bool{}
	type histChild struct {
		buckets map[float64]float64
		sum     *float64
		count   *float64
		display string
	}
	hists := map[string]map[string]*histChild{} // family -> childKey -> state
	for i := range tm.Samples {
		s := &tm.Samples[i]
		fam := family(tm, s.Name)
		typ, declared := tm.Types[fam]
		if !declared {
			problems = append(problems, fmt.Sprintf("sample %s has no TYPE declaration", s.Name))
			continue
		}
		full := s.Name + "{" + childKey(s.Labels) + ",le=" + s.Labels["le"] + "}"
		if seen[full] {
			problems = append(problems, fmt.Sprintf("duplicate sample %s", full))
		}
		seen[full] = true
		if typ == "counter" && s.Value < 0 {
			problems = append(problems, fmt.Sprintf("counter %s is negative: %v", full, s.Value))
		}
		if typ != "histogram" {
			continue
		}
		if hists[fam] == nil {
			hists[fam] = map[string]*histChild{}
		}
		key := childKey(s.Labels)
		hc := hists[fam][key]
		if hc == nil {
			hc = &histChild{buckets: map[float64]float64{}, display: fam + "{" + key + "}"}
			hists[fam][key] = hc
		}
		v := s.Value
		switch {
		case s.Name == fam+"_bucket":
			le, err := parseLE(s.Labels["le"])
			if err != nil {
				problems = append(problems, fmt.Sprintf("%s: bad le %q", hc.display, s.Labels["le"]))
				continue
			}
			hc.buckets[le] = v
		case s.Name == fam+"_sum":
			hc.sum = &v
		case s.Name == fam+"_count":
			hc.count = &v
		default:
			problems = append(problems, fmt.Sprintf("histogram family %s has plain sample %s", fam, s.Name))
		}
	}

	// Histogram invariants per child.
	for _, children := range sortedKeys(hists) {
		for _, key := range sortedKeys(hists[children]) {
			hc := hists[children][key]
			inf, haveInf := hc.buckets[math.Inf(1)]
			if !haveInf {
				problems = append(problems, fmt.Sprintf("%s: no +Inf bucket", hc.display))
				continue
			}
			les := make([]float64, 0, len(hc.buckets))
			for le := range hc.buckets {
				les = append(les, le)
			}
			sort.Float64s(les)
			prev := 0.0
			for _, le := range les {
				if hc.buckets[le] < prev {
					problems = append(problems, fmt.Sprintf("%s: bucket counts decrease at le=%v (%v < %v) — not cumulative",
						hc.display, le, hc.buckets[le], prev))
					break
				}
				prev = hc.buckets[le]
			}
			switch {
			case hc.count == nil:
				problems = append(problems, fmt.Sprintf("%s: missing _count", hc.display))
			case *hc.count != inf:
				problems = append(problems, fmt.Sprintf("%s: _count %v != +Inf bucket %v", hc.display, *hc.count, inf))
			}
			if hc.sum == nil {
				problems = append(problems, fmt.Sprintf("%s: missing _sum", hc.display))
			}
		}
	}

	// Required families: declared and populated.
	for _, fam := range required {
		if fam = strings.TrimSpace(fam); fam == "" {
			continue
		}
		if _, ok := tm.Types[fam]; !ok {
			problems = append(problems, fmt.Sprintf("required family %s is not declared", fam))
			continue
		}
		found := false
		for i := range tm.Samples {
			if family(tm, tm.Samples[i].Name) == fam {
				found = true
				break
			}
		}
		if !found {
			problems = append(problems, fmt.Sprintf("required family %s has no samples", fam))
		}
	}
	return problems
}

func parseLE(s string) (float64, error) {
	if s == "+Inf" {
		return math.Inf(1), nil
	}
	var v float64
	_, err := fmt.Sscanf(s, "%g", &v)
	return v, err
}

// sortedKeys returns m's keys sorted, for deterministic findings order.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
