package core

import (
	"fmt"
	"math/rand"
	"slices"
	"time"

	"repro/internal/index"
	"repro/internal/obs"
	"repro/internal/permutation"
	"repro/internal/scratch"
	"repro/internal/space"
	"repro/internal/topk"
)

// PPIndexOptions configures NewPPIndex.
type PPIndexOptions struct {
	// NumPivots is the pivot count per tree (the alphabet size of the
	// prefix strings). Default 64.
	NumPivots int
	// PrefixLen is the indexed prefix length l: each point is stored
	// under the sequence of its PrefixLen closest pivots. Default 6.
	PrefixLen int
	// Copies is the number of independent PP-index trees, each with its
	// own pivot sample. The paper notes a good recall/efficiency
	// trade-off typically requires several copies (§2.3). Default 4.
	Copies int
	// Gamma is the minimum candidate fraction gathered per tree before
	// the prefix search stops shortening prefixes. Default 0.01.
	Gamma float64
	// Seed drives pivot sampling.
	Seed int64
}

func (o *PPIndexOptions) defaults() {
	if o.NumPivots <= 0 {
		o.NumPivots = 64
	}
	if o.PrefixLen <= 0 {
		o.PrefixLen = 6
	}
	if o.PrefixLen > o.NumPivots {
		o.PrefixLen = o.NumPivots
	}
	if o.Copies <= 0 {
		o.Copies = 4
	}
	if o.Gamma <= 0 {
		o.Gamma = 0.01
	}
}

// ppNode is a node of one prefix tree. Children are keyed by pivot index.
// count is the number of data points stored in the subtree; items is only
// populated at depth PrefixLen.
type ppNode struct {
	children map[int32]*ppNode
	count    int
	items    []uint32
}

func (n *ppNode) child(p int32, create bool) *ppNode {
	if n.children == nil {
		if !create {
			return nil
		}
		n.children = make(map[int32]*ppNode)
	}
	c := n.children[p]
	if c == nil && create {
		c = &ppNode{}
		n.children[p] = c
	}
	return c
}

// collect appends every item in the subtree to dst.
func (n *ppNode) collect(dst []uint32) []uint32 {
	dst = append(dst, n.items...)
	for _, c := range n.children {
		dst = c.collect(dst)
	}
	return dst
}

// ppTree is one PP-index copy: a pivot sample plus the prefix tree built
// from the permutation prefixes of all data points.
type ppTree[T any] struct {
	pivots *permutation.Pivots[T]
	root   *ppNode
	nodes  int
}

// PPIndex is Esuli's Permutation Prefix Index (§2.3): permutations are
// treated as strings over the pivot alphabet and indexed by their prefixes
// in a trie. A query descends along its own permutation prefix; if the
// subtree under the deepest matching node holds fewer than gamma*n
// candidates, the prefix is shortened (the paper's recursive fallback).
// Multiple tree copies with independent pivot samples are unioned.
type PPIndex[T any] struct {
	sp      space.Space[T]
	data    []T
	trees   []ppTree[T]
	opts    PPIndexOptions
	scratch scratch.Pool[ppScratch]
}

// ppScratch is the per-query state of one PP-index search. seen is an
// epoch-stamped arena standing in for the former per-query map dedup across
// tree copies (first increment == first sighting).
type ppScratch struct {
	perm  permutation.Scratch
	seen  scratch.Counters
	path  []*ppNode
	sub   []uint32
	ids   []uint32
	queue topk.Queue
}

// NewPPIndex builds Copies prefix trees over independent pivot samples.
func NewPPIndex[T any](sp space.Space[T], data []T, opts PPIndexOptions) (*PPIndex[T], error) {
	opts.defaults()
	if len(data) == 0 {
		return nil, fmt.Errorf("core: empty data set")
	}
	if opts.NumPivots > len(data) {
		opts.NumPivots = len(data)
		if opts.PrefixLen > opts.NumPivots {
			opts.PrefixLen = opts.NumPivots
		}
	}
	idx := &PPIndex[T]{sp: sp, data: data, opts: opts}
	r := rand.New(rand.NewSource(opts.Seed))
	for c := 0; c < opts.Copies; c++ {
		pv, err := permutation.Sample(r, sp, data, opts.NumPivots)
		if err != nil {
			return nil, fmt.Errorf("core: sampling pivots for copy %d: %w", c, err)
		}
		orders := computeOrders(pv, data, opts.PrefixLen)
		tree := ppTree[T]{pivots: pv, root: &ppNode{}}
		l := opts.PrefixLen
		for i := 0; i < len(data); i++ {
			node := tree.root
			node.count++
			for _, p := range orders[i*l : (i+1)*l] {
				node = node.child(p, true)
				node.count++
			}
			node.items = append(node.items, uint32(i))
		}
		idx.trees = append(idx.trees, tree)
	}
	return idx, nil
}

// Name implements index.Index.
func (pp *PPIndex[T]) Name() string { return "pp-index" }

// Stats implements index.Sized.
func (pp *PPIndex[T]) Stats() index.Stats {
	var bytes int64
	var walk func(n *ppNode)
	walk = func(n *ppNode) {
		bytes += 48 + int64(len(n.items))*4 + int64(len(n.children))*16
		for _, c := range n.children {
			walk(c)
		}
	}
	for _, t := range pp.trees {
		walk(t.root)
	}
	return index.Stats{
		Bytes:          bytes,
		BuildDistances: int64(len(pp.data)) * int64(pp.opts.NumPivots) * int64(pp.opts.Copies),
	}
}

// Search implements index.Index.
func (pp *PPIndex[T]) Search(query T, k int) []topk.Neighbor {
	return pp.SearchAppend(nil, query, k)
}

// SearchAppend answers like Search but appends the results to dst; with a
// dst of sufficient capacity a warm call performs zero allocations.
func (pp *PPIndex[T]) SearchAppend(dst []topk.Neighbor, query T, k int) []topk.Neighbor {
	s := pp.scratch.Get()
	defer pp.scratch.Put(s)
	return pp.search(s, nil, dst, query, k)
}

// NewSearcher implements index.SearcherProvider.
func (pp *PPIndex[T]) NewSearcher() index.Searcher[T] {
	return &searcher[T, ppScratch]{fn: pp.search}
}

// search is the scratch-threaded hot path shared by Search, SearchAppend
// and Searchers.
func (pp *PPIndex[T]) search(s *ppScratch, tr *obs.QueryTrace, dst []topk.Neighbor, query T, k int) []topk.Neighbor {
	if k <= 0 {
		return dst
	}
	var t0 time.Time
	if tr != nil {
		t0 = time.Now()
	}
	g := gammaCount(pp.opts.Gamma, len(pp.data), k)
	s.seen.Begin(len(pp.data))
	ids := s.ids[:0]
	for ti := range pp.trees {
		tree := &pp.trees[ti]
		qorder := tree.pivots.OrderWith(&s.perm, query)
		prefix := qorder[:pp.opts.PrefixLen]
		// Walk down recording the path, then pick the deepest node
		// whose subtree is big enough.
		s.path = append(s.path[:0], tree.root)
		node := tree.root
		for _, p := range prefix {
			node = node.child(p, false)
			if node == nil {
				break
			}
			s.path = append(s.path, node)
		}
		pick := s.path[0]
		for i := len(s.path) - 1; i >= 0; i-- {
			if s.path[i].count >= g {
				pick = s.path[i]
				break
			}
		}
		s.sub = pick.collect(s.sub[:0])
		for _, id := range s.sub {
			if s.seen.Inc(id) == 1 {
				ids = append(ids, id)
			}
		}
	}
	s.ids = ids
	if tr != nil {
		tr.FilterCandidates += int64(len(ids))
		obs.AddSince(&tr.FilterNs, t0)
		t0 = time.Now()
	}
	// collect walks child maps, so the candidate order above is not
	// deterministic; sort before refining so ties at the k boundary are
	// always broken the same way (smallest id wins, matching topk.ByDist).
	slices.Sort(ids)
	if tr != nil {
		obs.AddSince(&tr.MergeNs, t0)
	}
	return refineInto(pp.sp, pp.data, query, ids, k, &s.queue, dst, tr)
}
