// Package shard is the offline half of the sharded serving tier: it
// partitions a corpus of n points into S disjoint shard corpora
// deterministically, so an index can be built per shard (by cmd/shardsplit
// or internal/experiments) and served by S independent permserve processes
// behind the permrouter scatter-gather front end (internal/router).
//
// # Determinism and global ids
//
// Every partitioner is a pure function of (id, S): re-running a split with
// the same inputs reproduces the same shard corpora bit for bit, and — more
// importantly — any process can recompute the local→global id mapping of
// any shard from the three values (partitioner, S, shard index) alone. The
// serving layer (internal/server) relies on this to translate a shard
// index's local result ids back to corpus-global ids without shipping the
// mapping: a shard's sidecar manifest carries just an Info{partitioner, S,
// s}.
//
// IDs always returns each shard's global ids in increasing order. The
// subset therefore preserves the corpus order, which makes the local→global
// map strictly monotone — a shard-local result list ordered by (dist, local
// id) stays ordered by (dist, global id) after translation, which is what
// lets the router merge per-shard top-k lists into the exact answer an
// unsharded index would give (see internal/router).
package shard

import (
	"fmt"
	"sort"
)

// Partitioner names a deterministic id→shard assignment. The zero value is
// invalid; use Hash or RoundRobin (or parse a wire/manifest string with
// ParsePartitioner).
type Partitioner string

const (
	// Hash assigns id → splitmix64(id) mod S: a fixed, seedless integer
	// mix, so placement is stable across runs, machines and Go versions,
	// and statistically balanced even when corpus order is meaningful
	// (e.g. time-ordered ingestion).
	Hash Partitioner = "hash"
	// RoundRobin assigns id → id mod S: perfectly balanced (shard sizes
	// differ by at most one) and trivially invertible, at the cost of
	// striping any ordering structure of the corpus across all shards.
	RoundRobin Partitioner = "round-robin"
)

// Partitioners lists the registered partitioners.
func Partitioners() []Partitioner { return []Partitioner{Hash, RoundRobin} }

// ParsePartitioner validates a partitioner name from a flag or manifest.
func ParsePartitioner(name string) (Partitioner, error) {
	for _, p := range Partitioners() {
		if string(p) == name {
			return p, nil
		}
	}
	return "", fmt.Errorf("shard: unknown partitioner %q (known: %v)", name, Partitioners())
}

// splitmix64 is the finalizer of the SplitMix64 generator (Steele et al.),
// a full-avalanche 64-bit mix. It is fixed forever: changing it would remap
// every existing shard set.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Assign returns the shard in [0, shards) that owns global id under p.
// It panics on shards <= 0 or an unknown partitioner; callers validate both
// once via ParsePartitioner / IDs, not per id.
func (p Partitioner) Assign(id uint32, shards int) int {
	if shards <= 0 {
		panic("shard: shards must be positive")
	}
	switch p {
	case Hash:
		return int(splitmix64(uint64(id)) % uint64(shards))
	case RoundRobin:
		return int(id) % shards
	default:
		panic(fmt.Sprintf("shard: unknown partitioner %q", p))
	}
}

// IDs partitions the global ids [0, n) into shards slices, one per shard,
// each in increasing order. Every id lands in exactly one shard. A shard
// may be empty when n < shards; the serving and routing layers treat an
// empty shard as a corpus with no answers, not an error.
func IDs(p Partitioner, n, shards int) ([][]uint32, error) {
	if _, err := ParsePartitioner(string(p)); err != nil {
		return nil, err
	}
	if n < 0 {
		return nil, fmt.Errorf("shard: negative corpus size %d", n)
	}
	if shards <= 0 {
		return nil, fmt.Errorf("shard: shards must be positive, got %d", shards)
	}
	out := make([][]uint32, shards)
	// Appending ids in increasing order keeps every shard sorted — the
	// monotone local→global property documented in the package comment.
	for id := 0; id < n; id++ {
		s := p.Assign(uint32(id), shards)
		out[s] = append(out[s], uint32(id))
	}
	return out, nil
}

// ShardIDs returns the sorted global ids owned by one shard, the mapping a
// serving process recomputes from a sidecar Info.
func ShardIDs(p Partitioner, n, shards, index int) ([]uint32, error) {
	if index < 0 || index >= shards {
		return nil, fmt.Errorf("shard: index %d out of range [0, %d)", index, shards)
	}
	all, err := IDs(p, n, shards)
	if err != nil {
		return nil, err
	}
	return all[index], nil
}

// Subset gathers the data objects owned by one shard, in id order. The
// returned slice shares no structure with ids; elements alias the originals.
func Subset[T any](data []T, ids []uint32) []T {
	out := make([]T, len(ids))
	for i, id := range ids {
		out[i] = data[id]
	}
	return out
}

// Info is the shard membership stamp of one serving-side index: everything
// needed to recompute the shard's corpus subset and local→global id map
// from the full corpus. It is embedded in the serving sidecar manifest
// (server.Manifest) and recorded per shard in the SetManifest.
type Info struct {
	// Set names the shard set this index belongs to.
	Set string `json:"set"`
	// Partitioner is the id→shard assignment (ParsePartitioner name).
	Partitioner Partitioner `json:"partitioner"`
	// Shards is S, the total shard count of the set.
	Shards int `json:"shards"`
	// Index is this shard's position s in [0, Shards).
	Index int `json:"index"`
}

// Validate checks the stamp's internal consistency.
func (in Info) Validate() error {
	if _, err := ParsePartitioner(string(in.Partitioner)); err != nil {
		return err
	}
	if in.Shards <= 0 {
		return fmt.Errorf("shard: info has %d shards", in.Shards)
	}
	if in.Index < 0 || in.Index >= in.Shards {
		return fmt.Errorf("shard: info index %d out of range [0, %d)", in.Index, in.Shards)
	}
	return nil
}

// Sorted reports whether ids is strictly increasing — the invariant IDs
// guarantees and the id-translation layer depends on.
func Sorted(ids []uint32) bool {
	return sort.SliceIsSorted(ids, func(i, j int) bool { return ids[i] < ids[j] }) && !hasDup(ids)
}

func hasDup(ids []uint32) bool {
	for i := 1; i < len(ids); i++ {
		if ids[i] == ids[i-1] {
			return true
		}
	}
	return false
}
