package lsh

import (
	"io"
	"sort"

	"repro/internal/codec"
)

// Persistence. MPLSH is the one index whose structure is not derivable from
// data ids alone: the random projection directions and offsets are part of
// the index. They are plain floats, so the payload stays object-type-free
// like every other kind: options, dimensionality, quantization width, then
// per table the M projection vectors, the M offsets, and the bucket map in
// ascending key order (so equal indexes serialize to identical bytes).

// spaceName is the space tag recorded in MPLSH headers. The index hardcodes
// L2 over dense vectors (the paper's restriction), so the tag is fixed too.
const spaceName = "l2"

// Save serializes the index under kind "mplsh".
func (x *MPLSH) Save(w io.Writer) error {
	cw := codec.NewWriter(w, codec.KindMPLSH, spaceName, len(x.data))
	cw.Int(x.opts.Tables)
	cw.Int(x.opts.Hashes)
	cw.Int(x.opts.Probes)
	cw.F64(x.opts.Width)
	cw.I64(x.opts.Seed)
	cw.Int(x.dim)
	cw.F64(x.w)
	cw.Int(len(x.tables))
	for _, tb := range x.tables {
		for _, v := range tb.a {
			cw.F32s(v)
		}
		cw.F64s(tb.b)
		keys := make([]uint64, 0, len(tb.buckets))
		for k := range tb.buckets {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		cw.U64(uint64(len(keys)))
		for _, k := range keys {
			cw.U64(k)
			cw.U32s(tb.buckets[k])
		}
	}
	return cw.Close()
}

// Load reads an index saved by Save over the same data.
func Load(cr *codec.Reader, data [][]float32) (*MPLSH, error) {
	if err := cr.Expect(codec.KindMPLSH, spaceName, len(data)); err != nil {
		return nil, err
	}
	x := &MPLSH{data: data}
	x.opts.Tables = cr.Int()
	x.opts.Hashes = cr.Int()
	x.opts.Probes = cr.Int()
	x.opts.Width = cr.F64()
	x.opts.Seed = cr.I64()
	x.dim = cr.Int()
	x.w = cr.F64()
	tables := cr.Int()
	if cr.Err() == nil {
		// Hashes and Probes bound per-table allocations and the
		// perturbation-set enumeration; anything beyond these caps is
		// corruption, not configuration (the paper uses M=12, T=10).
		if tables <= 0 || tables != x.opts.Tables || x.opts.Hashes <= 0 || x.opts.Hashes > 4096 ||
			x.opts.Probes < 0 || x.opts.Probes > 1<<20 || x.w <= 0 ||
			len(data) == 0 || x.dim != len(data[0]) {
			cr.Corruptf("inconsistent mplsh options (L=%d, M=%d, T=%d, dim=%d, w=%g)",
				tables, x.opts.Hashes, x.opts.Probes, x.dim, x.w)
		}
	}
	for t := 0; t < tables && cr.Err() == nil; t++ {
		tb := table{
			a: make([][]float32, x.opts.Hashes),
			b: nil,
		}
		for h := range tb.a {
			tb.a[h] = cr.F32s()
			if cr.Err() != nil {
				break
			}
			if len(tb.a[h]) != x.dim {
				cr.Corruptf("table %d hash %d projects %d dims, vectors have %d",
					t, h, len(tb.a[h]), x.dim)
				break
			}
		}
		tb.b = cr.F64s()
		if cr.Err() == nil && len(tb.b) != x.opts.Hashes {
			cr.Corruptf("table %d has %d offsets, want %d", t, len(tb.b), x.opts.Hashes)
		}
		buckets := cr.Length(16) // key u64 + id-list length prefix u64 minimum per bucket
		if cr.Err() == nil {
			tb.buckets = make(map[uint64][]uint32, buckets)
			for i := 0; i < buckets; i++ {
				key := cr.U64()
				ids := cr.U32s()
				if cr.Err() != nil {
					break
				}
				for _, id := range ids {
					if int(id) >= len(data) {
						cr.Corruptf("bucket id %d out of range [0, %d)", id, len(data))
						break
					}
				}
				if cr.Err() != nil {
					break
				}
				tb.buckets[key] = ids
			}
		}
		if cr.Err() != nil {
			break
		}
		x.tables = append(x.tables, tb)
	}
	if err := cr.Finish(); err != nil {
		return nil, err
	}
	return x, nil
}
