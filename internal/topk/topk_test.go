package topk

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func randNeighbors(r *rand.Rand, n int) []Neighbor {
	ns := make([]Neighbor, n)
	for i := range ns {
		ns[i] = Neighbor{ID: uint32(i), Dist: r.Float64()}
	}
	r.Shuffle(n, func(i, j int) { ns[i], ns[j] = ns[j], ns[i] })
	return ns
}

func TestQueueKeepsKNearest(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := 1 + r.Intn(200)
		k := 1 + r.Intn(20)
		ns := randNeighbors(r, n)

		q := NewQueue(k)
		for _, x := range ns {
			q.Push(x.ID, x.Dist)
		}
		got := q.Results()

		want := append([]Neighbor(nil), ns...)
		ByDist(want)
		if k < len(want) {
			want = want[:k]
		}
		if len(got) != len(want) {
			t.Fatalf("got %d results, want %d", len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: result %d = %+v, want %+v", trial, i, got[i], want[i])
			}
		}
	}
}

func TestQueueBoundAndWouldAccept(t *testing.T) {
	q := NewQueue(2)
	if _, ok := q.Bound(); ok {
		t.Fatal("Bound should not be set on empty queue")
	}
	if !q.WouldAccept(1e18) {
		t.Fatal("non-full queue must accept anything")
	}
	q.Push(1, 5)
	q.Push(2, 3)
	d, ok := q.Bound()
	if !ok || d != 5 {
		t.Fatalf("Bound = %v,%v want 5,true", d, ok)
	}
	if q.WouldAccept(6) {
		t.Fatal("should reject candidate worse than bound")
	}
	if !q.WouldAccept(4) {
		t.Fatal("should accept candidate better than bound")
	}
	q.Push(3, 4)
	res := q.Results()
	if res[0].ID != 2 || res[1].ID != 3 {
		t.Fatalf("results = %+v", res)
	}
}

// TestQueueCanonicalUnderTies asserts the property the scatter-gather merge
// relies on: the kept set is the canonical k smallest by (dist, id)
// regardless of push order, including distance ties straddling the k
// boundary.
func TestQueueCanonicalUnderTies(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		n := 1 + r.Intn(60)
		k := 1 + r.Intn(12)
		// Draw distances from a tiny alphabet so ties are the norm.
		ns := make([]Neighbor, n)
		for i := range ns {
			ns[i] = Neighbor{ID: uint32(i), Dist: float64(r.Intn(4))}
		}
		r.Shuffle(n, func(i, j int) { ns[i], ns[j] = ns[j], ns[i] })

		q := NewQueue(k)
		for _, x := range ns {
			q.Push(x.ID, x.Dist)
		}
		got := q.Results()

		want := append([]Neighbor(nil), ns...)
		ByDist(want)
		if k < len(want) {
			want = want[:k]
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d results, want %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d (k=%d): result %d = %+v, want %+v (push order must not matter)",
					trial, k, i, got[i], want[i])
			}
		}
	}
}

// TestQueueWouldAcceptTies: a candidate tying the bound must not be
// pre-filtered — Push decides by id.
func TestQueueWouldAcceptTies(t *testing.T) {
	q := NewQueue(1)
	q.Push(5, 3)
	if !q.WouldAccept(3) {
		t.Fatal("WouldAccept must report true on a distance tie (id decides)")
	}
	if !q.Push(2, 3) {
		t.Fatal("Push must replace an equal-distance neighbor with a larger id")
	}
	if q.Push(7, 3) {
		t.Fatal("Push must reject an equal-distance neighbor with a larger id")
	}
	if res := q.Results(); len(res) != 1 || res[0].ID != 2 {
		t.Fatalf("results = %+v, want the id-2 neighbor", res)
	}
}

func TestQueuePopWorst(t *testing.T) {
	q := NewQueue(3)
	q.Push(1, 1)
	q.Push(2, 2)
	q.Push(3, 3)
	w := q.PopWorst()
	if w.ID != 3 {
		t.Fatalf("PopWorst = %+v, want ID 3", w)
	}
	if q.Len() != 2 {
		t.Fatalf("Len = %d after PopWorst", q.Len())
	}
}

func TestQueuePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewQueue(0) should panic")
		}
	}()
	NewQueue(0)
}

func TestMinQueueOrdering(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	var q MinQueue
	ns := randNeighbors(r, 300)
	for _, x := range ns {
		q.Push(x.ID, x.Dist)
	}
	prev := -1.0
	for q.Len() > 0 {
		x := q.Pop()
		if x.Dist < prev {
			t.Fatalf("MinQueue pops out of order: %v after %v", x.Dist, prev)
		}
		prev = x.Dist
	}
}

func TestMinQueuePeekReset(t *testing.T) {
	var q MinQueue
	q.Push(1, 2)
	q.Push(2, 1)
	if q.Peek().ID != 2 {
		t.Fatalf("Peek = %+v", q.Peek())
	}
	q.Reset()
	if q.Len() != 0 {
		t.Fatal("Reset did not empty queue")
	}
}

func TestSelectKMatchesFullSort(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		n := r.Intn(500)
		k := r.Intn(n + 10)
		ns := randNeighbors(r, n)

		want := append([]Neighbor(nil), ns...)
		ByDist(want)
		if k < len(want) {
			want = want[:k]
		}

		got := SelectK(ns, k)
		if len(got) != len(want) {
			t.Fatalf("trial %d: len(got)=%d want %d (n=%d k=%d)", trial, len(got), len(want), n, k)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: got[%d]=%+v want %+v", trial, i, got[i], want[i])
			}
		}
	}
}

func TestSelectKHeapMatchesSelectK(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	for trial := 0; trial < 50; trial++ {
		n := 1 + r.Intn(300)
		k := 1 + r.Intn(40)
		ns := randNeighbors(r, n)
		a := SelectK(append([]Neighbor(nil), ns...), k)
		b := SelectKHeap(ns, k)
		if len(a) != len(b) {
			t.Fatalf("length mismatch %d vs %d", len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("mismatch at %d: %+v vs %+v", i, a[i], b[i])
			}
		}
	}
}

func TestSelectKDuplicateDistances(t *testing.T) {
	// All-equal distances: tie-break by ID must make the result exactly
	// the k smallest IDs.
	ns := make([]Neighbor, 100)
	for i := range ns {
		ns[i] = Neighbor{ID: uint32(99 - i), Dist: 1.0}
	}
	got := SelectK(ns, 10)
	for i, x := range got {
		if x.ID != uint32(i) {
			t.Fatalf("tie-breaking broken: got[%d].ID=%d", i, x.ID)
		}
	}
}

func TestSelectKEdgeCases(t *testing.T) {
	if got := SelectK(nil, 5); len(got) != 0 {
		t.Fatalf("SelectK(nil) = %v", got)
	}
	if got := SelectK([]Neighbor{{1, 1}}, 0); len(got) != 0 {
		t.Fatalf("SelectK(...,0) = %v", got)
	}
	one := []Neighbor{{ID: 7, Dist: 3}}
	if got := SelectK(one, 5); len(got) != 1 || got[0].ID != 7 {
		t.Fatalf("SelectK single = %v", got)
	}
}

func TestQuickSelectProperty(t *testing.T) {
	// Property: after SelectK, every retained element <= every discarded one.
	f := func(dists []float64, kRaw uint8) bool {
		ns := make([]Neighbor, len(dists))
		for i, d := range dists {
			ns[i] = Neighbor{ID: uint32(i), Dist: d}
		}
		k := int(kRaw)
		if k > len(ns) {
			k = len(ns)
		}
		cp := append([]Neighbor(nil), ns...)
		got := SelectK(cp, k)
		if len(got) != k {
			return false
		}
		if !sort.SliceIsSorted(got, func(i, j int) bool { return less(got[i], got[j]) }) {
			return false
		}
		kept := make(map[uint32]bool, k)
		var worst Neighbor
		for i, x := range got {
			kept[x.ID] = true
			if i == 0 || less(worst, x) {
				worst = x
			}
		}
		for _, x := range ns {
			if !kept[x.ID] && k > 0 && less(x, worst) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSelectK(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	ns := randNeighbors(r, 100000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cp := append([]Neighbor(nil), ns...)
		SelectK(cp, 100)
	}
}

func BenchmarkSelectKHeap(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	ns := randNeighbors(r, 100000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SelectKHeap(ns, 100)
	}
}

func TestQueueResetReuse(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	q := NewQueue(5)
	for round := 0; round < 4; round++ {
		k := 3 + round // vary k across rounds; the queue must follow
		q.Reset(k)
		if q.K() != k || q.Len() != 0 {
			t.Fatalf("round %d: after Reset, K=%d Len=%d, want K=%d Len=0", round, q.K(), q.Len(), k)
		}
		ns := randNeighbors(r, 50)
		for _, x := range ns {
			q.Push(x.ID, x.Dist)
		}
		got := q.Results()
		want := append([]Neighbor(nil), ns...)
		want = SelectK(want, k)
		if len(got) != len(want) {
			t.Fatalf("round %d: got %d results, want %d", round, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("round %d: result %d = %+v, want %+v", round, i, got[i], want[i])
			}
		}
	}
}

func TestQueueAppendResults(t *testing.T) {
	q := NewQueue(3)
	q.Push(4, 4.0)
	q.Push(2, 2.0)
	q.Push(9, 9.0)
	q.Push(1, 1.0) // evicts 9
	sentinel := Neighbor{ID: 77, Dist: -7}
	dst := []Neighbor{sentinel}
	dst = q.AppendResults(dst)
	if q.Len() != 0 {
		t.Fatalf("queue not drained: Len=%d", q.Len())
	}
	want := []Neighbor{sentinel, {ID: 1, Dist: 1}, {ID: 2, Dist: 2}, {ID: 4, Dist: 4}}
	if len(dst) != len(want) {
		t.Fatalf("got %d results, want %d", len(dst), len(want))
	}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("result %d = %+v, want %+v", i, dst[i], want[i])
		}
	}
}

// TestHotPathPrimitivesDoNotAllocate guards the allocation-freedom of the
// primitives every Search hot path leans on: ByDist, SelectK, and a warm
// Reset/Push/AppendResults queue cycle.
func TestHotPathPrimitivesDoNotAllocate(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	ns := randNeighbors(r, 2000)
	buf := make([]Neighbor, len(ns))
	if avg := testing.AllocsPerRun(20, func() {
		copy(buf, ns)
		ByDist(buf)
	}); avg != 0 {
		t.Errorf("ByDist allocates %v times per run", avg)
	}
	if avg := testing.AllocsPerRun(20, func() {
		copy(buf, ns)
		SelectK(buf, 50)
	}); avg != 0 {
		t.Errorf("SelectK allocates %v times per run", avg)
	}
	q := NewQueue(10)
	dst := make([]Neighbor, 0, 16)
	if avg := testing.AllocsPerRun(20, func() {
		q.Reset(10)
		for _, x := range ns[:200] {
			q.Push(x.ID, x.Dist)
		}
		dst = q.AppendResults(dst[:0])
	}); avg != 0 {
		t.Errorf("queue Reset/Push/AppendResults cycle allocates %v times per run", avg)
	}
}
