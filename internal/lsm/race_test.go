//go:build race

package lsm

// The race detector instruments allocations of its own, so the
// AllocsPerRun guards cannot hold under -race; the race job covers this
// package for its concurrency properties, the plain test job for the
// allocation contract.
const raceEnabled = true
