package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/vptree"
)

// tuneVPTree implements the tuner interface: it delegates to the shrinking
// grid search of package vptree on a held-out query sample.
func (c *combo[T]) tuneVPTree(cfg Config, target float64) (TuneResult, error) {
	cfg = cfg.withDefaults()
	data := c.gen(cfg.Seed, cfg.N)
	db, queries := data[:len(data)-cfg.Queries], data[len(data)-cfg.Queries:]
	alpha, recall, err := vptree.Tune(c.sp, db, queries, cfg.K, target, vptree.Options{
		Beta: c.vptreeBeta(), Seed: cfg.Seed,
	})
	if err != nil {
		return TuneResult{}, err
	}
	return TuneResult{Setting: fmt.Sprintf("alpha=%.4g", alpha), Recall: recall}, nil
}

// vptreeBeta returns the polynomial-pruner exponent for this space (2 for
// the KL-divergence per §3.2, 1 otherwise).
func (c *combo[T]) vptreeBeta() float64 {
	if c.distName == "kldiv" {
		return 2
	}
	return 1
}

// tuneNAPP implements the tuner interface: it builds one NAPP index and
// picks the largest minimum-shared-pivots t whose recall meets the target
// (larger t = fewer candidates = faster, as in the paper's "smallest t that
// achieves a desired recall" — expressed over decreasing candidate budgets).
func (c *combo[T]) tuneNAPP(cfg Config, target float64) (TuneResult, error) {
	cfg = cfg.withDefaults()
	data := c.gen(cfg.Seed, cfg.N)
	db, queries := data[:len(data)-cfg.Queries], data[len(data)-cfg.Queries:]
	truth := eval.GroundTruth(c.sp, db, queries, cfg.K)

	m := 512
	if m > len(db)/4 {
		m = len(db) / 4
	}
	if m < 8 {
		m = 8
	}
	na, err := core.NewNAPP(c.sp, db, core.NAPPOptions{
		NumPivots: m, NumPivotIndex: 16, MinShared: 1, Seed: cfg.Seed,
	})
	if err != nil {
		return TuneResult{}, err
	}
	best := TuneResult{Setting: "t=1"}
	for t := 8; t >= 1; t-- {
		na.SetMinShared(t)
		res := eval.Measure[T](na, queries, truth, cfg.K, 1, nil)
		if res.Recall >= target {
			return TuneResult{Setting: fmt.Sprintf("t=%d", t), Recall: res.Recall}, nil
		}
		best = TuneResult{Setting: fmt.Sprintf("t=%d", t), Recall: res.Recall}
	}
	// Even t=1 missed the target; report the best achievable.
	return best, nil
}
