package core

import (
	"math/rand"
	"testing"

	"repro/internal/index"
	"repro/internal/permutation"
	"repro/internal/seqscan"
	"repro/internal/space"
	"repro/internal/synth"
	"repro/internal/topk"
)

// Interface compliance for every method in the package.
var (
	_ index.Index[[]float32] = (*BruteForceFilter[[]float32])(nil)
	_ index.Index[[]float32] = (*BinFilter[[]float32])(nil)
	_ index.Index[[]float32] = (*PPIndex[[]float32])(nil)
	_ index.Index[[]float32] = (*MIFile[[]float32])(nil)
	_ index.Index[[]float32] = (*NAPP[[]float32])(nil)
	_ index.Index[[]float32] = (*OMEDRANK[[]float32])(nil)
	_ index.Index[[]float32] = (*PermVPTree[[]float32])(nil)

	_ index.Sized = (*BruteForceFilter[[]float32])(nil)
	_ index.Sized = (*BinFilter[[]float32])(nil)
	_ index.Sized = (*PPIndex[[]float32])(nil)
	_ index.Sized = (*MIFile[[]float32])(nil)
	_ index.Sized = (*NAPP[[]float32])(nil)
	_ index.Sized = (*OMEDRANK[[]float32])(nil)
	_ index.Sized = (*PermVPTree[[]float32])(nil)
)

// clustered builds a clustered Gaussian data set for recall tests.
func clustered(seed int64, n, dim int) [][]float32 {
	r := rand.New(rand.NewSource(seed))
	g := synth.NewGaussianMixture(r, dim, 16, 100, 4)
	return g.SampleN(r, n)
}

// recallOf measures k-NN recall of idx against exact search over data.
func recallOf[T any](t *testing.T, sp space.Space[T], data []T, idx index.Index[T], queries []T, k int) float64 {
	t.Helper()
	scan := seqscan.New(sp, data)
	truth := scan.SearchAll(queries, k)
	var hit, total int
	for i, q := range queries {
		want := map[uint32]bool{}
		for _, n := range truth[i] {
			want[n.ID] = true
		}
		for _, n := range idx.Search(q, k) {
			if want[n.ID] {
				hit++
			}
		}
		total += len(truth[i])
	}
	return float64(hit) / float64(total)
}

// checkValidResults verifies ordering, uniqueness and id bounds.
func checkValidResults(t *testing.T, res []topk.Neighbor, n, k int) {
	t.Helper()
	if len(res) > k {
		t.Fatalf("more than k results: %d > %d", len(res), k)
	}
	seen := map[uint32]bool{}
	for i, x := range res {
		if int(x.ID) >= n {
			t.Fatalf("id %d out of range", x.ID)
		}
		if seen[x.ID] {
			t.Fatalf("duplicate id %d", x.ID)
		}
		seen[x.ID] = true
		if i > 0 && res[i-1].Dist > x.Dist {
			t.Fatalf("results out of order at %d", i)
		}
	}
}

func TestGammaCount(t *testing.T) {
	if g := gammaCount(0.1, 1000, 10); g != 100 {
		t.Fatalf("g = %d, want 100", g)
	}
	if g := gammaCount(0.0001, 1000, 10); g != 10 {
		t.Fatalf("floor: g = %d, want 10", g)
	}
	if g := gammaCount(5, 1000, 10); g != 1000 {
		t.Fatalf("cap: g = %d, want 1000", g)
	}
}

func TestParallelForCoversAll(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 17, 1000} {
		hits := make([]int32, n)
		parallelFor(n, func(i int) { hits[i]++ })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, h)
			}
		}
	}
}

func TestPermDistString(t *testing.T) {
	if Rho.String() != "spearman-rho" || FootruleDist.String() != "footrule" {
		t.Fatal("PermDist names wrong")
	}
	if PermDist(99).String() == "" {
		t.Fatal("unknown PermDist should still stringify")
	}
}

// TestBruteForceGammaOneIsExact: with gamma = 1 every point is refined, so
// the filter must return exactly the sequential-scan answer.
func TestBruteForceGammaOneIsExact(t *testing.T) {
	data := clustered(1, 800, 8)
	bf, err := NewBruteForceFilter[[]float32](space.L2{}, data, BruteForceOptions{NumPivots: 32, Gamma: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	scan := seqscan.New[[]float32](space.L2{}, data)
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 20; i++ {
		q := data[r.Intn(len(data))]
		got, want := bf.Search(q, 10), scan.Search(q, 10)
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("mismatch at %d: %+v vs %+v", j, got[j], want[j])
			}
		}
	}
}

// TestMIFileFullIsExact: with mi = ms = m and gamma = 1 the MI-file sees the
// complete permutations of every point and must equal the sequential scan.
func TestMIFileFullIsExact(t *testing.T) {
	data := clustered(3, 600, 8)
	mf, err := NewMIFile[[]float32](space.L2{}, data, MIFileOptions{
		NumPivots: 16, NumPivotIndex: 16, NumPivotSearch: 16, Gamma: 1, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	scan := seqscan.New[[]float32](space.L2{}, data)
	r := rand.New(rand.NewSource(4))
	for i := 0; i < 20; i++ {
		q := data[r.Intn(len(data))]
		got, want := mf.Search(q, 5), scan.Search(q, 5)
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("mismatch at %d: %+v vs %+v", j, got[j], want[j])
			}
		}
	}
}

// TestOMEDRANKGammaOneIsExact: with gamma = 1 the aggregation walks every
// voter list to the end, so every point is refined.
func TestOMEDRANKGammaOneIsExact(t *testing.T) {
	data := clustered(5, 400, 8)
	om, err := NewOMEDRANK[[]float32](space.L2{}, data, OMEDRANKOptions{NumVoters: 4, Gamma: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	scan := seqscan.New[[]float32](space.L2{}, data)
	r := rand.New(rand.NewSource(6))
	for i := 0; i < 10; i++ {
		q := data[r.Intn(len(data))]
		got, want := om.Search(q, 5), scan.Search(q, 5)
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("mismatch at %d: %+v vs %+v", j, got[j], want[j])
			}
		}
	}
}

// figure1Pivots returns the pivot set of the paper's Figure 1 example (see
// permutation package tests for the geometry) plus points a, b, c, d.
func figure1Pivots(t *testing.T) (pv *permutation.Pivots[[]float32], a, b, c, d []float32) {
	t.Helper()
	pts := [][]float32{{0, 0}, {2, 0}, {0, 4}, {2.5, 3.5}}
	pv, err := permutation.NewPivots[[]float32](space.L2{}, pts)
	if err != nil {
		t.Fatal(err)
	}
	return pv, []float32{0.5, 0.1}, []float32{0.9, 0.8}, []float32{0, 2.04}, []float32{3.2, 1.8}
}

// TestMIFilePaperExample reproduces the worked example of §2.3: with
// mi = ms = 2 and query a over data {b, c, d}, the estimated (truncated)
// Footrule accumulators must end at b=0, c=5, d=4.
func TestMIFilePaperExample(t *testing.T) {
	pv, a, b, c, d := figure1Pivots(t)
	data := [][]float32{b, c, d}
	mf, err := NewMIFileWithPivots[[]float32](space.L2{}, data, pv, MIFileOptions{
		NumPivotIndex: 2, NumPivotSearch: 2, Gamma: 1,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Recompute the estimates exactly as Search does.
	qorder := pv.Order(a, nil)
	m := int32(4)
	gain := map[uint32]int32{}
	for qpos := 0; qpos < 2; qpos++ {
		for _, pe := range mf.postings[qorder[qpos]] {
			diff := pe.pos - int32(qpos)
			if diff < 0 {
				diff = -diff
			}
			gain[pe.id] += m - diff
		}
	}
	est := func(id uint32) int32 { return 2*m - gain[id] }
	// data ids: b=0, c=1, d=2.
	if est(0) != 0 || est(1) != 5 || est(2) != 4 {
		t.Fatalf("estimates = b:%d c:%d d:%d, want 0/5/4", est(0), est(1), est(2))
	}

	// End-to-end: the estimate-nearest candidate is b, and with k=1 and
	// the smallest gamma the search must return b.
	res := mf.Search(a, 1)
	if len(res) != 1 || res[0].ID != 0 {
		t.Fatalf("Search(a, 1) = %+v, want point b (id 0)", res)
	}
}

// TestNAPPPaperExample reproduces the §2.3 NAPP example: with one indexed
// pivot per point, a shares its closest pivot (pi1) only with b, so b is the
// only candidate.
func TestNAPPPaperExample(t *testing.T) {
	pv, a, b, c, d := figure1Pivots(t)
	data := [][]float32{b, c, d}
	na, err := NewNAPPWithPivots[[]float32](space.L2{}, data, pv, NAPPOptions{
		NumPivotIndex: 1, NumPivotSearch: 1, MinShared: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := na.Search(a, 3)
	if len(res) != 1 || res[0].ID != 0 {
		t.Fatalf("Search(a) = %+v, want only point b (id 0)", res)
	}
}

func TestEmptyDataRejectedEverywhere(t *testing.T) {
	sp := space.L2{}
	if _, err := NewBruteForceFilter[[]float32](sp, nil, BruteForceOptions{}); err == nil {
		t.Fatal("brute-force accepted empty data")
	}
	if _, err := NewBinFilter[[]float32](sp, nil, BinFilterOptions{}); err == nil {
		t.Fatal("bin filter accepted empty data")
	}
	if _, err := NewPPIndex[[]float32](sp, nil, PPIndexOptions{}); err == nil {
		t.Fatal("pp-index accepted empty data")
	}
	if _, err := NewMIFile[[]float32](sp, nil, MIFileOptions{}); err == nil {
		t.Fatal("mi-file accepted empty data")
	}
	if _, err := NewNAPP[[]float32](sp, nil, NAPPOptions{}); err == nil {
		t.Fatal("napp accepted empty data")
	}
	if _, err := NewOMEDRANK[[]float32](sp, nil, OMEDRANKOptions{}); err == nil {
		t.Fatal("omedrank accepted empty data")
	}
	if _, err := NewPermVPTree[[]float32](sp, nil, PermVPTreeOptions{}); err == nil {
		t.Fatal("perm-vptree accepted empty data")
	}
}

func TestTinyDatasets(t *testing.T) {
	// Single-point and two-point data sets must work for every method.
	sp := space.L2{}
	for _, data := range [][][]float32{
		{{1, 2}},
		{{1, 2}, {3, 4}},
	} {
		builders := map[string]func() (index.Index[[]float32], error){
			"bf": func() (index.Index[[]float32], error) {
				return NewBruteForceFilter[[]float32](sp, data, BruteForceOptions{})
			},
			"bin": func() (index.Index[[]float32], error) {
				return NewBinFilter[[]float32](sp, data, BinFilterOptions{})
			},
			"pp": func() (index.Index[[]float32], error) {
				return NewPPIndex[[]float32](sp, data, PPIndexOptions{})
			},
			"mi": func() (index.Index[[]float32], error) {
				return NewMIFile[[]float32](sp, data, MIFileOptions{})
			},
			"napp": func() (index.Index[[]float32], error) {
				return NewNAPP[[]float32](sp, data, NAPPOptions{})
			},
			"omed": func() (index.Index[[]float32], error) {
				return NewOMEDRANK[[]float32](sp, data, OMEDRANKOptions{})
			},
			"pvt": func() (index.Index[[]float32], error) {
				return NewPermVPTree[[]float32](sp, data, PermVPTreeOptions{})
			},
		}
		for name, build := range builders {
			idx, err := build()
			if err != nil {
				t.Fatalf("%s on %d points: %v", name, len(data), err)
			}
			res := idx.Search([]float32{1, 2}, 5)
			if len(res) == 0 {
				t.Fatalf("%s on %d points returned nothing", name, len(data))
			}
			checkValidResults(t, res, len(data), 5)
			if res := idx.Search([]float32{1, 2}, 0); res != nil {
				t.Fatalf("%s: k=0 returned results", name)
			}
		}
	}
}

func TestStatsPopulatedEverywhere(t *testing.T) {
	data := clustered(7, 300, 8)
	sp := space.L2{}
	idxs := []index.Sized{}
	bf, _ := NewBruteForceFilter[[]float32](sp, data, BruteForceOptions{NumPivots: 16})
	bin, _ := NewBinFilter[[]float32](sp, data, BinFilterOptions{NumPivots: 64})
	pp, _ := NewPPIndex[[]float32](sp, data, PPIndexOptions{NumPivots: 16, PrefixLen: 3, Copies: 2})
	mi, _ := NewMIFile[[]float32](sp, data, MIFileOptions{NumPivots: 16, NumPivotIndex: 8})
	na, _ := NewNAPP[[]float32](sp, data, NAPPOptions{NumPivots: 32, NumPivotIndex: 8})
	om, _ := NewOMEDRANK[[]float32](sp, data, OMEDRANKOptions{NumVoters: 4})
	pv, _ := NewPermVPTree[[]float32](sp, data, PermVPTreeOptions{NumPivots: 16})
	idxs = append(idxs, bf, bin, pp, mi, na, om, pv)
	for i, ix := range idxs {
		st := ix.Stats()
		if st.Bytes <= 0 {
			t.Fatalf("index %d: zero Bytes", i)
		}
		if st.BuildDistances <= 0 {
			t.Fatalf("index %d: zero BuildDistances", i)
		}
	}
}
