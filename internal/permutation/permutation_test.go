package permutation

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/space"
)

// figure1 reconstructs the Voronoi example of Figure 1 in the paper: four
// pivots and four data points a, b, c, d in the Euclidean plane whose induced
// permutations are (in the paper's 1-based notation) (1,2,3,4), (1,2,4,3),
// (2,3,1,4) and (3,2,4,1).
func figure1() (pivots *Pivots[[]float32], a, b, c, d []float32) {
	pts := [][]float32{
		{0, 0},     // pi1
		{2, 0},     // pi2
		{0, 4},     // pi3
		{2.5, 3.5}, // pi4
	}
	var err error
	pivots, err = NewPivots[[]float32](space.L2{}, pts)
	if err != nil {
		panic(err)
	}
	a = []float32{0.5, 0.1} // order pi1, pi2, pi3, pi4
	b = []float32{0.9, 0.8} // order pi1, pi2, pi4, pi3
	c = []float32{0, 2.04}  // order pi3, pi1, pi2, pi4
	d = []float32{3.2, 1.8} // order pi4, pi2, pi1, pi3
	return pivots, a, b, c, d
}

func eq32(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestFigure1Permutations(t *testing.T) {
	pivots, a, b, c, d := figure1()
	// 0-based versions of the paper's permutations.
	want := map[string][]int32{
		"a": {0, 1, 2, 3},
		"b": {0, 1, 3, 2},
		"c": {1, 2, 0, 3},
		"d": {2, 1, 3, 0},
	}
	got := map[string][]int32{
		"a": pivots.Permutation(a, nil),
		"b": pivots.Permutation(b, nil),
		"c": pivots.Permutation(c, nil),
		"d": pivots.Permutation(d, nil),
	}
	for name := range want {
		if !eq32(got[name], want[name]) {
			t.Errorf("permutation of %s = %v, want %v", name, got[name], want[name])
		}
	}
}

func TestFigure1Footrule(t *testing.T) {
	pivots, a, b, c, d := figure1()
	pa := pivots.Permutation(a, nil)
	pb := pivots.Permutation(b, nil)
	pc := pivots.Permutation(c, nil)
	pd := pivots.Permutation(d, nil)
	// Paper: Footrule(a,b)=2, (a,c)=4, (a,d)=6.
	if got := Footrule(pa, pb); got != 2 {
		t.Errorf("Footrule(a,b) = %v, want 2", got)
	}
	if got := Footrule(pa, pc); got != 4 {
		t.Errorf("Footrule(a,c) = %v, want 4", got)
	}
	if got := Footrule(pa, pd); got != 6 {
		t.Errorf("Footrule(a,d) = %v, want 6", got)
	}
}

func TestFigure1Binarized(t *testing.T) {
	pivots, a, b, c, d := figure1()
	// Paper uses 1-based threshold b=3; ranks >= 3 become ones. Our ranks
	// are 0-based, so the equivalent threshold is 2.
	bin := func(x []float32) Binary {
		return Binarize(pivots.Permutation(x, nil), 2, nil)
	}
	ba, bb, bc, bd := bin(a), bin(b), bin(c), bin(d)
	if got := Hamming(ba, bb); got != 0 {
		t.Errorf("Hamming(a,b) = %d, want 0", got)
	}
	if got := Hamming(ba, bc); got != 2 {
		t.Errorf("Hamming(a,c) = %d, want 2", got)
	}
	if got := Hamming(ba, bd); got != 2 {
		t.Errorf("Hamming(a,d) = %d, want 2", got)
	}
}

func TestFigure1Order(t *testing.T) {
	pivots, _, b, _, _ := figure1()
	// b's closest-first order is pi1, pi2, pi4, pi3 -> 0,1,3,2.
	if got := pivots.Order(b, nil); !eq32(got, []int32{0, 1, 3, 2}) {
		t.Errorf("order of b = %v", got)
	}
}

func TestOrderPermutationInverse(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	data := make([][]float32, 64)
	for i := range data {
		data[i] = []float32{float32(r.NormFloat64()), float32(r.NormFloat64()), float32(r.NormFloat64())}
	}
	pv, err := Sample[[]float32](r, space.L2{}, data, 16)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		x := data[r.Intn(len(data))]
		order := pv.Order(x, nil)
		perm := pv.Permutation(x, nil)
		if !IsPermutation(order) || !IsPermutation(perm) {
			t.Fatal("not a permutation")
		}
		if !eq32(Invert(order), perm) {
			t.Fatalf("Invert(order) != perm: %v vs %v", Invert(order), perm)
		}
		if !eq32(Invert(perm), order) {
			t.Fatalf("Invert(perm) != order")
		}
	}
}

func TestTieBreakingSmallestIndex(t *testing.T) {
	// Two pivots equidistant from x: the smaller index must rank first.
	pts := [][]float32{{1, 0}, {-1, 0}, {0, 5}}
	pv, err := NewPivots[[]float32](space.L2{}, pts)
	if err != nil {
		t.Fatal(err)
	}
	x := []float32{0, 0}
	order := pv.Order(x, nil)
	if !eq32(order, []int32{0, 1, 2}) {
		t.Fatalf("tie-broken order = %v, want [0 1 2]", order)
	}
}

func TestSampleValidation(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	data := [][]float32{{1}, {2}}
	if _, err := Sample[[]float32](r, space.L2{}, data, 0); err == nil {
		t.Fatal("m=0 accepted")
	}
	if _, err := Sample[[]float32](r, space.L2{}, data, 3); err == nil {
		t.Fatal("m>n accepted")
	}
	if _, err := NewPivots[[]float32](space.L2{}, nil); err == nil {
		t.Fatal("empty pivots accepted")
	}
	pv, err := Sample[[]float32](r, space.L2{}, data, 2)
	if err != nil {
		t.Fatal(err)
	}
	if pv.M() != 2 || len(pv.Items()) != 2 {
		t.Fatalf("M=%d", pv.M())
	}
	if pv.Space().Name() != "l2" {
		t.Fatalf("space = %q", pv.Space().Name())
	}
}

func TestSampleWithoutReplacement(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	data := make([][]float32, 100)
	for i := range data {
		data[i] = []float32{float32(i)}
	}
	pv, err := Sample[[]float32](r, space.L2{}, data, 100)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[float32]bool{}
	for _, it := range pv.Items() {
		if seen[it[0]] {
			t.Fatal("pivot sampled twice")
		}
		seen[it[0]] = true
	}
}

func randPerm(r *rand.Rand, n int) []int32 {
	p := make([]int32, n)
	for i, v := range r.Perm(n) {
		p[i] = int32(v)
	}
	return p
}

func TestRhoEqualsSquaredL2(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for i := 0; i < 100; i++ {
		n := 1 + r.Intn(64)
		a, b := randPerm(r, n), randPerm(r, n)
		var l2 float64
		for j := range a {
			d := float64(a[j] - b[j])
			l2 += d * d
		}
		if got := SpearmanRho(a, b); got != l2 {
			t.Fatalf("rho = %v, squared L2 = %v", got, l2)
		}
		if got := (RhoMetric{}).Distance(a, b); math.Abs(got-math.Sqrt(l2)) > 1e-12 {
			t.Fatalf("RhoMetric = %v", got)
		}
	}
}

func TestFootruleEqualsL1(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 100; i++ {
		n := 1 + r.Intn(64)
		a, b := randPerm(r, n), randPerm(r, n)
		var l1 float64
		for j := range a {
			l1 += math.Abs(float64(a[j] - b[j]))
		}
		if got := Footrule(a, b); got != l1 {
			t.Fatalf("footrule = %v, L1 = %v", got, l1)
		}
	}
}

func TestPermDistancePanicsOnMismatch(t *testing.T) {
	for name, f := range map[string]func(){
		"rho":      func() { SpearmanRho([]int32{0}, []int32{0, 1}) },
		"footrule": func() { Footrule([]int32{0}, []int32{0, 1}) },
		"hamming":  func() { Hamming(Binary{0}, Binary{0, 0}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestBinarizeRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	for trial := 0; trial < 50; trial++ {
		n := 1 + r.Intn(200)
		p := randPerm(r, n)
		th := int32(r.Intn(n + 1))
		b := Binarize(p, th, nil)
		if len(b) != BinaryWords(n) {
			t.Fatalf("len = %d, want %d", len(b), BinaryWords(n))
		}
		for i, v := range p {
			if b.Bit(i) != (v >= th) {
				t.Fatalf("bit %d wrong (perm %d, threshold %d)", i, v, th)
			}
		}
		// Number of ranks >= th is exactly n - th.
		wantOnes := n - int(th)
		if wantOnes < 0 {
			wantOnes = 0
		}
		if got := b.OnesCount(); got != wantOnes {
			t.Fatalf("OnesCount = %d, want %d", got, wantOnes)
		}
	}
}

func TestHammingMatchesNaive(t *testing.T) {
	f := func(aw, bw []uint64) bool {
		n := len(aw)
		if len(bw) < n {
			n = len(bw)
		}
		a, b := Binary(aw[:n]), Binary(bw[:n])
		want := 0
		for i := 0; i < n*64; i++ {
			if a.Bit(i) != b.Bit(i) {
				want++
			}
		}
		return Hamming(a, b) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestBinarizeReusesBuffer(t *testing.T) {
	p := randPerm(rand.New(rand.NewSource(7)), 128)
	buf := make(Binary, 2)
	out := Binarize(p, 64, buf)
	if &out[0] != &buf[0] {
		t.Fatal("buffer not reused")
	}
	// A second binarization into the same buffer must fully reset it.
	p2 := make([]int32, 128) // all ranks zero-ish (not a permutation; fine for Binarize)
	out2 := Binarize(p2, 64, out)
	if out2.OnesCount() != 0 {
		t.Fatal("stale bits after reuse")
	}
}

func TestSpacesImplementInterfaces(t *testing.T) {
	var _ space.Space[[]int32] = RhoSpace{}
	var _ space.Space[[]int32] = RhoMetric{}
	var _ space.Space[[]int32] = FootruleSpace{}
	var _ space.Space[Binary] = HammingSpace{}
	if !(FootruleSpace{}).Properties().Metric {
		t.Fatal("footrule should be metric")
	}
	if (RhoSpace{}).Properties().Metric {
		t.Fatal("raw rho must not claim metric")
	}
}

func TestDistancesLeftArgumentConvention(t *testing.T) {
	// With an asymmetric space, Distances must pass the point as the
	// data (left) argument.
	asym := asymSpace{}
	pv, err := NewPivots[float64](asym, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	d := pv.Distances(2, nil)
	// asymSpace.Distance(data=2, query=1) = 2*2 - 1 = 3.
	if d[0] != 3 {
		t.Fatalf("got %v: pivot distance used wrong argument order", d[0])
	}
}

// asymSpace is deliberately asymmetric: d(x, y) = |2x - y|.
type asymSpace struct{}

func (asymSpace) Distance(data, query float64) float64 { return math.Abs(2*data - query) }
func (asymSpace) Name() string                         { return "asym" }
func (asymSpace) Properties() space.Properties         { return space.Properties{} }

func BenchmarkPermutationM128(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	data := make([][]float32, 1000)
	for i := range data {
		v := make([]float32, 64)
		for j := range v {
			v[j] = float32(r.NormFloat64())
		}
		data[i] = v
	}
	pv, err := Sample[[]float32](r, space.L2{}, data, 128)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pv.Permutation(data[i%len(data)], nil)
	}
}

func BenchmarkHamming256(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	x := Binarize(randPerm(r, 256), 128, nil)
	y := Binarize(randPerm(r, 256), 128, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Hamming(x, y)
	}
}

// TestScratchEntryPointsMatchAllocating verifies OrderWith/PermutationWith
// return exactly what the allocating Order/Permutation return, and that a
// warm Scratch makes them allocation-free.
func TestScratchEntryPointsMatchAllocating(t *testing.T) {
	pivots, a, b, c, d := figure1()
	var s Scratch
	for _, x := range [][]float32{a, b, c, d} {
		wantOrder := pivots.Order(x, nil)
		if got := pivots.OrderWith(&s, x); !eq32(got, wantOrder) {
			t.Fatalf("OrderWith = %v, want %v", got, wantOrder)
		}
		wantPerm := pivots.Permutation(x, nil)
		if got := pivots.PermutationWith(&s, x); !eq32(got, wantPerm) {
			t.Fatalf("PermutationWith = %v, want %v", got, wantPerm)
		}
	}
	if avg := testing.AllocsPerRun(20, func() {
		pivots.PermutationWith(&s, a)
	}); avg != 0 {
		t.Errorf("warm PermutationWith allocates %v times per run", avg)
	}
	if avg := testing.AllocsPerRun(20, func() {
		pivots.OrderWith(&s, b)
	}); avg != 0 {
		t.Errorf("warm OrderWith allocates %v times per run", avg)
	}
}
