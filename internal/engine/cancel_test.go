package engine_test

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/index"
	"repro/internal/seqscan"
	"repro/internal/space"
	"repro/internal/topk"
)

// TestForWithIDCtxPreCanceled: an already-canceled context runs zero
// iterations on both the serial (small n) and worker-pool (large n) paths.
func TestForWithIDCtxPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, n := range []int{1, 1000} {
		var ran atomic.Int32
		err := engine.NewPool(4).ForWithIDCtx(ctx, n, func(_, _ int) { ran.Add(1) })
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("n=%d: err = %v, want context.Canceled", n, err)
		}
		if got := ran.Load(); got != 0 {
			t.Fatalf("n=%d: %d iterations ran on a pre-canceled context", n, got)
		}
	}
}

// TestForWithIDCtxCancelMidway: canceling while the loop is running cuts it
// short — the loop returns ctx.Err() having completed at most the in-flight
// items, not the whole range.
func TestForWithIDCtxCancelMidway(t *testing.T) {
	const n = 100000
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int32
	err := engine.NewPool(4).ForWithIDCtx(ctx, n, func(_, _ int) {
		if ran.Add(1) == 10 {
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := ran.Load(); got >= n/2 {
		t.Fatalf("%d of %d iterations ran after cancellation; loop did not stop", got, n)
	}
}

// slowIndex delays every Search so a cancellation test can observe the
// batch being cut short rather than racing it to completion.
type slowIndex struct {
	inner index.Index[[]float32]
	calls atomic.Int32
}

func (s *slowIndex) Search(q []float32, k int) []topk.Neighbor {
	s.calls.Add(1)
	time.Sleep(2 * time.Millisecond)
	return s.inner.Search(q, k)
}

func (s *slowIndex) Name() string { return "slow" }

// TestSearchBatchPoolCtxCanceled pins the serving-path contract the ISSUE
// calls "a canceled batch returns promptly": cancellation mid-batch yields
// a nil result and ctx.Err() well before the remaining queries would have
// run, and a pre-canceled context answers nothing at all.
func TestSearchBatchPoolCtxCanceled(t *testing.T) {
	db, queries := batchData(t, 50, 256)
	idx := &slowIndex{inner: seqscan.New[[]float32](space.L2{}, db)}

	pre, cancel := context.WithCancel(context.Background())
	cancel()
	out, err := engine.SearchBatchPoolCtx(pre, engine.NewPool(4), index.Index[[]float32](idx), queries, 3)
	if out != nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled batch = (%v, %v), want (nil, context.Canceled)", out, err)
	}
	if got := idx.calls.Load(); got != 0 {
		t.Fatalf("pre-canceled batch ran %d searches", got)
	}

	// With 4 workers × 2ms per query, 256 queries take ~128ms serially per
	// worker; cancel after ~4 queries' worth and require the call back well
	// under the full-batch time.
	ctx, cancel := context.WithTimeout(context.Background(), 8*time.Millisecond)
	defer cancel()
	start := time.Now()
	out, err = engine.SearchBatchPoolCtx(ctx, engine.NewPool(4), index.Index[[]float32](idx), queries, 3)
	elapsed := time.Since(start)
	if out != nil || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("canceled batch = (%v, %v), want (nil, context.DeadlineExceeded)", out, err)
	}
	if answered := idx.calls.Load(); answered >= int32(len(queries)) {
		t.Fatalf("all %d queries ran despite cancellation", answered)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("canceled batch took %v to return", elapsed)
	}
}
