package space

import "math"

// Histogram is a discrete probability distribution (an LDA topic histogram
// in the Wiki-8 / Wiki-128 experiments) together with precomputed element
// logarithms.
//
// The paper replaces zero probabilities by 1e-5 before indexing to avoid
// division by zero; NewHistogram applies the same floor. Precomputing logs at
// index time makes the KL-divergence as cheap as L2 at query time, while the
// JS-divergence still needs log(x+y) per element and is 10-20x slower — this
// asymmetry is load-bearing for the Figure 4 results and is reproduced here.
type Histogram struct {
	P    []float32 // probabilities, strictly positive
	LogP []float32 // natural logs of P
}

// HistogramFloor is the minimum probability: zeros in raw data are clamped
// to this value, matching the paper's preprocessing.
const HistogramFloor = 1e-5

// NewHistogram copies p, clamps entries below HistogramFloor, renormalizes
// to sum 1, and precomputes logarithms.
func NewHistogram(p []float32) Histogram {
	cp := make([]float32, len(p))
	var sum float64
	for i, v := range p {
		if v < HistogramFloor {
			v = HistogramFloor
		}
		cp[i] = v
		sum += float64(v)
	}
	if sum > 0 {
		inv := 1 / sum
		for i := range cp {
			cp[i] = float32(float64(cp[i]) * inv)
		}
	}
	logs := make([]float32, len(cp))
	for i, v := range cp {
		logs[i] = float32(math.Log(float64(v)))
	}
	return Histogram{P: cp, LogP: logs}
}

// KLDivergence is the Kullback-Leibler divergence
//
//	KL(x || y) = sum_i x_i * log(x_i / y_i)
//
// a non-symmetric, non-metric distance. Following the paper we evaluate left
// queries: the data point is the first (left) argument, so
// Distance(data, query) = KL(data || query).
//
// Thanks to the precomputed logs this costs one multiply-add per dimension,
// the same as L2.
type KLDivergence struct{}

// Distance returns KL(data || query). The result is clamped at zero to
// absorb floating-point round-off on near-identical histograms.
func (KLDivergence) Distance(data, query Histogram) float64 {
	var s0, s1 float64
	p, lp, lq := data.P, data.LogP, query.LogP
	i := 0
	for ; i+2 <= len(p); i += 2 {
		s0 += float64(p[i]) * float64(lp[i]-lq[i])
		s1 += float64(p[i+1]) * float64(lp[i+1]-lq[i+1])
	}
	for ; i < len(p); i++ {
		s0 += float64(p[i]) * float64(lp[i]-lq[i])
	}
	if s := s0 + s1; s > 0 {
		return s
	}
	return 0
}

// Name implements Space.
func (KLDivergence) Name() string { return "kldiv" }

// Properties implements Space: neither symmetric nor metric.
func (KLDivergence) Properties() Properties { return Properties{} }

// JSDivergence is the Jensen-Shannon divergence
//
//	JS(x, y) = 1/2 sum_i [ x_i log x_i + y_i log y_i - (x_i+y_i) log((x_i+y_i)/2) ]
//
// a symmetric non-metric distance whose square root is a metric (the
// Jensen-Shannon distance). The log(x_i + y_i) term cannot be precomputed,
// which makes it 10-20x slower than KL per the paper — deliberately kept.
type JSDivergence struct{}

// ln2 is log(2), used to rewrite log((x+y)/2) = log(x+y) - log 2.
var ln2 = math.Log(2)

// Distance returns JS(data, query), clamped at zero.
func (JSDivergence) Distance(data, query Histogram) float64 {
	var s float64
	p, q := data.P, query.P
	lp, lq := data.LogP, query.LogP
	for i := range p {
		x, y := float64(p[i]), float64(q[i])
		m := x + y
		s += x*float64(lp[i]) + y*float64(lq[i]) - m*(math.Log(m)-ln2)
	}
	s *= 0.5
	if s > 0 {
		return s
	}
	return 0
}

// Name implements Space.
func (JSDivergence) Name() string { return "jsdiv" }

// Properties implements Space: symmetric but not a metric.
func (JSDivergence) Properties() Properties { return Properties{Symmetric: true} }
