package router_test

// End-to-end tests of the HTTP front tier: real serving handlers
// (internal/server) mounted on httptest listeners, a Router scattered over
// them, and the answers compared — byte for byte — against one unsharded
// daemon over the same corpus. Plus the degraded modes: a killed shard
// yields the documented fail-open "partial": true answer or a fail-closed
// 502, never a hang or panic.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/index"
	"repro/internal/persist"
	"repro/internal/router"
	"repro/internal/server"
	"repro/internal/shard"
	"repro/internal/space"
	"repro/internal/vptree"
)

const (
	rtSeed = 7
	rtN    = 200 // full DNA corpus size
	rtName = "dna"
)

// writeServed writes one index file + sidecar into dir and boots a serving
// handler over it.
func writeServed[T any](t *testing.T, idx index.Index[T], man server.Manifest) *httptest.Server {
	t.Helper()
	dir := t.TempDir()
	if err := persist.SaveFile(filepath.Join(dir, rtName+persist.Ext), idx); err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(man)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, rtName+".json"), blob, 0o644); err != nil {
		t.Fatal(err)
	}
	reg, err := server.OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(server.New(reg, server.Options{Workers: 2, Timeout: 30 * time.Second}).Handler())
	t.Cleanup(ts.Close)
	return ts
}

// bootShardSet builds a VP-tree per hash shard of the DNA corpus, serves
// each from its own httptest daemon, and returns the shard servers plus an
// identically named unsharded daemon over the full corpus.
func bootShardSet(t *testing.T, S int) (shards []*httptest.Server, unsharded *httptest.Server, queries [][]byte) {
	t.Helper()
	db := dataset.DNA(rtSeed, rtN, dataset.DNAOptions{})
	ids, err := shard.IDs(shard.Hash, len(db), S)
	if err != nil {
		t.Fatal(err)
	}
	for s := range ids {
		tree, err := vptree.New[[]byte](space.NormalizedLevenshtein{}, shard.Subset(db, ids[s]), vptree.Options{Seed: rtSeed})
		if err != nil {
			t.Fatal(err)
		}
		shards = append(shards, writeServed[[]byte](t, tree, server.Manifest{
			Dataset: "dna", Seed: rtSeed, N: rtN, Generation: int64(10 + s),
			Shard: &shard.Info{Set: rtName, Partitioner: shard.Hash, Shards: S, Index: s},
		}))
	}
	ref, err := vptree.New[[]byte](space.NormalizedLevenshtein{}, db, vptree.Options{Seed: rtSeed})
	if err != nil {
		t.Fatal(err)
	}
	unsharded = writeServed[[]byte](t, ref, server.Manifest{Dataset: "dna", Seed: rtSeed, N: rtN})
	queries = append(dataset.DNA(rtSeed+1, 6, dataset.DNAOptions{}), db[:3]...)
	return shards, unsharded, queries
}

func urlsOf(shards []*httptest.Server) []string {
	urls := make([]string, len(shards))
	for i, s := range shards {
		urls[i] = s.URL
	}
	return urls
}

// bootRouter mounts a Router over the shard servers.
func bootRouter(t *testing.T, shards []*httptest.Server, opts router.Options) *httptest.Server {
	t.Helper()
	opts.Shards = urlsOf(shards)
	rt, err := router.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(rt.Handler())
	t.Cleanup(ts.Close)
	return ts
}

// post sends a JSON body and returns status + raw response.
func post(t *testing.T, url string, body any) (int, []byte) {
	t.Helper()
	blob, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, raw
}

func searchURL(base string) string { return base + "/v1/indexes/" + rtName + "/search" }

// TestRouterByteIdenticalToUnsharded: for single and batch requests, the
// router's complete answer over S=3 shards is byte-identical to the
// unsharded daemon's — same JSON, same field order, same floats, ties
// resolved the same way.
func TestRouterByteIdenticalToUnsharded(t *testing.T) {
	shards, unsharded, queries := bootShardSet(t, 3)
	rt := bootRouter(t, shards, router.Options{})

	for qi, q := range queries {
		for _, k := range []int{1, 5, rtN + 9} {
			body := map[string]any{"query": string(q), "k": k}
			wantStatus, want := post(t, searchURL(unsharded.URL), body)
			gotStatus, got := post(t, searchURL(rt.URL), body)
			if wantStatus != http.StatusOK || gotStatus != http.StatusOK {
				t.Fatalf("query %d k=%d: statuses %d/%d", qi, k, wantStatus, gotStatus)
			}
			if !bytes.Equal(want, got) {
				t.Fatalf("query %d k=%d: routed answer differs from unsharded\nrouted    %s\nunsharded %s", qi, k, got, want)
			}
		}
	}

	// Batch: one request with every query.
	enc := make([]any, len(queries))
	for i, q := range queries {
		enc[i] = string(q)
	}
	body := map[string]any{"queries": enc, "k": 7}
	_, want := post(t, searchURL(unsharded.URL), body)
	_, got := post(t, searchURL(rt.URL), body)
	if !bytes.Equal(want, got) {
		t.Fatalf("batch: routed answer differs from unsharded\nrouted    %s\nunsharded %s", got, want)
	}
}

// TestRouterBatchMatchesSerial: a batch through the router equals its
// queries sent one at a time.
func TestRouterBatchMatchesSerial(t *testing.T) {
	shards, _, queries := bootShardSet(t, 2)
	rt := bootRouter(t, shards, router.Options{})
	const k = 5
	enc := make([]any, len(queries))
	for i, q := range queries {
		enc[i] = string(q)
	}
	_, raw := post(t, searchURL(rt.URL), map[string]any{"queries": enc, "k": k})
	var batch struct {
		Batch []json.RawMessage `json:"batch"`
	}
	if err := json.Unmarshal(raw, &batch); err != nil {
		t.Fatalf("batch response: %v: %s", err, raw)
	}
	if len(batch.Batch) != len(queries) {
		t.Fatalf("batch answered %d queries, want %d", len(batch.Batch), len(queries))
	}
	for i, q := range queries {
		_, sraw := post(t, searchURL(rt.URL), map[string]any{"query": string(q), "k": k})
		var single struct {
			Results json.RawMessage `json:"results"`
		}
		if err := json.Unmarshal(sraw, &single); err != nil {
			t.Fatal(err)
		}
		if string(single.Results) != string(batch.Batch[i]) {
			t.Errorf("query %d: batch %s, serial %s", i, batch.Batch[i], single.Results)
		}
	}
}

// TestRouterShardDown covers both degraded modes when a shard dies
// mid-flight.
func TestRouterShardDown(t *testing.T) {
	for _, failOpen := range []bool{true, false} {
		t.Run(fmt.Sprintf("failOpen=%v", failOpen), func(t *testing.T) {
			shards, unsharded, queries := bootShardSet(t, 3)
			rt := bootRouter(t, shards, router.Options{FailOpen: failOpen, ShardTimeout: 5 * time.Second})
			q := string(queries[0])

			// Healthy first: the answer is complete and unmarked.
			status, raw := post(t, searchURL(rt.URL), map[string]any{"query": q, "k": 5})
			if status != http.StatusOK || bytes.Contains(raw, []byte("partial")) {
				t.Fatalf("healthy answer: status %d body %s", status, raw)
			}

			shards[1].Close() // kill shard 1

			status, raw = post(t, searchURL(rt.URL), map[string]any{"query": q, "k": 5})
			if !failOpen {
				if status != http.StatusBadGateway {
					t.Fatalf("fail-closed: status %d, want 502: %s", status, raw)
				}
				return
			}
			if status != http.StatusOK {
				t.Fatalf("fail-open: status %d: %s", status, raw)
			}
			var resp struct {
				Results      []struct{ ID uint32 } `json:"results"`
				Partial      bool                  `json:"partial"`
				FailedShards []int                 `json:"failed_shards"`
			}
			if err := json.Unmarshal(raw, &resp); err != nil {
				t.Fatal(err)
			}
			if !resp.Partial || len(resp.FailedShards) != 1 || resp.FailedShards[0] != 1 {
				t.Fatalf("fail-open degraded answer = %s", raw)
			}
			if len(resp.Results) == 0 {
				t.Fatalf("fail-open answer carries no surviving results: %s", raw)
			}
			// The partial answer must be a subset of the truth: every
			// returned (id, dist) appears in the unsharded answer for a
			// large-enough k.
			_, uraw := post(t, searchURL(unsharded.URL), map[string]any{"query": q, "k": rtN})
			for _, nb := range resp.Results {
				if !bytes.Contains(uraw, []byte(fmt.Sprintf(`{"id":%d,`, nb.ID))) {
					t.Errorf("partial answer id %d not in the unsharded answer", nb.ID)
				}
			}

			// Readiness reflects the dead shard.
			hresp, err := http.Get(rt.URL + "/healthz")
			if err != nil {
				t.Fatal(err)
			}
			hresp.Body.Close()
			if hresp.StatusCode != http.StatusServiceUnavailable {
				t.Errorf("healthz with a dead shard: status %d, want 503", hresp.StatusCode)
			}
		})
	}
}

// TestRouterClientErrors: malformed requests are 400s (the shard's verdict
// propagated), unknown indexes 404 — never shard failures.
func TestRouterClientErrors(t *testing.T) {
	shards, _, _ := bootShardSet(t, 2)
	rt := bootRouter(t, shards, router.Options{})
	for name, body := range map[string]any{
		"no query":          map[string]any{"k": 3},
		"negative k":        map[string]any{"query": "ACGT", "k": -1},
		"wrong query shape": map[string]any{"query": 42},
	} {
		if status, raw := post(t, searchURL(rt.URL), body); status != http.StatusBadRequest {
			t.Errorf("%s: status %d: %s", name, status, raw)
		}
	}
	if status, _ := post(t, rt.URL+"/v1/indexes/nope/search", map[string]any{"query": "ACGT"}); status != http.StatusNotFound {
		t.Errorf("unknown index: status %d, want 404", status)
	}
	// Counters: client errors must not show up as shard failures.
	resp, err := http.Get(rt.URL + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var status struct {
		Shards []struct {
			Failures int64 `json:"failures"`
		} `json:"shards"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	for i, s := range status.Shards {
		if s.Failures != 0 {
			t.Errorf("shard %d counted %d failures from client errors", i, s.Failures)
		}
	}
}

// TestRouterList: the merged index listing reports the full corpus size and
// the per-shard × per-replica generation matrix.
func TestRouterList(t *testing.T) {
	shards, _, _ := bootShardSet(t, 3)
	rt := bootRouter(t, shards, router.Options{})
	resp, err := http.Get(rt.URL + "/v1/indexes")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list struct {
		Indexes []struct {
			Name        string    `json:"name"`
			N           uint64    `json:"n"`
			Shards      int       `json:"shards"`
			Generations [][]int64 `json:"generations"`
		} `json:"indexes"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list.Indexes) != 1 {
		t.Fatalf("listed %d indexes", len(list.Indexes))
	}
	got := list.Indexes[0]
	if got.Name != rtName || got.N != rtN || got.Shards != 3 {
		t.Fatalf("listing = %+v", got)
	}
	if len(got.Generations) != 3 {
		t.Fatalf("generations = %v", got.Generations)
	}
	for s, want := range []int64{10, 11, 12} {
		if len(got.Generations[s]) != 1 || got.Generations[s][0] != want {
			t.Fatalf("shard %d generations = %v, want [%d]", s, got.Generations[s], want)
		}
	}
}

// TestRouterDiscoveryRejectsMiswiring: backends passed out of shard order
// must be refused at startup (the stamp's index contradicts the position).
func TestRouterDiscoveryRejectsMiswiring(t *testing.T) {
	shards, _, _ := bootShardSet(t, 2)
	if _, err := router.New(router.Options{Shards: []string{shards[1].URL, shards[0].URL}}); err == nil {
		t.Fatal("router accepted backends wired out of shard order")
	}
	// Wrong backend count for the stamped set size.
	if _, err := router.New(router.Options{Shards: []string{shards[0].URL}}); err == nil {
		t.Fatal("router accepted 1 backend for a 2-shard set")
	}
}

// TestRouterWrongShapePayload: a version-skewed backend answering 200 with
// the wrong response shape is a shard failure, not a panic (short batch
// must not index out of range) and not a silent truncation (a single-query
// answer missing "results" must not merge as empty).
func TestRouterWrongShapePayload(t *testing.T) {
	// A broken shard: claims the protocol, answers single queries with a
	// batch shape and batches with too few entries.
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/indexes", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, `{"indexes":[{"name":"dna","kind":"seqscan","space":"l2","n":1}]}`)
	})
	mux.HandleFunc("POST /v1/indexes/dna/search", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, `{"index":"dna","k":1,"batch":[[{"id":0,"dist":0}]]}`)
	})
	broken := httptest.NewServer(mux)
	defer broken.Close()
	// A healthy synthetic shard.
	hmux := http.NewServeMux()
	hmux.HandleFunc("GET /v1/indexes", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, `{"indexes":[{"name":"dna","kind":"seqscan","space":"l2","n":1}]}`)
	})
	hmux.HandleFunc("POST /v1/indexes/dna/search", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Query   json.RawMessage   `json:"query"`
			Queries []json.RawMessage `json:"queries"`
		}
		json.NewDecoder(r.Body).Decode(&req)
		if req.Query != nil {
			io.WriteString(w, `{"index":"dna","k":1,"results":[{"id":1,"dist":0.5}]}`)
			return
		}
		fmt.Fprintf(w, `{"index":"dna","k":1,"batch":[`)
		for i := range req.Queries {
			if i > 0 {
				io.WriteString(w, ",")
			}
			io.WriteString(w, `[{"id":1,"dist":0.5}]`)
		}
		io.WriteString(w, `]}`)
	})
	healthy := httptest.NewServer(hmux)
	defer healthy.Close()

	rt, err := router.New(router.Options{Shards: []string{broken.URL, healthy.URL}, FailOpen: true})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(rt.Handler())
	defer ts.Close()

	// Single query: the broken shard's batch-shaped answer must be a
	// counted failure, yielding a partial answer from the healthy shard.
	status, raw := post(t, ts.URL+"/v1/indexes/dna/search", map[string]any{"query": "A", "k": 1})
	if status != http.StatusOK {
		t.Fatalf("single: status %d: %s", status, raw)
	}
	var single struct {
		Results      []struct{ ID uint32 } `json:"results"`
		Partial      bool                  `json:"partial"`
		FailedShards []int                 `json:"failed_shards"`
	}
	if err := json.Unmarshal(raw, &single); err != nil {
		t.Fatal(err)
	}
	if !single.Partial || len(single.FailedShards) != 1 || single.FailedShards[0] != 0 {
		t.Fatalf("wrong-shape single answer not degraded: %s", raw)
	}
	if len(single.Results) != 1 || single.Results[0].ID != 1 {
		t.Fatalf("surviving shard's answer lost: %s", raw)
	}

	// Batch of 2: the broken shard returns 1 entry; the router must not
	// panic and must mark the shard failed.
	status, raw = post(t, ts.URL+"/v1/indexes/dna/search", map[string]any{"queries": []any{"A", "C"}, "k": 1})
	if status != http.StatusOK {
		t.Fatalf("batch: status %d: %s", status, raw)
	}
	var batch struct {
		Batch        [][]struct{ ID uint32 } `json:"batch"`
		Partial      bool                    `json:"partial"`
		FailedShards []int                   `json:"failed_shards"`
	}
	if err := json.Unmarshal(raw, &batch); err != nil {
		t.Fatal(err)
	}
	if !batch.Partial || len(batch.FailedShards) != 1 || batch.FailedShards[0] != 0 || len(batch.Batch) != 2 {
		t.Fatalf("wrong-shape batch answer not degraded: %s", raw)
	}

	// Fail-closed: the same broken shard must 502, never silently drop.
	rtc, err := router.New(router.Options{Shards: []string{broken.URL, healthy.URL}})
	if err != nil {
		t.Fatal(err)
	}
	tsc := httptest.NewServer(rtc.Handler())
	defer tsc.Close()
	if status, raw := post(t, tsc.URL+"/v1/indexes/dna/search", map[string]any{"query": "A", "k": 1}); status != http.StatusBadGateway {
		t.Fatalf("fail-closed wrong shape: status %d, want 502: %s", status, raw)
	}
}

// TestRouterHedging: a shard that answers slowly trips the hedge; the
// request still succeeds and the hedge is counted.
func TestRouterHedging(t *testing.T) {
	// A synthetic slow shard speaking just enough of the protocol.
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/indexes", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, `{"indexes":[{"name":"dna","kind":"seqscan","space":"l2","n":1}]}`)
	})
	mux.HandleFunc("POST /v1/indexes/dna/search", func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(150 * time.Millisecond)
		io.WriteString(w, `{"index":"dna","k":1,"results":[{"id":0,"dist":0}]}`)
	})
	slow := httptest.NewServer(mux)
	defer slow.Close()

	rt, err := router.New(router.Options{
		Shards:       []string{slow.URL},
		ShardTimeout: 5 * time.Second,
		HedgeDelay:   20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(rt.Handler())
	defer ts.Close()

	status, raw := post(t, ts.URL+"/v1/indexes/dna/search", map[string]any{"query": "A", "k": 1})
	if status != http.StatusOK {
		t.Fatalf("hedged search: status %d: %s", status, raw)
	}
	resp, err := http.Get(ts.URL + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st struct {
		Shards []struct {
			Hedges int64 `json:"hedges"`
		} `json:"shards"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Shards[0].Hedges < 1 {
		t.Errorf("hedge did not fire against a 150ms shard with a 20ms hedge delay")
	}
}
