#!/bin/sh
# Smoke test of the serving daemon: write a demo index set, boot permserve
# on a free port, and drive /healthz, one search, a hot reload, /statusz
# and a /metrics scrape (validated with scripts/metricscheck) end to end.
# Exits nonzero on any unexpected answer. Run via `make serve-smoke`.
set -eu

BIN=${1:?usage: serve_smoke.sh path/to/permserve path/to/metricscheck}
MC=${2:?usage: serve_smoke.sh path/to/permserve path/to/metricscheck}
TMP=$(mktemp -d)
LOG="$TMP/permserve.log"
PID=
trap '[ -n "$PID" ] && kill "$PID" 2>/dev/null || true; rm -rf "$TMP"' EXIT INT TERM

"$BIN" -write-demo -dir "$TMP/idx"
"$BIN" -dir "$TMP/idx" -addr 127.0.0.1:0 -pprof-addr 127.0.0.1:0 \
    -mutex-profile-fraction 2 -block-profile-rate 1000000 >"$LOG" 2>&1 &
PID=$!

fail() {
    echo "serve-smoke: FAIL: $1" >&2
    echo "--- permserve log ---" >&2
    cat "$LOG" >&2
    exit 1
}

# Wait for the daemon to log its bound address (port 0 picks a free one).
ADDR=
i=0
while [ $i -lt 50 ]; do
    ADDR=$(sed -n 's#.*listening on http://\([0-9.:]*\).*#\1#p' "$LOG" | head -n1)
    [ -n "$ADDR" ] && break
    kill -0 "$PID" 2>/dev/null || fail "daemon exited during startup"
    sleep 0.2
    i=$((i + 1))
done
[ -n "$ADDR" ] || fail "daemon never started listening"

HEALTH=$(curl -sf "http://$ADDR/healthz") || fail "healthz request failed"
[ "$HEALTH" = "ok" ] || fail "healthz said '$HEALTH', want 'ok'"

RESULT=$(curl -sf -d '{"query": "ACGTACGTAC", "k": 3}' \
    "http://$ADDR/v1/indexes/dna-vptree/search") || fail "search request failed"
echo "$RESULT" | grep -q '"results":\[{"id":' || fail "search returned no neighbors: $RESULT"

curl -sf -XPOST "http://$ADDR/v1/indexes/dna-vptree/reload" >/dev/null || fail "hot reload failed"
STATUSZ=$(curl -sf "http://$ADDR/statusz") || fail "statusz request failed"
echo "$STATUSZ" | grep -q '"requests":1' || fail "statusz did not count the search"
echo "$STATUSZ" | grep -q '"heap_alloc_bytes":' || fail "statusz missing runtime memory counters"

# The /metrics exposition must parse strictly, hold the histogram
# invariants, and carry the serving families the dashboards key on.
curl -sf "http://$ADDR/metrics" >"$TMP/metrics.txt" || fail "metrics scrape failed"
"$MC" -require permserve_search_requests_total,permserve_queries_total,permserve_search_latency_seconds,permserve_stage_ns_total,permserve_filter_candidates_total,permserve_refine_distances_total,permserve_uptime_seconds "$TMP/metrics.txt" \
    || fail "metrics page failed metricscheck"
grep -q 'permserve_search_requests_total{index="dna-vptree"} 1' "$TMP/metrics.txt" \
    || fail "metrics did not count the search"

# The -pprof-addr sidecar must serve profiles on its own port.
PPROF_ADDR=$(sed -n 's#.*pprof on http://\([0-9.:]*\)/.*#\1#p' "$LOG" | head -n1)
[ -n "$PPROF_ADDR" ] || fail "daemon never logged its pprof address"
curl -sf "http://$PPROF_ADDR/debug/pprof/heap?debug=1" | grep -q 'HeapAlloc' \
    || fail "pprof heap profile not served"
# Contention profilers are armed by the flags above; the mutex profile must
# actually serve (sampling on means a well-formed page, hits or not).
curl -sf "http://$PPROF_ADDR/debug/pprof/mutex?debug=1" | grep -q 'cycles/second' \
    || fail "pprof mutex profile not served with -mutex-profile-fraction on"

kill "$PID"
STATUS=0
wait "$PID" || STATUS=$?
PID=
[ "$STATUS" -eq 0 ] || fail "daemon exited with status $STATUS on SIGTERM"
grep -q "permserve: bye" "$LOG" || fail "no graceful shutdown on SIGTERM"
echo "serve-smoke: OK (served on $ADDR)"
