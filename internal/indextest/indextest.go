// Package indextest is the cross-index conformance suite: a set of
// behavioral properties every index.Index implementation in this repository
// must satisfy, exercised over every registered kind by the tests in this
// package (and reusable by future index packages). The properties are the
// interface contract written as code:
//
//   - results are ordered by increasing distance, carry true distances, and
//     never repeat or fabricate ids;
//   - k edge cases hold: k <= 0 returns nothing, k = 1 returns the single
//     best candidate, k > n returns at most n results;
//   - a concurrent batch via engine.SearchBatch returns exactly what a
//     serial Search loop would (the engine contract);
//   - Search is safe for concurrent use (validated under the CI race job).
//
// The roundtrip suite (roundtrip.go) extends the contract to persistence:
// Save then Load must yield an index whose every answer — and persisted byte
// stream — is identical to the original's.
package indextest

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"repro/internal/engine"
	"repro/internal/index"
	"repro/internal/space"
	"repro/internal/topk"
)

// Builder constructs a fresh index over the data set under test. It is
// invoked more than once by some properties and must be deterministic enough
// that equality checks across instances are meaningful (fix all seeds, use
// Workers: 1 for SW graphs).
type Builder[T any] func() (index.Index[T], error)

// Conformance runs every behavioral property against the index built by
// build over (sp, data), probing with the given queries. Queries should
// include both held-out points and points of the data set itself.
func Conformance[T any](t *testing.T, sp space.Space[T], data []T, queries []T, build Builder[T]) {
	t.Helper()
	if len(data) == 0 || len(queries) == 0 {
		t.Fatal("indextest: empty data or queries")
	}

	t.Run("results-well-formed", func(t *testing.T) {
		idx, err := build()
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range []int{1, 2, 10} {
			for qi, q := range queries {
				checkWellFormed(t, sp, data, q, idx.Search(q, k), k, fmt.Sprintf("query %d k=%d", qi, k))
			}
		}
	})

	t.Run("k-edge-cases", func(t *testing.T) {
		idx, err := build()
		if err != nil {
			t.Fatal(err)
		}
		q := queries[0]
		if got := idx.Search(q, 0); len(got) != 0 {
			t.Errorf("Search(q, 0) returned %d results, want 0", len(got))
		}
		if got := idx.Search(q, -3); len(got) != 0 {
			t.Errorf("Search(q, -3) returned %d results, want 0", len(got))
		}
		// Approximate filter methods may exhaust their candidate set and
		// return fewer than k results (the interface allows it), but k=1
		// must yield a result whenever a larger k over the same candidates
		// does — an index that answers at k=20 but not at k=1 is broken.
		one := idx.Search(q, 1)
		if len(one) > 1 {
			t.Errorf("Search(q, 1) returned %d results", len(one))
		}
		big := len(data) + 7
		got := idx.Search(q, big)
		if len(got) > len(data) {
			t.Errorf("Search(q, %d) returned %d results, more than the %d indexed points", big, len(got), len(data))
		}
		if len(one) == 0 && len(got) > 0 {
			t.Errorf("Search(q, 1) found nothing but Search(q, %d) found %d results", big, len(got))
		}
		checkWellFormed(t, sp, data, q, got, big, fmt.Sprintf("k=%d > n", big))
	})

	t.Run("batch-matches-serial", func(t *testing.T) {
		const k = 10
		serialIdx, err := build()
		if err != nil {
			t.Fatal(err)
		}
		batchIdx := clone(t, sp, data, serialIdx, build)
		want := make([][]topk.Neighbor, len(queries))
		for i, q := range queries {
			want[i] = serialIdx.Search(q, k)
		}
		got := engine.SearchBatchPool(engine.NewPool(4), batchIdx, queries, k)
		for i := range queries {
			diffResults(t, want[i], got[i], fmt.Sprintf("query %d", i))
		}
	})

	t.Run("searcher-matches-search", func(t *testing.T) {
		// Indexes that mint per-worker searchers (index.SearcherProvider)
		// must answer identically through them — both the plain Search
		// entry point and the appending zero-allocation one, including
		// when dst already carries earlier results that must survive.
		idx, err := build()
		if err != nil {
			t.Fatal(err)
		}
		sp, ok := any(idx).(index.SearcherProvider[T])
		if !ok {
			t.Skip("index does not provide searchers")
		}
		searcher := sp.NewSearcher()
		const k = 10
		sentinel := topk.Neighbor{ID: ^uint32(0), Dist: -1}
		dst := make([]topk.Neighbor, 0, 64)
		for qi, q := range queries {
			want := idx.Search(q, k)
			got := searcher.Search(q, k)
			diffResults(t, want, got, fmt.Sprintf("searcher query %d", qi))
			dst = append(dst[:0], sentinel)
			dst = searcher.SearchAppend(dst, q, k)
			if len(dst) == 0 || dst[0] != sentinel {
				t.Fatalf("query %d: SearchAppend clobbered existing dst contents", qi)
			}
			diffResults(t, want, dst[1:], fmt.Sprintf("search-append query %d", qi))
		}
	})

	t.Run("concurrent-search", func(t *testing.T) {
		// No assertions on answers — the property is the absence of data
		// races (the CI race job runs this package under -race) and
		// panics when many goroutines share one index.
		idx, err := build()
		if err != nil {
			t.Fatal(err)
		}
		const goroutines = 8
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i, q := range queries {
					idx.Search(q, 1+(g+i)%7)
				}
			}(g)
		}
		wg.Wait()
	})
}

// checkWellFormed asserts the core result invariants: at most k entries,
// no duplicate or out-of-range ids, distances non-decreasing and equal to
// the true distance between the returned point and the query.
func checkWellFormed[T any](t *testing.T, sp space.Space[T], data []T, query T, res []topk.Neighbor, k int, ctx string) {
	t.Helper()
	if len(res) > k {
		t.Errorf("%s: %d results exceed k=%d", ctx, len(res), k)
	}
	seen := make(map[uint32]struct{}, len(res))
	for i, nb := range res {
		if int(nb.ID) >= len(data) {
			t.Errorf("%s: result %d has id %d, data set holds %d points", ctx, i, nb.ID, len(data))
			continue
		}
		if _, dup := seen[nb.ID]; dup {
			t.Errorf("%s: id %d returned twice", ctx, nb.ID)
		}
		seen[nb.ID] = struct{}{}
		if i > 0 && nb.Dist < res[i-1].Dist {
			t.Errorf("%s: distances not ordered: res[%d]=%g < res[%d]=%g", ctx, i, nb.Dist, i-1, res[i-1].Dist)
		}
		if td := sp.Distance(data[nb.ID], query); !sameDist(nb.Dist, td) {
			t.Errorf("%s: result %d reports distance %g, true distance is %g", ctx, i, nb.Dist, td)
		}
	}
}

// sameDist compares a reported distance with a recomputed one. Both come
// from the same Distance implementation over the same arguments, so exact
// equality is expected; NaN never is.
func sameDist(a, b float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	return a == b
}

// diffResults asserts two result lists are identical (ids and distances).
func diffResults(t *testing.T, want, got []topk.Neighbor, ctx string) {
	t.Helper()
	if len(want) != len(got) {
		t.Errorf("%s: got %d results, want %d", ctx, len(got), len(want))
		return
	}
	for i := range want {
		if want[i] != got[i] {
			t.Errorf("%s: result %d = {id %d, dist %g}, want {id %d, dist %g}",
				ctx, i, got[i].ID, got[i].Dist, want[i].ID, want[i].Dist)
		}
	}
}
