package vecmath

// Per-width microbenchmarks behind the kernel dispatch thresholds
// (rankUnrollMin, l2F32UnrollMin): run with
//
//	go test -run '^$' -bench 'Kernels|NibbleL1|L2Sqr' ./internal/vecmath/
//
// and move a threshold when the crossover moves. The widths cover the
// parameter range the indexes actually use (permutation lengths 16..256,
// SIFT-style 128-dim vectors) plus the unrolled loops' tail cases.

import (
	"fmt"
	"math/rand"
	"testing"
)

var benchWidths = []int{4, 8, 16, 32, 64, 128, 129, 256}

var sinkInt64 int64
var sinkInt int
var sinkF64 float64

func benchRankPair(width int) (a, b []int32) {
	r := rand.New(rand.NewSource(int64(width)))
	return rankVectors(r, width)
}

func BenchmarkRankKernels(b *testing.B) {
	for _, w := range benchWidths {
		x, y := benchRankPair(w)
		b.Run(benchName("rho", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sinkInt64 = SpearmanRho(x, y)
			}
		})
		b.Run(benchName("rho-ref", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sinkInt64 = SpearmanRhoRef(x, y)
			}
		})
		b.Run(benchName("footrule", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sinkInt64 = Footrule(x, y)
			}
		})
		b.Run(benchName("footrule-ref", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sinkInt64 = FootruleRef(x, y)
			}
		})
	}
}

func BenchmarkNibbleL1(b *testing.B) {
	r := rand.New(rand.NewSource(9))
	for _, lanes := range []int{16, 32, 64, 128} {
		av := make([]uint8, lanes)
		bv := make([]uint8, lanes)
		for i := range av {
			av[i] = uint8(r.Intn(16))
			bv[i] = uint8(r.Intn(16))
		}
		x, y := packNibbles(av), packNibbles(bv)
		b.Run(benchName("swar", lanes), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sinkInt = NibbleL1(x, y)
			}
		})
		b.Run(benchName("ref", lanes), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sinkInt = NibbleL1Ref(x, y)
			}
		})
	}
}

func BenchmarkL2SqrKernels(b *testing.B) {
	r := rand.New(rand.NewSource(10))
	for _, w := range benchWidths {
		x := make([]float32, w)
		y := make([]float32, w)
		for i := range x {
			x[i] = float32(r.NormFloat64())
			y[i] = float32(r.NormFloat64())
		}
		b.Run(benchName("f64", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sinkF64 = L2Sqr(x, y)
			}
		})
		b.Run(benchName("f32", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sinkF64 = L2SqrF32(x, y)
			}
		})
	}
}

func benchName(kernel string, width int) string {
	return fmt.Sprintf("%s/w=%d", kernel, width)
}
