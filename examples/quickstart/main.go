// Quickstart: build a NAPP index over synthetic SIFT-like descriptors,
// answer a 10-NN query, and compare against the exact answer.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	permsearch "repro"
	"repro/internal/dataset"
)

func main() {
	// 1. Data: 20k synthetic 128-d SIFT-like descriptors (the library
	// is data-agnostic; any [][]float32 works here).
	const n = 20000
	data := dataset.SIFT(42, n)
	query := data[n-1]
	db := data[:n-1]

	// 2. Build the index. NAPP (§2.3 of the paper) posts each point to
	// the inverted lists of its 16 closest pivots out of 512.
	start := time.Now()
	idx, err := permsearch.NewNAPP[[]float32](permsearch.L2{}, db, permsearch.NAPPOptions{
		NumPivots:     512,
		NumPivotIndex: 16,
		MinShared:     2, // candidates must share >= 2 pivots with the query
		Seed:          1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built NAPP over %d points in %v\n", len(db), time.Since(start))

	// 3. Search.
	start = time.Now()
	approx := idx.Search(query, 10)
	approxTime := time.Since(start)

	// 4. Compare with the exact sequential scan.
	scan := permsearch.NewSeqScan[[]float32](permsearch.L2{}, db)
	start = time.Now()
	exact := scan.Search(query, 10)
	exactTime := time.Since(start)

	truth := map[uint32]bool{}
	for _, nb := range exact {
		truth[nb.ID] = true
	}
	hits := 0
	for _, nb := range approx {
		if truth[nb.ID] {
			hits++
		}
	}
	fmt.Printf("10-NN of point %d:\n", n-1)
	for i, nb := range approx {
		marker := " "
		if truth[nb.ID] {
			marker = "*"
		}
		fmt.Printf("  %2d. id=%-6d dist=%-8.2f %s\n", i+1, nb.ID, nb.Dist, marker)
	}
	fmt.Printf("recall %d/10, NAPP %v vs exact scan %v (%.1fx faster)\n",
		hits, approxTime, exactTime, float64(exactTime)/float64(approxTime))
}
