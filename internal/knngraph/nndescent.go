package knngraph

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"repro/internal/engine"
	"repro/internal/space"
)

// ndEntry is one neighbor-heap entry of NN-descent.
type ndEntry struct {
	id    uint32
	dist  float64
	fresh bool // "new" flag of the paper: not yet joined
}

// ndHeap is a bounded max-heap (by dist) of candidate neighbors, with
// duplicate suppression. Protected by its own mutex during parallel joins.
type ndHeap struct {
	mu      sync.Mutex
	entries []ndEntry // max-heap by dist
	cap     int
}

// tryInsert offers (id, dist) and reports whether the heap changed.
func (h *ndHeap) tryInsert(id uint32, dist float64) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.entries) == h.cap && dist >= h.entries[0].dist {
		return false
	}
	for _, e := range h.entries {
		if e.id == id {
			return false
		}
	}
	if len(h.entries) < h.cap {
		h.entries = append(h.entries, ndEntry{id: id, dist: dist, fresh: true})
		i := len(h.entries) - 1
		for i > 0 {
			p := (i - 1) / 2
			if h.entries[p].dist >= h.entries[i].dist {
				break
			}
			h.entries[p], h.entries[i] = h.entries[i], h.entries[p]
			i = p
		}
		return true
	}
	h.entries[0] = ndEntry{id: id, dist: dist, fresh: true}
	i, n := 0, len(h.entries)
	for {
		l, r := 2*i+1, 2*i+2
		big := i
		if l < n && h.entries[l].dist > h.entries[big].dist {
			big = l
		}
		if r < n && h.entries[r].dist > h.entries[big].dist {
			big = r
		}
		if big == i {
			break
		}
		h.entries[i], h.entries[big] = h.entries[big], h.entries[i]
		i = big
	}
	return true
}

// NewNNDescent builds a k-NN graph with the NN-descent algorithm of Dong et
// al. (§3.2): neighbor lists start random and improve iteratively by local
// joins among each point's (sampled) new and old neighbors and reverse
// neighbors, stopping when fewer than Delta*NN*n updates occur in a round.
func NewNNDescent[T any](sp space.Space[T], data []T, opts Options) (*Graph[T], error) {
	opts.defaults()
	if len(data) == 0 {
		return nil, fmt.Errorf("knngraph: empty data set")
	}
	n := len(data)
	g := &Graph[T]{
		sp:   sp,
		data: data,
		adj:  make([][]uint32, n),
		opts: opts,
		name: "nndescent-graph",
	}
	k := opts.NN
	if k >= n {
		k = n - 1
	}
	if k <= 0 {
		// Degenerate one-point data set: empty graph.
		return g, nil
	}

	heaps := make([]ndHeap, n)
	for i := range heaps {
		heaps[i].cap = k
	}
	// Random initialization.
	r := rand.New(rand.NewSource(opts.Seed))
	seeds := make([]int64, n)
	for i := range seeds {
		seeds[i] = r.Int63()
	}
	parallel(n, opts.Workers, func(v int) {
		rv := rand.New(rand.NewSource(seeds[v]))
		for heaps[v].entries == nil || len(heaps[v].entries) < k {
			u := uint32(rv.Intn(n))
			if int(u) == v {
				continue
			}
			g.buildDist.Add(1)
			heaps[v].tryInsert(u, sp.Distance(data[u], data[v]))
		}
	})

	sampleK := int(opts.Rho * float64(k))
	if sampleK < 1 {
		sampleK = 1
	}
	threshold := int64(opts.Delta * float64(n) * float64(k))
	for iter := 0; iter < opts.MaxIters; iter++ {
		// Collect new (sampled, then unflagged) and old neighbor sets.
		newFwd := make([][]uint32, n)
		oldFwd := make([][]uint32, n)
		for v := range heaps {
			h := &heaps[v]
			var freshIdx []int
			for i, e := range h.entries {
				if e.fresh {
					freshIdx = append(freshIdx, i)
				} else {
					oldFwd[v] = append(oldFwd[v], e.id)
				}
			}
			r.Shuffle(len(freshIdx), func(a, b int) { freshIdx[a], freshIdx[b] = freshIdx[b], freshIdx[a] })
			if len(freshIdx) > sampleK {
				freshIdx = freshIdx[:sampleK]
			}
			for _, i := range freshIdx {
				newFwd[v] = append(newFwd[v], h.entries[i].id)
				h.entries[i].fresh = false
			}
		}
		// Reverse neighbor sets, sampled to sampleK.
		newRev := reverseSample(r, newFwd, n, sampleK)
		oldRev := reverseSample(r, oldFwd, n, sampleK)

		// Local joins.
		var updates int64
		var updMu sync.Mutex
		parallel(n, opts.Workers, func(v int) {
			newsSet := append(append([]uint32(nil), newFwd[v]...), newRev[v]...)
			olds := append(append([]uint32(nil), oldFwd[v]...), oldRev[v]...)
			var local int64
			for i, u1 := range newsSet {
				// new x new (unordered pairs) and new x old.
				for _, u2 := range newsSet[i+1:] {
					if u1 == u2 {
						continue
					}
					local += g.join(&heaps[u1], &heaps[u2], u1, u2)
				}
				for _, u2 := range olds {
					if u1 == u2 {
						continue
					}
					local += g.join(&heaps[u1], &heaps[u2], u1, u2)
				}
			}
			if local != 0 {
				updMu.Lock()
				updates += local
				updMu.Unlock()
			}
		})
		if updates <= threshold {
			break
		}
	}

	for v := range heaps {
		es := heaps[v].entries
		sort.Slice(es, func(a, b int) bool {
			if es[a].dist != es[b].dist {
				return es[a].dist < es[b].dist
			}
			return es[a].id < es[b].id
		})
		ids := make([]uint32, len(es))
		for i, e := range es {
			ids[i] = e.id
		}
		g.adj[v] = ids
	}
	// NN-descent produces *directed* k-NN lists. Greedy traversal needs
	// the graph to be navigable in both directions (as in the SW search
	// used by the paper), so symmetrize: add each edge's reverse.
	symmetrize(g.adj)
	// A pure k-NN graph over well-separated clusters is disconnected;
	// unlike SW construction (whose early insertions create long-range
	// links), nothing here guarantees reachability. Bridge the
	// components and add small-world rewiring so greedy search can
	// escape a wrong entry cluster (see Options.RandomLinks).
	connectComponents(g.adj)
	if opts.RandomLinks > 0 {
		addRandomLinks(r, g.adj, opts.RandomLinks)
	}
	return g, nil
}

// addRandomLinks appends `count` random bidirectional long-range edges per
// node, skipping self-loops and existing duplicates.
func addRandomLinks(r *rand.Rand, adj [][]uint32, count int) {
	n := len(adj)
	if n < 3 {
		return
	}
	for v := range adj {
		present := make(map[uint32]bool, len(adj[v])+count)
		for _, u := range adj[v] {
			present[u] = true
		}
		for c := 0; c < count; c++ {
			u := uint32(r.Intn(n))
			if int(u) == v || present[u] {
				continue
			}
			present[u] = true
			adj[v] = append(adj[v], u)
			adj[u] = append(adj[u], uint32(v))
		}
	}
}

// connectComponents finds weakly connected components with a BFS and links
// consecutive components' representative nodes bidirectionally.
func connectComponents(adj [][]uint32) {
	n := len(adj)
	comp := make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	var reps []uint32
	var queue []uint32
	for start := 0; start < n; start++ {
		if comp[start] != -1 {
			continue
		}
		c := len(reps)
		reps = append(reps, uint32(start))
		comp[start] = c
		queue = append(queue[:0], uint32(start))
		for len(queue) > 0 {
			v := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for _, u := range adj[v] {
				if comp[u] == -1 {
					comp[u] = c
					queue = append(queue, u)
				}
			}
		}
	}
	for c := 1; c < len(reps); c++ {
		a, b := reps[c-1], reps[c]
		adj[a] = append(adj[a], b)
		adj[b] = append(adj[b], a)
	}
}

// symmetrize adds the reverse of every edge, deduplicating per node.
func symmetrize(adj [][]uint32) {
	rev := make([][]uint32, len(adj))
	for v, list := range adj {
		for _, u := range list {
			rev[u] = append(rev[u], uint32(v))
		}
	}
	for v := range adj {
		present := make(map[uint32]bool, len(adj[v]))
		for _, u := range adj[v] {
			present[u] = true
		}
		for _, u := range rev[v] {
			if !present[u] && int(u) != v {
				present[u] = true
				adj[v] = append(adj[v], u)
			}
		}
	}
}

// join computes d(u1, u2) once and offers it to both heaps, returning the
// number of successful updates.
func (g *Graph[T]) join(h1, h2 *ndHeap, u1, u2 uint32) int64 {
	g.buildDist.Add(1)
	d := g.sp.Distance(g.data[u1], g.data[u2])
	var c int64
	if h1.tryInsert(u2, d) {
		c++
	}
	if h2.tryInsert(u1, d) {
		c++
	}
	return c
}

// reverseSample builds reverse adjacency of fwd, sampling each list down to
// maxLen with reservoir sampling.
func reverseSample(r *rand.Rand, fwd [][]uint32, n, maxLen int) [][]uint32 {
	rev := make([][]uint32, n)
	counts := make([]int, n)
	for v, list := range fwd {
		for _, u := range list {
			counts[u]++
			if len(rev[u]) < maxLen {
				rev[u] = append(rev[u], uint32(v))
			} else if j := r.Intn(counts[u]); j < maxLen {
				rev[u][j] = uint32(v)
			}
		}
	}
	return rev
}

// parallel runs f(i) for i in [0, n) on up to workers goroutines (0 means
// GOMAXPROCS; see engine.Pool.For).
func parallel(n, workers int, f func(i int)) {
	engine.NewPool(workers).For(n, f)
}
