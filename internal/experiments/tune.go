package experiments

import "fmt"

// TuneResult is the outcome of a tuning run.
type TuneResult struct {
	// Setting is the parameter in flag form, e.g. "alpha=4.25" or "t=3".
	Setting string
	// Recall achieved at that setting on the tuning subset.
	Recall float64
}

// tuner is implemented by combos for each supported tuning target.
type tuner interface {
	tuneVPTree(cfg Config, target float64) (TuneResult, error)
	tuneNAPP(cfg Config, target float64) (TuneResult, error)
}

// Tune runs the named tuner ("vptree" or "napp") for the data set.
func Tune(dataset, what string, cfg Config, target float64) (TuneResult, error) {
	r, ok := Get(dataset)
	if !ok {
		return TuneResult{}, fmt.Errorf("experiments: unknown dataset %q", dataset)
	}
	tn, ok := r.(tuner)
	if !ok {
		return TuneResult{}, fmt.Errorf("experiments: dataset %q does not support tuning", dataset)
	}
	if target <= 0 || target > 1 {
		return TuneResult{}, fmt.Errorf("experiments: recall target %v out of (0, 1]", target)
	}
	switch what {
	case "vptree":
		return tn.tuneVPTree(cfg, target)
	case "napp":
		return tn.tuneNAPP(cfg, target)
	default:
		return TuneResult{}, fmt.Errorf("experiments: unknown tuner %q (vptree, napp)", what)
	}
}
