package experiments

import (
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/knngraph"
	"repro/internal/space"
	"repro/internal/vptree"
)

func TestParseParams(t *testing.T) {
	p, err := ParseParams("att=2,ef=20")
	if err != nil {
		t.Fatal(err)
	}
	if p["att"] != 2 || p["ef"] != 20 || len(p) != 2 {
		t.Fatalf("parsed %v", p)
	}
	if p, err = ParseParams("  "); err != nil || len(p) != 0 {
		t.Fatalf("blank input: %v, %v", p, err)
	}
	for _, bad := range []string{"gamma", "=1", "gamma=x", "a=1,a=2", "a=1,,b=2"} {
		if _, err := ParseParams(bad); err == nil {
			t.Errorf("ParseParams(%q) succeeded", bad)
		}
	}
	if got := (Params{"ef": 20, "att": 2}).String(); got != "att=2,ef=20" {
		t.Fatalf("String() = %q", got)
	}
}

func TestApplyParamsSetAndRestore(t *testing.T) {
	db := dataset.SIFT(3, 120)
	na, err := core.NewNAPP[[]float32](space.L2{}, db, core.NAPPOptions{
		NumPivots: 16, NumPivotIndex: 8, MinShared: 1, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	prev, err := ApplyParams[[]float32](na, Params{"t": 3})
	if err != nil {
		t.Fatal(err)
	}
	if na.Options().MinShared != 3 {
		t.Fatalf("MinShared = %d after t=3", na.Options().MinShared)
	}
	if prev["t"] != 1 {
		t.Fatalf("prev = %v, want t=1", prev)
	}
	if _, err := ApplyParams[[]float32](na, prev); err != nil {
		t.Fatal(err)
	}
	if na.Options().MinShared != 1 {
		t.Fatalf("MinShared = %d after restore", na.Options().MinShared)
	}

	g, err := knngraph.NewSW[[]float32](space.L2{}, db, knngraph.Options{NN: 4, Workers: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ApplyParams[[]float32](g, Params{"att": 5, "ef": 33}); err != nil {
		t.Fatal(err)
	}
	if att, ef := g.SearchParams(); att != 5 || ef != 33 {
		t.Fatalf("SearchParams = (%d, %d)", att, ef)
	}
}

// TestApplyParamsRejectsConflictsAndBadValues: alias pairs writing one
// knob, out-of-range values (which the underlying setters would silently
// ignore), and non-integral integer knobs all fail up front, leaving the
// index untouched — a serving request must never get a 200 for a setting
// that was not actually applied.
func TestApplyParamsRejectsConflictsAndBadValues(t *testing.T) {
	db := dataset.SIFT(3, 120)
	g, err := knngraph.NewSW[[]float32](space.L2{}, db, knngraph.Options{NN: 4, InitAttempts: 1, Workers: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	attBefore, efBefore := g.SearchParams()
	for name, p := range map[string]Params{
		"alias pair":     {"att": 2, "attempts": 8},
		"negative ef":    {"ef": -4},
		"zero att":       {"att": 0},
		"fractional ef":  {"ef": 2.5},
		"mixed good/bad": {"att": 2, "ef": -1},
	} {
		if _, err := ApplyParams[[]float32](g, p); err == nil {
			t.Errorf("%s: ApplyParams(%v) succeeded", name, p)
		}
		if att, ef := g.SearchParams(); att != attBefore || ef != efBefore {
			t.Fatalf("%s: knobs modified to (%d, %d) despite failed apply", name, att, ef)
		}
	}

	bf, err := core.NewBruteForceFilter[[]float32](space.L2{}, db, core.BruteForceOptions{NumPivots: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ApplyParams[[]float32](bf, Params{"gamma": 0}); err == nil {
		t.Error("gamma=0 accepted (the setter would silently ignore it)")
	}
}

// TestApplyParamsAlphaRestoresBothSides: the composite vptree "alpha" knob
// writes both pruning stretch factors; its recorded prev must restore an
// asymmetric tree exactly, not collapse AlphaRight onto the old AlphaLeft.
func TestApplyParamsAlphaRestoresBothSides(t *testing.T) {
	db := dataset.SIFT(3, 120)
	vt, err := vptree.New[[]float32](space.L2{}, db, vptree.Options{AlphaLeft: 1, AlphaRight: 1.5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	prev, err := ApplyParams[[]float32](vt, Params{"alpha": 2})
	if err != nil {
		t.Fatal(err)
	}
	if l, r := vt.Alpha(); l != 2 || r != 2 {
		t.Fatalf("alpha=2 set (%g, %g)", l, r)
	}
	if _, err := ApplyParams[[]float32](vt, prev); err != nil {
		t.Fatalf("restoring %v: %v", prev, err)
	}
	if l, r := vt.Alpha(); l != 1 || r != 1.5 {
		t.Fatalf("restore left (%g, %g), want (1, 1.5)", l, r)
	}
	// Both alpha and one of its sides in a single request is ambiguous.
	if _, err := ApplyParams[[]float32](vt, Params{"alpha": 2, "alpharight": 3}); err == nil {
		t.Error("alpha together with alpharight accepted")
	}
	// The sides alone are two independent knobs.
	if _, err := ApplyParams[[]float32](vt, Params{"alphaleft": 3, "alpharight": 4}); err != nil {
		t.Fatal(err)
	}
	if l, r := vt.Alpha(); l != 3 || r != 4 {
		t.Fatalf("per-side set (%g, %g), want (3, 4)", l, r)
	}
}

func TestApplyParamsUnknownKeyLeavesIndexUntouched(t *testing.T) {
	db := dataset.SIFT(3, 60)
	bf, err := core.NewBruteForceFilter[[]float32](space.L2{}, db, core.BruteForceOptions{NumPivots: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	before := bf.Gamma()
	if _, err := ApplyParams[[]float32](bf, Params{"gamma": 0.5, "ef": 7}); err == nil {
		t.Fatal("unknown key accepted")
	}
	if bf.Gamma() != before {
		t.Fatalf("gamma modified (%g -> %g) despite failed apply", before, bf.Gamma())
	}
	// Kinds without knobs reject any param.
	pp, err := core.NewPPIndex[[]float32](space.L2{}, db, core.PPIndexOptions{NumPivots: 8, PrefixLen: 3, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ApplyParams[[]float32](pp, Params{"gamma": 0.5}); err == nil {
		t.Fatal("pp-index accepted a gamma param")
	}
}
