package lsm

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"path/filepath"
	"slices"
	"strings"

	"repro/internal/codec"
	"repro/internal/index"
	"repro/internal/persist"
	"repro/internal/vfs"
)

// Sealed tiers. A seal turns the memtable into two files plus a manifest
// update, in a crash-ordered sequence:
//
//	<seq>.seg     codec blob (kind "lsm-segment"): the live objects' global
//	              ids and raw wire payloads, plus the tombstones recorded
//	              during this WAL segment's lifetime. This is the durable
//	              source of truth for added objects — index files never
//	              store objects, segments do.
//	<seq>.psix    an ordinary index file built over the tier's live objects
//	              (absent when the tier holds tombstones only). Purely
//	              derived: a missing or corrupt one is rebuilt from the
//	              .seg on open.
//	tiers.json    the manifest naming the live tier sequence numbers, the
//	              current WAL segment and the next id to assign; written
//	              atomically (temp + fsync + rename). A file not named by
//	              the manifest does not exist as far as recovery is
//	              concerned — every crash point between the steps leaves
//	              either the old or the new manifest, never a mix.
//
// Tombstones in a newer tier only ever target the base corpus or older
// tiers: global ids are assigned monotonically and never reused, so by the
// time an id is sealed into a tier, every later delete of it is recorded in
// a younger WAL segment (hence a younger tier). Masking "newest wins" is
// therefore just set membership in the union of tombstones.

// tier is one loaded immutable tier.
type tier[T any] struct {
	seq   uint64
	ids   []uint32 // ascending global ids of the live objects
	blobs [][]byte // raw wire payloads, parallel to ids
	objs  []T      // decoded objects, parallel to ids
	tombs []uint32 // ascending global ids deleted during this segment
	idx   index.Index[T]
}

// segPath / idxPath / walPath name the files of a sequence number.
func segPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%06d.seg", seq))
}
func idxPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%06d%s", seq, persist.Ext))
}
func walPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%06d.log", seq))
}

// writeSegment writes the .seg blob for a tier atomically.
func writeSegment[T any](fsys vfs.FS, dir, spaceName string, tr *tier[T]) error {
	path := segPath(dir, tr.seq)
	f, err := fsys.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	cleanup := func(err error) error {
		f.Close()
		fsys.Remove(f.Name())
		return err
	}
	cw := codec.NewWriter(f, codec.KindLSMSegment, spaceName, len(tr.ids))
	cw.U64(tr.seq)
	cw.U32s(tr.ids)
	cw.U32s(tr.tombs)
	for _, b := range tr.blobs {
		cw.Bytes(b)
	}
	if err := cw.Close(); err != nil {
		return cleanup(err)
	}
	if err := f.Sync(); err != nil {
		return cleanup(err)
	}
	if err := f.Close(); err != nil {
		return cleanup(err)
	}
	if err := fsys.Chmod(f.Name(), 0o644); err != nil {
		return cleanup(err)
	}
	if err := fsys.Rename(f.Name(), path); err != nil {
		return cleanup(err)
	}
	return fsys.SyncDir(dir)
}

// errSegCorrupt tags a segment whose bytes were read back fine but describe
// something other than the tier the manifest promised — a decode failure,
// an unsorted id section, a sequence-number mismatch. Together with
// codec.ErrCorrupt it is the "this file is damaged, not this disk is
// failing" signal Open's quarantine decision keys on: a corrupt tier is
// renamed aside and the rest of the tree keeps serving, while a plain read
// error (EIO) aborts recovery cleanly instead of discarding a file that may
// be perfectly intact.
var errSegCorrupt = errors.New("lsm: segment corrupt")

// isCorrupt reports whether a tier-load failure means damaged bytes (safe
// to quarantine) rather than a failing read path (must abort).
func isCorrupt(err error) bool {
	return errors.Is(err, codec.ErrCorrupt) || errors.Is(err, errSegCorrupt)
}

// readSegment loads and validates a .seg blob. Objects are decoded with the
// tree's Decode; the index file is not touched here.
func readSegment[T any](fsys vfs.FS, dir, spaceName string, seq uint64, decode func([]byte) (T, error)) (*tier[T], error) {
	path := segPath(dir, seq)
	f, err := fsys.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	cr, err := codec.NewReader(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	hdr := cr.Header()
	if hdr.Kind != codec.KindLSMSegment {
		return nil, fmt.Errorf("%s: file holds a %q blob, want %q: %w", path, hdr.Kind, codec.KindLSMSegment, errSegCorrupt)
	}
	if hdr.Space != spaceName {
		return nil, fmt.Errorf("%s: segment written under space %q, tree uses %q: %w", path, hdr.Space, spaceName, errSegCorrupt)
	}
	n := int(hdr.N)
	tr := &tier[T]{seq: cr.U64()}
	tr.ids = cr.U32s()
	tr.tombs = cr.U32s()
	tr.blobs = make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		tr.blobs = append(tr.blobs, cr.Bytes())
	}
	if err := cr.Finish(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if tr.seq != seq {
		return nil, fmt.Errorf("%s: segment stamps seq %d, manifest says %d: %w", path, tr.seq, seq, errSegCorrupt)
	}
	if len(tr.ids) != n {
		return nil, fmt.Errorf("%s: %d ids for %d objects: %w", path, len(tr.ids), n, errSegCorrupt)
	}
	if !slices.IsSorted(tr.ids) || !slices.IsSorted(tr.tombs) {
		return nil, fmt.Errorf("%s: unsorted id or tombstone section: %w", path, errSegCorrupt)
	}
	tr.objs = make([]T, n)
	for i, b := range tr.blobs {
		obj, err := decode(b)
		if err != nil {
			return nil, fmt.Errorf("%s: decoding object id %d: %v: %w", path, tr.ids[i], err, errSegCorrupt)
		}
		tr.objs[i] = obj
	}
	return tr, nil
}

// quarantineExt marks a file set aside by recovery: the bytes are kept for
// forensics but the name no longer matches any pattern the tree manages.
const quarantineExt = ".quarantined"

// quarantineTier renames a corrupt tier's files aside (<name>.quarantined)
// so recovery converges without them while an operator can still inspect
// the damage. Best effort: the manifest has already been rewritten without
// the tier, so even if a rename fails the file is mere debris.
func quarantineTier(fsys vfs.FS, dir string, seq uint64) {
	for _, p := range []string{segPath(dir, seq), idxPath(dir, seq)} {
		_ = fsys.Rename(p, p+quarantineExt)
	}
	_ = fsys.SyncDir(dir)
}

// manifest is the tiers.json sidecar: the only authority on which files
// constitute the tree.
type manifest struct {
	Version     int            `json:"version"`
	Space       string         `json:"space"`
	BaseN       int            `json:"base_n"`
	NextID      uint32         `json:"next_id"`
	WalSeq      uint64         `json:"wal_seq"`
	NextTierSeq uint64         `json:"next_tier_seq"`
	Tiers       []manifestTier `json:"tiers"`
}

// manifestTier summarizes one sealed tier.
type manifestTier struct {
	Seq        uint64 `json:"seq"`
	N          int    `json:"n"`
	Tombstones int    `json:"tombstones"`
	Kind       string `json:"kind,omitempty"` // index kind; empty for tombstone-only tiers
}

const manifestVersion = 1

// manifestName is the manifest file name inside a tree directory.
const manifestName = "tiers.json"

// writeManifest atomically replaces the manifest: temp file, fsync, rename,
// directory fsync. After it returns, recovery will see exactly this state.
func writeManifest(fsys vfs.FS, dir string, m *manifest) error {
	blob, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	path := filepath.Join(dir, manifestName)
	f, err := fsys.CreateTemp(dir, manifestName+".tmp*")
	if err != nil {
		return err
	}
	cleanup := func(err error) error {
		f.Close()
		fsys.Remove(f.Name())
		return err
	}
	if _, err := f.Write(append(blob, '\n')); err != nil {
		return cleanup(err)
	}
	if err := f.Sync(); err != nil {
		return cleanup(err)
	}
	if err := f.Close(); err != nil {
		return cleanup(err)
	}
	if err := fsys.Chmod(f.Name(), 0o644); err != nil {
		return cleanup(err)
	}
	if err := fsys.Rename(f.Name(), path); err != nil {
		return cleanup(err)
	}
	return fsys.SyncDir(dir)
}

// readManifest loads tiers.json; ok is false when the file does not exist.
func readManifest(fsys vfs.FS, dir string) (m *manifest, ok bool, err error) {
	blob, err := fsys.ReadFile(filepath.Join(dir, manifestName))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, err
	}
	m = new(manifest)
	if err := json.Unmarshal(blob, m); err != nil {
		return nil, false, fmt.Errorf("lsm: %s/%s: %w", dir, manifestName, err)
	}
	if m.Version != manifestVersion {
		return nil, false, fmt.Errorf("lsm: %s/%s: unsupported manifest version %d", dir, manifestName, m.Version)
	}
	return m, true, nil
}

// removeStale deletes every file in dir that the manifest does not account
// for: segments and index files of unlisted sequence numbers, WAL segments
// other than the current one, and orphaned temp files. Such files are debris
// of a crash between "write files" and "commit manifest" (or after a commit
// that replaced them) and must not survive, or a later seal reusing the
// sequence number would find them in the way. Quarantined files are the one
// exception: they are kept, deliberately, for the operator.
func removeStale(fsys vfs.FS, dir string, m *manifest) {
	listed := make(map[uint64]bool, len(m.Tiers))
	for _, t := range m.Tiers {
		listed[t.Seq] = true
	}
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || name == manifestName || strings.HasSuffix(name, quarantineExt) {
			continue
		}
		var seq uint64
		switch {
		case matchSeq(name, ".seg", &seq), matchSeq(name, persist.Ext, &seq):
			if !listed[seq] {
				fsys.Remove(filepath.Join(dir, name))
			}
		case matchWal(name, &seq):
			if seq != m.WalSeq {
				fsys.Remove(filepath.Join(dir, name))
			}
		default:
			// Leftover temp files from interrupted atomic writes.
			fsys.Remove(filepath.Join(dir, name))
		}
	}
}

// matchSeq parses "<seq><ext>" file names.
func matchSeq(name, ext string, seq *uint64) bool {
	if len(name) <= len(ext) || name[len(name)-len(ext):] != ext {
		return false
	}
	_, err := fmt.Sscanf(name[:len(name)-len(ext)], "%d", seq)
	return err == nil && fmt.Sprintf("%06d%s", *seq, ext) == name
}

// matchWal parses "wal-<seq>.log" file names.
func matchWal(name string, seq *uint64) bool {
	var s uint64
	if _, err := fmt.Sscanf(name, "wal-%d.log", &s); err != nil {
		return false
	}
	if fmt.Sprintf("wal-%06d.log", s) != name {
		return false
	}
	*seq = s
	return true
}
