// Imagesearch: head-to-head comparison of every method family on dense
// visual descriptors under L2 — a miniature of the paper's Figure 4a.
//
// Builds a VP-tree, multi-probe LSH, a Small-World graph, NAPP and the
// brute-force permutation filter over the same SIFT-like data, then reports
// recall and speed-up over a sequential scan for each.
//
//	go run ./examples/imagesearch
package main

import (
	"fmt"
	"log"
	"time"

	permsearch "repro"
	"repro/internal/dataset"
)

const (
	n       = 15000
	queries = 100
	k       = 10
)

func main() {
	data := dataset.SIFT(7, n+queries)
	db, qs := data[:n], data[n:]
	sp := permsearch.L2{}

	// Exact answers and the brute-force baseline time.
	scan := permsearch.NewSeqScan[[]float32](sp, db)
	truth := make([]map[uint32]bool, len(qs))
	start := time.Now()
	for i, q := range qs {
		truth[i] = map[uint32]bool{}
		for _, nb := range scan.Search(q, k) {
			truth[i][nb.ID] = true
		}
	}
	brutePerQuery := time.Since(start) / time.Duration(len(qs))
	fmt.Printf("sequential scan: %v per query (baseline)\n\n", brutePerQuery)
	fmt.Printf("%-22s %8s %10s %12s %10s\n", "method", "recall", "per-query", "speed-up", "build")

	report := func(name string, idx permsearch.Index[[]float32], build time.Duration) {
		start := time.Now()
		var hits, total int
		for i, q := range qs {
			for _, nb := range idx.Search(q, k) {
				if truth[i][nb.ID] {
					hits++
				}
			}
			total += k
		}
		perQuery := time.Since(start) / time.Duration(len(qs))
		fmt.Printf("%-22s %7.1f%% %10v %11.1fx %10v\n",
			name, 100*float64(hits)/float64(total), perQuery,
			float64(brutePerQuery)/float64(perQuery), build.Round(time.Millisecond))
	}

	start = time.Now()
	vt, err := permsearch.NewVPTree[[]float32](sp, db, permsearch.VPTreeOptions{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	vt.SetAlpha(4, 4) // stretched pruning: approximate but fast
	report("vptree (alpha=4)", vt, time.Since(start))

	start = time.Now()
	mplsh, err := permsearch.NewMPLSH(db, permsearch.MPLSHOptions{Tables: 16, Hashes: 12, Probes: 10, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	report("mplsh (T=10)", mplsh, time.Since(start))

	start = time.Now()
	sw, err := permsearch.NewSWGraph[[]float32](sp, db, permsearch.GraphOptions{NN: 10, InitAttempts: 2, EfSearch: 40, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	report("sw-graph (ef=40)", sw, time.Since(start))

	start = time.Now()
	napp, err := permsearch.NewNAPP[[]float32](sp, db, permsearch.NAPPOptions{
		NumPivots: 512, NumPivotIndex: 16, MinShared: 2, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	report("napp (t=2)", napp, time.Since(start))

	start = time.Now()
	bf, err := permsearch.NewBruteForceFilter[[]float32](sp, db, permsearch.BruteForceOptions{
		NumPivots: 128, Gamma: 0.02, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	report("brute-force-filt", bf, time.Since(start))

	fmt.Println("\nExpected shape (paper, Figure 4a): the proximity graph wins,")
	fmt.Println("NAPP is the strongest permutation method, and the VP-tree and")
	fmt.Println("MPLSH sit in between; the plain permutation filter trails on a")
	fmt.Println("cheap distance like L2.")
}
