package knngraph

import (
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/engine"
	"repro/internal/space"
	"repro/internal/topk"
)

// NewSW builds a proximity graph with the search-based insertion algorithm
// of Malkov et al. (Small World graphs, §3.2 of the paper): points are
// inserted one by one; each insertion searches the partially built graph for
// the new point's NN nearest neighbors (with InitAttempts restarts) and
// links to them bidirectionally. Construction runs on Workers goroutines
// with a reader/writer lock over the adjacency lists, matching the paper's
// four-thread indexing setup.
func NewSW[T any](sp space.Space[T], data []T, opts Options) (*Graph[T], error) {
	opts.defaults()
	if len(data) == 0 {
		return nil, fmt.Errorf("knngraph: empty data set")
	}
	g := &Graph[T]{
		sp:   sp,
		data: data,
		adj:  make([][]uint32, len(data)),
		opts: opts,
		name: "sw-graph",
	}

	// Bootstrap: fully connect the first NN+1 points.
	boot := opts.NN + 1
	if boot > len(data) {
		boot = len(data)
	}
	for i := 0; i < boot; i++ {
		for j := 0; j < boot; j++ {
			if i != j {
				g.adj[i] = append(g.adj[i], uint32(j))
			}
		}
	}
	if boot >= len(data) {
		return g, nil
	}

	// Insertions are handed out one at a time so nodes enter the graph
	// roughly in id order: the insertion search may only visit nodes
	// [0, id), which are fully linked or being linked. Each worker keeps
	// its own RNG for entry-point draws.
	var mu sync.RWMutex
	pool := engine.NewPool(opts.Workers)
	rands := make([]*rand.Rand, pool.Workers())
	for w := range rands {
		rands[w] = rand.New(rand.NewSource(opts.Seed + int64(w)*7919))
	}
	pool.ForWithID(len(data)-boot, func(worker, j int) {
		g.insertSW(uint32(boot+j), rands[worker], &mu)
	})
	return g, nil
}

// insertSW links node id into the graph built so far.
func (g *Graph[T]) insertSW(id uint32, r *rand.Rand, mu *sync.RWMutex) {
	// Search the current graph for the NN closest nodes. The entry-point
	// randomizer must only pick already-inserted nodes: restrict by
	// retrying draws below id (ids are inserted roughly in order; under
	// parallel construction a slightly stale view is acceptable, as in
	// Malkov et al.'s concurrent insertions).
	ef := g.opts.NN * 2
	found := g.searchPartial(g.data[id], int(id), ef, g.opts.InitAttempts, r, mu)
	nn := g.opts.NN
	if nn > len(found) {
		nn = len(found)
	}
	mu.Lock()
	for _, nb := range found[:nn] {
		g.adj[id] = append(g.adj[id], nb.ID)
		g.adj[nb.ID] = append(g.adj[nb.ID], id)
	}
	mu.Unlock()
}

// searchPartial is the insertion-time greedy search, restricted to nodes
// with id < limit (only those are guaranteed to be linked already).
func (g *Graph[T]) searchPartial(query T, limit, ef, attempts int, r *rand.Rand, mu *sync.RWMutex) []topk.Neighbor {
	if limit <= 0 {
		return nil
	}
	visited := make([]bool, len(g.adj))
	results := topk.NewQueue(ef)
	var frontier topk.MinQueue

	for a := 0; a < attempts; a++ {
		entry := uint32(r.Intn(limit))
		if !visited[entry] {
			visited[entry] = true
			g.buildDist.Add(1)
			d := g.sp.Distance(g.data[entry], query)
			results.Push(entry, d)
			frontier.Push(entry, d)
		}
		for frontier.Len() > 0 {
			cur := frontier.Pop()
			if bound, ok := results.Bound(); ok && cur.Dist > bound {
				break
			}
			mu.RLock()
			nbs := append([]uint32(nil), g.adj[cur.ID]...)
			mu.RUnlock()
			for _, nb := range nbs {
				if int(nb) >= limit || visited[nb] {
					continue
				}
				visited[nb] = true
				g.buildDist.Add(1)
				d := g.sp.Distance(g.data[nb], query)
				if results.WouldAccept(d) {
					results.Push(nb, d)
					frontier.Push(nb, d)
				}
			}
		}
		frontier.Reset()
	}
	return results.Results()
}
