package codec

import (
	"bufio"
	"encoding/binary"
	"hash/crc32"
	"io"
	"math"
)

// castagnoli is the CRC-32C polynomial table shared by writer and reader.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Writer serializes one index blob: header, kind-specific payload sections,
// CRC-32C trailer. Errors are sticky — the first write failure is remembered
// and returned by Close, so payload code can write unconditionally.
type Writer struct {
	w   *bufio.Writer
	crc uint32
	err error
	buf [8]byte
}

// NewWriter writes the header for an index of the given kind, built under
// the named space over n data points, and returns a Writer for the payload.
// Call Close after the payload to flush and append the checksum.
func NewWriter(w io.Writer, kind, spaceName string, n int) *Writer {
	cw := &Writer{w: bufio.NewWriter(w)}
	cw.raw([]byte(Magic))
	cw.U16(Version)
	cw.String(kind)
	cw.String(spaceName)
	cw.U64(uint64(n))
	return cw
}

// raw writes p, folding it into the running checksum.
func (cw *Writer) raw(p []byte) {
	if cw.err != nil {
		return
	}
	cw.crc = crc32.Update(cw.crc, castagnoli, p)
	_, cw.err = cw.w.Write(p)
}

// Close appends the CRC-32C trailer and flushes. It returns the first error
// encountered by any write.
func (cw *Writer) Close() error {
	binary.LittleEndian.PutUint32(cw.buf[:4], cw.crc)
	if cw.err == nil {
		_, cw.err = cw.w.Write(cw.buf[:4])
	}
	if cw.err == nil {
		cw.err = cw.w.Flush()
	}
	return cw.err
}

// U8 writes one byte.
func (cw *Writer) U8(v uint8) { cw.raw([]byte{v}) }

// Bool writes a boolean as one byte.
func (cw *Writer) Bool(v bool) {
	if v {
		cw.U8(1)
	} else {
		cw.U8(0)
	}
}

// U16 writes a little-endian uint16.
func (cw *Writer) U16(v uint16) {
	binary.LittleEndian.PutUint16(cw.buf[:2], v)
	cw.raw(cw.buf[:2])
}

// U32 writes a little-endian uint32.
func (cw *Writer) U32(v uint32) {
	binary.LittleEndian.PutUint32(cw.buf[:4], v)
	cw.raw(cw.buf[:4])
}

// U64 writes a little-endian uint64.
func (cw *Writer) U64(v uint64) {
	binary.LittleEndian.PutUint64(cw.buf[:8], v)
	cw.raw(cw.buf[:8])
}

// I32 writes a little-endian int32.
func (cw *Writer) I32(v int32) { cw.U32(uint32(v)) }

// I64 writes a little-endian int64.
func (cw *Writer) I64(v int64) { cw.U64(uint64(v)) }

// Int writes an int as int64 (options fields, counts).
func (cw *Writer) Int(v int) { cw.I64(int64(v)) }

// F64 writes a little-endian IEEE-754 double.
func (cw *Writer) F64(v float64) { cw.U64(math.Float64bits(v)) }

// F32 writes a little-endian IEEE-754 single.
func (cw *Writer) F32(v float32) { cw.U32(math.Float32bits(v)) }

// String writes a uint32 length prefix followed by the UTF-8 bytes.
func (cw *Writer) String(s string) {
	cw.U32(uint32(len(s)))
	cw.raw([]byte(s))
}

// Bytes writes a length-prefixed raw byte section. It exists for payloads
// that carry opaque client data (the object payloads of an LSM segment, which
// the codec cannot interpret but must round-trip byte-exactly).
func (cw *Writer) Bytes(p []byte) {
	cw.U64(uint64(len(p)))
	cw.raw(p)
}

// U32s writes a length-prefixed []uint32 section.
func (cw *Writer) U32s(vs []uint32) {
	cw.U64(uint64(len(vs)))
	for _, v := range vs {
		cw.U32(v)
	}
}

// I32s writes a length-prefixed []int32 section.
func (cw *Writer) I32s(vs []int32) {
	cw.U64(uint64(len(vs)))
	for _, v := range vs {
		cw.I32(v)
	}
}

// U64s writes a length-prefixed []uint64 section.
func (cw *Writer) U64s(vs []uint64) {
	cw.U64(uint64(len(vs)))
	for _, v := range vs {
		cw.U64(v)
	}
}

// F32s writes a length-prefixed []float32 section.
func (cw *Writer) F32s(vs []float32) {
	cw.U64(uint64(len(vs)))
	for _, v := range vs {
		cw.F32(v)
	}
}

// F64s writes a length-prefixed []float64 section.
func (cw *Writer) F64s(vs []float64) {
	cw.U64(uint64(len(vs)))
	for _, v := range vs {
		cw.F64(v)
	}
}

// Err returns the sticky error, for payload writers that want to bail early.
func (cw *Writer) Err() error { return cw.err }
