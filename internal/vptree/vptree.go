// Package vptree implements the vantage-point tree (Yianilos 1993, Uhlmann
// 1991), one of the two strongest baselines in the paper's evaluation. The
// tree recursively partitions the space by the median distance to a randomly
// chosen pivot; k-NN search is simulated as a range search with a shrinking
// radius (§3.2).
//
// For metric spaces the triangle inequality gives exact pruning. For generic
// (non-metric) spaces the paper replaces it with a *polynomial pruner*: with
// query radius r, pivot distance dq and partition radius R,
//
//	query in left  partition: prune right when (R - dq)^beta * alphaLeft  > r
//	query in right partition: prune left  when (dq - R)^beta * alphaRight > r
//
// alpha > 1 prunes more aggressively (faster, lower recall); Tune finds
// alpha for a target recall by a shrinking grid search, as in the paper.
package vptree

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/index"
	"repro/internal/scratch"
	"repro/internal/space"
	"repro/internal/topk"
)

// Options configures tree construction and pruning.
type Options struct {
	// BucketSize is the leaf capacity b; partitioning stops below it.
	// Default 32.
	BucketSize int
	// AlphaLeft and AlphaRight stretch the pruning rule (see package
	// doc). Defaults 1, which is exact for metric spaces.
	AlphaLeft, AlphaRight float64
	// Beta is the polynomial exponent of the pruner. The paper uses 2
	// for the KL-divergence and 1 elsewhere. Default 1.
	Beta float64
	// Seed drives random pivot selection. Trees built with equal seeds
	// over equal data are identical.
	Seed int64
}

func (o *Options) defaults() {
	if o.BucketSize <= 0 {
		o.BucketSize = 32
	}
	if o.AlphaLeft <= 0 {
		o.AlphaLeft = 1
	}
	if o.AlphaRight <= 0 {
		o.AlphaRight = 1
	}
	if o.Beta <= 0 {
		o.Beta = 1
	}
}

// Tree is a vantage-point tree over a fixed data set.
type Tree[T any] struct {
	sp    space.Space[T]
	data  []T
	opts  Options
	root  *node
	nodes int
	// symmetric caches sp.Properties().Symmetric. For non-symmetric
	// distances (KL) the partition balls are built from d(x, pivot), so
	// pruning decisions must use d(query, pivot) — the same direction —
	// even though answers are scored with left queries d(x, query).
	symmetric bool
	// buildDist counts distance computations performed at build time.
	buildDist int64
	// pool recycles per-query traversal state (frontier stack + top-k
	// queue) across Search calls, keeping the warm query path at the one
	// allocation of the returned result slice.
	pool scratch.Pool[searchScratch]
}

type node struct {
	pivot  uint32
	radius float64
	left   *node // d(x, pivot) <= radius
	right  *node // d(x, pivot) >  radius
	bucket []uint32
}

// New builds a VP-tree over data. The data slice is retained, not copied.
func New[T any](sp space.Space[T], data []T, opts Options) (*Tree[T], error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("vptree: empty data set")
	}
	opts.defaults()
	t := &Tree[T]{sp: sp, data: data, opts: opts, symmetric: sp.Properties().Symmetric}
	r := rand.New(rand.NewSource(opts.Seed))
	ids := make([]uint32, len(data))
	for i := range ids {
		ids[i] = uint32(i)
	}
	t.root = t.build(r, ids)
	return t, nil
}

// build recursively constructs the subtree over ids, consuming the slice.
func (t *Tree[T]) build(r *rand.Rand, ids []uint32) *node {
	t.nodes++
	if len(ids) <= t.opts.BucketSize {
		// Leaf: keep points in one contiguous chunk (the paper notes
		// this halves retrieval time for cheap distances).
		b := make([]uint32, len(ids))
		copy(b, ids)
		return &node{bucket: b}
	}
	// Random pivot; move it out of the candidate set.
	pi := r.Intn(len(ids))
	ids[pi], ids[len(ids)-1] = ids[len(ids)-1], ids[pi]
	pivot := ids[len(ids)-1]
	rest := ids[:len(ids)-1]

	dists := make([]float64, len(rest))
	pv := t.data[pivot]
	for i, id := range rest {
		dists[i] = t.sp.Distance(t.data[id], pv)
		t.buildDist++
	}
	radius := medianInPlace(dists, rest)

	// Partition rest by d <= radius. dists was co-sorted by medianInPlace
	// only partially; do an explicit stable pass.
	left := make([]uint32, 0, len(rest)/2+1)
	right := make([]uint32, 0, len(rest)/2+1)
	for i, id := range rest {
		if dists[i] <= radius {
			left = append(left, id)
		} else {
			right = append(right, id)
		}
	}
	if len(right) == 0 {
		// Degenerate split (many duplicates): avoid infinite recursion
		// by turning the whole partition, pivot included, into a leaf.
		b := make([]uint32, 0, len(rest)+1)
		b = append(b, rest...)
		b = append(b, pivot)
		return &node{bucket: b}
	}
	n := &node{pivot: pivot, radius: radius}
	n.left = t.build(r, left)
	n.right = t.build(r, right)
	return n
}

// medianInPlace returns the median of dists. ids is passed along so future
// co-sorting optimizations stay possible; it is not reordered today.
func medianInPlace(dists []float64, _ []uint32) float64 {
	cp := make([]float64, len(dists))
	copy(cp, dists)
	sort.Float64s(cp)
	return cp[(len(cp)-1)/2]
}

// Name implements index.Index.
func (t *Tree[T]) Name() string { return "vptree" }

// Stats implements index.Sized.
func (t *Tree[T]) Stats() index.Stats {
	// Each internal node: pivot + radius + two pointers; leaves hold id
	// slices. A coarse but honest estimate.
	return index.Stats{
		Bytes:          int64(t.nodes)*40 + int64(len(t.data))*4,
		BuildDistances: t.buildDist,
	}
}

// searchScratch is the reusable per-query traversal state: the explicit
// frontier stack standing in for the old recursion, and the bounded top-k
// queue. The zero value is ready; both buffers grow to their high-water
// mark once and are reused query after query. Trees do not need an
// epoch-stamped visited arena (unlike the graph traversals): a tree visits
// each node at most once by construction.
type searchScratch struct {
	stack []frame
	q     topk.Queue
}

// frame is one deferred traversal step. A fresh frame (revisit false)
// expands the node; a revisit frame re-evaluates the pruning rule for the
// node's far child *after* the near subtree has been fully searched, with
// the then-current queue bound — exactly the order and pruning decisions of
// the recursive formulation.
type frame struct {
	n       *node
	dq      float64 // query-pivot distance in pruning direction (revisit only)
	revisit bool
}

// Search returns the (approximate, when alpha > 1 or the space is
// non-metric) k nearest neighbors of query.
func (t *Tree[T]) Search(query T, k int) []topk.Neighbor {
	if k <= 0 {
		return nil
	}
	s := t.pool.Get()
	defer t.pool.Put(s)
	t.searchInto(s, query, k)
	return s.q.Results()
}

// NewSearcher implements index.SearcherProvider: the returned handle owns
// its traversal scratch exclusively, so a worker cycling queries through it
// reuses one stack and queue with zero steady-state allocations (the
// AllocsPerRun guard in alloc_test.go holds it to that).
func (t *Tree[T]) NewSearcher() index.Searcher[T] {
	return &treeSearcher[T]{t: t}
}

// treeSearcher is the per-worker query handle; not safe for concurrent use.
type treeSearcher[T any] struct {
	t *Tree[T]
	s searchScratch
}

// Search implements index.Searcher.
func (ts *treeSearcher[T]) Search(query T, k int) []topk.Neighbor {
	return ts.SearchAppend(nil, query, k)
}

// SearchAppend implements index.Searcher: results are appended to dst; with
// sufficient capacity a warm call does not allocate.
func (ts *treeSearcher[T]) SearchAppend(dst []topk.Neighbor, query T, k int) []topk.Neighbor {
	if k <= 0 {
		return dst
	}
	ts.t.searchInto(&ts.s, query, k)
	return ts.s.q.AppendResults(dst)
}

// searchInto runs the k-NN traversal, leaving the results in s.q. The
// iterative schedule replays the recursion exactly: a node's near child
// (and its whole subtree) is processed before the node's revisit frame
// decides — with the updated bound — whether the far child is pruned.
func (t *Tree[T]) searchInto(s *searchScratch, query T, k int) {
	s.q.Reset(k)
	s.stack = append(s.stack[:0], frame{n: t.root})
	for len(s.stack) > 0 {
		f := s.stack[len(s.stack)-1]
		s.stack = s.stack[:len(s.stack)-1]
		n := f.n
		if n == nil {
			continue
		}
		if f.revisit {
			r := math.Inf(1)
			if bound, ok := s.q.Bound(); ok {
				r = bound
			}
			if f.dq <= n.radius {
				if !t.pruneRight(n.radius, f.dq, r) {
					s.stack = append(s.stack, frame{n: n.right})
				}
			} else {
				if !t.pruneLeft(n.radius, f.dq, r) {
					s.stack = append(s.stack, frame{n: n.left})
				}
			}
			continue
		}
		if n.bucket != nil {
			for _, id := range n.bucket {
				s.q.Push(id, t.sp.Distance(t.data[id], query))
			}
			continue
		}
		dq := t.sp.Distance(t.data[n.pivot], query)
		s.q.Push(n.pivot, dq)
		// Pruning compares against ball radii built from d(x, pivot); for
		// asymmetric spaces measure the query in the same direction.
		if !t.symmetric {
			dq = t.sp.Distance(query, t.data[n.pivot])
		}
		// Near child first; the revisit frame beneath it on the stack
		// fires once the near subtree is exhausted.
		s.stack = append(s.stack, frame{n: n, dq: dq, revisit: true})
		if dq <= n.radius {
			s.stack = append(s.stack, frame{n: n.left})
		} else {
			s.stack = append(s.stack, frame{n: n.right})
		}
	}
}

// pruneRight reports whether the outside partition can be skipped when the
// query is inside the ball.
func (t *Tree[T]) pruneRight(radius, dq, r float64) bool {
	diff := radius - dq
	if diff <= 0 {
		return false
	}
	return stretch(diff, t.opts.Beta)*t.opts.AlphaLeft > r
}

// pruneLeft reports whether the inside partition can be skipped when the
// query is outside the ball.
func (t *Tree[T]) pruneLeft(radius, dq, r float64) bool {
	diff := dq - radius
	if diff <= 0 {
		return false
	}
	return stretch(diff, t.opts.Beta)*t.opts.AlphaRight > r
}

func stretch(diff, beta float64) float64 {
	if beta == 1 {
		return diff
	}
	if beta == 2 {
		return diff * diff
	}
	return math.Pow(diff, beta)
}
