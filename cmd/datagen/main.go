// Command datagen generates the synthetic data sets and prints summary
// statistics (and optionally a few sample records), so the substitution
// generators behind Table 1 can be inspected directly.
//
// Usage:
//
//	datagen -dataset dna -n 1000 [-samples 3] [-seed 1]
//	datagen -list
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/dataset"
)

func main() {
	name := flag.String("dataset", "", "data set name (required unless -list)")
	n := flag.Int("n", 1000, "records to generate")
	samples := flag.Int("samples", 0, "print this many sample records")
	seed := flag.Int64("seed", 1, "random seed")
	list := flag.Bool("list", false, "list generators, then exit")
	flag.Parse()

	names := []string{"sift", "cophir", "imagenet", "wiki-sparse", "wiki-8", "wiki-128", "dna"}
	if *list {
		fmt.Println(strings.Join(names, "\n"))
		return
	}

	switch *name {
	case "sift":
		summarizeDense(dataset.SIFT(*seed, *n), *samples)
	case "cophir":
		summarizeDense(dataset.CoPhIR(*seed, *n), *samples)
	case "imagenet":
		sigs := dataset.ImageNet(*seed, *n, dataset.SignatureOptions{})
		var clusters int
		for _, s := range sigs {
			clusters += s.Clusters()
		}
		fmt.Printf("records=%d avg-clusters=%.1f dim=%d\n",
			len(sigs), float64(clusters)/float64(len(sigs)), sigs[0].Dim)
		for i := 0; i < *samples && i < len(sigs); i++ {
			fmt.Printf("sample %d: %d clusters, weights %v\n", i, sigs[i].Clusters(), sigs[i].Weights)
		}
	case "wiki-sparse":
		docs := dataset.WikiSparse(*seed, *n, dataset.WikiSparseOptions{})
		var nnz int
		for _, d := range docs {
			nnz += d.NNZ()
		}
		fmt.Printf("records=%d avg-nnz=%.1f vocab=100000\n", len(docs), float64(nnz)/float64(len(docs)))
		for i := 0; i < *samples && i < len(docs); i++ {
			fmt.Printf("sample %d: %d terms, norm %.3f\n", i, docs[i].NNZ(), docs[i].Norm)
		}
	case "wiki-8", "wiki-128":
		topics := 8
		if *name == "wiki-128" {
			topics = 128
		}
		docs := dataset.WikiLDA(*seed, *n, topics)
		fmt.Printf("records=%d topics=%d\n", len(docs), topics)
		for i := 0; i < *samples && i < len(docs); i++ {
			fmt.Printf("sample %d: %v\n", i, docs[i].P[:min(8, topics)])
		}
	case "dna":
		seqs := dataset.DNA(*seed, *n, dataset.DNAOptions{})
		lens := make([]int, len(seqs))
		total := 0
		for i, s := range seqs {
			lens[i] = len(s)
			total += len(s)
		}
		sort.Ints(lens)
		fmt.Printf("records=%d mean-len=%.1f median-len=%d\n",
			len(seqs), float64(total)/float64(len(seqs)), lens[len(lens)/2])
		for i := 0; i < *samples && i < len(seqs); i++ {
			fmt.Printf("sample %d: %s\n", i, seqs[i])
		}
	default:
		fmt.Fprintf(os.Stderr, "datagen: unknown dataset %q (known: %s)\n",
			*name, strings.Join(names, ", "))
		os.Exit(2)
	}
}

func summarizeDense(vs [][]float32, samples int) {
	lo, hi := vs[0][0], vs[0][0]
	for _, v := range vs {
		for _, x := range v {
			if x < lo {
				lo = x
			}
			if x > hi {
				hi = x
			}
		}
	}
	fmt.Printf("records=%d dim=%d value-range=[%.1f, %.1f]\n", len(vs), len(vs[0]), lo, hi)
	for i := 0; i < samples && i < len(vs); i++ {
		fmt.Printf("sample %d: %v...\n", i, vs[i][:min(8, len(vs[i]))])
	}
}
