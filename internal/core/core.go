// Package core implements the permutation-based k-NN search methods that are
// the subject of the paper (§2): brute-force filtering of permutations (full
// and binarized), the Permutation Prefix Index (PP-index), the Metric
// Inverted File (MI-file), the Neighborhood APProximation index (NAPP),
// indexing permutations in a VP-tree (Figueroa & Fredriksson), and Fagin et
// al.'s OMEDRANK rank-aggregation baseline.
//
// All methods are filter-and-refine: the filtering stage selects candidate
// identifiers using only precomputed permutation information, and the refine
// stage re-ranks the candidates with the true distance. The number of
// candidates is controlled by a gamma parameter expressed as a fraction of
// the data set size, exactly as in §2.2 of the paper.
package core

import (
	"fmt"
	"time"

	"repro/internal/engine"
	"repro/internal/index"
	"repro/internal/obs"
	"repro/internal/permutation"
	"repro/internal/space"
	"repro/internal/topk"
)

// PermDist selects the distance used to compare permutations in the
// filtering stage.
type PermDist int

const (
	// Rho is Spearman's rho (sum of squared rank differences), the most
	// effective choice per §2.1 and the default everywhere.
	Rho PermDist = iota
	// FootruleDist is the Footrule (sum of absolute rank differences).
	FootruleDist
)

// String returns the report name of the permutation distance.
func (d PermDist) String() string {
	switch d {
	case Rho:
		return "spearman-rho"
	case FootruleDist:
		return "footrule"
	default:
		return fmt.Sprintf("PermDist(%d)", int(d))
	}
}

// distance returns the comparison between flattened permutation rows.
func (d PermDist) distance(a, b []int32) float64 {
	switch d {
	case FootruleDist:
		return permutation.Footrule(a, b)
	default:
		return permutation.SpearmanRho(a, b)
	}
}

// gammaCount converts a candidate fraction into an absolute candidate count,
// clamped to [k, n] so a query can always be answered.
func gammaCount(frac float64, n, k int) int {
	g := int(frac * float64(n))
	if g < k {
		g = k
	}
	if g > n {
		g = n
	}
	return g
}

// refineInto computes true distances from the candidates to the query and
// appends the k nearest, ordered by increasing distance, to dst. Candidate
// ids must be unique. Data points are the left distance argument (left
// queries). The queue is scratch state owned by the caller; refineInto does
// not allocate when dst and the queue have warmed-up capacity.
//
// Ties at the k boundary are broken by candidate order (first kept wins),
// so every index must feed candidates in a deterministic order.
// Both refine helpers take an optional *obs.QueryTrace: when non-nil they
// attribute the exact-distance loop to the refine stage and the final
// ordered copy-out to the merge stage (one time.Now pair per stage; no
// per-candidate bookkeeping, so the traced path stays allocation-free).
func refineInto[T any](sp space.Space[T], data []T, query T, cands []uint32, k int, q *topk.Queue, dst []topk.Neighbor, tr *obs.QueryTrace) []topk.Neighbor {
	var t0 time.Time
	if tr != nil {
		tr.RefineDistances += int64(len(cands))
		t0 = time.Now()
	}
	q.Reset(k)
	for _, id := range cands {
		q.Push(id, sp.Distance(data[id], query))
	}
	if tr != nil {
		obs.AddSince(&tr.RefineNs, t0)
		t0 = time.Now()
	}
	dst = q.AppendResults(dst)
	if tr != nil {
		obs.AddSince(&tr.MergeNs, t0)
	}
	return dst
}

// refineTopInto is refineInto over pre-scored candidates (the output of
// topk.SelectK); only the IDs are consumed.
func refineTopInto[T any](sp space.Space[T], data []T, query T, cands []topk.Neighbor, k int, q *topk.Queue, dst []topk.Neighbor, tr *obs.QueryTrace) []topk.Neighbor {
	var t0 time.Time
	if tr != nil {
		tr.RefineDistances += int64(len(cands))
		t0 = time.Now()
	}
	q.Reset(k)
	for _, c := range cands {
		q.Push(c.ID, sp.Distance(data[c.ID], query))
	}
	if tr != nil {
		obs.AddSince(&tr.RefineNs, t0)
		t0 = time.Now()
	}
	dst = q.AppendResults(dst)
	if tr != nil {
		obs.AddSince(&tr.MergeNs, t0)
	}
	return dst
}

// searcher adapts a scratch-threaded search function to index.Searcher: it
// owns one scratch state S for its lifetime, giving a single-goroutine
// caller (a batch worker, a serving loop) buffer reuse across queries
// without any pool traffic. The index's own Search/SearchAppend wrap the
// same fn around a pooled state instead.
//
// A warm scratch state is built under one index generation: its arenas are
// sized to the data set and its epoch stamps assume the id space is stable.
// Dynamic indexes (napp_dynamic.go) invalidate that assumption, so a
// searcher minted by a mutable index carries the index's mutation sequence
// number and re-mints its scratch (discarding every warmed buffer) the
// first time it is used after a mutation. That makes a stale searcher
// self-healing instead of an out-of-range or silently-missing-ids hazard;
// the cost is one round of re-warming allocations per mutation, and zero
// extra allocations while the index is unmutated.
//
// A searcher also carries an optional *obs.QueryTrace (set via SetTrace,
// the obs.Traceable interface): when attached, the search fn records the
// per-stage breakdown into it. The trace pointer is owner-managed state
// like the scratch itself — callers holding pooled searchers must SetTrace
// before every query (nil for untraced) so a pointer from a previous query
// never receives writes.
type searcher[T, S any] struct {
	scratch S
	tr      *obs.QueryTrace
	fn      func(s *S, tr *obs.QueryTrace, dst []topk.Neighbor, query T, k int) []topk.Neighbor
	// mutSeq, when non-nil, reads the owning index's mutation sequence
	// number; minted is the value the current scratch was built under.
	mutSeq func() uint64
	minted uint64
}

// SetTrace implements obs.Traceable.
func (w *searcher[T, S]) SetTrace(tr *obs.QueryTrace) { w.tr = tr }

// refresh re-mints the scratch state if the owning index has mutated since
// the scratch was built. Mutation and search may not run concurrently (the
// dynamic-maintenance contract), so reading the sequence here is unsynced.
func (w *searcher[T, S]) refresh() {
	if w.mutSeq == nil {
		return
	}
	if seq := w.mutSeq(); seq != w.minted {
		var zero S
		w.scratch = zero
		w.minted = seq
	}
}

// Search implements index.Searcher.
func (w *searcher[T, S]) Search(query T, k int) []topk.Neighbor {
	w.refresh()
	return w.fn(&w.scratch, w.tr, nil, query, k)
}

// SearchAppend implements index.Searcher.
func (w *searcher[T, S]) SearchAppend(dst []topk.Neighbor, query T, k int) []topk.Neighbor {
	w.refresh()
	return w.fn(&w.scratch, w.tr, dst, query, k)
}

// compile-time interface checks: every core index mints searchers.
var (
	_ index.SearcherProvider[[]float32] = (*BruteForceFilter[[]float32])(nil)
	_ index.SearcherProvider[[]float32] = (*BinFilter[[]float32])(nil)
	_ index.SearcherProvider[[]float32] = (*QuantFilter[[]float32])(nil)
	_ index.SearcherProvider[[]float32] = (*DistVecFilter[[]float32])(nil)
	_ index.SearcherProvider[[]float32] = (*PPIndex[[]float32])(nil)
	_ index.SearcherProvider[[]float32] = (*MIFile[[]float32])(nil)
	_ index.SearcherProvider[[]float32] = (*NAPP[[]float32])(nil)
	_ index.SearcherProvider[[]float32] = (*OMEDRANK[[]float32])(nil)
	_ index.SearcherProvider[[]float32] = (*PermVPTree[[]float32])(nil)
)

// parallelFor runs f(i) for every i in [0, n) on up to GOMAXPROCS
// goroutines (uniform-cost build loops; see engine.Pool.For). Iterations
// must be independent.
func parallelFor(n int, f func(i int)) {
	engine.Pool{}.For(n, f)
}

// computePermutations returns the flattened n x m matrix of permutations of
// every data point, computed in parallel (the paper builds permutation
// indexes with four threads; we use GOMAXPROCS).
func computePermutations[T any](pv *permutation.Pivots[T], data []T) []int32 {
	m := pv.M()
	out := make([]int32, len(data)*m)
	parallelFor(len(data), func(i int) {
		pv.Permutation(data[i], out[i*m:i*m+m])
	})
	return out
}

// computeOrders returns the flattened n x mi matrix holding, for each data
// point, the indices of its mi closest pivots (closest first).
func computeOrders[T any](pv *permutation.Pivots[T], data []T, mi int) []int32 {
	m := pv.M()
	if mi > m {
		mi = m
	}
	out := make([]int32, len(data)*mi)
	parallelFor(len(data), func(i int) {
		order := pv.Order(data[i], nil)
		copy(out[i*mi:(i+1)*mi], order[:mi])
	})
	return out
}
