package lsh

import (
	"math/rand"
	"testing"

	"repro/internal/index"
	"repro/internal/seqscan"
	"repro/internal/space"
	"repro/internal/synth"
)

var _ index.Index[[]float32] = (*MPLSH)(nil)
var _ index.Sized = (*MPLSH)(nil)

func clustered(seed int64, n, dim int) [][]float32 {
	r := rand.New(rand.NewSource(seed))
	g := synth.NewGaussianMixture(r, dim, 16, 100, 4)
	return g.SampleN(r, n)
}

func TestValidation(t *testing.T) {
	if _, err := New(nil, Options{}); err == nil {
		t.Fatal("empty data accepted")
	}
	if _, err := New([][]float32{{}}, Options{}); err == nil {
		t.Fatal("zero-dim accepted")
	}
	if _, err := New([][]float32{{1, 2}, {1}}, Options{}); err == nil {
		t.Fatal("ragged data accepted")
	}
}

func TestRecallOnClusteredData(t *testing.T) {
	data := clustered(1, 2050, 16)
	db, queries := data[:2000], data[2000:]
	idx, err := New(db, Options{Tables: 16, Hashes: 10, Probes: 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	scan := seqscan.New[[]float32](space.L2{}, db)
	var hit, total int
	for _, q := range queries {
		want := map[uint32]bool{}
		for _, n := range scan.Search(q, 10) {
			want[n.ID] = true
		}
		for _, n := range idx.Search(q, 10) {
			if want[n.ID] {
				hit++
			}
		}
		total += 10
	}
	rec := float64(hit) / float64(total)
	if rec < 0.7 {
		t.Fatalf("MPLSH recall %.3f < 0.7", rec)
	}
}

func TestMoreProbesHigherRecall(t *testing.T) {
	data := clustered(2, 1550, 16)
	db, queries := data[:1500], data[1500:]
	scan := seqscan.New[[]float32](space.L2{}, db)
	truth := scan.SearchAll(queries, 10)
	recall := func(probes int) float64 {
		idx, err := New(db, Options{Tables: 8, Hashes: 12, Probes: probes, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		var hit, total int
		for i, q := range queries {
			want := map[uint32]bool{}
			for _, n := range truth[i] {
				want[n.ID] = true
			}
			for _, n := range idx.Search(q, 10) {
				if want[n.ID] {
					hit++
				}
			}
			total += 10
		}
		return float64(hit) / float64(total)
	}
	r0, r20 := recall(0), recall(20)
	if r0 > r20+0.02 {
		t.Fatalf("probing did not help: T=0 %.3f vs T=20 %.3f", r0, r20)
	}
}

func TestProbeSetsValidAndOrdered(t *testing.T) {
	data := clustered(3, 100, 8)
	idx, err := New(data, Options{Tables: 1, Hashes: 6, Probes: 15, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	fracs := []float64{0.1, 0.9, 0.5, 0.3, 0.7, 0.02}
	sets := idx.probeSets(fracs)
	if len(sets) == 0 {
		t.Fatal("no probe sets generated")
	}
	prev := -1.0
	for _, set := range sets {
		var score float64
		used := map[int]bool{}
		for _, p := range set {
			if p.delta != 1 && p.delta != -1 {
				t.Fatalf("bad delta %d", p.delta)
			}
			if used[p.i] {
				t.Fatal("probe set perturbs the same hash twice")
			}
			used[p.i] = true
			score += p.score
		}
		if score < prev-1e-12 {
			t.Fatalf("probe sets not in increasing score order: %v after %v", score, prev)
		}
		prev = score
	}
	// All sets must be distinct bucket offsets.
	seen := map[string]bool{}
	for _, set := range sets {
		key := ""
		for _, p := range set {
			key += string(rune('a'+p.i)) + string(rune('0'+p.delta+1))
		}
		if seen[key] {
			t.Fatal("duplicate probe set")
		}
		seen[key] = true
	}
}

func TestSearchEdgeCases(t *testing.T) {
	data := clustered(4, 50, 8)
	idx, err := New(data, Options{Tables: 4, Hashes: 4, Probes: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res := idx.Search(data[0], 0); res != nil {
		t.Fatal("k=0 returned results")
	}
	res := idx.Search(data[0], 5)
	if len(res) == 0 {
		t.Fatal("no results for a data point query")
	}
	if res[0].Dist != 0 {
		t.Fatalf("self not found: %v", res[0])
	}
	seen := map[uint32]bool{}
	for _, n := range res {
		if seen[n.ID] {
			t.Fatal("duplicate result")
		}
		seen[n.ID] = true
	}
}

func TestStats(t *testing.T) {
	data := clustered(5, 100, 8)
	idx, err := New(data, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if idx.Stats().Bytes <= 0 {
		t.Fatal("zero footprint")
	}
}

func TestDeterministic(t *testing.T) {
	data := clustered(6, 200, 8)
	q := data[7]
	a, _ := New(data, Options{Seed: 9})
	b, _ := New(data, Options{Seed: 9})
	ra, rb := a.Search(q, 5), b.Search(q, 5)
	if len(ra) != len(rb) {
		t.Fatal("nondeterministic size")
	}
	for i := range ra {
		if ra[i] != rb[i] {
			t.Fatal("nondeterministic results")
		}
	}
}
