package cluster

import (
	"math"
	"math/rand"
	"testing"
)

// threeBlobs builds 3 well-separated 2-d clusters of 50 points each.
func threeBlobs(r *rand.Rand) ([]float32, []int) {
	centers := [][2]float64{{0, 0}, {100, 0}, {0, 100}}
	var pts []float32
	var labels []int
	for ci, c := range centers {
		for i := 0; i < 50; i++ {
			pts = append(pts, float32(c[0]+r.NormFloat64()), float32(c[1]+r.NormFloat64()))
			labels = append(labels, ci)
		}
	}
	return pts, labels
}

func TestKMeansRecoversBlobs(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	pts, labels := threeBlobs(r)
	res, err := KMeans(r, pts, 2, 3, 50)
	if err != nil {
		t.Fatal(err)
	}
	if res.K() != 3 {
		t.Fatalf("K = %d, want 3", res.K())
	}
	// All points with the same true label must share a cluster.
	for ci := 0; ci < 3; ci++ {
		var first = -1
		for p, lab := range labels {
			if lab != ci {
				continue
			}
			if first == -1 {
				first = res.Assign[p]
			} else if res.Assign[p] != first {
				t.Fatalf("true cluster %d split across k-means clusters", ci)
			}
		}
	}
	// Sizes must be 50 each.
	for i, s := range res.Sizes {
		if s != 50 {
			t.Fatalf("cluster %d size %d, want 50", i, s)
		}
	}
}

func TestKMeansValidation(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	if _, err := KMeans(r, []float32{1, 2, 3}, 2, 1, 10); err == nil {
		t.Fatal("non-multiple length accepted")
	}
	if _, err := KMeans(r, nil, 2, 1, 10); err == nil {
		t.Fatal("empty input accepted")
	}
	if _, err := KMeans(r, []float32{1, 2}, 0, 1, 10); err == nil {
		t.Fatal("dim=0 accepted")
	}
	if _, err := KMeans(r, []float32{1, 2}, 2, 0, 10); err == nil {
		t.Fatal("k=0 accepted")
	}
}

func TestKMeansKLargerThanN(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	pts := []float32{0, 0, 10, 10} // two 2-d points
	res, err := KMeans(r, pts, 2, 5, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.K() > 2 {
		t.Fatalf("K = %d, want <= 2", res.K())
	}
}

func TestKMeansSinglePoint(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	res, err := KMeans(r, []float32{5, 6}, 2, 3, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.K() != 1 || res.Sizes[0] != 1 {
		t.Fatalf("K=%d sizes=%v", res.K(), res.Sizes)
	}
	if res.Centroid(0)[0] != 5 || res.Centroid(0)[1] != 6 {
		t.Fatalf("centroid = %v", res.Centroid(0))
	}
}

func TestKMeansInertiaDecreasesWithK(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	pts, _ := threeBlobs(r)
	res1, err := KMeans(r, pts, 2, 1, 50)
	if err != nil {
		t.Fatal(err)
	}
	res3, err := KMeans(r, pts, 2, 3, 50)
	if err != nil {
		t.Fatal(err)
	}
	i1, i3 := Inertia(pts, res1), Inertia(pts, res3)
	if i3 >= i1 {
		t.Fatalf("inertia did not decrease: k=1 %v vs k=3 %v", i1, i3)
	}
	// With 3 separated blobs, k=3 inertia should be tiny vs k=1.
	if i3 > i1/10 {
		t.Fatalf("k=3 inertia %v too large relative to k=1 %v", i3, i1)
	}
}

func TestKMeansAssignConsistent(t *testing.T) {
	// Every point must be assigned to its genuinely nearest centroid at
	// convergence.
	r := rand.New(rand.NewSource(6))
	pts, _ := threeBlobs(r)
	res, err := KMeans(r, pts, 2, 3, 100)
	if err != nil {
		t.Fatal(err)
	}
	n := len(res.Assign)
	for i := 0; i < n; i++ {
		p := pts[i*2 : i*2+2]
		best, bestD := -1, math.MaxFloat64
		for c := 0; c < res.K(); c++ {
			cd := res.Centroid(c)
			dx := float64(p[0] - cd[0])
			dy := float64(p[1] - cd[1])
			if d := dx*dx + dy*dy; d < bestD {
				best, bestD = c, d
			}
		}
		if res.Assign[i] != best {
			t.Fatalf("point %d assigned to %d, nearest is %d", i, res.Assign[i], best)
		}
	}
}

func TestKMeansDeterministicWithSeed(t *testing.T) {
	pts, _ := threeBlobs(rand.New(rand.NewSource(7)))
	run := func() *Result {
		res, err := KMeans(rand.New(rand.NewSource(42)), pts, 2, 3, 50)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatal("same seed produced different clustering")
		}
	}
}
