// Command figure3 regenerates the data behind Figure 3 of the paper: the
// fraction of candidate records that must be scanned, in projected-space
// order, to reach a given 10-NN recall, for projections of several
// dimensionalities.
//
// Output columns: dataset, kind (perm|rand), dim, recall, fraction.
//
// Usage:
//
//	figure3 [-n 2000] [-queries 100] [-k 10] [-dims 16,64,256,1024] [-datasets ...]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/experiments"
)

func main() {
	n := flag.Int("n", 2000, "points per data set (the paper uses 1M)")
	queries := flag.Int("queries", 100, "query count")
	k := flag.Int("k", 10, "neighbors per query")
	seed := flag.Int64("seed", 1, "random seed")
	dimsFlag := flag.String("dims", "16,64,256,1024", "projection dimensionalities")
	datasets := flag.String("datasets", "", "comma-separated subset (default: the paper's panels)")
	flag.Parse()

	var dims []int
	for _, s := range strings.Split(*dimsFlag, ",") {
		d, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || d <= 0 {
			fmt.Fprintf(os.Stderr, "figure3: bad dimension %q\n", s)
			os.Exit(2)
		}
		dims = append(dims, d)
	}

	// The paper's nine panels.
	names := []string{"sift", "wiki-sparse", "wiki-8-kl", "wiki-128-kl", "dna", "imagenet", "wiki-128-js"}
	if *datasets != "" {
		names = strings.Split(*datasets, ",")
	}
	cfg := experiments.Config{N: *n, Queries: *queries, K: *k, Seed: *seed}
	fmt.Println("# Figure 3: dataset\tkind\tdim\trecall\tfraction")
	for _, name := range names {
		r, ok := experiments.Get(name)
		if !ok {
			fmt.Fprintf(os.Stderr, "figure3: unknown dataset %q (known: %s)\n",
				name, strings.Join(experiments.Names(), ", "))
			os.Exit(2)
		}
		if err := r.Figure3(cfg, dims, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "figure3: %s: %v\n", name, err)
			os.Exit(1)
		}
	}
}
