#!/usr/bin/env bash
# bench.sh — run the query hot-path microbenchmarks and emit one
# machine-readable point of the performance trajectory.
#
# Usage: scripts/bench.sh [OUT.json] [BENCHTIME]
#
# The output name comes from the first argument, then the BENCH_OUT
# environment variable, then the current PR's default — so `make bench`
# writes the trajectory point for this PR and one-off runs can redirect
# anywhere (BENCH_OUT=/tmp/x.json scripts/bench.sh).
#
# Runs BenchmarkSearchHot (internal/core) with -benchmem and converts the
# output into a JSON document holding, per method: ns/op, B/op, allocs/op
# and the implied single-thread QPS (the napp-sharded3 row is the
# scatter-gather router over 3 shards, tracked against its unsharded napp
# twin). Successive PRs commit successive BENCH_<PR>.json files, so the
# allocation and latency history of the hot path stays reviewable in-repo.
# CI runs a short non-gating pass (see `make bench-smoke`) to keep the
# harness from rotting.
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-${BENCH_OUT:-BENCH_PR10.json}}"
benchtime="${2:-1s}"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

go test -run '^$' -bench BenchmarkSearchHot -benchmem -benchtime "$benchtime" ./internal/core/ | tee "$raw"

awk -v now="$(date -u +%Y-%m-%dT%H:%M:%SZ)" -v goversion="$(go env GOVERSION)" '
  /^goos:/   { goos = $2 }
  /^goarch:/ { goarch = $2 }
  /^cpu:/    { sub(/^cpu: */, ""); cpu = $0 }
  /^BenchmarkSearchHot\// {
    name = $1
    sub(/^BenchmarkSearchHot\//, "", name)
    sub(/-[0-9]+$/, "", name)          # strip the GOMAXPROCS suffix
    ns = $3; bytes = $5; allocs = $7
    qps = ns > 0 ? 1e9 / ns : 0
    row = sprintf("    {\"method\": \"%s\", \"ns_per_op\": %.0f, \"bytes_per_op\": %.0f, \"allocs_per_op\": %.0f, \"qps\": %.1f}",
                  name, ns, bytes, allocs, qps)
    rows = rows (rows == "" ? "" : ",\n") row
    nrows++
  }
  END {
    if (nrows == 0) { print "bench.sh: no benchmark rows parsed" > "/dev/stderr"; exit 1 }
    printf "{\n"
    printf "  \"schema\": \"permsearch-bench/v1\",\n"
    printf "  \"bench\": \"BenchmarkSearchHot\",\n"
    printf "  \"timestamp\": \"%s\",\n", now
    printf "  \"go\": \"%s\",\n", goversion
    printf "  \"goos\": \"%s\",\n", goos
    printf "  \"goarch\": \"%s\",\n", goarch
    printf "  \"cpu\": \"%s\",\n", cpu
    printf "  \"results\": [\n%s\n  ]\n}\n", rows
  }
' "$raw" > "$out"

# Schema gate: the emitted document must parse against permsearch-bench/v1
# (scripts/benchcheck), so an emitter/benchmark drift fails here, not in a
# later reader. When a previous committed trajectory point exists, also run
# trajectory mode against it: a method that silently disappeared is always
# fatal; a >25% ns/op regression, any B/op or allocs/op growth, and in
# particular any previously-zero allocation row moving off zero are fatal
# when both points were measured on the same machine identity, warnings
# otherwise.
prev=""
for f in $(git ls-files 'BENCH_PR*.json' | sort -V); do
  [ "$f" = "$(basename "$out")" ] && continue
  prev="$f"
done
if [ -n "$prev" ]; then
  go run ./scripts/benchcheck -prev "$prev" "$out"
else
  go run ./scripts/benchcheck "$out"
fi

echo "bench.sh: wrote $out ($(grep -c '"method"' "$out") methods)"
