#!/bin/sh
# Smoke test of the mutable serving tier's durability story, end to end
# over a real process: boot permserve on the demo set, stream adds and
# deletes into the mutable index under concurrent query traffic, seal a
# tier, then `kill -9` the daemon mid-ingest and restart it. Every write
# acknowledged before the kill must survive (the ack barrier is an fsynced
# WAL append), and recorded pre-kill search answers must come back
# byte-identical after recovery. Run via `make ingest-smoke`.
set -eu

BIN=${1:?usage: ingest_smoke.sh path/to/permserve}
TMP=$(mktemp -d)
LOG="$TMP/permserve.log"
IDX="sift-mutable"
PID=
TRAFFIC_PID=
cleanup() {
    [ -n "$TRAFFIC_PID" ] && kill "$TRAFFIC_PID" 2>/dev/null || true
    [ -n "$PID" ] && kill -9 "$PID" 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

fail() {
    echo "ingest-smoke: FAIL: $1" >&2
    echo "--- permserve log ---" >&2
    cat "$LOG" >&2
    exit 1
}

# start_daemon boots permserve over $TMP/idx and waits for its bound
# address (port 0 picks a free one; the address lands in $ADDR).
start_daemon() {
    : >"$LOG"
    "$BIN" -dir "$TMP/idx" -addr 127.0.0.1:0 >"$LOG" 2>&1 &
    PID=$!
    ADDR=
    i=0
    while [ $i -lt 50 ]; do
        ADDR=$(sed -n 's#.*listening on http://\([0-9.:]*\).*#\1#p' "$LOG" | head -n1)
        [ -n "$ADDR" ] && break
        kill -0 "$PID" 2>/dev/null || fail "daemon exited during startup"
        sleep 0.2
        i=$((i + 1))
    done
    [ -n "$ADDR" ] || fail "daemon never started listening"
}

# vec N prints a 128-dim JSON vector [N, 0, 0, ...]: far from the demo
# corpus (coordinates in [0, 255]) and unique per N, so its self-query at
# k=1 must return exactly its own id at distance 0.
ZEROS=""
i=0
while [ $i -lt 127 ]; do
    ZEROS="$ZEROS,0"
    i=$((i + 1))
done
vec() { printf '[%s%s]' "$1" "$ZEROS"; }

# ack_id extracts the single assigned id from an add response.
ack_id() { sed -n 's/.*"ids":\[\([0-9]*\)\].*/\1/p'; }

"$BIN" -write-demo -dir "$TMP/idx"
start_daemon

# Concurrent query traffic against the mutable index for the whole run:
# ingest, seal, and crash recovery all happen under live reads.
(
    while :; do
        curl -s -d "{\"query\": $(vec 1), \"k\": 3}" \
            "http://$ADDR/v1/indexes/$IDX/search" >/dev/null 2>&1 || true
        sleep 0.05
    done
) &
TRAFFIC_PID=$!

# Phase 1: a deterministic mutation script. Eight adds, two deletes (one
# base object, one added object), a flush sealing the survivors into a
# tier, then four more adds left unflushed so recovery must replay the WAL.
FIRST_ID=
i=0
while [ $i -lt 8 ]; do
    RESP=$(curl -sf -d "{\"object\": $(vec $((10000 + i)))}" \
        "http://$ADDR/v1/indexes/$IDX/add") || fail "add $i failed"
    ID=$(printf '%s' "$RESP" | ack_id)
    [ -n "$ID" ] || fail "add $i not acknowledged: $RESP"
    [ $i -eq 0 ] && FIRST_ID=$ID
    i=$((i + 1))
done
curl -sf -d "{\"ids\": [7, $FIRST_ID]}" \
    "http://$ADDR/v1/indexes/$IDX/delete" >/dev/null || fail "delete failed"
curl -sf -XPOST "http://$ADDR/v1/indexes/$IDX/flush" >/dev/null || fail "flush failed"
i=8
while [ $i -lt 12 ]; do
    curl -sf -d "{\"object\": $(vec $((10000 + i)))}" \
        "http://$ADDR/v1/indexes/$IDX/add" >/dev/null || fail "add $i failed"
    i=$((i + 1))
done

# Record pre-kill answers: self-queries of a sealed add, an unflushed add,
# and a deleted object's vector (must NOT come back at distance 0).
record() {
    OUT=$1
    : >"$OUT"
    for n in 10001 10009 10000; do
        curl -sf -d "{\"query\": $(vec $n), \"k\": 5}" \
            "http://$ADDR/v1/indexes/$IDX/search" >>"$OUT" || fail "record query $n failed"
        printf '\n' >>"$OUT"
    done
}
record "$TMP/before"

# The statusz tier rows must show the sealed tier and the pending WAL.
STATUSZ=$(curl -sf "http://$ADDR/statusz") || fail "statusz failed"
echo "$STATUSZ" | grep -q '"mutable":{' || fail "statusz has no mutable section: $STATUSZ"
echo "$STATUSZ" | grep -q '"tiers":\[{"seq":' || fail "statusz shows no sealed tier: $STATUSZ"

# Phase 2: kill -9 mid-ingest. A background writer streams adds, recording
# every acknowledged (coordinate, id) pair; the daemon dies ungracefully
# somewhere in the middle of the stream.
ACKS="$TMP/acks"
: >"$ACKS"
(
    j=0
    while [ $j -lt 200 ]; do
        R=$(curl -s -d "{\"object\": $(vec $((20000 + j)))}" \
            "http://$ADDR/v1/indexes/$IDX/add" 2>/dev/null) || true
        AID=$(printf '%s' "$R" | ack_id)
        [ -n "$AID" ] && echo "$((20000 + j)) $AID" >>"$ACKS"
        j=$((j + 1))
    done
) &
WRITER_PID=$!
sleep 1
kill -9 "$PID" 2>/dev/null || true
wait "$PID" 2>/dev/null || true
PID=
wait "$WRITER_PID" 2>/dev/null || true
NACKED=$(wc -l <"$ACKS")
[ "$NACKED" -gt 0 ] || fail "no adds were acknowledged before the kill"

# Restart over the same directory: WAL replay must restore every
# acknowledged write, and nothing else.
start_daemon
record "$TMP/after"
cmp -s "$TMP/before" "$TMP/after" || {
    echo "--- before ---" >&2
    cat "$TMP/before" >&2
    echo "--- after ---" >&2
    cat "$TMP/after" >&2
    fail "recorded answers changed across kill -9 + restart"
}
while read -r N AID; do
    R=$(curl -sf -d "{\"query\": $(vec "$N"), \"k\": 1}" \
        "http://$ADDR/v1/indexes/$IDX/search") || fail "post-restart query $N failed"
    echo "$R" | grep -q "{\"id\":$AID,\"dist\":0}" \
        || fail "acknowledged add id=$AID lost by kill -9 (coordinate $N): $R"
done <"$ACKS"

# The recovered tree still accepts writes and seals.
curl -sf -d "{\"object\": $(vec 30000)}" \
    "http://$ADDR/v1/indexes/$IDX/add" >/dev/null || fail "post-recovery add failed"
curl -sf -XPOST "http://$ADDR/v1/indexes/$IDX/flush" >/dev/null || fail "post-recovery flush failed"

kill "$TRAFFIC_PID" 2>/dev/null || true
TRAFFIC_PID=
kill "$PID"
STATUS=0
wait "$PID" || STATUS=$?
PID=
[ "$STATUS" -eq 0 ] || fail "daemon exited with status $STATUS on SIGTERM"
grep -q "permserve: bye" "$LOG" || fail "no graceful shutdown on SIGTERM"
echo "ingest-smoke: OK ($NACKED acknowledged writes survived kill -9, served on $ADDR)"
