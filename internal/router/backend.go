package router

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/shard"
)

// maxShardResponseBytes caps what the router will read back from one shard;
// matches the serving daemon's own request cap.
const maxShardResponseBytes = 64 << 20

// backend is one shard's HTTP client plus its lifetime counters. The
// embedded http.Client pools connections (keep-alives on by default), so
// steady-state queries reuse sockets instead of re-dialing per request.
type backend struct {
	id   int
	base string // e.g. "http://10.0.0.1:8080", no trailing slash
	// client serves queries under the per-shard timeout; health probes use
	// a tighter budget so a wedged shard cannot stall readiness checks.
	client     *http.Client
	health     *http.Client
	hedgeDelay time.Duration

	requests  atomic.Int64 // search attempts routed here (hedges excluded)
	failures  atomic.Int64 // search calls that returned no usable answer
	hedges    atomic.Int64 // speculative second attempts launched
	latencyNs atomic.Int64 // cumulative per-call wall time
}

func newBackend(id int, base string, timeout, hedgeDelay time.Duration) *backend {
	return &backend{
		id:         id,
		base:       strings.TrimRight(base, "/"),
		client:     &http.Client{Timeout: timeout},
		health:     &http.Client{Timeout: min(timeout, 2*time.Second)},
		hedgeDelay: hedgeDelay,
	}
}

// shardFailure is an infrastructure failure of one shard (transport error,
// timeout, or 5xx): the degraded-mode policy (fail-open vs fail-closed)
// applies to these. Client-caused rejections are clientError instead.
type shardFailure struct {
	shard  int
	status int // HTTP status, 0 for transport errors
	msg    string
}

func (e *shardFailure) Error() string {
	if e.status != 0 {
		return fmt.Sprintf("shard %d: status %d: %s", e.shard, e.status, e.msg)
	}
	return fmt.Sprintf("shard %d: %s", e.shard, e.msg)
}

// clientError is a shard's 4xx verdict on the request itself (malformed
// query, bad params). A request malformed for one shard is malformed for
// all — the router forwards the verdict as its own 400 and never counts it
// against the shard.
type clientError struct{ msg string }

func (e *clientError) Error() string { return e.msg }

// shardPayload is what one shard answered: exactly one of Results (single
// query) or Batch is populated, already in wire shape with corpus-global
// ids.
type shardPayload struct {
	Results []neighborJSON   `json:"results"`
	Batch   [][]neighborJSON `json:"batch"`
}

// errorBody extracts the "error" field of a JSON error response, falling
// back to the raw body.
func errorBody(raw []byte) string {
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(raw, &e) == nil && e.Error != "" {
		return e.Error
	}
	return strings.TrimSpace(string(raw))
}

// search posts a query (or batch) body to this shard and decodes the
// answer, hedging a second identical attempt if the first is still in
// flight after hedgeDelay (tail-latency insurance: the slower attempt is
// abandoned, its connection reclaimed by the pool). An attempt that fails
// with an infrastructure error triggers the hedge immediately. Counters
// are updated here; the caller only classifies the returned error.
func (b *backend) search(ctx context.Context, name string, body []byte) (*shardPayload, error) {
	b.requests.Add(1)
	start := time.Now()
	defer func() { b.latencyNs.Add(time.Since(start).Nanoseconds()) }()

	p, err := b.searchHedged(ctx, name, body)
	if err != nil {
		if _, client := err.(*clientError); !client {
			b.failures.Add(1)
		}
		return nil, err
	}
	return p, nil
}

func (b *backend) searchHedged(ctx context.Context, name string, body []byte) (*shardPayload, error) {
	type outcome struct {
		p   *shardPayload
		err error
	}
	ch := make(chan outcome, 2)
	attempt := func() {
		p, err := b.doSearch(ctx, name, body)
		ch <- outcome{p, err}
	}
	go attempt()

	var hedgeC <-chan time.Time
	if b.hedgeDelay > 0 {
		t := time.NewTimer(b.hedgeDelay)
		defer t.Stop()
		hedgeC = t.C
	}
	pending, hedged := 1, false
	var firstErr error
	for {
		select {
		case o := <-ch:
			pending--
			if o.err == nil {
				return o.p, nil
			}
			if _, client := o.err.(*clientError); client {
				// The shard judged the request malformed; a retry cannot
				// change that verdict.
				return nil, o.err
			}
			if firstErr == nil {
				firstErr = o.err
			}
			// An infrastructure failure hedges immediately (no point
			// waiting out the timer against a dead socket).
			if !hedged && b.hedgeDelay > 0 {
				hedged = true
				hedgeC = nil
				b.hedges.Add(1)
				pending++
				go attempt()
				continue
			}
			if pending == 0 {
				return nil, firstErr
			}
		case <-hedgeC:
			hedgeC = nil
			hedged = true
			b.hedges.Add(1)
			pending++
			go attempt()
		case <-ctx.Done():
			return nil, &shardFailure{shard: b.id, msg: ctx.Err().Error()}
		}
	}
}

// doSearch is one attempt: POST, classify the status, decode the payload.
func (b *backend) doSearch(ctx context.Context, name string, body []byte) (*shardPayload, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		b.base+"/v1/indexes/"+url.PathEscape(name)+"/search", bytes.NewReader(body))
	if err != nil {
		return nil, &shardFailure{shard: b.id, msg: err.Error()}
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := b.client.Do(req)
	if err != nil {
		return nil, &shardFailure{shard: b.id, msg: err.Error()}
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, maxShardResponseBytes))
	if err != nil {
		return nil, &shardFailure{shard: b.id, msg: err.Error()}
	}
	switch {
	case resp.StatusCode == http.StatusOK:
		var p shardPayload
		if err := json.Unmarshal(raw, &p); err != nil {
			return nil, &shardFailure{shard: b.id, msg: fmt.Sprintf("undecodable answer: %v", err)}
		}
		return &p, nil
	case resp.StatusCode >= 400 && resp.StatusCode < 500:
		return nil, &clientError{msg: errorBody(raw)}
	default:
		return nil, &shardFailure{shard: b.id, status: resp.StatusCode, msg: errorBody(raw)}
	}
}

// healthy probes the shard's /healthz readiness endpoint.
func (b *backend) healthy(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.base+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := b.health.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("shard %d: healthz status %d", b.id, resp.StatusCode)
	}
	return nil
}

// backendIndex mirrors the serving daemon's /v1/indexes row, as much of it
// as discovery validates.
type backendIndex struct {
	Name       string      `json:"name"`
	Kind       string      `json:"kind"`
	Space      string      `json:"space"`
	N          uint64      `json:"n"`
	Generation int64       `json:"generation"`
	CorpusN    int         `json:"corpus_n"`
	Shard      *shard.Info `json:"shard"`
}

// listIndexes fetches the shard's served index set.
func (b *backend) listIndexes(ctx context.Context) ([]backendIndex, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.base+"/v1/indexes", nil)
	if err != nil {
		return nil, err
	}
	resp, err := b.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, maxShardResponseBytes))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("listing indexes: status %d: %s", resp.StatusCode, errorBody(raw))
	}
	var out struct {
		Indexes []backendIndex `json:"indexes"`
	}
	if err := json.Unmarshal(raw, &out); err != nil {
		return nil, fmt.Errorf("listing indexes: %v", err)
	}
	return out.Indexes, nil
}
