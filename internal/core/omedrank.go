package core

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/index"
	"repro/internal/space"
	"repro/internal/topk"
)

// OMEDRANKOptions configures NewOMEDRANK.
type OMEDRANKOptions struct {
	// NumVoters is the number of voting pivots h. Fagin et al. use few
	// voters (each ranking all points); default 8.
	NumVoters int
	// Quorum is the fraction of voter lists a candidate must appear in
	// before it is emitted (MEDRANK outputs on a majority). Default 0.5.
	Quorum float64
	// Gamma is the candidate fraction: the aggregation loop stops once
	// gamma*n candidates have crossed the quorum. Default 0.01.
	Gamma float64
	// Seed drives voter sampling.
	Seed int64
}

func (o *OMEDRANKOptions) defaults() {
	if o.NumVoters <= 0 {
		o.NumVoters = 8
	}
	if o.Quorum <= 0 || o.Quorum > 1 {
		o.Quorum = 0.5
	}
	if o.Gamma <= 0 {
		o.Gamma = 0.01
	}
}

// omedVoter is one voting pivot: every data point sorted by distance from
// the pivot.
type omedVoter struct {
	dists []float64 // ascending
	ids   []uint32  // co-sorted with dists
}

// OMEDRANK is the rank-aggregation method of Fagin, Kumar & Sivakumar
// (§2.1): each voting pivot ranks all data points by their distance from the
// pivot; at query time the algorithm walks every voter's list outward from
// the query's own position and outputs points as soon as they have been seen
// in a quorum of lists (the "median rank" heuristic for the NP-hard optimal
// aggregation). The paper benchmarks it as a baseline and finds NAPP more
// efficient; this implementation refines the aggregated candidates with the
// true distance so recall is comparable across methods.
type OMEDRANK[T any] struct {
	sp     space.Space[T]
	data   []T
	pivots []T
	// pivotIDs records each voter's position in the data slice, so the
	// index can be persisted by reference (see persist.go).
	pivotIDs []int32
	voters   []omedVoter
	opts     OMEDRANKOptions
}

// NewOMEDRANK samples voters and sorts the data by distance from each.
func NewOMEDRANK[T any](sp space.Space[T], data []T, opts OMEDRANKOptions) (*OMEDRANK[T], error) {
	opts.defaults()
	if len(data) == 0 {
		return nil, fmt.Errorf("core: empty data set")
	}
	if opts.NumVoters > len(data) {
		opts.NumVoters = len(data)
	}
	r := rand.New(rand.NewSource(opts.Seed))
	om := &OMEDRANK[T]{sp: sp, data: data, opts: opts}
	for _, vi := range r.Perm(len(data))[:opts.NumVoters] {
		om.pivots = append(om.pivots, data[vi])
		om.pivotIDs = append(om.pivotIDs, int32(vi))
	}
	om.voters = make([]omedVoter, opts.NumVoters)
	parallelFor(opts.NumVoters, func(v int) {
		voter := omedVoter{
			dists: make([]float64, len(data)),
			ids:   make([]uint32, len(data)),
		}
		for i, x := range data {
			voter.dists[i] = sp.Distance(x, om.pivots[v])
			voter.ids[i] = uint32(i)
		}
		sort.Sort(&voterSort{voter})
		om.voters[v] = voter
	})
	return om, nil
}

// voterSort co-sorts a voter's parallel arrays by (distance, id).
type voterSort struct{ v omedVoter }

func (s *voterSort) Len() int { return len(s.v.ids) }
func (s *voterSort) Less(i, j int) bool {
	if s.v.dists[i] != s.v.dists[j] {
		return s.v.dists[i] < s.v.dists[j]
	}
	return s.v.ids[i] < s.v.ids[j]
}
func (s *voterSort) Swap(i, j int) {
	s.v.dists[i], s.v.dists[j] = s.v.dists[j], s.v.dists[i]
	s.v.ids[i], s.v.ids[j] = s.v.ids[j], s.v.ids[i]
}

// Name implements index.Index.
func (om *OMEDRANK[T]) Name() string { return "omedrank" }

// Stats implements index.Sized.
func (om *OMEDRANK[T]) Stats() index.Stats {
	return index.Stats{
		Bytes:          int64(len(om.voters)) * int64(len(om.data)) * 12,
		BuildDistances: int64(len(om.voters)) * int64(len(om.data)),
	}
}

// Search implements index.Index.
func (om *OMEDRANK[T]) Search(query T, k int) []topk.Neighbor {
	if k <= 0 {
		return nil
	}
	n := len(om.data)
	h := len(om.voters)
	need := int(om.opts.Quorum*float64(h)) + 1
	if need > h {
		need = h
	}
	g := gammaCount(om.opts.Gamma, n, k)

	// Two cursors per voter, starting at the query's position in the
	// voter's sorted order and moving outward.
	lo := make([]int, h)
	hi := make([]int, h)
	qdist := make([]float64, h)
	for v, voter := range om.voters {
		qdist[v] = om.sp.Distance(query, om.pivots[v])
		pos := sort.SearchFloat64s(voter.dists, qdist[v])
		lo[v], hi[v] = pos-1, pos
	}
	counts := make([]uint16, n)
	var cands []uint32
	for len(cands) < g {
		progressed := false
		for v := range om.voters {
			voter := &om.voters[v]
			// Advance one step in the direction whose next entry
			// is closer in distance to the query's position.
			var pick int
			switch {
			case lo[v] < 0 && hi[v] >= n:
				continue
			case lo[v] < 0:
				pick = hi[v]
				hi[v]++
			case hi[v] >= n:
				pick = lo[v]
				lo[v]--
			default:
				// Both directions available: take the entry
				// whose pivot distance is nearer the query's.
				qd := qdist[v]
				if qd-voter.dists[lo[v]] <= voter.dists[hi[v]]-qd {
					pick = lo[v]
					lo[v]--
				} else {
					pick = hi[v]
					hi[v]++
				}
			}
			progressed = true
			id := voter.ids[pick]
			counts[id]++
			if int(counts[id]) == need {
				cands = append(cands, id)
				if len(cands) >= g {
					break
				}
			}
		}
		if !progressed {
			break
		}
	}
	return refine(om.sp, om.data, query, cands, k)
}
