// Package obs is the dependency-free observability core of the serving
// stack: atomic counters and gauges, lock-free log-bucketed latency
// histograms with an allocation-free Record, a process-wide registry, and a
// Prometheus-text-format exposition writer (served as GET /metrics by both
// permserve and permrouter).
//
// The design constraint that shapes everything here is the repository's
// zero-allocation query regime: instrumentation sits directly on the warm
// search path, so every warm-path operation — Counter.Add, Gauge.Set,
// Histogram.Record, QueryTrace field accumulation — is a plain atomic (or
// plain store) on memory allocated once at registration time. Allocation is
// confined to registration (New*/With) and exposition (WriteText), both cold.
//
// Histograms are HDR-style log-linear: values below 2^subBits land in exact
// unit buckets, larger values in one of 2^subBits sub-buckets per power of
// two, bounding the relative quantile error at 2^-subBits (6.25%). A
// histogram is a fixed array of atomic buckets — Record is one AddInt64 at
// a computed index, concurrent Records never contend on a lock, and
// Snapshot is a racy-but-monotone copy (each bucket individually atomic),
// which is exactly the consistency /metrics scraping needs.
package obs

import (
	"fmt"
	"io"
	"math"
	"math/bits"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n (negative n is ignored: counters are
// monotone by contract).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value.
type Gauge struct{ v atomic.Int64 }

// Set stores the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the value by n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Histogram bucket layout: subBits sub-buckets per power of two.
const (
	subBits = 4
	subMask = 1<<subBits - 1
	// NumBuckets is the fixed bucket count of every Histogram: exact unit
	// buckets for values < 2^subBits, then (63-subBits) blocks of 2^subBits
	// sub-buckets covering the full non-negative int64 range.
	NumBuckets = (63 - subBits + 1) << subBits
)

// bucketOf maps a non-negative value to its bucket index.
func bucketOf(v int64) int {
	u := uint64(v)
	if u < 1<<subBits {
		return int(u)
	}
	e := bits.Len64(u) - 1 // position of the top set bit; >= subBits
	return ((e - subBits + 1) << subBits) + int((u>>(uint(e)-subBits))&subMask)
}

// BucketLow returns the smallest value mapping to bucket i.
func BucketLow(i int) int64 {
	if i < 1<<subBits {
		return int64(i)
	}
	e := uint(i>>subBits + subBits - 1)
	return int64(1)<<e | int64(i&subMask)<<(e-subBits)
}

// BucketHigh returns the largest value mapping to bucket i.
func BucketHigh(i int) int64 {
	if i >= NumBuckets-1 {
		return math.MaxInt64
	}
	return BucketLow(i+1) - 1
}

// Histogram is a lock-free log-bucketed distribution of int64 observations
// (canonically nanoseconds; the owning family's scale converts at
// exposition time). The zero value is ready to use. Record performs zero
// allocations and never blocks; Snapshot may run concurrently with Records.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [NumBuckets]atomic.Int64
}

// Record adds one observation. Negative values clamp to zero (a latency can
// read negative only through clock trouble; losing the sample would skew
// the count the count/sum invariants depend on).
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[bucketOf(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Since records the nanoseconds elapsed from t0 to now.
func (h *Histogram) Since(t0 time.Time) { h.Record(time.Since(t0).Nanoseconds()) }

// Count returns the number of recorded observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// HistSnapshot is a point-in-time copy of a histogram, safe to read at
// leisure. Counts are copied bucket-atomically: a snapshot taken under
// concurrent Records sees each bucket at some moment during the copy
// (counts never decrease), so derived quantiles are valid for some state
// the histogram passed through.
type HistSnapshot struct {
	Count   int64
	Sum     int64
	Buckets [NumBuckets]int64
}

// Snapshot copies the histogram into s (allocation-free for a caller-owned
// snapshot). Count is recomputed from the copied buckets so the
// quantile walk can never read past its own total.
func (h *Histogram) Snapshot(s *HistSnapshot) {
	s.Sum = h.sum.Load()
	var total int64
	for i := range h.buckets {
		c := h.buckets[i].Load()
		s.Buckets[i] = c
		total += c
	}
	s.Count = total
}

// Quantile returns an upper bound on the q-quantile (q in [0, 1]) of the
// recorded values: the high edge of the bucket the rank falls in, so the
// estimate is never below the true quantile and at most 2^-subBits above
// it (relatively). Returns 0 when the snapshot is empty.
func (s *HistSnapshot) Quantile(q float64) int64 {
	if s.Count <= 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := range s.Buckets {
		cum += s.Buckets[i]
		if cum >= rank {
			return BucketHigh(i)
		}
	}
	return BucketHigh(NumBuckets - 1)
}

// Metric families and the registry.

const (
	kindCounter   = "counter"
	kindGauge     = "gauge"
	kindHistogram = "histogram"
)

// child is one labeled instance of a family; exactly one of the metric
// fields is set, matching the family kind.
type child struct {
	vals []string
	c    *Counter
	g    *Gauge
	gf   func() float64
	h    *Histogram
}

// Family is one named metric family: a kind, a help string, a label schema,
// and the labeled children. Children are resolved once at setup time
// (With); the returned handles are what the hot path touches.
type Family struct {
	name   string
	help   string
	kind   string
	labels []string
	scale  float64 // histogram exposition multiplier (e.g. 1e-9: ns -> s)

	mu       sync.Mutex
	byKey    map[string]*child
	children []*child
}

// Name returns the family name.
func (f *Family) Name() string { return f.name }

// labelKey joins label values into a map key. \x00 cannot appear in a
// label value that survives exposition escaping, so the join is injective.
func labelKey(vals []string) string { return strings.Join(vals, "\x00") }

// get returns (creating if needed) the child for the given label values.
func (f *Family) get(vals []string) *child {
	if len(vals) != len(f.labels) {
		panic(fmt.Sprintf("obs: family %s has %d labels, got %d values", f.name, len(f.labels), len(vals)))
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	key := labelKey(vals)
	if ch, ok := f.byKey[key]; ok {
		return ch
	}
	ch := &child{vals: append([]string(nil), vals...)}
	switch f.kind {
	case kindCounter:
		ch.c = &Counter{}
	case kindGauge:
		ch.g = &Gauge{}
	case kindHistogram:
		ch.h = &Histogram{}
	}
	if f.byKey == nil {
		f.byKey = map[string]*child{}
	}
	f.byKey[key] = ch
	f.children = append(f.children, ch)
	return ch
}

// CounterVec is a counter family handle.
type CounterVec struct{ f *Family }

// With returns the counter for the given label values, creating it on
// first use. Resolve once at setup; the returned handle is hot-path safe.
func (v CounterVec) With(vals ...string) *Counter { return v.f.get(vals).c }

// GaugeVec is a gauge family handle.
type GaugeVec struct{ f *Family }

// With returns the gauge for the given label values.
func (v GaugeVec) With(vals ...string) *Gauge { return v.f.get(vals).g }

// HistogramVec is a histogram family handle.
type HistogramVec struct{ f *Family }

// With returns the histogram for the given label values.
func (v HistogramVec) With(vals ...string) *Histogram { return v.f.get(vals).h }

// Registry is a set of metric families with a text-exposition writer. The
// zero value is not usable; create with NewRegistry. Registration is
// idempotent: re-registering a name with the same kind and label schema
// returns the existing family (so a reload or a second server over the
// same registry cannot double-register), while a conflicting
// re-registration panics — a name collision is a programming error that
// would silently corrupt the exposition otherwise.
type Registry struct {
	mu     sync.Mutex
	byName map[string]*Family
	fams   []*Family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]*Family{}}
}

// std is the process-wide default registry.
var std = NewRegistry()

// Default returns the process-wide registry. Daemons that own their
// process (permserve, permrouter) use it; tests and libraries create
// private registries so parallel instances cannot collide.
func Default() *Registry { return std }

// family registers (or re-resolves) a family.
func (r *Registry) family(name, help, kind string, scale float64, labels []string) *Family {
	if name == "" || !validMetricName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !validLabelName(l) {
			panic(fmt.Sprintf("obs: invalid label name %q in family %s", l, name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.byName[name]; ok {
		if f.kind != kind || len(f.labels) != len(labels) {
			panic(fmt.Sprintf("obs: family %s re-registered as %s(%v), was %s(%v)", name, kind, labels, f.kind, f.labels))
		}
		for i := range labels {
			if f.labels[i] != labels[i] {
				panic(fmt.Sprintf("obs: family %s re-registered with labels %v, was %v", name, labels, f.labels))
			}
		}
		return f
	}
	f := &Family{name: name, help: help, kind: kind, scale: scale, labels: append([]string(nil), labels...)}
	r.byName[name] = f
	r.fams = append(r.fams, f)
	return f
}

// Counter registers (or re-resolves) a counter family.
func (r *Registry) Counter(name, help string, labels ...string) CounterVec {
	return CounterVec{r.family(name, help, kindCounter, 1, labels)}
}

// Gauge registers (or re-resolves) a gauge family.
func (r *Registry) Gauge(name, help string, labels ...string) GaugeVec {
	return GaugeVec{r.family(name, help, kindGauge, 1, labels)}
}

// GaugeFunc registers an unlabeled gauge whose value is computed at
// exposition time — runtime observables (goroutines, heap bytes, uptime)
// that would be stale as stored values.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.family(name, help, kindGauge, 1, nil)
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.children) == 0 {
		f.children = append(f.children, &child{gf: fn})
		f.byKey = map[string]*child{"": f.children[0]}
	} else {
		f.children[0].gf = fn
	}
}

// Histogram registers (or re-resolves) a histogram family. scale multiplies
// recorded values at exposition time: latency histograms record nanoseconds
// and register with scale 1e-9 so /metrics speaks seconds, the Prometheus
// base unit.
func (r *Registry) Histogram(name, help string, scale float64, labels ...string) HistogramVec {
	if scale <= 0 {
		scale = 1
	}
	return HistogramVec{r.family(name, help, kindHistogram, scale, labels)}
}

// Families returns the registered family names, sorted.
func (r *Registry) Families() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.fams))
	for _, f := range r.fams {
		names = append(names, f.name)
	}
	sort.Strings(names)
	return names
}

// WriteText writes the registry in Prometheus text exposition format
// (version 0.0.4): # HELP and # TYPE per family, then one sample line per
// child (histograms expand to _bucket/_sum/_count). Families are written
// in sorted name order so the output is deterministic.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	fams := append([]*Family(nil), r.fams...)
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	bw := &errWriter{w: w}
	for _, f := range fams {
		f.writeText(bw)
		if bw.err != nil {
			return bw.err
		}
	}
	return bw.err
}

// errWriter latches the first write error so exposition code stays linear.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) WriteString(s string) {
	if e.err == nil {
		_, e.err = io.WriteString(e.w, s)
	}
}

func (f *Family) writeText(w *errWriter) {
	f.mu.Lock()
	children := append([]*child(nil), f.children...)
	f.mu.Unlock()
	if len(children) == 0 {
		return
	}
	if f.help != "" {
		w.WriteString("# HELP " + f.name + " " + escapeHelp(f.help) + "\n")
	}
	w.WriteString("# TYPE " + f.name + " " + f.kind + "\n")
	for _, ch := range children {
		switch f.kind {
		case kindCounter:
			w.WriteString(f.name + f.labelString(ch.vals, "", 0) + " " + formatInt(ch.c.Load()) + "\n")
		case kindGauge:
			if ch.gf != nil {
				w.WriteString(f.name + f.labelString(ch.vals, "", 0) + " " + formatFloat(ch.gf()) + "\n")
			} else {
				w.WriteString(f.name + f.labelString(ch.vals, "", 0) + " " + formatInt(ch.g.Load()) + "\n")
			}
		case kindHistogram:
			f.writeHistogram(w, ch)
		}
	}
}

// writeHistogram expands one histogram child into cumulative _bucket lines
// (only buckets that hold observations get an edge — the fine internal
// resolution would otherwise emit hundreds of empty lines), +Inf, _sum and
// _count.
func (f *Family) writeHistogram(w *errWriter, ch *child) {
	var snap HistSnapshot
	ch.h.Snapshot(&snap)
	var cum int64
	for i, c := range snap.Buckets {
		if c == 0 {
			continue
		}
		cum += c
		if i == NumBuckets-1 {
			break // the top bucket's edge is +Inf, written below
		}
		le := formatFloat(float64(BucketHigh(i)) * f.scale)
		w.WriteString(f.name + "_bucket" + f.labelString(ch.vals, "le", le) + " " + formatInt(cum) + "\n")
	}
	w.WriteString(f.name + "_bucket" + f.labelString(ch.vals, "le", "+Inf") + " " + formatInt(snap.Count) + "\n")
	w.WriteString(f.name + "_sum" + f.labelString(ch.vals, "", 0) + " " + formatFloat(float64(snap.Sum)*f.scale) + "\n")
	w.WriteString(f.name + "_count" + f.labelString(ch.vals, "", 0) + " " + formatInt(snap.Count) + "\n")
}

// labelString renders {k="v",...}; extraK/extraV append one more pair (the
// histogram "le" edge). Returns "" when there are no pairs at all.
func (f *Family) labelString(vals []string, extraK string, extraV any) string {
	if len(vals) == 0 && extraK == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range f.labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(vals[i]))
		b.WriteByte('"')
	}
	if extraK != "" {
		if len(f.labels) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraK)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(fmt.Sprint(extraV)))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func formatInt(v int64) string { return strconv.FormatInt(v, 10) }

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// escapeLabel escapes a label value per the exposition format: backslash,
// double quote, and newline.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

// escapeHelp escapes a help string: backslash and newline (quotes are legal
// in help text).
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// validMetricName checks [a-zA-Z_:][a-zA-Z0-9_:]*.
func validMetricName(s string) bool {
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return s != ""
}

// validLabelName checks [a-zA-Z_][a-zA-Z0-9_]*.
func validLabelName(s string) bool {
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return s != ""
}
