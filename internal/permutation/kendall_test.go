package permutation

import (
	"math/rand"
	"testing"
)

// naiveKendall counts disagreeing pairs in O(m^2).
func naiveKendall(a, b []int32) float64 {
	var c int
	for i := 0; i < len(a); i++ {
		for j := i + 1; j < len(a); j++ {
			// Pivot i vs pivot j: do a and b order them differently?
			if (a[i] < a[j]) != (b[i] < b[j]) {
				c++
			}
		}
	}
	return float64(c)
}

func TestKendallKnownValues(t *testing.T) {
	id := []int32{0, 1, 2, 3}
	if got := KendallTau(id, id); got != 0 {
		t.Fatalf("KendallTau(id,id) = %v", got)
	}
	// One adjacent swap = exactly one inversion.
	swap := []int32{1, 0, 2, 3}
	if got := KendallTau(id, swap); got != 1 {
		t.Fatalf("adjacent swap = %v, want 1", got)
	}
	// Full reversal of m elements = m(m-1)/2 inversions.
	rev := []int32{3, 2, 1, 0}
	if got := KendallTau(id, rev); got != 6 {
		t.Fatalf("reversal = %v, want 6", got)
	}
	// Tiny inputs.
	if got := KendallTau(nil, nil); got != 0 {
		t.Fatalf("empty = %v", got)
	}
	if got := KendallTau([]int32{0}, []int32{0}); got != 0 {
		t.Fatalf("singleton = %v", got)
	}
}

func TestKendallMatchesNaive(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		n := 2 + r.Intn(40)
		a, b := randPerm(r, n), randPerm(r, n)
		if got, want := KendallTau(a, b), naiveKendall(a, b); got != want {
			t.Fatalf("KendallTau = %v, naive = %v (a=%v b=%v)", got, want, a, b)
		}
	}
}

func TestKendallSymmetric(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for trial := 0; trial < 100; trial++ {
		n := 2 + r.Intn(60)
		a, b := randPerm(r, n), randPerm(r, n)
		if KendallTau(a, b) != KendallTau(b, a) {
			t.Fatal("Kendall tau asymmetric")
		}
	}
}

func TestDiaconisInequality(t *testing.T) {
	// Footrule/2 <= Kendall <= Footrule for all permutation pairs.
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		n := 2 + r.Intn(80)
		a, b := randPerm(r, n), randPerm(r, n)
		f := Footrule(a, b)
		k := KendallTau(a, b)
		if k < f/2 || k > f {
			t.Fatalf("Diaconis violated: footrule=%v kendall=%v", f, k)
		}
	}
}

func TestKendallTriangle(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for trial := 0; trial < 100; trial++ {
		n := 2 + r.Intn(30)
		a, b, c := randPerm(r, n), randPerm(r, n), randPerm(r, n)
		if KendallTau(a, c) > KendallTau(a, b)+KendallTau(b, c) {
			t.Fatal("Kendall triangle inequality violated")
		}
	}
}

func TestKendallPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	KendallTau([]int32{0}, []int32{0, 1})
}

func TestKendallSpace(t *testing.T) {
	sp := KendallSpace{}
	if !sp.Properties().Metric || sp.Name() != "kendall-tau" {
		t.Fatal("KendallSpace metadata wrong")
	}
	if sp.Distance([]int32{0, 1}, []int32{1, 0}) != 1 {
		t.Fatal("KendallSpace distance wrong")
	}
}

func BenchmarkKendall256(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	x, y := randPerm(r, 256), randPerm(r, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		KendallTau(x, y)
	}
}
