// Batchsearch: answer a slab of queries concurrently through the batch
// engine and check the answers are identical to a serial Search loop.
//
//	go run ./examples/batchsearch
package main

import (
	"fmt"
	"log"
	"reflect"
	"time"

	permsearch "repro"
	"repro/internal/dataset"
)

func main() {
	// 1. Data: synthetic 128-d SIFT-like descriptors, last 200 held out
	// as the query batch.
	const n, q = 20000, 200
	data := dataset.SIFT(42, n+q)
	db, queries := data[:n], data[n:]

	// 2. Build a NAPP index (any permsearch index works here).
	idx, err := permsearch.NewNAPP[[]float32](permsearch.L2{}, db, permsearch.NAPPOptions{})
	if err != nil {
		log.Fatal(err)
	}

	// 3. Serial reference loop vs the batch engine.
	start := time.Now()
	serial := make([][]permsearch.Neighbor, len(queries))
	for i, qu := range queries {
		serial[i] = idx.Search(qu, 10)
	}
	serialTime := time.Since(start)

	start = time.Now()
	batch := permsearch.SearchBatch[[]float32](idx, queries, 10)
	batchTime := time.Since(start)

	// 4. Parallelism never changes answers, only wall-clock time.
	if !reflect.DeepEqual(serial, batch) {
		log.Fatal("batch results differ from the serial loop")
	}
	fmt.Printf("%d queries, 10-NN, results identical\n", len(queries))
	fmt.Printf("serial loop:  %8.2fms (%.0f qps)\n",
		float64(serialTime.Microseconds())/1e3, float64(len(queries))/serialTime.Seconds())
	fmt.Printf("SearchBatch:  %8.2fms (%.0f qps)\n",
		float64(batchTime.Microseconds())/1e3, float64(len(queries))/batchTime.Seconds())

	// A bounded pool, e.g. to leave cores free for other work:
	four := permsearch.SearchBatchWorkers[[]float32](idx, queries, 10, 4)
	if !reflect.DeepEqual(serial, four) {
		log.Fatal("bounded-pool results differ from the serial loop")
	}
	fmt.Println("bounded pool (4 workers): results identical")
}
