package indextest

import (
	"repro/internal/dataset"
	"repro/internal/space"
)

// The shared test corpora: small, deterministic synthetic data sets split
// into an indexed db and held-out queries, one per object family the
// repository's spaces cover. They are exported so suites outside this
// package — the sharded-router property tests in internal/router, most
// prominently — exercise exactly the same data the conformance and
// roundtrip suites run on, instead of growing drifting copies.

const (
	// CorpusSize and CorpusQueries are the db/query split sizes of every
	// exported corpus.
	CorpusSize    = 300
	CorpusQueries = 12
	// CorpusSeed seeds the generators (and the kind builders' sampling).
	CorpusSeed = 7
)

// Private aliases keep the historical names used throughout this package's
// own tests.
const (
	dbSize   = CorpusSize
	querySz  = CorpusQueries
	kindSeed = CorpusSeed
)

// DenseCorpus returns the SIFT-like dense-vector corpus (L2) split into db
// and queries.
func DenseCorpus() (db, queries [][]float32) {
	all := dataset.SIFT(CorpusSeed, CorpusSize+CorpusQueries)
	return all[:CorpusSize], all[CorpusSize:]
}

// DNACorpus returns the byte-string corpus used under (normalized)
// Levenshtein distances.
func DNACorpus() (db, queries [][]byte) {
	all := dataset.DNA(CorpusSeed, CorpusSize+CorpusQueries, dataset.DNAOptions{})
	return all[:CorpusSize], all[CorpusSize:]
}

// HistoCorpus returns the topic-histogram corpus used under the asymmetric
// KL divergence (and JS).
func HistoCorpus() (db, queries []space.Histogram) {
	all := dataset.WikiLDA(CorpusSeed, CorpusSize+CorpusQueries, 8)
	return all[:CorpusSize], all[CorpusSize:]
}
