package core

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/index"
	"repro/internal/obs"
	"repro/internal/permutation"
	"repro/internal/scratch"
	"repro/internal/space"
	"repro/internal/topk"
	"repro/internal/vptree"
)

// PermVPTreeOptions configures NewPermVPTree.
type PermVPTreeOptions struct {
	// NumPivots is the permutation length m. Default 128.
	NumPivots int
	// Gamma is the candidate fraction retrieved from the permutation
	// space before refinement. Default 0.02.
	Gamma float64
	// Alpha stretches VP-tree pruning in the permutation space
	// (sqrt-rho is a metric, so 1 = exact permutation-space k-NN).
	// Default 1.
	Alpha float64
	// BucketSize is the VP-tree leaf capacity. Default 32.
	BucketSize int
	// Seed drives pivot sampling and tree construction.
	Seed int64
}

func (o *PermVPTreeOptions) defaults() {
	if o.NumPivots <= 0 {
		o.NumPivots = 128
	}
	if o.Gamma <= 0 {
		o.Gamma = 0.02
	}
	if o.Alpha <= 0 {
		o.Alpha = 1
	}
	if o.BucketSize <= 0 {
		o.BucketSize = 32
	}
}

// PermVPTree indexes the permutations themselves in a VP-tree, the approach
// of Figueroa & Fredriksson (§2.3): Spearman's rho is a monotone transform
// (squaring) of the Euclidean distance between rank vectors, so gamma-NN
// retrieval in the permutation space can use a metric tree over sqrt(rho)
// instead of a linear scan. The paper found this either slower than a
// VP-tree in the original space or slower than NAPP — reproduced in the
// ablation benches.
type PermVPTree[T any] struct {
	sp      space.Space[T]
	data    []T
	pivots  *permutation.Pivots[T]
	perms   [][]int32
	tree    *vptree.Tree[[]int32]
	opts    PermVPTreeOptions
	scratch scratch.Pool[pvtScratch]
}

// pvtScratch is the per-query state of one permutation-VP-tree search: the
// query permutation buffers, the candidate id list, and the refine queue.
// The embedded metric tree's own traversal still allocates per call; making
// vptree scratch-aware is future work.
type pvtScratch struct {
	perm  permutation.Scratch
	ids   []uint32
	queue topk.Queue
}

// NewPermVPTree computes all permutations and builds a VP-tree over them.
func NewPermVPTree[T any](sp space.Space[T], data []T, opts PermVPTreeOptions) (*PermVPTree[T], error) {
	opts.defaults()
	if len(data) == 0 {
		return nil, fmt.Errorf("core: empty data set")
	}
	if opts.NumPivots > len(data) {
		opts.NumPivots = len(data)
	}
	r := rand.New(rand.NewSource(opts.Seed))
	pv, err := permutation.Sample(r, sp, data, opts.NumPivots)
	if err != nil {
		return nil, fmt.Errorf("core: sampling pivots: %w", err)
	}
	flat := computePermutations(pv, data)
	m := pv.M()
	perms := make([][]int32, len(data))
	for i := range perms {
		perms[i] = flat[i*m : (i+1)*m]
	}
	tree, err := vptree.New[[]int32](permutation.RhoMetric{}, perms, vptree.Options{
		BucketSize: opts.BucketSize,
		AlphaLeft:  opts.Alpha,
		AlphaRight: opts.Alpha,
		Seed:       opts.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("core: building permutation VP-tree: %w", err)
	}
	return &PermVPTree[T]{sp: sp, data: data, pivots: pv, perms: perms, tree: tree, opts: opts}, nil
}

// Name implements index.Index.
func (pt *PermVPTree[T]) Name() string { return "perm-vptree" }

// Stats implements index.Sized.
func (pt *PermVPTree[T]) Stats() index.Stats {
	ts := pt.tree.Stats()
	return index.Stats{
		Bytes:          ts.Bytes + int64(len(pt.data))*int64(pt.pivots.M())*4,
		BuildDistances: int64(len(pt.data)) * int64(pt.pivots.M()),
	}
}

// Search implements index.Index.
func (pt *PermVPTree[T]) Search(query T, k int) []topk.Neighbor {
	return pt.SearchAppend(nil, query, k)
}

// SearchAppend answers like Search but appends the results to dst, reusing
// pooled scratch for the query permutation and the refine stage.
func (pt *PermVPTree[T]) SearchAppend(dst []topk.Neighbor, query T, k int) []topk.Neighbor {
	s := pt.scratch.Get()
	defer pt.scratch.Put(s)
	return pt.search(s, nil, dst, query, k)
}

// NewSearcher implements index.SearcherProvider.
func (pt *PermVPTree[T]) NewSearcher() index.Searcher[T] {
	return &searcher[T, pvtScratch]{fn: pt.search}
}

// search is the scratch-threaded hot path shared by Search, SearchAppend
// and Searchers. The filter stage here includes the VP-tree traversal
// (which allocates internally — the tree predates the scratch regime and
// is outside the zero-alloc guards).
func (pt *PermVPTree[T]) search(s *pvtScratch, tr *obs.QueryTrace, dst []topk.Neighbor, query T, k int) []topk.Neighbor {
	if k <= 0 {
		return dst
	}
	var t0 time.Time
	if tr != nil {
		t0 = time.Now()
	}
	qperm := pt.pivots.PermutationWith(&s.perm, query)
	g := gammaCount(pt.opts.Gamma, len(pt.data), k)
	cands := pt.tree.Search(qperm, g)
	ids := s.ids[:0]
	for _, c := range cands {
		ids = append(ids, c.ID)
	}
	s.ids = ids
	if tr != nil {
		tr.FilterCandidates += int64(len(ids))
		obs.AddSince(&tr.FilterNs, t0)
	}
	return refineInto(pt.sp, pt.data, query, ids, k, &s.queue, dst, tr)
}
