package permutation

import "repro/internal/vecmath"

// Quantized is a nibble-packed 4-bit quantized permutation prefix: lane i
// (4 bits, low lanes first) holds the rank of pivot i compressed from
// [0, m) down to [0, 16). Where Binary keeps one bit of rank information
// per pivot, Quantized keeps four for a prefix of the pivots, so the
// Footrule distance between two quantized prefixes tracks the full rank
// distance much more closely than Hamming does — at 2x the footprint of a
// same-length binary sketch and still scanned word-wise, via the SWAR
// absolute-difference kernel in internal/vecmath rather than XOR+popcount.
type Quantized []uint64

// QuantizedWords returns the number of 64-bit words needed for a prefix of
// l pivots (16 nibble lanes per word).
func QuantizedWords(l int) int { return (l + 15) / 16 }

// Quantize packs the first prefixLen ranks of perm into dst: lane i holds
// perm[i]*16/m where m = len(perm), mapping ranks 0..m-1 onto 0..15 in
// equal-width buckets (exact when m is a multiple of 16; m >= 16 uses all
// 16 levels). Unused tail lanes of the last word are zeroed, as NibbleL1
// requires. dst may be nil; it is grown as needed and returned.
// It panics if prefixLen is negative or exceeds len(perm).
func Quantize(perm []int32, prefixLen int, dst Quantized) Quantized {
	if prefixLen < 0 || prefixLen > len(perm) {
		panic("permutation: quantized prefix length out of range")
	}
	m := len(perm)
	words := QuantizedWords(prefixLen)
	if cap(dst) < words {
		dst = make(Quantized, words)
	}
	dst = dst[:words]
	for i := range dst {
		dst[i] = 0
	}
	for i := 0; i < prefixLen; i++ {
		q := uint64(perm[i]) * 16 / uint64(m) // perm[i] <= m-1, so q <= 15
		dst[i/16] |= q << (4 * (uint(i) % 16))
	}
	return dst
}

// NibbleL1 returns the L1 (Footrule) distance between two quantized
// prefixes of equal length, computed 16 lanes at a time by the SWAR word
// kernel. It panics if the lengths differ.
func NibbleL1(a, b Quantized) int { return vecmath.NibbleL1(a, b) }

// Nibble returns the 4-bit quantized rank in lane i.
func (q Quantized) Nibble(i int) uint8 {
	return uint8(q[i/16]>>(4*(uint(i)%16))) & 0xF
}

// Clone returns a copy of q.
func (q Quantized) Clone() Quantized {
	out := make(Quantized, len(q))
	copy(out, q)
	return out
}
