// Package projection implements classic Gaussian random projections, the
// baseline that Figures 2 and 3 of the paper compare permutation-based
// projections against. Random projections approximately preserve inner
// products and distances (Johnson-Lindenstrauss); the paper contrasts their
// near-linear original-vs-projected distance relationship with the noisier
// permutation mappings.
package projection

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/space"
	"repro/internal/vecmath"
)

// Dense is a dense Gaussian random projection matrix R^in -> R^out.
type Dense struct {
	mat     []float32 // out x in, row-major
	in, out int
}

// NewDense samples an out x in Gaussian matrix with entries N(0, 1/out), so
// projected L2 distances are unbiased estimates of the originals.
func NewDense(r *rand.Rand, in, out int) (*Dense, error) {
	if in <= 0 || out <= 0 {
		return nil, fmt.Errorf("projection: dimensions must be positive (in=%d out=%d)", in, out)
	}
	p := &Dense{mat: make([]float32, in*out), in: in, out: out}
	scale := 1 / math.Sqrt(float64(out))
	for i := range p.mat {
		p.mat[i] = float32(r.NormFloat64() * scale)
	}
	return p, nil
}

// Out returns the target dimensionality.
func (p *Dense) Out() int { return p.out }

// Project maps v (length in) to a new vector of length out.
func (p *Dense) Project(v []float32) []float32 {
	if len(v) != p.in {
		panic(fmt.Sprintf("projection: vector has dim %d, want %d", len(v), p.in))
	}
	out := make([]float32, p.out)
	for o := 0; o < p.out; o++ {
		row := p.mat[o*p.in : (o+1)*p.in]
		out[o] = float32(vecmath.Dot(row, v))
	}
	return out
}

// Sparse projects sparse vectors without materializing the full projection
// matrix: entry (o, i) of the implicit Gaussian matrix is derived
// deterministically from (seed, o, i) with a splitmix64 hash and Box-Muller.
// This keeps memory independent of the vocabulary size (10^5 for
// Wiki-sparse).
type Sparse struct {
	seed int64
	out  int
}

// NewSparse creates a hashing Gaussian projection into out dimensions.
func NewSparse(seed int64, out int) (*Sparse, error) {
	if out <= 0 {
		return nil, fmt.Errorf("projection: out must be positive, got %d", out)
	}
	return &Sparse{seed: seed, out: out}, nil
}

// Out returns the target dimensionality.
func (p *Sparse) Out() int { return p.out }

// Project maps a sparse vector to a dense vector of length out.
func (p *Sparse) Project(v space.SparseVector) []float32 {
	out := make([]float32, p.out)
	scale := 1 / math.Sqrt(float64(p.out))
	for k, idx := range v.Idx {
		val := float64(v.Val[k])
		for o := 0; o < p.out; o++ {
			g := gaussAt(uint64(p.seed), uint64(idx), uint64(o))
			out[o] += float32(val * g * scale)
		}
	}
	return out
}

// gaussAt returns a deterministic standard normal for cell (i, o).
func gaussAt(seed, i, o uint64) float64 {
	u1 := toUniform(splitmix64(seed ^ mix(i, o)))
	u2 := toUniform(splitmix64(seed ^ mix(o+0x9e3779b97f4a7c15, i)))
	if u1 < 1e-300 {
		u1 = 1e-300
	}
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

func mix(a, b uint64) uint64 {
	return splitmix64(a*0x9e3779b97f4a7c15 + b + 0x7f4a7c15)
}

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func toUniform(x uint64) float64 {
	return float64(x>>11) / float64(1<<53)
}
