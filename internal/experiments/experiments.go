// Package experiments regenerates every table and figure of the paper's
// evaluation (§3) over the synthetic data sets: Table 1 (data set summary),
// Table 2 (index size and creation time), Figure 2 (original vs projected
// distances), Figure 3 (recall vs fraction of candidates), and Figure 4
// (improvement in efficiency vs recall). The cmd/ binaries and the top-level
// benchmarks are thin wrappers around this package.
//
// Each of the paper's nine data set / distance combinations is exposed as a
// Runner keyed by name:
//
//	sift cophir imagenet wiki-sparse wiki-8-kl wiki-8-js
//	wiki-128-kl wiki-128-js dna
package experiments

import (
	"fmt"
	"io"
	"time"
)

// Config scales an experiment. The paper runs 1-5M points with 200-1000
// queries and five splits on a 3.6GHz Xeon; the defaults here target a
// two-core container. All results scale with N; the *shape* of the curves
// is what the reproduction checks.
type Config struct {
	// N is the number of data points (queries are drawn from them).
	N int
	// Queries is the number of held-out query points per split.
	Queries int
	// Folds is the number of random splits (the paper uses 5).
	Folds int
	// K is the number of neighbors (the paper evaluates 10-NN).
	K int
	// Seed makes the whole experiment deterministic.
	Seed int64
	// Workers is the query-path parallelism: evaluation queries are
	// fanned out over this many goroutines via the batch engine
	// (internal/engine). 0 or 1 runs the paper's single-thread protocol;
	// results are identical either way, only the timing columns change
	// (per-query latency is then measured inside the workers and a
	// wall-clock QPS is reported). Negative means GOMAXPROCS.
	Workers int
	// Shards, when > 1, evaluates every method through an in-process
	// scatter-gather router (internal/router.Local) over this many
	// deterministic shard corpora instead of one monolithic index: the
	// fold's db is partitioned, one index is built per shard, and every
	// query fans out and merges — the same decomposition the permrouter/
	// permserve serving tier runs across processes. Results keep true
	// distances and corpus-global ids; with full-candidate settings they
	// are identical to the unsharded run. Incompatible with
	// SaveIndexDir/LoadIndexDir (shard indexes are built per run).
	Shards int
	// ShardBy names the partitioner ("hash" when empty, or
	// "round-robin"); see internal/shard.
	ShardBy string
	// SaveIndexDir, when set, persists every index built during the run
	// into this directory (one file per dataset/method/fold, in the
	// internal/codec format). LoadIndexDir, when set, warm-starts from
	// the matching file instead of building when it exists — the
	// build-time column then reports the load time. Point both at the
	// same directory to build once and skip construction on every later
	// run. File names are keyed by everything that determines the fold's
	// data split (dataset, method, seed, N, query count, fold count), so
	// a run with different settings misses the stale files and simply
	// rebuilds; a present-but-corrupt file fails the run loudly.
	SaveIndexDir string
	LoadIndexDir string
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.N <= 0 {
		c.N = 5000
	}
	if c.Queries <= 0 {
		c.Queries = 100
	}
	if c.Queries >= c.N {
		c.Queries = c.N / 10
	}
	if c.Folds <= 0 {
		c.Folds = 1
	}
	if c.K <= 0 {
		c.K = 10
	}
	return c
}

// Runner regenerates the experiments for one data set / distance combo.
type Runner interface {
	// Name is the registry key, e.g. "wiki-8-kl".
	Name() string
	// Distance is the distance function's report name.
	Distance() string
	// Dims is the dimensionality column of Table 1 ("N/A" when not
	// applicable).
	Dims() string
	// Table1 writes this data set's Table 1 row.
	Table1(cfg Config, w io.Writer) error
	// Table2 writes index size/creation-time rows (Table 2).
	Table2(cfg Config, w io.Writer) error
	// Figure2 writes (stratum, kind, original, projected) sample pairs.
	Figure2(cfg Config, projDim, pairs int, w io.Writer) error
	// Figure3 writes (kind, dim, recall, fraction) curves.
	Figure3(cfg Config, dims []int, w io.Writer) error
	// Figure4 writes (method, params, recall, improvement, ...) rows.
	Figure4(cfg Config, w io.Writer) error
	// RunMethods is Figure4 restricted to the named methods (nil = all);
	// cmd/annbench uses it to benchmark a single method.
	RunMethods(cfg Config, methods []string, w io.Writer) error
	// Methods lists the method names available for this data set.
	Methods(cfg Config) []string
}

// registry holds all combos in a fixed order.
var registry []Runner

// Get returns the runner registered under name.
func Get(name string) (Runner, bool) {
	for _, r := range registry {
		if r.Name() == name {
			return r, true
		}
	}
	return nil, false
}

// Names lists all registered combos in registration (paper Table 1) order.
func Names() []string {
	out := make([]string, len(registry))
	for i, r := range registry {
		out[i] = r.Name()
	}
	return out
}

// tsv writes one tab-separated row.
func tsv(w io.Writer, cols ...interface{}) error {
	for i, c := range cols {
		if i > 0 {
			if _, err := fmt.Fprint(w, "\t"); err != nil {
				return err
			}
		}
		switch v := c.(type) {
		case float64:
			if _, err := fmt.Fprintf(w, "%.4g", v); err != nil {
				return err
			}
		case time.Duration:
			if _, err := fmt.Fprintf(w, "%.3fms", float64(v)/float64(time.Millisecond)); err != nil {
				return err
			}
		default:
			if _, err := fmt.Fprint(w, v); err != nil {
				return err
			}
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}
