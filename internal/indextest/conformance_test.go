package indextest

import (
	"testing"

	"repro/internal/space"
)

// TestConformance_Dense runs the behavioral contract over every index kind
// (including the dense-only MPLSH) on SIFT-like vectors under L2.
func TestConformance_Dense(t *testing.T) {
	db, queries := denseCorpus()
	sp := space.L2{}
	// Probe with held-out points and with indexed points themselves (the
	// exact-match edge: distance zero must surface first for exact and
	// near-exact methods without tripping any invariant).
	queries = append(queries, db[0], db[len(db)/2])
	for _, kc := range denseKinds(sp, db) {
		t.Run(kc.kind, func(t *testing.T) {
			Conformance(t, space.Space[[]float32](sp), db, queries, kc.build)
		})
	}
}

// TestConformance_DNA re-runs the contract over byte strings under
// normalized Levenshtein, covering non-vector object types.
func TestConformance_DNA(t *testing.T) {
	if testing.Short() {
		t.Skip("levenshtein conformance is the slow half of the suite")
	}
	db, queries := dnaCorpus()
	sp := space.NormalizedLevenshtein{}
	queries = append(queries, db[1])
	for _, kc := range genericKinds[[]byte](sp, db) {
		t.Run(kc.kind, func(t *testing.T) {
			Conformance(t, space.Space[[]byte](sp), db, queries, kc.build)
		})
	}
}

// TestConformance_Histogram re-runs the contract under the asymmetric
// KL-divergence, the space where pruning directions matter most.
func TestConformance_Histogram(t *testing.T) {
	db, queries := histoCorpus()
	sp := space.KLDivergence{}
	queries = append(queries, db[2])
	for _, kc := range genericKinds[space.Histogram](sp, db) {
		t.Run(kc.kind, func(t *testing.T) {
			Conformance(t, space.Space[space.Histogram](sp), db, queries, kc.build)
		})
	}
}
