// Package knngraph implements proximity-graph based retrieval, the
// strongest baseline of the paper's evaluation (§3.2): data points are graph
// nodes connected to (approximately) their k nearest neighbors, and search
// greedily walks edges toward the query ("the closest neighbor of my closest
// neighbor is my neighbor as well").
//
// Two approximate graph-construction algorithms are provided, matching the
// paper: search-based insertion as in Malkov et al.'s Small World graphs
// (NewSW), and the iterative NN-descent of Dong et al. (NewNNDescent). Both
// yield a Graph searched with the same multi-restart best-first algorithm.
package knngraph

import (
	"math/rand"
	"sync/atomic"

	"repro/internal/engine"
	"repro/internal/index"
	"repro/internal/scratch"
	"repro/internal/space"
	"repro/internal/topk"
)

// Options configures graph construction and search.
type Options struct {
	// NN is the number of neighbors requested per node at construction
	// time (graph degree; SW links are bidirectional so effective degree
	// is larger). Default 10.
	NN int
	// InitAttempts is the number of random restarts of the greedy
	// search, both during SW insertion and at query time. More attempts
	// = higher recall, more distance computations. Default 2.
	InitAttempts int
	// EfSearch is the result-frontier size of the query-time search;
	// values above k improve recall. 0 means max(k, NN).
	EfSearch int
	// Rho is NN-descent's sample rate (fraction of NN sampled per
	// round). Default 0.5.
	Rho float64
	// Delta is NN-descent's convergence threshold: iteration stops when
	// fewer than Delta*NN*n heap updates happen in a round. Default
	// 0.001.
	Delta float64
	// MaxIters caps NN-descent rounds. Default 12.
	MaxIters int
	// RandomLinks is the number of extra random bidirectional edges per
	// node added to an NN-descent graph. A pure k-NN graph over
	// clustered data is not navigable (greedy search cannot leave the
	// entry point's cluster); SW graphs get long-range links for free
	// from early insertions, NN-descent graphs need explicit rewiring.
	// -1 disables; 0 means the default of 2.
	RandomLinks int
	// Workers bounds construction parallelism. 0 means GOMAXPROCS; the
	// paper builds graphs with four threads. SW construction is only
	// deterministic with Workers = 1.
	Workers int
	// Seed drives random choices (entry points, initial neighbors).
	Seed int64
}

func (o *Options) defaults() {
	if o.NN <= 0 {
		o.NN = 10
	}
	if o.InitAttempts <= 0 {
		o.InitAttempts = 2
	}
	if o.Rho <= 0 || o.Rho > 1 {
		o.Rho = 0.5
	}
	if o.Delta <= 0 {
		o.Delta = 0.001
	}
	if o.MaxIters <= 0 {
		o.MaxIters = 12
	}
	if o.RandomLinks == 0 {
		o.RandomLinks = 2
	} else if o.RandomLinks < 0 {
		o.RandomLinks = 0
	}
}

// Graph is a k-NN proximity graph over a fixed data set.
type Graph[T any] struct {
	sp   space.Space[T]
	data []T
	adj  [][]uint32
	opts Options
	name string
	// seedCtr makes entry-point choices deterministic for a fixed
	// sequence of Search calls while keeping Search concurrency-safe.
	seedCtr atomic.Int64
	// buildDist counts construction-time distance computations.
	buildDist atomic.Int64
	// scratch pools per-query traversal state (visited arena, frontier,
	// result queue, entry-point RNG) so a warm query allocates nothing.
	scratch scratch.Pool[graphScratch]
}

// graphScratch is the per-query state of one graph traversal. The visited
// set is an epoch-stamped arena — starting a query is O(1), not the O(N)
// make([]bool, n) the traversal used to pay — and the RNG is reseeded in
// place, producing the exact stream a fresh rand.New over the same seed
// would.
type graphScratch struct {
	visited  scratch.Marks
	frontier topk.MinQueue
	results  topk.Queue
	drain    []topk.Neighbor
	r        *rand.Rand
}

// Name implements index.Index: "sw-graph" or "nndescent-graph".
func (g *Graph[T]) Name() string { return g.name }

// Stats implements index.Sized.
func (g *Graph[T]) Stats() index.Stats {
	var edges int64
	for _, a := range g.adj {
		edges += int64(len(a))
	}
	return index.Stats{
		Bytes:          edges*4 + int64(len(g.adj))*24,
		BuildDistances: g.buildDist.Load(),
	}
}

// Degree returns the out-degree of node id (for tests and reports).
func (g *Graph[T]) Degree(id int) int { return len(g.adj[id]) }

// SetSearchParams adjusts the query-time knobs (restarts and frontier size)
// without rebuilding. Values <= 0 leave the current setting. Not safe to
// call concurrently with Search.
func (g *Graph[T]) SetSearchParams(initAttempts, efSearch int) {
	if initAttempts > 0 {
		g.opts.InitAttempts = initAttempts
	}
	if efSearch > 0 {
		g.opts.EfSearch = efSearch
	}
}

// SearchParams returns the current query-time knobs.
func (g *Graph[T]) SearchParams() (initAttempts, efSearch int) {
	return g.opts.InitAttempts, g.opts.EfSearch
}

// Search implements index.Index using multi-restart best-first traversal:
// every restart starts from a random entry point, maintains a frontier of
// unexpanded candidates and a bounded result set of size ef, and stops when
// the nearest frontier candidate cannot improve the result set.
func (g *Graph[T]) Search(query T, k int) []topk.Neighbor {
	if k <= 0 {
		return nil
	}
	return g.searchSeeded(query, k, g.seedCtr.Add(1))
}

// SearchBatch implements index.Batcher: it answers the batch concurrently
// yet byte-identical to a serial Search loop. Search's entry points are
// drawn from the shared seedCtr, so a naive concurrent fan-out would hand
// each query whichever counter value its goroutine happened to draw; here
// the whole counter range is reserved up front and query i is pinned to the
// value the i-th serial call would have consumed.
func (g *Graph[T]) SearchBatch(queries []T, k, workers int) [][]topk.Neighbor {
	out := make([][]topk.Neighbor, len(queries))
	if k <= 0 {
		// A serial loop would return nil per query without consuming
		// any counter values; match that.
		return out
	}
	base := g.seedCtr.Add(int64(len(queries))) - int64(len(queries))
	engine.NewPool(workers).ForDynamic(len(queries), func(i int) {
		out[i] = g.searchSeeded(queries[i], k, base+int64(i)+1)
	})
	return out
}

// SearchAppend answers like Search but appends the results to dst; with a
// dst of sufficient capacity a warm call performs zero allocations.
func (g *Graph[T]) SearchAppend(dst []topk.Neighbor, query T, k int) []topk.Neighbor {
	if k <= 0 {
		return dst
	}
	return g.searchSeededAppend(dst, query, k, g.seedCtr.Add(1))
}

// Graph deliberately does NOT implement index.SearcherProvider: entry
// points are drawn from the shared seed counter, so two calls on the same
// query legitimately answer differently — a minted Searcher could never
// satisfy the answers-identical-to-Search contract. SearchAppend above is
// the zero-alloc entry point instead; callers needing a Searcher shape get
// the allocating-result fallback wrapper (e.g. lsm's mintSearcher).

// searchSeeded answers one query with the entry-point RNG derived from ctr
// (a seedCtr value).
func (g *Graph[T]) searchSeeded(query T, k int, ctr int64) []topk.Neighbor {
	if k <= 0 {
		return nil
	}
	return g.searchSeededAppend(nil, query, k, ctr)
}

// searchSeededAppend runs one query through pooled scratch, appending the
// top k of the ef-sized result set to dst.
func (g *Graph[T]) searchSeededAppend(dst []topk.Neighbor, query T, k int, ctr int64) []topk.Neighbor {
	ef := g.opts.EfSearch
	if ef < k {
		ef = k
	}
	if ef < g.opts.NN {
		ef = g.opts.NN
	}
	s := g.scratch.Get()
	defer g.scratch.Put(s)
	seed := g.opts.Seed ^ ctr
	if s.r == nil {
		s.r = rand.New(rand.NewSource(seed))
	} else {
		// Seeding in place restarts the source and discards buffered
		// state, so the stream is identical to a fresh rand.New.
		s.r.Seed(seed)
	}
	g.traverse(s, query, ef, g.opts.InitAttempts)
	s.drain = s.results.AppendResults(s.drain[:0])
	res := s.drain
	if len(res) > k {
		res = res[:k]
	}
	return append(dst, res...)
}

// traverse runs the restart loop over pooled scratch, leaving the result
// set in s.results. The mark-then-evaluate order is exactly the one the
// per-query-allocating version used, so answers are unchanged.
func (g *Graph[T]) traverse(s *graphScratch, query T, ef, attempts int) {
	n := len(g.adj)
	s.visited.Begin(n)
	s.results.Reset(ef)
	s.frontier.Reset()

	for a := 0; a < attempts; a++ {
		entry := uint32(s.r.Intn(n))
		if s.visited.TrySet(entry) {
			d := g.sp.Distance(g.data[entry], query)
			s.results.Push(entry, d)
			s.frontier.Push(entry, d)
		}
		for s.frontier.Len() > 0 {
			cur := s.frontier.Pop()
			if bound, ok := s.results.Bound(); ok && cur.Dist > bound {
				break
			}
			for _, nb := range g.adj[cur.ID] {
				if !s.visited.TrySet(nb) {
					continue
				}
				d := g.sp.Distance(g.data[nb], query)
				if s.results.WouldAccept(d) {
					s.results.Push(nb, d)
					s.frontier.Push(nb, d)
				}
			}
		}
		s.frontier.Reset()
	}
}
