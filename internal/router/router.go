package router

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/topk"
)

// maxBodyBytes caps an incoming request body, mirroring the serving daemon.
const maxBodyBytes = 64 << 20

// Options configure the HTTP scatter-gather front tier.
type Options struct {
	// Shards are the backend base URLs in shard order, one replica per
	// shard: Shards[i] must serve shard i of every routed index set. A
	// shorthand for Replicas with single-member groups; exactly one of the
	// two must be set.
	Shards []string
	// Replicas is the full shards × replicas topology: Replicas[i] lists
	// the base URLs of shard i's replica group, every member serving the
	// identical shard-i content. Groups spread load round-robin, hedge
	// across members, and fail over on error, so one host loss inside a
	// group never degrades the answer.
	Replicas [][]string
	// FailOpen selects the degraded mode when a whole shard group is down:
	// true answers from the surviving shards with "partial": true, false
	// answers 502. Default false (fail closed) — silently incomplete
	// answers must be opted into.
	FailOpen bool
	// ShardTimeout bounds each per-shard call (default 10s).
	ShardTimeout time.Duration
	// HedgeDelay, when positive, launches a speculative attempt against
	// the shard's *next* replica when the current one has not answered
	// within the delay — tail latency insurance that does useful work on a
	// different host instead of duplicating to the same one. 0 disables.
	HedgeDelay time.Duration
	// EjectAfter is the consecutive-infrastructure-failure count that
	// takes a replica out of the regular rotation (default 3). An ejected
	// replica is probed via /healthz and re-admitted when it answers.
	EjectAfter int
	// ProbeInterval is the cadence of the ejected-replica re-admission
	// prober (default 2s).
	ProbeInterval time.Duration
	// Log receives routing events; nil means the process default logger.
	Log *log.Logger
	// Metrics is the registry GET /metrics exposes and the per-index,
	// per-shard and per-replica counters record into; nil means the
	// process-wide obs.Default(). Tests pass private registries.
	Metrics *obs.Registry
}

// routedIndex is one routable index name with what discovery learned about
// it: per-shard metadata must agree on kind and space, and the shard sizes
// sum to the full corpus. generations is the shard × replica generation
// matrix, refreshed live by GET /v1/indexes (rollout drivers watch it
// converge); guarded by Router.gensMu.
type routedIndex struct {
	kind        string
	space       string
	totalN      uint64
	generations [][]int64 // [shard][replica]
}

// Router is the scatter-gather HTTP front tier over S shard replica
// groups. It speaks the same /v1/indexes/{name}/search wire dialect as the
// serving daemon — to a client, a router over S shards is indistinguishable
// from one big permserve (byte-identical answers included, see the package
// doc), even while individual replicas die and come back; only the loss of
// an entire group makes the degraded-mode contract (Options.FailOpen)
// visible.
//
// Create with New, which connects to every replica and validates the
// topology; mount via Handler; Close stops the background health prober.
type Router struct {
	groups     []*group
	indexes    map[string]*routedIndex
	names      []string // sorted
	gensMu     sync.Mutex
	failOpen   bool
	hedgeDelay time.Duration
	timeout    time.Duration
	log        *log.Logger
	start      time.Time
	mux        *http.ServeMux
	stop       chan struct{}
	stopOnce   sync.Once

	metrics *obs.Registry
	rm      map[string]*routedMetrics
}

// routedMetrics are one routed index's front-tier metric handles.
type routedMetrics struct {
	requests *obs.Counter
	failures *obs.Counter
	latency  *obs.Histogram
}

// New builds a router over the topology in opts. It fetches every replica's
// index list and refuses to start on an inconsistent topology: differing
// name sets, mismatched kind/space for a name, replicas of one shard
// serving different subset sizes, or a shard stamp that contradicts the
// group's position — a miswired router would otherwise serve merged
// nonsense that looks healthy. Replica generations may differ within a
// group (that is what a rollout in flight looks like).
func New(opts Options) (*Router, error) {
	topo := opts.Replicas
	switch {
	case len(topo) > 0 && len(opts.Shards) > 0:
		return nil, fmt.Errorf("router: set exactly one of Shards and Replicas")
	case len(topo) == 0 && len(opts.Shards) == 0:
		return nil, fmt.Errorf("router: no shard backends")
	case len(topo) == 0:
		for _, u := range opts.Shards {
			topo = append(topo, []string{u})
		}
	}
	if opts.ShardTimeout <= 0 {
		opts.ShardTimeout = 10 * time.Second
	}
	if opts.EjectAfter <= 0 {
		opts.EjectAfter = 3
	}
	if opts.ProbeInterval <= 0 {
		opts.ProbeInterval = 2 * time.Second
	}
	rt := &Router{
		indexes:    map[string]*routedIndex{},
		failOpen:   opts.FailOpen,
		hedgeDelay: opts.HedgeDelay,
		timeout:    opts.ShardTimeout,
		log:        opts.Log,
		start:      time.Now(),
		mux:        http.NewServeMux(),
		stop:       make(chan struct{}),
	}
	if rt.log == nil {
		rt.log = log.Default()
	}
	for s, urls := range topo {
		if len(urls) == 0 {
			return nil, fmt.Errorf("router: shard %d has no replicas", s)
		}
		g := &group{shard: s, ejectAfter: int32(opts.EjectAfter), log: rt.log}
		for ri, base := range urls {
			g.replicas = append(g.replicas, newReplica(s, ri, base, opts.ShardTimeout))
		}
		rt.groups = append(rt.groups, g)
	}
	if err := rt.discover(); err != nil {
		return nil, err
	}
	rt.registerMetrics(opts.Metrics)
	go rt.probeLoop(opts.ProbeInterval)
	rt.mux.HandleFunc("GET /healthz", rt.handleHealthz)
	rt.mux.HandleFunc("GET /statusz", rt.handleStatusz)
	rt.mux.HandleFunc("GET /metrics", rt.handleMetrics)
	rt.mux.HandleFunc("GET /v1/indexes", rt.handleList)
	rt.mux.HandleFunc("POST /v1/indexes/{name}/search", rt.handleSearch)
	return rt, nil
}

// registerMetrics registers the permrouter families and resolves the
// per-index, per-shard and per-replica handles. Runs after discover, so
// every label child exists from the first scrape — a dashboard sees zeroes,
// not absent series, before traffic arrives.
func (rt *Router) registerMetrics(reg *obs.Registry) {
	if reg == nil {
		reg = obs.Default()
	}
	rt.metrics = reg
	requests := reg.Counter("permrouter_requests_total", "Search requests received by the front tier, per index.", "index")
	failures := reg.Counter("permrouter_request_failures_total", "Search requests answered 4xx/5xx by the front tier, per index.", "index")
	latency := reg.Histogram("permrouter_request_latency_seconds", "Front-tier search latency (scatter + gather + merge).", 1e-9, "index")
	rt.rm = make(map[string]*routedMetrics, len(rt.names))
	for _, name := range rt.names {
		rt.rm[name] = &routedMetrics{
			requests: requests.With(name),
			failures: failures.With(name),
			latency:  latency.With(name),
		}
	}
	shardLat := reg.Histogram("permrouter_shard_latency_seconds", "Per-shard scatter-leg latency, failovers and hedges included.", 1e-9, "shard")
	failovers := reg.Counter("permrouter_shard_failovers_total", "Failover attempts launched after a replica failure, per shard.", "shard")
	repReq := reg.Counter("permrouter_replica_requests_total", "Search attempts routed to the replica (hedges included).", "shard", "replica")
	repFail := reg.Counter("permrouter_replica_failures_total", "Replica attempts that returned no usable answer.", "shard", "replica")
	repHedge := reg.Counter("permrouter_replica_hedges_total", "Speculative attempts launched against the replica.", "shard", "replica")
	repLat := reg.Histogram("permrouter_replica_latency_seconds", "Per-attempt replica call latency.", 1e-9, "shard", "replica")
	repEject := reg.Counter("permrouter_replica_ejections_total", "Rotation ejections after consecutive failures.", "shard", "replica")
	repReadmit := reg.Counter("permrouter_replica_readmissions_total", "Re-admissions into the rotation (probe or last-resort success).", "shard", "replica")
	for _, g := range rt.groups {
		ss := strconv.Itoa(g.shard)
		g.mLatency = shardLat.With(ss)
		g.mFailovers = failovers.With(ss)
		for _, r := range g.replicas {
			rs := strconv.Itoa(r.id)
			r.m = &replicaMetrics{
				requests:     repReq.With(ss, rs),
				failures:     repFail.With(ss, rs),
				hedges:       repHedge.With(ss, rs),
				latency:      repLat.With(ss, rs),
				ejections:    repEject.With(ss, rs),
				readmissions: repReadmit.With(ss, rs),
			}
		}
	}
	start := rt.start
	reg.GaugeFunc("permrouter_uptime_seconds", "Process uptime.", func() float64 {
		return time.Since(start).Seconds()
	})
}

// handleMetrics serves the registry in Prometheus text exposition format.
func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := rt.metrics.WriteText(w); err != nil {
		rt.log.Printf("router: writing /metrics: %v", err)
	}
}

// Handler returns the mounted routes.
func (rt *Router) Handler() http.Handler { return rt.mux }

// Names lists the routable index names, sorted.
func (rt *Router) Names() []string { return rt.names }

// Close stops the background re-admission prober. Safe to call more than
// once; in-flight requests are unaffected.
func (rt *Router) Close() { rt.stopOnce.Do(func() { close(rt.stop) }) }

// jitterInterval draws one probe delay: uniform over
// [interval/2, 3*interval/2), so the long-run probe rate matches the
// configured cadence while no two routers (or no two iterations) fire in
// lockstep. Without it a fleet restarted together would hammer every
// ejected replica at the same instants forever — the classic thundering
// herd that turns a recovering host's first seconds into a probe storm.
func jitterInterval(interval time.Duration, rng *rand.Rand) time.Duration {
	if interval <= 0 {
		return interval
	}
	return interval/2 + time.Duration(rng.Int63n(int64(interval)))
}

// probeLoop re-admits ejected replicas whose /healthz answers again. The
// query path ejects; only this loop (or a successful last-resort attempt)
// un-ejects — so a flapping host costs at most one probe interval of
// absence, not a failed user query. Each iteration re-arms a jittered
// timer rather than a fixed ticker (see jitterInterval).
func (rt *Router) probeLoop(interval time.Duration) {
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	t := time.NewTimer(jitterInterval(interval, rng))
	defer t.Stop()
	for {
		select {
		case <-rt.stop:
			return
		case <-t.C:
			t.Reset(jitterInterval(interval, rng))
			for _, g := range rt.groups {
				for _, r := range g.replicas {
					if !r.ejected.Load() {
						continue
					}
					ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
					err := r.healthy(ctx)
					cancel()
					if err == nil {
						r.consecFails.Store(0)
						if r.noteReadmitted() {
							rt.log.Printf("router: shard %d replica %d (%s) re-admitted (healthz ok)", r.shard, r.id, r.base)
						}
					}
				}
			}
		}
	}
}

// discover pulls and cross-validates every replica's index list.
func (rt *Router) discover() error {
	ctx, cancel := context.WithTimeout(context.Background(), rt.timeout)
	defer cancel()
	S := len(rt.groups)
	first := true
	for s, g := range rt.groups {
		var groupN map[string]uint64
		for ri, r := range g.replicas {
			rows, err := r.listIndexes(ctx)
			if err != nil {
				return fmt.Errorf("router: shard %d replica %d (%s): %w", s, ri, r.base, err)
			}
			if !first && len(rows) != len(rt.indexes) {
				return fmt.Errorf("router: shard %d replica %d serves %d indexes, shard 0 replica 0 serves %d",
					s, ri, len(rows), len(rt.indexes))
			}
			if groupN == nil {
				groupN = make(map[string]uint64, len(rows))
			}
			for _, row := range rows {
				idx := rt.indexes[row.Name]
				if idx == nil {
					if !first {
						return fmt.Errorf("router: shard %d replica %d serves index %q, shard 0 replica 0 does not", s, ri, row.Name)
					}
					idx = &routedIndex{kind: row.Kind, space: row.Space, generations: make([][]int64, S)}
					for gs, gg := range rt.groups {
						idx.generations[gs] = make([]int64, len(gg.replicas))
					}
					rt.indexes[row.Name] = idx
					rt.names = append(rt.names, row.Name)
				}
				if row.Kind != idx.kind || row.Space != idx.space {
					return fmt.Errorf("router: index %q is %s/%s on shard %d replica %d, %s/%s on shard 0 replica 0",
						row.Name, row.Kind, row.Space, s, ri, idx.kind, idx.space)
				}
				if st := row.Shard; st != nil {
					if st.Shards != S {
						return fmt.Errorf("router: index %q on shard %d replica %d belongs to a %d-shard set, router has %d shard groups",
							row.Name, s, ri, st.Shards, S)
					}
					if st.Index != s {
						return fmt.Errorf("router: shard %d replica %d (%s) serves shard %d of index %q — backends wired out of order",
							s, ri, r.base, st.Index, row.Name)
					}
				} else if ri == 0 {
					rt.log.Printf("router: index %q on shard %d carries no shard stamp; trusting the operator that shard groups hold disjoint partitions", row.Name, s)
				}
				// Replicas of one shard must serve the same subset; their
				// generations are free to differ (a rollout in flight).
				if prevN, seen := groupN[row.Name]; seen && prevN != row.N {
					return fmt.Errorf("router: index %q has n=%d on shard %d replica %d but n=%d on replica 0 — replicas serve different content",
						row.Name, row.N, s, ri, prevN)
				}
				groupN[row.Name] = row.N
				if ri == 0 {
					idx.totalN += row.N
				}
				idx.generations[s][ri] = row.Generation
			}
			first = false
		}
	}
	if len(rt.names) == 0 {
		return fmt.Errorf("router: backends serve no indexes")
	}
	sort.Strings(rt.names)
	return nil
}

// The wire types mirror the serving daemon's byte for byte (field order
// included), plus the degraded-mode fields, which marshal only when a
// shard failed — a complete answer through the router is byte-identical to
// the same answer from an unsharded daemon.

type searchRequest struct {
	Query   json.RawMessage    `json:"query,omitempty"`
	Queries []json.RawMessage  `json:"queries,omitempty"`
	K       int                `json:"k,omitempty"`
	Params  map[string]float64 `json:"params,omitempty"`
}

type neighborJSON struct {
	ID   uint32  `json:"id"`
	Dist float64 `json:"dist"`
}

type singleResponse struct {
	Index   string         `json:"index"`
	K       int            `json:"k"`
	Results []neighborJSON `json:"results"`
	// Partial marks a fail-open answer merged from a strict subset of
	// shards: correct ids, true distances, but possibly missing
	// neighbors owned by the failed shards.
	Partial      bool  `json:"partial,omitempty"`
	FailedShards []int `json:"failed_shards,omitempty"`
}

type batchResponse struct {
	Index        string           `json:"index"`
	K            int              `json:"k"`
	Batch        [][]neighborJSON `json:"batch"`
	Partial      bool             `json:"partial,omitempty"`
	FailedShards []int            `json:"failed_shards,omitempty"`
}

// handleHealthz probes every replica and answers ready as long as each
// shard group still has at least one healthy member — the condition under
// which the router can produce complete, non-partial answers. Down replicas
// are reported either way, so an operator (or the rollout driver's
// readiness gate) sees a thinning group before it empties.
func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	ctx := r.Context()
	type probe struct {
		g   *group
		rep *replica
		err error
	}
	var probes []*probe
	for _, g := range rt.groups {
		for _, rep := range g.replicas {
			probes = append(probes, &probe{g: g, rep: rep})
		}
	}
	var wg sync.WaitGroup
	for _, p := range probes {
		wg.Add(1)
		go func(p *probe) {
			defer wg.Done()
			p.err = p.rep.healthy(ctx)
		}(p)
	}
	wg.Wait()
	var down []map[string]any
	healthyPerShard := make([]int, len(rt.groups))
	for _, p := range probes {
		if p.err != nil {
			down = append(down, map[string]any{
				"shard": p.rep.shard, "replica": p.rep.id, "url": p.rep.base, "error": p.err.Error(),
			})
		} else {
			healthyPerShard[p.rep.shard]++
		}
	}
	for s, n := range healthyPerShard {
		if n == 0 {
			rt.writeJSON(w, http.StatusServiceUnavailable, map[string]any{
				"ready": false, "empty_shard": s, "down": down,
			})
			return
		}
	}
	if len(down) > 0 {
		// Degraded but ready: every shard still has a live replica.
		rt.writeJSON(w, http.StatusOK, map[string]any{"ready": true, "down": down})
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, "ok\n")
}

// replicaStatus is one row of GET /statusz: one replica's counters and
// health state.
type replicaStatus struct {
	Shard         int     `json:"shard"`
	Replica       int     `json:"replica"`
	URL           string  `json:"url"`
	Requests      int64   `json:"requests"`
	Failures      int64   `json:"failures"`
	Hedges        int64   `json:"hedges"`
	Ejected       bool    `json:"ejected"`
	ConsecFails   int32   `json:"consecutive_failures"`
	QPS           float64 `json:"qps"`
	MeanLatencyUs float64 `json:"mean_latency_us"`
}

func (rt *Router) handleStatusz(w http.ResponseWriter, r *http.Request) {
	uptime := time.Since(rt.start)
	var rows []replicaStatus
	for _, g := range rt.groups {
		for _, rep := range g.replicas {
			row := replicaStatus{
				Shard:       rep.shard,
				Replica:     rep.id,
				URL:         rep.base,
				Requests:    rep.requests.Load(),
				Failures:    rep.failures.Load(),
				Hedges:      rep.hedges.Load(),
				Ejected:     rep.ejected.Load(),
				ConsecFails: rep.consecFails.Load(),
			}
			if up := uptime.Seconds(); up > 0 {
				row.QPS = float64(row.Requests) / up
			}
			if row.Requests > 0 {
				row.MeanLatencyUs = float64(rep.latencyNs.Load()) / float64(row.Requests) / 1e3
			}
			rows = append(rows, row)
		}
	}
	rt.writeJSON(w, http.StatusOK, map[string]any{
		"uptime_s":       uptime.Seconds(),
		"fail_open":      rt.failOpen,
		"hedge_delay_ms": float64(rt.hedgeDelay) / float64(time.Millisecond),
		"shards":         rows,
		"indexes":        rt.names,
	})
}

// routerIndexInfo is one row of the router's GET /v1/indexes: the merged
// view (total corpus size, shard × replica generation matrix) rather than
// any one replica's.
type routerIndexInfo struct {
	Name        string    `json:"name"`
	Kind        string    `json:"kind"`
	Space       string    `json:"space"`
	N           uint64    `json:"n"`
	Shards      int       `json:"shards"`
	Generations [][]int64 `json:"generations"`
}

// handleList answers the merged index listing with *live* generation
// vectors: every replica is re-polled so a rollout driver watching the
// matrix converge sees what each process serves right now, not what
// discovery saw at startup. A replica that fails the poll keeps its last
// known generation (the matrix never shrinks mid-roll).
func (rt *Router) handleList(w http.ResponseWriter, r *http.Request) {
	rt.refreshGenerations(r.Context())
	rt.gensMu.Lock()
	infos := make([]routerIndexInfo, 0, len(rt.names))
	for _, name := range rt.names {
		idx := rt.indexes[name]
		gens := make([][]int64, len(idx.generations))
		for s := range idx.generations {
			gens[s] = append([]int64(nil), idx.generations[s]...)
		}
		infos = append(infos, routerIndexInfo{
			Name: name, Kind: idx.kind, Space: idx.space,
			N: idx.totalN, Shards: len(rt.groups), Generations: gens,
		})
	}
	rt.gensMu.Unlock()
	rt.writeJSON(w, http.StatusOK, map[string]any{"indexes": infos})
}

// refreshGenerations re-polls every replica's index list and updates the
// cached generation matrix for the replicas that answered.
func (rt *Router) refreshGenerations(ctx context.Context) {
	ctx, cancel := context.WithTimeout(ctx, min(rt.timeout, 5*time.Second))
	defer cancel()
	type update struct {
		shard, replica int
		rows           []backendIndex
	}
	ch := make(chan update, len(rt.groups)*4)
	var wg sync.WaitGroup
	for _, g := range rt.groups {
		for _, rep := range g.replicas {
			wg.Add(1)
			go func(rep *replica) {
				defer wg.Done()
				rows, err := rep.listIndexes(ctx)
				if err != nil {
					return
				}
				ch <- update{shard: rep.shard, replica: rep.id, rows: rows}
			}(rep)
		}
	}
	wg.Wait()
	close(ch)
	rt.gensMu.Lock()
	defer rt.gensMu.Unlock()
	for u := range ch {
		for _, row := range u.rows {
			if idx := rt.indexes[row.Name]; idx != nil {
				idx.generations[u.shard][u.replica] = row.Generation
			}
		}
	}
}

func (rt *Router) handleSearch(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	ri := rt.indexes[name]
	if ri == nil {
		rt.writeError(w, http.StatusNotFound, fmt.Sprintf("no index %q", name))
		return
	}
	// Front-tier accounting: every request to a routable index counts, and
	// the latency histogram sees the whole request — decode, scatter,
	// gather, merge — success or failure. Rejections additionally bump the
	// failure counter via fail (the 404 above has no index to attribute to).
	rm := rt.rm[name]
	rm.requests.Inc()
	start := time.Now()
	defer func() { rm.latency.Since(start) }()
	fail := func(status int, msg string) {
		rm.failures.Inc()
		rt.writeError(w, status, msg)
	}
	body, err := io.ReadAll(http.MaxBytesReader(nil, r.Body, maxBodyBytes))
	if err != nil {
		fail(http.StatusBadRequest, fmt.Sprintf("reading body: %v", err))
		return
	}
	var req searchRequest
	if err := json.Unmarshal(body, &req); err != nil {
		fail(http.StatusBadRequest, fmt.Sprintf("malformed body: %v", err))
		return
	}
	if (req.Query == nil) == (len(req.Queries) == 0) {
		fail(http.StatusBadRequest, `body must carry exactly one of "query" or a non-empty "queries"`)
		return
	}
	if req.K == 0 {
		req.K = 10
	}
	if req.K < 0 {
		fail(http.StatusBadRequest, fmt.Sprintf("k must be positive, got %d", req.K))
		return
	}
	// Cap k at the full corpus size, exactly as the unsharded daemon does
	// (each shard additionally caps at its subset size on its own).
	if n := int(ri.totalN); req.K > n && n > 0 {
		req.K = n
	}
	numQueries := 1
	if req.Query == nil {
		numQueries = len(req.Queries)
	}

	// Scatter: the original body is forwarded verbatim — every shard
	// decodes the same queries and applies the same per-request params.
	// One leg per shard group; the group picks replicas, hedges, and fails
	// over internally.
	ctx, cancel := context.WithTimeout(r.Context(), rt.timeout)
	defer cancel()
	payloads := make([]*shardPayload, len(rt.groups))
	errs := make([]error, len(rt.groups))
	var wg sync.WaitGroup
	for i, g := range rt.groups {
		wg.Add(1)
		go func(i int, g *group) {
			defer wg.Done()
			payloads[i], errs[i] = g.search(ctx, name, body, rt.hedgeDelay)
		}(i, g)
	}
	wg.Wait()

	// Classify failures. A client-side rejection from any shard becomes
	// the router's own 400: the request is equally malformed everywhere.
	// A 200 of the wrong shape (a version-skewed or buggy backend) is a
	// shard failure, and its payload is dropped so the gather below can
	// neither index past a short batch nor silently merge a shard that
	// answered the wrong question — the daemon always marshals the
	// matching field non-nil ("results": [] for an empty answer), so a
	// nil field means the field was absent, not empty.
	var failed []int
	for i, err := range errs {
		if err == nil {
			wrongShape := payloads[i] == nil ||
				(req.Query != nil && payloads[i].Results == nil) ||
				(req.Query == nil && len(payloads[i].Batch) != numQueries)
			if wrongShape {
				errs[i] = &shardFailure{shard: i, msg: "protocol error: shard answered the wrong shape"}
				payloads[i] = nil
				failed = append(failed, i)
			}
			continue
		}
		if ce, ok := err.(*clientError); ok {
			fail(http.StatusBadRequest, ce.msg)
			return
		}
		failed = append(failed, i)
	}
	if len(failed) > 0 {
		for _, i := range failed {
			rt.log.Printf("router: %v", errs[i])
		}
		if !rt.failOpen || len(failed) == len(rt.groups) {
			fail(http.StatusBadGateway,
				fmt.Sprintf("%d/%d shards failed: %v", len(failed), len(rt.groups), errs[failed[0]]))
			return
		}
	}

	// Gather: canonical (dist, id) merge of the surviving shards.
	if req.Query != nil {
		parts := make([][]topk.Neighbor, 0, len(rt.groups))
		for _, p := range payloads {
			if p != nil {
				parts = append(parts, fromJSON(p.Results))
			}
		}
		merged, _ := mergeTopK(nil, req.K, parts)
		rt.writeJSON(w, http.StatusOK, &singleResponse{
			Index: name, K: req.K, Results: toJSON(merged),
			Partial: len(failed) > 0, FailedShards: failed,
		})
		return
	}
	batch := make([][]neighborJSON, numQueries)
	var buf []topk.Neighbor
	parts := make([][]topk.Neighbor, 0, len(rt.groups))
	for qi := 0; qi < numQueries; qi++ {
		parts = parts[:0]
		for _, p := range payloads {
			if p != nil {
				parts = append(parts, fromJSON(p.Batch[qi]))
			}
		}
		var merged []topk.Neighbor
		merged, buf = mergeTopK(buf, req.K, parts)
		batch[qi] = toJSON(merged)
	}
	rt.writeJSON(w, http.StatusOK, &batchResponse{
		Index: name, K: req.K, Batch: batch,
		Partial: len(failed) > 0, FailedShards: failed,
	})
}

// fromJSON converts wire neighbors to merge form.
func fromJSON(ns []neighborJSON) []topk.Neighbor {
	out := make([]topk.Neighbor, len(ns))
	for i, nb := range ns {
		out[i] = topk.Neighbor{ID: nb.ID, Dist: nb.Dist}
	}
	return out
}

// toJSON converts merged neighbors to the wire shape (non-nil, so empty
// results encode as [] exactly like the serving daemon).
func toJSON(ns []topk.Neighbor) []neighborJSON {
	out := make([]neighborJSON, len(ns))
	for i, nb := range ns {
		out[i] = neighborJSON{ID: nb.ID, Dist: nb.Dist}
	}
	return out
}

func (rt *Router) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		rt.log.Printf("router: writing response: %v", err)
	}
}

func (rt *Router) writeError(w http.ResponseWriter, status int, msg string) {
	rt.writeJSON(w, status, map[string]any{"error": msg, "status": status})
}
