package core_test

// Hot-path microbenchmarks: steady-state Search cost per method over a warm
// index, with -benchmem accounting so the allocation trajectory (B/op,
// allocs/op) is tracked alongside ns/op. scripts/bench.sh runs these and
// emits the machine-readable BENCH_*.json consumed by the perf trajectory;
// keep names and sub-benchmark labels stable.
//
// The corpus is deliberately mid-sized (build stays in seconds) but large
// enough that per-query O(N) work — allocation, memset, full sorts — shows
// up clearly in the profile.

import (
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/index"
	"repro/internal/space"
)

const (
	benchN       = 10000
	benchQueries = 64
	benchK       = 10
	benchSeed    = 7
)

// benchCorpus returns the shared SIFT-like corpus split into db and held-out
// queries.
func benchCorpus() (db, queries [][]float32) {
	all := dataset.SIFT(benchSeed, benchN+benchQueries)
	return all[:benchN], all[benchN:]
}

// benchKinds builds the hot-path method matrix. Parameters follow the
// paper's defaults scaled down enough that every index builds in seconds.
func benchKinds(b *testing.B, sp space.Space[[]float32], db [][]float32) []struct {
	kind  string
	index index.Index[[]float32]
} {
	b.Helper()
	mk := func(kind string, idx index.Index[[]float32], err error) struct {
		kind  string
		index index.Index[[]float32]
	} {
		if err != nil {
			b.Fatalf("building %s: %v", kind, err)
		}
		return struct {
			kind  string
			index index.Index[[]float32]
		}{kind, idx}
	}
	napp, errNapp := core.NewNAPP(sp, db, core.NAPPOptions{
		NumPivots: 256, NumPivotIndex: 16, NumPivotSearch: 16, MinShared: 2, Seed: benchSeed,
	})
	nappCap, errNappCap := core.NewNAPP(sp, db, core.NAPPOptions{
		NumPivots: 256, NumPivotIndex: 16, NumPivotSearch: 16, MinShared: 1, MaxCandidates: 200, Seed: benchSeed,
	})
	mi, errMi := core.NewMIFile(sp, db, core.MIFileOptions{
		NumPivots: 128, NumPivotIndex: 32, NumPivotSearch: 16, MaxPosDiff: 8, Seed: benchSeed,
	})
	pp, errPp := core.NewPPIndex(sp, db, core.PPIndexOptions{
		NumPivots: 32, PrefixLen: 4, Copies: 2, Seed: benchSeed,
	})
	bf, errBf := core.NewBruteForceFilter(sp, db, core.BruteForceOptions{NumPivots: 64, Seed: benchSeed})
	bin, errBin := core.NewBinFilter(sp, db, core.BinFilterOptions{NumPivots: 128, Seed: benchSeed})
	dv, errDv := core.NewDistVecFilter(sp, db, core.BruteForceOptions{NumPivots: 64, Seed: benchSeed})
	om, errOm := core.NewOMEDRANK(sp, db, core.OMEDRANKOptions{NumVoters: 8, Seed: benchSeed})
	return []struct {
		kind  string
		index index.Index[[]float32]
	}{
		mk("napp", napp, errNapp),
		mk("napp-capped", nappCap, errNappCap),
		mk("mi-file", mi, errMi),
		mk("pp-index", pp, errPp),
		mk("brute-force-filt", bf, errBf),
		mk("brute-force-filt-bin", bin, errBin),
		mk("distvec-filt", dv, errDv),
		mk("omedrank", om, errOm),
	}
}

// BenchmarkSearchHot measures steady-state single-query Search on a warm
// index, cycling through held-out queries so no result is cache-trivial.
func BenchmarkSearchHot(b *testing.B) {
	db, queries := benchCorpus()
	sp := space.L2{}
	for _, kc := range benchKinds(b, sp, db) {
		b.Run(kc.kind, func(b *testing.B) {
			kc.index.Search(queries[0], benchK) // warm any lazy state
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				kc.index.Search(queries[i%len(queries)], benchK)
			}
		})
	}
}
