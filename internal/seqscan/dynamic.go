package seqscan

import "fmt"

// Dynamic maintenance, mirroring core/napp_dynamic.go. A sequential scanner
// has no derived structure, so additions are a plain append and deletions are
// a tombstone the scan loop skips. This is what lets the scanner back the
// always-mutable memtable of an LSM tier (internal/lsm) for every space.
//
// These methods must not be called concurrently with Search or each other.

// Add inserts a new data point and returns its id (its position in the
// grown data slice).
func (s *Scanner[T]) Add(x T) uint32 {
	id := uint32(len(s.data))
	s.data = append(s.data, x)
	return id
}

// Delete tombstones the given id. The point stops appearing in results
// immediately.
func (s *Scanner[T]) Delete(id uint32) error {
	if int(id) >= len(s.data) {
		return fmt.Errorf("seqscan: delete of unknown id %d (have %d points)", id, len(s.data))
	}
	if s.deleted == nil {
		s.deleted = make(map[uint32]struct{})
	}
	s.deleted[id] = struct{}{}
	return nil
}

// Deleted reports whether id is tombstoned.
func (s *Scanner[T]) Deleted(id uint32) bool {
	_, ok := s.deleted[id]
	return ok
}

// Live returns the number of non-deleted points.
func (s *Scanner[T]) Live() int { return len(s.data) - len(s.deleted) }

// Compact is a no-op for the scan structure itself: there are no posting
// lists to rewrite, and ids are stable positions into the data slice, so the
// tombstone set must stay for Deleted()/Live() to keep answering correctly.
// It exists so the scanner satisfies the same dynamic contract as NAPP.
func (s *Scanner[T]) Compact() {}
