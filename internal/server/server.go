// Package server is the online serving layer over the persistence subsystem:
// an HTTP JSON front end that warm-starts a named set of saved indexes
// (internal/persist + the deterministic dataset generators) and answers
// k-NN queries over them. cmd/permserve is the thin daemon wrapper.
//
// # API
//
//	GET  /healthz                      liveness probe
//	GET  /statusz                      per-index QPS/latency counters (+ tier rows for mutable indexes)
//	GET  /metrics                      Prometheus text exposition (counters, gauges, latency histograms)
//	GET  /v1/indexes                   list indexes + header metadata
//	POST /v1/indexes/{name}/search     answer queries (single or batch)
//	POST /v1/indexes/{name}/reload     hot-swap the index from its file
//	POST /v1/indexes/{name}/add        ingest objects (mutable indexes; WAL-durable on ack)
//	POST /v1/indexes/{name}/delete     tombstone objects (mutable indexes)
//	POST /v1/indexes/{name}/flush      seal the memtable into an immutable tier
//
// A search body carries exactly one of "query" (one object) or "queries"
// (a batch, fanned out over the worker pool), "k" (default 10), and
// optional per-request method params ("params": {"gamma": 0.05}) — the
// query-time knobs of experiments.ApplyParams, applied for this request
// only and restored afterwards.
//
// # Consistency
//
// Every request resolves its index snapshot exactly once. A concurrent
// reload swaps a complete new snapshot in atomically; requests already
// running finish on the generation they started with, so results are never
// computed half on the old and half on the new index. Per-request params
// take the snapshot's knob lock exclusively (plain searches share it), so a
// param override can neither race another search nor leak into one.
//
// # Mutability
//
// An index whose manifest sets "mutable": true accepts add/delete/flush:
// writes flow into a WAL-backed LSM tree (internal/lsm) beside the index
// file, an acknowledged write survives kill -9, and searches cover base +
// sealed tiers + memtable with results identical to a flat index over the
// live set (when components search exactly). Writes and reloads exclude
// each other: a write during a reload answers 409 immediately, and a
// reload while the memtable holds unsealed writes answers 409 until a
// flush seals them.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/lsm"
	"repro/internal/obs"
	"repro/internal/shard"
	"repro/internal/topk"
)

// maxBodyBytes caps a request body; a batch of a few thousand dense
// queries fits with room to spare, a runaway client does not.
const maxBodyBytes = 64 << 20

// Options configure the HTTP layer.
type Options struct {
	// Workers bounds the goroutines answering one batch request
	// (<= 0: GOMAXPROCS), exactly like the evaluation tools' -workers.
	Workers int
	// Timeout is the per-request execution budget; 0 means none. A
	// request over budget is answered 504 while its work is abandoned to
	// finish (harmlessly, on its own snapshot) in the background.
	Timeout time.Duration
	// Log receives serving events; nil means the process default logger.
	Log *log.Logger
	// Metrics is the registry GET /metrics exposes and the per-index
	// counters and latency histograms record into; nil means the
	// process-wide obs.Default(). Tests pass private registries so
	// parallel servers cannot share counters.
	Metrics *obs.Registry
	// SlowQueryThreshold enables the slow-query log: a search request
	// slower than this emits one JSON line with its per-stage breakdown
	// (and always increments permserve_slow_queries_total). 0 disables
	// the log.
	SlowQueryThreshold time.Duration
	// SlowQueryEvery rate-limits the slow-query log to at most one line
	// per interval per process — a latency storm must not become a log
	// storm. 0 means a 1s default.
	SlowQueryEvery time.Duration
}

// Server routes HTTP requests over a Registry. Create with New, mount via
// Handler.
type Server struct {
	reg     *Registry
	pool    engine.Pool
	timeout time.Duration
	log     *log.Logger
	start   time.Time
	mux     *http.ServeMux

	metrics    *obs.Registry
	em         map[string]*entryMetrics
	slowThresh time.Duration
	slowEvery  time.Duration
	slowLast   atomic.Int64 // unix nanos of the last emitted slow-query line
}

// entryMetrics are one index's metric handles, resolved once at New so the
// per-request path touches atomics only — no name or label lookups. The
// stageNs counters follow obs.StageNames order.
type entryMetrics struct {
	requests    *obs.Counter
	failures    *obs.Counter
	queries     *obs.Counter
	reloads     *obs.Counter
	slow        *obs.Counter
	latency     *obs.Histogram
	filterCands *obs.Counter
	refineDists *obs.Counter
	stageNs     [len(obs.StageNames)]*obs.Counter
}

// New builds a server over reg.
func New(reg *Registry, opts Options) *Server {
	s := &Server{
		reg:        reg,
		pool:       engine.NewPool(opts.Workers),
		timeout:    opts.Timeout,
		log:        opts.Log,
		start:      time.Now(),
		mux:        http.NewServeMux(),
		metrics:    opts.Metrics,
		slowThresh: opts.SlowQueryThreshold,
		slowEvery:  opts.SlowQueryEvery,
	}
	if s.log == nil {
		s.log = log.Default()
	}
	if s.metrics == nil {
		s.metrics = obs.Default()
	}
	if s.slowEvery <= 0 {
		s.slowEvery = time.Second
	}
	s.registerMetrics()
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /statusz", s.recovered(s.handleStatusz))
	s.mux.HandleFunc("GET /metrics", s.recovered(s.handleMetrics))
	s.mux.HandleFunc("GET /v1/indexes", s.recovered(s.handleList))
	s.mux.HandleFunc("POST /v1/indexes/{name}/search", s.recovered(s.handleSearch))
	s.mux.HandleFunc("POST /v1/indexes/{name}/reload", s.recovered(s.handleReload))
	s.mux.HandleFunc("POST /v1/indexes/{name}/add", s.recovered(s.handleAdd))
	s.mux.HandleFunc("POST /v1/indexes/{name}/delete", s.recovered(s.handleDelete))
	s.mux.HandleFunc("POST /v1/indexes/{name}/flush", s.recovered(s.handleFlush))
	return s
}

// registerMetrics registers the permserve metric families and resolves one
// entryMetrics handle set per index. Registration is idempotent on the
// registry, so several servers (or a reload) over the same registry share
// families rather than colliding.
func (s *Server) registerMetrics() {
	requests := s.metrics.Counter("permserve_search_requests_total", "Search HTTP requests received, per index.", "index")
	failures := s.metrics.Counter("permserve_search_failures_total", "Search requests answered 4xx/5xx, per index.", "index")
	queries := s.metrics.Counter("permserve_queries_total", "Individual queries answered (each batch element counts), per index.", "index")
	reloads := s.metrics.Counter("permserve_reloads_total", "Successful hot reloads, per index.", "index")
	slow := s.metrics.Counter("permserve_slow_queries_total", "Search requests over the slow-query threshold, per index.", "index")
	latency := s.metrics.Histogram("permserve_search_latency_seconds", "Search request latency (decode to response ready).", 1e-9, "index")
	cands := s.metrics.Counter("permserve_filter_candidates_total", "Candidates examined by the permutation filter stage, per index.", "index")
	dists := s.metrics.Counter("permserve_refine_distances_total", "Exact distance evaluations in the refine stage, per index.", "index")
	stage := s.metrics.Counter("permserve_stage_ns_total", "Cumulative time per query stage, nanoseconds.", "index", "stage")
	s.em = make(map[string]*entryMetrics, len(s.reg.Names()))
	for _, name := range s.reg.Names() {
		em := &entryMetrics{
			requests:    requests.With(name),
			failures:    failures.With(name),
			queries:     queries.With(name),
			reloads:     reloads.With(name),
			slow:        slow.With(name),
			latency:     latency.With(name),
			filterCands: cands.With(name),
			refineDists: dists.With(name),
		}
		for i, st := range obs.StageNames {
			em.stageNs[i] = stage.With(name, st)
		}
		s.em[name] = em
	}
	start := s.start
	s.metrics.GaugeFunc("permserve_uptime_seconds", "Process uptime.", func() float64 {
		return time.Since(start).Seconds()
	})
	s.metrics.GaugeFunc("permserve_goroutines", "Live goroutines.", func() float64 {
		return float64(runtime.NumGoroutine())
	})
	s.metrics.GaugeFunc("permserve_heap_alloc_bytes", "Bytes of live heap objects.", func() float64 {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return float64(ms.HeapAlloc)
	})
}

// handleMetrics serves the registry in Prometheus text exposition format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.metrics.WriteText(w); err != nil {
		s.log.Printf("server: writing /metrics: %v", err)
	}
}

// recordTrace folds one finished request's stage breakdown into the
// index's counters.
func (em *entryMetrics) recordTrace(tr *obs.QueryTrace) {
	em.filterCands.Add(tr.FilterCandidates)
	em.refineDists.Add(tr.RefineDistances)
	for i, ns := range tr.StageNs() {
		em.stageNs[i].Add(ns)
	}
}

// Handler returns the mounted routes.
func (s *Server) Handler() http.Handler { return s.mux }

// recovered turns a handler panic into a 500 instead of a killed
// connection: net/http's own recovery closes the socket without a response,
// which a client cannot tell from a crash. Worker-pool panics arrive here
// too, re-raised by engine.Pool on the request goroutine.
func (s *Server) recovered(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if p := recover(); p != nil {
				s.log.Printf("server: panic serving %s %s: %v", r.Method, r.URL.Path, p)
				s.writeError(w, http.StatusInternalServerError, fmt.Sprintf("internal error: %v", p))
			}
		}()
		h(w, r)
	}
}

// badRequestError marks a client-caused failure (malformed body or query,
// unknown method param); the handler answers 400 instead of 500.
type badRequestError struct{ msg string }

func (e *badRequestError) Error() string { return e.msg }

// badRequestf builds a badRequestError.
func badRequestf(format string, args ...any) error {
	return &badRequestError{msg: fmt.Sprintf(format, args...)}
}

// searchRequest is the body of POST /v1/indexes/{name}/search.
type searchRequest struct {
	// Query is one object in the index's JSON query encoding; Queries is
	// a batch. Exactly one of the two must be present.
	Query   json.RawMessage   `json:"query,omitempty"`
	Queries []json.RawMessage `json:"queries,omitempty"`
	// K is the neighbor count (default 10).
	K int `json:"k,omitempty"`
	// Params are query-time method params for this request only.
	Params map[string]float64 `json:"params,omitempty"`
}

// neighborJSON is one search answer on the wire.
type neighborJSON struct {
	ID   uint32  `json:"id"`
	Dist float64 `json:"dist"`
}

// singleResponse answers a one-query search; Results may be empty, never
// null.
type singleResponse struct {
	Index   string         `json:"index"`
	K       int            `json:"k"`
	Results []neighborJSON `json:"results"`
}

// batchResponse answers a batch search: one result list per query, in
// request order.
type batchResponse struct {
	Index string           `json:"index"`
	K     int              `json:"k"`
	Batch [][]neighborJSON `json:"batch"`
}

// indexInfo is one row of GET /v1/indexes. For a shard index N is the
// subset size served by this process, CorpusN the full corpus size, and
// Shard the membership stamp a router uses to sanity-check its wiring.
type indexInfo struct {
	Name       string      `json:"name"`
	Kind       string      `json:"kind"`
	Space      string      `json:"space"`
	N          uint64      `json:"n"`
	Version    uint16      `json:"version"`
	Dataset    string      `json:"dataset"`
	Seed       int64       `json:"seed"`
	Generation int64       `json:"generation,omitempty"`
	CorpusN    int         `json:"corpus_n,omitempty"`
	Shard      *shard.Info `json:"shard,omitempty"`
}

// runtimeStatus is the Go runtime memory/GC section of GET /statusz: the
// observables that tell whether the allocation-free search hot path is
// holding up under live traffic (allocation rate, GC cadence, GC CPU). All
// byte counts come from one runtime.ReadMemStats snapshot.
type runtimeStatus struct {
	Goroutines      int     `json:"goroutines"`
	HeapAllocBytes  uint64  `json:"heap_alloc_bytes"`
	HeapSysBytes    uint64  `json:"heap_sys_bytes"`
	HeapObjects     uint64  `json:"heap_objects"`
	TotalAllocBytes uint64  `json:"total_alloc_bytes"` // cumulative since process start
	Mallocs         uint64  `json:"mallocs"`           // cumulative allocation count
	Frees           uint64  `json:"frees"`
	NumGC           uint32  `json:"num_gc"`
	GCPauseTotalMs  float64 `json:"gc_pause_total_ms"`
	GCCPUFraction   float64 `json:"gc_cpu_fraction"`
	NextGCBytes     uint64  `json:"next_gc_bytes"`
}

// readRuntimeStatus snapshots the runtime counters. ReadMemStats stops the
// world for microseconds; fine at statusz polling rates.
func readRuntimeStatus() runtimeStatus {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return runtimeStatus{
		Goroutines:      runtime.NumGoroutine(),
		HeapAllocBytes:  ms.HeapAlloc,
		HeapSysBytes:    ms.HeapSys,
		HeapObjects:     ms.HeapObjects,
		TotalAllocBytes: ms.TotalAlloc,
		Mallocs:         ms.Mallocs,
		Frees:           ms.Frees,
		NumGC:           ms.NumGC,
		GCPauseTotalMs:  float64(ms.PauseTotalNs) / 1e6,
		GCCPUFraction:   ms.GCCPUFraction,
		NextGCBytes:     ms.NextGC,
	}
}

// indexStatus is one row of GET /statusz. N, Version and Generation
// describe the currently served snapshot (the same fields ReadIndexHeader
// and the sidecar manifest expose offline), so a rollout driver polling
// /statusz can tell which build of an index each process serves — the
// observable that snapshot shipping and the sharded router's consistency
// checks key on.
type indexStatus struct {
	Name          string      `json:"name"`
	Kind          string      `json:"kind"`
	N             uint64      `json:"n"`
	Version       uint16      `json:"version"`
	Generation    int64       `json:"generation,omitempty"`
	Shard         *shard.Info `json:"shard,omitempty"`
	Requests      int64       `json:"requests"`
	Queries       int64       `json:"queries"`
	Failures      int64       `json:"failures"`
	Reloads       int64       `json:"reloads"`
	QPS           float64     `json:"qps"`             // queries / process uptime
	MeanLatencyUs float64     `json:"mean_latency_us"` // per search request
	// Mutable is present for WAL-backed mutable entries: live counts,
	// per-tier rows (n, seq, tombstones, kind) and WAL depth/bytes — the
	// observables an operator gates flushes and reloads on.
	Mutable *lsm.Status `json:"mutable,omitempty"`
}

// handleHealthz is the readiness probe: 200 "ok" only when every named
// index has a live, fully loaded snapshot; 503 with detail otherwise. The
// sharded router polls this to decide whether a shard can answer, and a
// rolling-restart driver gates traffic shifts on it. (OpenDir refuses to
// start half-loaded, so unreadiness indicates a bug rather than a boot
// phase today — the probe exists so that contract is observable, and stays
// correct if lazy loading ever arrives.)
//
// Degraded storage — a poisoned WAL, a read-only tree, quarantined tiers —
// does NOT fail the probe: searches still answer, and ejecting a replica
// over a write-path fault would turn a storage incident into a read outage.
// Instead the probe stays 200 but switches from the bare "ok" body to a
// JSON body naming each degraded index and why, so operators and smoke
// tests can observe the state while routers (which gate on the status code
// alone) keep the replica in rotation.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	var notReady []string
	degraded := map[string][]string{}
	for _, name := range s.reg.Names() {
		e := s.reg.get(name)
		if e == nil || e.snap.Load() == nil {
			notReady = append(notReady, name)
			continue
		}
		if e.tree != nil {
			st := e.tree.treeStatus()
			if reasons := st.Degraded(); len(reasons) > 0 {
				degraded[name] = reasons
			}
		}
	}
	if len(notReady) > 0 {
		s.writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"ready": false, "not_loaded": notReady,
		})
		return
	}
	if len(degraded) > 0 {
		s.writeJSON(w, http.StatusOK, map[string]any{
			"ready": true, "degraded": degraded,
		})
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, "ok\n")
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	infos := make([]indexInfo, 0, len(s.reg.Names()))
	for _, name := range s.reg.Names() {
		snap := s.reg.get(name).snap.Load()
		info := indexInfo{
			Name:       name,
			Kind:       snap.hdr.Kind,
			Space:      snap.hdr.Space,
			N:          snap.hdr.N,
			Version:    snap.hdr.Version,
			Dataset:    snap.man.Dataset,
			Seed:       snap.man.Seed,
			Generation: snap.man.Generation,
			Shard:      snap.man.Shard,
		}
		if snap.man.Shard != nil {
			info.CorpusN = snap.man.N
		}
		infos = append(infos, info)
	}
	s.writeJSON(w, http.StatusOK, map[string]any{"indexes": infos})
}

func (s *Server) handleStatusz(w http.ResponseWriter, r *http.Request) {
	uptime := time.Since(s.start)
	rows := make([]indexStatus, 0, len(s.reg.Names()))
	for _, name := range s.reg.Names() {
		e := s.reg.get(name)
		snap := e.snap.Load()
		row := indexStatus{
			Name:       name,
			Kind:       snap.hdr.Kind,
			N:          snap.hdr.N,
			Version:    snap.hdr.Version,
			Generation: snap.man.Generation,
			Shard:      snap.man.Shard,
			Requests:   e.stats.requests.Load(),
			Queries:    e.stats.queries.Load(),
			Failures:   e.stats.failures.Load(),
			Reloads:    e.stats.reloads.Load(),
		}
		if up := uptime.Seconds(); up > 0 {
			row.QPS = float64(row.Queries) / up
		}
		if row.Requests > 0 {
			row.MeanLatencyUs = float64(e.stats.latencyNs.Load()) / float64(row.Requests) / 1e3
		}
		if e.tree != nil {
			st := e.tree.treeStatus()
			row.Mutable = &st
		}
		rows = append(rows, row)
	}
	s.writeJSON(w, http.StatusOK, map[string]any{
		"uptime_s": uptime.Seconds(),
		"runtime":  readRuntimeStatus(),
		"indexes":  rows,
	})
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if s.reg.get(name) == nil {
		s.writeError(w, http.StatusNotFound, fmt.Sprintf("no index %q", name))
		return
	}
	hdr, err := s.reg.Reload(name)
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, errUnsealedWrites) {
			// Not a failure of the reload machinery: the caller flushes and
			// retries. The previous generation keeps serving either way.
			status = http.StatusConflict
		}
		s.log.Printf("server: reload %q failed, previous generation stays live: %v", name, err)
		s.writeError(w, status, fmt.Sprintf("reload %q: %v", name, err))
		return
	}
	s.em[name].reloads.Inc()
	s.log.Printf("server: reloaded %q (%s, n=%d)", name, hdr.Kind, hdr.N)
	s.writeJSON(w, http.StatusOK, map[string]any{
		"reloaded": name, "kind": hdr.Kind, "space": hdr.Space, "n": hdr.N,
	})
}

// mutableEntry resolves the common preconditions of the write endpoints:
// the name must exist (404), be mutable (409) and not be mid-reload (409).
// On success the entry is returned with its ingest lock held shared; the
// caller must call release when the write is acknowledged (or failed).
func (s *Server) mutableEntry(w http.ResponseWriter, r *http.Request) (e *entry, release func(), ok bool) {
	name := r.PathValue("name")
	e = s.reg.get(name)
	if e == nil {
		s.writeError(w, http.StatusNotFound, fmt.Sprintf("no index %q", name))
		return nil, nil, false
	}
	if e.tree == nil {
		s.writeError(w, http.StatusConflict, fmt.Sprintf("index %q is not mutable (set \"mutable\": true in its manifest)", name))
		return nil, nil, false
	}
	if !e.ingestMu.TryRLock() {
		s.writeError(w, http.StatusConflict, fmt.Sprintf("index %q is reloading; retry", name))
		return nil, nil, false
	}
	return e, e.ingestMu.RUnlock, true
}

// writeWriteError maps a tree write failure to a status: request-shaped
// failures (bad payload, unknown id) are the client's 400; a poisoned WAL
// is 503 (the replica must be restarted or drained — retrying here cannot
// help); a read-only tree is 507 Insufficient Storage (the seal/compact
// path hit a storage failure, canonically ENOSPC); anything else is a
// storage-side 500.
func (s *Server) writeWriteError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, lsm.ErrInvalid):
		s.writeError(w, http.StatusBadRequest, err.Error())
	case errors.Is(err, lsm.ErrPoisoned):
		s.writeError(w, http.StatusServiceUnavailable, err.Error())
	case errors.Is(err, lsm.ErrReadOnly):
		s.writeError(w, http.StatusInsufficientStorage, err.Error())
	default:
		s.writeError(w, http.StatusInternalServerError, err.Error())
	}
}

// handleAdd ingests objects: body {"object": <obj>} or {"objects": [...]},
// objects in the same JSON encoding searches use for queries. The response
// lists the assigned ids in input order; when it arrives, the write is
// fsync-durable (it survives kill -9).
func (s *Server) handleAdd(w http.ResponseWriter, r *http.Request) {
	e, release, ok := s.mutableEntry(w, r)
	if !ok {
		return
	}
	defer release()
	var req addRequest
	body, err := io.ReadAll(http.MaxBytesReader(nil, r.Body, maxBodyBytes))
	if err == nil {
		err = json.Unmarshal(body, &req)
	}
	if err != nil {
		s.writeError(w, http.StatusBadRequest, fmt.Sprintf("malformed body: %v", err))
		return
	}
	if (req.Object == nil) == (len(req.Objects) == 0) {
		s.writeError(w, http.StatusBadRequest, `body must carry exactly one of "object" or a non-empty "objects"`)
		return
	}
	raws := req.Objects
	if req.Object != nil {
		raws = []json.RawMessage{req.Object}
	}
	ids, err := e.tree.add(raws)
	if err != nil {
		s.writeWriteError(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]any{"index": e.name, "ids": ids})
}

// handleDelete tombstones objects: body {"id": 7} or {"ids": [7, 9]}. Every
// id must name a distinct live object or the whole batch is rejected.
func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	e, release, ok := s.mutableEntry(w, r)
	if !ok {
		return
	}
	defer release()
	var req deleteRequest
	body, err := io.ReadAll(http.MaxBytesReader(nil, r.Body, maxBodyBytes))
	if err == nil {
		err = json.Unmarshal(body, &req)
	}
	if err != nil {
		s.writeError(w, http.StatusBadRequest, fmt.Sprintf("malformed body: %v", err))
		return
	}
	if (req.ID == nil) == (len(req.IDs) == 0) {
		s.writeError(w, http.StatusBadRequest, `body must carry exactly one of "id" or a non-empty "ids"`)
		return
	}
	ids := req.all()
	if err := e.tree.remove(ids); err != nil {
		s.writeWriteError(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]any{"index": e.name, "deleted": len(ids)})
}

// handleFlush seals the memtable into an immutable tier, emptying the WAL;
// afterwards a reload (or restart) needs no replay. "sealed" is null when
// there was nothing to seal.
func (s *Server) handleFlush(w http.ResponseWriter, r *http.Request) {
	e, release, ok := s.mutableEntry(w, r)
	if !ok {
		return
	}
	defer release()
	st, err := e.tree.flush()
	if err != nil {
		s.writeWriteError(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]any{"index": e.name, "sealed": st})
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	e := s.reg.get(name)
	if e == nil {
		s.writeError(w, http.StatusNotFound, fmt.Sprintf("no index %q", name))
		return
	}
	em := s.em[name]
	e.stats.requests.Add(1)
	em.requests.Inc()
	start := time.Now()
	defer func() {
		e.stats.latencyNs.Add(time.Since(start).Nanoseconds())
		em.latency.Since(start)
	}()

	req, err := decodeSearchRequest(r)
	if err != nil {
		e.stats.failures.Add(1)
		em.failures.Inc()
		s.writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	numQueries := 1
	if req.Query == nil {
		numQueries = len(req.Queries)
	}
	e.stats.queries.Add(int64(numQueries))
	em.queries.Add(int64(numQueries))

	ctx := r.Context()
	if s.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.timeout)
		defer cancel()
	}
	// The snapshot is resolved once; a concurrent reload cannot tear this
	// request.
	snap := e.snap.Load()
	// Cap k at the corpus size: Search never returns more than n results
	// anyway, and the top-k queues pre-allocate k slots per query — an
	// uncapped k would let one request allocate the daemon to death. A
	// mutable entry's corpus is its live set, which can exceed the base n.
	n := int(snap.hdr.N)
	if e.tree != nil {
		n = e.tree.treeStatus().Live
	}
	if req.K > n && n > 0 {
		req.K = n
	}
	// The trace lives on this stack but is written by the detached search
	// goroutine; it is read back only on the success path, where the
	// goroutine has provably finished (runDetached received its outcome).
	// A timed-out request abandons the trace along with the work.
	var tr obs.QueryTrace
	resp, err := runDetached(ctx, s.log, func() (any, error) {
		return s.execute(ctx, snap, name, req, &tr)
	})
	if err != nil {
		e.stats.failures.Add(1)
		em.failures.Inc()
		var bad *badRequestError
		switch {
		case errors.As(err, &bad):
			s.writeError(w, http.StatusBadRequest, err.Error())
		case errors.Is(err, context.DeadlineExceeded):
			s.writeError(w, http.StatusGatewayTimeout, "search timed out")
		case errors.Is(err, context.Canceled):
			// Client went away; any status is unreachable, but close out.
			s.writeError(w, http.StatusServiceUnavailable, "request canceled")
		default:
			s.writeError(w, http.StatusInternalServerError, err.Error())
		}
		return
	}
	em.recordTrace(&tr)
	if s.slowThresh > 0 {
		if elapsed := time.Since(start); elapsed >= s.slowThresh {
			em.slow.Inc()
			s.logSlowQuery(name, numQueries, req.K, elapsed, &tr)
		}
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// slowQueryLine is the JSON schema of one slow-query log line. Stage times
// are microseconds keyed by obs.StageNames; a stage the query never entered
// is omitted.
type slowQueryLine struct {
	Index            string             `json:"index"`
	Queries          int                `json:"queries"`
	K                int                `json:"k"`
	ElapsedUs        float64            `json:"elapsed_us"`
	ThresholdUs      float64            `json:"threshold_us"`
	FilterCandidates int64              `json:"filter_candidates"`
	RefineDistances  int64              `json:"refine_distances"`
	StageUs          map[string]float64 `json:"stage_us"`
}

// logSlowQuery emits one rate-limited slow-query line: a CAS on the last
// emission time admits at most one line per slowEvery across all request
// goroutines, while the slow counter (incremented by the caller) still
// counts every threshold crossing.
func (s *Server) logSlowQuery(name string, numQueries, k int, elapsed time.Duration, tr *obs.QueryTrace) {
	now := time.Now().UnixNano()
	last := s.slowLast.Load()
	if now-last < int64(s.slowEvery) || !s.slowLast.CompareAndSwap(last, now) {
		return
	}
	line := slowQueryLine{
		Index:            name,
		Queries:          numQueries,
		K:                k,
		ElapsedUs:        float64(elapsed.Nanoseconds()) / 1e3,
		ThresholdUs:      float64(s.slowThresh.Nanoseconds()) / 1e3,
		FilterCandidates: tr.FilterCandidates,
		RefineDistances:  tr.RefineDistances,
		StageUs:          map[string]float64{},
	}
	for i, ns := range tr.StageNs() {
		if ns > 0 {
			line.StageUs[obs.StageNames[i]] = float64(ns) / 1e3
		}
	}
	blob, err := json.Marshal(line)
	if err != nil {
		return
	}
	s.log.Printf("server: slow_query %s", blob)
}

// decodeSearchRequest parses and validates a search body.
func decodeSearchRequest(r *http.Request) (searchRequest, error) {
	var req searchRequest
	body, err := io.ReadAll(http.MaxBytesReader(nil, r.Body, maxBodyBytes))
	if err != nil {
		return req, badRequestf("reading body: %v", err)
	}
	if err := json.Unmarshal(body, &req); err != nil {
		return req, badRequestf("malformed body: %v", err)
	}
	if (req.Query == nil) == (len(req.Queries) == 0) {
		return req, badRequestf(`body must carry exactly one of "query" or a non-empty "queries"`)
	}
	if req.K == 0 {
		req.K = 10
	}
	if req.K < 0 {
		return req, badRequestf("k must be positive, got %d", req.K)
	}
	return req, nil
}

// execute answers one validated request on one snapshot. ctx cancellation
// is cooperative: the tiered and batch search paths check it between
// components/queries, so a timed-out request releases its workers promptly
// even while runDetached has already abandoned it.
func (s *Server) execute(ctx context.Context, snap *snapshot, name string, req searchRequest, tr *obs.QueryTrace) (any, error) {
	if len(req.Params) > 0 {
		// Per-request params mutate the index's knobs: exclusive lock,
		// apply, answer, restore. Plain searches hold the lock shared.
		snap.paramMu.Lock()
		defer snap.paramMu.Unlock()
		restore, err := snap.served.applyParams(experiments.Params(req.Params))
		if err != nil {
			return nil, err
		}
		defer restore()
	} else {
		snap.paramMu.RLock()
		defer snap.paramMu.RUnlock()
	}

	if req.Query != nil {
		nbs, err := snap.served.search(ctx, req.Query, req.K, tr)
		if err != nil {
			return nil, err
		}
		return &singleResponse{Index: name, K: req.K, Results: toJSON(nbs)}, nil
	}
	outs, err := snap.served.searchBatch(ctx, req.Queries, req.K, s.pool, tr)
	if err != nil {
		return nil, err
	}
	batch := make([][]neighborJSON, len(outs))
	for i, nbs := range outs {
		batch[i] = toJSON(nbs)
	}
	return &batchResponse{Index: name, K: req.K, Batch: batch}, nil
}

// runDetached runs f on its own goroutine and waits for it or for ctx. On
// timeout the request fails while f finishes in the background — harmless,
// since f only reads its snapshot, which outlives any reload. A panic in f
// is re-raised on the caller's goroutine so the recover middleware answers
// 500; a panic after the caller has already timed out goes to lg.
func runDetached[V any](ctx context.Context, lg *log.Logger, f func() (V, error)) (V, error) {
	type outcome struct {
		v        V
		err      error
		panicked any
	}
	ch := make(chan outcome, 1)
	go func() {
		var o outcome
		defer func() {
			if p := recover(); p != nil {
				o.panicked = p
			}
			ch <- o
		}()
		o.v, o.err = f()
	}()
	select {
	case o := <-ch:
		if o.panicked != nil {
			panic(o.panicked)
		}
		return o.v, o.err
	case <-ctx.Done():
		go func() {
			if o := <-ch; o.panicked != nil {
				lg.Printf("server: abandoned query panicked: %v", o.panicked)
			}
		}()
		var zero V
		return zero, ctx.Err()
	}
}

// toJSON converts neighbors to the wire shape (always non-nil, so a query
// with no results encodes as [] rather than null).
func toJSON(nbs []topk.Neighbor) []neighborJSON {
	out := make([]neighborJSON, len(nbs))
	for i, nb := range nbs {
		out[i] = neighborJSON{ID: nb.ID, Dist: nb.Dist}
	}
	return out
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		s.log.Printf("server: writing response: %v", err)
	}
}

func (s *Server) writeError(w http.ResponseWriter, status int, msg string) {
	s.writeJSON(w, status, map[string]any{"error": msg, "status": status})
}
