#!/bin/sh
# Smoke test of the fail-stop storage story, end to end over a real
# process: boot permserve with fault injection armed via the
# PERMSERVE_FAULT_FS env knob (a faultfs rule spec routing the mutable
# tier's disk I/O through the fault-injecting filesystem), drive writes
# into the fault, and assert the degraded-mode contract an operator would
# see: a poisoned WAL answers 503 and a storage-degraded seal answers 507,
# /healthz stays 200 but names the degraded index, searches keep serving,
# and a restart without the knob recovers every acknowledged write with no
# debris left behind. Run via `make fault-smoke`.
set -eu

BIN=${1:?usage: fault_smoke.sh path/to/permserve}
TMP=$(mktemp -d)
LOG="$TMP/permserve.log"
IDX="sift-mutable"
PID=
cleanup() {
    [ -n "$PID" ] && kill -9 "$PID" 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

fail() {
    echo "fault-smoke: FAIL: $1" >&2
    echo "--- permserve log ---" >&2
    cat "$LOG" >&2
    exit 1
}

# start_daemon DIR [FAULTSPEC] boots permserve over DIR, optionally with
# fault injection armed, and waits for its bound address in $ADDR.
start_daemon() {
    : >"$LOG"
    if [ -n "${2:-}" ]; then
        PERMSERVE_FAULT_FS="$2" "$BIN" -dir "$1" -addr 127.0.0.1:0 >"$LOG" 2>&1 &
    else
        "$BIN" -dir "$1" -addr 127.0.0.1:0 >"$LOG" 2>&1 &
    fi
    PID=$!
    ADDR=
    i=0
    while [ $i -lt 50 ]; do
        ADDR=$(sed -n 's#.*listening on http://\([0-9.:]*\).*#\1#p' "$LOG" | head -n1)
        [ -n "$ADDR" ] && break
        kill -0 "$PID" 2>/dev/null || fail "daemon exited during startup"
        sleep 0.2
        i=$((i + 1))
    done
    [ -n "$ADDR" ] || fail "daemon never started listening"
}

stop_daemon() {
    kill -9 "$PID" 2>/dev/null || true
    wait "$PID" 2>/dev/null || true
    PID=
}

# vec N prints a 128-dim JSON vector [N, 0, ...]: unique per N and far from
# the demo corpus, so a self-query at k=1 returns its own id at distance 0.
ZEROS=""
i=0
while [ $i -lt 127 ]; do
    ZEROS="$ZEROS,0"
    i=$((i + 1))
done
vec() { printf '[%s%s]' "$1" "$ZEROS"; }

ack_id() { sed -n 's/.*"ids":\[\([0-9]*\)\].*/\1/p'; }

# add N issues one add; echoes "N id" on ack, records the HTTP code in $CODE.
add() {
    CODE=$(curl -s -o "$TMP/resp" -w '%{http_code}' \
        -d "{\"object\": $(vec "$1")}" "http://$ADDR/v1/indexes/$IDX/add") || CODE=000
    AID=$(ack_id <"$TMP/resp")
    [ "$CODE" = 200 ] && [ -n "$AID" ] && echo "$1 $AID"
    return 0
}

# check_degraded WORD asserts /healthz is HTTP 200 (routers must keep the
# replica in rotation) with a JSON body naming the degraded index, statusz
# reports the expected storage state, and searches still answer.
check_degraded() {
    HCODE=$(curl -s -o "$TMP/health" -w '%{http_code}' "http://$ADDR/healthz") || fail "healthz request failed"
    [ "$HCODE" = 200 ] || fail "degraded healthz returned $HCODE, want 200: $(cat "$TMP/health")"
    grep -q '"degraded":{"'"$IDX"'"' "$TMP/health" || fail "healthz does not name the degraded index: $(cat "$TMP/health")"
    grep -q "storage $1" "$TMP/health" || fail "healthz lacks 'storage $1': $(cat "$TMP/health")"
    STATUSZ=$(curl -sf "http://$ADDR/statusz") || fail "statusz failed"
    echo "$STATUSZ" | grep -q "\"state\":\"$1\"" || fail "statusz state is not $1: $STATUSZ"
    curl -sf -d "{\"query\": $(vec 1), \"k\": 3}" \
        "http://$ADDR/v1/indexes/$IDX/search" >/dev/null || fail "search stopped serving while $1"
}

# --- Phase 1: WAL fsync failure => poisoned, writes 503, acks survive ---

"$BIN" -write-demo -dir "$TMP/idx1"
# The 3rd-and-later fsync of any WAL segment fails with EIO (sticky): the
# first add or two are acknowledged, then the WAL poisons itself.
start_daemon "$TMP/idx1" "sync:wal-:3:eio:sticky"

ACKS="$TMP/acks1"
: >"$ACKS"
SAW503=
i=0
while [ $i -lt 10 ]; do
    add $((10000 + i)) >>"$ACKS"
    [ "$CODE" = 503 ] && SAW503=1 && break
    [ "$CODE" = 200 ] || fail "add $i answered $CODE before the fault fired: $(cat "$TMP/resp")"
    i=$((i + 1))
done
[ -n "$SAW503" ] || fail "10 adds never hit the injected WAL fault"
NACKED=$(wc -l <"$ACKS")
[ "$NACKED" -gt 0 ] || fail "no add was acknowledged before the WAL poisoned"
grep -q "poisoned" "$TMP/resp" || fail "503 body does not say poisoned: $(cat "$TMP/resp")"

# Poisoning is sticky: later writes (adds and deletes) answer 503, never
# a retry-and-maybe-succeed (fsyncgate: the failed page may be gone).
add 10900 >/dev/null
[ "$CODE" = 503 ] || fail "add after poisoning answered $CODE, want 503"
DCODE=$(curl -s -o "$TMP/resp" -w '%{http_code}' -d '{"ids": [7]}' \
    "http://$ADDR/v1/indexes/$IDX/delete") || DCODE=000
[ "$DCODE" = 503 ] || fail "delete on a poisoned tree answered $DCODE, want 503"

check_degraded poisoned
stop_daemon

# Restart WITHOUT the knob: a healthy disk again. Every acknowledged write
# must have survived, and the tree must be writable once more.
start_daemon "$TMP/idx1"
HBODY=$(curl -sf "http://$ADDR/healthz") || fail "post-restart healthz failed"
[ "$HBODY" = "ok" ] || fail "post-restart healthz is not plain ok: $HBODY"
while read -r N AID; do
    R=$(curl -sf -d "{\"query\": $(vec "$N"), \"k\": 1}" \
        "http://$ADDR/v1/indexes/$IDX/search") || fail "post-restart query $N failed"
    echo "$R" | grep -q "{\"id\":$AID,\"dist\":0}" \
        || fail "acknowledged add id=$AID (coordinate $N) lost across the WAL fault: $R"
done <"$ACKS"
add 11000 >/dev/null
[ "$CODE" = 200 ] || fail "recovered tree rejected a write with $CODE"
stop_daemon

# --- Phase 2: ENOSPC during seal => read-only, writes 507, debris rolled back ---

"$BIN" -write-demo -dir "$TMP/idx2"
# The first fsync of a tier segment file runs out of disk: WAL appends are
# fine (adds ack normally), sealing fails.
start_daemon "$TMP/idx2" "sync:.seg:1:enospc"

ACKS="$TMP/acks2"
: >"$ACKS"
i=0
while [ $i -lt 3 ]; do
    add $((20000 + i)) >>"$ACKS"
    [ "$CODE" = 200 ] || fail "pre-seal add $i answered $CODE: $(cat "$TMP/resp")"
    i=$((i + 1))
done
FCODE=$(curl -s -o "$TMP/resp" -w '%{http_code}' -XPOST \
    "http://$ADDR/v1/indexes/$IDX/flush") || FCODE=000
[ "$FCODE" = 507 ] || fail "flush into ENOSPC answered $FCODE, want 507: $(cat "$TMP/resp")"
add 20900 >/dev/null
[ "$CODE" = 507 ] || fail "add on a read-only tree answered $CODE, want 507"

check_degraded read-only
stop_daemon

# Restart clean: the failed seal's debris is rolled back via the manifest
# protocol (no stray temp/segment files), the acked adds are still served
# from the WAL, and sealing works again.
start_daemon "$TMP/idx2"
DEBRIS=$(find "$TMP/idx2" -name '*.tmp*' | wc -l)
[ "$DEBRIS" -eq 0 ] || fail "$DEBRIS temp files survived recovery: $(find "$TMP/idx2" -name '*.tmp*')"
while read -r N AID; do
    R=$(curl -sf -d "{\"query\": $(vec "$N"), \"k\": 1}" \
        "http://$ADDR/v1/indexes/$IDX/search") || fail "post-restart query $N failed"
    echo "$R" | grep -q "{\"id\":$AID,\"dist\":0}" \
        || fail "acknowledged add id=$AID (coordinate $N) lost across the seal fault: $R"
done <"$ACKS"
curl -sf -XPOST "http://$ADDR/v1/indexes/$IDX/flush" >/dev/null || fail "post-recovery flush failed"
HBODY=$(curl -sf "http://$ADDR/healthz") || fail "post-recovery healthz failed"
[ "$HBODY" = "ok" ] || fail "post-recovery healthz is not plain ok: $HBODY"
stop_daemon

echo "fault-smoke: OK (poisoned=503 and read-only=507 served degraded, zero acked-write loss across both faults)"
