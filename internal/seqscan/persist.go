package seqscan

import (
	"io"
	"slices"

	"repro/internal/codec"
	"repro/internal/space"
)

// Persistence. A sequential scanner has no derived structure; the payload is
// just the dynamic-maintenance state — the sorted tombstone list — so a
// scanner that saw deletions round-trips exactly (format version 2; version 1
// files had an empty payload and predate dynamic maintenance).

// Save serializes the scanner under kind "seqscan".
func (s *Scanner[T]) Save(w io.Writer) error {
	cw := codec.NewWriter(w, codec.KindSeqScan, s.sp.Name(), len(s.data))
	tombs := make([]uint32, 0, len(s.deleted))
	for id := range s.deleted {
		tombs = append(tombs, id)
	}
	slices.Sort(tombs)
	cw.U32s(tombs)
	return cw.Close()
}

// Load reads a scanner saved by Save over the same data.
func Load[T any](cr *codec.Reader, sp space.Space[T], data []T) (*Scanner[T], error) {
	if err := cr.Expect(codec.KindSeqScan, sp.Name(), len(data)); err != nil {
		return nil, err
	}
	tombs := cr.U32s()
	for _, id := range tombs {
		if int(id) >= len(data) {
			cr.Corruptf("tombstone id %d out of range (n=%d)", id, len(data))
		}
	}
	if err := cr.Finish(); err != nil {
		return nil, err
	}
	s := New(sp, data)
	for _, id := range tombs {
		if s.deleted == nil {
			s.deleted = make(map[uint32]struct{}, len(tombs))
		}
		s.deleted[id] = struct{}{}
	}
	return s, nil
}
