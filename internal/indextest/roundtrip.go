package indextest

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"repro/internal/codec"
	"repro/internal/index"
	"repro/internal/persist"
	"repro/internal/space"
)

// Roundtrip runs the persistence property suite: Save then Load must yield
// an index that is behaviorally indistinguishable from the original.
//
//   - Re-saving the loaded index reproduces the original bytes exactly
//     (serialization is canonical: map-backed sections are written in
//     sorted order, so equal indexes have equal files).
//   - Every search over every query — run in lockstep on both instances, so
//     indexes with query-order-dependent entry points (the proximity graph)
//     stay synchronized — returns identical ids and distances.
//   - Stats survive: reported footprint stays within tolerance and the
//     build-distance counter is preserved exactly.
func Roundtrip[T any](t *testing.T, sp space.Space[T], data []T, queries []T, build Builder[T]) {
	t.Helper()
	orig, err := build()
	if err != nil {
		t.Fatal(err)
	}

	var blob bytes.Buffer
	if err := persist.Save(&blob, orig); err != nil {
		t.Fatalf("Save: %v", err)
	}
	loaded, err := persist.Load(bytes.NewReader(blob.Bytes()), sp, data)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}

	if got, want := loaded.Name(), orig.Name(); got != want {
		t.Errorf("loaded index is a %q, saved a %q", got, want)
	}

	t.Run("resave-is-identical", func(t *testing.T) {
		var again bytes.Buffer
		if err := persist.Save(&again, loaded); err != nil {
			t.Fatalf("re-Save: %v", err)
		}
		if !bytes.Equal(blob.Bytes(), again.Bytes()) {
			t.Errorf("re-saving the loaded index produced %d bytes != original %d bytes",
				again.Len(), blob.Len())
		}
	})

	t.Run("searches-identical", func(t *testing.T) {
		for _, k := range []int{1, 5, len(data) + 3} {
			for qi, q := range queries {
				want := orig.Search(q, k)
				got := loaded.Search(q, k)
				diffResults(t, want, got, fmt.Sprintf("query %d k=%d", qi, k))
			}
		}
	})

	t.Run("stats-survive", func(t *testing.T) {
		os, haveOrig := orig.(index.Sized)
		ls, haveLoaded := loaded.(index.Sized)
		if haveOrig != haveLoaded {
			t.Fatalf("Sized mismatch: original %v, loaded %v", haveOrig, haveLoaded)
		}
		if !haveOrig {
			return
		}
		a, b := os.Stats(), ls.Stats()
		if b.BuildDistances != a.BuildDistances {
			t.Errorf("BuildDistances = %d after roundtrip, want %d", b.BuildDistances, a.BuildDistances)
		}
		// Bytes is an estimate over the same structure, so it should agree
		// closely; allow 10% slack for incidental representation
		// differences (slice capacities are not part of the format).
		if diff := b.Bytes - a.Bytes; diff > a.Bytes/10 || diff < -a.Bytes/10 {
			t.Errorf("Stats().Bytes = %d after roundtrip, want within 10%% of %d", b.Bytes, a.Bytes)
		}
	})
}

// RoundtripRejectsCorrupt asserts Load fails cleanly (codec.ErrCorrupt, no
// panic) on truncations and single-byte corruptions of a valid blob. The
// exhaustive version of this property lives in the codec fuzz target; this
// deterministic slice of it runs on every test invocation.
func RoundtripRejectsCorrupt[T any](t *testing.T, sp space.Space[T], data []T, build Builder[T]) {
	t.Helper()
	idx, err := build()
	if err != nil {
		t.Fatal(err)
	}
	var blob bytes.Buffer
	if err := persist.Save(&blob, idx); err != nil {
		t.Fatalf("Save: %v", err)
	}
	raw := blob.Bytes()

	for _, cut := range []int{0, 1, 4, 7, len(raw) / 2, len(raw) - 1} {
		if cut >= len(raw) {
			continue
		}
		if _, err := persist.Load(bytes.NewReader(raw[:cut]), sp, data); err == nil {
			t.Errorf("Load accepted a blob truncated to %d of %d bytes", cut, len(raw))
		}
	}
	for _, pos := range []int{0, 5, len(raw) / 3, len(raw) / 2, len(raw) - 2} {
		mut := append([]byte(nil), raw...)
		mut[pos] ^= 0x40
		if _, err := persist.Load(bytes.NewReader(mut), sp, data); err == nil {
			t.Errorf("Load accepted a blob with byte %d flipped", pos)
		} else if !errors.Is(err, codec.ErrCorrupt) {
			// Header-field mutations may surface as mismatch errors
			// rather than ErrCorrupt only if they keep the checksum
			// valid, which a single bit flip cannot.
			t.Errorf("corrupt blob at byte %d: got %v, want ErrCorrupt", pos, err)
		}
	}
}

// clone returns a second, search-identical instance of idx: through a
// Save/Load roundtrip when the index is persistable, otherwise by running
// the (deterministic) builder again.
func clone[T any](t *testing.T, sp space.Space[T], data []T, idx index.Index[T], build Builder[T]) index.Index[T] {
	t.Helper()
	var blob bytes.Buffer
	err := persist.Save(&blob, idx)
	if errors.Is(err, codec.ErrNotPersistable) {
		cp, err := build()
		if err != nil {
			t.Fatal(err)
		}
		return cp
	}
	if err != nil {
		t.Fatalf("Save: %v", err)
	}
	cp, err := persist.Load(bytes.NewReader(blob.Bytes()), sp, data)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	return cp
}
