package codec

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// Reader decodes one index blob. NewReader slurps the input, verifies the
// checksum trailer and parses the header; payload sections are then consumed
// sequentially with the typed Read methods. Every length prefix is checked
// against the bytes actually remaining before anything is allocated, so
// corrupt input fails with an error instead of an enormous allocation.
//
// Like Writer, errors are sticky: after the first failure every Read method
// returns zero values and Err reports the cause.
type Reader struct {
	hdr Header
	buf []byte // remaining payload
	err error
}

// NewReader reads the whole blob from r, verifies magic, version and
// CRC-32C, and leaves the reader positioned at the first payload byte.
func NewReader(r io.Reader) (*Reader, error) {
	blob, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("codec: reading index blob: %w", err)
	}
	// Smallest possible blob: magic + version + two empty strings + n +
	// crc trailer.
	if len(blob) < len(Magic)+2+4+4+8+4 {
		return nil, corruptf("blob of %d bytes is shorter than the fixed header", len(blob))
	}
	body, trailer := blob[:len(blob)-4], blob[len(blob)-4:]
	if got, want := crc32.Checksum(body, castagnoli), binary.LittleEndian.Uint32(trailer); got != want {
		return nil, corruptf("checksum mismatch (file %08x, computed %08x)", want, got)
	}
	if string(body[:len(Magic)]) != Magic {
		return nil, corruptf("bad magic %q", body[:len(Magic)])
	}
	cr := &Reader{buf: body[len(Magic):]}
	cr.hdr.Version = cr.U16()
	if cr.err == nil && cr.hdr.Version != Version {
		return nil, fmt.Errorf("%w %d (this build reads %d)", ErrUnsupportedVersion, cr.hdr.Version, Version)
	}
	cr.hdr.Kind = cr.tag()
	cr.hdr.Space = cr.tag()
	cr.hdr.N = cr.U64()
	if cr.err != nil {
		return nil, cr.err
	}
	return cr, nil
}

// Header returns the decoded fixed prelude.
func (cr *Reader) Header() Header { return cr.hdr }

// Err returns the sticky decoding error, if any.
func (cr *Reader) Err() error { return cr.err }

// Remaining returns the number of unconsumed payload bytes. Decoders of
// nested variable-size sections use it to cap allocations the same way the
// slice readers do.
func (cr *Reader) Remaining() int { return len(cr.buf) }

// Length reads a uint64 element count for a section of elemSize-byte
// elements and validates it against the remaining payload, exactly like the
// built-in slice readers do, for decoders of custom record sections.
func (cr *Reader) Length(elemSize int) int { return cr.length(elemSize) }

// Expect validates the header against what a kind loader requires: the kind
// tag it decodes, the space the caller searches under, and the length of the
// data slice the caller supplies. A mismatch means the file belongs to a
// different index, distance or data set.
func (cr *Reader) Expect(kind, spaceName string, n int) error {
	if cr.hdr.Kind != kind {
		return fmt.Errorf("codec: file holds a %q index, loader expects %q", cr.hdr.Kind, kind)
	}
	if cr.hdr.Space != spaceName {
		return fmt.Errorf("codec: index was built under space %q, loader supplies %q", cr.hdr.Space, spaceName)
	}
	if cr.hdr.N != uint64(n) {
		return fmt.Errorf("codec: index was built over %d points, loader supplies %d", cr.hdr.N, n)
	}
	return nil
}

// Finish reports whether decoding consumed the payload cleanly: it returns
// the sticky error, or an ErrCorrupt if trailing payload bytes remain.
func (cr *Reader) Finish() error {
	if cr.err != nil {
		return cr.err
	}
	if len(cr.buf) != 0 {
		return corruptf("%d unconsumed payload bytes", len(cr.buf))
	}
	return nil
}

// take consumes n bytes of payload.
func (cr *Reader) take(n int) []byte {
	if cr.err != nil {
		return nil
	}
	if n < 0 || n > len(cr.buf) {
		cr.err = corruptf("section of %d bytes exceeds the %d remaining", n, len(cr.buf))
		return nil
	}
	out := cr.buf[:n]
	cr.buf = cr.buf[n:]
	return out
}

// length reads a uint64 element count and validates count*elemSize against
// the remaining payload.
func (cr *Reader) length(elemSize int) int {
	n := cr.U64()
	if cr.err != nil {
		return 0
	}
	if n > uint64(len(cr.buf)/elemSize) {
		cr.err = corruptf("declared length %d exceeds the %d remaining bytes (elem size %d)", n, len(cr.buf), elemSize)
		return 0
	}
	return int(n)
}

// U8 reads one byte.
func (cr *Reader) U8() uint8 {
	b := cr.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// Bool reads a one-byte boolean; any nonzero value is true.
func (cr *Reader) Bool() bool { return cr.U8() != 0 }

// U16 reads a little-endian uint16.
func (cr *Reader) U16() uint16 {
	b := cr.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

// U32 reads a little-endian uint32.
func (cr *Reader) U32() uint32 {
	b := cr.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads a little-endian uint64.
func (cr *Reader) U64() uint64 {
	b := cr.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// I32 reads a little-endian int32.
func (cr *Reader) I32() int32 { return int32(cr.U32()) }

// I64 reads a little-endian int64.
func (cr *Reader) I64() int64 { return int64(cr.U64()) }

// Int reads an int64-encoded int and validates it fits the platform int.
func (cr *Reader) Int() int {
	v := cr.I64()
	if cr.err == nil && (v > math.MaxInt32 || v < math.MinInt32) {
		// Option fields and counts never approach 2^31; a larger value
		// means corruption (and would overflow 32-bit platforms).
		cr.err = corruptf("int field %d out of range", v)
		return 0
	}
	return int(v)
}

// F64 reads a little-endian IEEE-754 double.
func (cr *Reader) F64() float64 { return math.Float64frombits(cr.U64()) }

// F32 reads a little-endian IEEE-754 single.
func (cr *Reader) F32() float32 { return math.Float32frombits(cr.U32()) }

// tag reads a header string, capped at maxTagLen.
func (cr *Reader) tag() string {
	n := cr.U32()
	if cr.err != nil {
		return ""
	}
	if n > maxTagLen {
		cr.err = corruptf("tag of %d bytes exceeds cap %d", n, maxTagLen)
		return ""
	}
	return string(cr.take(int(n)))
}

// Bytes reads a length-prefixed raw byte section written by Writer.Bytes.
// The returned slice is a copy, safe to retain after the blob is released.
// The length is validated against the remaining payload before allocating.
func (cr *Reader) Bytes() []byte {
	n := cr.length(1)
	if cr.err != nil || n == 0 {
		return nil
	}
	out := make([]byte, n)
	copy(out, cr.take(n))
	return out
}

// U32s reads a length-prefixed []uint32 section.
func (cr *Reader) U32s() []uint32 {
	n := cr.length(4)
	if cr.err != nil || n == 0 {
		return nil
	}
	out := make([]uint32, n)
	for i := range out {
		out[i] = cr.U32()
	}
	return out
}

// I32s reads a length-prefixed []int32 section.
func (cr *Reader) I32s() []int32 {
	n := cr.length(4)
	if cr.err != nil || n == 0 {
		return nil
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = cr.I32()
	}
	return out
}

// U64s reads a length-prefixed []uint64 section.
func (cr *Reader) U64s() []uint64 {
	n := cr.length(8)
	if cr.err != nil || n == 0 {
		return nil
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = cr.U64()
	}
	return out
}

// F32s reads a length-prefixed []float32 section.
func (cr *Reader) F32s() []float32 {
	n := cr.length(4)
	if cr.err != nil || n == 0 {
		return nil
	}
	out := make([]float32, n)
	for i := range out {
		out[i] = cr.F32()
	}
	return out
}

// F64s reads a length-prefixed []float64 section.
func (cr *Reader) F64s() []float64 {
	n := cr.length(8)
	if cr.err != nil || n == 0 {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = cr.F64()
	}
	return out
}

// Corruptf lets payload decoders flag semantic corruption (an id out of
// range, an impossible option value) through the sticky error, so later
// reads are no-ops and the caller sees ErrCorrupt.
func (cr *Reader) Corruptf(format string, args ...any) {
	if cr.err == nil {
		cr.err = corruptf(format, args...)
	}
}
