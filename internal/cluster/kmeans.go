// Package cluster implements k-means clustering. It is the substrate for the
// ImageNet experiment: the paper builds SQFD image signatures by clustering
// 10^4 sampled 7-dimensional pixel features per image with standard k-means
// into 20 clusters (Beecks' method); this package reproduces that pipeline.
package cluster

import (
	"fmt"
	"math"
	"math/rand"
	"sync/atomic"

	"repro/internal/engine"
	"repro/internal/vecmath"
)

// Result holds the output of a k-means run.
type Result struct {
	// Centroids is a k x dim row-major matrix of cluster centers. Empty
	// clusters are dropped, so the row count may be less than the k asked
	// for.
	Centroids []float32
	// Sizes[i] is the number of points assigned to centroid i.
	Sizes []int
	// Assign[p] is the centroid index for input point p.
	Assign []int
	Dim    int
	// Iterations actually executed before convergence or the cap.
	Iterations int
}

// K returns the number of (non-empty) clusters found.
func (res *Result) K() int { return len(res.Sizes) }

// Centroid returns the i-th centroid as a slice view.
func (res *Result) Centroid(i int) []float32 {
	return res.Centroids[i*res.Dim : (i+1)*res.Dim]
}

// KMeans clusters points (an n x dim row-major matrix) into at most k
// clusters using Lloyd's algorithm with k-means++ seeding. It stops after
// maxIter iterations or when no assignment changes.
func KMeans(r *rand.Rand, points []float32, dim, k, maxIter int) (*Result, error) {
	if dim <= 0 {
		return nil, fmt.Errorf("cluster: dim must be positive")
	}
	if len(points)%dim != 0 {
		return nil, fmt.Errorf("cluster: %d values is not a multiple of dim %d", len(points), dim)
	}
	n := len(points) / dim
	if n == 0 {
		return nil, fmt.Errorf("cluster: no points")
	}
	if k <= 0 {
		return nil, fmt.Errorf("cluster: k must be positive")
	}
	if k > n {
		k = n
	}

	row := func(mat []float32, i int) []float32 { return mat[i*dim : (i+1)*dim] }

	centroids := seedPlusPlus(r, points, dim, n, k)
	assign := make([]int, n)
	for i := range assign {
		assign[i] = -1
	}
	sizes := make([]int, k)
	sums := make([]float64, k*dim)

	// The assignment step is the O(n·k·dim) hot path of Lloyd's
	// algorithm; points are independent, so it fans out over the shared
	// worker pool. Each point's nearest centroid is a pure function of
	// the centroids, so the result is identical to the serial loop.
	// Tiny instances (the ImageNet signature pipeline runs thousands of
	// 300-point clusterings) stay serial: there the per-iteration
	// goroutine fan-out would cost as much as the work itself.
	pool := engine.NewPool(1)
	if n*k*dim >= 1<<17 {
		pool = engine.Pool{}
	}
	iter := 0
	for ; iter < maxIter; iter++ {
		var changed atomic.Int64
		pool.For(n, func(i int) {
			p := row(points, i)
			best, bestD := 0, math.MaxFloat64
			for c := 0; c < k; c++ {
				d := vecmath.L2Sqr(p, row(centroids, c))
				if d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed.Add(1)
			}
		})
		if changed.Load() == 0 {
			break
		}
		// Recompute centroids.
		for i := range sums {
			sums[i] = 0
		}
		for i := range sizes {
			sizes[i] = 0
		}
		for i := 0; i < n; i++ {
			c := assign[i]
			sizes[c]++
			p := row(points, i)
			for d := 0; d < dim; d++ {
				sums[c*dim+d] += float64(p[d])
			}
		}
		for c := 0; c < k; c++ {
			if sizes[c] == 0 {
				// Re-seed an empty cluster at a random point.
				copy(row(centroids, c), row(points, r.Intn(n)))
				continue
			}
			inv := 1 / float64(sizes[c])
			for d := 0; d < dim; d++ {
				centroids[c*dim+d] = float32(sums[c*dim+d] * inv)
			}
		}
	}

	// Final bookkeeping: recount sizes and drop empty clusters.
	for i := range sizes {
		sizes[i] = 0
	}
	for _, c := range assign {
		sizes[c]++
	}
	remap := make([]int, k)
	kept := 0
	for c := 0; c < k; c++ {
		if sizes[c] > 0 {
			remap[c] = kept
			copy(centroids[kept*dim:(kept+1)*dim], row(centroids, c))
			sizes[kept] = sizes[c]
			kept++
		} else {
			remap[c] = -1
		}
	}
	for i := range assign {
		assign[i] = remap[assign[i]]
	}
	return &Result{
		Centroids:  centroids[:kept*dim],
		Sizes:      sizes[:kept],
		Assign:     assign,
		Dim:        dim,
		Iterations: iter,
	}, nil
}

// seedPlusPlus picks k initial centroids with k-means++ (squared-distance
// weighted sampling), which makes small-iteration-budget runs much more
// stable than uniform seeding.
func seedPlusPlus(r *rand.Rand, points []float32, dim, n, k int) []float32 {
	row := func(i int) []float32 { return points[i*dim : (i+1)*dim] }
	centroids := make([]float32, k*dim)
	first := r.Intn(n)
	copy(centroids[:dim], row(first))

	d2 := make([]float64, n)
	for i := 0; i < n; i++ {
		d2[i] = vecmath.L2Sqr(row(i), centroids[:dim])
	}
	for c := 1; c < k; c++ {
		var total float64
		for _, d := range d2 {
			total += d
		}
		var pick int
		if total == 0 {
			pick = r.Intn(n)
		} else {
			u := r.Float64() * total
			acc := 0.0
			pick = n - 1
			for i, d := range d2 {
				acc += d
				if u <= acc {
					pick = i
					break
				}
			}
		}
		dst := centroids[c*dim : (c+1)*dim]
		copy(dst, row(pick))
		for i := 0; i < n; i++ {
			if d := vecmath.L2Sqr(row(i), dst); d < d2[i] {
				d2[i] = d
			}
		}
	}
	return centroids
}

// Inertia returns the sum of squared distances from each point to its
// assigned centroid — the k-means objective, useful in tests.
func Inertia(points []float32, res *Result) float64 {
	var s float64
	for i := 0; i < len(res.Assign); i++ {
		p := points[i*res.Dim : (i+1)*res.Dim]
		s += vecmath.L2Sqr(p, res.Centroid(res.Assign[i]))
	}
	return s
}
