package faultfs

import (
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"
)

func writeN(t *testing.T, f interface{ Write([]byte) (int, error) }, payload []byte) (int, error) {
	t.Helper()
	return f.Write(payload)
}

// TestNthCallFiring: a Rule{Nth: n} fires on exactly the nth matching call —
// not before, and (non-sticky) not after.
func TestNthCallFiring(t *testing.T) {
	dir := t.TempDir()
	ffs := New(nil)
	ffs.Inject(Rule{Ops: []Op{OpSync}, Nth: 2, Err: syscall.EIO})

	f, err := ffs.OpenFile(filepath.Join(dir, "a"), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := f.Sync(); err != nil {
		t.Fatalf("1st sync should pass, got %v", err)
	}
	if err := f.Sync(); !errors.Is(err, syscall.EIO) {
		t.Fatalf("2nd sync should inject EIO, got %v", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("3rd sync should pass again (single-fault model), got %v", err)
	}
	if got := ffs.Fired(); got != 1 {
		t.Fatalf("Fired() = %d, want 1", got)
	}
}

// TestStickyRule: with Sticky set the rule keeps firing on every matching
// call from the Nth on — a fault that does not go away.
func TestStickyRule(t *testing.T) {
	dir := t.TempDir()
	ffs := New(nil)
	ffs.Inject(Rule{Ops: []Op{OpSync}, Nth: 2, Err: syscall.EIO, Sticky: true})

	f, err := ffs.OpenFile(filepath.Join(dir, "a"), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := f.Sync(); err != nil {
		t.Fatalf("1st sync should pass, got %v", err)
	}
	for i := 2; i <= 5; i++ {
		if err := f.Sync(); !errors.Is(err, syscall.EIO) {
			t.Fatalf("sync %d should inject EIO (sticky), got %v", i, err)
		}
	}
}

// TestPathFilter: PathContains restricts both matching and the per-rule call
// count — calls to other paths neither fire nor advance the ordinal.
func TestPathFilter(t *testing.T) {
	dir := t.TempDir()
	ffs := New(nil)
	ffs.Inject(Rule{Ops: []Op{OpSync}, PathContains: "wal-", Nth: 1, Err: syscall.EIO})

	other, err := ffs.OpenFile(filepath.Join(dir, "tiers.json"), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer other.Close()
	if err := other.Sync(); err != nil {
		t.Fatalf("sync of a non-matching path fired the rule: %v", err)
	}
	wal, err := ffs.OpenFile(filepath.Join(dir, "wal-000001.log"), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer wal.Close()
	if err := wal.Sync(); !errors.Is(err, syscall.EIO) {
		t.Fatalf("1st matching sync should inject EIO, got %v", err)
	}
}

// TestShortWrite: a Short rule performs half the write and then fails —
// the bytes must actually land so recovery sees a torn tail, not a clean
// miss.
func TestShortWrite(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "seg")
	ffs := New(nil)
	ffs.Inject(Rule{Ops: []Op{OpWrite}, Nth: 1, Err: syscall.ENOSPC, Short: true})

	f, err := ffs.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("0123456789")
	n, err := writeN(t, f, payload)
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("short write should report ENOSPC, got %v", err)
	}
	if n != len(payload)/2 {
		t.Fatalf("short write reported %d bytes, want %d", n, len(payload)/2)
	}
	f.Close()
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(blob) != "01234" {
		t.Fatalf("on-disk bytes %q, want the torn half %q", blob, "01234")
	}
}

// TestCrashAfter: a Crash rule lets the matching op SUCCEED (the rename hit
// the platter) and then fails every subsequent operation with ErrCrashed
// until a fresh FS is built over the directory.
func TestCrashAfter(t *testing.T) {
	dir := t.TempDir()
	oldp, newp := filepath.Join(dir, "old"), filepath.Join(dir, "new")
	if err := os.WriteFile(oldp, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	ffs := New(nil)
	ffs.Inject(Rule{Ops: []Op{OpRename}, Nth: 1, Crash: true})

	if err := ffs.Rename(oldp, newp); err != nil {
		t.Fatalf("the crashing op itself must succeed, got %v", err)
	}
	if _, err := os.Stat(newp); err != nil {
		t.Fatalf("rename did not reach the disk before the crash: %v", err)
	}
	if _, err := ffs.ReadFile(newp); !errors.Is(err, ErrCrashed) {
		t.Fatalf("read after crash = %v, want ErrCrashed", err)
	}
	if _, err := ffs.Open(newp); !errors.Is(err, ErrCrashed) {
		t.Fatalf("open after crash = %v, want ErrCrashed", err)
	}
	if err := ffs.Remove(newp); !errors.Is(err, ErrCrashed) {
		t.Fatalf("remove after crash = %v, want ErrCrashed", err)
	}
	// A "reboot" — a fresh FS over the same dir — sees the committed state.
	if blob, err := New(nil).ReadFile(newp); err != nil || string(blob) != "x" {
		t.Fatalf("post-reboot read = %q, %v", blob, err)
	}
}

// TestCallRecording: every injectable call is recorded in order with its op
// classification (O_CREATE maps to create, plain opens to open), and
// CountCalls filters by op.
func TestCallRecording(t *testing.T) {
	dir := t.TempDir()
	ffs := New(nil)
	f, err := ffs.OpenFile(filepath.Join(dir, "a"), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := writeN(t, f, []byte("hi")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := ffs.ReadFile(filepath.Join(dir, "a")); err != nil {
		t.Fatal(err)
	}
	wantOps := []Op{OpCreate, OpWrite, OpSync, OpRead}
	calls := ffs.Calls()
	if len(calls) != len(wantOps) {
		t.Fatalf("recorded %d calls %v, want %d", len(calls), calls, len(wantOps))
	}
	for i, c := range calls {
		if c.Op != wantOps[i] {
			t.Fatalf("call %d is %s %s, want op %s", i, c.Op, c.Path, wantOps[i])
		}
	}
	if n := ffs.CountCalls(WriteOps()...); n != 3 {
		t.Fatalf("CountCalls(WriteOps) = %d, want 3", n)
	}
	if n := ffs.CountCalls(ReadOps()...); n != 1 {
		t.Fatalf("CountCalls(ReadOps) = %d, want 1", n)
	}
	if n := ffs.CountCalls(); n != 4 {
		t.Fatalf("CountCalls() = %d, want 4", n)
	}
}

// TestParse covers the env-knob grammar end to end: a valid spec arms
// working rules, and each malformed field is rejected.
func TestParse(t *testing.T) {
	ffs, err := Parse("sync:wal-:2:eio:sticky, write:.seg:1:short")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	wal, err := ffs.OpenFile(filepath.Join(dir, "wal-000001.log"), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer wal.Close()
	if err := wal.Sync(); err != nil {
		t.Fatalf("1st WAL sync should pass, got %v", err)
	}
	if err := wal.Sync(); !errors.Is(err, syscall.EIO) {
		t.Fatalf("2nd WAL sync should inject EIO, got %v", err)
	}
	if err := wal.Sync(); !errors.Is(err, syscall.EIO) {
		t.Fatalf("3rd WAL sync should stay failed (sticky), got %v", err)
	}
	seg, err := ffs.OpenFile(filepath.Join(dir, "000001.seg"), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer seg.Close()
	if n, err := writeN(t, seg, []byte("abcd")); !errors.Is(err, syscall.ENOSPC) || n != 2 {
		t.Fatalf("segment write = (%d, %v), want the short half with ENOSPC", n, err)
	}

	for _, bad := range []string{
		"sync:wal-:2",          // too few fields
		"sync:wal-:2:eio:x:y",  // too many fields
		"frob:wal-:2:eio",      // unknown op
		"sync:wal-:-1:eio",     // negative ordinal
		"sync:wal-:two:eio",    // non-numeric ordinal
		"sync:wal-:2:ebadf",    // unknown error name
		"sync:wal-:2:eio:soon", // unknown flag
	} {
		if _, err := Parse(bad); err == nil {
			t.Fatalf("Parse(%q) accepted a malformed spec", bad)
		}
	}

	// An empty spec and stray commas/space parse to a transparent FS.
	if _, err := Parse(" , "); err != nil {
		t.Fatalf("Parse of blank spec: %v", err)
	}
}

// TestCrashSpec: the "crash" error name arms a crash-after rule through the
// same grammar the smoke script uses.
func TestCrashSpec(t *testing.T) {
	ffs, err := Parse("rename:tiers.json:1:crash")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	oldp := filepath.Join(dir, "tiers.json.tmp1")
	if err := os.WriteFile(oldp, []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := ffs.Rename(oldp, filepath.Join(dir, "tiers.json")); err != nil {
		t.Fatalf("crashing rename should succeed, got %v", err)
	}
	if err := ffs.SyncDir(dir); !errors.Is(err, ErrCrashed) {
		t.Fatalf("dir sync after crash = %v, want ErrCrashed", err)
	}
}
