package lsm

// The fail-stop contract, exhaustively: inject one storage fault at EVERY
// injectable call site across a fixed add/delete/flush/compact script and
// assert, for each resulting tree, that
//
//   - every acknowledged write is durable and searchable after re-open,
//   - every errored write is either absent or was errored to the client
//     (never served as a success in the process that reported the failure),
//   - searches never answer inconsistently (identity vs. a flat exact scan
//     over the live set holds before and after the reboot), and
//   - the tree ends in exactly one of {consistent, poisoned, read-only},
//     with quarantine reserved for corrupt bytes (its own test below).
//
// The sweep enumerates the sites with one fault-free run and then replays
// the script once per (site, failure kind): EIO, ENOSPC, a short (torn)
// write, and crash-after-success.

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"slices"
	"syscall"
	"testing"
	"time"

	"repro/internal/faultfs"
	"repro/internal/space"
	"repro/internal/vfs"
)

// faultScriptResult is the client's-eye view of one script run: which
// writes were acknowledged, which errored, and what the tree looked like
// when the dust settled.
type faultScriptResult struct {
	tree      *Tree[[]float32] // nil when Open itself failed
	openErr   error
	ackedAdds map[uint32][]byte   // id -> payload, as acknowledged to the client
	ackedDels map[uint32]struct{} // ids whose delete was acknowledged
	// errAddLo/Hi is the would-be id range [lo, hi) of the storage-errored
	// add batch (at most one exists: the first storage error makes the tree
	// sticky-unwritable). Ids in this range may or may not survive a reboot
	// — a failed commit's outcome is indeterminate — but must never have
	// been served pre-reboot.
	errAddLo, errAddHi uint32
	// errDelTargets are ids a storage-errored delete batch targeted; their
	// post-reboot liveness is likewise indeterminate.
	errDelTargets map[uint32]struct{}
	storageErrs   []error
}

// faultScriptOptions is the one tree configuration the whole sweep uses:
// durability on (fsync sites must be injectable) and a tier cap low enough
// that the script's third seal triggers compaction.
func faultScriptOptions(dir string, fsys vfs.FS, baseN int) Options[[]float32] {
	return Options[[]float32]{
		Dir:      dir,
		FS:       fsys,
		Space:    space.L2{},
		BaseN:    baseN,
		Decode:   decVec,
		MaxTiers: 2,
	}
}

// waitCompactDone polls until no compaction is running; background
// compaction I/O must finish before the next scripted op so the sweep's
// call numbering is deterministic.
func waitCompactDone(t *testing.T, tr *Tree[[]float32]) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if !tr.Status().Compacting {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("compaction did not finish")
}

// runFaultScript drives the fixed mutation script against a tree on fsys,
// recording per-op outcomes. Storage errors do not stop the script — later
// ops exercise the sticky poisoned/read-only rejection — but ErrInvalid
// rejections (targets vanished because an earlier op errored) are no-ops.
func runFaultScript(t *testing.T, fsys vfs.FS, dir string, base [][]float32) *faultScriptResult {
	t.Helper()
	res := &faultScriptResult{
		ackedAdds:     map[uint32][]byte{},
		ackedDels:     map[uint32]struct{}{},
		errDelTargets: map[uint32]struct{}{},
	}
	tree, err := Open(faultScriptOptions(dir, fsys, len(base)))
	if err != nil {
		res.openErr = err
		return res
	}
	res.tree = tree

	next := uint32(len(base)) // the id the next add batch starts at
	add := func(vecs [][]float32) {
		payloads := make([][]byte, len(vecs))
		for i, v := range vecs {
			payloads[i] = encVec(v)
		}
		ids, err := tree.AddBatch(payloads)
		if ids != nil {
			// Acknowledged (err, if any, is a seal-failure warning; the
			// writes themselves are durable).
			for i, id := range ids {
				res.ackedAdds[id] = payloads[i]
			}
			next = ids[len(ids)-1] + 1
		}
		if err != nil && !errors.Is(err, ErrInvalid) {
			res.storageErrs = append(res.storageErrs, err)
			if ids == nil && res.errAddLo == res.errAddHi {
				res.errAddLo, res.errAddHi = next, next+uint32(len(vecs))
			}
		}
	}
	// liveModel reports whether id is live per the acknowledged history.
	liveModel := func(id uint32) bool {
		if _, dead := res.ackedDels[id]; dead {
			return false
		}
		if int(id) < len(base) {
			return true
		}
		_, ok := res.ackedAdds[id]
		return ok
	}
	del := func(ids []uint32) {
		var targets []uint32
		for _, id := range ids {
			if liveModel(id) {
				targets = append(targets, id)
			}
		}
		if len(targets) == 0 {
			return
		}
		err := tree.DeleteBatch(targets)
		switch {
		case err == nil:
			for _, id := range targets {
				res.ackedDels[id] = struct{}{}
			}
		case errors.Is(err, ErrInvalid):
			// Model/tree divergence can only come from an earlier fault.
		default:
			res.storageErrs = append(res.storageErrs, err)
			for _, id := range targets {
				res.errDelTargets[id] = struct{}{}
			}
		}
	}
	flush := func() {
		if _, err := tree.Flush(); err != nil && !errors.Is(err, ErrInvalid) {
			res.storageErrs = append(res.storageErrs, err)
		}
		waitCompactDone(t, tree)
	}

	A := randVecs(7, 12)
	add(A[0:3])
	flush() // tier 1
	add(A[3:6])
	del([]uint32{1, uint32(len(base))}) // one base id, the first added id
	flush()                             // tier 2
	add(A[6:9])
	flush() // tier 3 > MaxTiers: compaction
	add(A[9:12])
	del([]uint32{0, uint32(len(base)) + 4}) // unsealed tail: WAL-only records
	return res
}

// verifyLiveSet checks the recovered tree against the acknowledged history:
// acked adds present with their exact payloads (unless an errored delete
// makes them indeterminate), acked deletes absent, and nothing live beyond
// the base corpus, the acked adds and the indeterminate errored-add range.
func verifyLiveSet(t *testing.T, tr *Tree[[]float32], baseN int, res *faultScriptResult, label string) {
	t.Helper()
	live := map[uint32]struct{}{}
	for _, id := range tr.LiveIDs() {
		live[id] = struct{}{}
	}
	for id, payload := range res.ackedAdds {
		if _, dead := res.ackedDels[id]; dead {
			continue
		}
		if _, indet := res.errDelTargets[id]; indet {
			continue
		}
		if _, ok := live[id]; !ok {
			t.Fatalf("%s: acknowledged add id %d lost", label, id)
		}
		obj, ok := tr.Object(id)
		if !ok {
			t.Fatalf("%s: acked id %d live but has no object", label, id)
		}
		want, err := decVec(payload)
		if err != nil || !slices.Equal(obj, want) {
			t.Fatalf("%s: acked id %d recovered wrong object %v, want %v", label, id, obj, want)
		}
	}
	for id := range res.ackedDels {
		if _, ok := live[id]; ok {
			t.Fatalf("%s: acknowledged delete of id %d did not stick", label, id)
		}
	}
	for id := range live {
		if int(id) < baseN {
			continue
		}
		_, acked := res.ackedAdds[id]
		if !acked && !(id >= res.errAddLo && id < res.errAddHi) {
			t.Fatalf("%s: live id %d was never acknowledged (errored range [%d,%d))",
				label, id, res.errAddLo, res.errAddHi)
		}
	}
}

// runOneFaultedScript executes the script under one armed rule and asserts
// the whole fail-stop contract: in-process visibility, sticky rejection,
// state machine, and post-reboot durability + identity.
func runOneFaultedScript(t *testing.T, rule faultfs.Rule, site faultfs.Call, label string, base [][]float32) {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "tree")
	ffs := faultfs.New(nil)
	ffs.Inject(rule)
	res := runFaultScript(t, ffs, dir, base)

	if res.tree != nil {
		tree := res.tree
		// In-process: nothing unacknowledged may be served.
		for _, id := range tree.LiveIDs() {
			if int(id) >= len(base) {
				if _, acked := res.ackedAdds[id]; !acked {
					t.Fatalf("%s: errored write id %d is being served pre-reboot", label, id)
				}
			}
		}
		st := tree.Status()
		if len(res.storageErrs) > 0 {
			// The state machine must have latched exactly one degraded mode,
			// writes must stay rejected with the matching sentinel, and
			// searches must keep serving.
			if st.State != StatePoisoned && st.State != StateReadOnly {
				t.Fatalf("%s: storage errors %v but state %q", label, res.storageErrs, st.State)
			}
			_, err := tree.AddBatch([][]byte{encVec(randVecs(13, 1)[0])})
			switch {
			case err == nil:
				t.Fatalf("%s: degraded tree accepted a write", label)
			case st.State == StatePoisoned && !errors.Is(err, ErrPoisoned):
				t.Fatalf("%s: poisoned tree rejected write with %v, want ErrPoisoned", label, err)
			case st.State == StateReadOnly && !errors.Is(err, ErrReadOnly):
				t.Fatalf("%s: read-only tree rejected write with %v, want ErrReadOnly", label, err)
			}
			if st.LastIOError == "" {
				t.Fatalf("%s: degraded tree reports no last_io_error", label)
			}
		} else if st.State != StateOK {
			t.Fatalf("%s: no client-visible storage error but state %q (%s)", label, st.State, st.LastIOError)
		}
		checkIdentity(t, tree, base, label+" pre-reboot")
		tree.Close() // best effort on a faulted fs
	}

	// Reboot on a healthy disk: recovery must converge with no corruption
	// (write faults tear nothing that the manifest names) and the
	// acknowledged history must hold.
	reopened, err := Open(faultScriptOptions(dir, nil, len(base)))
	if err != nil {
		t.Fatalf("%s: re-open after reboot failed: %v", label, err)
	}
	defer reopened.Close()
	if st := reopened.Status(); st.State != StateOK || len(st.Quarantined) != 0 {
		t.Fatalf("%s: rebooted tree state %q, quarantined %v", label, st.State, st.Quarantined)
	}
	verifyLiveSet(t, reopened, len(base), res, label+" post-reboot")
	checkIdentity(t, reopened, base, label+" post-reboot")
}

// TestFaultSweepWriteSites is the keystone sweep over every write-path
// site: create, write, fsync, directory fsync and rename, each failed with
// EIO, ENOSPC, a short write, and crash-after-success.
func TestFaultSweepWriteSites(t *testing.T) {
	base := randVecs(1, 6)

	// Fault-free enumeration run: counts the injectable write sites and
	// pins the baseline behavior the faulted runs diverge from.
	probe := faultfs.New(nil)
	dir := filepath.Join(t.TempDir(), "tree")
	res := runFaultScript(t, probe, dir, base)
	if res.tree == nil {
		t.Fatalf("fault-free open failed: %v", res.openErr)
	}
	if len(res.storageErrs) != 0 {
		t.Fatalf("fault-free run saw storage errors: %v", res.storageErrs)
	}
	checkIdentity(t, res.tree, base, "fault-free")
	res.tree.Close()

	var writeSites []faultfs.Call
	for _, c := range probe.Calls() {
		if slices.Contains(faultfs.WriteOps(), c.Op) {
			writeSites = append(writeSites, c)
		}
	}
	if len(writeSites) < 30 {
		t.Fatalf("only %d write sites enumerated; script no longer covers the pipeline", len(writeSites))
	}
	t.Logf("sweeping %d write sites", len(writeSites))

	kinds := []struct {
		name string
		rule func(n int) faultfs.Rule
	}{
		{"eio", func(n int) faultfs.Rule {
			return faultfs.Rule{Ops: faultfs.WriteOps(), Nth: n, Err: syscall.EIO}
		}},
		{"enospc", func(n int) faultfs.Rule {
			return faultfs.Rule{Ops: faultfs.WriteOps(), Nth: n, Err: syscall.ENOSPC}
		}},
		{"short", func(n int) faultfs.Rule {
			return faultfs.Rule{Ops: faultfs.WriteOps(), Nth: n, Err: syscall.ENOSPC, Short: true}
		}},
		{"crash", func(n int) faultfs.Rule {
			return faultfs.Rule{Ops: faultfs.WriteOps(), Nth: n, Crash: true}
		}},
	}
	stride := 1
	if testing.Short() {
		stride = 7
	}
	for _, kind := range kinds {
		kind := kind
		t.Run(kind.name, func(t *testing.T) {
			t.Parallel()
			for i := 1; i <= len(writeSites); i += stride {
				site := writeSites[i-1]
				label := fmt.Sprintf("%s@%d(%s %s)", kind.name, i, site.Op, filepath.Base(site.Path))
				runOneFaultedScript(t, kind.rule(i), site, label, base)
			}
		})
	}
}

// copyTreeDir clones a tree directory so each read-sweep iteration opens a
// pristine copy (a failing Open may still have truncated a WAL tail or
// removed debris).
func copyTreeDir(t *testing.T, src string) string {
	t.Helper()
	dst := filepath.Join(t.TempDir(), "tree")
	if err := os.MkdirAll(dst, 0o755); err != nil {
		t.Fatal(err)
	}
	des, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range des {
		if de.IsDir() {
			continue
		}
		blob, err := os.ReadFile(filepath.Join(src, de.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, de.Name()), blob, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// buildRecoveryFixture populates a tree directory with sealed tiers (with
// index files), tombstones and an unsealed WAL tail, then closes it.
func buildRecoveryFixture(t *testing.T, dir string, base [][]float32) []uint32 {
	t.Helper()
	opts := faultScriptOptions(dir, nil, len(base))
	opts.NoFsync = true
	opts.MaxTiers = 8 // no compaction: a fixed file set
	tree, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	A := randVecs(21, 8)
	for _, chunk := range [][][]float32{A[0:3], A[3:6]} {
		for _, v := range chunk {
			if _, err := tree.Add(encVec(v)); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := tree.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	if err := tree.Delete(uint32(len(base))); err != nil {
		t.Fatal(err)
	}
	for _, v := range A[6:8] { // unsealed tail
		if _, err := tree.Add(encVec(v)); err != nil {
			t.Fatal(err)
		}
	}
	want := tree.LiveIDs()
	if err := tree.Close(); err != nil {
		t.Fatal(err)
	}
	return want
}

// TestFaultSweepReadSites injects EIO at every read site of recovery (WAL
// read, manifest read, segment reads, index-file loads) and asserts Open
// either fails with a clean error that preserves EIO — never quarantining a
// possibly-intact file over a transient read failure — or succeeds with the
// full live set (the fault landed on a rebuildable derived read). Either
// way a later clean open must serve everything: no silent loss.
func TestFaultSweepReadSites(t *testing.T) {
	base := randVecs(1, 6)
	tmpl := filepath.Join(t.TempDir(), "tmpl")
	want := buildRecoveryFixture(t, tmpl, base)

	probe := faultfs.New(nil)
	tr, err := Open(faultScriptOptions(copyTreeDir(t, tmpl), probe, len(base)))
	if err != nil {
		t.Fatalf("fault-free recovery failed: %v", err)
	}
	if got := tr.LiveIDs(); !slices.Equal(got, want) {
		t.Fatalf("fault-free recovery live set %v, want %v", got, want)
	}
	tr.Close()
	nReads := probe.CountCalls(faultfs.ReadOps()...)
	if nReads < 5 {
		t.Fatalf("only %d read sites enumerated", nReads)
	}
	t.Logf("sweeping %d read sites", nReads)

	for i := 1; i <= nReads; i++ {
		dir := copyTreeDir(t, tmpl)
		ffs := faultfs.New(nil)
		ffs.InjectNthCall(i, syscall.EIO, faultfs.ReadOps()...)
		tr, err := Open(faultScriptOptions(dir, ffs, len(base)))
		if err != nil {
			if !errors.Is(err, syscall.EIO) {
				t.Fatalf("read site %d: Open failed without preserving EIO: %v", i, err)
			}
		} else {
			if st := tr.Status(); len(st.Quarantined) != 0 {
				t.Fatalf("read site %d: EIO quarantined tiers %v (must abort, not discard)", i, st.Quarantined)
			}
			if got := tr.LiveIDs(); !slices.Equal(got, want) {
				t.Fatalf("read site %d: recovered live set %v, want %v", i, got, want)
			}
			tr.Close()
		}
		// A clean retry (the transient fault cleared) must always serve the
		// complete tree.
		retry, err := Open(faultScriptOptions(dir, nil, len(base)))
		if err != nil {
			t.Fatalf("read site %d: clean retry failed: %v", i, err)
		}
		if got := retry.LiveIDs(); !slices.Equal(got, want) {
			t.Fatalf("read site %d: clean retry live set %v, want %v", i, got, want)
		}
		if st := retry.Status(); len(st.Quarantined) != 0 {
			t.Fatalf("read site %d: clean retry quarantined %v", i, st.Quarantined)
		}
		retry.Close()
	}
}

// TestQuarantineCorruptTier flips bytes inside a committed segment and
// asserts recovery quarantines exactly that tier: the damaged file is
// renamed aside (kept for forensics), the manifest drops it, the rest of
// the tree keeps serving, and the state is surfaced via Status.
func TestQuarantineCorruptTier(t *testing.T) {
	base := randVecs(1, 6)
	dir := filepath.Join(t.TempDir(), "tree")
	buildRecoveryFixture(t, dir, base)

	// Corrupt tier 1's segment body (past the header so the codec reader
	// sees a checksum failure, not a missing file).
	seg := segPath(dir, 1)
	blob, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	blob[len(blob)/2] ^= 0xff
	if err := os.WriteFile(seg, blob, 0o644); err != nil {
		t.Fatal(err)
	}

	tree, err := Open(faultScriptOptions(dir, nil, len(base)))
	if err != nil {
		t.Fatalf("recovery aborted on a corrupt tier instead of quarantining: %v", err)
	}
	st := tree.Status()
	if len(st.Quarantined) != 1 {
		t.Fatalf("Quarantined = %v, want exactly one entry", st.Quarantined)
	}
	if st.State != StateOK {
		t.Fatalf("quarantine flipped state to %q; reads and writes must keep working", st.State)
	}
	if len(st.Tiers) != 1 || st.Tiers[0].Seq != 2 {
		t.Fatalf("surviving tiers %+v, want only seq 2", st.Tiers)
	}
	if _, err := os.Stat(seg + quarantineExt); err != nil {
		t.Fatalf("corrupt segment was not renamed aside: %v", err)
	}
	// Tier 1 held the first sealed adds (ids 6,7,8 minus the deleted 6);
	// its objects are gone, tier 2's and the WAL tail's survive.
	for _, id := range []uint32{7, 8} {
		if _, ok := tree.Object(id); ok {
			t.Fatalf("id %d from the quarantined tier is still served", id)
		}
	}
	for _, id := range []uint32{9, 10, 11, 12, 13} {
		if _, ok := tree.Object(id); !ok {
			t.Fatalf("id %d outside the quarantined tier was lost", id)
		}
	}
	// The tree still accepts writes and searches consistently.
	if _, err := tree.Add(encVec(randVecs(31, 1)[0])); err != nil {
		t.Fatalf("add after quarantine: %v", err)
	}
	checkIdentity(t, tree, base, "after quarantine")
	if err := tree.Close(); err != nil {
		t.Fatal(err)
	}

	// The next recovery is clean: the manifest no longer names the tier and
	// the quarantined file is left in place for the operator.
	again, err := Open(faultScriptOptions(dir, nil, len(base)))
	if err != nil {
		t.Fatal(err)
	}
	defer again.Close()
	if st := again.Status(); len(st.Quarantined) != 0 {
		t.Fatalf("second recovery still reports quarantined %v", st.Quarantined)
	}
	if _, err := os.Stat(seg + quarantineExt); err != nil {
		t.Fatalf("quarantined file was cleaned up by removeStale: %v", err)
	}
	checkIdentity(t, again, base, "second recovery")
}
