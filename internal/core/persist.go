package core

import (
	"io"
	"sort"

	"repro/internal/codec"
	"repro/internal/permutation"
	"repro/internal/space"
	"repro/internal/vptree"
)

// Persistence for the permutation methods. Every payload follows the same
// pattern: the effective (defaulted) option struct, the pivot set as ids
// into the data slice, then the precomputed filtering structure (flattened
// permutations, posting lists, prefix trees, voter arrays). The raw data
// objects are never stored — loaders receive the same data slice the index
// was built over, validated against the header's recorded size and space
// name — so a single format serves every object type the paper evaluates.
//
// Indexes built over explicit pivot objects (NewNAPPWithPivots and friends)
// have no data ids to reference and Save returns codec.ErrNotPersistable.

// savePivots writes the pivot set as source ids, or fails for explicit
// pivot sets.
func savePivots[T any](cw *codec.Writer, pv *permutation.Pivots[T]) error {
	ids := pv.SourceIDs()
	if ids == nil {
		return codec.ErrNotPersistable
	}
	cw.I32s(ids)
	return nil
}

// loadPivots reconstructs a pivot set from the ids section.
func loadPivots[T any](cr *codec.Reader, sp space.Space[T], data []T) *permutation.Pivots[T] {
	ids := cr.I32s()
	if cr.Err() != nil {
		return nil
	}
	pv, err := permutation.FromIDs(sp, data, ids)
	if err != nil {
		cr.Corruptf("%v", err)
		return nil
	}
	return pv
}

// --- BruteForceFilter ---

// Save serializes the filter under kind "brute-force-filt".
func (f *BruteForceFilter[T]) Save(w io.Writer) error {
	cw := codec.NewWriter(w, codec.KindBruteForce, f.sp.Name(), len(f.data))
	if err := savePivots(cw, f.pivots); err != nil {
		return err
	}
	cw.Int(f.opts.NumPivots)
	cw.F64(f.opts.Gamma)
	cw.U8(uint8(f.opts.Dist))
	cw.Bool(f.opts.UseHeap)
	cw.I64(f.opts.Seed)
	cw.I32s(f.perms)
	return cw.Close()
}

// LoadBruteForceFilter reads a filter saved by Save over the same data.
func LoadBruteForceFilter[T any](cr *codec.Reader, sp space.Space[T], data []T) (*BruteForceFilter[T], error) {
	if err := cr.Expect(codec.KindBruteForce, sp.Name(), len(data)); err != nil {
		return nil, err
	}
	f := &BruteForceFilter[T]{sp: sp, data: data}
	f.pivots = loadPivots(cr, sp, data)
	f.opts.NumPivots = cr.Int()
	f.opts.Gamma = cr.F64()
	f.opts.Dist = PermDist(cr.U8())
	f.opts.UseHeap = cr.Bool()
	f.opts.Seed = cr.I64()
	f.perms = cr.I32s()
	if err := cr.Finish(); err != nil {
		return nil, err
	}
	if f.opts.NumPivots != f.pivots.M() || len(f.perms) != len(data)*f.pivots.M() || f.opts.Gamma <= 0 {
		cr.Corruptf("inconsistent brute-force sections (m=%d, pivots=%d, perms=%d)",
			f.opts.NumPivots, f.pivots.M(), len(f.perms))
		return nil, cr.Err()
	}
	return f, nil
}

// --- BinFilter ---

// Save serializes the binarized filter under kind "brute-force-filt-bin".
func (f *BinFilter[T]) Save(w io.Writer) error {
	cw := codec.NewWriter(w, codec.KindBinFilter, f.sp.Name(), len(f.data))
	if err := savePivots(cw, f.pivots); err != nil {
		return err
	}
	cw.Int(f.opts.NumPivots)
	cw.Int(f.opts.Threshold)
	cw.F64(f.opts.Gamma)
	cw.I64(f.opts.Seed)
	cw.Int(f.words)
	cw.U64s(f.bits)
	return cw.Close()
}

// LoadBinFilter reads a binarized filter saved by Save over the same data.
func LoadBinFilter[T any](cr *codec.Reader, sp space.Space[T], data []T) (*BinFilter[T], error) {
	if err := cr.Expect(codec.KindBinFilter, sp.Name(), len(data)); err != nil {
		return nil, err
	}
	f := &BinFilter[T]{sp: sp, data: data}
	f.pivots = loadPivots(cr, sp, data)
	f.opts.NumPivots = cr.Int()
	f.opts.Threshold = cr.Int()
	f.opts.Gamma = cr.F64()
	f.opts.Seed = cr.I64()
	f.words = cr.Int()
	f.bits = cr.U64s()
	if err := cr.Finish(); err != nil {
		return nil, err
	}
	if f.opts.NumPivots != f.pivots.M() ||
		f.words != permutation.BinaryWords(f.opts.NumPivots) ||
		len(f.bits) != len(data)*f.words || f.opts.Gamma <= 0 {
		cr.Corruptf("inconsistent bin-filter sections (m=%d, words=%d, bits=%d)",
			f.opts.NumPivots, f.words, len(f.bits))
		return nil, cr.Err()
	}
	return f, nil
}

// --- QuantFilter ---

// Save serializes the quantized-prefix filter under kind
// "brute-force-filt-quant".
func (f *QuantFilter[T]) Save(w io.Writer) error {
	cw := codec.NewWriter(w, codec.KindQuantFilter, f.sp.Name(), len(f.data))
	if err := savePivots(cw, f.pivots); err != nil {
		return err
	}
	cw.Int(f.opts.NumPivots)
	cw.Int(f.opts.PrefixLen)
	cw.F64(f.opts.Gamma)
	cw.I64(f.opts.Seed)
	cw.Int(f.words)
	cw.U64s(f.sigs)
	return cw.Close()
}

// LoadQuantFilter reads a quantized-prefix filter saved by Save over the
// same data.
func LoadQuantFilter[T any](cr *codec.Reader, sp space.Space[T], data []T) (*QuantFilter[T], error) {
	if err := cr.Expect(codec.KindQuantFilter, sp.Name(), len(data)); err != nil {
		return nil, err
	}
	f := &QuantFilter[T]{sp: sp, data: data}
	f.pivots = loadPivots(cr, sp, data)
	f.opts.NumPivots = cr.Int()
	f.opts.PrefixLen = cr.Int()
	f.opts.Gamma = cr.F64()
	f.opts.Seed = cr.I64()
	f.words = cr.Int()
	f.sigs = cr.U64s()
	if err := cr.Finish(); err != nil {
		return nil, err
	}
	if f.opts.NumPivots != f.pivots.M() ||
		f.opts.PrefixLen <= 0 || f.opts.PrefixLen > f.opts.NumPivots ||
		f.words != permutation.QuantizedWords(f.opts.PrefixLen) ||
		len(f.sigs) != len(data)*f.words || f.opts.Gamma <= 0 {
		cr.Corruptf("inconsistent quant-filter sections (m=%d, prefix=%d, words=%d, sigs=%d)",
			f.opts.NumPivots, f.opts.PrefixLen, f.words, len(f.sigs))
		return nil, cr.Err()
	}
	return f, nil
}

// --- DistVecFilter ---

// Save serializes the distance-vector filter under kind "distvec-filt".
func (f *DistVecFilter[T]) Save(w io.Writer) error {
	cw := codec.NewWriter(w, codec.KindDistVec, f.sp.Name(), len(f.data))
	if err := savePivots(cw, f.pivots); err != nil {
		return err
	}
	cw.Int(f.opts.NumPivots)
	cw.F64(f.opts.Gamma)
	cw.I64(f.opts.Seed)
	cw.F32s(f.vecs)
	return cw.Close()
}

// LoadDistVecFilter reads a filter saved by Save over the same data.
func LoadDistVecFilter[T any](cr *codec.Reader, sp space.Space[T], data []T) (*DistVecFilter[T], error) {
	if err := cr.Expect(codec.KindDistVec, sp.Name(), len(data)); err != nil {
		return nil, err
	}
	f := &DistVecFilter[T]{sp: sp, data: data}
	f.pivots = loadPivots(cr, sp, data)
	f.opts.NumPivots = cr.Int()
	f.opts.Gamma = cr.F64()
	f.opts.Seed = cr.I64()
	f.vecs = cr.F32s()
	if err := cr.Finish(); err != nil {
		return nil, err
	}
	if f.opts.NumPivots != f.pivots.M() || len(f.vecs) != len(data)*f.pivots.M() || f.opts.Gamma <= 0 {
		cr.Corruptf("inconsistent distvec sections (m=%d, vecs=%d)", f.opts.NumPivots, len(f.vecs))
		return nil, cr.Err()
	}
	return f, nil
}

// --- PPIndex ---

// Save serializes the prefix index under kind "pp-index". Trie nodes are
// written in preorder with children in ascending pivot order, so equal trees
// always produce identical bytes.
func (pp *PPIndex[T]) Save(w io.Writer) error {
	cw := codec.NewWriter(w, codec.KindPPIndex, pp.sp.Name(), len(pp.data))
	cw.Int(pp.opts.NumPivots)
	cw.Int(pp.opts.PrefixLen)
	cw.Int(pp.opts.Copies)
	cw.F64(pp.opts.Gamma)
	cw.I64(pp.opts.Seed)
	cw.Int(len(pp.trees))
	for _, tree := range pp.trees {
		if err := savePivots(cw, tree.pivots); err != nil {
			return err
		}
		encodePPNode(cw, tree.root)
	}
	return cw.Close()
}

func encodePPNode(cw *codec.Writer, n *ppNode) {
	cw.Int(n.count)
	cw.U32s(n.items)
	keys := make([]int32, 0, len(n.children))
	for k := range n.children {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	cw.U32(uint32(len(keys)))
	for _, k := range keys {
		cw.I32(k)
		encodePPNode(cw, n.children[k])
	}
}

// LoadPPIndex reads a prefix index saved by Save over the same data.
func LoadPPIndex[T any](cr *codec.Reader, sp space.Space[T], data []T) (*PPIndex[T], error) {
	if err := cr.Expect(codec.KindPPIndex, sp.Name(), len(data)); err != nil {
		return nil, err
	}
	pp := &PPIndex[T]{sp: sp, data: data}
	pp.opts.NumPivots = cr.Int()
	pp.opts.PrefixLen = cr.Int()
	pp.opts.Copies = cr.Int()
	pp.opts.Gamma = cr.F64()
	pp.opts.Seed = cr.I64()
	trees := cr.Int()
	// NumPivots <= n holds for every legitimate file (pivots are sampled
	// from the data set), and bounding it here bounds PrefixLen and hence
	// the node-decoding recursion below — a crafted deep file fails fast
	// instead of exhausting the stack.
	if cr.Err() == nil && (trees <= 0 || trees > 1<<16 ||
		pp.opts.NumPivots > len(data) ||
		pp.opts.PrefixLen <= 0 || pp.opts.PrefixLen > pp.opts.NumPivots || pp.opts.Gamma <= 0) {
		cr.Corruptf("inconsistent pp-index options (trees=%d, l=%d, m=%d)",
			trees, pp.opts.PrefixLen, pp.opts.NumPivots)
	}
	for c := 0; c < trees && cr.Err() == nil; c++ {
		tree := ppTree[T]{pivots: loadPivots(cr, sp, data)}
		tree.root = decodePPNode(cr, pp.opts.PrefixLen+1, len(data))
		if cr.Err() == nil && tree.pivots.M() != pp.opts.NumPivots {
			cr.Corruptf("tree %d has %d pivots, options say %d", c, tree.pivots.M(), pp.opts.NumPivots)
		}
		pp.trees = append(pp.trees, tree)
	}
	if err := cr.Finish(); err != nil {
		return nil, err
	}
	return pp, nil
}

func decodePPNode(cr *codec.Reader, depth, n int) *ppNode {
	if depth < 0 {
		cr.Corruptf("prefix tree deeper than its prefix length")
		return nil
	}
	node := &ppNode{count: cr.Int()}
	node.items = cr.U32s()
	for _, id := range node.items {
		if int(id) >= n {
			cr.Corruptf("prefix tree item %d out of range [0, %d)", id, n)
			return nil
		}
	}
	kids := cr.U32()
	if cr.Err() != nil {
		return nil
	}
	if kids > 0 {
		// No capacity hint: kids is attacker-controlled until the child
		// payloads behind it are actually decoded.
		node.children = make(map[int32]*ppNode)
	}
	for i := uint32(0); i < kids; i++ {
		key := cr.I32()
		child := decodePPNode(cr, depth-1, n)
		if cr.Err() != nil {
			return nil
		}
		node.children[key] = child
	}
	return node
}

// --- MIFile ---

// Save serializes the metric inverted file under kind "mi-file".
func (mf *MIFile[T]) Save(w io.Writer) error {
	cw := codec.NewWriter(w, codec.KindMIFile, mf.sp.Name(), len(mf.data))
	if err := savePivots(cw, mf.pivots); err != nil {
		return err
	}
	cw.Int(mf.opts.NumPivots)
	cw.Int(mf.opts.NumPivotIndex)
	cw.Int(mf.opts.NumPivotSearch)
	cw.Int(mf.opts.MaxPosDiff)
	cw.F64(mf.opts.Gamma)
	cw.I64(mf.opts.Seed)
	cw.Int(len(mf.postings))
	for _, list := range mf.postings {
		cw.U64(uint64(len(list)))
		for _, pe := range list {
			cw.I32(pe.pos)
			cw.U32(pe.id)
		}
	}
	return cw.Close()
}

// LoadMIFile reads an inverted file saved by Save over the same data.
func LoadMIFile[T any](cr *codec.Reader, sp space.Space[T], data []T) (*MIFile[T], error) {
	if err := cr.Expect(codec.KindMIFile, sp.Name(), len(data)); err != nil {
		return nil, err
	}
	mf := &MIFile[T]{sp: sp, data: data}
	mf.pivots = loadPivots(cr, sp, data)
	mf.opts.NumPivots = cr.Int()
	mf.opts.NumPivotIndex = cr.Int()
	mf.opts.NumPivotSearch = cr.Int()
	mf.opts.MaxPosDiff = cr.Int()
	mf.opts.Gamma = cr.F64()
	mf.opts.Seed = cr.I64()
	lists := cr.Int()
	if cr.Err() == nil {
		if lists < 0 || mf.pivots == nil || lists != mf.pivots.M() || lists != mf.opts.NumPivots ||
			mf.opts.NumPivotSearch <= 0 || mf.opts.NumPivotSearch > mf.opts.NumPivots ||
			mf.opts.Gamma <= 0 {
			cr.Corruptf("inconsistent mi-file options (lists=%d, m=%d, ms=%d)",
				lists, mf.opts.NumPivots, mf.opts.NumPivotSearch)
		}
	}
	if cr.Err() == nil {
		mf.postings = make([][]miPosting, lists)
		for p := range mf.postings {
			entries := cr.Length(8) // pos i32 + id u32 per entry
			list := make([]miPosting, entries)
			for i := range list {
				list[i] = miPosting{pos: cr.I32(), id: cr.U32()}
				if cr.Err() != nil {
					break
				}
				if int(list[i].id) >= len(data) {
					cr.Corruptf("posting id %d out of range [0, %d)", list[i].id, len(data))
					break
				}
			}
			if cr.Err() != nil {
				break
			}
			mf.postings[p] = list
		}
	}
	if err := cr.Finish(); err != nil {
		return nil, err
	}
	return mf, nil
}

// --- NAPP ---

// Save serializes the NAPP inverted file under kind "napp", including the
// dynamic-maintenance state (tombstoned ids), so a loaded index resumes
// exactly where the saved one stopped.
func (na *NAPP[T]) Save(w io.Writer) error {
	cw := codec.NewWriter(w, codec.KindNAPP, na.sp.Name(), len(na.data))
	if err := savePivots(cw, na.pivots); err != nil {
		return err
	}
	cw.Int(na.opts.NumPivots)
	cw.Int(na.opts.NumPivotIndex)
	cw.Int(na.opts.NumPivotSearch)
	cw.Int(na.opts.MinShared)
	cw.Int(na.opts.MaxCandidates)
	cw.I64(na.opts.Seed)
	cw.Int(len(na.postings))
	for _, list := range na.postings {
		cw.U32s(list)
	}
	dead := make([]uint32, 0, len(na.deleted))
	for id := range na.deleted {
		dead = append(dead, id)
	}
	sort.Slice(dead, func(i, j int) bool { return dead[i] < dead[j] })
	cw.U32s(dead)
	return cw.Close()
}

// LoadNAPP reads a NAPP index saved by Save over the same data (including
// any points appended with Add before saving).
func LoadNAPP[T any](cr *codec.Reader, sp space.Space[T], data []T) (*NAPP[T], error) {
	if err := cr.Expect(codec.KindNAPP, sp.Name(), len(data)); err != nil {
		return nil, err
	}
	na := &NAPP[T]{sp: sp, data: data}
	na.pivots = loadPivots(cr, sp, data)
	na.opts.NumPivots = cr.Int()
	na.opts.NumPivotIndex = cr.Int()
	na.opts.NumPivotSearch = cr.Int()
	na.opts.MinShared = cr.Int()
	na.opts.MaxCandidates = cr.Int()
	na.opts.Seed = cr.I64()
	lists := cr.Int()
	if cr.Err() == nil {
		if na.pivots == nil || lists != na.pivots.M() || lists != na.opts.NumPivots ||
			na.opts.NumPivotIndex <= 0 || na.opts.NumPivotIndex > na.opts.NumPivots ||
			na.opts.NumPivotSearch <= 0 || na.opts.NumPivotSearch > na.opts.NumPivots ||
			na.opts.NumPivotSearch > 255 || na.opts.MinShared <= 0 {
			cr.Corruptf("inconsistent napp options (lists=%d, m=%d, mi=%d, ms=%d, t=%d)",
				lists, na.opts.NumPivots, na.opts.NumPivotIndex,
				na.opts.NumPivotSearch, na.opts.MinShared)
		}
	}
	if cr.Err() == nil {
		na.postings = make([][]uint32, lists)
		for p := range na.postings {
			list := cr.U32s()
			for _, id := range list {
				if int(id) >= len(data) {
					cr.Corruptf("posting id %d out of range [0, %d)", id, len(data))
				}
			}
			if cr.Err() != nil {
				break
			}
			na.postings[p] = list
		}
	}
	dead := cr.U32s()
	if err := cr.Finish(); err != nil {
		return nil, err
	}
	if len(dead) > 0 {
		na.deleted = make(map[uint32]struct{}, len(dead))
		for _, id := range dead {
			if int(id) >= len(data) {
				cr.Corruptf("tombstone id %d out of range [0, %d)", id, len(data))
				return nil, cr.Err()
			}
			na.deleted[id] = struct{}{}
		}
	}
	return na, nil
}

// --- OMEDRANK ---

// Save serializes the rank-aggregation index under kind "omedrank".
func (om *OMEDRANK[T]) Save(w io.Writer) error {
	cw := codec.NewWriter(w, codec.KindOMEDRANK, om.sp.Name(), len(om.data))
	if om.pivotIDs == nil {
		return codec.ErrNotPersistable
	}
	cw.I32s(om.pivotIDs)
	cw.Int(om.opts.NumVoters)
	cw.F64(om.opts.Quorum)
	cw.F64(om.opts.Gamma)
	cw.I64(om.opts.Seed)
	cw.Int(len(om.voters))
	for _, v := range om.voters {
		cw.F64s(v.dists)
		cw.U32s(v.ids)
	}
	return cw.Close()
}

// LoadOMEDRANK reads an index saved by Save over the same data.
func LoadOMEDRANK[T any](cr *codec.Reader, sp space.Space[T], data []T) (*OMEDRANK[T], error) {
	if err := cr.Expect(codec.KindOMEDRANK, sp.Name(), len(data)); err != nil {
		return nil, err
	}
	om := &OMEDRANK[T]{sp: sp, data: data}
	ids := cr.I32s()
	if cr.Err() == nil {
		for _, id := range ids {
			if id < 0 || int(id) >= len(data) {
				cr.Corruptf("voter id %d out of range [0, %d)", id, len(data))
				break
			}
			om.pivots = append(om.pivots, data[id])
			om.pivotIDs = append(om.pivotIDs, id)
		}
	}
	om.opts.NumVoters = cr.Int()
	om.opts.Quorum = cr.F64()
	om.opts.Gamma = cr.F64()
	om.opts.Seed = cr.I64()
	voters := cr.Int()
	// The search-time quorum counters are 32-bit (scratch.Gains), but the
	// voter count must stay clear of absurd territory and match the pivot
	// list; 2^15 keeps the historical on-disk bound.
	if cr.Err() == nil && (voters <= 0 || voters != len(om.pivots) || voters > 1<<15 ||
		om.opts.Quorum <= 0 || om.opts.Quorum > 1 || om.opts.Gamma <= 0) {
		cr.Corruptf("inconsistent omedrank options (voters=%d, pivots=%d)", voters, len(om.pivots))
	}
	for v := 0; v < voters && cr.Err() == nil; v++ {
		voter := omedVoter{dists: cr.F64s(), ids: cr.U32s()}
		if cr.Err() != nil {
			break
		}
		if len(voter.dists) != len(data) || len(voter.ids) != len(data) {
			cr.Corruptf("voter %d ranks %d/%d points, data set has %d",
				v, len(voter.dists), len(voter.ids), len(data))
			break
		}
		for i := 1; i < len(voter.dists); i++ {
			if voter.dists[i] < voter.dists[i-1] {
				cr.Corruptf("voter %d distances not sorted at %d", v, i)
				break
			}
		}
		for _, id := range voter.ids {
			if int(id) >= len(data) {
				cr.Corruptf("voter %d ranks unknown id %d", v, id)
				break
			}
		}
		om.voters = append(om.voters, voter)
	}
	if err := cr.Finish(); err != nil {
		return nil, err
	}
	return om, nil
}

// --- PermVPTree ---

// Save serializes the permutation VP-tree under kind "perm-vptree": pivot
// ids, the flattened permutation matrix, then the embedded metric tree via
// vptree.Encode.
func (pt *PermVPTree[T]) Save(w io.Writer) error {
	cw := codec.NewWriter(w, codec.KindPermVPTree, pt.sp.Name(), len(pt.data))
	if err := savePivots(cw, pt.pivots); err != nil {
		return err
	}
	cw.Int(pt.opts.NumPivots)
	cw.F64(pt.opts.Gamma)
	cw.F64(pt.opts.Alpha)
	cw.Int(pt.opts.BucketSize)
	cw.I64(pt.opts.Seed)
	m := pt.pivots.M()
	flat := make([]int32, 0, len(pt.perms)*m)
	for _, p := range pt.perms {
		flat = append(flat, p...)
	}
	cw.I32s(flat)
	pt.tree.Encode(cw)
	return cw.Close()
}

// LoadPermVPTree reads an index saved by Save over the same data.
func LoadPermVPTree[T any](cr *codec.Reader, sp space.Space[T], data []T) (*PermVPTree[T], error) {
	if err := cr.Expect(codec.KindPermVPTree, sp.Name(), len(data)); err != nil {
		return nil, err
	}
	pt := &PermVPTree[T]{sp: sp, data: data}
	pt.pivots = loadPivots(cr, sp, data)
	pt.opts.NumPivots = cr.Int()
	pt.opts.Gamma = cr.F64()
	pt.opts.Alpha = cr.F64()
	pt.opts.BucketSize = cr.Int()
	pt.opts.Seed = cr.I64()
	flat := cr.I32s()
	if cr.Err() != nil {
		return nil, cr.Err()
	}
	m := pt.pivots.M()
	if pt.opts.NumPivots != m || len(flat) != len(data)*m || pt.opts.Gamma <= 0 {
		cr.Corruptf("inconsistent perm-vptree sections (m=%d, perms=%d, n=%d)", m, len(flat), len(data))
		return nil, cr.Err()
	}
	pt.perms = make([][]int32, len(data))
	for i := range pt.perms {
		pt.perms[i] = flat[i*m : (i+1)*m]
	}
	tree, err := vptree.Decode[[]int32](cr, permutation.RhoMetric{}, pt.perms)
	if err != nil {
		return nil, err
	}
	pt.tree = tree
	if err := cr.Finish(); err != nil {
		return nil, err
	}
	return pt, nil
}
