package seqscan

import (
	"io"

	"repro/internal/codec"
	"repro/internal/space"
)

// Persistence. A sequential scanner has no derived structure at all — the
// payload is empty and the file is pure header. It still participates in the
// format so "save every index of a deployment, load them all back" needs no
// special case for the exact baseline.

// Save serializes the scanner under kind "seqscan".
func (s *Scanner[T]) Save(w io.Writer) error {
	return codec.NewWriter(w, codec.KindSeqScan, s.sp.Name(), len(s.data)).Close()
}

// Load reads a scanner saved by Save over the same data.
func Load[T any](cr *codec.Reader, sp space.Space[T], data []T) (*Scanner[T], error) {
	if err := cr.Expect(codec.KindSeqScan, sp.Name(), len(data)); err != nil {
		return nil, err
	}
	if err := cr.Finish(); err != nil {
		return nil, err
	}
	return New(sp, data), nil
}
