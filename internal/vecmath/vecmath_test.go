package vecmath

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool {
	return math.Abs(a-b) <= eps*(1+math.Abs(a)+math.Abs(b))
}

func TestL2SqrKnown(t *testing.T) {
	a := []float32{1, 2, 3, 4, 5}
	b := []float32{5, 4, 3, 2, 1}
	// (4^2 + 2^2 + 0 + 2^2 + 4^2) = 40
	if got := L2Sqr(a, b); got != 40 {
		t.Fatalf("L2Sqr = %v, want 40", got)
	}
	if got := L2(a, b); !almostEqual(got, math.Sqrt(40), 1e-12) {
		t.Fatalf("L2 = %v, want sqrt(40)", got)
	}
}

func TestL1Known(t *testing.T) {
	a := []float32{1, 2, 3, 4, 5}
	b := []float32{5, 4, 3, 2, 1}
	if got := L1(a, b); got != 12 {
		t.Fatalf("L1 = %v, want 12", got)
	}
}

func TestDotKnown(t *testing.T) {
	a := []float32{1, 2, 3}
	b := []float32{4, 5, 6}
	if got := Dot(a, b); got != 32 {
		t.Fatalf("Dot = %v, want 32", got)
	}
}

func TestEmptyVectors(t *testing.T) {
	if got := L2Sqr(nil, nil); got != 0 {
		t.Fatalf("L2Sqr(nil,nil) = %v, want 0", got)
	}
	if got := L1(nil, nil); got != 0 {
		t.Fatalf("L1(nil,nil) = %v, want 0", got)
	}
	if got := Dot(nil, nil); got != 0 {
		t.Fatalf("Dot(nil,nil) = %v, want 0", got)
	}
}

func TestLengthMismatchPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"L2Sqr": func() { L2Sqr([]float32{1}, []float32{1, 2}) },
		"L1":    func() { L1([]float32{1}, []float32{1, 2}) },
		"Dot":   func() { Dot([]float32{1}, []float32{1, 2}) },
		"Add":   func() { Add([]float32{1}, []float32{1}, []float32{1, 2}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic on length mismatch", name)
				}
			}()
			f()
		}()
	}
}

// naive reference implementations used by property tests.
func naiveL2Sqr(a, b []float32) float64 {
	var s float64
	for i := range a {
		d := float64(a[i]) - float64(b[i])
		s += d * d
	}
	return s
}

func naiveL1(a, b []float32) float64 {
	var s float64
	for i := range a {
		s += math.Abs(float64(a[i]) - float64(b[i]))
	}
	return s
}

func naiveDot(a, b []float32) float64 {
	var s float64
	for i := range a {
		s += float64(a[i]) * float64(b[i])
	}
	return s
}

func randomPair(r *rand.Rand) ([]float32, []float32) {
	n := r.Intn(50)
	a := make([]float32, n)
	b := make([]float32, n)
	for i := range a {
		a[i] = float32(r.NormFloat64())
		b[i] = float32(r.NormFloat64())
	}
	return a, b
}

func TestUnrolledMatchesNaive(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		a, b := randomPair(r)
		if got, want := L2Sqr(a, b), naiveL2Sqr(a, b); !almostEqual(got, want, 1e-10) {
			t.Fatalf("L2Sqr mismatch: got %v want %v (len %d)", got, want, len(a))
		}
		if got, want := L1(a, b), naiveL1(a, b); !almostEqual(got, want, 1e-10) {
			t.Fatalf("L1 mismatch: got %v want %v", got, want)
		}
		if got, want := Dot(a, b), naiveDot(a, b); !almostEqual(got, want, 1e-10) {
			t.Fatalf("Dot mismatch: got %v want %v", got, want)
		}
	}
}

func TestL2PropertiesQuick(t *testing.T) {
	// Symmetry and identity of L2 over random vectors.
	symm := func(raw []float32) bool {
		n := len(raw) / 2
		a, b := raw[:n], raw[n:2*n]
		return almostEqual(L2Sqr(a, b), L2Sqr(b, a), 1e-9)
	}
	if err := quick.Check(symm, nil); err != nil {
		t.Errorf("L2 symmetry: %v", err)
	}
	ident := func(a []float32) bool {
		return L2Sqr(a, a) == 0
	}
	if err := quick.Check(ident, nil); err != nil {
		t.Errorf("L2 identity: %v", err)
	}
}

func TestTriangleInequalityL2(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		n := 1 + r.Intn(20)
		a, b, c := make([]float32, n), make([]float32, n), make([]float32, n)
		for j := 0; j < n; j++ {
			a[j] = float32(r.NormFloat64())
			b[j] = float32(r.NormFloat64())
			c[j] = float32(r.NormFloat64())
		}
		if L2(a, c) > L2(a, b)+L2(b, c)+1e-9 {
			t.Fatalf("triangle inequality violated")
		}
		if L1(a, c) > L1(a, b)+L1(b, c)+1e-9 {
			t.Fatalf("L1 triangle inequality violated")
		}
	}
}

func TestNormalize(t *testing.T) {
	a := []float32{3, 4}
	n := Normalize(a)
	if !almostEqual(n, 5, 1e-9) {
		t.Fatalf("Normalize returned %v, want 5", n)
	}
	if !almostEqual(Norm(a), 1, 1e-6) {
		t.Fatalf("norm after Normalize = %v, want 1", Norm(a))
	}
	z := []float32{0, 0}
	if Normalize(z) != 0 {
		t.Fatalf("Normalize(zero) should return 0")
	}
}

func TestNormalizeL1(t *testing.T) {
	a := []float32{1, 3}
	s := NormalizeL1(a)
	if s != 4 {
		t.Fatalf("NormalizeL1 returned %v, want 4", s)
	}
	if !almostEqual(Sum(a), 1, 1e-6) {
		t.Fatalf("sum after NormalizeL1 = %v, want 1", Sum(a))
	}
}

func TestCloneIndependent(t *testing.T) {
	a := []float32{1, 2, 3}
	c := Clone(a)
	c[0] = 99
	if a[0] != 1 {
		t.Fatalf("Clone is not independent")
	}
}

func TestAddAXPY(t *testing.T) {
	a := []float32{1, 2}
	b := []float32{3, 4}
	dst := make([]float32, 2)
	Add(dst, a, b)
	if dst[0] != 4 || dst[1] != 6 {
		t.Fatalf("Add = %v", dst)
	}
	AXPY(dst, 2, a)
	if dst[0] != 6 || dst[1] != 10 {
		t.Fatalf("AXPY = %v", dst)
	}
}

func TestMinMax(t *testing.T) {
	lo, hi := MinMax([]float32{3, -1, 7, 2})
	if lo != -1 || hi != 7 {
		t.Fatalf("MinMax = %v,%v", lo, hi)
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("MinMax(empty) should panic")
		}
	}()
	MinMax(nil)
}

func BenchmarkL2Sqr128(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	x := make([]float32, 128)
	y := make([]float32, 128)
	for i := range x {
		x[i] = float32(r.Float64())
		y[i] = float32(r.Float64())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		L2Sqr(x, y)
	}
}
