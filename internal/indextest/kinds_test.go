package indextest

import (
	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/knngraph"
	"repro/internal/lsh"
	"repro/internal/seqscan"
	"repro/internal/space"
	"repro/internal/vptree"
)

// The kind matrix: one deterministic builder per registered index kind,
// shared by the conformance and roundtrip test drivers. Builders fix every
// seed and use Workers: 1 so repeated builds are identical (required by the
// batch-vs-serial property's fallback clone path). The corpus split sizes
// and seed live in corpus.go, shared with external suites.

// kindCase names one index kind under test, generically over object type.
type kindCase[T any] struct {
	kind  string
	build Builder[T]
}

// genericKinds lists every kind constructible over an arbitrary space; the
// dense-vector driver appends mplsh.
func genericKinds[T any](sp space.Space[T], db []T) []kindCase[T] {
	return []kindCase[T]{
		{"brute-force-filt", func() (index.Index[T], error) {
			return core.NewBruteForceFilter(sp, db, core.BruteForceOptions{NumPivots: 32, Seed: kindSeed})
		}},
		{"brute-force-filt-bin", func() (index.Index[T], error) {
			return core.NewBinFilter(sp, db, core.BinFilterOptions{NumPivots: 64, Seed: kindSeed})
		}},
		{"brute-force-filt-quant", func() (index.Index[T], error) {
			return core.NewQuantFilter(sp, db, core.QuantFilterOptions{NumPivots: 32, PrefixLen: 16, Seed: kindSeed})
		}},
		{"distvec-filt", func() (index.Index[T], error) {
			return core.NewDistVecFilter(sp, db, core.BruteForceOptions{NumPivots: 32, Seed: kindSeed})
		}},
		{"pp-index", func() (index.Index[T], error) {
			return core.NewPPIndex(sp, db, core.PPIndexOptions{NumPivots: 16, PrefixLen: 4, Copies: 2, Seed: kindSeed})
		}},
		{"mi-file", func() (index.Index[T], error) {
			return core.NewMIFile(sp, db, core.MIFileOptions{
				NumPivots: 32, NumPivotIndex: 16, NumPivotSearch: 8, MaxPosDiff: 10, Seed: kindSeed,
			})
		}},
		{"napp", func() (index.Index[T], error) {
			return core.NewNAPP(sp, db, core.NAPPOptions{
				NumPivots: 64, NumPivotIndex: 16, MinShared: 1, Seed: kindSeed,
			})
		}},
		{"napp-dynamic", func() (index.Index[T], error) {
			// The dynamic flavor of NAPP: same structure plus live
			// tombstones and appended points, exercising the persisted
			// maintenance state.
			na, err := core.NewNAPP(sp, db[:len(db)-2], core.NAPPOptions{
				NumPivots: 64, NumPivotIndex: 16, MinShared: 1, Seed: kindSeed,
			})
			if err != nil {
				return nil, err
			}
			na.Add(db[len(db)-2])
			na.Add(db[len(db)-1])
			if err := na.Delete(3); err != nil {
				return nil, err
			}
			return na, nil
		}},
		{"omedrank", func() (index.Index[T], error) {
			return core.NewOMEDRANK(sp, db, core.OMEDRANKOptions{NumVoters: 6, Seed: kindSeed})
		}},
		{"perm-vptree", func() (index.Index[T], error) {
			return core.NewPermVPTree(sp, db, core.PermVPTreeOptions{NumPivots: 32, Seed: kindSeed})
		}},
		{"vptree", func() (index.Index[T], error) {
			return vptree.New(sp, db, vptree.Options{BucketSize: 8, Seed: kindSeed})
		}},
		{"sw-graph", func() (index.Index[T], error) {
			return knngraph.NewSW(sp, db, knngraph.Options{NN: 6, Workers: 1, Seed: kindSeed})
		}},
		{"nndescent-graph", func() (index.Index[T], error) {
			return knngraph.NewNNDescent(sp, db, knngraph.Options{NN: 6, Workers: 1, Seed: kindSeed})
		}},
		{"seqscan", func() (index.Index[T], error) {
			return seqscan.New(sp, db), nil
		}},
	}
}

// denseKinds is the full matrix over dense []float32 vectors under L2,
// including the L2-only multi-probe LSH baseline.
func denseKinds(sp space.Space[[]float32], db [][]float32) []kindCase[[]float32] {
	kinds := genericKinds[[]float32](sp, db)
	kinds = append(kinds, kindCase[[]float32]{"mplsh", func() (index.Index[[]float32], error) {
		m, err := lsh.New(db, lsh.Options{Tables: 4, Hashes: 8, Seed: kindSeed})
		if err != nil {
			return nil, err
		}
		return index.Index[[]float32](m), nil
	}})
	return kinds
}

// denseCorpus, dnaCorpus and histoCorpus alias the exported corpora of
// corpus.go under this package's historical names.
func denseCorpus() (db, queries [][]float32)       { return DenseCorpus() }
func dnaCorpus() (db, queries [][]byte)            { return DNACorpus() }
func histoCorpus() (db, queries []space.Histogram) { return HistoCorpus() }
