package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/codec"
	"repro/internal/persist"
	"repro/internal/vfs"
)

// Registry is the named-index set a server process holds: one entry per
// index file found at startup. The entry set is fixed for the life of the
// process (adding an index means restarting or running another process
// behind the router); what an entry *serves* is hot-swappable via Reload.
type Registry struct {
	entries map[string]*entry
	names   []string // sorted
}

// entry is one named index: the current snapshot plus lifetime counters.
// Counters survive reloads — they describe the name, not one generation of
// its file.
type entry struct {
	name     string
	path     string // the .psix file
	manifest string // its sidecar
	snap     atomic.Pointer[snapshot]
	// reloadMu serializes reloads of this entry. Searches never touch it:
	// they resolve snap once and run on that generation.
	reloadMu sync.Mutex
	stats    counters
	// tree is the mutable serving tier (manifest "mutable": true), nil for
	// an immutable entry. Unlike snap it persists across reloads: a reload
	// swaps the base index generation under the same tree, so acknowledged
	// writes survive. Writes hold ingestMu shared for their whole
	// append+ack; Reload holds it exclusively across its unsealed-writes
	// check and snapshot swap (see internal/server/mutable.go).
	tree     servedTree
	ingestMu sync.RWMutex
	// fs is the filesystem the entry's mutable tree does its disk I/O
	// through (vfs.OS in production; a faultfs in fault drills). Immutable
	// snapshot loading reads via package persist directly and is unaffected.
	fs vfs.FS
}

// snapshot is one loaded generation of an entry. A reload builds a complete
// new snapshot and swaps the pointer; in-flight queries keep answering on
// the generation they resolved, so a swap never tears a search.
type snapshot struct {
	served servedIndex
	hdr    codec.Header
	man    Manifest
	// paramMu guards the index's query-time knobs: every search holds it
	// shared, a request carrying per-request method params holds it
	// exclusively around apply+search+restore (the underlying setters are
	// documented as not safe concurrently with Search).
	paramMu sync.RWMutex
}

// counters are the per-index serving stats reported by /statusz.
type counters struct {
	requests  atomic.Int64 // search HTTP requests
	queries   atomic.Int64 // individual queries (each batch element counts)
	failures  atomic.Int64 // requests answered 4xx/5xx
	latencyNs atomic.Int64 // cumulative search handler latency
	reloads   atomic.Int64 // successful hot reloads
}

// OpenDir loads every index file (*.psix) in dir into a registry. Each file
// must have a sidecar manifest named <base>.json describing its corpus (see
// Manifest). Any unreadable file, missing sidecar or failed load aborts the
// whole set — a daemon either serves everything it was pointed at or
// refuses to start.
func OpenDir(dir string) (*Registry, error) {
	return OpenDirFS(dir, nil)
}

// OpenDirFS is OpenDir with an explicit storage filesystem for the mutable
// tier: every entry's LSM tree (WAL, segments, manifest) does its disk I/O
// through storage. nil means the real OS filesystem. The fault-injection
// harness (internal/faultfs, scripts/fault_smoke.sh) is the intended
// non-nil caller.
func OpenDirFS(dir string, storage vfs.FS) (*Registry, error) {
	if storage == nil {
		storage = vfs.OS{}
	}
	des, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	r := &Registry{entries: map[string]*entry{}}
	for _, de := range des {
		if de.IsDir() || !strings.HasSuffix(de.Name(), persist.Ext) {
			continue
		}
		name := strings.TrimSuffix(de.Name(), persist.Ext)
		e := &entry{
			name:     name,
			path:     filepath.Join(dir, de.Name()),
			manifest: filepath.Join(dir, name+".json"),
			fs:       storage,
		}
		snap, err := loadSnapshot(e)
		if err != nil {
			r.Close() // trees opened for earlier entries hold WAL handles
			return nil, fmt.Errorf("index %q: %w", name, err)
		}
		e.snap.Store(snap)
		r.entries[name] = e
		r.names = append(r.names, name)
	}
	if len(r.entries) == 0 {
		return nil, fmt.Errorf("no index files (*%s) in %s", persist.Ext, dir)
	}
	sort.Strings(r.names)
	return r, nil
}

// Close releases every entry's mutable tree (WAL file handles, background
// compaction). Searches over immutable snapshots are unaffected; writes
// fail after Close. Safe to call on a partially built registry.
func (r *Registry) Close() error {
	var first error
	for _, e := range r.entries {
		if e.tree == nil {
			continue
		}
		if err := e.tree.close(); err != nil && first == nil {
			first = fmt.Errorf("index %q: %w", e.name, err)
		}
	}
	return first
}

// loadSnapshot reads the entry's manifest and index file into a fresh
// snapshot, touching nothing shared — the caller decides when to swap.
func loadSnapshot(e *entry) (*snapshot, error) {
	man, err := readManifest(e.manifest)
	if err != nil {
		return nil, err
	}
	served, hdr, err := loadServed(e, man)
	if err != nil {
		return nil, err
	}
	return &snapshot{served: served, hdr: hdr, man: man}, nil
}

// readManifest parses one sidecar file.
func readManifest(path string) (Manifest, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return Manifest{}, fmt.Errorf("missing sidecar manifest %s (every .psix needs one; see server.Manifest)", path)
		}
		return Manifest{}, err
	}
	var man Manifest
	if err := json.Unmarshal(blob, &man); err != nil {
		return Manifest{}, fmt.Errorf("%s: %v", path, err)
	}
	return man, nil
}

// Names lists the registry's index names, sorted.
func (r *Registry) Names() []string { return r.names }

// get returns the named entry, or nil.
func (r *Registry) get(name string) *entry { return r.entries[name] }

// errUnsealedWrites marks a reload refused because the entry's mutable
// tree still holds writes only its WAL makes durable; the caller flushes
// (sealing them into a tier) and retries. Answered 409, not 500.
var errUnsealedWrites = errors.New("unsealed writes pending")

// Reload re-reads the named index's manifest and file from disk and swaps
// the new generation in atomically. In-flight queries finish on the old
// snapshot; new queries see the new one; nothing is ever served
// half-loaded. On failure the old snapshot stays live and the error is
// returned — reloading a bad file is a no-op, not an outage.
//
// For a mutable entry, Reload excludes writes for its whole duration (they
// answer 409 meanwhile) and refuses to run at all while the memtable holds
// unsealed writes: the new snapshot must go live against a tree whose
// state is fully sealed, so a reload can never race an acknowledgement.
func (r *Registry) Reload(name string) (codec.Header, error) {
	e := r.get(name)
	if e == nil {
		return codec.Header{}, fmt.Errorf("no index %q", name)
	}
	e.reloadMu.Lock()
	defer e.reloadMu.Unlock()
	if e.tree != nil {
		e.ingestMu.Lock()
		defer e.ingestMu.Unlock()
		if n := e.tree.unsealed(); n > 0 {
			return codec.Header{}, fmt.Errorf("index %q has %d unsealed writes (POST .../flush first): %w", name, n, errUnsealedWrites)
		}
	}
	snap, err := loadSnapshot(e)
	if err != nil {
		return codec.Header{}, err
	}
	e.snap.Store(snap)
	e.stats.reloads.Add(1)
	return snap.hdr, nil
}
