package obs

import "time"

// QueryTrace is a per-query stage breakdown, filled in by the search path
// when attached and ignored (one nil check per stage) when not. It is a
// plain struct of int64 accumulators — no atomics — because one trace
// belongs to one query: the engine's batch path gives each worker its own
// trace and merges after the barrier, and the server pools traces
// per-request. A nil *QueryTrace everywhere means "untraced" and costs
// nothing on the warm path.
//
// Counts come from the core filter/refine split the paper's efficiency
// argument rests on; the *Ns fields attribute wall time to pipeline
// stages, and the Lsm* fields attribute time to tiered-tree components.
type QueryTrace struct {
	// FilterCandidates is the number of candidate ids the permutation
	// filter stage produced for refinement (for exhaustive filters this is
	// the collection size; for posting-based filters, the distinct ids
	// that survived the candidate scan).
	FilterCandidates int64
	// RefineDistances is the number of exact distance evaluations spent
	// refining candidates (for seqscan, every live point).
	RefineDistances int64

	FilterNs int64 // permutation projection + candidate scan
	RefineNs int64 // exact-distance refinement loop
	MergeNs  int64 // candidate selection + result merge (SelectK, sorts, copy-out)

	// Tiered-tree component attribution (lsm.Tree).
	BaseNs     int64 // immutable base index search
	TierNs     int64 // sealed tier searches (summed)
	MemtableNs int64 // memtable search
	MaskNs     int64 // tombstone masking pass
	Components int64 // searchable components consulted (base + tiers + memtable)
}

// Reset zeroes the trace for reuse.
func (t *QueryTrace) Reset() { *t = QueryTrace{} }

// Merge accumulates o into t (used to fold per-worker batch traces into
// the request trace).
func (t *QueryTrace) Merge(o *QueryTrace) {
	t.FilterCandidates += o.FilterCandidates
	t.RefineDistances += o.RefineDistances
	t.FilterNs += o.FilterNs
	t.RefineNs += o.RefineNs
	t.MergeNs += o.MergeNs
	t.BaseNs += o.BaseNs
	t.TierNs += o.TierNs
	t.MemtableNs += o.MemtableNs
	t.MaskNs += o.MaskNs
	t.Components += o.Components
}

// StageNames labels the stages of StageNs, in order: the core
// filter/refine/merge pipeline, then the tiered tree's component
// attribution. Consumers (metric labels, slow-query log fields) use these
// names verbatim so every surface agrees on the vocabulary.
var StageNames = [...]string{"filter", "refine", "merge", "lsm_base", "lsm_tiers", "lsm_memtable", "lsm_mask"}

// StageNs returns the per-stage nanosecond totals in StageNames order.
func (t *QueryTrace) StageNs() [len(StageNames)]int64 {
	return [...]int64{t.FilterNs, t.RefineNs, t.MergeNs, t.BaseNs, t.TierNs, t.MemtableNs, t.MaskNs}
}

// AddSince adds the nanoseconds elapsed since t0 to *field. The caller
// nil-checks the trace; this helper exists so stage timing reads as one
// line at each instrumentation site.
func AddSince(field *int64, t0 time.Time) { *field += time.Since(t0).Nanoseconds() }

// Traceable is implemented by searchers that can attach a QueryTrace.
// Callers type-assert structurally (no package dependency on the index
// implementations) and MUST call SetTrace before every use of a pooled or
// cached searcher — including SetTrace(nil) for untraced queries — so a
// stale pointer from a previous query can never receive writes.
type Traceable interface {
	SetTrace(*QueryTrace)
}
