package vptree_test

// Allocation guards for the VP-tree query path, in the style of
// internal/core/alloc_test.go: on a warm tree the steady-state cost of a
// query is zero allocations through a Searcher's SearchAppend (the scratch
// stack and queue are owned by the handle) and at most one through plain
// Search (the returned result slice; traversal scratch is pooled). Run over
// L2 so only tree machinery is measured.

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/index"
	"repro/internal/space"
	"repro/internal/topk"
	"repro/internal/vptree"
)

func buildAllocTree(t *testing.T) (*vptree.Tree[[]float32], [][]float32) {
	t.Helper()
	const n, nq, seed = 600, 8, 7
	all := dataset.SIFT(seed, n+nq)
	tree, err := vptree.New[[]float32](space.L2{}, all[:n], vptree.Options{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return tree, all[n:]
}

// TestVPTreeSearchAppendZeroAllocs: a warm per-worker Searcher answers with
// zero steady-state allocations when the caller recycles the result buffer.
func TestVPTreeSearchAppendZeroAllocs(t *testing.T) {
	const k = 10
	tree, queries := buildAllocTree(t)
	s := index.SearcherProvider[[]float32](tree).NewSearcher()
	dst := make([]topk.Neighbor, 0, k)
	// Warm every query: each may deepen the frontier stack a little.
	for _, q := range queries {
		dst = s.SearchAppend(dst[:0], q, k)
	}
	qi := 0
	if avg := testing.AllocsPerRun(50, func() {
		dst = s.SearchAppend(dst[:0], queries[qi%len(queries)], k)
		qi++
	}); avg != 0 {
		t.Errorf("warm SearchAppend allocates %v times per run, want 0", avg)
	}
}

// TestVPTreeSearchSingleAlloc: plain Search costs at most the documented
// one allocation (the result slice) on a warm tree.
func TestVPTreeSearchSingleAlloc(t *testing.T) {
	const k = 10
	tree, queries := buildAllocTree(t)
	for _, q := range queries {
		tree.Search(q, k)
	}
	qi := 0
	if avg := testing.AllocsPerRun(50, func() {
		tree.Search(queries[qi%len(queries)], k)
		qi++
	}); avg > 1 {
		t.Errorf("warm Search allocates %v times per run, want <= 1 (the result slice)", avg)
	}
}
