// Dnasearch: approximate nearest-neighbor search over DNA reads under the
// normalized Levenshtein distance, the paper's Figure 4f scenario where
// brute-force filtering of *binarized* permutations wins: the distance is
// expensive (dynamic programming) while 256-bit sketches compare with a
// handful of XOR+popcount instructions.
//
//	go run ./examples/dnasearch
package main

import (
	"fmt"
	"log"
	"time"

	permsearch "repro"
	"repro/internal/dataset"
)

const (
	n       = 8000
	queries = 50
	k       = 10
)

func main() {
	reads := dataset.DNA(21, n+queries, dataset.DNAOptions{})
	db, qs := reads[:n], reads[n:]
	sp := permsearch.NormalizedLevenshtein{}

	scan := permsearch.NewSeqScan[[]byte](sp, db)
	start := time.Now()
	truth := make([]map[uint32]bool, len(qs))
	for i, q := range qs {
		truth[i] = map[uint32]bool{}
		for _, nb := range scan.Search(q, k) {
			truth[i][nb.ID] = true
		}
	}
	brute := time.Since(start) / time.Duration(len(qs))
	fmt.Printf("exact scan: %v per query over %d reads\n\n", brute, n)

	measure := func(name string, idx permsearch.Index[[]byte], build time.Duration) {
		start := time.Now()
		var hits, total int
		for i, q := range qs {
			for _, nb := range idx.Search(q, k) {
				if truth[i][nb.ID] {
					hits++
				}
			}
			total += k
		}
		per := time.Since(start) / time.Duration(len(qs))
		fmt.Printf("%-28s recall %5.1f%%  %9v/query  %6.1fx  build %v\n",
			name, 100*float64(hits)/float64(total), per,
			float64(brute)/float64(per), build.Round(time.Millisecond))
	}

	// Binarized permutation filter: 256 pivots packed into 4 words.
	start = time.Now()
	bin, err := permsearch.NewBinFilter[[]byte](sp, db, permsearch.BinFilterOptions{
		NumPivots: 256, Gamma: 0.03, Seed: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	measure("brute-force-filt-bin", bin, time.Since(start))

	// Full permutations at the same budget, for contrast.
	start = time.Now()
	bf, err := permsearch.NewBruteForceFilter[[]byte](sp, db, permsearch.BruteForceOptions{
		NumPivots: 128, Gamma: 0.03, Seed: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	measure("brute-force-filt", bf, time.Since(start))

	// VP-tree with generic-space pruning.
	start = time.Now()
	vt, err := permsearch.NewVPTree[[]byte](sp, db, permsearch.VPTreeOptions{Seed: 2})
	if err != nil {
		log.Fatal(err)
	}
	vt.SetAlpha(2, 2)
	measure("vptree (alpha=2)", vt, time.Since(start))

	// Show one query end to end.
	q := qs[0]
	fmt.Printf("\nquery read: %s\n", q)
	for i, nb := range bin.Search(q, 3) {
		fmt.Printf("  %d. %-40s dist=%.3f\n", i+1, db[nb.ID], nb.Dist)
	}
}
