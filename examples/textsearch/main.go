// Textsearch: k-NN retrieval over two text representations from the paper —
// sparse TF-IDF vectors under cosine distance (Wiki-sparse) and dense LDA
// topic histograms under the non-symmetric KL-divergence (Wiki-8).
//
// Demonstrates that the same generic index types work across object types
// and non-metric distances, including left-query handling for KL.
//
//	go run ./examples/textsearch
package main

import (
	"fmt"
	"log"
	"time"

	permsearch "repro"
	"repro/internal/dataset"
)

const (
	n       = 8000
	queries = 50
	k       = 10
)

func main() {
	fmt.Println("== Wiki-sparse: TF-IDF vectors, cosine distance ==")
	sparse()
	fmt.Println()
	fmt.Println("== Wiki-8: LDA topic histograms, KL-divergence (left queries) ==")
	histograms()
}

func sparse() {
	docs := dataset.WikiSparse(11, n+queries, dataset.WikiSparseOptions{})
	db, qs := docs[:n], docs[n:]
	sp := permsearch.CosineDistance{}

	scan := permsearch.NewSeqScan[permsearch.SparseVector](sp, db)
	start := time.Now()
	truth := make([]map[uint32]bool, len(qs))
	for i, q := range qs {
		truth[i] = map[uint32]bool{}
		for _, nb := range scan.Search(q, k) {
			truth[i][nb.ID] = true
		}
	}
	brute := time.Since(start) / time.Duration(len(qs))

	// Proximity graph: the only method the paper found efficient on
	// this high-dimensional sparse set (Figure 4i).
	start = time.Now()
	g, err := permsearch.NewSWGraph[permsearch.SparseVector](sp, db, permsearch.GraphOptions{
		NN: 10, InitAttempts: 2, EfSearch: 40, Seed: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	build := time.Since(start)

	start = time.Now()
	var hits, total int
	for i, q := range qs {
		for _, nb := range g.Search(q, k) {
			if truth[i][nb.ID] {
				hits++
			}
		}
		total += k
	}
	per := time.Since(start) / time.Duration(len(qs))
	fmt.Printf("sw-graph: recall %.1f%%, %v/query vs %v brute (%.1fx), built in %v\n",
		100*float64(hits)/float64(total), per, brute,
		float64(brute)/float64(per), build.Round(time.Millisecond))
}

func histograms() {
	docs := dataset.WikiLDA(13, n+queries, 8)
	db, qs := docs[:n], docs[n:]
	sp := permsearch.KLDivergence{}

	scan := permsearch.NewSeqScan[permsearch.Histogram](sp, db)
	start := time.Now()
	truth := make([]map[uint32]bool, len(qs))
	for i, q := range qs {
		truth[i] = map[uint32]bool{}
		for _, nb := range scan.Search(q, k) {
			truth[i][nb.ID] = true
		}
	}
	brute := time.Since(start) / time.Duration(len(qs))

	// VP-tree with the polynomial pruner (beta=2 for KL, per §3.2):
	// the paper's winner on low-dimensional histograms (Figure 4d).
	start = time.Now()
	vt, err := permsearch.NewVPTree[permsearch.Histogram](sp, db, permsearch.VPTreeOptions{
		Beta: 2, Seed: 5,
	})
	if err != nil {
		log.Fatal(err)
	}
	build := time.Since(start)

	start = time.Now()
	var hits, total int
	for i, q := range qs {
		for _, nb := range vt.Search(q, k) {
			if truth[i][nb.ID] {
				hits++
			}
		}
		total += k
	}
	per := time.Since(start) / time.Duration(len(qs))
	fmt.Printf("vptree (beta=2): recall %.1f%%, %v/query vs %v brute (%.1fx), built in %v\n",
		100*float64(hits)/float64(total), per, brute,
		float64(brute)/float64(per), build.Round(time.Millisecond))

	// NAPP works on the non-metric space too.
	start = time.Now()
	napp, err := permsearch.NewNAPP[permsearch.Histogram](sp, db, permsearch.NAPPOptions{
		NumPivots: 256, NumPivotIndex: 16, MinShared: 2, Seed: 5,
	})
	if err != nil {
		log.Fatal(err)
	}
	build = time.Since(start)
	start = time.Now()
	hits, total = 0, 0
	for i, q := range qs {
		for _, nb := range napp.Search(q, k) {
			if truth[i][nb.ID] {
				hits++
			}
		}
		total += k
	}
	per = time.Since(start) / time.Duration(len(qs))
	fmt.Printf("napp (t=2):      recall %.1f%%, %v/query vs %v brute (%.1fx), built in %v\n",
		100*float64(hits)/float64(total), per, brute,
		float64(brute)/float64(per), build.Round(time.Millisecond))
}
