package space

import (
	"fmt"
	"math"
	"sort"
)

// SparseVector is a high-dimensional vector stored as parallel slices of
// strictly increasing indices and their non-zero values. The Wiki-sparse
// data set (TF-IDF vectors over a 10^5-term vocabulary, ~150 non-zeros each)
// uses this representation.
//
// Norm caches the Euclidean norm; NewSparseVector fills it in. A zero Norm
// with non-empty values indicates a vector built by hand — call Renorm.
type SparseVector struct {
	Idx  []int32
	Val  []float32
	Norm float64
}

// NewSparseVector builds a sparse vector from index/value pairs. The pairs
// need not be sorted; they are sorted here. Duplicate indices or non-finite
// values are rejected.
func NewSparseVector(idx []int32, val []float32) (SparseVector, error) {
	if len(idx) != len(val) {
		return SparseVector{}, fmt.Errorf("space: sparse vector has %d indices but %d values", len(idx), len(val))
	}
	type pair struct {
		i int32
		v float32
	}
	ps := make([]pair, len(idx))
	for k := range idx {
		if math.IsNaN(float64(val[k])) || math.IsInf(float64(val[k]), 0) {
			return SparseVector{}, fmt.Errorf("space: non-finite value at position %d", k)
		}
		ps[k] = pair{idx[k], val[k]}
	}
	sort.Slice(ps, func(a, b int) bool { return ps[a].i < ps[b].i })
	sv := SparseVector{Idx: make([]int32, len(ps)), Val: make([]float32, len(ps))}
	for k, p := range ps {
		if k > 0 && p.i == ps[k-1].i {
			return SparseVector{}, fmt.Errorf("space: duplicate index %d", p.i)
		}
		sv.Idx[k] = p.i
		sv.Val[k] = p.v
	}
	sv.Renorm()
	return sv, nil
}

// Renorm recomputes the cached Euclidean norm.
func (v *SparseVector) Renorm() {
	var s float64
	for _, x := range v.Val {
		s += float64(x) * float64(x)
	}
	v.Norm = math.Sqrt(s)
}

// NNZ returns the number of stored non-zero entries.
func (v SparseVector) NNZ() int { return len(v.Idx) }

// SparseDot returns the inner product of two sparse vectors using a
// sorted-index merge. The paper's C++ code accelerates this intersection
// with an all-against-all SIMD comparison (Schlegel et al.); the merge here
// is the portable equivalent with a galloping fast path when one operand is
// much shorter than the other.
func SparseDot(a, b SparseVector) float64 {
	// Galloping pays off when lengths are very unbalanced.
	if len(a.Idx) > 16*len(b.Idx) {
		a, b = b, a
	}
	if len(b.Idx) > 16*len(a.Idx) {
		return gallopDot(a, b)
	}
	var s float64
	i, j := 0, 0
	for i < len(a.Idx) && j < len(b.Idx) {
		switch {
		case a.Idx[i] < b.Idx[j]:
			i++
		case a.Idx[i] > b.Idx[j]:
			j++
		default:
			s += float64(a.Val[i]) * float64(b.Val[j])
			i++
			j++
		}
	}
	return s
}

// gallopDot computes the dot product when a is much shorter than b: for each
// element of a it binary-searches the remaining suffix of b.
func gallopDot(a, b SparseVector) float64 {
	var s float64
	lo := 0
	for i := range a.Idx {
		target := a.Idx[i]
		j := lo + sort.Search(len(b.Idx)-lo, func(k int) bool { return b.Idx[lo+k] >= target })
		if j == len(b.Idx) {
			break
		}
		if b.Idx[j] == target {
			s += float64(a.Val[i]) * float64(b.Val[j])
			j++
		}
		lo = j
	}
	return s
}

// CosineDistance is the non-metric cosine dissimilarity
//
//	d(x, y) = 1 - <x,y> / (|x| |y|)
//
// over sparse vectors, used for the Wiki-sparse experiments. It is symmetric
// but violates the triangle inequality (its monotone transform, the angular
// distance, is a metric — see §3.5 of the paper).
type CosineDistance struct{}

// Distance returns the cosine dissimilarity between data and query.
// Vectors with zero norm are at distance 1 from everything (no direction).
func (CosineDistance) Distance(data, query SparseVector) float64 {
	if data.Norm == 0 || query.Norm == 0 {
		return 1
	}
	cos := SparseDot(data, query) / (data.Norm * query.Norm)
	// Guard against floating-point drift outside [-1, 1].
	if cos > 1 {
		cos = 1
	} else if cos < -1 {
		cos = -1
	}
	return 1 - cos
}

// Name implements Space.
func (CosineDistance) Name() string { return "cosine" }

// Properties implements Space: symmetric but not a metric.
func (CosineDistance) Properties() Properties { return Properties{Symmetric: true} }
