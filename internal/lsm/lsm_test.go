package lsm

// The tree's contract is identity: whatever sequence of adds, deletes,
// seals, compactions, crashes and re-opens produced the current live set,
// Search must answer byte-identically to a single flat exact index built
// over that live set. Every test here reduces to that comparison, plus the
// durability property: recovery from a WAL cut at ANY byte boundary yields
// exactly the acknowledged prefix of the write history.

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"slices"
	"sync"
	"testing"
	"time"

	"repro/internal/seqscan"
	"repro/internal/space"
	"repro/internal/topk"
)

const testDim = 4

func encVec(v []float32) []byte {
	buf := make([]byte, 0, 4*len(v))
	for _, x := range v {
		buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(x))
	}
	return buf
}

func decVec(raw []byte) ([]float32, error) {
	if len(raw) == 0 || len(raw)%4 != 0 {
		return nil, fmt.Errorf("bad vector payload of %d bytes", len(raw))
	}
	v := make([]float32, len(raw)/4)
	for i := range v {
		v[i] = math.Float32frombits(binary.LittleEndian.Uint32(raw[4*i:]))
	}
	return v, nil
}

func randVecs(seed int64, n int) [][]float32 {
	r := rand.New(rand.NewSource(seed))
	out := make([][]float32, n)
	for i := range out {
		v := make([]float32, testDim)
		for j := range v {
			v[j] = float32(r.NormFloat64() * 10)
		}
		out[i] = v
	}
	return out
}

func testOptions(t *testing.T, baseN int) Options[[]float32] {
	t.Helper()
	return Options[[]float32]{
		Dir:    filepath.Join(t.TempDir(), "tree"),
		Space:  space.L2{},
		BaseN:  baseN,
		Decode: decVec,
		// Fast (non-durable) by default; crash tests construct cut WAL
		// files explicitly, so they don't depend on fsync either.
		NoFsync: true,
	}
}

func mustOpen(t *testing.T, opts Options[[]float32]) *Tree[[]float32] {
	t.Helper()
	tr, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tr.Close() })
	return tr
}

// flatRef builds the identity oracle: an exact scan over the tree's live
// set (base objects below BaseN, the tree's own copies above), answering
// with global ids. Because live ids are ascending, translating the flat
// scanner's positional ids to global ids preserves (dist, id) order.
func flatRef(t *testing.T, tree *Tree[[]float32], base [][]float32) func(q []float32, k int) []topk.Neighbor {
	t.Helper()
	ids := tree.LiveIDs()
	objs := make([][]float32, len(ids))
	for i, id := range ids {
		if int(id) < len(base) {
			objs[i] = base[id]
			continue
		}
		obj, ok := tree.Object(id)
		if !ok {
			t.Fatalf("live id %d has no object", id)
		}
		objs[i] = obj
	}
	flat := seqscan.New[[]float32](space.L2{}, objs)
	return func(q []float32, k int) []topk.Neighbor {
		nbs := flat.Search(q, k)
		out := make([]topk.Neighbor, len(nbs))
		for i, nb := range nbs {
			out[i] = topk.Neighbor{ID: ids[nb.ID], Dist: nb.Dist}
		}
		return out
	}
}

// checkIdentity asserts tree search == flat search for a deterministic
// query battery.
func checkIdentity(t *testing.T, tree *Tree[[]float32], base [][]float32, label string) {
	t.Helper()
	ref := flatRef(t, tree, base)
	baseIdx := seqscan.New[[]float32](space.L2{}, base)
	queries := randVecs(99, 10)
	for qi, q := range queries {
		for _, k := range []int{1, 3, 25} {
			got := tree.Search(baseIdx, q, k)
			want := ref(q, k)
			if !slices.Equal(got, want) {
				t.Fatalf("%s: query %d k=%d:\ntree %+v\nflat %+v", label, qi, k, got, want)
			}
		}
	}
}

func TestTreeAddDeleteSearchIdentity(t *testing.T) {
	base := randVecs(1, 50)
	tree := mustOpen(t, testOptions(t, len(base)))
	adds := randVecs(2, 30)
	for i, v := range adds {
		id, err := tree.Add(encVec(v))
		if err != nil {
			t.Fatal(err)
		}
		if int(id) != len(base)+i {
			t.Fatalf("add %d assigned id %d, want %d", i, id, len(base)+i)
		}
	}
	checkIdentity(t, tree, base, "after adds")

	// Delete a mix of base ids and added ids.
	for _, id := range []uint32{3, 17, 49, 52, 61, 79} {
		if err := tree.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	checkIdentity(t, tree, base, "after deletes")

	if err := tree.Delete(3); err == nil {
		t.Fatal("double delete succeeded")
	}
	if err := tree.Delete(200); err == nil {
		t.Fatal("deleting unknown id succeeded")
	}
	st := tree.Status()
	if st.Live != len(base)+30-6 {
		t.Fatalf("Live = %d, want %d", st.Live, len(base)+30-6)
	}
	if st.NextID != uint32(len(base)+30) {
		t.Fatalf("NextID = %d", st.NextID)
	}
}

func TestTreeFlushSealsAndStaysIdentical(t *testing.T) {
	base := randVecs(3, 40)
	tree := mustOpen(t, testOptions(t, len(base)))
	adds := randVecs(4, 25)
	for _, v := range adds[:10] {
		if _, err := tree.Add(encVec(v)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tree.Delete(5); err != nil { // base delete → tier tombstone
		t.Fatal(err)
	}
	if err := tree.Delete(42); err != nil { // memtable delete → excluded at seal
		t.Fatal(err)
	}
	st, err := tree.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if st == nil || st.N != 9 || st.Tombstones != 1 {
		t.Fatalf("sealed tier = %+v, want n=9 tombs=1", st)
	}
	checkIdentity(t, tree, base, "after first seal")

	// Second segment: more adds, delete an id that lives in tier 1.
	for _, v := range adds[10:] {
		if _, err := tree.Add(encVec(v)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tree.Delete(41); err != nil {
		t.Fatal(err)
	}
	if _, err := tree.Flush(); err != nil {
		t.Fatal(err)
	}
	checkIdentity(t, tree, base, "after second seal")

	status := tree.Status()
	if len(status.Tiers) != 2 {
		t.Fatalf("tiers = %+v", status.Tiers)
	}
	if status.WalRecords != 0 {
		t.Fatalf("post-seal WAL still holds %d records", status.WalRecords)
	}
	// Flush with nothing pending is a no-op.
	st, err = tree.Flush()
	if err != nil || st != nil {
		t.Fatalf("empty flush = %+v, %v", st, err)
	}
}

func TestTreeMemtableOverflowSealsAutomatically(t *testing.T) {
	base := randVecs(5, 10)
	opts := testOptions(t, len(base))
	opts.MemtableCap = 8
	tree := mustOpen(t, opts)
	for _, v := range randVecs(6, 20) {
		if _, err := tree.Add(encVec(v)); err != nil {
			t.Fatal(err)
		}
	}
	st := tree.Status()
	if len(st.Tiers) != 2 {
		t.Fatalf("expected 2 auto-sealed tiers, got %+v", st.Tiers)
	}
	if st.MemtableLive != 4 {
		t.Fatalf("memtable live = %d, want 4", st.MemtableLive)
	}
	checkIdentity(t, tree, base, "after overflow seals")
}

func TestTreeReopenPreservesEverything(t *testing.T) {
	base := randVecs(7, 30)
	opts := testOptions(t, len(base))
	tree := mustOpen(t, opts)
	adds := randVecs(8, 18)
	for _, v := range adds[:12] {
		if _, err := tree.Add(encVec(v)); err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range []uint32{2, 33} {
		if err := tree.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tree.Flush(); err != nil {
		t.Fatal(err)
	}
	// Leave unsealed writes in the WAL on top of the tier.
	for _, v := range adds[12:] {
		if _, err := tree.Add(encVec(v)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tree.Delete(40); err != nil { // tier-resident → segTombs
		t.Fatal(err)
	}
	wantLive := tree.LiveIDs()
	wantNext := tree.Status().NextID
	if err := tree.Close(); err != nil {
		t.Fatal(err)
	}

	re := mustOpen(t, opts)
	if got := re.LiveIDs(); !slices.Equal(got, wantLive) {
		t.Fatalf("live set changed across reopen:\n%v\n%v", got, wantLive)
	}
	if re.Status().NextID != wantNext {
		t.Fatalf("NextID = %d, want %d", re.Status().NextID, wantNext)
	}
	checkIdentity(t, re, base, "after reopen")

	// The replayed tree keeps accepting writes.
	id, err := re.Add(encVec(randVecs(9, 1)[0]))
	if err != nil {
		t.Fatal(err)
	}
	if id != wantNext {
		t.Fatalf("post-reopen add assigned %d, want %d", id, wantNext)
	}
}

func TestTreeTombstoneOnlyTierHasNoIndexFile(t *testing.T) {
	base := randVecs(10, 20)
	opts := testOptions(t, len(base))
	tree := mustOpen(t, opts)
	for _, id := range []uint32{1, 2, 3} {
		if err := tree.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	st, err := tree.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if st == nil || st.N != 0 || st.Tombstones != 3 || st.Kind != "" {
		t.Fatalf("tombstone-only tier = %+v", st)
	}
	if _, err := os.Stat(idxPath(opts.Dir, st.Seq)); !os.IsNotExist(err) {
		t.Fatalf("tombstone-only tier wrote an index file (err=%v)", err)
	}
	tree.Close()
	re := mustOpen(t, opts)
	checkIdentity(t, re, base, "tombstone-only tier after reopen")
}

func TestTreeCancelledSegmentRotatesWithoutTier(t *testing.T) {
	base := randVecs(11, 10)
	opts := testOptions(t, len(base))
	tree := mustOpen(t, opts)
	id, err := tree.Add(encVec(randVecs(12, 1)[0]))
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Delete(id); err != nil {
		t.Fatal(err)
	}
	st, err := tree.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if st != nil {
		t.Fatalf("cancelled segment sealed a tier: %+v", st)
	}
	status := tree.Status()
	if len(status.Tiers) != 0 || status.WalRecords != 0 || status.WalSeq != 2 {
		t.Fatalf("status after cancelled seal: %+v", status)
	}
	// The cancelled id is still never reused — even across a reopen.
	tree.Close()
	re := mustOpen(t, opts)
	id2, err := re.Add(encVec(randVecs(13, 1)[0]))
	if err != nil {
		t.Fatal(err)
	}
	if id2 != id+1 {
		t.Fatalf("id %d reused after cancellation, want %d", id2, id+1)
	}
}

func waitCompacted(t *testing.T, tree *Tree[[]float32], maxTiers int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := tree.Status()
		if st.CompactErr != "" {
			t.Fatalf("compaction failed: %s", st.CompactErr)
		}
		if !st.Compacting && len(st.Tiers) <= maxTiers {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("compaction did not settle: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestTreeCompactionMergesTiers(t *testing.T) {
	base := randVecs(14, 30)
	opts := testOptions(t, len(base))
	opts.MaxTiers = 2
	tree := mustOpen(t, opts)
	adds := randVecs(15, 24)
	for i, v := range adds {
		if _, err := tree.Add(encVec(v)); err != nil {
			t.Fatal(err)
		}
		if i%8 == 7 {
			// Tombstone one base id and one added id per segment, then seal.
			if err := tree.Delete(uint32(i / 8)); err != nil {
				t.Fatal(err)
			}
			if err := tree.Delete(uint32(len(base) + i - 3)); err != nil {
				t.Fatal(err)
			}
			if _, err := tree.Flush(); err != nil {
				t.Fatal(err)
			}
		}
	}
	waitCompacted(t, tree, opts.MaxTiers)
	st := tree.Status()
	if len(st.Tiers) != 1 {
		t.Fatalf("tiers after compaction = %+v", st.Tiers)
	}
	// 24 adds - 3 deleted added ids; tombstones: only the 3 base ids (the
	// added-id tombstones dropped their targets during the merge and are
	// spent).
	if st.Tiers[0].N != 21 || st.Tiers[0].Tombstones != 3 {
		t.Fatalf("merged tier = %+v, want n=21 tombs=3", st.Tiers[0])
	}
	if st.Deleted != 3 {
		t.Fatalf("mask size = %d, want 3", st.Deleted)
	}
	checkIdentity(t, tree, base, "after compaction")

	// Replaced tier files are gone; only the merged tier's remain.
	entries, err := os.ReadDir(opts.Dir)
	if err != nil {
		t.Fatal(err)
	}
	var segs int
	for _, e := range entries {
		var seq uint64
		if matchSeq(e.Name(), ".seg", &seq) {
			segs++
		}
	}
	if segs != 1 {
		t.Fatalf("%d segment files on disk, want 1", segs)
	}

	// And the compacted tree survives a reopen.
	tree.Close()
	re := mustOpen(t, opts)
	checkIdentity(t, re, base, "compacted tree after reopen")
}

// TestTreeCrashRecoveryEveryByteBoundary is the durability property test:
// cut the WAL at EVERY byte boundary, reopen, and require the recovered
// tree to equal a flat rebuild over exactly the writes whose records
// survived the cut in full. This is what "kill -9 loses no acknowledged
// write" means mechanically: fsync ran at each ack, so a crash leaves some
// byte-prefix of the log, and every such prefix must recover cleanly.
func TestTreeCrashRecoveryEveryByteBoundary(t *testing.T) {
	base := randVecs(16, 20)
	scratch := t.TempDir()
	opts := Options[[]float32]{
		Dir: filepath.Join(scratch, "tree"), Space: space.L2{},
		BaseN: len(base), Decode: decVec, NoFsync: true,
	}
	tree, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}

	// Scripted write history; op = (add vec) or (delete id). Includes base
	// deletes, added-id deletes and an add-then-delete pair.
	type op struct {
		vec []float32 // nil ⇒ delete
		id  uint32
	}
	addVecs := randVecs(17, 12)
	var ops []op
	for i, v := range addVecs {
		ops = append(ops, op{vec: v})
		switch i {
		case 3:
			ops = append(ops, op{id: 2}) // base
		case 5:
			ops = append(ops, op{id: 21}) // added earlier (20 + 1)
		case 7:
			ops = append(ops, op{id: 27}) // add-then-delete: just-added id
		case 9:
			ops = append(ops, op{id: 15}) // base
		}
	}
	for _, o := range ops {
		if o.vec != nil {
			if _, err := tree.Add(encVec(o.vec)); err != nil {
				t.Fatal(err)
			}
		} else if err := tree.Delete(o.id); err != nil {
			t.Fatal(err)
		}
	}
	if err := tree.Close(); err != nil {
		t.Fatal(err)
	}

	walBytes, err := os.ReadFile(walPath(opts.Dir, 1))
	if err != nil {
		t.Fatal(err)
	}
	manifestBytes, err := os.ReadFile(filepath.Join(opts.Dir, manifestName))
	if err != nil {
		t.Fatal(err)
	}

	// Record boundaries: offsets at which exactly m records are complete.
	boundaries := []int64{walHeaderLen}
	off := int64(walHeaderLen)
	for off < int64(len(walBytes)) {
		frameLen := int64(binary.LittleEndian.Uint32(walBytes[off:]))
		off += 4 + frameLen + 4
		boundaries = append(boundaries, off)
	}
	if off != int64(len(walBytes)) {
		t.Fatalf("WAL does not parse into whole records (ends at %d of %d)", off, len(walBytes))
	}
	if len(boundaries) != len(ops)+1 {
		t.Fatalf("%d boundaries for %d ops", len(boundaries), len(ops))
	}

	// expectedLive[m] = live id set after the first m ops.
	expectedLive := make([][]uint32, len(ops)+1)
	live := make(map[uint32][]float32)
	for i := range base {
		live[uint32(i)] = base[i]
	}
	nextID := uint32(len(base))
	snap := func() []uint32 {
		ids := make([]uint32, 0, len(live))
		for id := range live {
			ids = append(ids, id)
		}
		slices.Sort(ids)
		return ids
	}
	expectedLive[0] = snap()
	for m, o := range ops {
		if o.vec != nil {
			live[nextID] = o.vec
			nextID++
		} else {
			delete(live, o.id)
		}
		expectedLive[m+1] = snap()
	}

	queries := randVecs(18, 4)
	baseIdx := seqscan.New[[]float32](space.L2{}, base)
	for cut := int64(walHeaderLen); cut <= int64(len(walBytes)); cut++ {
		// Recovered records = boundaries fully at or before the cut.
		m := 0
		for m+1 < len(boundaries) && boundaries[m+1] <= cut {
			m++
		}
		dir := filepath.Join(scratch, fmt.Sprintf("cut-%d", cut))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, manifestName), manifestBytes, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(walPath(dir, 1), walBytes[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		cutOpts := opts
		cutOpts.Dir = dir
		re, err := Open(cutOpts)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if got := re.LiveIDs(); !slices.Equal(got, expectedLive[m]) {
			t.Fatalf("cut %d (%d records): live %v, want %v", cut, m, got, expectedLive[m])
		}
		// Spot-check identity at a few interesting cuts (every one would
		// be O(boundaries × queries × scan) for no extra coverage).
		if cut == boundaries[m] || cut == boundaries[m]+1 {
			ref := flatRef(t, re, base)
			for _, q := range queries {
				got := re.Search(baseIdx, q, 5)
				if want := ref(q, 5); !slices.Equal(got, want) {
					t.Fatalf("cut %d: search diverges:\n%+v\n%+v", cut, got, want)
				}
			}
		}
		re.Close()
		os.RemoveAll(dir)
	}
}

// TestTreeRecoveryAfterSealCrashWindows drops the tree into each state a
// crash between seal steps leaves behind (orphaned tier files without a
// manifest entry; committed manifest without the next WAL segment; stale
// previous WAL) and requires Open to recover the committed state.
func TestTreeRecoveryAfterSealCrashWindows(t *testing.T) {
	base := randVecs(19, 20)
	opts := testOptions(t, len(base))
	tree := mustOpen(t, opts)
	for _, v := range randVecs(20, 6) {
		if _, err := tree.Add(encVec(v)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tree.Flush(); err != nil {
		t.Fatal(err)
	}
	wantLive := tree.LiveIDs()
	tree.Close()

	// Crash window A: tier files written, manifest not yet committed —
	// simulate by planting orphan files for an unlisted sequence.
	if err := os.WriteFile(segPath(opts.Dir, 77), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(idxPath(opts.Dir, 77), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Crash window B: manifest committed, new WAL never created.
	if err := os.Remove(walPath(opts.Dir, 2)); err != nil {
		t.Fatal(err)
	}
	// Crash window C: previous WAL not yet deleted.
	if err := os.WriteFile(walPath(opts.Dir, 1), []byte("PSWLxx-stale"), 0o644); err != nil {
		t.Fatal(err)
	}

	re := mustOpen(t, opts)
	if got := re.LiveIDs(); !slices.Equal(got, wantLive) {
		t.Fatalf("recovered live set %v, want %v", got, wantLive)
	}
	checkIdentity(t, re, base, "after seal-crash recovery")
	for _, stale := range []string{segPath(opts.Dir, 77), idxPath(opts.Dir, 77), walPath(opts.Dir, 1)} {
		if _, err := os.Stat(stale); !os.IsNotExist(err) {
			t.Fatalf("stale file %s survived recovery (err=%v)", stale, err)
		}
	}
}

func TestTreeRebuildsMissingTierIndex(t *testing.T) {
	base := randVecs(21, 15)
	opts := testOptions(t, len(base))
	tree := mustOpen(t, opts)
	for _, v := range randVecs(22, 5) {
		if _, err := tree.Add(encVec(v)); err != nil {
			t.Fatal(err)
		}
	}
	st, err := tree.Flush()
	if err != nil {
		t.Fatal(err)
	}
	tree.Close()
	// The .psix is derived state; corrupt it and require a rebuild.
	if err := os.WriteFile(idxPath(opts.Dir, st.Seq), []byte("not an index"), 0o644); err != nil {
		t.Fatal(err)
	}
	re := mustOpen(t, opts)
	checkIdentity(t, re, base, "after tier index rebuild")
}

func TestTreeOpenRejectsMismatches(t *testing.T) {
	opts := testOptions(t, 10)
	tree := mustOpen(t, opts)
	tree.Close()
	wrongN := opts
	wrongN.BaseN = 11
	if _, err := Open(wrongN); err == nil {
		t.Fatal("Open accepted a different BaseN")
	}
	wrongSpace := opts
	wrongSpace.Space = space.L1{}
	if _, err := Open(wrongSpace); err == nil {
		t.Fatal("Open accepted a different space")
	}
}

func TestTreeClosedRejectsWrites(t *testing.T) {
	opts := testOptions(t, 5)
	tree := mustOpen(t, opts)
	if err := tree.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := tree.Add(encVec(randVecs(23, 1)[0])); err == nil {
		t.Fatal("Add on closed tree succeeded")
	}
	if err := tree.Delete(1); err == nil {
		t.Fatal("Delete on closed tree succeeded")
	}
	if err := tree.Close(); err != nil {
		t.Fatal("second Close errored")
	}
}

// TestTreeConcurrentWritesAndSearches exercises the memtable guard under
// the race detector: writers add/delete/flush while searchers hammer the
// tree. Every search must return only live, never-duplicated ids and obey
// the k contract.
func TestTreeConcurrentWritesAndSearches(t *testing.T) {
	base := randVecs(24, 40)
	opts := testOptions(t, len(base))
	opts.MemtableCap = 16
	opts.MaxTiers = 2
	tree := mustOpen(t, opts)
	baseIdx := seqscan.New[[]float32](space.L2{}, base)

	var writers, searchers sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 2; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			vecs := randVecs(int64(25+w), 120)
			var mine []uint32
			for i, v := range vecs {
				ids, err := tree.AddBatch([][]byte{encVec(v)})
				if err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
				mine = append(mine, ids...)
				if i%7 == 3 && len(mine) > 2 {
					victim := mine[len(mine)/2]
					mine = slices.DeleteFunc(mine, func(id uint32) bool { return id == victim })
					if err := tree.Delete(victim); err != nil {
						t.Errorf("writer %d delete %d: %v", w, victim, err)
						return
					}
				}
				if i%31 == 30 {
					if _, err := tree.Flush(); err != nil {
						t.Errorf("writer %d flush: %v", w, err)
						return
					}
				}
			}
		}(w)
	}
	for s := 0; s < 3; s++ {
		searchers.Add(1)
		go func(s int) {
			defer searchers.Done()
			queries := randVecs(int64(35+s), 8)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				q := queries[i%len(queries)]
				nbs := tree.Search(baseIdx, q, 10)
				if len(nbs) > 10 {
					t.Errorf("searcher %d: %d results for k=10", s, len(nbs))
					return
				}
				seen := make(map[uint32]bool, len(nbs))
				for j, nb := range nbs {
					if seen[nb.ID] {
						t.Errorf("searcher %d: duplicate id %d", s, nb.ID)
						return
					}
					seen[nb.ID] = true
					// Canonical (dist, id) order is strict: ids are unique,
					// so each neighbor must sort strictly after the last.
					if j > 0 {
						prev := nbs[j-1]
						if prev.Dist > nb.Dist || (prev.Dist == nb.Dist && prev.ID >= nb.ID) {
							t.Errorf("searcher %d: unsorted results %+v", s, nbs)
							return
						}
					}
				}
				tree.Status()
			}
		}(s)
	}
	writers.Wait()
	close(stop)
	searchers.Wait()
	waitCompacted(t, tree, opts.MaxTiers)
	checkIdentity(t, tree, base, "after concurrent churn")
}

func TestMatchSeqAndWal(t *testing.T) {
	var seq uint64
	for name, want := range map[string]bool{
		"000001.seg": true, "012345.seg": true,
		"1.seg": false, "0000001.seg": false, "x.seg": false, ".seg": false,
	} {
		if got := matchSeq(name, ".seg", &seq); got != want {
			t.Errorf("matchSeq(%q) = %v, want %v", name, got, want)
		}
	}
	if !matchSeq("000042.seg", ".seg", &seq) || seq != 42 {
		t.Errorf("matchSeq parsed seq %d", seq)
	}
	for name, want := range map[string]bool{
		"wal-000001.log": true, "wal-1.log": false, "wal-.log": false,
		"wal-000001.seg": false,
	} {
		if got := matchWal(name, &seq); got != want {
			t.Errorf("matchWal(%q) = %v, want %v", name, got, want)
		}
	}
}
