// Command figure2 regenerates the data behind Figure 2 of the paper:
// original-space distances vs projected-space distances for random
// projections and permutation projections, sampled from two strata (random
// pairs and 100-NN pairs).
//
// Output columns: dataset, kind (perm|rand), stratum (random|nn),
// original-distance, projected-distance.
//
// Usage:
//
//	figure2 [-n 2000] [-dim 64] [-pairs 250] [-seed 1] [-datasets ...]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	n := flag.Int("n", 2000, "points per data set (the paper samples from 1M)")
	dim := flag.Int("dim", 64, "projection dimensionality (paper: 64)")
	pairs := flag.Int("pairs", 250, "sample pairs per stratum")
	seed := flag.Int64("seed", 1, "random seed")
	datasets := flag.String("datasets", "", "comma-separated subset (default: the paper's panels)")
	flag.Parse()

	// The paper's eight panels: rand-proj for SIFT and Wiki-sparse, perm
	// for the rest (the runners emit both kinds where applicable).
	names := []string{"sift", "wiki-sparse", "wiki-8-kl", "dna", "wiki-128-kl", "wiki-128-js"}
	if *datasets != "" {
		names = strings.Split(*datasets, ",")
	}
	cfg := experiments.Config{N: *n, Seed: *seed}
	fmt.Println("# Figure 2: dataset\tkind\tstratum\toriginal\tprojected")
	for _, name := range names {
		r, ok := experiments.Get(name)
		if !ok {
			fmt.Fprintf(os.Stderr, "figure2: unknown dataset %q (known: %s)\n",
				name, strings.Join(experiments.Names(), ", "))
			os.Exit(2)
		}
		if err := r.Figure2(cfg, *dim, *pairs, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "figure2: %s: %v\n", name, err)
			os.Exit(1)
		}
	}
}
