package indextest

// The tiered-identity property suite: an lsm.Tree (mutable memtable +
// sealed tiers + tombstone masking) in front of a base index must answer
// *identically* — ids and distances, ties broken canonically — to a single
// flat exact scan over the same live set, for every registered index kind
// serving as the base.
//
// As in the sharded suite (internal/router), identity holds exactly when
// the base index returns its true top-k, so every kind is parameterized
// for full recall: filter methods run with Gamma=1, NAPP/MI-file index and
// search all pivots, the VP-trees run with a vanishing pruning stretch,
// the graphs search with an exhaustive frontier, and MPLSH hashes
// everything into one bucket. With the base exact, the only thing
// separating tiered from flat answers is the WAL/memtable/seal/tombstone
// machinery — exactly what is under test. The mutation script is chosen to
// force delete-masking across tiers: base objects and long-sealed added
// objects are tombstoned from newer segments.

import (
	"encoding/json"
	"maps"
	"slices"
	"testing"

	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/knngraph"
	"repro/internal/lsh"
	"repro/internal/lsm"
	"repro/internal/seqscan"
	"repro/internal/space"
	"repro/internal/vptree"
)

// tieredKind builds one full-recall-parameterized index kind over an
// arbitrary corpus subset (the tree's base corpus).
type tieredKind[T any] struct {
	kind  string
	build func(data []T) (index.Index[T], error)
}

// tieredFullRecallKinds mirrors the full-recall matrix of the sharded
// suite; see internal/router/local_test.go for the per-kind rationale.
func tieredFullRecallKinds[T any](sp space.Space[T]) []tieredKind[T] {
	return []tieredKind[T]{
		{"seqscan", func(data []T) (index.Index[T], error) {
			return seqscan.New(sp, data), nil
		}},
		{"vptree", func(data []T) (index.Index[T], error) {
			return vptree.New(sp, data, vptree.Options{BucketSize: 8, AlphaLeft: 1e-12, AlphaRight: 1e-12, Seed: kindSeed})
		}},
		{"brute-force-filt", func(data []T) (index.Index[T], error) {
			return core.NewBruteForceFilter(sp, data, core.BruteForceOptions{NumPivots: 16, Gamma: 1, Seed: kindSeed})
		}},
		{"brute-force-filt-bin", func(data []T) (index.Index[T], error) {
			return core.NewBinFilter(sp, data, core.BinFilterOptions{NumPivots: 32, Gamma: 1, Seed: kindSeed})
		}},
		{"brute-force-filt-quant", func(data []T) (index.Index[T], error) {
			return core.NewQuantFilter(sp, data, core.QuantFilterOptions{NumPivots: 32, PrefixLen: 16, Gamma: 1, Seed: kindSeed})
		}},
		{"distvec-filt", func(data []T) (index.Index[T], error) {
			return core.NewDistVecFilter(sp, data, core.BruteForceOptions{NumPivots: 16, Gamma: 1, Seed: kindSeed})
		}},
		{"pp-index", func(data []T) (index.Index[T], error) {
			return core.NewPPIndex(sp, data, core.PPIndexOptions{NumPivots: 16, PrefixLen: 4, Copies: 2, Gamma: 1, Seed: kindSeed})
		}},
		{"mi-file", func(data []T) (index.Index[T], error) {
			return core.NewMIFile(sp, data, core.MIFileOptions{
				NumPivots: 16, NumPivotIndex: 16, NumPivotSearch: 16, Gamma: 1, Seed: kindSeed,
			})
		}},
		{"napp", func(data []T) (index.Index[T], error) {
			return core.NewNAPP(sp, data, core.NAPPOptions{
				NumPivots: 32, NumPivotIndex: 32, MinShared: 1, Seed: kindSeed,
			})
		}},
		{"omedrank", func(data []T) (index.Index[T], error) {
			return core.NewOMEDRANK(sp, data, core.OMEDRANKOptions{NumVoters: 6, Gamma: 1, Seed: kindSeed})
		}},
		{"perm-vptree", func(data []T) (index.Index[T], error) {
			return core.NewPermVPTree(sp, data, core.PermVPTreeOptions{NumPivots: 16, Gamma: 1, Seed: kindSeed})
		}},
		{"sw-graph", func(data []T) (index.Index[T], error) {
			return knngraph.NewSW(sp, data, knngraph.Options{
				NN: 10, EfSearch: len(data), InitAttempts: 4, Workers: 1, Seed: kindSeed,
			})
		}},
		{"nndescent-graph", func(data []T) (index.Index[T], error) {
			return knngraph.NewNNDescent(sp, data, knngraph.Options{
				NN: 10, EfSearch: len(data), InitAttempts: 4, Workers: 1, Seed: kindSeed,
			})
		}},
	}
}

func tieredDenseKinds(sp space.Space[[]float32]) []tieredKind[[]float32] {
	kinds := tieredFullRecallKinds[[]float32](sp)
	return append(kinds, tieredKind[[]float32]{"mplsh", func(data [][]float32) (index.Index[[]float32], error) {
		m, err := lsh.New(data, lsh.Options{Tables: 1, Hashes: 1, Width: 1e12, Seed: kindSeed})
		if err != nil {
			return nil, err
		}
		return index.Index[[]float32](m), nil
	}})
}

// verifyTieredFlat compares tree answers (through the given base index)
// against a flat exact scan freshly built over the live objects in
// ascending-id order — a monotone id translation, so the flat scan's
// canonical (dist, id) order maps to the tree's global-id order.
func verifyTieredFlat[T any](t *testing.T, sp space.Space[T], tree *lsm.Tree[T], base index.Index[T], live map[uint32]T, probes []T, stage string) {
	t.Helper()
	ids := slices.Sorted(maps.Keys(live))
	objs := make([]T, len(ids))
	for i, id := range ids {
		objs[i] = live[id]
	}
	flat := seqscan.New(sp, objs)
	for _, k := range []int{1, 10, 50, len(ids) + 7} {
		for qi, q := range probes {
			want := flat.Search(q, k)
			got := tree.Search(base, q, k)
			if len(want) != len(got) {
				t.Fatalf("%s: query %d k=%d: tiered returned %d results, flat %d", stage, qi, k, len(got), len(want))
			}
			for i := range want {
				if got[i].ID != ids[want[i].ID] || got[i].Dist != want[i].Dist {
					t.Fatalf("%s: query %d k=%d result %d: tiered {id %d, dist %g}, flat {id %d, dist %g}",
						stage, qi, k, i, got[i].ID, got[i].Dist, ids[want[i].ID], want[i].Dist)
				}
			}
		}
	}
}

// testTieredIdentity runs the mutation script for every kind: stream the
// corpus tail through the tree in batches, interleaving deletes of base
// objects, freshly-added objects, and long-sealed objects, with explicit
// flushes and auto-seals producing several tiers (and compaction, with
// MaxTiers 2). enc/dec define the wire payload; the oracle tracks the
// post-roundtrip objects so both sides score exactly the same data.
func testTieredIdentity[T any](t *testing.T, db, queries []T, sp space.Space[T], kinds []tieredKind[T], enc func(T) ([]byte, error), dec func([]byte) (T, error)) {
	t.Helper()
	const baseN = 200
	stream := db[baseN:]
	blobs := make([][]byte, len(stream))
	objs := make([]T, len(stream))
	for i, o := range stream {
		blob, err := enc(o)
		if err != nil {
			t.Fatal(err)
		}
		blobs[i] = blob
		objs[i], err = dec(blob)
		if err != nil {
			t.Fatal(err)
		}
	}
	probes := append(append([]T{}, queries...), db[:3]...)

	for _, kb := range kinds {
		t.Run(kb.kind, func(t *testing.T) {
			base, err := kb.build(db[:baseN])
			if err != nil {
				t.Fatal(err)
			}
			tree, err := lsm.Open(lsm.Options[T]{
				Dir: t.TempDir(), Space: sp, BaseN: baseN, Decode: dec,
				MemtableCap: 24, MaxTiers: 2, NoFsync: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer tree.Close()

			live := make(map[uint32]T, len(db))
			for i := range baseN {
				live[uint32(i)] = db[i]
			}
			del := func(id uint32) {
				t.Helper()
				if err := tree.Delete(id); err != nil {
					t.Fatalf("delete %d: %v", id, err)
				}
				delete(live, id)
			}
			// delBase tombstones the first live base id at or after the
			// cursor: deterministic, never a double delete.
			baseCursor := uint32(0)
			delBase := func() {
				for {
					if _, ok := live[baseCursor]; ok {
						del(baseCursor)
						return
					}
					baseCursor = (baseCursor + 1) % baseN
				}
			}

			var added []uint32
			for batch := 0; batch*16 < len(stream); batch++ {
				lo, hi := batch*16, min((batch+1)*16, len(stream))
				ids, err := tree.AddBatch(blobs[lo:hi])
				if err != nil {
					t.Fatal(err)
				}
				for j, id := range ids {
					live[id] = objs[lo+j]
				}
				added = append(added, ids...)
				// One base object, one just-added (memtable-resident)
				// object, and one early add — sealed into a tier by now,
				// so its tombstone masks across tiers.
				delBase()
				del(ids[0])
				if old := added[(batch*5)%len(added)]; old != ids[0] {
					if _, ok := live[old]; ok {
						del(old)
					}
				}
				baseCursor += 13
				if batch%2 == 1 {
					if _, err := tree.Flush(); err != nil {
						t.Fatal(err)
					}
				}
				if batch == 2 {
					verifyTieredFlat(t, sp, tree, base, live, probes, "mid-stream")
				}
			}
			if _, err := tree.Flush(); err != nil {
				t.Fatal(err)
			}
			// Post-seal churn: every remaining delete targets a tier or
			// the base, never the memtable.
			delBase()
			if _, ok := live[added[1]]; ok {
				del(added[1])
			}
			verifyTieredFlat(t, sp, tree, base, live, probes, "final")

			st := tree.Status()
			if len(st.Tiers) == 0 {
				t.Fatalf("mutation script sealed no tiers: %+v", st)
			}
		})
	}
}

// TestTieredIdentityDense runs the full kind matrix over the dense L2
// corpus.
func TestTieredIdentityDense(t *testing.T) {
	db, queries := DenseCorpus()
	testTieredIdentity(t, db, queries, space.L2{}, tieredDenseKinds(space.L2{}),
		func(v []float32) ([]byte, error) { return json.Marshal(v) },
		func(raw []byte) ([]float32, error) {
			var v []float32
			err := json.Unmarshal(raw, &v)
			return v, err
		})
}

// TestTieredIdentityDNA runs the generic kinds over the byte-string corpus:
// normalized Levenshtein's heavily tied discrete distances stress the
// canonical merge order across memtable, tiers and base.
func TestTieredIdentityDNA(t *testing.T) {
	if testing.Short() {
		t.Skip("dense corpus covers the kind matrix; skipping the tie-stress corpus in -short")
	}
	db, queries := DNACorpus()
	testTieredIdentity(t, db, queries, space.NormalizedLevenshtein{}, tieredFullRecallKinds[[]byte](space.NormalizedLevenshtein{}),
		func(b []byte) ([]byte, error) { return slices.Clone(b), nil },
		func(raw []byte) ([]byte, error) { return slices.Clone(raw), nil })
}

// TestTieredIdentityKL covers the asymmetric KL divergence with the same
// representative kind subset the sharded suite uses. Histograms roundtrip
// through their probability vector; NewHistogram re-floors and
// renormalizes, and the oracle tracks the post-roundtrip object, so the
// tree and the flat scan score identical data even where renormalization
// drifts the floats.
func TestTieredIdentityKL(t *testing.T) {
	if testing.Short() {
		t.Skip("dense corpus covers the kind matrix; skipping the asymmetric corpus in -short")
	}
	db, queries := HistoCorpus()
	all := tieredFullRecallKinds[space.Histogram](space.KLDivergence{})
	keep := map[string]bool{"seqscan": true, "vptree": true, "napp": true, "sw-graph": true, "mi-file": true}
	var kinds []tieredKind[space.Histogram]
	for _, kb := range all {
		if keep[kb.kind] {
			kinds = append(kinds, kb)
		}
	}
	testTieredIdentity(t, db, queries, space.KLDivergence{}, kinds,
		func(h space.Histogram) ([]byte, error) { return json.Marshal(h.P) },
		func(raw []byte) (space.Histogram, error) {
			var p []float32
			if err := json.Unmarshal(raw, &p); err != nil {
				return space.Histogram{}, err
			}
			return space.NewHistogram(p), nil
		})
}
