package space

import (
	"fmt"
	"math"
)

// Signature is a feature signature in the sense of Beecks: a small set of
// cluster representatives (centroids in a low-dimensional feature space)
// with associated weights. In the paper's ImageNet experiment each image
// yields 20 clusters of 7-dimensional pixel features (3 color, 2 position,
// 2 texture dimensions), each cluster represented by its centroid and its
// fraction of the sampled pixels.
type Signature struct {
	Weights   []float32 // one per cluster, non-negative, normalized to sum 1
	Centroids []float32 // flattened len(Weights) x Dim matrix, row-major
	Dim       int       // dimensionality of each centroid
}

// NewSignature validates and normalizes a signature. centroids must hold
// len(weights)*dim values.
func NewSignature(weights, centroids []float32, dim int) (Signature, error) {
	if dim <= 0 {
		return Signature{}, fmt.Errorf("space: signature dim must be positive, got %d", dim)
	}
	if len(centroids) != len(weights)*dim {
		return Signature{}, fmt.Errorf("space: signature has %d weights and dim %d but %d centroid values",
			len(weights), dim, len(centroids))
	}
	var sum float64
	for i, w := range weights {
		if w < 0 || math.IsNaN(float64(w)) {
			return Signature{}, fmt.Errorf("space: negative or NaN weight at cluster %d", i)
		}
		sum += float64(w)
	}
	if sum == 0 {
		return Signature{}, fmt.Errorf("space: signature weights sum to zero")
	}
	ws := make([]float32, len(weights))
	for i, w := range weights {
		ws[i] = float32(float64(w) / sum)
	}
	cs := make([]float32, len(centroids))
	copy(cs, centroids)
	return Signature{Weights: ws, Centroids: cs, Dim: dim}, nil
}

// Clusters returns the number of cluster representatives.
func (s Signature) Clusters() int { return len(s.Weights) }

// Centroid returns the i-th centroid as a slice view into the signature.
func (s Signature) Centroid(i int) []float32 {
	return s.Centroids[i*s.Dim : (i+1)*s.Dim]
}

// SQFD is the Signature Quadratic Form Distance
//
//	SQFD(x, y) = sqrt( w^T A w ),  w = (w_x | -w_y)
//
// where A[i][j] applies a heuristic similarity to pairs of cluster
// representatives; following Beecks we use sim(r, s) = 1 / (1 + L2(r, s)).
//
// The similarity matrix is recomputed for every pair, so a single distance
// costs O((n+m)^2 * Dim) work — nearly two orders of magnitude more than a
// 128-dimensional L2, matching the cost model in Table 1 of the paper. SQFD
// is a true metric on signatures with positive-definite similarity kernels.
type SQFD struct{}

// Distance returns the SQFD between two signatures. Signatures of different
// Dim panic, as they come from incompatible feature extractions.
func (SQFD) Distance(data, query Signature) float64 {
	if data.Dim != query.Dim {
		panic("space: SQFD over signatures of different dimensionality")
	}
	dim := data.Dim
	// Expanding w^T A w with w = (w_x | -w_y):
	//   sum_{i,j in x} wx_i wx_j sim(xi, xj)
	// + sum_{i,j in y} wy_i wy_j sim(yi, yj)
	// - 2 sum_{i in x, j in y} wx_i wy_j sim(xi, yj)
	s := selfTerm(data, dim) + selfTerm(query, dim) - 2*crossTerm(data, query, dim)
	if s < 0 {
		s = 0 // round-off guard; the form is PSD for this kernel
	}
	return math.Sqrt(s)
}

func selfTerm(s Signature, dim int) float64 {
	n := len(s.Weights)
	var acc float64
	for i := 0; i < n; i++ {
		ci := s.Centroids[i*dim : (i+1)*dim]
		wi := float64(s.Weights[i])
		acc += wi * wi // sim(x,x) == 1
		for j := i + 1; j < n; j++ {
			cj := s.Centroids[j*dim : (j+1)*dim]
			acc += 2 * wi * float64(s.Weights[j]) * centroidSim(ci, cj)
		}
	}
	return acc
}

func crossTerm(a, b Signature, dim int) float64 {
	var acc float64
	for i := 0; i < len(a.Weights); i++ {
		ci := a.Centroids[i*dim : (i+1)*dim]
		wi := float64(a.Weights[i])
		for j := 0; j < len(b.Weights); j++ {
			cj := b.Centroids[j*dim : (j+1)*dim]
			acc += wi * float64(b.Weights[j]) * centroidSim(ci, cj)
		}
	}
	return acc
}

// centroidSim is the heuristic similarity between cluster representatives.
func centroidSim(a, b []float32) float64 {
	var d float64
	for k := range a {
		diff := float64(a[k]) - float64(b[k])
		d += diff * diff
	}
	return 1 / (1 + math.Sqrt(d))
}

// Name implements Space.
func (SQFD) Name() string { return "sqfd" }

// Properties implements Space: SQFD with a PSD kernel is a metric.
func (SQFD) Properties() Properties { return Properties{Metric: true, Symmetric: true} }
