package permutation

import (
	"math/rand"
	"testing"
)

func randomPerm(r *rand.Rand, m int) []int32 {
	perm := make([]int32, m)
	for i, v := range r.Perm(m) {
		perm[i] = int32(v)
	}
	return perm
}

func TestQuantizeLanes(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for _, m := range []int{1, 2, 15, 16, 17, 31, 32, 64, 100, 128} {
		perm := randomPerm(r, m)
		for _, prefixLen := range []int{0, 1, m / 2, m} {
			q := Quantize(perm, prefixLen, nil)
			if len(q) != QuantizedWords(prefixLen) {
				t.Fatalf("m=%d l=%d: %d words, want %d", m, prefixLen, len(q), QuantizedWords(prefixLen))
			}
			for i := 0; i < prefixLen; i++ {
				want := uint8(uint64(perm[i]) * 16 / uint64(m))
				if got := q.Nibble(i); got != want {
					t.Fatalf("m=%d l=%d lane %d: nibble %d, want %d (rank %d)", m, prefixLen, i, got, want, perm[i])
				}
			}
			// Tail lanes of the last word must be zero for NibbleL1.
			for i := prefixLen; i < len(q)*16; i++ {
				if q.Nibble(i) != 0 {
					t.Fatalf("m=%d l=%d: tail lane %d not zero", m, prefixLen, i)
				}
			}
		}
	}
}

func TestQuantizeUsesAllLevels(t *testing.T) {
	// With m a multiple of 16 the bucket mapping is exact: each level holds
	// m/16 consecutive ranks, and all 16 levels appear.
	m := 64
	perm := make([]int32, m)
	for i := range perm {
		perm[i] = int32(i)
	}
	q := Quantize(perm, m, nil)
	var seen [16]bool
	for i := 0; i < m; i++ {
		if got, want := q.Nibble(i), uint8(i/4); got != want {
			t.Fatalf("lane %d: nibble %d, want %d", i, got, want)
		}
		seen[q.Nibble(i)] = true
	}
	for lvl, ok := range seen {
		if !ok {
			t.Fatalf("quantization level %d unused", lvl)
		}
	}
}

func TestQuantizeReusesDst(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	perm := randomPerm(r, 48)
	q := Quantize(perm, 48, nil)
	// A second quantization of a shorter prefix into the same backing array
	// must fully overwrite stale lanes.
	q2 := Quantize(perm, 17, q)
	if &q[0] != &q2[0] {
		t.Fatalf("dst not reused")
	}
	want := Quantize(perm, 17, nil)
	for i := range want {
		if q2[i] != want[i] {
			t.Fatalf("word %d: reuse %#x, fresh %#x", i, q2[i], want[i])
		}
	}
}

func TestQuantizePanicsOnBadPrefix(t *testing.T) {
	perm := []int32{1, 0, 2}
	for _, l := range []int{-1, 4} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("prefixLen %d: no panic", l)
				}
			}()
			Quantize(perm, l, nil)
		}()
	}
}

func TestQuantizedNibbleL1(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	for rep := 0; rep < 20; rep++ {
		m := 16 + r.Intn(120)
		l := r.Intn(m + 1)
		pa, pb := randomPerm(r, m), randomPerm(r, m)
		qa, qb := Quantize(pa, l, nil), Quantize(pb, l, nil)
		var want int
		for i := 0; i < l; i++ {
			d := int(qa.Nibble(i)) - int(qb.Nibble(i))
			if d < 0 {
				d = -d
			}
			want += d
		}
		if got := NibbleL1(qa, qb); got != want {
			t.Fatalf("m=%d l=%d: NibbleL1 = %d, lane sum = %d", m, l, got, want)
		}
	}
}

// FuzzQuantizeRoundtrip drives the nibble pack/unpack roundtrip: a
// permutation built from the fuzz input is quantized, and every lane must
// unpack (Nibble) to the bucket formula, tail lanes must stay zero, and the
// SWAR distance of the prefix against itself and against a rotated copy
// must match the per-lane scalar sum.
func FuzzQuantizeRoundtrip(f *testing.F) {
	f.Add([]byte{0})
	f.Add([]byte{7, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16})
	f.Add([]byte{255, 254, 253, 0, 0, 0, 128, 64, 32})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		m := 1 + int(data[0])%200
		perm := make([]int32, m)
		for i := range perm {
			perm[i] = int32(i)
		}
		// Fisher-Yates driven by the fuzz bytes.
		for i := range perm {
			j := i + int(data[(i+1)%len(data)])%(m-i)
			perm[i], perm[j] = perm[j], perm[i]
		}
		prefixLen := int(data[len(data)-1]) % (m + 1)
		q := Quantize(perm, prefixLen, nil)
		for i := 0; i < prefixLen; i++ {
			if got, want := q.Nibble(i), uint8(uint64(perm[i])*16/uint64(m)); got != want {
				t.Fatalf("lane %d: nibble %d, want %d", i, got, want)
			}
		}
		for i := prefixLen; i < len(q)*16; i++ {
			if q.Nibble(i) != 0 {
				t.Fatalf("tail lane %d not zero", i)
			}
		}
		if d := NibbleL1(q, q.Clone()); d != 0 {
			t.Fatalf("self distance %d", d)
		}
		rot := append([]int32{perm[m-1]}, perm[:m-1]...)
		qr := Quantize(rot, prefixLen, nil)
		var want int
		for i := 0; i < prefixLen; i++ {
			d := int(q.Nibble(i)) - int(qr.Nibble(i))
			if d < 0 {
				d = -d
			}
			want += d
		}
		if got := NibbleL1(q, qr); got != want {
			t.Fatalf("NibbleL1 = %d, lane sum = %d", got, want)
		}
	})
}
