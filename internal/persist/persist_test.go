package persist_test

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/persist"
	"repro/internal/seqscan"
	"repro/internal/space"
)

// TestLoadIndexSet saves two different index kinds over one corpus and
// warm-starts both from the directory, checking names and identical answers.
func TestLoadIndexSet(t *testing.T) {
	db := dataset.SIFT(9, 200)
	sp := space.L2{}
	na, err := core.NewNAPP[[]float32](sp, db, core.NAPPOptions{
		NumPivots: 32, NumPivotIndex: 8, MinShared: 1, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	scan := seqscan.New[[]float32](sp, db)

	dir := t.TempDir()
	if err := persist.SaveFile(filepath.Join(dir, "fast.psix"), na); err != nil {
		t.Fatal(err)
	}
	if err := persist.SaveFile(filepath.Join(dir, "exact.psix"), scan); err != nil {
		t.Fatal(err)
	}
	// Non-index files in the directory are ignored.
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}

	set, err := persist.LoadIndexSet(dir, sp, db)
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 2 || set["fast"] == nil || set["exact"] == nil {
		t.Fatalf("loaded set keys: %v", keys(set))
	}
	for i := 0; i < 5; i++ {
		if got, want := set["fast"].Search(db[i], 10), na.Search(db[i], 10); !reflect.DeepEqual(got, want) {
			t.Fatalf("query %d: loaded napp differs from original", i)
		}
		if got, want := set["exact"].Search(db[i], 10), scan.Search(db[i], 10); !reflect.DeepEqual(got, want) {
			t.Fatalf("query %d: loaded seqscan differs from original", i)
		}
	}

	// A corrupt file in the directory fails the whole set.
	if err := os.WriteFile(filepath.Join(dir, "bad.psix"), []byte("not an index"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := persist.LoadIndexSet(dir, sp, db); err == nil {
		t.Fatal("corrupt member accepted")
	}
}

func TestPeekHeader(t *testing.T) {
	db := dataset.SIFT(9, 120)
	scan := seqscan.New[[]float32](space.L2{}, db)
	path := filepath.Join(t.TempDir(), "scan.psix")
	if err := persist.SaveFile(path, scan); err != nil {
		t.Fatal(err)
	}
	hdr, err := persist.PeekHeader(path)
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Kind != "seqscan" || hdr.Space != "l2" || hdr.N != 120 {
		t.Fatalf("header = %+v", hdr)
	}
	if _, err := persist.PeekHeader(filepath.Join(t.TempDir(), "missing.psix")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func keys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
