package server

import (
	"context"
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
	"sync"

	"repro/internal/codec"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/index"
	"repro/internal/lsm"
	"repro/internal/obs"
	"repro/internal/persist"
	"repro/internal/shard"
	"repro/internal/space"
	"repro/internal/topk"
)

// Manifest is the sidecar JSON (<name>.json next to <name>.psix) that tells
// the server how to materialize the corpus an index file was built over.
// The codec format deliberately persists derived structure only, never the
// data objects, so the data must be regenerated — deterministically, from
// the named synthetic generator, its seed and its size. The space itself
// needs no manifest entry: every distance in this repository is a
// parameterless value reconstructable from the file header's space tag.
type Manifest struct {
	// Dataset names the generator: "sift", "cophir", "dna", "wiki-sparse",
	// "imagenet", or "wiki-<topics>" (e.g. "wiki-8") for LDA histograms.
	Dataset string `json:"dataset"`
	// Seed and N parameterize the generator: the *full* corpus is
	// gen(Seed, N). Without a Shard stamp, N must equal the data-set size
	// recorded in the index file header, or loading fails — a mismatched
	// manifest can never serve an index whose ids point at the wrong
	// objects. With a Shard stamp the index was built over the stamp's
	// deterministic subset of gen(Seed, N), and the header must record
	// the subset size instead.
	Seed int64 `json:"seed"`
	N    int   `json:"n"`
	// Shard, when present, marks this index as one shard of a
	// partitioned corpus (written by cmd/shardsplit): the served corpus
	// is the stamp's subset, and every result id is translated back to
	// its corpus-global id on the way out, so a scatter-gather router can
	// merge per-shard answers without any per-process id state.
	Shard *shard.Info `json:"shard,omitempty"`
	// Generation orders successive builds of the same index (snapshot
	// shipping bumps it); surfaced in /statusz and /v1/indexes so a
	// rollout driver can observe which generation each process serves.
	Generation int64 `json:"generation,omitempty"`
	// Params are query-time method params applied once after loading
	// (experiments.ParseParams keys, e.g. {"gamma": 0.05}); they become
	// the index's serving defaults, restored after any per-request
	// override.
	Params map[string]float64 `json:"params,omitempty"`
	// Mutable opens a WAL-backed LSM tree (internal/lsm) in <name>.tiers/
	// next to the index file and enables POST add/delete/flush: the .psix
	// serves as the immutable base corpus, writes land in the tree, and
	// searches scatter-gather base + sealed tiers + memtable. Incompatible
	// with Shard (a sharded corpus is repartitioned offline, not mutated in
	// place).
	Mutable bool `json:"mutable,omitempty"`
}

// servedIndex is the type-erased face of one loaded index: JSON-encoded
// queries in, neighbors out. The HTTP layer never sees the object type.
// ctx carries request cancellation into the search paths: a canceled
// request stops scattering across tiers (mutable entries) and stops the
// batch fan-out pulling further queries. tr, when non-nil, receives the
// query's per-stage breakdown (filter candidates, refine distances, stage
// and tier timings); nil means untraced and costs nothing.
type servedIndex interface {
	search(ctx context.Context, raw json.RawMessage, k int, tr *obs.QueryTrace) ([]topk.Neighbor, error)
	searchBatch(ctx context.Context, raws []json.RawMessage, k int, pool engine.Pool, tr *obs.QueryTrace) ([][]topk.Neighbor, error)
	// applyParams sets per-request method params and returns the restore
	// function for the previous settings. Callers must hold the
	// snapshot's param lock exclusively around apply+search+restore.
	applyParams(p experiments.Params) (restore func(), err error)
}

// typedIndex adapts one concrete index.Index[T] to servedIndex. For shard
// indexes, ids maps shard-local result ids to corpus-global ids (nil for an
// unsharded index); the map is strictly increasing (internal/shard.IDs), so
// translation preserves the canonical (dist, id) result order. For mutable
// indexes, tree wraps idx so searches cover tiers and memtable too.
type typedIndex[T any] struct {
	idx  index.Index[T]
	dec  func(json.RawMessage) (T, error)
	ids  []uint32
	tree *lsm.Tree[T]
	// searchers pools per-query Searchers for the traced immutable
	// single-query path: a Searcher owns warm scratch and implements
	// obs.Traceable, so tracing a query costs a pool Get/Put instead of a
	// scratch re-mint. Holds index.Searcher[T] values.
	searchers sync.Pool
}

// searchIndex returns the index the search paths should query: the raw
// base index, or the tiered view when the entry is mutable.
func (t *typedIndex[T]) searchIndex() index.Index[T] {
	if t.tree != nil {
		return treeIndex[T]{base: t.idx, tree: t.tree}
	}
	return t.idx
}

// globalize rewrites shard-local ids to corpus-global ids in place.
func (t *typedIndex[T]) globalize(ns []topk.Neighbor) []topk.Neighbor {
	if t.ids != nil {
		for i := range ns {
			ns[i].ID = t.ids[ns[i].ID]
		}
	}
	return ns
}

func (t *typedIndex[T]) search(ctx context.Context, raw json.RawMessage, k int, tr *obs.QueryTrace) ([]topk.Neighbor, error) {
	q, err := t.dec(raw)
	if err != nil {
		return nil, badRequestf("query: %v", err)
	}
	if t.tree != nil {
		// The tiered scatter checks ctx between components, so a canceled
		// single-query request stops before paying for the next tier.
		nbs, err := t.tree.SearchAppendTraced(ctx, nil, t.idx, q, k, tr)
		if err != nil {
			return nil, err
		}
		return t.globalize(nbs), nil
	}
	if tr != nil {
		if nbs, ok := t.searchTraced(q, k, tr); ok {
			return t.globalize(nbs), nil
		}
	}
	return t.globalize(t.idx.Search(q, k)), nil
}

// searchTraced answers one immutable query through a pooled Searcher with
// tr attached. ok is false when the index mints no Searchers or its
// Searchers are untraceable; the caller falls back to the plain path.
func (t *typedIndex[T]) searchTraced(q T, k int, tr *obs.QueryTrace) (nbs []topk.Neighbor, ok bool) {
	var s index.Searcher[T]
	if v := t.searchers.Get(); v != nil {
		s = v.(index.Searcher[T])
	} else {
		sp, isSP := t.idx.(index.SearcherProvider[T])
		if !isSP {
			return nil, false
		}
		s = sp.NewSearcher()
	}
	tt, isTr := s.(obs.Traceable)
	if !isTr {
		return nil, false
	}
	tt.SetTrace(tr)
	nbs = s.Search(q, k)
	// Detach before pooling: a pooled searcher must never hold a pointer
	// into a finished request's trace.
	tt.SetTrace(nil)
	t.searchers.Put(s)
	return nbs, true
}

func (t *typedIndex[T]) searchBatch(ctx context.Context, raws []json.RawMessage, k int, pool engine.Pool, tr *obs.QueryTrace) ([][]topk.Neighbor, error) {
	qs := make([]T, len(raws))
	for i, raw := range raws {
		q, err := t.dec(raw)
		if err != nil {
			return nil, badRequestf("query %d: %v", i, err)
		}
		qs[i] = q
	}
	outs, err := engine.SearchBatchTracedPoolCtx(ctx, pool, t.searchIndex(), qs, k, tr)
	if err != nil {
		return nil, err
	}
	for _, ns := range outs {
		t.globalize(ns)
	}
	return outs, nil
}

func (t *typedIndex[T]) applyParams(p experiments.Params) (func(), error) {
	prev, err := experiments.ApplyParams(t.idx, p)
	if err != nil {
		return nil, badRequestf("%v", err)
	}
	return func() {
		// Restoring previously read values cannot fail.
		if _, err := experiments.ApplyParams(t.idx, prev); err != nil {
			panic(fmt.Sprintf("server: restoring params %v: %v", prev, err))
		}
	}, nil
}

// loadServed loads the entry's index file per its manifest: regenerate the
// corpus named by the manifest, resolve the space from the file header, and
// reconstruct the index over both. For a mutable manifest it also opens (or
// reuses — the tree outlives snapshots) the entry's LSM tree.
func loadServed(e *entry, man Manifest) (servedIndex, codec.Header, error) {
	path := e.path
	hdr, err := persist.PeekHeader(path)
	if err != nil {
		return nil, codec.Header{}, err
	}
	if man.N <= 0 {
		return nil, hdr, fmt.Errorf("manifest: n must be positive, got %d", man.N)
	}
	switch {
	case man.Dataset == "sift":
		data := dataset.SIFT(man.Seed, man.N)
		return loadTyped(e, hdr, man, data, denseSpace, decodeDense(len(data[0])))
	case man.Dataset == "cophir":
		data := dataset.CoPhIR(man.Seed, man.N)
		return loadTyped(e, hdr, man, data, denseSpace, decodeDense(len(data[0])))
	case man.Dataset == "dna":
		return loadTyped(e, hdr, man, dataset.DNA(man.Seed, man.N, dataset.DNAOptions{}), stringSpace, decodeString)
	case man.Dataset == "wiki-sparse":
		return loadTyped(e, hdr, man, dataset.WikiSparse(man.Seed, man.N, dataset.WikiSparseOptions{}), sparseSpace, decodeSparse)
	case man.Dataset == "imagenet":
		data := dataset.ImageNet(man.Seed, man.N, dataset.SignatureOptions{})
		return loadTyped(e, hdr, man, data, signatureSpace, decodeSignature(data[0].Dim))
	case strings.HasPrefix(man.Dataset, "wiki-"):
		topics, err := strconv.Atoi(strings.TrimPrefix(man.Dataset, "wiki-"))
		if err != nil || topics <= 1 {
			return nil, hdr, fmt.Errorf("manifest: dataset %q is not wiki-<topics>", man.Dataset)
		}
		return loadTyped(e, hdr, man, dataset.WikiLDA(man.Seed, man.N, topics), histogramSpace, decodeHistogram(topics))
	default:
		return nil, hdr, fmt.Errorf("manifest: unknown dataset %q", man.Dataset)
	}
}

// loadTyped finishes loadServed for one object type: carve the shard subset
// when the manifest carries a stamp, resolve the space the file was built
// under, load, apply the manifest's default params, and attach the entry's
// mutable tree when the manifest asks for one.
func loadTyped[T any](e *entry, hdr codec.Header, man Manifest, data []T,
	spOf func(string) (space.Space[T], error), dec func(json.RawMessage) (T, error)) (servedIndex, codec.Header, error) {
	path := e.path
	if man.Mutable && man.Shard != nil {
		return nil, hdr, fmt.Errorf("%s: manifest: mutable and shard are incompatible", path)
	}
	var ids []uint32
	if man.Shard != nil {
		if err := man.Shard.Validate(); err != nil {
			return nil, hdr, fmt.Errorf("%s: manifest shard stamp: %w", path, err)
		}
		var err error
		ids, err = shard.ShardIDs(man.Shard.Partitioner, man.N, man.Shard.Shards, man.Shard.Index)
		if err != nil {
			return nil, hdr, fmt.Errorf("%s: %w", path, err)
		}
		// The per-kind loader verifies hdr.N against the data slice it
		// receives, so handing it the subset enforces "header records the
		// subset size" for free.
		data = shard.Subset(data, ids)
	}
	sp, err := spOf(hdr.Space)
	if err != nil {
		return nil, hdr, fmt.Errorf("%s: %w", path, err)
	}
	idx, err := persist.LoadFile(path, sp, data)
	if err != nil {
		return nil, hdr, err
	}
	if len(man.Params) > 0 {
		if _, err := experiments.ApplyParams(idx, experiments.Params(man.Params)); err != nil {
			return nil, hdr, fmt.Errorf("%s: manifest params: %w", path, err)
		}
	}
	ti := &typedIndex[T]{idx: idx, dec: dec, ids: ids}
	if man.Mutable {
		tree, err := openTree(e, man, data, lsm.Options[T]{
			Dir:   strings.TrimSuffix(path, persist.Ext) + ".tiers",
			FS:    e.fs,
			Space: sp,
			// Added objects arrive as JSON in the same encoding queries
			// use; the tree stores those raw bytes (WAL + tier segments)
			// and re-decodes them on recovery.
			Decode: func(raw []byte) (T, error) { return dec(json.RawMessage(raw)) },
		})
		if err != nil {
			return nil, hdr, fmt.Errorf("%s: mutable tier: %w", path, err)
		}
		ti.tree = tree
	}
	return ti, hdr, nil
}

// Space resolution per object type. The header's space tag names a
// parameterless value; an unknown tag for the manifest's object type means
// the file and manifest disagree.

func denseSpace(name string) (space.Space[[]float32], error) {
	switch name {
	case "l2":
		return space.L2{}, nil
	case "l2-f32":
		return space.L2F32{}, nil
	case "l1":
		return space.L1{}, nil
	}
	return nil, fmt.Errorf("no dense-vector space %q", name)
}

func stringSpace(name string) (space.Space[[]byte], error) {
	switch name {
	case "normleven":
		return space.NormalizedLevenshtein{}, nil
	case "leven":
		return space.Levenshtein{}, nil
	}
	return nil, fmt.Errorf("no byte-string space %q", name)
}

func sparseSpace(name string) (space.Space[space.SparseVector], error) {
	if name == "cosine" {
		return space.CosineDistance{}, nil
	}
	return nil, fmt.Errorf("no sparse-vector space %q", name)
}

func histogramSpace(name string) (space.Space[space.Histogram], error) {
	switch name {
	case "kldiv":
		return space.KLDivergence{}, nil
	case "jsdiv":
		return space.JSDivergence{}, nil
	}
	return nil, fmt.Errorf("no histogram space %q", name)
}

func signatureSpace(name string) (space.Space[space.Signature], error) {
	if name == "sqfd" {
		return space.SQFD{}, nil
	}
	return nil, fmt.Errorf("no signature space %q", name)
}

// Query decoders: the JSON shape of one query per object type. Shapes that
// must agree with the corpus (vector and histogram dimensionality, signature
// feature dim — the distance functions panic or silently mis-answer on a
// mismatch) are validated here, so a wrong-shaped query is a 400 to its
// sender, never a cancelled batch or a wrong answer.

// decodeDense decodes a dense vector of the corpus dimensionality:
// [0.5, 1, ...].
func decodeDense(dim int) func(json.RawMessage) ([]float32, error) {
	return func(raw json.RawMessage) ([]float32, error) {
		var v []float32
		if err := json.Unmarshal(raw, &v); err != nil {
			return nil, err
		}
		if len(v) != dim {
			return nil, fmt.Errorf("vector has %d dimensions, index corpus has %d", len(v), dim)
		}
		return v, nil
	}
}

// decodeString decodes a byte string: "ACGT".
func decodeString(raw json.RawMessage) ([]byte, error) {
	var s string
	if err := json.Unmarshal(raw, &s); err != nil {
		return nil, err
	}
	return []byte(s), nil
}

// decodeHistogram decodes a probability histogram over the corpus's bin
// count: [0.2, 0.8, ...] (floored and renormalized exactly like the data
// set's preprocessing).
func decodeHistogram(bins int) func(json.RawMessage) (space.Histogram, error) {
	return func(raw json.RawMessage) (space.Histogram, error) {
		var v []float32
		if err := json.Unmarshal(raw, &v); err != nil {
			return space.Histogram{}, err
		}
		if len(v) != bins {
			return space.Histogram{}, fmt.Errorf("histogram has %d bins, index corpus has %d", len(v), bins)
		}
		return space.NewHistogram(v), nil
	}
}

// decodeSparse decodes a sparse vector: {"idx": [3, 17], "val": [0.5, 1.25]}.
// Sparse cosine imposes no dimensionality; NewSparseVector validates the
// pair shape and ordering.
func decodeSparse(raw json.RawMessage) (space.SparseVector, error) {
	var v struct {
		Idx []int32   `json:"idx"`
		Val []float32 `json:"val"`
	}
	if err := json.Unmarshal(raw, &v); err != nil {
		return space.SparseVector{}, err
	}
	return space.NewSparseVector(v.Idx, v.Val)
}

// decodeSignature decodes an SQFD signature with the corpus's feature
// dimensionality: {"weights": [...], "centroids": [...], "dim": 7}.
func decodeSignature(dim int) func(json.RawMessage) (space.Signature, error) {
	return func(raw json.RawMessage) (space.Signature, error) {
		var v struct {
			Weights   []float32 `json:"weights"`
			Centroids []float32 `json:"centroids"`
			Dim       int       `json:"dim"`
		}
		if err := json.Unmarshal(raw, &v); err != nil {
			return space.Signature{}, err
		}
		if v.Dim != dim {
			return space.Signature{}, fmt.Errorf("signature has dim %d, index corpus has %d", v.Dim, dim)
		}
		return space.NewSignature(v.Weights, v.Centroids, v.Dim)
	}
}
