package experiments

import (
	"math/rand"

	"repro/internal/dataset"
	"repro/internal/projection"
	"repro/internal/space"
)

// metricAlphas and genericAlphas are the VP-tree pruning sweeps: metric
// spaces start exact (alpha = 1), non-metric spaces also probe alpha < 1
// (less pruning than the triangle inequality would allow).
var (
	metricAlphas  = []float64{1, 2, 4, 8, 16, 32}
	genericAlphas = []float64{0.25, 0.5, 1, 2, 4, 8}
)

func denseBytes(v []float32) int64 { return int64(len(v))*4 + 24 }

// denseRandProj returns a dense Gaussian projector factory for vectors of
// dimensionality dim.
func denseRandProj(inDim int) func(seed int64, out int) func([]float32) []float32 {
	return func(seed int64, out int) func([]float32) []float32 {
		p, err := projection.NewDense(rand.New(rand.NewSource(seed)), inDim, out)
		if err != nil {
			panic(err)
		}
		return p.Project
	}
}

func init() {
	// SIFT: 128-d visual descriptors under L2 (Figure 4a, 2a/2e, 3a/3d).
	registry = append(registry, &combo[[]float32]{
		name:     "sift",
		distName: "l2",
		dims:     "128",
		sp:       space.L2{},
		gen:      dataset.SIFT,
		bytesOf:  denseBytes,
		randProj: denseRandProj(128),
		sweeps: func(cfg Config, n int) []sweep[[]float32] {
			return []sweep[[]float32]{
				vptreeSweep[[]float32](metricAlphas, 1, cfg.Seed),
				mplshSweep(cfg.Seed),
				swSweep[[]float32](cfg.K, cfg.Seed),
				nappSweep[[]float32](n, cfg.Seed),
				bfSweep[[]float32](n, cfg.Seed),
			}
		},
	})

	// CoPhIR: 282-d MPEG7 descriptors under L2 (Figure 4b).
	registry = append(registry, &combo[[]float32]{
		name:     "cophir",
		distName: "l2",
		dims:     "282",
		sp:       space.L2{},
		gen:      dataset.CoPhIR,
		bytesOf:  denseBytes,
		randProj: denseRandProj(282),
		sweeps: func(cfg Config, n int) []sweep[[]float32] {
			return []sweep[[]float32]{
				vptreeSweep[[]float32](metricAlphas, 1, cfg.Seed),
				mplshSweep(cfg.Seed),
				swSweep[[]float32](cfg.K, cfg.Seed),
				nappSweep[[]float32](n, cfg.Seed),
				bfSweep[[]float32](n, cfg.Seed),
			}
		},
	})

	// ImageNet: SQFD signatures (Figure 4c, 3h); expensive metric
	// distance, so the binarized filter competes here.
	registry = append(registry, &combo[space.Signature]{
		name:     "imagenet",
		distName: "sqfd",
		dims:     "N/A",
		sp:       space.SQFD{},
		gen: func(seed int64, n int) []space.Signature {
			return dataset.ImageNet(seed, n, dataset.SignatureOptions{})
		},
		bytesOf: func(s space.Signature) int64 {
			return int64(len(s.Weights))*4 + int64(len(s.Centroids))*4 + 48
		},
		sweeps: func(cfg Config, n int) []sweep[space.Signature] {
			return []sweep[space.Signature]{
				vptreeSweep[space.Signature](metricAlphas, 1, cfg.Seed),
				swSweep[space.Signature](cfg.K, cfg.Seed),
				nappSweep[space.Signature](n, cfg.Seed),
				bfSweep[space.Signature](n, cfg.Seed),
				binSweep[space.Signature](n, cfg.Seed),
				quantSweep[space.Signature](n, cfg.Seed),
			}
		},
	})

	// Wiki-sparse: sparse TF-IDF under cosine distance (Figure 4i,
	// 2b/2f, 3b/3e).
	registry = append(registry, &combo[space.SparseVector]{
		name:     "wiki-sparse",
		distName: "cosine",
		dims:     "100000",
		sp:       space.CosineDistance{},
		gen: func(seed int64, n int) []space.SparseVector {
			return dataset.WikiSparse(seed, n, dataset.WikiSparseOptions{})
		},
		bytesOf: func(v space.SparseVector) int64 { return int64(v.NNZ())*8 + 32 },
		randProj: func(seed int64, out int) func(space.SparseVector) []float32 {
			p, err := projection.NewSparse(seed, out)
			if err != nil {
				panic(err)
			}
			return p.Project
		},
		randCos: true,
		sweeps: func(cfg Config, n int) []sweep[space.SparseVector] {
			return []sweep[space.SparseVector]{
				vptreeSweep[space.SparseVector](genericAlphas, 1, cfg.Seed),
				swSweep[space.SparseVector](cfg.K, cfg.Seed),
				nappSweep[space.SparseVector](n, cfg.Seed),
				bfSweep[space.SparseVector](n, cfg.Seed),
			}
		},
	})

	// Wiki-8 / Wiki-128 topic histograms under KL- and JS-divergence
	// (Figures 4d/4e/4g/4h, 2c/2g/2h, 3c/3f/3i).
	histo := func(name string, topics int, sp space.Space[space.Histogram], beta float64, withNNDescent bool) *combo[space.Histogram] {
		return &combo[space.Histogram]{
			name:     name,
			distName: sp.Name(),
			dims:     itoa(topics),
			sp:       sp,
			gen: func(seed int64, n int) []space.Histogram {
				return dataset.WikiLDA(seed, n, topics)
			},
			bytesOf: func(h space.Histogram) int64 { return int64(len(h.P))*8 + 24 },
			sweeps: func(cfg Config, n int) []sweep[space.Histogram] {
				out := []sweep[space.Histogram]{
					vptreeSweep[space.Histogram](genericAlphas, beta, cfg.Seed),
					swSweep[space.Histogram](cfg.K, cfg.Seed),
					nappSweep[space.Histogram](n, cfg.Seed),
					bfSweep[space.Histogram](n, cfg.Seed),
				}
				if withNNDescent {
					out = append(out, nndescentSweep[space.Histogram](cfg.K, cfg.Seed))
				}
				return out
			},
		}
	}
	registry = append(registry,
		histo("wiki-8-kl", 8, space.KLDivergence{}, 2, false),
		histo("wiki-8-js", 8, space.JSDivergence{}, 1, true),
		histo("wiki-128-kl", 128, space.KLDivergence{}, 2, false),
		histo("wiki-128-js", 128, space.JSDivergence{}, 1, false),
	)

	// DNA: normalized Levenshtein over short reads (Figure 4f, 2d, 3g);
	// the binarized filter is the paper's winner here.
	registry = append(registry, &combo[[]byte]{
		name:     "dna",
		distName: "normleven",
		dims:     "N/A",
		sp:       space.NormalizedLevenshtein{},
		gen: func(seed int64, n int) [][]byte {
			return dataset.DNA(seed, n, dataset.DNAOptions{})
		},
		bytesOf: func(s []byte) int64 { return int64(len(s)) + 24 },
		sweeps: func(cfg Config, n int) []sweep[[]byte] {
			return []sweep[[]byte]{
				vptreeSweep[[]byte](genericAlphas, 1, cfg.Seed),
				swSweep[[]byte](cfg.K, cfg.Seed),
				nndescentSweep[[]byte](cfg.K, cfg.Seed),
				nappSweep[[]byte](n, cfg.Seed),
				bfSweep[[]byte](n, cfg.Seed),
				binSweep[[]byte](n, cfg.Seed),
				quantSweep[[]byte](n, cfg.Seed),
			}
		},
	})
}

// itoa avoids importing strconv for one call site.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
