package router

import (
	"math/rand"
	"testing"
	"time"
)

// TestJitterIntervalSpread pins the prober-jitter contract: every draw lies
// in [interval/2, 3*interval/2) — the mean matches the configured cadence —
// and draws actually spread across that range instead of clustering, so a
// fleet of routers restarted at the same instant decorrelates within one
// probe cycle rather than probing ejected replicas in lockstep forever.
func TestJitterIntervalSpread(t *testing.T) {
	const interval = 2 * time.Second
	rng := rand.New(rand.NewSource(1))
	lo, hi := interval/2, interval*3/2
	minD, maxD := hi, time.Duration(0)
	var buckets [4]int
	const draws = 10000
	for i := 0; i < draws; i++ {
		d := jitterInterval(interval, rng)
		if d < lo || d >= hi {
			t.Fatalf("draw %v outside [%v, %v)", d, lo, hi)
		}
		if d < minD {
			minD = d
		}
		if d > maxD {
			maxD = d
		}
		buckets[int((d-lo)*4/interval)]++
	}
	// Uniform over four quartiles of the range: each expects draws/4; a
	// quarter of that is a generous floor that still catches clustering.
	for i, n := range buckets {
		if n < draws/16 {
			t.Fatalf("quartile %d of the jitter range drew %d/%d times; draws are clustered", i, n, draws)
		}
	}
	if span := maxD - minD; span < interval/2 {
		t.Fatalf("jitter span %v is too narrow for a %v range", span, interval)
	}
}

// TestJitterIntervalZero: a non-positive interval passes through untouched
// (New defaults the interval before probeLoop starts, but the helper must
// not panic on degenerate input).
func TestJitterIntervalZero(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	if got := jitterInterval(0, rng); got != 0 {
		t.Fatalf("jitterInterval(0) = %v, want 0", got)
	}
}
