package knngraph

import (
	"math/rand"
	"testing"

	"repro/internal/index"
	"repro/internal/seqscan"
	"repro/internal/space"
	"repro/internal/synth"
)

var _ index.Index[[]float32] = (*Graph[[]float32])(nil)
var _ index.Sized = (*Graph[[]float32])(nil)

func clustered(seed int64, n, dim int) [][]float32 {
	r := rand.New(rand.NewSource(seed))
	g := synth.NewGaussianMixture(r, dim, 16, 100, 4)
	return g.SampleN(r, n)
}

func recallOf(t *testing.T, g *Graph[[]float32], db, queries [][]float32, k int) float64 {
	t.Helper()
	scan := seqscan.New[[]float32](space.L2{}, db)
	truth := scan.SearchAll(queries, k)
	var hit, total int
	for i, q := range queries {
		want := map[uint32]bool{}
		for _, n := range truth[i] {
			want[n.ID] = true
		}
		for _, n := range g.Search(q, k) {
			if want[n.ID] {
				hit++
			}
		}
		total += k
	}
	return float64(hit) / float64(total)
}

func TestSWRecall(t *testing.T) {
	data := clustered(1, 2050, 16)
	db, queries := data[:2000], data[2000:]
	g, err := NewSW[[]float32](space.L2{}, db, Options{NN: 10, InitAttempts: 3, EfSearch: 30, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rec := recallOf(t, g, db, queries, 10); rec < 0.85 {
		t.Fatalf("SW recall %.3f < 0.85", rec)
	}
	if g.Name() != "sw-graph" {
		t.Fatalf("name = %q", g.Name())
	}
}

func TestNNDescentRecall(t *testing.T) {
	data := clustered(2, 2050, 16)
	db, queries := data[:2000], data[2000:]
	g, err := NewNNDescent[[]float32](space.L2{}, db, Options{NN: 10, InitAttempts: 3, EfSearch: 30, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if rec := recallOf(t, g, db, queries, 10); rec < 0.8 {
		t.Fatalf("NN-descent recall %.3f < 0.8", rec)
	}
	if g.Name() != "nndescent-graph" {
		t.Fatalf("name = %q", g.Name())
	}
}

func TestNNDescentGraphQuality(t *testing.T) {
	// The constructed adjacency must approximate the true k-NN lists:
	// measure edge recall against exact 5-NN.
	data := clustered(3, 800, 8)
	g, err := NewNNDescent[[]float32](space.L2{}, data, Options{NN: 5, Seed: 4, MaxIters: 15})
	if err != nil {
		t.Fatal(err)
	}
	scan := seqscan.New[[]float32](space.L2{}, data)
	var hit, total int
	for v := 0; v < 100; v++ {
		// k+1 because the point itself is included by exact search.
		truth := scan.Search(data[v], 6)
		want := map[uint32]bool{}
		for _, n := range truth {
			if int(n.ID) != v {
				want[n.ID] = true
			}
		}
		for _, u := range g.adj[v] {
			if want[u] {
				hit++
			}
		}
		total += 5
	}
	if rec := float64(hit) / float64(total); rec < 0.7 {
		t.Fatalf("NN-descent edge recall %.3f < 0.7", rec)
	}
}

func TestSWSingleWorkerDeterministic(t *testing.T) {
	data := clustered(4, 600, 8)
	build := func() *Graph[[]float32] {
		g, err := NewSW[[]float32](space.L2{}, data, Options{NN: 8, Seed: 11, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	a, b := build(), build()
	for v := range a.adj {
		if len(a.adj[v]) != len(b.adj[v]) {
			t.Fatalf("node %d degree differs", v)
		}
		for i := range a.adj[v] {
			if a.adj[v][i] != b.adj[v][i] {
				t.Fatalf("node %d adjacency differs", v)
			}
		}
	}
}

func TestParallelBuildRaceFree(t *testing.T) {
	// Exercised under -race in CI; validates that parallel SW and
	// NN-descent construction produce a usable graph.
	data := clustered(5, 800, 8)
	g, err := NewSW[[]float32](space.L2{}, data, Options{NN: 6, Seed: 1, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	res := g.Search(data[0], 5)
	if len(res) != 5 {
		t.Fatalf("got %d results", len(res))
	}
	g2, err := NewNNDescent[[]float32](space.L2{}, data, Options{NN: 6, Seed: 1, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res := g2.Search(data[0], 5); len(res) != 5 {
		t.Fatalf("got %d results from nn-descent graph", len(res))
	}
}

func TestEmptyAndTiny(t *testing.T) {
	if _, err := NewSW[[]float32](space.L2{}, nil, Options{}); err == nil {
		t.Fatal("SW accepted empty data")
	}
	if _, err := NewNNDescent[[]float32](space.L2{}, nil, Options{}); err == nil {
		t.Fatal("NN-descent accepted empty data")
	}
	one := [][]float32{{1, 2}}
	g, err := NewSW[[]float32](space.L2{}, one, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res := g.Search([]float32{1, 2}, 3); len(res) != 1 {
		t.Fatalf("single-point SW search: %v", res)
	}
	g2, err := NewNNDescent[[]float32](space.L2{}, one, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res := g2.Search([]float32{1, 2}, 3); len(res) != 1 {
		t.Fatalf("single-point NN-descent search: %v", res)
	}
	three := [][]float32{{0}, {1}, {2}}
	g3, err := NewSW[[]float32](space.L2{}, three, Options{NN: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res := g3.Search([]float32{0.1}, 3); len(res) != 3 {
		t.Fatalf("3-point search: %v", res)
	}
}

func TestSearchValidResults(t *testing.T) {
	data := clustered(6, 500, 8)
	g, err := NewSW[[]float32](space.L2{}, data, Options{NN: 8, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res := g.Search(data[0], 0); res != nil {
		t.Fatal("k=0 returned results")
	}
	res := g.Search(data[0], 10)
	seen := map[uint32]bool{}
	for i, n := range res {
		if seen[n.ID] {
			t.Fatal("duplicate result id")
		}
		seen[n.ID] = true
		if i > 0 && res[i-1].Dist > n.Dist {
			t.Fatal("results out of order")
		}
	}
	if res[0].Dist != 0 {
		t.Fatalf("self not found first: %+v", res[0])
	}
}

func TestMoreAttemptsHigherRecall(t *testing.T) {
	data := clustered(7, 1550, 16)
	db, queries := data[:1500], data[1500:]
	g, err := NewSW[[]float32](space.L2{}, db, Options{NN: 5, InitAttempts: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	rec1 := recallOf(t, g, db, queries, 10)
	g.opts.InitAttempts = 6
	rec6 := recallOf(t, g, db, queries, 10)
	if rec1 > rec6+0.03 {
		t.Fatalf("more attempts lowered recall: %.3f -> %.3f", rec1, rec6)
	}
}

func TestEfSearchImprovesRecall(t *testing.T) {
	data := clustered(8, 1550, 16)
	db, queries := data[:1500], data[1500:]
	g, err := NewSW[[]float32](space.L2{}, db, Options{NN: 5, InitAttempts: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	g.opts.EfSearch = 10
	recSmall := recallOf(t, g, db, queries, 10)
	g.opts.EfSearch = 100
	recBig := recallOf(t, g, db, queries, 10)
	if recSmall > recBig+0.03 {
		t.Fatalf("larger ef lowered recall: %.3f -> %.3f", recSmall, recBig)
	}
}

func TestStatsPopulated(t *testing.T) {
	data := clustered(9, 300, 8)
	g, err := NewSW[[]float32](space.L2{}, data, Options{NN: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	st := g.Stats()
	if st.Bytes <= 0 || st.BuildDistances <= 0 {
		t.Fatalf("stats = %+v", st)
	}
	if g.Degree(0) == 0 {
		t.Fatal("node 0 has no edges")
	}
}
