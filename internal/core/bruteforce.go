package core

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/index"
	"repro/internal/obs"
	"repro/internal/permutation"
	"repro/internal/scratch"
	"repro/internal/space"
	"repro/internal/topk"
)

// BruteForceOptions configures NewBruteForceFilter.
type BruteForceOptions struct {
	// NumPivots is the permutation length m. The paper found m = 128
	// to work well for the expensive distances this method targets.
	// Default 128.
	NumPivots int
	// Gamma is the candidate fraction: the filter keeps
	// max(k, Gamma*n) permutation-nearest entries for refinement.
	// Default 0.02.
	Gamma float64
	// Dist selects rho (default) or footrule for the filtering stage.
	Dist PermDist
	// UseHeap switches the candidate-selection strategy from
	// incremental sorting to a bounded priority queue. Only for the
	// ablation of the §2.2 claim that incremental sorting is ~2x
	// faster; leave false otherwise.
	UseHeap bool
	// Seed drives pivot sampling.
	Seed int64
}

func (o *BruteForceOptions) defaults() {
	if o.NumPivots <= 0 {
		o.NumPivots = 128
	}
	if o.Gamma <= 0 {
		o.Gamma = 0.02
	}
}

// BruteForceFilter implements brute-force searching of permutations (§2.2):
// the filtering stage scans the permutation of every data point, selects the
// gamma-nearest ones by incremental sorting, and refines them with the true
// distance. Simple, database-friendly, and per Figure 4 competitive when the
// distance is expensive (SQFD, normalized Levenshtein).
type BruteForceFilter[T any] struct {
	sp      space.Space[T]
	data    []T
	pivots  *permutation.Pivots[T]
	perms   []int32 // flattened n x m
	opts    BruteForceOptions
	scratch scratch.Pool[bfScratch]
}

// bfScratch is the per-query state of one brute-force filter search: the
// query permutation buffers, the n-wide candidate scoring slab, and the
// refine queue.
type bfScratch struct {
	perm  permutation.Scratch
	cands []topk.Neighbor
	queue topk.Queue
}

// NewBruteForceFilter samples pivots and computes the permutation of every
// data point (in parallel).
func NewBruteForceFilter[T any](sp space.Space[T], data []T, opts BruteForceOptions) (*BruteForceFilter[T], error) {
	opts.defaults()
	if len(data) == 0 {
		return nil, fmt.Errorf("core: empty data set")
	}
	if opts.NumPivots > len(data) {
		opts.NumPivots = len(data)
	}
	r := rand.New(rand.NewSource(opts.Seed))
	pv, err := permutation.Sample(r, sp, data, opts.NumPivots)
	if err != nil {
		return nil, fmt.Errorf("core: sampling pivots: %w", err)
	}
	return &BruteForceFilter[T]{
		sp:     sp,
		data:   data,
		pivots: pv,
		perms:  computePermutations(pv, data),
		opts:   opts,
	}, nil
}

// Name implements index.Index.
func (f *BruteForceFilter[T]) Name() string { return "brute-force-filt" }

// Stats implements index.Sized.
func (f *BruteForceFilter[T]) Stats() index.Stats {
	return index.Stats{
		Bytes:          int64(len(f.perms)) * 4,
		BuildDistances: int64(len(f.data)) * int64(f.pivots.M()),
	}
}

// Pivots exposes the pivot set (used by the projection-quality experiments).
func (f *BruteForceFilter[T]) Pivots() *permutation.Pivots[T] { return f.pivots }

// SetGamma adjusts the candidate fraction without rebuilding (gamma only
// affects search). Not safe to call concurrently with Search.
func (f *BruteForceFilter[T]) SetGamma(gamma float64) {
	if gamma > 0 {
		f.opts.Gamma = gamma
	}
}

// Gamma returns the current candidate fraction.
func (f *BruteForceFilter[T]) Gamma() float64 { return f.opts.Gamma }

// RankAll returns every data point ranked by permutation distance from the
// query, nearest first. It is the raw filtering stage, exposed for the
// Figure 3 experiments (recall vs. fraction of candidates scanned).
func (f *BruteForceFilter[T]) RankAll(query T) []topk.Neighbor {
	qperm := f.pivots.Permutation(query, nil)
	m := f.pivots.M()
	out := make([]topk.Neighbor, len(f.data))
	for i := range f.data {
		out[i] = topk.Neighbor{
			ID:   uint32(i),
			Dist: f.opts.Dist.distance(qperm, f.perms[i*m:(i+1)*m]),
		}
	}
	topk.ByDist(out)
	return out
}

// Search implements index.Index.
func (f *BruteForceFilter[T]) Search(query T, k int) []topk.Neighbor {
	return f.SearchAppend(nil, query, k)
}

// SearchAppend answers like Search but appends the results to dst; with a
// dst of sufficient capacity a warm call performs zero allocations.
func (f *BruteForceFilter[T]) SearchAppend(dst []topk.Neighbor, query T, k int) []topk.Neighbor {
	s := f.scratch.Get()
	defer f.scratch.Put(s)
	return f.search(s, nil, dst, query, k)
}

// NewSearcher implements index.SearcherProvider.
func (f *BruteForceFilter[T]) NewSearcher() index.Searcher[T] {
	return &searcher[T, bfScratch]{fn: f.search}
}

// search is the scratch-threaded hot path shared by Search, SearchAppend
// and Searchers. When tr is non-nil the filter scan, candidate selection
// and refinement are attributed to it.
func (f *BruteForceFilter[T]) search(s *bfScratch, tr *obs.QueryTrace, dst []topk.Neighbor, query T, k int) []topk.Neighbor {
	if k <= 0 {
		return dst
	}
	var t0 time.Time
	if tr != nil {
		t0 = time.Now()
	}
	qperm := f.pivots.PermutationWith(&s.perm, query)
	m := f.pivots.M()
	n := len(f.data)
	g := gammaCount(f.opts.Gamma, n, k)

	cands := scratch.Grow(s.cands, n)
	s.cands = cands
	for i := 0; i < n; i++ {
		cands[i] = topk.Neighbor{
			ID:   uint32(i),
			Dist: f.opts.Dist.distance(qperm, f.perms[i*m:(i+1)*m]),
		}
	}
	if tr != nil {
		tr.FilterCandidates += int64(n)
		obs.AddSince(&tr.FilterNs, t0)
		t0 = time.Now()
	}
	var best []topk.Neighbor
	if f.opts.UseHeap {
		// Ablation-only path; SelectKHeap allocates its queue per call.
		best = topk.SelectKHeap(cands, g)
	} else {
		best = topk.SelectK(cands, g)
	}
	if tr != nil {
		obs.AddSince(&tr.MergeNs, t0)
	}
	return refineTopInto(f.sp, f.data, query, best, k, &s.queue, dst, tr)
}

// BinFilterOptions configures NewBinFilter.
type BinFilterOptions struct {
	// NumPivots is the binarized permutation length. Binary sketches
	// carry less information per element, so the paper doubles the
	// length relative to full permutations (e.g. 256 bits in place of
	// 128 ranks, §3.2). Default 256.
	NumPivots int
	// Threshold is the binarization rank threshold b: ranks >= b map to
	// one. Default NumPivots/2, which balances the two symbols.
	Threshold int
	// Gamma is the candidate fraction, as in BruteForceOptions.
	Gamma float64
	// Seed drives pivot sampling.
	Seed int64
}

func (o *BinFilterOptions) defaults() {
	if o.NumPivots <= 0 {
		o.NumPivots = 256
	}
	if o.Threshold <= 0 {
		o.Threshold = o.NumPivots / 2
	}
	if o.Gamma <= 0 {
		o.Gamma = 0.02
	}
}

// BinFilter is brute-force filtering over *binarized* permutations: each
// point stores a bit-packed sketch and the filtering stage computes Hamming
// distances with XOR + popcount (§2.2). This is the method that wins the DNA
// experiment (Figure 4f), where 256-bit sketches are 16x smaller than the
// equivalent full permutations.
type BinFilter[T any] struct {
	sp      space.Space[T]
	data    []T
	pivots  *permutation.Pivots[T]
	words   int
	bits    []uint64 // flattened n x words
	opts    BinFilterOptions
	scratch scratch.Pool[binScratch]
}

// binScratch is the per-query state of one binarized filter search.
type binScratch struct {
	perm  permutation.Scratch
	qbits permutation.Binary
	cands []topk.Neighbor
	queue topk.Queue
}

// NewBinFilter samples pivots, computes permutations and binarizes them.
func NewBinFilter[T any](sp space.Space[T], data []T, opts BinFilterOptions) (*BinFilter[T], error) {
	opts.defaults()
	if len(data) == 0 {
		return nil, fmt.Errorf("core: empty data set")
	}
	if opts.NumPivots > len(data) {
		opts.NumPivots = len(data)
		if opts.Threshold >= opts.NumPivots {
			opts.Threshold = opts.NumPivots / 2
		}
	}
	r := rand.New(rand.NewSource(opts.Seed))
	pv, err := permutation.Sample(r, sp, data, opts.NumPivots)
	if err != nil {
		return nil, fmt.Errorf("core: sampling pivots: %w", err)
	}
	words := permutation.BinaryWords(opts.NumPivots)
	bits := make([]uint64, len(data)*words)
	parallelFor(len(data), func(i int) {
		perm := pv.Permutation(data[i], nil)
		permutation.Binarize(perm, int32(opts.Threshold), bits[i*words:(i+1)*words])
	})
	return &BinFilter[T]{sp: sp, data: data, pivots: pv, words: words, bits: bits, opts: opts}, nil
}

// Name implements index.Index.
func (f *BinFilter[T]) Name() string { return "brute-force-filt-bin" }

// SetGamma adjusts the candidate fraction without rebuilding. Not safe to
// call concurrently with Search.
func (f *BinFilter[T]) SetGamma(gamma float64) {
	if gamma > 0 {
		f.opts.Gamma = gamma
	}
}

// Gamma returns the current candidate fraction.
func (f *BinFilter[T]) Gamma() float64 { return f.opts.Gamma }

// Stats implements index.Sized.
func (f *BinFilter[T]) Stats() index.Stats {
	return index.Stats{
		Bytes:          int64(len(f.bits)) * 8,
		BuildDistances: int64(len(f.data)) * int64(f.pivots.M()),
	}
}

// Search implements index.Index.
func (f *BinFilter[T]) Search(query T, k int) []topk.Neighbor {
	return f.SearchAppend(nil, query, k)
}

// SearchAppend answers like Search but appends the results to dst; with a
// dst of sufficient capacity a warm call performs zero allocations.
func (f *BinFilter[T]) SearchAppend(dst []topk.Neighbor, query T, k int) []topk.Neighbor {
	s := f.scratch.Get()
	defer f.scratch.Put(s)
	return f.search(s, nil, dst, query, k)
}

// NewSearcher implements index.SearcherProvider.
func (f *BinFilter[T]) NewSearcher() index.Searcher[T] {
	return &searcher[T, binScratch]{fn: f.search}
}

// search is the scratch-threaded hot path shared by Search, SearchAppend
// and Searchers.
func (f *BinFilter[T]) search(s *binScratch, tr *obs.QueryTrace, dst []topk.Neighbor, query T, k int) []topk.Neighbor {
	if k <= 0 {
		return dst
	}
	var t0 time.Time
	if tr != nil {
		t0 = time.Now()
	}
	qperm := f.pivots.PermutationWith(&s.perm, query)
	s.qbits = permutation.Binarize(qperm, int32(f.opts.Threshold), s.qbits)
	n := len(f.data)
	g := gammaCount(f.opts.Gamma, n, k)

	cands := scratch.Grow(s.cands, n)
	s.cands = cands
	w := f.words
	for i := 0; i < n; i++ {
		h := permutation.Hamming(s.qbits, f.bits[i*w:(i+1)*w])
		cands[i] = topk.Neighbor{ID: uint32(i), Dist: float64(h)}
	}
	if tr != nil {
		tr.FilterCandidates += int64(n)
		obs.AddSince(&tr.FilterNs, t0)
		t0 = time.Now()
	}
	best := topk.SelectK(cands, g)
	if tr != nil {
		obs.AddSince(&tr.MergeNs, t0)
	}
	return refineTopInto(f.sp, f.data, query, best, k, &s.queue, dst, tr)
}
